/**
 * @file
 * Sparse-training-method comparison (the paper's Section I / VII-B
 * argument, quantified): Procrustes-adapted Dropback versus gradual
 * magnitude pruning at lottery-ticket and Eager-Pruning-style rates.
 *
 * Gradual methods only reach their sparsity at the end of training, so
 * (i) the *average* density over the run — which bounds what a
 * sparsity-exploiting accelerator can save on MACs — stays high, and
 * (ii) the peak weight-memory footprint never shrinks. Dropback holds
 * the target budget from iteration 0 on both counts.
 */

#include "bench_util.h"
#include "train_util.h"

#include "sparse/gradual_pruning.h"

using namespace procrustes;
using namespace procrustes::bench;

namespace {

struct MethodResult
{
    double accuracy = 0.0;
    double finalDensity = 1.0;
    double avgDensity = 1.0;
    double peakDensity = 1.0;
};

void
report(const char *name, const MethodResult &r)
{
    std::printf("%-26s acc %.3f | final density %5.1f%% | avg density "
                "%5.1f%% | peak footprint %5.1f%% | rel. MAC energy "
                "%4.2fx\n",
                name, r.accuracy, 100.0 * r.finalDensity,
                100.0 * r.avgDensity, 100.0 * r.peakDensity,
                r.avgDensity / (1.0 / 3.0));
}

} // namespace

int
main()
{
    banner("Sparse-training methods: constant budget vs gradual",
           "Sections I, II-E, VII-B of MICRO 2020 Procrustes paper");

    const auto [train, val] = spiralSplits();
    nn::TrainConfig tc;
    tc.epochs = 50;
    tc.batchSize = 32;
    const double target = 3.0;

    std::printf("\nspiral MLP, %.0fx target, %lld epochs "
                "(rel. MAC energy normalized to the constant-budget "
                "average density of 1/%.0f):\n\n",
                target, static_cast<long long>(tc.epochs), target);

    // Procrustes-adapted Dropback: budget enforced from iteration 0.
    {
        nn::Network net;
        buildMlp(net, 33);
        sparse::DropbackConfig cfg;
        cfg.sparsity = target;
        cfg.lr = 0.15f;
        cfg.initDecay = 0.95f;
        cfg.decayHorizon = 200;
        cfg.selection = sparse::SelectionMode::QuantileEstimate;
        sparse::DropbackOptimizer opt(cfg);
        const auto hist = trainNetwork(net, opt, train, val, tc);
        MethodResult r;
        r.accuracy = hist.back().valAccuracy;
        r.finalDensity = 1.0 - hist.back().weightSparsity;
        // Tracked-budget methods hold ~1/target from the start (the
        // decay window briefly keeps old initial values around).
        r.avgDensity = 1.0 / target;
        r.peakDensity = 1.0 / target;
        report("Dropback (Procrustes)", r);
    }

    // Gradual schedules: lottery-ticket rate and Eager-Pruning rate.
    struct Schedule
    {
        const char *name;
        double fraction;
        int64_t interval;
    };
    for (const Schedule &s :
         {Schedule{"gradual (lottery, 20%)", 0.20, 40},
          Schedule{"gradual (eager, 0.8%)", 0.008, 4}}) {
        nn::Network net;
        buildMlp(net, 33);
        sparse::GradualPruningConfig cfg;
        cfg.targetSparsity = target;
        cfg.lr = 0.15f;
        cfg.pruneFraction = s.fraction;
        cfg.pruneInterval = s.interval;
        cfg.warmupIterations = 50;
        sparse::GradualMagnitudePruningOptimizer opt(cfg);
        const auto hist = trainNetwork(net, opt, train, val, tc);
        MethodResult r;
        r.accuracy = hist.back().valAccuracy;
        r.finalDensity = opt.currentDensity();
        r.avgDensity = opt.averageDensity();
        r.peakDensity = 1.0;   // dense storage until pruning completes
        report(s.name, r);
    }

    std::printf("\n(paper: gradual methods give no peak-footprint "
                "reduction and mediocre whole-run energy savings; "
                "Dropback maintains the budget throughout)\n");
    return 0;
}
