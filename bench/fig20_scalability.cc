/**
 * @file
 * Figure 20: scaling Procrustes from 16x16 (256) to 32x32 (1024) PEs
 * on ResNet18 and MobileNet v2 (GLB doubled, a factor of sqrt(2) per
 * array-side doubling).
 *
 * Shape claims under test: energy is nearly unchanged (same MACs);
 * latency scales near-ideally (~3.9x on 4x the cores) for the
 * Procrustes mappings (C,N and K,N), while P,Q trades utilization
 * for reuse and scales worst.
 */

#include "bench_util.h"

#include "arch/accelerator.h"

using namespace procrustes;
using namespace procrustes::arch;

namespace {

Accelerator
mappedAccel(MappingKind mk, const ArrayConfig &cfg)
{
    CostOptions opts;
    opts.sparse = true;
    opts.balance = mk == MappingKind::CK ? BalanceMode::FullChip
                                         : BalanceMode::HalfTile;
    return {cfg, opts, mk};
}

} // namespace

int
main()
{
    bench::banner("Figure 20: 16x16 -> 32x32 scalability",
                  "Fig. 20 of MICRO 2020 Procrustes paper");

    const int64_t batch = 64;
    for (const NetworkModel &m :
         {buildResNet18(), buildMobileNetV2()}) {
        const auto masks = generateMasks(m, m.paperSparsity, 7);
        const auto sp = buildProfiles(m, masks);

        std::printf("\n--- %s ---\n", m.name.c_str());
        // Panel 1: K,N energy per phase at both sizes.
        const NetworkCost e16 =
            mappedAccel(MappingKind::KN, ArrayConfig::baseline16())
                .evaluate(m, sp, batch);
        const NetworkCost e32 =
            mappedAccel(MappingKind::KN, ArrayConfig::scaled32())
                .evaluate(m, sp, batch);
        std::printf("K,N energy: fw %.3f/%.3f  bw %.3f/%.3f  wu "
                    "%.3f/%.3f J (16/32)\n",
                    e16.fw.totalEnergyJ(), e32.fw.totalEnergyJ(),
                    e16.bw.totalEnergyJ(), e32.bw.totalEnergyJ(),
                    e16.wu.totalEnergyJ(), e32.wu.totalEnergyJ());

        // Panels 2-3: energy and cycles per mapping at both sizes.
        std::printf("%-6s %14s %14s %10s\n", "map",
                    "cycles 16x16", "cycles 32x32", "speedup");
        for (MappingKind mk : kAllMappings) {
            const NetworkCost c16 =
                mappedAccel(mk, ArrayConfig::baseline16())
                    .evaluate(m, sp, batch);
            const NetworkCost c32 =
                mappedAccel(mk, ArrayConfig::scaled32())
                    .evaluate(m, sp, batch);
            std::printf("%-6s %14.4g %14.4g %9.2fx   (energy ratio "
                        "%.3f)\n",
                        mappingName(mk).c_str(), c16.totalCycles(),
                        c32.totalCycles(),
                        c16.totalCycles() / c32.totalCycles(),
                        c32.totalEnergyJ() / c16.totalEnergyJ());
        }
    }
    std::printf("\n(paper: ~3.9x speedup on 4x cores for K,N; energy "
                "differences negligible; P,Q scales worst)\n");
    return 0;
}
