/**
 * @file
 * Compute-backend benchmark: naive loop-nest conv vs the im2col + tiled
 * GEMM backend (and the CSB sparse executor) across ResNet18 / VGG-S
 * layer shapes from the model zoo. Emits a machine-readable
 * BENCH_kernels.json next to the human-readable table so EXPERIMENTS.md
 * can track the speedups (schema documented there).
 *
 * Usage: bench_kernels [--smoke] [--out PATH] [--batch N]
 *   --smoke   tiny shapes / single rep (CI wiring check, not a perf run)
 *   --out     output JSON path (default BENCH_kernels.json)
 *   --batch   minibatch size per layer (default 2)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/model_zoo.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "kernels/sparse_microkernels.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "sparse/csb.h"
#include "sparse/mask.h"
#include "sparse/sparse_conv.h"
#include "sparse/sparse_linear.h"

using namespace procrustes;

namespace {

struct BenchLayer
{
    std::string net;
    std::string name;
    int64_t c, k, kernel, stride, pad, in_hw;
};

/** Sparse-executor timings at one weight density. */
struct SweepPoint
{
    double density = 0.0;
    double sparse_fwd_ms = 0.0;
    double sparse_bwd_data_ms = 0.0;
    double sparse_bwd_weight_ms = 0.0;
    double fwd_vs_gemm = 0.0;   //!< gemm_fwd_ms / sparse_fwd_ms
};

struct Row
{
    BenchLayer layer;
    int64_t batch = 0;
    double naive_fwd_ms = 0.0;
    double gemm_fwd_ms = 0.0;
    double naive_bwd_ms = 0.0;
    double gemm_bwd_ms = 0.0;
    double gemm_fwd_ms_1t = 0.0;   //!< gemm forward on a 1-thread pool
    double gemm_bwd_ms_1t = 0.0;
    double sparse_fwd_ms = 0.0;
    double sparse_bwd_data_ms = 0.0;
    double sparse_bwd_weight_ms = 0.0;
    double sparse_density = 0.0;
    std::vector<SweepPoint> sweep;   //!< density sweep, dense-first
    double crossover_density = 0.0;  //!< max swept density where the
                                     //!< sparse forward beats gemm
    double macs = 0.0;   //!< dense forward MACs for GMAC/s rates

    double fwdSpeedup() const { return naive_fwd_ms / gemm_fwd_ms; }
    double bwdSpeedup() const { return naive_bwd_ms / gemm_bwd_ms; }

    /** 1-thread vs N-thread scaling (the batch-parallel win). */
    double threadFwdSpeedup() const { return gemm_fwd_ms_1t / gemm_fwd_ms; }
    double threadBwdSpeedup() const { return gemm_bwd_ms_1t / gemm_bwd_ms; }
};

/** One fc layer's timings: gemm backend vs the CSB fc executors. */
struct FcRow
{
    std::string net;
    std::string name;
    int64_t in_f = 0, out_f = 0, batch = 0;
    double gemm_fwd_ms = 0.0;
    double gemm_bwd_ms = 0.0;
    double sparse_fc_fwd_ms = 0.0;
    double sparse_fc_bwd_data_ms = 0.0;
    double sparse_fc_bwd_weight_ms = 0.0;
    double sparse_density = 0.0;
    /** Executed / dense MAC ratios per phase, from the executors'
        measured tallies on this input (weight mask in every phase,
        dy zeros in bw-data, activation zeros in bw-weight). */
    double fw_mac_ratio = 0.0;
    double bw_data_mac_ratio = 0.0;
    double bw_weight_mac_ratio = 0.0;
};

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Time fn() adaptively: repeat until ~min_ms elapsed, return ms/rep. */
template <typename Fn>
double
timeMs(Fn &&fn, double min_ms)
{
    fn();   // warm-up (and first measurement seed)
    int reps = 0;
    const double start = nowMs();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = nowMs() - start;
    } while (elapsed < min_ms && reps < 50);
    return elapsed / reps;
}

/**
 * Conv layer shapes worth timing, pulled from the zoo models: 3x3
 * layers, deduplicated by geometry, trimmed of the very large
 * early-ImageNet spatial extents so a full run stays in minutes.
 */
std::vector<BenchLayer>
selectLayers(bool smoke)
{
    std::vector<BenchLayer> out;
    if (smoke) {
        out.push_back({"smoke", "conv_small", 8, 8, 3, 1, 1, 10});
        out.push_back({"smoke", "conv_stride2", 8, 16, 3, 2, 1, 10});
        return out;
    }
    auto harvest = [&out](const arch::NetworkModel &m, size_t cap) {
        size_t taken = 0;
        for (const arch::LayerShape &l : m.layers) {
            if (l.type != arch::LayerType::Conv || l.R != 3)
                continue;
            if (l.P > 56 || l.C < 32)   // keep runtime bounded
                continue;
            // LayerShape::inH() inverts the conv map ignoring padding;
            // subtract the 'same'-style halo to get the real extent
            // (e.g. ResNet18 conv2 is 56x56, not 58x58).
            const int64_t pad = l.R / 2;
            const BenchLayer cand{m.name, l.name,   l.C,
                                  l.K,    l.R,      l.stride,
                                  pad,    l.inH() - 2 * pad};
            const bool dup = std::any_of(
                out.begin(), out.end(), [&](const BenchLayer &b) {
                    return b.c == cand.c && b.k == cand.k &&
                           b.in_hw == cand.in_hw &&
                           b.stride == cand.stride;
                });
            if (dup)
                continue;
            out.push_back(cand);
            if (++taken >= cap)
                break;
        }
    };
    harvest(arch::buildResNet18(), 4);
    harvest(arch::buildVggS(), 3);
    return out;
}

Row
benchOne(const BenchLayer &bl, int64_t batch, bool smoke)
{
    Row row;
    row.layer = bl;
    row.batch = batch;

    nn::Conv2dConfig cfg;
    cfg.inChannels = bl.c;
    cfg.outChannels = bl.k;
    cfg.kernel = bl.kernel;
    cfg.stride = bl.stride;
    cfg.pad = bl.pad;
    nn::Conv2d naive(cfg, "naive");
    nn::Conv2d gemm(cfg, "gemm");
    naive.setBackend(kernels::KernelBackend::kNaive);
    gemm.setBackend(kernels::KernelBackend::kGemm);

    Xorshift128Plus rng(1234);
    naive.weight().value.fillGaussian(rng, 0.1f);
    gemm.weight().value = naive.weight().value;
    naive.bias().value.fillGaussian(rng, 0.1f);
    gemm.bias().value = naive.bias().value;

    Tensor x(Shape{batch, bl.c, bl.in_hw, bl.in_hw});
    x.fillGaussian(rng, 1.0f);

    const int64_t p = naive.outExtent(bl.in_hw);
    row.macs = static_cast<double>(batch) * bl.k * bl.c * bl.kernel *
               bl.kernel * p * p;

    Tensor dy(Shape{batch, bl.k, p, p});
    dy.fillGaussian(rng, 1.0f);

    const double min_ms = smoke ? 1.0 : 200.0;
    row.naive_fwd_ms = timeMs([&] { naive.forward(x, true); }, min_ms);
    row.gemm_fwd_ms = timeMs([&] { gemm.forward(x, true); }, min_ms);
    row.naive_bwd_ms = timeMs([&] { naive.backward(dy); }, min_ms);
    row.gemm_bwd_ms = timeMs([&] { gemm.backward(dy); }, min_ms);

    // 1-vs-N thread scaling of the batch-parallel gemm path. On a
    // 1-thread pool this is a no-op re-measurement, recorded anyway so
    // the JSON schema is uniform.
    if (ThreadPool::global().numThreads() > 1) {
        ThreadPool::resetGlobal(1);
        row.gemm_fwd_ms_1t =
            timeMs([&] { gemm.forward(x, true); }, min_ms);
        row.gemm_bwd_ms_1t = timeMs([&] { gemm.backward(dy); }, min_ms);
        ThreadPool::resetGlobal(0);   // back to env / hardware size
    } else {
        row.gemm_fwd_ms_1t = row.gemm_fwd_ms;
        row.gemm_bwd_ms_1t = row.gemm_bwd_ms;
    }

    // CSB sparse executors swept over paper-like weight densities. The
    // packed tap geometry is pre-built once per mask — exactly what the
    // layers cache across optimizer steps while the mask epoch holds —
    // so the timings measure the executor kernels proper.
    const double sweep_densities[] = {0.5, 0.2, 0.1};
    Tensor dw(naive.weight().value.shape());
    for (const double density : sweep_densities) {
        Tensor wsp = naive.weight().value;
        sparse::SyntheticMaskConfig mcfg;
        mcfg.targetDensity = density;
        mcfg.seed = 99;
        const sparse::SparsityMask mask = sparse::makeSyntheticMask(
            bl.k, bl.c, bl.kernel, bl.kernel, mcfg);
        for (int64_t i = 0; i < wsp.numel(); ++i) {
            if (!mask.bits[static_cast<size_t>(i)])
                wsp.at(i) = 0.0f;
        }
        const sparse::CsbTensor csb =
            sparse::CsbTensor::encodeConvFilters(wsp);
        const kernels::ConvTapPack pack = kernels::packConvTaps(
            csb, bl.in_hw, bl.in_hw, bl.stride, bl.pad);
        SweepPoint pt;
        pt.density = density;
        pt.sparse_fwd_ms = timeMs(
            [&] {
                sparse::sparseConvForward(x, csb, bl.stride, bl.pad,
                                          nullptr, &pack);
            },
            min_ms);
        pt.sparse_bwd_data_ms = timeMs(
            [&] {
                sparse::sparseConvBackwardData(dy, csb, x.shape(),
                                               bl.stride, bl.pad,
                                               nullptr, &pack);
            },
            min_ms);
        pt.sparse_bwd_weight_ms = timeMs(
            [&] {
                sparse::sparseConvBackwardWeights(x, dy, csb, bl.stride,
                                                  bl.pad, &dw, nullptr,
                                                  &pack);
            },
            min_ms);
        pt.fwd_vs_gemm = row.gemm_fwd_ms / pt.sparse_fwd_ms;
        if (pt.sparse_fwd_ms < row.gemm_fwd_ms)
            row.crossover_density =
                std::max(row.crossover_density, density);
        if (density == 0.2) {
            // Headline columns keep the historical 80%-sparse point.
            row.sparse_density = density;
            row.sparse_fwd_ms = pt.sparse_fwd_ms;
            row.sparse_bwd_data_ms = pt.sparse_bwd_data_ms;
            row.sparse_bwd_weight_ms = pt.sparse_bwd_weight_ms;
        }
        row.sweep.push_back(pt);
    }
    return row;
}

/** fc shapes worth timing (the model-zoo classifier heads). */
std::vector<FcRow>
selectFcLayers(bool smoke, int64_t batch)
{
    std::vector<FcRow> out;
    auto push = [&out, batch](const char *net, const char *name,
                              int64_t in_f, int64_t out_f) {
        FcRow r;
        r.net = net;
        r.name = name;
        r.in_f = in_f;
        r.out_f = out_f;
        r.batch = batch;
        out.push_back(r);
    };
    if (smoke) {
        push("smoke", "fc_small", 64, 32);
        return out;
    }
    push("VGG-S", "fc1", 512, 512);
    push("VGG-S", "fc2", 512, 10);
    push("MobileNet", "fc", 1280, 1000);
    return out;
}

FcRow
benchOneFc(FcRow row, bool smoke)
{
    nn::Linear gemm(row.in_f, row.out_f, "gemm");
    gemm.setBackend(kernels::KernelBackend::kGemm);
    Xorshift128Plus rng(4321);
    gemm.weight().value.fillGaussian(rng, 0.1f);
    gemm.bias().value.fillGaussian(rng, 0.1f);

    Tensor x(Shape{row.batch, row.in_f});
    x.fillGaussian(rng, 1.0f);
    // ReLU-like input zeros: the fc head sits behind rectified
    // features, which is what the bw-weight executor skips.
    for (int64_t i = 0; i < x.numel(); ++i) {
        if (x.at(i) < 0.0f)
            x.at(i) = 0.0f;
    }
    Tensor dy(Shape{row.batch, row.out_f});
    dy.fillGaussian(rng, 1.0f);

    const double min_ms = smoke ? 1.0 : 100.0;
    row.gemm_fwd_ms = timeMs([&] { gemm.forward(x, true); }, min_ms);
    row.gemm_bwd_ms = timeMs([&] { gemm.backward(dy); }, min_ms);

    // CSB fc executors at a paper-like 80% weight sparsity.
    row.sparse_density = 0.2;
    Tensor wsp = gemm.weight().value;
    sparse::SyntheticMaskConfig mcfg;
    mcfg.targetDensity = row.sparse_density;
    mcfg.seed = 77;
    const sparse::SparsityMask mask = sparse::makeSyntheticMask(
        row.out_f, row.in_f, 1, 1, mcfg);
    for (int64_t i = 0; i < wsp.numel(); ++i) {
        if (!mask.bits[static_cast<size_t>(i)])
            wsp.at(i) = 0.0f;
    }
    const sparse::CsbTensor csb =
        sparse::CsbTensor::encodeMatrix(wsp, nn::Linear::kCsbBlockSide);
    // Pre-gathered tap views, as Linear shares them across the three
    // phases of a step: the timings below are the executor kernels
    // proper, not the once-per-step encode/gather.
    const sparse::FcTapViews views = sparse::gatherFcTapViews(csb);
    Tensor dw(wsp.shape());
    row.sparse_fc_fwd_ms = timeMs(
        [&] { sparse::sparseLinearForward(x, csb, nullptr, &views); },
        min_ms);
    row.sparse_fc_bwd_data_ms = timeMs(
        [&] {
            sparse::sparseLinearBackwardData(dy, csb, nullptr, &views);
        },
        min_ms);
    row.sparse_fc_bwd_weight_ms = timeMs(
        [&] {
            sparse::sparseLinearBackwardWeights(x, dy, csb, &dw,
                                                nullptr, &views);
        },
        min_ms);

    const sparse::SparseLinearMacCounts counts =
        sparse::sparseLinearMacCounts(x, dy, csb);
    const double dense =
        static_cast<double>(row.batch) * row.out_f * row.in_f;
    row.fw_mac_ratio = static_cast<double>(counts.forward) / dense;
    row.bw_data_mac_ratio =
        static_cast<double>(counts.backwardData) / dense;
    row.bw_weight_mac_ratio =
        static_cast<double>(counts.backwardWeight) / dense;
    return row;
}

bool
emitJson(const std::vector<Row> &rows, const std::vector<FcRow> &fc_rows,
         const std::string &path, bool smoke)
{
    if (rows.empty()) {
        std::fprintf(stderr,
                     "no layers selected; refusing to write %s\n",
                     path.c_str());
        return false;
    }
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    double min_fwd = 1e30, geo_fwd = 0.0, geo_bwd = 0.0;
    double geo_tfwd = 0.0, geo_tbwd = 0.0;
    for (const Row &r : rows) {
        min_fwd = std::min(min_fwd, r.fwdSpeedup());
        geo_fwd += std::log(r.fwdSpeedup());
        geo_bwd += std::log(r.bwdSpeedup());
        geo_tfwd += std::log(r.threadFwdSpeedup());
        geo_tbwd += std::log(r.threadBwdSpeedup());
    }
    geo_fwd = std::exp(geo_fwd / static_cast<double>(rows.size()));
    geo_bwd = std::exp(geo_bwd / static_cast<double>(rows.size()));
    geo_tfwd = std::exp(geo_tfwd / static_cast<double>(rows.size()));
    geo_tbwd = std::exp(geo_tbwd / static_cast<double>(rows.size()));

    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"version\": 5,\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"threads\": %d,\n",
                 ThreadPool::global().numThreads());
    std::fprintf(f, "  \"simd\": \"%s\",\n",
                 kernels::simdLevelName(kernels::activeSimdLevel()));
    bench::emitHostJson(f);
    std::fprintf(f, "  \"layers\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"net\": \"%s\", \"layer\": \"%s\", \"N\": %lld, "
            "\"C\": %lld, \"K\": %lld, \"kernel\": %lld, "
            "\"stride\": %lld, \"pad\": %lld, \"in_hw\": %lld,\n"
            "     \"macs\": %.0f,\n"
            "     \"naive_fwd_ms\": %.3f, \"gemm_fwd_ms\": %.3f, "
            "\"fwd_speedup\": %.2f,\n"
            "     \"naive_bwd_ms\": %.3f, \"gemm_bwd_ms\": %.3f, "
            "\"bwd_speedup\": %.2f,\n"
            "     \"gemm_fwd_ms_1t\": %.3f, \"gemm_bwd_ms_1t\": %.3f, "
            "\"thread_fwd_speedup\": %.2f, \"thread_bwd_speedup\": %.2f,\n"
            "     \"sparse_fwd_ms\": %.3f, \"sparse_bwd_data_ms\": %.3f, "
            "\"sparse_bwd_weight_ms\": %.3f, \"sparse_density\": %.2f,\n"
            "     \"crossover_density\": %.2f,\n"
            "     \"sparse_sweep\": [",
            r.layer.net.c_str(), r.layer.name.c_str(),
            static_cast<long long>(r.batch),
            static_cast<long long>(r.layer.c),
            static_cast<long long>(r.layer.k),
            static_cast<long long>(r.layer.kernel),
            static_cast<long long>(r.layer.stride),
            static_cast<long long>(r.layer.pad),
            static_cast<long long>(r.layer.in_hw), r.macs,
            r.naive_fwd_ms, r.gemm_fwd_ms, r.fwdSpeedup(),
            r.naive_bwd_ms, r.gemm_bwd_ms, r.bwdSpeedup(),
            r.gemm_fwd_ms_1t, r.gemm_bwd_ms_1t, r.threadFwdSpeedup(),
            r.threadBwdSpeedup(), r.sparse_fwd_ms, r.sparse_bwd_data_ms,
            r.sparse_bwd_weight_ms, r.sparse_density,
            r.crossover_density);
        for (size_t j = 0; j < r.sweep.size(); ++j) {
            const SweepPoint &pt = r.sweep[j];
            std::fprintf(
                f,
                "\n       {\"density\": %.2f, \"sparse_fwd_ms\": %.3f, "
                "\"sparse_bwd_data_ms\": %.3f, "
                "\"sparse_bwd_weight_ms\": %.3f, "
                "\"fwd_vs_gemm\": %.3f}%s",
                pt.density, pt.sparse_fwd_ms, pt.sparse_bwd_data_ms,
                pt.sparse_bwd_weight_ms, pt.fwd_vs_gemm,
                j + 1 < r.sweep.size() ? "," : "");
        }
        std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"fc_layers\": [\n");
    for (size_t i = 0; i < fc_rows.size(); ++i) {
        const FcRow &r = fc_rows[i];
        std::fprintf(
            f,
            "    {\"net\": \"%s\", \"layer\": \"%s\", \"N\": %lld, "
            "\"in_features\": %lld, \"out_features\": %lld,\n"
            "     \"gemm_fwd_ms\": %.3f, \"gemm_bwd_ms\": %.3f,\n"
            "     \"sparse_fc_fwd_ms\": %.3f, "
            "\"sparse_fc_bwd_data_ms\": %.3f, "
            "\"sparse_fc_bwd_weight_ms\": %.3f,\n"
            "     \"sparse_density\": %.2f,\n"
            "     \"fw_mac_ratio\": %.4f, \"bw_data_mac_ratio\": %.4f, "
            "\"bw_weight_mac_ratio\": %.4f}%s\n",
            r.net.c_str(), r.name.c_str(),
            static_cast<long long>(r.batch),
            static_cast<long long>(r.in_f),
            static_cast<long long>(r.out_f), r.gemm_fwd_ms,
            r.gemm_bwd_ms, r.sparse_fc_fwd_ms, r.sparse_fc_bwd_data_ms,
            r.sparse_fc_bwd_weight_ms, r.sparse_density, r.fw_mac_ratio,
            r.bw_data_mac_ratio, r.bw_weight_mac_ratio,
            i + 1 < fc_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"summary\": {\"geomean_fwd_speedup\": %.2f, "
                    "\"geomean_bwd_speedup\": %.2f, "
                    "\"min_fwd_speedup\": %.2f,\n"
                    "              \"geomean_thread_fwd_speedup\": %.2f, "
                    "\"geomean_thread_bwd_speedup\": %.2f}\n",
                 geo_fwd, geo_bwd, min_fwd, geo_tfwd, geo_tbwd);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_kernels.json";
    int64_t batch = 2;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
            batch = std::atoll(argv[++i]);
            if (batch <= 0) {
                std::fprintf(stderr, "--batch wants a positive integer, "
                                     "got '%s'\n", argv[i]);
                return 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] [--batch N]\n",
                         argv[0]);
            return 1;
        }
    }
    if (smoke)
        batch = 1;

    std::printf("kernel backend bench: %d threads, batch %lld%s\n",
                ThreadPool::global().numThreads(),
                static_cast<long long>(batch), smoke ? " (smoke)" : "");
    std::printf("%-10s %-12s %19s | %10s %10s %7s | %10s %10s %7s | "
                "%10s | %7s\n",
                "net", "layer", "shape", "naive-fw", "gemm-fw", "spd",
                "naive-bw", "gemm-bw", "spd", "sparse-fw", "t-spd");

    std::vector<Row> rows;
    for (const BenchLayer &bl : selectLayers(smoke)) {
        const Row r = benchOne(bl, batch, smoke);
        char shape[32];
        std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld s%lld",
                      static_cast<long long>(r.layer.c),
                      static_cast<long long>(r.layer.k),
                      static_cast<long long>(r.layer.in_hw),
                      static_cast<long long>(r.layer.stride));
        std::printf(
            "%-10s %-12s %19s | %8.1fms %8.1fms %6.1fx | %8.1fms "
            "%8.1fms %6.1fx | %8.1fms | %6.2fx\n",
            r.layer.net.c_str(), r.layer.name.c_str(), shape,
            r.naive_fwd_ms, r.gemm_fwd_ms, r.fwdSpeedup(),
            r.naive_bwd_ms, r.gemm_bwd_ms, r.bwdSpeedup(),
            r.sparse_fwd_ms, r.threadFwdSpeedup());
        rows.push_back(r);
    }

    std::printf("\nfc backend bench (CSB executors at density 0.2)\n");
    std::printf("%-10s %-10s %13s | %9s %9s | %9s %9s %9s | %17s\n",
                "net", "layer", "shape", "gemm-fw", "gemm-bw",
                "csb-fw", "csb-bwd", "csb-bww", "mac ratios");
    std::vector<FcRow> fc_rows;
    for (const FcRow &shape : selectFcLayers(smoke, smoke ? 8 : 32)) {
        const FcRow r = benchOneFc(shape, smoke);
        char fshape[32];
        std::snprintf(fshape, sizeof(fshape), "%lldx%lld b%lld",
                      static_cast<long long>(r.in_f),
                      static_cast<long long>(r.out_f),
                      static_cast<long long>(r.batch));
        std::printf("%-10s %-10s %13s | %7.2fms %7.2fms | %7.2fms "
                    "%7.2fms %7.2fms | %.2f/%.2f/%.2f\n",
                    r.net.c_str(), r.name.c_str(), fshape,
                    r.gemm_fwd_ms, r.gemm_bwd_ms, r.sparse_fc_fwd_ms,
                    r.sparse_fc_bwd_data_ms, r.sparse_fc_bwd_weight_ms,
                    r.fw_mac_ratio, r.bw_data_mac_ratio,
                    r.bw_weight_mac_ratio);
        fc_rows.push_back(r);
    }
    return emitJson(rows, fc_rows, out, smoke) ? 0 : 1;
}
