/**
 * @file
 * Figure 1: potential training energy savings and speedup from ideally
 * leveraging all weight sparsity (5x) while training VGG-S.
 *
 * Setup per the paper: 16x16 PEs, sparsity evenly distributed within
 * each layer (perfect load balancing), idealized compressed format
 * with no overhead, free retained-weight selection. Batch 64 (implied
 * by the paper's cycle counts). Bars: energy breakdown (DRAM / GLB /
 * RF / MAC) and cycles for fw / bw / wu, dense (D) vs sparse (S).
 */

#include "bench_util.h"

#include "arch/accelerator.h"

using namespace procrustes;
using namespace procrustes::arch;

int
main()
{
    bench::banner("Figure 1: ideal sparse-training potential (VGG-S, 5x)",
                  "Fig. 1 of MICRO 2020 Procrustes paper");

    const NetworkModel vgg = buildVggS();
    const auto masks = generateMasks(vgg, 5.0, /*seed=*/1);
    const auto sparse_profiles = buildProfiles(vgg, masks);
    const auto dense_profiles = buildDenseProfiles(vgg);
    const int64_t batch = 64;

    const Accelerator dense = Accelerator::denseBaseline();
    const Accelerator ideal = Accelerator::idealSparse();
    const NetworkCost dc = dense.evaluate(vgg, dense_profiles, batch);
    const NetworkCost sc = ideal.evaluate(vgg, sparse_profiles, batch);

    std::printf("\nEnergy per training iteration (batch %lld):\n",
                static_cast<long long>(batch));
    bench::energyRow("fw  (D)ense", dc.fw);
    bench::energyRow("fw  (S)parse ideal", sc.fw);
    bench::energyRow("bw  (D)ense", dc.bw);
    bench::energyRow("bw  (S)parse ideal", sc.bw);
    bench::energyRow("wu  (D)ense", dc.wu);
    bench::energyRow("wu  (S)parse ideal", sc.wu);

    std::printf("\nCycles per training iteration:\n");
    bench::cycleRow("fw  (D)ense", dc.fw);
    bench::cycleRow("fw  (S)parse ideal", sc.fw);
    bench::cycleRow("bw  (D)ense", dc.bw);
    bench::cycleRow("bw  (S)parse ideal", sc.bw);
    bench::cycleRow("wu  (D)ense", dc.wu);
    bench::cycleRow("wu  (S)parse ideal", sc.wu);

    std::printf("\nHeadline (paper: up to 2.6x speedup, 2.3x energy):\n");
    std::printf("  whole-network speedup: %.2fx\n",
                dc.totalCycles() / sc.totalCycles());
    std::printf("  whole-network energy savings: %.2fx\n",
                dc.totalEnergyJ() / sc.totalEnergyJ());
    return 0;
}
