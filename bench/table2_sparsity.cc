/**
 * @file
 * Table II: dense / sparse model sizes and MAC counts for the five
 * CNNs at the paper's per-network sparsity factors, plus the accuracy
 * parity measured on the substitute training task.
 *
 * The size and MAC columns are computed from the model zoo geometry
 * and the generated masks; the paper's reference numbers are printed
 * alongside. Accuracy columns come from a live dense-vs-Procrustes
 * training run on the substitute task (DESIGN.md §4).
 */

#include "bench_util.h"
#include "train_util.h"

#include "arch/accelerator.h"

using namespace procrustes;
using namespace procrustes::arch;

namespace {

/** Effective sparse MACs: per-layer dense MACs times mask density. */
int64_t
sparseMacs(const NetworkModel &m,
           const std::vector<sparse::SparsityMask> &masks)
{
    double total = 0.0;
    for (size_t i = 0; i < m.layers.size(); ++i) {
        total += static_cast<double>(m.layers[i].macsPerSample()) *
                 masks[i].density();
    }
    return static_cast<int64_t>(total);
}

std::string
human(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.1fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.0fk", v / 1e3);
    return buf;
}

} // namespace

int
main()
{
    bench::banner("Table II: sparsity, model size, and MAC reduction",
                  "Table II of MICRO 2020 Procrustes paper");

    std::printf("\n%-12s %-9s %8s %8s %8s %8s %9s %7s\n", "model",
                "dataset", "dense sz", "dense MAC", "sparse sz",
                "sparse MAC", "sparsity", "epochs");
    for (const NetworkModel &m : allModels()) {
        const auto masks = generateMasks(m, m.paperSparsity, 7);
        int64_t nnz = 0;
        for (const auto &mask : masks)
            nnz += mask.nnz();
        std::printf("%-12s %-9s %8s %9s %8s %9s %8.1fx %7d\n",
                    m.name.c_str(), m.dataset.c_str(),
                    human(static_cast<double>(m.denseWeights()))
                        .c_str(),
                    human(static_cast<double>(
                              m.denseMacsPerSample()))
                        .c_str(),
                    human(static_cast<double>(nnz)).c_str(),
                    human(static_cast<double>(sparseMacs(m, masks)))
                        .c_str(),
                    static_cast<double>(m.denseWeights()) /
                        static_cast<double>(nnz),
                    m.paperEpochs);
    }
    std::printf("\nPaper reference accuracies (dense -> pruned): "
                "DenseNet 94.2->93.7, WRN 96.0->96.1, VGG-S "
                "93.0->93.1, MobileNetV2 70.98->71.13, ResNet18 "
                "69.17->69.31\n");

    // Accuracy parity on the substitute task (live run).
    const auto [train, val] = bench::spiralSplits();
    nn::TrainConfig tc;
    tc.epochs = 50;
    tc.batchSize = 32;
    nn::Network dense;
    bench::buildMlp(dense, 33);
    nn::Sgd sgd(0.15f);
    const double dense_acc =
        trainNetwork(dense, sgd, train, val, tc).back().valAccuracy;

    nn::Network snet;
    bench::buildMlp(snet, 33);
    sparse::DropbackConfig cfg;
    cfg.sparsity = 4.0;
    cfg.lr = 0.15f;
    cfg.initDecay = 0.95f;
    cfg.decayHorizon = 200;
    cfg.selection = sparse::SelectionMode::QuantileEstimate;
    sparse::DropbackOptimizer opt(cfg);
    const auto hist = trainNetwork(snet, opt, train, val, tc);

    std::printf("\nSubstitute-task accuracy parity (spiral MLP, 4x "
                "target):\n");
    std::printf("  dense SGD:  %.3f\n", dense_acc);
    std::printf("  Procrustes: %.3f  (weight sparsity %.1f%%)\n",
                hist.back().valAccuracy,
                100.0 * hist.back().weightSparsity);
    return 0;
}
