/**
 * @file
 * Scale-out trajectory bench: trains the spiral-task MLP with gradual
 * magnitude pruning on the CSB sparse backend under the data-parallel
 * shard engine (src/scaleout) for shard counts {1, 2, 4, 8} at a
 * matched global batch and a fixed grad-slice size, so every shard
 * count follows the bitwise-identical trajectory. Each run records the
 * accuracy curve, the measured gradient-exchange wire traffic
 * (mask-live packed bytes vs the dense twin, reduce-to-root gather +
 * broadcast message counts), and the modeled exchange cycles from the
 * cost model's shard-interconnect term
 * (CostOptions::interconnectWordsPerCycle) fed by the measured bytes
 * through a WorkloadTrace.
 *
 * Two reference blocks anchor the grid: `non_sharded` is a plain
 * nn::trainNetwork run of the identical model/optimizer/data, and
 * `shard1_twin` is the engine at shards == 1 with sliceSamples ==
 * batchSize — the configuration the engine guarantees is bitwise
 * identical to the plain trainer (test_scaleout.cc enforces it; the
 * schema checker cross-checks the emitted trajectories).
 *
 * Emits BENCH_scaleout.json v1 (schema documented in EXPERIMENTS.md,
 * checked by tools/check_bench_schema.py scaleout) with host
 * information so single-core results are interpretable. Trajectory
 * floats are printed with %.17g so the JSON preserves bitwise equality
 * across runs for the checker's exact comparisons.
 *
 * Usage: bench_scaleout [--smoke] [--out PATH]
 *   --smoke   3 epochs on a smaller net (CI wiring check)
 *   --out     output JSON path (default BENCH_scaleout.json)
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "arch/accelerator.h"
#include "arch/workload_trace.h"
#include "bench_util.h"
#include "nn/linear.h"
#include "scaleout/shard_engine.h"
#include "sparse/gradual_pruning.h"
#include "train_util.h"

using namespace procrustes;

namespace {

/** Per-epoch row shared by the grid runs and the reference blocks. */
struct EpochRow
{
    double trainLoss = 0.0;
    double valAccuracy = 0.0;
    double weightDensity = 1.0;
    int64_t exchangeCompressedBytes = 0;
    int64_t exchangeDenseBytes = 0;
    int64_t exchangeMessages = 0;
    double modeledExchangeCycles = 0.0;
    double modeledWuCycles = 0.0;
    double modeledTotalCycles = 0.0;
};

void
emitEpochs(FILE *f, const std::vector<EpochRow> &rows, bool with_exchange)
{
    std::fprintf(f, "    \"epochs\": [\n");
    for (size_t e = 0; e < rows.size(); ++e) {
        const EpochRow &r = rows[e];
        std::fprintf(f,
                     "      {\"epoch\": %zu, \"train_loss\": %.17g, "
                     "\"val_accuracy\": %.17g, \"weight_density\": %.17g",
                     e, r.trainLoss, r.valAccuracy, r.weightDensity);
        if (with_exchange) {
            std::fprintf(
                f,
                ",\n       \"exchange_compressed_bytes\": %lld, "
                "\"exchange_dense_bytes\": %lld, "
                "\"exchange_messages\": %lld,\n"
                "       \"modeled_exchange_cycles\": %.6g, "
                "\"modeled_wu_cycles\": %.6g, "
                "\"modeled_total_cycles\": %.6g",
                static_cast<long long>(r.exchangeCompressedBytes),
                static_cast<long long>(r.exchangeDenseBytes),
                static_cast<long long>(r.exchangeMessages),
                r.modeledExchangeCycles, r.modeledWuCycles,
                r.modeledTotalCycles);
        }
        std::fprintf(f, "}%s\n", e + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_scaleout.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 1;
        }
    }

    bench::banner("Scale-out: data-parallel shards with sparse "
                  "gradient exchange",
                  "beyond Figure 20 (PE scaling) — M-way data "
                  "parallelism with mask-live allreduce traffic");

    const int64_t hidden = smoke ? 16 : 48;
    const int64_t epochs = smoke ? 3 : 10;
    const int64_t global_batch = 32;
    const int64_t slice_samples = 4;
    const std::vector<int> shard_counts = {1, 2, 4, 8};
    const double interconnect_wpc = 16.0;

    const auto build = [hidden](nn::Network &net) {
        bench::buildMlp(net, /*seed=*/11, hidden);
        bench::useSparseBackend(net);
    };
    const auto make_opt = []() -> std::unique_ptr<nn::Optimizer> {
        sparse::GradualPruningConfig pcfg;
        pcfg.targetSparsity = 4.0;
        pcfg.lr = 0.08f;
        pcfg.warmupIterations = 10;
        pcfg.pruneInterval = 5;
        pcfg.pruneFraction = 0.25;
        return std::make_unique<sparse::GradualMagnitudePruningOptimizer>(
            pcfg);
    };

    const auto splits = bench::spiralSplits();

    // The cost model with the shard-interconnect term priced: measured
    // exchange bytes bound the weight-update phase at this bandwidth
    // (overlap-aware, like the DRAM-refill bound).
    arch::CostOptions copts;
    copts.sparse = true;
    copts.balance = arch::BalanceMode::HalfTile;
    copts.interconnectWordsPerCycle = interconnect_wpc;
    const arch::Accelerator acc(arch::ArrayConfig::baseline16(), copts,
                                arch::MappingKind::KN);

    // ---- reference block 1: plain trainNetwork -----------------------
    std::vector<EpochRow> plain_rows;
    {
        nn::Network net;
        build(net);
        auto opt = make_opt();
        nn::TrainConfig tc;
        tc.epochs = epochs;
        tc.batchSize = global_batch;
        const auto hist = trainNetwork(net, *opt, splits.first,
                                       splits.second, tc);
        for (const nn::EpochStats &s : hist) {
            EpochRow r;
            r.trainLoss = s.trainLoss;
            r.valAccuracy = s.valAccuracy;
            r.weightDensity = 1.0 - s.weightSparsity;
            plain_rows.push_back(r);
        }
    }

    // ---- reference block 2: engine twin (shards=1, slice==batch) -----
    std::vector<EpochRow> twin_rows;
    {
        scaleout::ShardTrainConfig cfg;
        cfg.shards = 1;
        cfg.epochs = epochs;
        cfg.batchSize = global_batch;
        cfg.sliceSamples = global_batch;
        const auto res = scaleout::trainSharded(
            build, make_opt, splits.first, splits.second, cfg);
        for (const scaleout::ShardEpochStats &s : res.history) {
            EpochRow r;
            r.trainLoss = s.stats.trainLoss;
            r.valAccuracy = s.stats.valAccuracy;
            r.weightDensity = 1.0 - s.stats.weightSparsity;
            twin_rows.push_back(r);
        }
    }

    // ---- the shard grid ---------------------------------------------
    std::printf("shards | epoch | val acc | w-dens | exch KB (comp/dense)"
                " | msgs | exch cyc | wu cyc\n");
    std::vector<std::vector<EpochRow>> grid;
    for (const int shards : shard_counts) {
        scaleout::ShardTrainConfig cfg;
        cfg.shards = shards;
        cfg.epochs = epochs;
        cfg.batchSize = global_batch;
        cfg.sliceSamples = slice_samples;
        arch::WorkloadTrace trace;
        const auto res = scaleout::trainSharded(
            build, make_opt, splits.first, splits.second, cfg,
            trace.observer());
        std::vector<EpochRow> rows;
        for (size_t e = 0; e < res.history.size(); ++e) {
            const scaleout::ShardEpochStats &s = res.history[e];
            EpochRow r;
            r.trainLoss = s.stats.trainLoss;
            r.valAccuracy = s.stats.valAccuracy;
            r.weightDensity = 1.0 - s.stats.weightSparsity;
            r.exchangeCompressedBytes = s.exchange.compressedBytes;
            r.exchangeDenseBytes = s.exchange.denseBytes;
            r.exchangeMessages = s.exchange.messages;
            const arch::NetworkCost nc = acc.evaluateTrace(trace, e);
            r.modeledExchangeCycles = nc.wu.interconnectCycles;
            r.modeledWuCycles = nc.wu.cycles;
            r.modeledTotalCycles = nc.totalCycles();
            rows.push_back(r);
            std::printf("%6d | %5zu |   %.3f |  %.3f | %9.1f/%-9.1f "
                        "| %4lld | %8.1f | %8.1f\n",
                        shards, e, r.valAccuracy, r.weightDensity,
                        r.exchangeCompressedBytes / 1024.0,
                        r.exchangeDenseBytes / 1024.0,
                        static_cast<long long>(r.exchangeMessages),
                        r.modeledExchangeCycles, r.modeledWuCycles);
        }
        grid.push_back(std::move(rows));
    }

    // ---- JSON -------------------------------------------------------
    FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"version\": 1,\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    bench::emitHostJson(f);
    std::fprintf(f, "  \"config\": {\"epochs\": %lld, "
                 "\"global_batch\": %lld, \"slice_samples\": %lld, "
                 "\"hidden\": %lld, \"target_sparsity\": 4.0, "
                 "\"interconnect_words_per_cycle\": %.1f, "
                 "\"shard_counts\": [1, 2, 4, 8]},\n",
                 static_cast<long long>(epochs),
                 static_cast<long long>(global_batch),
                 static_cast<long long>(slice_samples),
                 static_cast<long long>(hidden), interconnect_wpc);
    std::fprintf(f, "  \"non_sharded\": {\n");
    emitEpochs(f, plain_rows, /*with_exchange=*/false);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"shard1_twin\": {\n");
    emitEpochs(f, twin_rows, /*with_exchange=*/false);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"runs\": [\n");
    for (size_t i = 0; i < shard_counts.size(); ++i) {
        std::fprintf(f, "   {\"shards\": %d,\n", shard_counts[i]);
        emitEpochs(f, grid[i], /*with_exchange=*/true);
        std::fprintf(f, "   }%s\n",
                     i + 1 < shard_counts.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
