/**
 * @file
 * Figure 13: load-imbalance histogram after half-tile balancing under
 * the Procrustes minibatch-spatial K,N dataflow (VGG-S / Dropback).
 *
 * The paper reports most working sets below 10% overhead with the
 * worst imbalance around 30% — "a vast improvement to the common
 * 40%-50% overheads and up to 2x slowdown without load balancing".
 */

#include "bench_util.h"

#include "arch/imbalance.h"

using namespace procrustes;
using namespace procrustes::arch;

int
main()
{
    bench::banner(
        "Figure 13: load imbalance after half-tile balancing (K,N)",
        "Fig. 13 of MICRO 2020 Procrustes paper");

    const NetworkModel vgg = buildVggS();
    const auto masks = generateMasks(vgg, 5.2, /*seed=*/1);
    const auto profiles = buildProfiles(vgg, masks);
    const ArrayConfig cfg = ArrayConfig::baseline16();

    const auto balanced = collectOverheads(vgg, profiles, Phase::Forward,
                                           MappingKind::KN, 16, cfg,
                                           BalanceMode::HalfTile);
    const auto unbalanced = collectOverheads(
        vgg, profiles, Phase::Forward, MappingKind::KN, 16, cfg,
        BalanceMode::None);

    const ImbalanceHistogram hb =
        buildHistogram(balanced, /*bins=*/9, /*bin_width=*/0.3125);
    const ImbalanceHistogram hu =
        buildHistogram(unbalanced, 9, 0.3125);

    std::printf("\nFraction of working sets per overhead bin "
                "(balanced K,N):\n");
    for (size_t i = 0; i < hb.fraction.size(); ++i) {
        std::printf("  %5.0f%% - %5.0f%% : %6.2f%%\n",
                    100.0 * static_cast<double>(i) * hb.binWidth,
                    100.0 * static_cast<double>(i + 1) * hb.binWidth,
                    100.0 * hb.fraction[i]);
    }
    const ImbalanceHistogram fine = buildHistogram(balanced, 32, 0.05);
    std::printf("\nbalanced:   mean %.1f%%  max %.1f%%  <10%%: %.1f%% "
                "of sets\n",
                100.0 * hb.meanOverhead, 100.0 * hb.maxOverhead,
                100.0 * (fine.fraction[0] + fine.fraction[1]));
    std::printf("unbalanced: mean %.1f%%  max %.1f%%\n",
                100.0 * hu.meanOverhead, 100.0 * hu.maxOverhead);
    std::printf("(paper: most sets <10%%, worst ~30%%, vs 40-50%% "
                "common without balancing)\n");
    return 0;
}
