/**
 * @file
 * Micro-benchmarks (google-benchmark) for the core components: the
 * quantile estimator, the CSB codec, the half-tile balancer, the WR
 * unit, direct convolution, and the analytic cost model.
 *
 * Not a paper figure — engineering benches that track the cost of the
 * machinery itself (e.g. that quantile estimation really is cheap
 * compared to sorting, the paper's Section III-B argument).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/cost_model.h"
#include "arch/load_balancer.h"
#include "arch/model_zoo.h"
#include "common/rng.h"
#include "nn/conv2d.h"
#include "sparse/csb.h"
#include "sparse/quantile.h"
#include "sparse/weight_recompute.h"

using namespace procrustes;

namespace {

std::vector<float>
randomMagnitudes(size_t n, uint64_t seed)
{
    Xorshift128Plus rng(seed);
    std::vector<float> xs(n);
    for (auto &x : xs)
        x = std::fabs(static_cast<float>(rng.nextGaussian()));
    return xs;
}

void
BM_QuantileEstimatorUpdate(benchmark::State &state)
{
    const auto xs = randomMagnitudes(1 << 16, 1);
    sparse::QuantileEstimator qe(0.9);
    for (auto _ : state) {
        for (float x : xs)
            qe.update(x);
        benchmark::DoNotOptimize(qe.estimate());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_QuantileEstimatorUpdate);

void
BM_ExactSortThreshold(benchmark::State &state)
{
    // The alternative the paper replaces: selection via nth_element
    // over the full candidate set.
    const auto xs = randomMagnitudes(1 << 16, 2);
    for (auto _ : state) {
        auto copy = xs;
        std::nth_element(copy.begin(),
                         copy.begin() + (copy.size() * 9) / 10,
                         copy.end());
        benchmark::DoNotOptimize(copy[(copy.size() * 9) / 10]);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_ExactSortThreshold);

void
BM_ParallelQuantile(benchmark::State &state)
{
    const auto xs = randomMagnitudes(1 << 16, 3);
    sparse::ParallelQuantileEstimator qe(
        0.9, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        for (float x : xs)
            qe.update(x);
        qe.flush();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_ParallelQuantile)->Arg(1)->Arg(4)->Arg(8);

Tensor
sparseWeights(int64_t k, int64_t c, double density)
{
    Xorshift128Plus rng(7);
    Tensor w(Shape{k, c, 3, 3});
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (rng.nextDouble() < density)
            w.at(i) = static_cast<float>(rng.nextGaussian());
    }
    return w;
}

void
BM_CsbEncode(benchmark::State &state)
{
    const Tensor w = sparseWeights(64, 64, 0.2);
    for (auto _ : state) {
        auto csb = sparse::CsbTensor::encodeConvFilters(w);
        benchmark::DoNotOptimize(csb.nnz());
    }
    state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_CsbEncode);

void
BM_CsbDecodeRotated(benchmark::State &state)
{
    const Tensor w = sparseWeights(64, 64, 0.2);
    const auto csb = sparse::CsbTensor::encodeConvFilters(w);
    for (auto _ : state) {
        Tensor out = csb.decodeRotated180();
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_CsbDecodeRotated);

void
BM_HalfTileRebalance(benchmark::State &state)
{
    Xorshift128Plus rng(9);
    std::vector<arch::TileHalves> tiles(16);
    for (auto &t : tiles) {
        t.first = rng.nextDouble();
        t.second = rng.nextDouble();
    }
    for (auto _ : state) {
        auto out = arch::rebalanceHalfTiles(tiles);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_HalfTileRebalance);

void
BM_WeightRecompute(benchmark::State &state)
{
    const sparse::WeightRecomputeUnit wr(42);
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wr.initialWeight(i++, 0.05f, 0.9f));
    }
}
BENCHMARK(BM_WeightRecompute);

void
BM_ConvForward(benchmark::State &state)
{
    nn::Conv2dConfig cfg;
    cfg.inChannels = 16;
    cfg.outChannels = 32;
    cfg.kernel = 3;
    cfg.pad = 1;
    nn::Conv2d conv(cfg, "bench");
    Xorshift128Plus rng(11);
    Tensor x(Shape{4, 16, 16, 16});
    x.fillGaussian(rng, 1.0f);
    for (auto _ : state) {
        Tensor y = conv.forward(x, true);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_ConvForward);

void
BM_CostModelLayer(benchmark::State &state)
{
    const arch::LayerShape layer =
        arch::convLayer("bench", 256, 256, 3, 14);
    sparse::SyntheticMaskConfig mc;
    mc.targetDensity = 0.2;
    const auto mask = sparse::makeSyntheticMask(256, 256, 3, 3, mc);
    const arch::LayerSparsityProfile profile(mask, 0.5);
    arch::CostOptions opts;
    const arch::CostModel cm(arch::ArrayConfig::baseline16(), opts);
    for (auto _ : state) {
        auto cost = cm.evaluatePhase(layer, arch::Phase::Forward,
                                     arch::MappingKind::KN, profile,
                                     16);
        benchmark::DoNotOptimize(cost.cycles);
    }
}
BENCHMARK(BM_CostModelLayer);

} // namespace

BENCHMARK_MAIN();
