/**
 * @file
 * Figure 17: energy breakdown (DRAM / GLB / RF / MAC) of the K,N
 * dataflow across the five CNNs, dense vs sparse, per training phase.
 *
 * Shape claims under test: MACs dominate FP32 training energy; fw/bw
 * save via weight sparsity and wu via activation sparsity; higher
 * sparsity ratios convert into bigger savings (ResNet18 best);
 * MobileNet v2 benefits less because depthwise convolutions shift
 * energy towards DRAM.
 */

#include "bench_util.h"

#include "arch/accelerator.h"

using namespace procrustes;
using namespace procrustes::arch;

int
main()
{
    bench::banner("Figure 17: energy breakdown, K,N dataflow",
                  "Fig. 17 of MICRO 2020 Procrustes paper");

    const int64_t batch = 64;
    const Accelerator dense = Accelerator::denseBaseline();
    const Accelerator sparse_acc = Accelerator::procrustes();

    for (const NetworkModel &m : allModels()) {
        const auto masks = generateMasks(m, m.paperSparsity, 7);
        const auto sp = buildProfiles(m, masks);
        const auto dp = buildDenseProfiles(m);
        const NetworkCost dc = dense.evaluate(m, dp, batch);
        const NetworkCost sc = sparse_acc.evaluate(m, sp, batch);

        std::printf("\n--- %s (%s, %.1fx sparsity) ---\n",
                    m.name.c_str(), m.dataset.c_str(), m.paperSparsity);
        bench::energyRow("fw (D)", dc.fw);
        bench::energyRow("fw (S)", sc.fw);
        bench::energyRow("bw (D)", dc.bw);
        bench::energyRow("bw (S)", sc.bw);
        bench::energyRow("wu (D)", dc.wu);
        bench::energyRow("wu (S)", sc.wu);
        std::printf("%-24s %.2fx   (DRAM share of sparse total: "
                    "%.1f%%)\n",
                    "energy savings:",
                    dc.totalEnergyJ() / sc.totalEnergyJ(),
                    100.0 * sc.total().dramEnergyJ /
                        sc.totalEnergyJ());
    }
    std::printf("\n(paper: 2.27x-3.26x energy savings; ResNet18 best "
                "at 3.26x; MobileNet v2 DRAM-heavier at 2.39x)\n");
    return 0;
}
