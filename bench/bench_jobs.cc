/**
 * @file
 * Multi-tenant training-service bench: four tenant jobs (spiral-task
 * MLPs on the CSB sparse backend, two gradual-pruning schedules, one
 * momentum-SGD, one plain-SGD) run twice — each solo, then all four
 * multiplexed by the fair-share JobScheduler over the shared thread
 * pool — and the bench records both trajectories so the schema
 * checker can verify the service's isolation guarantee: a job under
 * the scheduler is bitwise identical to the same job running alone.
 *
 * A resume block exercises the checkpoint path end to end: the first
 * job is trained to its midpoint, snapshotted (timed, byte-counted),
 * restored into a fresh engine, run to completion, and compared
 * bitwise against the solo run's final weights.
 *
 * Emits BENCH_jobs.json v1 (schema documented in EXPERIMENTS.md,
 * checked by tools/check_bench_schema.py jobs). Trajectory floats are
 * printed with %.17g so exact equality survives the JSON round trip.
 *
 * Usage: bench_jobs [--smoke] [--out PATH]
 *   --smoke   3 epochs on a smaller net (CI wiring check)
 *   --out     output JSON path (default BENCH_jobs.json)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/linear.h"
#include "serve/job_scheduler.h"
#include "serve/training_job.h"
#include "sparse/gradual_pruning.h"
#include "train_util.h"

using namespace procrustes;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct JobSpec
{
    std::string name;
    uint64_t netSeed = 0;
    uint64_t shuffleSeed = 0;
    serve::OptimizerFactory makeOpt;
};

std::vector<JobSpec>
tenantSpecs()
{
    std::vector<JobSpec> specs;
    specs.push_back(
        {"prune-lottery", 11, 7, [] {
             sparse::GradualPruningConfig pc;
             pc.targetSparsity = 4.0;
             pc.lr = 0.08f;
             pc.warmupIterations = 10;
             pc.pruneInterval = 5;
             pc.pruneFraction = 0.25;
             return std::make_unique<
                 sparse::GradualMagnitudePruningOptimizer>(pc);
         }});
    specs.push_back(
        {"prune-eager", 12, 8, [] {
             sparse::GradualPruningConfig pc;
             pc.targetSparsity = 6.0;
             pc.lr = 0.08f;
             pc.warmupIterations = 6;
             pc.pruneInterval = 3;
             pc.pruneFraction = 0.4;
             return std::make_unique<
                 sparse::GradualMagnitudePruningOptimizer>(pc);
         }});
    specs.push_back(
        {"sgd-momentum", 13, 9, [] {
             return std::make_unique<nn::Sgd>(0.05f, 0.9f);
         }});
    specs.push_back({"sgd-plain", 14, 10, [] {
                         return std::make_unique<nn::Sgd>(0.05f);
                     }});
    return specs;
}

std::unique_ptr<serve::TrainingJob>
makeJob(const JobSpec &spec, int64_t epochs, int64_t batch,
        int64_t hidden, const nn::Dataset &train,
        const nn::Dataset &val)
{
    serve::JobConfig jc;
    jc.name = spec.name;
    jc.epochs = epochs;
    jc.batchSize = batch;
    jc.shuffleSeed = spec.shuffleSeed;
    const uint64_t seed = spec.netSeed;
    return std::make_unique<serve::TrainingJob>(
        jc,
        [seed, hidden](nn::Network &net) {
            bench::buildMlp(net, seed, hidden);
            bench::useSparseBackend(net);
        },
        spec.makeOpt, &train, &val);
}

void
emitEpochs(FILE *f, const std::vector<nn::EpochStats> &hist)
{
    std::fprintf(f, "      \"epochs\": [\n");
    for (size_t e = 0; e < hist.size(); ++e) {
        const nn::EpochStats &s = hist[e];
        std::fprintf(f,
                     "        {\"epoch\": %lld, \"train_loss\": %.17g, "
                     "\"val_accuracy\": %.17g, "
                     "\"weight_density\": %.17g}%s\n",
                     static_cast<long long>(s.epoch), s.trainLoss,
                     s.valAccuracy, 1.0 - s.weightSparsity,
                     e + 1 < hist.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_jobs.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 1;
        }
    }

    bench::banner(
        "Multi-tenant training service: scheduler + checkpoint/resume",
        "beyond the paper — serving N sparse-training tenants on one "
        "engine with bitwise isolation and resumability");

    const int64_t hidden = smoke ? 16 : 48;
    const int64_t epochs = smoke ? 3 : 10;
    const int64_t batch = 32;
    const auto splits = bench::spiralSplits();
    const auto specs = tenantSpecs();

    // ---- solo runs --------------------------------------------------
    std::vector<std::vector<nn::EpochStats>> solo_hist;
    std::vector<std::vector<float>> solo_weights;
    double sequential_ms = 0.0;
    for (const JobSpec &spec : specs) {
        auto job = makeJob(spec, epochs, batch, hidden, splits.first,
                           splits.second);
        const auto t0 = std::chrono::steady_clock::now();
        job->run();
        sequential_ms += msSince(t0);
        solo_hist.push_back(job->history());
        std::vector<float> flat;
        for (nn::Param *p : job->network().params()) {
            const float *v = p->value.data();
            flat.insert(flat.end(), v, v + p->value.numel());
        }
        solo_weights.push_back(std::move(flat));
        std::printf("solo       %-14s final acc %.3f  density %.3f\n",
                    spec.name.c_str(),
                    job->history().back().valAccuracy,
                    1.0 - job->history().back().weightSparsity);
    }

    // ---- concurrent under the scheduler -----------------------------
    serve::JobScheduler sched;
    std::vector<serve::TrainingJob *> handles;
    for (const JobSpec &spec : specs) {
        handles.push_back(sched.addJob(makeJob(
            spec, epochs, batch, hidden, splits.first, splits.second)));
    }
    int64_t max_spread = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (sched.runRound() > 0) {
        int64_t lo = epochs;
        int64_t hi = 0;
        bool any = false;
        for (serve::TrainingJob *j : handles) {
            if (j->finished())
                continue;
            any = true;
            lo = std::min(lo, j->epochsCompleted());
            hi = std::max(hi, j->epochsCompleted());
        }
        if (any)
            max_spread = std::max(max_spread, hi - lo);
    }
    const double concurrent_ms = msSince(t0);
    for (size_t j = 0; j < handles.size(); ++j) {
        std::printf("concurrent %-14s final acc %.3f  density %.3f\n",
                    specs[j].name.c_str(),
                    handles[j]->history().back().valAccuracy,
                    1.0 - handles[j]->history().back().weightSparsity);
    }

    // ---- checkpoint / resume on tenant 0 ----------------------------
    const int64_t total_steps =
        static_cast<int64_t>(solo_hist[0].size()) *
        ((splits.first.size() + batch - 1) / batch);
    const int64_t checkpoint_step = total_steps / 2;
    std::vector<uint8_t> blob;
    double save_ms = 0.0;
    {
        auto first = makeJob(specs[0], epochs, batch, hidden,
                             splits.first, splits.second);
        while (first->globalStep() < checkpoint_step)
            first->step();
        const auto ts = std::chrono::steady_clock::now();
        blob = first->checkpoint();
        save_ms = msSince(ts);
    }
    auto resumed = makeJob(specs[0], epochs, batch, hidden,
                           splits.first, splits.second);
    const auto tr = std::chrono::steady_clock::now();
    resumed->restore(blob);
    const double restore_ms = msSince(tr);
    resumed->run();
    const int64_t resumed_steps =
        resumed->globalStep() - checkpoint_step;

    bool bitwise_equal = true;
    {
        size_t off = 0;
        for (nn::Param *p : resumed->network().params()) {
            const float *v = p->value.data();
            for (int64_t i = 0; i < p->value.numel(); ++i) {
                if (v[i] != solo_weights[0][off + static_cast<size_t>(i)])
                    bitwise_equal = false;
            }
            off += static_cast<size_t>(p->value.numel());
        }
        bitwise_equal = bitwise_equal && off == solo_weights[0].size();
    }
    std::printf("resume     %-14s ckpt@%lld/%lld  %zu bytes  "
                "save %.2f ms  restore %.2f ms  bitwise %s\n",
                specs[0].name.c_str(),
                static_cast<long long>(checkpoint_step),
                static_cast<long long>(total_steps), blob.size(),
                save_ms, restore_ms, bitwise_equal ? "yes" : "NO");

    // ---- JSON -------------------------------------------------------
    FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"version\": 1,\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    bench::emitHostJson(f);
    std::fprintf(f,
                 "  \"config\": {\"jobs\": %zu, \"epochs\": %lld, "
                 "\"batch\": %lld, \"hidden\": %lld,\n"
                 "    \"job_names\": [",
                 specs.size(), static_cast<long long>(epochs),
                 static_cast<long long>(batch),
                 static_cast<long long>(hidden));
    for (size_t j = 0; j < specs.size(); ++j)
        std::fprintf(f, "\"%s\"%s", specs[j].name.c_str(),
                     j + 1 < specs.size() ? ", " : "");
    std::fprintf(f, "]},\n");

    std::fprintf(f, "  \"jobs\": [\n");
    for (size_t j = 0; j < specs.size(); ++j) {
        std::fprintf(f, "   {\"name\": \"%s\",\n",
                     specs[j].name.c_str());
        std::fprintf(f, "    \"solo\": {\n");
        emitEpochs(f, solo_hist[j]);
        std::fprintf(f, "    },\n");
        std::fprintf(f, "    \"concurrent\": {\n");
        emitEpochs(f, handles[j]->history());
        std::fprintf(f, "    }\n");
        std::fprintf(f, "   }%s\n", j + 1 < specs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    std::fprintf(f,
                 "  \"timing\": {\"sequential_ms\": %.3f, "
                 "\"concurrent_ms\": %.3f},\n",
                 sequential_ms, concurrent_ms);
    std::fprintf(f,
                 "  \"fairness\": {\"rounds\": %lld, "
                 "\"max_epoch_spread\": %lld},\n",
                 static_cast<long long>(sched.roundsExecuted()),
                 static_cast<long long>(max_spread));
    std::fprintf(f,
                 "  \"resume\": {\"job\": \"%s\", \"total_steps\": %lld, "
                 "\"checkpoint_step\": %lld, \"resumed_steps\": %lld,\n"
                 "    \"checkpoint_bytes\": %zu, \"save_ms\": %.3f, "
                 "\"restore_ms\": %.3f, \"bitwise_equal\": %s}\n",
                 specs[0].name.c_str(),
                 static_cast<long long>(total_steps),
                 static_cast<long long>(checkpoint_step),
                 static_cast<long long>(resumed_steps), blob.size(),
                 save_ms, restore_ms, bitwise_equal ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return bitwise_equal ? 0 : 1;
}
