/**
 * @file
 * Figure 16: validation accuracy at multiple pruning ratios versus the
 * unpruned baseline.
 *
 * Paper: ResNet18 at 2.9x / 5.8x / 11.7x and MobileNet v2 at 7x / 10x
 * on ImageNet. Substitute: the blob CNN at the ResNet18 ratios and the
 * spiral MLP at the MobileNet ratios. Claim under test: accuracy holds
 * across increasing sparsity until capacity runs out.
 */

#include "bench_util.h"
#include "train_util.h"

using namespace procrustes;
using namespace procrustes::bench;

int
main()
{
    banner("Figure 16: accuracy across pruning ratios",
           "Fig. 16 of MICRO 2020 Procrustes paper");

    {
        std::printf("\n--- blob CNN (ResNet18 stand-in) ---\n");
        const auto [train, val] = blobSplits();
        nn::TrainConfig tc;
        tc.epochs = 24;
        tc.batchSize = 16;

        nn::Network dense;
        buildCnn(dense, 6, 2, /*width=*/24);
        nn::Sgd sgd(0.05f);
        printCurve("baseline (SGD)",
                   trainNetwork(dense, sgd, train, val, tc), 2);

        for (double sparsity : {2.9, 5.8, 11.7}) {
            nn::Network net;
            buildCnn(net, 6, 2, /*width=*/24);
            sparse::DropbackConfig cfg;
            cfg.sparsity = sparsity;
            cfg.lr = 0.05f;
            cfg.initDecay = 0.95f;
            cfg.decayHorizon = 100;
            cfg.selection = sparse::SelectionMode::QuantileEstimate;
            sparse::DropbackOptimizer opt(cfg);
            char label[64];
            std::snprintf(label, sizeof(label), "Procrustes %.1fx",
                          sparsity);
            printCurve(label, trainNetwork(net, opt, train, val, tc),
                       3);
        }
    }
    {
        std::printf("\n--- spiral MLP (MobileNet v2 stand-in) ---\n");
        const auto [train, val] = spiralSplits();
        nn::TrainConfig tc;
        tc.epochs = 80;
        tc.batchSize = 32;

        nn::Network dense;
        buildMlp(dense, 33, /*hidden=*/192);
        nn::Sgd sgd(0.15f);
        printCurve("baseline (SGD)",
                   trainNetwork(dense, sgd, train, val, tc), 8);

        for (double sparsity : {7.0, 10.0}) {
            nn::Network net;
            buildMlp(net, 33, /*hidden=*/192);
            sparse::DropbackConfig cfg;
            cfg.sparsity = sparsity;
            cfg.lr = 0.15f;
            cfg.initDecay = 0.95f;
            cfg.decayHorizon = 250;
            cfg.selection = sparse::SelectionMode::QuantileEstimate;
            sparse::DropbackOptimizer opt(cfg);
            char label[64];
            std::snprintf(label, sizeof(label), "Procrustes %.0fx",
                          sparsity);
            printCurve(label, trainNetwork(net, opt, train, val, tc),
                       8);
        }
    }

    std::printf("\n(paper: ResNet18 holds top-1 accuracy to 11.7x; "
                "MobileNet v2 to 10x)\n");
    return 0;
}
