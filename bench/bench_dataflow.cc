/**
 * @file
 * Dataflow-experiment sweep on the cycle-level simulator: trains the
 * blob-image CNN with gradual pruning on the CSB sparse backend (same
 * recipe as cosim_trajectory), takes the final measured epoch — the
 * high-sparsity regime where serial psum drain dominates — builds its
 * wave geometry ONCE (sim::buildEpochWavePlan; the geometry depends
 * only on the measured masks, never on SimConfig), and re-clocks it
 * across a grid of GLB banks x PE FIFO depth x unicast bandwidth x
 * drain mode x DRAM refill rate. Each point records total cycles, the
 * full cycle decomposition (compute / drain / overlapped drain / GLB
 * conflict replay / exposed refill stall), conflict and backpressure
 * counters, and analytic_cycle_ratio against the co-run analytic
 * reference from Accelerator::evaluateTrace (refill-aware when the
 * point charges refill). This is the Figures 18-19-shaped experiment:
 * how much array idle time double-buffered outputs reclaim at
 * measured sparsity, and where bank count / FIFO depth / bandwidth
 * stop mattering.
 *
 * Emits BENCH_dataflow.json (schema in EXPERIMENTS.md, validated by
 * tools/check_bench_schema.py dataflow).
 *
 * Usage: bench_dataflow [--smoke] [--out PATH]
 *   --smoke   2 epochs on a smaller net and a reduced grid (CI)
 *   --out     output JSON path (default BENCH_dataflow.json)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/accelerator.h"
#include "arch/workload_trace.h"
#include "bench_util.h"
#include "common/logging.h"
#include "sim/cycle_sim.h"
#include "sparse/gradual_pruning.h"
#include "train_util.h"

using namespace procrustes;

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_dataflow.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 1;
        }
    }

    bench::banner("Dataflow sweep: measured-epoch replay across "
                  "SimConfig knobs",
                  "double-buffered drain + DRAM refill at measured "
                  "sparsity (Figures 18-19 methodology)");

    nn::Network net;
    bench::buildCnn(net, 6, /*seed=*/3, /*width=*/smoke ? 8 : 16);
    bench::useSparseBackend(net);
    auto splits = bench::blobSplits(6);

    sparse::GradualPruningConfig pcfg;
    pcfg.targetSparsity = 4.0;
    pcfg.lr = 0.05f;
    pcfg.pruneInterval = 30;
    pcfg.pruneFraction = 0.2;
    pcfg.warmupIterations = 30;
    sparse::GradualMagnitudePruningOptimizer opt(pcfg);

    nn::TrainConfig tc;
    tc.epochs = smoke ? 2 : 10;
    tc.batchSize = 16;

    arch::WorkloadTrace trace;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 trace.observer());

    // The sweep replays the FINAL epoch: maximum pruning, where drain
    // and refill effects are largest and the serial ratio peaks.
    const size_t epoch_idx = trace.epochCount() - 1;
    const arch::EpochTrace &et = trace.epoch(epoch_idx);
    const arch::Accelerator procrustes = arch::Accelerator::procrustes();
    const double dram_rate =
        procrustes.costModel().config().dramWordsPerCycle();

    // Analytic references from the co-running cost model: the plain
    // compute reference (refill-off points) and the refill-aware one
    // (refill-on points), each via Accelerator::evaluateTrace.
    sim::TraceSimResult co_serial;
    procrustes.evaluateTrace(trace, epoch_idx, nullptr, &co_serial);
    sim::SimConfig refill_cfg;
    refill_cfg.dramWordsPerCycle = dram_rate;
    sim::TraceSimResult co_refill;
    procrustes.evaluateTrace(trace, epoch_idx, nullptr, &co_refill,
                             refill_cfg);

    // Build the epoch's wave geometry once; every sweep point re-clocks
    // this plan (the masks — and so the waves — are knob-independent).
    const sim::EpochWavePlan plan = sim::buildEpochWavePlan(
        et, procrustes.mapping(), procrustes.costModel().config(),
        procrustes.costModel().options().balance);

    // Plan-reuse self-check: the cached-geometry path must reproduce
    // the co-run simulations bit for bit.
    {
        const sim::TraceSimResult chk =
            sim::simulateEpochPlan(plan, sim::SimConfig{});
        PROCRUSTES_ASSERT(chk.total.cycles == co_serial.total.cycles,
                          "plan replay diverged from evaluateTrace co-run");
        const sim::TraceSimResult chk_r =
            sim::simulateEpochPlan(plan, refill_cfg);
        PROCRUSTES_ASSERT(chk_r.total.cycles == co_refill.total.cycles,
                          "refill plan replay diverged from co-run");
    }

    const std::vector<int> banks_axis =
        smoke ? std::vector<int>{32, 64}
              : std::vector<int>{16, 32, 64, 128};
    const std::vector<int> fifo_axis =
        smoke ? std::vector<int>{8} : std::vector<int>{2, 8, 32};
    const std::vector<int> unicast_axis =
        smoke ? std::vector<int>{8, 16}
              : std::vector<int>{4, 8, 16, 32};
    const std::vector<bool> drain_axis = {false, true};
    const std::vector<double> dram_axis = {0.0, dram_rate};

    FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"version\": 1,\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    bench::emitHostJson(f);
    std::fprintf(f,
                 "  \"config\": {\"epochs\": %lld, \"batch\": %lld, "
                 "\"target_sparsity\": %.1f, \"epoch_index\": %zu,\n"
                 "    \"weight_density\": %.4f, \"iact_density\": %.4f},\n",
                 static_cast<long long>(tc.epochs),
                 static_cast<long long>(tc.batchSize),
                 pcfg.targetSparsity, epoch_idx, et.meanWeightDensity(),
                 et.meanIactDensity());
    std::fprintf(f,
                 "  \"analytic\": {\"compute_cycles\": %.6g, "
                 "\"refill_ref_cycles\": %.6g, "
                 "\"dram_words_per_cycle\": %.4f},\n",
                 co_serial.analyticRefCycles, co_refill.analyticRefCycles,
                 dram_rate);
    std::fprintf(f, "  \"grid\": {\"glb_banks\": [");
    for (size_t i = 0; i < banks_axis.size(); ++i)
        std::fprintf(f, "%s%d", i ? ", " : "", banks_axis[i]);
    std::fprintf(f, "], \"pe_fifo_depth\": [");
    for (size_t i = 0; i < fifo_axis.size(); ++i)
        std::fprintf(f, "%s%d", i ? ", " : "", fifo_axis[i]);
    std::fprintf(f, "], \"unicast_words_per_cycle\": [");
    for (size_t i = 0; i < unicast_axis.size(); ++i)
        std::fprintf(f, "%s%d", i ? ", " : "", unicast_axis[i]);
    std::fprintf(f,
                 "],\n    \"drain\": [\"serial\", \"double_buffered\"], "
                 "\"dram_words_per_cycle\": [0.0, %.4f]},\n",
                 dram_rate);
    std::fprintf(f, "  \"points\": [\n");

    std::printf("banks | fifo | uni | drain | dram |     cycles | "
                "overlap |  refill |  stall | sim/an\n");
    const size_t total_points = banks_axis.size() * fifo_axis.size() *
                                unicast_axis.size() * drain_axis.size() *
                                dram_axis.size();
    size_t emitted = 0;
    double dflt_serial = -1.0, dflt_db = -1.0;
    for (int banks : banks_axis) {
        for (int fifo : fifo_axis) {
            for (int uni : unicast_axis) {
                for (bool db : drain_axis) {
                    for (double dram : dram_axis) {
                        sim::SimConfig cfg;
                        cfg.glbBanks = banks;
                        cfg.peFifoDepth = fifo;
                        cfg.unicastWordsPerCycle = uni;
                        cfg.doubleBufferOutputs = db;
                        cfg.dramWordsPerCycle = dram;
                        const sim::TraceSimResult r =
                            sim::simulateEpochPlan(plan, cfg);
                        const double ref =
                            dram > 0.0 ? co_refill.analyticRefCycles
                                       : co_serial.analyticRefCycles;
                        const double ratio =
                            ref > 0.0 ? static_cast<double>(
                                            r.total.cycles) /
                                            ref
                                      : -1.0;
                        if (banks == 64 && fifo == 8 && uni == 16 &&
                            dram == 0.0) {
                            (db ? dflt_db : dflt_serial) = ratio;
                        }
                        std::fprintf(
                            f,
                            "    {\"glb_banks\": %d, "
                            "\"pe_fifo_depth\": %d, "
                            "\"unicast_words_per_cycle\": %d, "
                            "\"drain\": \"%s\", "
                            "\"dram_words_per_cycle\": %.4f,\n"
                            "     \"cycles\": %lld, "
                            "\"compute_cycles\": %lld, "
                            "\"drain_cycles\": %lld, "
                            "\"overlapped_drain_cycles\": %lld,\n"
                            "     \"glb_conflict_cycles\": %lld, "
                            "\"glb_conflicts\": %lld, "
                            "\"fifo_backpressure_cycles\": %lld,\n"
                            "     \"dram_refill_cycles\": %lld, "
                            "\"dram_stall_cycles\": %lld, "
                            "\"macs_retired\": %lld,\n"
                            "     \"analytic_cycle_ratio\": %.4f}%s\n",
                            banks, fifo, uni,
                            db ? "double_buffered" : "serial", dram,
                            static_cast<long long>(r.total.cycles),
                            static_cast<long long>(
                                r.total.computeCycles),
                            static_cast<long long>(r.total.drainCycles),
                            static_cast<long long>(
                                r.total.overlappedDrainCycles),
                            static_cast<long long>(
                                r.total.glbConflictCycles),
                            static_cast<long long>(r.total.glbConflicts),
                            static_cast<long long>(
                                r.total.fifoBackpressureCycles),
                            static_cast<long long>(
                                r.total.dramRefillCycles),
                            static_cast<long long>(
                                r.total.dramStallCycles),
                            static_cast<long long>(r.total.macsRetired),
                            ratio,
                            ++emitted < total_points ? "," : "");
                        std::printf(
                            "%5d | %4d | %3d | %s | %4.1f | %10lld | "
                            "%7lld | %7lld | %6lld | %.2f\n",
                            banks, fifo, uni, db ? "   db " : "serial",
                            dram,
                            static_cast<long long>(r.total.cycles),
                            static_cast<long long>(
                                r.total.overlappedDrainCycles),
                            static_cast<long long>(
                                r.total.dramRefillCycles),
                            static_cast<long long>(
                                r.total.dramStallCycles),
                            ratio);
                    }
                }
            }
        }
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"default_point\": {\"serial_ratio\": %.4f, "
                 "\"double_buffered_ratio\": %.4f}\n",
                 dflt_serial, dflt_db);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("default knobs: serial ratio %.2f -> double-buffered "
                "%.2f\n",
                dflt_serial, dflt_db);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
