/**
 * @file
 * Figure 15: validation accuracy over training for the full Procrustes
 * scheme versus the unpruned SGD baseline, on three tasks.
 *
 * Paper: VGG-S, DenseNet, WRN-28-10 on CIFAR-10 over 236-462 epochs.
 * Substitute: three synthetic tasks / architectures (spiral MLP, blob
 * CNN, wide blob CNN) exercising the same optimizer. Claim under test:
 * Procrustes (decay + streaming quantile selection) converges to the
 * dense baseline's accuracy in comparable time.
 */

#include "bench_util.h"
#include "train_util.h"

using namespace procrustes;
using namespace procrustes::bench;

namespace {

void
runScenario(const std::string &name, nn::Network &dense_net,
            nn::Network &sparse_net, const nn::Dataset &train,
            const nn::Dataset &val, const nn::TrainConfig &tc, float lr,
            double sparsity, int64_t horizon)
{
    nn::Sgd sgd(lr);
    const auto dense_hist =
        trainNetwork(dense_net, sgd, train, val, tc);

    sparse::DropbackConfig cfg;
    cfg.sparsity = sparsity;
    cfg.lr = lr;
    cfg.initDecay = 0.95f;
    cfg.decayHorizon = horizon;
    cfg.selection = sparse::SelectionMode::QuantileEstimate;
    sparse::DropbackOptimizer opt(cfg);
    const auto sparse_hist =
        trainNetwork(sparse_net, opt, train, val, tc);

    std::printf("\n--- %s (sparsity target %.1fx) ---\n", name.c_str(),
                sparsity);
    const size_t stride =
        std::max<size_t>(1, dense_hist.size() / 10);
    printCurve("baseline (SGD)", dense_hist, stride);
    printCurve("Procrustes", sparse_hist, stride);
}

} // namespace

int
main()
{
    banner("Figure 15: Procrustes vs dense SGD accuracy curves",
           "Fig. 15 of MICRO 2020 Procrustes paper");

    {
        const auto [train, val] = spiralSplits();
        nn::TrainConfig tc;
        tc.epochs = 50;
        tc.batchSize = 32;
        nn::Network dense;
        buildMlp(dense, 33);
        nn::Network sparse_net;
        buildMlp(sparse_net, 33);
        runScenario("spiral MLP  (VGG-S stand-in)", dense, sparse_net,
                    train, val, tc, 0.15f, 3.0, 200);
    }
    {
        const auto [train, val] = blobSplits();
        nn::TrainConfig tc;
        tc.epochs = 24;
        tc.batchSize = 16;
        nn::Network dense;
        buildCnn(dense, 6, 2, /*width=*/16);
        nn::Network sparse_net;
        buildCnn(sparse_net, 6, 2, /*width=*/16);
        runScenario("blob CNN    (DenseNet stand-in)", dense,
                    sparse_net, train, val, tc, 0.05f, 3.9, 100);
    }
    {
        const auto [train, val] = blobSplits(8);
        nn::TrainConfig tc;
        tc.epochs = 24;
        tc.batchSize = 16;
        nn::Network dense;
        buildCnn(dense, 8, 5, /*width=*/24);
        nn::Network sparse_net;
        buildCnn(sparse_net, 8, 5, /*width=*/24);
        runScenario("wide CNN    (WRN stand-in)", dense, sparse_net,
                    train, val, tc, 0.05f, 4.3, 100);
    }

    std::printf("\n(paper: Procrustes reaches state-of-the-art accuracy "
                "as quickly (or faster) than the unpruned baseline)\n");
    return 0;
}
