/**
 * @file
 * Figure 5: load-imbalance histogram of full-PE-array working sets
 * when training VGG-S with Dropback sparsity under the unbalanced
 * weight-stationary C,K mapping.
 *
 * The paper bins execution overhead at ~31% intervals (0%, 31%, 62%,
 * 94%, 125%); a perfectly balanced workload would put 100% of working
 * sets at 0% overhead. The paper observes overheads "frequently in
 * excess of 50%, and sometimes in excess of 100%".
 */

#include "bench_util.h"

#include "arch/imbalance.h"

using namespace procrustes;
using namespace procrustes::arch;

int
main()
{
    bench::banner(
        "Figure 5: load imbalance, unbalanced weight-stationary C,K",
        "Fig. 5 of MICRO 2020 Procrustes paper");

    const NetworkModel vgg = buildVggS();
    const auto masks = generateMasks(vgg, 5.2, /*seed=*/1);
    const auto profiles = buildProfiles(vgg, masks);

    const auto overheads = collectOverheads(
        vgg, profiles, Phase::Forward, MappingKind::CK, 16,
        ArrayConfig::baseline16(), BalanceMode::None);
    const ImbalanceHistogram h =
        buildHistogram(overheads, /*bins=*/9, /*bin_width=*/0.3125);

    std::printf("\nFraction of working sets per overhead bin:\n");
    for (size_t i = 0; i < h.fraction.size(); ++i) {
        std::printf("  %5.0f%% - %5.0f%% : %6.2f%%\n",
                    100.0 * static_cast<double>(i) * h.binWidth,
                    100.0 * static_cast<double>(i + 1) * h.binWidth,
                    100.0 * h.fraction[i]);
    }
    std::printf("\nmean overhead %.1f%%   max %.1f%%\n",
                100.0 * h.meanOverhead, 100.0 * h.maxOverhead);
    std::printf("working sets above  50%% overhead: %.1f%%\n",
                100.0 * h.fractionAbove(0.50));
    std::printf("working sets above 100%% overhead: %.1f%%\n",
                100.0 * h.fractionAbove(1.00));
    std::printf("(paper: frequently >50%%, sometimes >100%%)\n");
    return 0;
}
