/**
 * @file
 * Table III: silicon area and power costs of the Procrustes modules,
 * with the overhead roll-up over an equivalent dense accelerator.
 *
 * Component values are the paper's Synopsys DC / FreePDK 45 nm
 * synthesis results; the per-PE replication and the overhead
 * percentages are recomputed by the area model (the paper reports 14%
 * area and 11% power; the itemized components alone give a few points
 * more because the paper's baseline includes un-itemized control
 * logic).
 */

#include "bench_util.h"

#include "arch/area_model.h"

using namespace procrustes;
using namespace procrustes::arch;

int
main()
{
    bench::banner("Table III: silicon area and power overheads",
                  "Table III of MICRO 2020 Procrustes paper");

    const AreaModel am(256);
    std::printf("\n%-22s %10s %14s %7s %11s\n", "component",
                "power(mW)", "area(um^2)", "per-PE", "Procrustes");
    for (const ComponentArea &c : am.components()) {
        std::printf("%-22s %10.2f %14.2f %7s %11s\n", c.name.c_str(),
                    c.powerMw, c.areaUm2, c.perPe ? "yes" : "no",
                    c.procrustesOnly ? "overhead" : "baseline");
    }

    std::printf("\nRoll-up for a 16x16 (256 PE) accelerator:\n");
    std::printf("  baseline area:   %12.0f um^2\n",
                am.baselineAreaUm2());
    std::printf("  Procrustes area: %12.0f um^2  (overhead %.1f%%; "
                "paper: 14%%)\n",
                am.procrustesAreaUm2(), 100.0 * am.areaOverhead());
    std::printf("  baseline power:   %10.1f mW\n",
                am.baselinePowerMw());
    std::printf("  Procrustes power: %10.1f mW  (overhead %.1f%%; "
                "paper: 11%%)\n",
                am.procrustesPowerMw(), 100.0 * am.powerOverhead());

    const AreaModel am32(1024);
    std::printf("\n32x32 (1024 PE) variant: area overhead %.1f%%, "
                "power overhead %.1f%%\n",
                100.0 * am32.areaOverhead(),
                100.0 * am32.powerOverhead());
    return 0;
}
