/**
 * @file
 * Shared training harness for the accuracy-curve benches
 * (Figures 6, 7, 15, 16).
 *
 * The paper's accuracy experiments run CIFAR-10 / ImageNet for
 * hundreds of epochs; these benches substitute synthetic tasks that a
 * small network learns in under a minute while exercising the exact
 * same optimizer code paths (see DESIGN.md §4). Decay rates are scaled
 * to the shorter iteration budget (the paper's lambda = 0.9 zeroes
 * initial weights by iteration 1000 of ~234k; here training is a few
 * hundred iterations long in total).
 */

#ifndef PROCRUSTES_BENCH_TRAIN_UTIL_H_
#define PROCRUSTES_BENCH_TRAIN_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sparse/dropback.h"

namespace procrustes {
namespace bench {

/** The spiral-task MLP (over-parameterized for the task). */
inline void
buildMlp(nn::Network &net, uint64_t seed, int64_t hidden = 128)
{
    net.add<nn::Flatten>("fl");
    net.add<nn::Linear>(2, hidden, "fc1");
    net.add<nn::ReLU>("r1");
    net.add<nn::Linear>(hidden, hidden, "fc2");
    net.add<nn::ReLU>("r2");
    net.add<nn::Linear>(hidden, 3, "fc3");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

/** The blob-image CNN (conv + batch-norm + ReLU stack). */
inline void
buildCnn(nn::Network &net, int classes, uint64_t seed,
         int64_t width = 12)
{
    nn::Conv2dConfig c1;
    c1.inChannels = 3;
    c1.outChannels = width;
    c1.kernel = 3;
    c1.pad = 1;
    c1.bias = false;
    net.add<nn::Conv2d>(c1, "conv1");
    net.add<nn::BatchNorm2d>(width, "bn1");
    net.add<nn::ReLU>("r1");
    net.add<nn::MaxPool2d>(2, "pool1");
    nn::Conv2dConfig c2;
    c2.inChannels = width;
    c2.outChannels = width * 2;
    c2.kernel = 3;
    c2.pad = 1;
    c2.bias = false;
    net.add<nn::Conv2d>(c2, "conv2");
    net.add<nn::BatchNorm2d>(width * 2, "bn2");
    net.add<nn::ReLU>("r2");
    net.add<nn::GlobalAvgPool>("gap");
    net.add<nn::Linear>(width * 2, classes, "fc");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

/** Switch every Conv2d AND Linear to the CSB sparse backend, so fc
 *  layers contribute measured (not modelled) MACs to a trace. */
inline void
useSparseBackend(nn::Network &net)
{
    for (size_t i = 0; i < net.size(); ++i) {
        if (auto *conv = dynamic_cast<nn::Conv2d *>(net.layer(i)))
            conv->setBackend(kernels::KernelBackend::kSparse);
        else if (auto *fc = dynamic_cast<nn::Linear *>(net.layer(i)))
            fc->setBackend(kernels::KernelBackend::kSparse);
    }
}

/** Spiral train/val pair. */
inline std::pair<nn::Dataset, nn::Dataset>
spiralSplits()
{
    nn::SpiralConfig cfg;
    cfg.samplesPerClass = 100;
    const nn::Dataset train = nn::makeSpirals(cfg);
    cfg.seed = 91;
    const nn::Dataset val = nn::makeSpirals(cfg);
    return {train, val};
}

/** Blob-image train/val pair (same templates, fresh noise). */
inline std::pair<nn::Dataset, nn::Dataset>
blobSplits(int classes = 6)
{
    nn::BlobImageConfig cfg;
    cfg.numClasses = classes;
    cfg.samplesPerClass = 40;
    const nn::Dataset train = nn::makeBlobImages(cfg);
    cfg.sampleSeed = 77;
    const nn::Dataset val = nn::makeBlobImages(cfg);
    return {train, val};
}

/** Print an accuracy series as one row per sampled epoch. */
inline void
printCurve(const std::string &label,
           const std::vector<nn::EpochStats> &history, size_t stride)
{
    std::printf("%-28s", label.c_str());
    for (size_t i = 0; i < history.size(); i += stride)
        std::printf(" %5.3f", history[i].valAccuracy);
    std::printf("  | final %5.3f  sparsity %4.1f%%\n",
                history.back().valAccuracy,
                100.0 * history.back().weightSparsity);
}

} // namespace bench
} // namespace procrustes

#endif // PROCRUSTES_BENCH_TRAIN_UTIL_H_
