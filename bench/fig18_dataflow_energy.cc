/**
 * @file
 * Figure 18: energy across the four spatial partitionings (PQ, CK,
 * CN, KN), dense vs sparse, per training phase, all five CNNs.
 *
 * Shape claim under test: sparsity saves energy under every mapping,
 * and the mapping choice itself barely moves energy ("the lion's
 * share of the energy use is the same across the different
 * dataflows") — the finding that lets Procrustes pick its mapping for
 * performance alone.
 */

#include "bench_util.h"

#include "arch/accelerator.h"

using namespace procrustes;
using namespace procrustes::arch;

namespace {

/** CK needs the complex interconnect to balance: FullChip mode. */
Accelerator
mappedAccel(MappingKind mk, bool sparse)
{
    CostOptions opts;
    opts.sparse = sparse;
    opts.balance = !sparse ? BalanceMode::None
                   : mk == MappingKind::CK ? BalanceMode::FullChip
                                           : BalanceMode::HalfTile;
    return {ArrayConfig::baseline16(), opts, mk};
}

} // namespace

int
main()
{
    bench::banner("Figure 18: energy across dataflows",
                  "Fig. 18 of MICRO 2020 Procrustes paper");

    const int64_t batch = 64;
    for (const NetworkModel &m : allModels()) {
        const auto masks = generateMasks(m, m.paperSparsity, 7);
        const auto sp = buildProfiles(m, masks);
        const auto dp = buildDenseProfiles(m);

        std::printf("\n--- %s ---\n", m.name.c_str());
        std::printf("%-6s %-7s %10s %10s %10s %12s\n", "map", "mode",
                    "fw (J)", "bw (J)", "wu (J)", "total (J)");
        double lo = 1e300;
        double hi = 0.0;
        for (MappingKind mk : kAllMappings) {
            for (bool sparse : {false, true}) {
                const auto &profiles = sparse ? sp : dp;
                const NetworkCost c =
                    mappedAccel(mk, sparse).evaluate(m, profiles,
                                                     batch);
                std::printf("%-6s %-7s %10.4f %10.4f %10.4f %12.4f\n",
                            mappingName(mk).c_str(),
                            sparse ? "S" : "D", c.fw.totalEnergyJ(),
                            c.bw.totalEnergyJ(), c.wu.totalEnergyJ(),
                            c.totalEnergyJ());
                if (sparse) {
                    lo = std::min(lo, c.totalEnergyJ());
                    hi = std::max(hi, c.totalEnergyJ());
                }
            }
        }
        std::printf("sparse-mode spread across mappings: %.1f%%\n",
                    100.0 * (hi / lo - 1.0));
    }
    std::printf("\n(paper: variations across dataflows are "
                "negligible)\n");
    return 0;
}
