/**
 * @file
 * Figure 6: validation accuracy over training with initial-weight
 * decay versus a no-decay baseline.
 *
 * Paper setup: VGG-S on CIFAR-10, lambda = 0.9 per iteration, all
 * initial weights zero by iteration 1000 (early in epoch 2 of 236+).
 * Substitute: the blob-image CNN (conv/batch-norm/ReLU like VGG-S)
 * with the decay horizon scaled to the shorter run. Claim under test:
 * neither accuracy nor convergence time is affected by the decay, and
 * decay converts ~(1 - 1/sparsity) of the weights to exact zeros.
 */

#include "bench_util.h"
#include "train_util.h"

using namespace procrustes;
using namespace procrustes::bench;

int
main()
{
    banner("Figure 6: initial-weight decay vs no decay",
           "Fig. 6 of MICRO 2020 Procrustes paper");

    const auto [train, val] = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 14;
    tc.batchSize = 16;

    auto run = [&](float decay, int64_t horizon) {
        nn::Network net;
        buildCnn(net, 6, /*seed=*/2);
        sparse::DropbackConfig cfg;
        cfg.sparsity = 5.0;
        cfg.lr = 0.05f;
        cfg.initDecay = decay;
        cfg.decayHorizon = horizon;
        cfg.selection = sparse::SelectionMode::ExactSort;
        sparse::DropbackOptimizer opt(cfg);
        return trainNetwork(net, opt, train, val, tc);
    };

    const auto no_decay = run(1.0f, 1000);
    const auto with_decay = run(0.95f, 100);

    std::printf("\nValidation accuracy by epoch (sampled):\n");
    printCurve("No Init Decay (Alg. 2)", no_decay, 2);
    printCurve("Init Decay (Alg. 3)", with_decay, 2);

    std::printf("\nWeight sparsity after the decay horizon: %.1f%% "
                "(target 1 - 1/5 = 80%%)\n",
                100.0 * with_decay.back().weightSparsity);
    std::printf("(paper: accuracy and convergence unaffected; 80%% of "
                "weights zero once decay completes)\n");
    return 0;
}
