/**
 * @file
 * Figure 19: training latency (cycles) across the four spatial
 * partitionings, dense vs sparse, per phase, all five CNNs.
 *
 * Shape claims under test: the minibatch-spatial mappings (C,N and
 * K,N) are fastest because they load-balance on the simple
 * interconnect; K,N edges out C,N via first-layer utilization; C,K
 * lags despite its complex balancing network (few-channel layers);
 * activation-stationary P,Q is slowest overall.
 */

#include "bench_util.h"

#include "arch/accelerator.h"

using namespace procrustes;
using namespace procrustes::arch;

namespace {

Accelerator
mappedAccel(MappingKind mk, bool sparse)
{
    CostOptions opts;
    opts.sparse = sparse;
    opts.balance = !sparse ? BalanceMode::None
                   : mk == MappingKind::CK ? BalanceMode::FullChip
                                           : BalanceMode::HalfTile;
    return {ArrayConfig::baseline16(), opts, mk};
}

} // namespace

int
main()
{
    bench::banner("Figure 19: training latency across dataflows",
                  "Fig. 19 of MICRO 2020 Procrustes paper");

    const int64_t batch = 64;
    for (const NetworkModel &m : allModels()) {
        const auto masks = generateMasks(m, m.paperSparsity, 7);
        const auto sp = buildProfiles(m, masks);
        const auto dp = buildDenseProfiles(m);

        std::printf("\n--- %s ---\n", m.name.c_str());
        std::printf("%-6s %-7s %12s %12s %12s %14s\n", "map", "mode",
                    "fw (cyc)", "bw (cyc)", "wu (cyc)", "total (cyc)");
        for (MappingKind mk : kAllMappings) {
            for (bool sparse : {false, true}) {
                const auto &profiles = sparse ? sp : dp;
                const NetworkCost c =
                    mappedAccel(mk, sparse).evaluate(m, profiles,
                                                     batch);
                std::printf(
                    "%-6s %-7s %12.4g %12.4g %12.4g %14.4g\n",
                    mappingName(mk).c_str(), sparse ? "S" : "D",
                    c.fw.cycles, c.bw.cycles, c.wu.cycles,
                    c.totalCycles());
            }
        }
    }
    std::printf("\n(paper: K,N fastest, C,N close, C,K behind, P,Q "
                "slowest)\n");
    return 0;
}
