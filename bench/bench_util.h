/**
 * @file
 * Shared formatting helpers for the per-figure bench harnesses.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper's evaluation section and prints the same rows/series the paper
 * reports, so EXPERIMENTS.md can record paper-vs-measured shapes.
 */

#ifndef PROCRUSTES_BENCH_BENCH_UTIL_H_
#define PROCRUSTES_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <thread>

#include "arch/cost_model.h"
#include "common/thread_pool.h"

namespace procrustes {
namespace bench {

/**
 * Emit the shared `"host"` JSON block (with trailing comma) used by
 * every BENCH_*.json: on a single-core host a thread speedup of 1.00
 * means "no scaling headroom existed", not "scaling is broken", so
 * benches record enough to tell the difference.
 */
inline void
emitHostJson(FILE *f)
{
    // hardware_concurrency() may return 0 for "not computable" — that
    // is unknown, not single-core, so only hw == 1 claims single_core
    // (consumers read 0 as "core count unknown").
    const unsigned hw = std::thread::hardware_concurrency();
    std::fprintf(f,
                 "  \"host\": {\"hardware_concurrency\": %u, "
                 "\"threads_used\": %d, \"single_core\": %s},\n",
                 hw, ThreadPool::global().numThreads(),
                 hw == 1 ? "true" : "false");
}

/** Print a figure/table banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("==============================================================\n");
}

/** Print one energy-breakdown row (J). */
inline void
energyRow(const std::string &label, const arch::PhaseCost &c)
{
    std::printf("%-24s dram %8.4f  glb %8.4f  rf %8.4f  mac %8.4f  "
                "total %8.4f J\n",
                label.c_str(), c.dramEnergyJ, c.glbEnergyJ, c.rfEnergyJ,
                c.macEnergyJ, c.totalEnergyJ());
}

/** Print one latency row (cycles). */
inline void
cycleRow(const std::string &label, const arch::PhaseCost &c)
{
    std::printf("%-24s %12.4g cycles  (compute %.4g, dram-side %.4g)\n",
                label.c_str(), c.cycles, c.computeCycles, c.dramCycles);
}

} // namespace bench
} // namespace procrustes

#endif // PROCRUSTES_BENCH_BENCH_UTIL_H_
