/**
 * @file
 * Co-simulation trajectory bench: trains the blob-image CNN with
 * gradual magnitude pruning on the CSB sparse backend, aggregates the
 * measured workload with a WorkloadTrace, and replays every epoch
 * through the Procrustes cost model and the dense training baseline —
 * measured executed MACs, measured compressed weight bytes in the
 * GLB/DRAM traffic terms, and balanced/unbalanced load-imbalance
 * histograms replayed from the epoch-final masks. The cycle-level
 * PE-array simulator co-runs every epoch from the same measured
 * masks/vectors (banked GLB, operand FIFOs, explicit interconnects)
 * and each epoch records its stall breakdown plus
 * analytic_cycle_ratio — the fidelity bound on the analytic cycles —
 * in serial-drain mode plus, since v5, the double-buffered-drain
 * cycles of the same epoch (db_cycles / db_analytic_cycle_ratio,
 * simulated from one shared wave plan).
 * Emits BENCH_cosim.json v5 (schema documented in EXPERIMENTS.md)
 * with host information so single-core results are interpretable.
 *
 * Usage: cosim_trajectory [--smoke] [--out PATH]
 *   --smoke   2 epochs on a smaller net (CI wiring check)
 *   --out     output JSON path (default BENCH_cosim.json)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/accelerator.h"
#include "arch/workload_trace.h"
#include "bench_util.h"
#include "sim/cycle_sim.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "sparse/gradual_pruning.h"
#include "train_util.h"

using namespace procrustes;

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_cosim.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n",
                         argv[0]);
            return 1;
        }
    }

    bench::banner("Co-simulation: measured training workload -> "
                  "accelerator trajectory",
                  "methodology of Section VI (measured masks + "
                  "activation sparsity into the cost model)");

    nn::Network net;
    bench::buildCnn(net, 6, /*seed=*/3, /*width=*/smoke ? 8 : 16);
    bench::useSparseBackend(net);

    auto splits = bench::blobSplits(6);

    sparse::GradualPruningConfig pcfg;
    pcfg.targetSparsity = 4.0;
    pcfg.lr = 0.05f;
    pcfg.pruneInterval = 30;
    pcfg.pruneFraction = 0.2;
    pcfg.warmupIterations = 30;
    sparse::GradualMagnitudePruningOptimizer opt(pcfg);

    nn::TrainConfig tc;
    tc.epochs = smoke ? 2 : 10;
    tc.batchSize = 16;

    arch::WorkloadTrace trace;
    const auto history = trainNetwork(net, opt, splits.first,
                                      splits.second, tc,
                                      trace.observer());

    const arch::Accelerator procrustes = arch::Accelerator::procrustes();
    const arch::Accelerator baseline = arch::Accelerator::denseBaseline();

    FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"version\": 5,\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    bench::emitHostJson(f);
    std::fprintf(f,
                 "  \"config\": {\"epochs\": %lld, \"batch\": %lld, "
                 "\"backend\": \"sparse\", \"target_sparsity\": %.1f},\n",
                 static_cast<long long>(tc.epochs),
                 static_cast<long long>(tc.batchSize),
                 pcfg.targetSparsity);
    std::fprintf(f, "  \"epochs\": [\n");

    std::printf("epoch | val acc | w-dens | a-dens |   macs/step | "
                "speedup | energy x | imb u->b | sim/an | db/an\n");
    for (size_t e = 0; e < trace.epochCount(); ++e) {
        const arch::EpochTrace &et = trace.epoch(e);
        arch::EpochImbalance imb;
        sim::TraceSimResult csim;
        const arch::NetworkCost sc =
            procrustes.evaluateTrace(trace, e, &imb, &csim);
        // Double-buffered-drain co-run of the same epoch: same wave
        // geometry (built once via the plan API), second psum buffer
        // overlapping each drain with the next wave's fill.
        sim::SimConfig db_cfg;
        db_cfg.doubleBufferOutputs = true;
        const sim::EpochWavePlan plan = sim::buildEpochWavePlan(
            et, procrustes.mapping(), procrustes.costModel().config(),
            procrustes.costModel().options().balance);
        const sim::TraceSimResult csim_db =
            sim::simulateEpochPlan(plan, db_cfg);
        const double db_ratio =
            csim.analyticRefCycles > 0.0
                ? static_cast<double>(csim_db.total.cycles) /
                      csim.analyticRefCycles
                : -1.0;
        const arch::NetworkCost dc = baseline.evaluateTrace(trace, e);
        const arch::PhaseCost st = sc.total();
        const arch::PhaseCost dt = dc.total();
        const double speedup = dc.totalCycles() / sc.totalCycles();
        const double eratio = dc.totalEnergyJ() / sc.totalEnergyJ();
        double fw = 0.0, bwd = 0.0, bww = 0.0;
        for (const arch::LayerTrace &l : et.layers) {
            fw += l.fwMacsPerStep();
            bwd += l.bwDataMacsPerStep();
            bww += l.bwWeightMacsPerStep();
        }
        std::fprintf(
            f,
            "    {\"epoch\": %zu, \"train_loss\": %.4f, "
            "\"val_accuracy\": %.4f,\n"
            "     \"weight_density\": %.4f, \"iact_density\": %.4f,\n"
            "     \"measured_macs_per_step\": %.0f,\n"
            "     \"measured_fw_macs\": %.0f, "
            "\"measured_bw_data_macs\": %.0f, "
            "\"measured_bw_weight_macs\": %.0f,\n"
            "     \"csb_weight_bytes\": %lld, "
            "\"dense_weight_bytes\": %lld,\n"
            "     \"procrustes_cycles\": %.6g, "
            "\"procrustes_energy_j\": %.6g,\n"
            "     \"procrustes_glb_energy_j\": %.6g, "
            "\"procrustes_dram_energy_j\": %.6g,\n"
            "     \"dense_cycles\": %.6g, \"dense_energy_j\": %.6g,\n"
            "     \"dense_glb_energy_j\": %.6g, "
            "\"dense_dram_energy_j\": %.6g,\n"
            "     \"imbalance_unbalanced_mean\": %.6f, "
            "\"imbalance_unbalanced_max\": %.6f,\n"
            "     \"imbalance_unbalanced_frac_above_50\": %.6f,\n"
            "     \"imbalance_balanced_mean\": %.6f, "
            "\"imbalance_balanced_max\": %.6f,\n"
            "     \"imbalance_balanced_frac_above_10\": %.6f,\n"
            "     \"cycle_sim\": {\"cycles\": %lld, "
            "\"compute_cycles\": %lld, \"stall_cycles\": %lld,\n"
            "      \"drain_cycles\": %lld, "
            "\"glb_conflict_cycles\": %lld, \"glb_conflicts\": %lld,\n"
            "      \"glb_reads\": %lld, \"glb_writes\": %lld, "
            "\"fifo_backpressure_cycles\": %lld,\n"
            "      \"macs_retired\": %lld, "
            "\"analytic_compute_cycles\": %.6g, "
            "\"analytic_cycle_ratio\": %.4f,\n"
            "      \"db_cycles\": %lld, "
            "\"db_overlapped_drain_cycles\": %lld, "
            "\"db_analytic_cycle_ratio\": %.4f},\n"
            "     \"speedup\": %.3f, \"energy_ratio\": %.3f}%s\n",
            e, history[e].trainLoss, history[e].valAccuracy,
            et.meanWeightDensity(), et.meanIactDensity(),
            et.totalMacsPerStep(), fw, bwd, bww,
            static_cast<long long>(et.totalCsbWeightBytes()),
            static_cast<long long>(et.totalDenseWeightBytes()),
            sc.totalCycles(), sc.totalEnergyJ(), st.glbEnergyJ,
            st.dramEnergyJ, dc.totalCycles(), dc.totalEnergyJ(),
            dt.glbEnergyJ, dt.dramEnergyJ, imb.unbalanced.meanOverhead,
            imb.unbalanced.maxOverhead, imb.unbalanced.fractionAbove(0.5),
            imb.balanced.meanOverhead, imb.balanced.maxOverhead,
            imb.balanced.fractionAbove(0.1),
            static_cast<long long>(csim.total.cycles),
            static_cast<long long>(csim.total.computeCycles),
            static_cast<long long>(csim.total.stallCycles),
            static_cast<long long>(csim.total.drainCycles),
            static_cast<long long>(csim.total.glbConflictCycles),
            static_cast<long long>(csim.total.glbConflicts),
            static_cast<long long>(csim.total.totalGlbReads()),
            static_cast<long long>(csim.total.totalGlbWrites()),
            static_cast<long long>(csim.total.fifoBackpressureCycles),
            static_cast<long long>(csim.total.macsRetired),
            csim.analyticComputeCycles, csim.analyticCycleRatio,
            static_cast<long long>(csim_db.total.cycles),
            static_cast<long long>(csim_db.total.overlappedDrainCycles),
            db_ratio, speedup, eratio,
            e + 1 < trace.epochCount() ? "," : "");
        std::printf("%5zu |   %.3f |  %.3f |  %.3f | %11.0f | %6.2fx | "
                    "%6.2fx | %.3f->%.3f | %.2f | %.2f\n",
                    e, history[e].valAccuracy, et.meanWeightDensity(),
                    et.meanIactDensity(), et.totalMacsPerStep(), speedup,
                    eratio, imb.unbalanced.meanOverhead,
                    imb.balanced.meanOverhead, csim.analyticCycleRatio,
                    db_ratio);
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
