/**
 * @file
 * Figure 7: validation accuracy when streaming quantile estimation
 * replaces exact sorting for the tracked-set threshold.
 *
 * Paper setup: VGG-S / CIFAR-10 at a 7.5x sparsity target; the
 * estimation error tracks extra weights, relaxing the achieved
 * sparsity to 5.2x, with no accuracy cost. Substitute task as in
 * Figure 6; both variants use initial-weight decay.
 */

#include "bench_util.h"
#include "train_util.h"

using namespace procrustes;
using namespace procrustes::bench;

int
main()
{
    banner("Figure 7: quantile estimation vs exact sorting",
           "Fig. 7 of MICRO 2020 Procrustes paper");

    const auto [train, val] = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 20;
    tc.batchSize = 16;

    auto run = [&](sparse::SelectionMode mode) {
        nn::Network net;
        buildCnn(net, 6, /*seed=*/2, /*width=*/20);
        sparse::DropbackConfig cfg;
        cfg.sparsity = 7.5;
        cfg.lr = 0.05f;
        cfg.initDecay = 0.95f;
        cfg.decayHorizon = 100;
        cfg.selection = mode;
        sparse::DropbackOptimizer opt(cfg);
        auto hist = trainNetwork(net, opt, train, val, tc);
        return std::make_pair(hist, opt.trackedFraction());
    };

    const auto [sort_hist, sort_frac] =
        run(sparse::SelectionMode::ExactSort);
    const auto [qe_hist, qe_frac] =
        run(sparse::SelectionMode::QuantileEstimate);

    std::printf("\nValidation accuracy by epoch (sampled):\n");
    printCurve("No Quantile Est. (sort)", sort_hist, 2);
    printCurve("Quantile Estimation", qe_hist, 2);

    std::printf("\nAchieved compression at 7.5x target:\n");
    std::printf("  exact sort:          tracked %5.2f%%  => %.1fx\n",
                100.0 * sort_frac, 1.0 / sort_frac);
    std::printf("  quantile estimation: tracked %5.2f%%  => %.1fx\n",
                100.0 * qe_frac, 1.0 / qe_frac);
    std::printf("(paper: estimation error tracks extra weights, "
                "7.5x -> 5.2x, accuracy unaffected)\n");
    return 0;
}
