/**
 * @file
 * Ablations of the design choices DESIGN.md calls out (not a paper
 * figure):
 *
 *  1. Load-balancing policy (none / half-tile / chip-wide) per
 *     mapping — isolates how much of the K,N speedup comes from the
 *     balancer versus the mapping.
 *  2. QE-unit width — the paper's 4-updates/cycle folding versus
 *     narrower/wider variants, measured as threshold deviation from
 *     the exact quantile.
 *  3. CSB storage versus dense storage per network — the compression
 *     the weight format actually delivers including mask and pointer
 *     overheads.
 *  4. Activation-jitter sensitivity — how wu-phase latency responds
 *     to per-sample activation-density spread.
 */

#include "bench_util.h"

#include <cmath>

#include "arch/accelerator.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "sparse/csb.h"
#include "sparse/quantile.h"

using namespace procrustes;
using namespace procrustes::arch;

namespace {

void
balancerAblation()
{
    std::printf("\n[1] balancing policy vs mapping (VGG-S, sparse, "
                "total cycles, batch 64):\n");
    const NetworkModel m = buildVggS();
    const auto masks = generateMasks(m, 5.2, 7);
    const auto sp = buildProfiles(m, masks);
    std::printf("%-6s %14s %14s %14s\n", "map", "none", "half-tile",
                "full-chip");
    for (MappingKind mk : kAllMappings) {
        double cyc[3];
        int i = 0;
        for (BalanceMode bm : {BalanceMode::None, BalanceMode::HalfTile,
                               BalanceMode::FullChip}) {
            CostOptions opts;
            opts.sparse = true;
            opts.balance = bm;
            const Accelerator acc(ArrayConfig::baseline16(), opts, mk);
            cyc[i++] = acc.evaluate(m, sp, 64).totalCycles();
        }
        std::printf("%-6s %14.4g %14.4g %14.4g   (half-tile closes "
                    "%.0f%% of the gap)\n",
                    mappingName(mk).c_str(), cyc[0], cyc[1], cyc[2],
                    cyc[0] > cyc[2]
                        ? 100.0 * (cyc[0] - cyc[1]) / (cyc[0] - cyc[2])
                        : 0.0);
    }
}

void
qeWidthAblation()
{
    std::printf("\n[2] QE width vs threshold accuracy (half-normal "
                "stream, q = 0.9):\n");
    Xorshift128Plus rng(5);
    std::vector<double> xs(400000);
    for (auto &x : xs)
        x = std::fabs(rng.nextGaussian());
    const double truth =
        exactQuantile(std::vector<double>(xs.begin(), xs.end()), 0.9);
    for (int width : {1, 2, 4, 8, 16}) {
        sparse::ParallelQuantileEstimator qe(0.9, width);
        for (double x : xs)
            qe.update(x);
        qe.flush();
        std::printf("  width %2d: estimate %.4f (true %.4f, error "
                    "%+.1f%%)\n",
                    width, qe.estimate(), truth,
                    100.0 * (qe.estimate() / truth - 1.0));
    }
    std::printf("  (width 4 is the paper's peak-rate design point)\n");
}

void
csbStorageAblation()
{
    std::printf("\n[3] CSB storage vs dense per network (values + "
                "masks + pointers):\n");
    for (const NetworkModel &m : allModels()) {
        const auto masks = generateMasks(m, m.paperSparsity, 7);
        double dense_bytes = 0.0;
        double csb_bytes = 0.0;
        for (size_t i = 0; i < m.layers.size(); ++i) {
            const LayerShape &l = m.layers[i];
            dense_bytes +=
                static_cast<double>(l.weightCount()) * 4.0;
            csb_bytes +=
                static_cast<double>(masks[i].nnz()) * 4.0 +
                static_cast<double>(l.weightCount()) / 8.0 +
                static_cast<double>(l.K * l.effectiveC()) * 4.0;
        }
        std::printf("  %-12s dense %8.1f MB  csb %8.1f MB  => %.2fx "
                    "compression\n",
                    m.name.c_str(), dense_bytes / 1e6, csb_bytes / 1e6,
                    dense_bytes / csb_bytes);
    }
}

void
iactJitterAblation()
{
    std::printf("\n[4] wu-phase latency vs activation-density jitter "
                "(ResNet18, K,N):\n");
    const NetworkModel m = buildResNet18();
    const auto masks = generateMasks(m, 11.7, 7);
    for (double sigma : {0.0, 0.1, 0.25, 0.5}) {
        const auto sp = buildProfiles(m, masks, sigma);
        CostOptions opts;
        opts.sparse = true;
        opts.balance = BalanceMode::HalfTile;
        const Accelerator acc(ArrayConfig::baseline16(), opts,
                              MappingKind::KN);
        double wu = 0.0;
        for (size_t i = 0; i < m.layers.size(); ++i) {
            wu += acc.costModel()
                      .evaluatePhase(m.layers[i], Phase::WeightUpdate,
                                     MappingKind::KN, sp[i], 64)
                      .cycles;
        }
        std::printf("  iact sigma %.2f: wu cycles %.4g\n", sigma, wu);
    }
}

} // namespace

int
main()
{
    bench::banner("Ablations: balancing, QE width, CSB storage, "
                  "activation jitter",
                  "design-choice ablations (DESIGN.md §3)");
    balancerAblation();
    qeWidthAblation();
    csbStorageAblation();
    iactJitterAblation();
    return 0;
}
