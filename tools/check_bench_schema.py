#!/usr/bin/env python3
"""Sanity-check the JSON artifacts emitted by the bench targets.

The bench JSON is hand-printed with fprintf, so a malformed escape or
a missing field ships silently unless something parses it back. This
checker validates that BENCH_kernels.json / BENCH_cosim.json /
BENCH_dataflow.json / BENCH_scaleout.json / BENCH_jobs.json are
well-formed JSON and carry the schema keys EXPERIMENTS.md documents
(including the host block that makes single-core numbers
interpretable). Stdlib only — no third-party dependencies.

Usage:
    check_bench_schema.py kernels BENCH_kernels.json
    check_bench_schema.py cosim BENCH_cosim.json
    check_bench_schema.py dataflow BENCH_dataflow.json
    check_bench_schema.py scaleout BENCH_scaleout.json
    check_bench_schema.py jobs BENCH_jobs.json
"""

import json
import sys

HOST_KEYS = {"hardware_concurrency", "threads_used", "single_core"}

KERNELS_TOP_KEYS = {"version", "mode", "threads", "simd", "host",
                    "layers", "fc_layers", "summary"}
KERNELS_LAYER_KEYS = {
    "net", "layer", "N", "C", "K", "kernel", "stride", "pad", "in_hw",
    "macs", "naive_fwd_ms", "gemm_fwd_ms", "fwd_speedup",
    "naive_bwd_ms", "gemm_bwd_ms", "bwd_speedup", "gemm_fwd_ms_1t",
    "gemm_bwd_ms_1t", "thread_fwd_speedup", "thread_bwd_speedup",
    "sparse_fwd_ms", "sparse_bwd_data_ms", "sparse_bwd_weight_ms",
    "sparse_density", "crossover_density", "sparse_sweep",
}
KERNELS_SWEEP_KEYS = {
    "density", "sparse_fwd_ms", "sparse_bwd_data_ms",
    "sparse_bwd_weight_ms", "fwd_vs_gemm",
}
KERNELS_FC_KEYS = {
    "net", "layer", "N", "in_features", "out_features", "gemm_fwd_ms",
    "gemm_bwd_ms", "sparse_fc_fwd_ms", "sparse_fc_bwd_data_ms",
    "sparse_fc_bwd_weight_ms", "sparse_density", "fw_mac_ratio",
    "bw_data_mac_ratio", "bw_weight_mac_ratio",
}
KERNELS_SUMMARY_KEYS = {
    "geomean_fwd_speedup", "geomean_bwd_speedup", "min_fwd_speedup",
    "geomean_thread_fwd_speedup", "geomean_thread_bwd_speedup",
}
# v5: SIMD dispatch level, sparse backward timings, and the per-layer
# density sweep with the sparse-vs-gemm crossover density.
KERNELS_VERSION = 5

COSIM_TOP_KEYS = {"version", "mode", "host", "config", "epochs"}
COSIM_CONFIG_KEYS = {"epochs", "batch", "backend", "target_sparsity"}
COSIM_EPOCH_KEYS = {
    "epoch", "train_loss", "val_accuracy", "weight_density",
    "iact_density", "measured_macs_per_step", "measured_fw_macs",
    "measured_bw_data_macs", "measured_bw_weight_macs",
    "csb_weight_bytes", "dense_weight_bytes", "procrustes_cycles",
    "procrustes_energy_j", "procrustes_glb_energy_j",
    "procrustes_dram_energy_j", "dense_cycles", "dense_energy_j",
    "dense_glb_energy_j", "dense_dram_energy_j",
    "imbalance_unbalanced_mean", "imbalance_unbalanced_max",
    "imbalance_unbalanced_frac_above_50", "imbalance_balanced_mean",
    "imbalance_balanced_max", "imbalance_balanced_frac_above_10",
    "cycle_sim", "speedup", "energy_ratio",
}
COSIM_CYCLE_SIM_KEYS = {
    "cycles", "compute_cycles", "stall_cycles", "drain_cycles",
    "glb_conflict_cycles", "glb_conflicts", "glb_reads", "glb_writes",
    "fifo_backpressure_cycles", "macs_retired",
    "analytic_compute_cycles", "analytic_cycle_ratio",
    "db_cycles", "db_overlapped_drain_cycles",
    "db_analytic_cycle_ratio",
}
# Sane agreement band for simulated cycles over analytic compute
# latency: the simulator adds drain, fill, contention, and per-tile
# rounding, so the ratio sits near (mostly slightly above) 1. Far
# outside this band one of the two models is broken.
COSIM_RATIO_MIN = 0.25
COSIM_RATIO_MAX = 4.0
# v5: adds the double-buffered-drain co-run of each epoch (db_cycles,
# db_overlapped_drain_cycles, db_analytic_cycle_ratio) next to the v4
# serial cycle_sim block.
COSIM_VERSION = 5

DATAFLOW_TOP_KEYS = {"version", "mode", "host", "config", "analytic",
                     "grid", "points", "default_point"}
DATAFLOW_CONFIG_KEYS = {"epochs", "batch", "target_sparsity",
                        "epoch_index", "weight_density", "iact_density"}
DATAFLOW_ANALYTIC_KEYS = {"compute_cycles", "refill_ref_cycles",
                          "dram_words_per_cycle"}
DATAFLOW_GRID_KEYS = {"glb_banks", "pe_fifo_depth",
                      "unicast_words_per_cycle", "drain",
                      "dram_words_per_cycle"}
DATAFLOW_POINT_KEYS = {
    "glb_banks", "pe_fifo_depth", "unicast_words_per_cycle", "drain",
    "dram_words_per_cycle", "cycles", "compute_cycles", "drain_cycles",
    "overlapped_drain_cycles", "glb_conflict_cycles", "glb_conflicts",
    "fifo_backpressure_cycles", "dram_refill_cycles",
    "dram_stall_cycles", "macs_retired", "analytic_cycle_ratio",
}
DATAFLOW_VERSION = 1

SCALEOUT_TOP_KEYS = {"version", "mode", "host", "config", "non_sharded",
                     "shard1_twin", "runs"}
SCALEOUT_CONFIG_KEYS = {"epochs", "global_batch", "slice_samples",
                        "hidden", "target_sparsity",
                        "interconnect_words_per_cycle", "shard_counts"}
SCALEOUT_TRAJ_KEYS = {"epoch", "train_loss", "val_accuracy",
                      "weight_density"}
SCALEOUT_RUN_EPOCH_KEYS = SCALEOUT_TRAJ_KEYS | {
    "exchange_compressed_bytes", "exchange_dense_bytes",
    "exchange_messages", "modeled_exchange_cycles", "modeled_wu_cycles",
    "modeled_total_cycles",
}
SCALEOUT_VERSION = 1

JOBS_TOP_KEYS = {"version", "mode", "host", "config", "jobs", "timing",
                 "fairness", "resume"}
JOBS_CONFIG_KEYS = {"jobs", "epochs", "batch", "hidden", "job_names"}
JOBS_TRAJ_KEYS = {"epoch", "train_loss", "val_accuracy",
                  "weight_density"}
JOBS_TIMING_KEYS = {"sequential_ms", "concurrent_ms"}
JOBS_FAIRNESS_KEYS = {"rounds", "max_epoch_spread"}
JOBS_RESUME_KEYS = {"job", "total_steps", "checkpoint_step",
                    "resumed_steps", "checkpoint_bytes", "save_ms",
                    "restore_ms", "bitwise_equal"}
JOBS_VERSION = 1


def fail(msg):
    print(f"schema check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def require_keys(obj, keys, where):
    missing = keys - obj.keys()
    if missing:
        fail(f"{where} is missing keys: {sorted(missing)}")


def check_host(doc, where):
    host = doc.get("host")
    if not isinstance(host, dict):
        fail(f"{where} has no host block")
    require_keys(host, HOST_KEYS, f"{where} host block")


def check_version(doc, expected, where):
    if doc.get("version") != expected:
        fail(f"{where} version is {doc.get('version')!r}, "
             f"expected {expected}")


def check_kernels(doc):
    require_keys(doc, KERNELS_TOP_KEYS, "BENCH_kernels.json")
    check_version(doc, KERNELS_VERSION, "BENCH_kernels.json")
    check_host(doc, "BENCH_kernels.json")
    if doc["simd"] not in ("avx2", "scalar"):
        fail(f"simd = {doc['simd']!r}, expected 'avx2' or 'scalar'")
    layers = doc["layers"]
    if not isinstance(layers, list) or not layers:
        fail("layers must be a non-empty array")
    for i, layer in enumerate(layers):
        require_keys(layer, KERNELS_LAYER_KEYS, f"layers[{i}]")
        cd = layer["crossover_density"]
        if not 0.0 <= cd <= 1.0:
            fail(f"layers[{i}].crossover_density = {cd} outside [0, 1]")
        sweep = layer["sparse_sweep"]
        if not isinstance(sweep, list) or not sweep:
            fail(f"layers[{i}].sparse_sweep must be a non-empty array")
        for j, pt in enumerate(sweep):
            require_keys(pt, KERNELS_SWEEP_KEYS,
                         f"layers[{i}].sparse_sweep[{j}]")
            if not 0.0 < pt["density"] <= 1.0:
                fail(f"layers[{i}].sparse_sweep[{j}].density = "
                     f"{pt['density']} outside (0, 1]")
    fc_layers = doc["fc_layers"]
    if not isinstance(fc_layers, list) or not fc_layers:
        fail("fc_layers must be a non-empty array")
    for i, layer in enumerate(fc_layers):
        require_keys(layer, KERNELS_FC_KEYS, f"fc_layers[{i}]")
        for ratio in ("fw_mac_ratio", "bw_data_mac_ratio",
                      "bw_weight_mac_ratio"):
            v = layer[ratio]
            if not 0.0 <= v <= 1.0:
                fail(f"fc_layers[{i}].{ratio} = {v} outside [0, 1]")
    require_keys(doc["summary"], KERNELS_SUMMARY_KEYS, "summary")


def check_cosim(doc):
    require_keys(doc, COSIM_TOP_KEYS, "BENCH_cosim.json")
    check_version(doc, COSIM_VERSION, "BENCH_cosim.json")
    check_host(doc, "BENCH_cosim.json")
    require_keys(doc["config"], COSIM_CONFIG_KEYS, "config")
    epochs = doc["epochs"]
    if not isinstance(epochs, list) or not epochs:
        fail("epochs must be a non-empty array")
    for i, epoch in enumerate(epochs):
        require_keys(epoch, COSIM_EPOCH_KEYS, f"epochs[{i}]")
        if epoch["csb_weight_bytes"] <= 0:
            fail(f"epochs[{i}].csb_weight_bytes must be positive")
        for key in ("procrustes_glb_energy_j", "procrustes_dram_energy_j",
                    "dense_glb_energy_j", "dense_dram_energy_j"):
            if epoch[key] <= 0:
                fail(f"epochs[{i}].{key} must be positive")
        for key in ("imbalance_unbalanced_frac_above_50",
                    "imbalance_balanced_frac_above_10"):
            v = epoch[key]
            if not 0.0 <= v <= 1.0:
                fail(f"epochs[{i}].{key} = {v} outside [0, 1]")
        for side in ("unbalanced", "balanced"):
            mean = epoch[f"imbalance_{side}_mean"]
            peak = epoch[f"imbalance_{side}_max"]
            if mean < 0 or peak < 0:
                fail(f"epochs[{i}] {side} imbalance must be >= 0")
            if mean > peak:
                fail(f"epochs[{i}].imbalance_{side}_mean = {mean} "
                     f"exceeds its max {peak}")
        # The half-tile pairing can only lower a wave's maximum (the
        # original tiles are one feasible pairing), so balanced mean
        # overhead must never exceed unbalanced.
        if (epoch["imbalance_balanced_mean"] >
                epoch["imbalance_unbalanced_mean"] + 1e-12):
            fail(f"epochs[{i}]: balanced mean imbalance "
                 f"{epoch['imbalance_balanced_mean']} exceeds "
                 f"unbalanced {epoch['imbalance_unbalanced_mean']}")
        cs = epoch["cycle_sim"]
        if not isinstance(cs, dict):
            fail(f"epochs[{i}].cycle_sim must be an object")
        require_keys(cs, COSIM_CYCLE_SIM_KEYS, f"epochs[{i}].cycle_sim")
        for key in ("cycles", "compute_cycles", "stall_cycles",
                    "drain_cycles", "glb_conflict_cycles",
                    "glb_conflicts", "glb_reads", "glb_writes",
                    "fifo_backpressure_cycles", "macs_retired"):
            if cs[key] < 0:
                fail(f"epochs[{i}].cycle_sim.{key} = {cs[key]} "
                     f"is negative")
        if cs["cycles"] == 0 or cs["macs_retired"] == 0:
            fail(f"epochs[{i}].cycle_sim simulated no work")
        # The serial co-run's cycles decompose additively: compute +
        # drain + GLB bank-conflict stalls (the general contract's
        # overlap and refill terms are zero here). A mismatch means
        # the simulator's accounting broke, not just drifted.
        expect = (cs["compute_cycles"] + cs["drain_cycles"] +
                  cs["glb_conflict_cycles"])
        if cs["cycles"] != expect:
            fail(f"epochs[{i}].cycle_sim.cycles = {cs['cycles']} but "
                 f"compute+drain+glb_conflict = {expect}")
        if cs["stall_cycles"] > cs["compute_cycles"]:
            fail(f"epochs[{i}].cycle_sim.stall_cycles "
                 f"{cs['stall_cycles']} exceeds compute_cycles "
                 f"{cs['compute_cycles']}")
        ratio = cs["analytic_cycle_ratio"]
        if not COSIM_RATIO_MIN <= ratio <= COSIM_RATIO_MAX:
            fail(f"epochs[{i}].cycle_sim.analytic_cycle_ratio = "
                 f"{ratio} outside sane band "
                 f"[{COSIM_RATIO_MIN}, {COSIM_RATIO_MAX}]")
        # The double-buffered co-run re-times the same drain traffic:
        # it saves exactly the overlapped cycles and can never be
        # slower than the serial run it shadows.
        if cs["db_cycles"] <= 0:
            fail(f"epochs[{i}].cycle_sim.db_cycles must be positive")
        if cs["db_overlapped_drain_cycles"] < 0:
            fail(f"epochs[{i}].cycle_sim.db_overlapped_drain_cycles "
                 f"is negative")
        if cs["db_cycles"] != cs["cycles"] - cs["db_overlapped_drain_cycles"]:
            fail(f"epochs[{i}].cycle_sim.db_cycles = {cs['db_cycles']} "
                 f"but serial cycles - overlapped = "
                 f"{cs['cycles'] - cs['db_overlapped_drain_cycles']}")
        db_ratio = cs["db_analytic_cycle_ratio"]
        if not 0.0 < db_ratio <= ratio:
            fail(f"epochs[{i}].cycle_sim.db_analytic_cycle_ratio = "
                 f"{db_ratio} outside (0, serial ratio {ratio}]")


def check_dataflow(doc):
    require_keys(doc, DATAFLOW_TOP_KEYS, "BENCH_dataflow.json")
    check_version(doc, DATAFLOW_VERSION, "BENCH_dataflow.json")
    check_host(doc, "BENCH_dataflow.json")
    require_keys(doc["config"], DATAFLOW_CONFIG_KEYS, "config")
    require_keys(doc["analytic"], DATAFLOW_ANALYTIC_KEYS, "analytic")
    if doc["analytic"]["compute_cycles"] <= 0:
        fail("analytic.compute_cycles must be positive")
    grid = doc["grid"]
    require_keys(grid, DATAFLOW_GRID_KEYS, "grid")
    expected = set()
    for banks in grid["glb_banks"]:
        for fifo in grid["pe_fifo_depth"]:
            for uni in grid["unicast_words_per_cycle"]:
                for drain in grid["drain"]:
                    for dram in grid["dram_words_per_cycle"]:
                        expected.add((banks, fifo, uni, drain, dram))
    points = doc["points"]
    if not isinstance(points, list) or not points:
        fail("points must be a non-empty array")
    seen = {}
    for i, pt in enumerate(points):
        require_keys(pt, DATAFLOW_POINT_KEYS, f"points[{i}]")
        key = (pt["glb_banks"], pt["pe_fifo_depth"],
               pt["unicast_words_per_cycle"], pt["drain"],
               pt["dram_words_per_cycle"])
        if key not in expected:
            fail(f"points[{i}] {key} is not a grid combination")
        if key in seen:
            fail(f"points[{i}] duplicates grid combination {key}")
        seen[key] = pt
        if pt["cycles"] <= 0 or pt["macs_retired"] <= 0:
            fail(f"points[{i}] simulated no work")
        for k in DATAFLOW_POINT_KEYS - {"drain"}:
            if pt[k] < 0:
                fail(f"points[{i}].{k} = {pt[k]} is negative")
        # The cycle accounting contract, point by point.
        expect = (pt["compute_cycles"] + pt["drain_cycles"] +
                  pt["glb_conflict_cycles"] -
                  pt["overlapped_drain_cycles"] +
                  pt["dram_stall_cycles"])
        if pt["cycles"] != expect:
            fail(f"points[{i}].cycles = {pt['cycles']} but "
                 f"compute+drain+conflict-overlap+stall = {expect}")
        if pt["drain"] == "serial" and pt["overlapped_drain_cycles"]:
            fail(f"points[{i}] is serial but overlapped "
                 f"{pt['overlapped_drain_cycles']} cycles")
        if (pt["dram_words_per_cycle"] == 0.0 and
                (pt["dram_refill_cycles"] or pt["dram_stall_cycles"])):
            fail(f"points[{i}] has refill off but charges refill")
    missing = expected - seen.keys()
    if missing:
        fail(f"grid combinations missing from points: "
             f"{sorted(missing)[:4]} (+{max(0, len(missing) - 4)} more)")
    # Double-buffering re-times the serial drain; on the same knobs it
    # must never clock slower.
    for key, pt in seen.items():
        if key[3] != "double_buffered":
            continue
        other = seen[(key[0], key[1], key[2], "serial", key[4])]
        if pt["cycles"] > other["cycles"]:
            fail(f"double_buffered point {key} is slower than its "
                 f"serial twin ({pt['cycles']} > {other['cycles']})")
    dflt = doc["default_point"]
    for k in ("serial_ratio", "double_buffered_ratio"):
        if k not in dflt or dflt[k] <= 0:
            fail(f"default_point.{k} missing or non-positive")
    if dflt["double_buffered_ratio"] > dflt["serial_ratio"]:
        fail("default point: double-buffered ratio exceeds serial")


def check_scaleout(doc):
    require_keys(doc, SCALEOUT_TOP_KEYS, "BENCH_scaleout.json")
    check_version(doc, SCALEOUT_VERSION, "BENCH_scaleout.json")
    check_host(doc, "BENCH_scaleout.json")
    cfg = doc["config"]
    require_keys(cfg, SCALEOUT_CONFIG_KEYS, "config")
    n_epochs = cfg["epochs"]
    shard_counts = cfg["shard_counts"]
    if not isinstance(shard_counts, list) or not shard_counts:
        fail("config.shard_counts must be a non-empty array")

    def check_epoch_list(rows, keys, where):
        if not isinstance(rows, list) or len(rows) != n_epochs:
            fail(f"{where} must have config.epochs = {n_epochs} entries")
        for i, row in enumerate(rows):
            require_keys(row, keys, f"{where}[{i}]")
            if row["epoch"] != i:
                fail(f"{where}[{i}].epoch = {row['epoch']}, expected {i}")
            if not 0.0 <= row["weight_density"] <= 1.0:
                fail(f"{where}[{i}].weight_density = "
                     f"{row['weight_density']} outside [0, 1]")

    for block in ("non_sharded", "shard1_twin"):
        check_epoch_list(doc[block]["epochs"], SCALEOUT_TRAJ_KEYS,
                         f"{block}.epochs")

    runs = doc["runs"]
    if not isinstance(runs, list):
        fail("runs must be an array")
    if [r.get("shards") for r in runs] != shard_counts:
        fail(f"runs cover shards {[r.get('shards') for r in runs]}, "
             f"expected config.shard_counts = {shard_counts}")
    for run in runs:
        m = run["shards"]
        where = f"runs[shards={m}].epochs"
        check_epoch_list(run["epochs"], SCALEOUT_RUN_EPOCH_KEYS, where)
        for i, row in enumerate(run["epochs"]):
            comp = row["exchange_compressed_bytes"]
            dense = row["exchange_dense_bytes"]
            if m == 1:
                # One shard exchanges nothing, models nothing.
                for k in ("exchange_compressed_bytes",
                          "exchange_dense_bytes", "exchange_messages",
                          "modeled_exchange_cycles"):
                    if row[k] != 0:
                        fail(f"{where}[{i}].{k} = {row[k]}, expected 0 "
                             f"at shards = 1")
                continue
            if row["exchange_messages"] <= 0:
                fail(f"{where}[{i}].exchange_messages must be positive")
            if comp > dense:
                fail(f"{where}[{i}]: compressed exchange {comp} exceeds "
                     f"dense twin {dense}")
            # Exchange masks are sampled before the step, so strict
            # compression is guaranteed from the first epoch that
            # *starts* sparse (the previous epoch ended with live
            # density < 1), not from the epoch a prune event lands in.
            prev = run["epochs"][i - 1] if i > 0 else None
            if prev is not None and prev["weight_density"] < 1.0:
                if comp >= dense:
                    fail(f"{where}[{i}]: sparse epoch but compressed "
                         f"exchange {comp} is not below dense {dense}")
            if comp > 0 and row["modeled_exchange_cycles"] <= 0:
                fail(f"{where}[{i}]: exchange bytes present but "
                     f"modeled_exchange_cycles = "
                     f"{row['modeled_exchange_cycles']}")
            if row["modeled_wu_cycles"] < row["modeled_exchange_cycles"]:
                fail(f"{where}[{i}]: wu cycles "
                     f"{row['modeled_wu_cycles']} below the exchange "
                     f"bound {row['modeled_exchange_cycles']}")
    # The determinism contract, as emitted: every shard count follows
    # the bitwise-identical trajectory (floats printed with %.17g
    # round-trip exactly), and the shards=1 twin at sliceSamples ==
    # batchSize equals the plain trainer run.
    ref = runs[0]["epochs"]
    for run in runs[1:]:
        for i, row in enumerate(run["epochs"]):
            for k in ("train_loss", "val_accuracy", "weight_density"):
                if row[k] != ref[i][k]:
                    fail(f"runs[shards={run['shards']}].epochs[{i}].{k} "
                         f"= {row[k]} differs from shards="
                         f"{runs[0]['shards']} value {ref[i][k]} — "
                         f"shard-count determinism broken")
    for i in range(n_epochs):
        a = doc["non_sharded"]["epochs"][i]
        b = doc["shard1_twin"]["epochs"][i]
        for k in ("train_loss", "val_accuracy", "weight_density"):
            if a[k] != b[k]:
                fail(f"shard1_twin.epochs[{i}].{k} = {b[k]} differs "
                     f"from non_sharded {a[k]} — the engine twin is "
                     f"not bitwise-equivalent to the plain trainer")


def check_jobs(doc):
    require_keys(doc, JOBS_TOP_KEYS, "BENCH_jobs.json")
    check_version(doc, JOBS_VERSION, "BENCH_jobs.json")
    check_host(doc, "BENCH_jobs.json")
    cfg = doc["config"]
    require_keys(cfg, JOBS_CONFIG_KEYS, "config")
    n_epochs = cfg["epochs"]
    names = cfg["job_names"]
    if not isinstance(names, list) or len(names) != cfg["jobs"]:
        fail("config.job_names must list config.jobs entries")

    jobs = doc["jobs"]
    if not isinstance(jobs, list):
        fail("jobs must be an array")
    if [j.get("name") for j in jobs] != names:
        fail(f"jobs cover {[j.get('name') for j in jobs]}, expected "
             f"config.job_names = {names}")

    def check_epoch_list(rows, where):
        if not isinstance(rows, list) or len(rows) != n_epochs:
            fail(f"{where} must have config.epochs = {n_epochs} entries")
        for i, row in enumerate(rows):
            require_keys(row, JOBS_TRAJ_KEYS, f"{where}[{i}]")
            if row["epoch"] != i:
                fail(f"{where}[{i}].epoch = {row['epoch']}, expected {i}")
            if not 0.0 <= row["weight_density"] <= 1.0:
                fail(f"{where}[{i}].weight_density = "
                     f"{row['weight_density']} outside [0, 1]")

    # The isolation contract, as emitted: a job multiplexed with three
    # neighbours follows the bitwise-identical trajectory of the same
    # job running alone (%.17g floats round-trip exactly).
    for job in jobs:
        name = job["name"]
        for block in ("solo", "concurrent"):
            if block not in job:
                fail(f"jobs[{name}] is missing the {block} block")
            check_epoch_list(job[block]["epochs"],
                             f"jobs[{name}].{block}.epochs")
        for i in range(n_epochs):
            a = job["solo"]["epochs"][i]
            b = job["concurrent"]["epochs"][i]
            for k in ("train_loss", "val_accuracy", "weight_density"):
                if a[k] != b[k]:
                    fail(f"jobs[{name}].concurrent.epochs[{i}].{k} = "
                         f"{b[k]} differs from solo {a[k]} — "
                         f"scheduler isolation broken")

    timing = doc["timing"]
    require_keys(timing, JOBS_TIMING_KEYS, "timing")
    for k in JOBS_TIMING_KEYS:
        if timing[k] < 0:
            fail(f"timing.{k} = {timing[k]} is negative")

    fairness = doc["fairness"]
    require_keys(fairness, JOBS_FAIRNESS_KEYS, "fairness")
    if fairness["rounds"] < n_epochs:
        fail(f"fairness.rounds = {fairness['rounds']} below "
             f"config.epochs = {n_epochs}")
    if fairness["max_epoch_spread"] > 1:
        fail(f"fairness.max_epoch_spread = "
             f"{fairness['max_epoch_spread']} exceeds the fair-share "
             f"bound of 1")

    resume = doc["resume"]
    require_keys(resume, JOBS_RESUME_KEYS, "resume")
    if resume["job"] not in names:
        fail(f"resume.job = {resume['job']!r} is not a configured job")
    if resume["bitwise_equal"] is not True:
        fail("resume.bitwise_equal is not true — checkpoint/resume "
             "diverged from the uninterrupted run")
    if resume["checkpoint_bytes"] <= 0:
        fail("resume.checkpoint_bytes must be positive")
    for k in ("save_ms", "restore_ms"):
        if resume[k] < 0:
            fail(f"resume.{k} = {resume[k]} is negative")
    if not 0 <= resume["checkpoint_step"] <= resume["total_steps"]:
        fail(f"resume.checkpoint_step = {resume['checkpoint_step']} "
             f"outside [0, total_steps = {resume['total_steps']}]")
    if (resume["resumed_steps"] !=
            resume["total_steps"] - resume["checkpoint_step"]):
        fail(f"resume.resumed_steps = {resume['resumed_steps']} but "
             f"total - checkpoint = "
             f"{resume['total_steps'] - resume['checkpoint_step']} — "
             f"the resumed run did not land on the same step count")


def main():
    checks = {"kernels": check_kernels, "cosim": check_cosim,
              "dataflow": check_dataflow, "scaleout": check_scaleout,
              "jobs": check_jobs}
    if len(sys.argv) != 3 or sys.argv[1] not in checks:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(sys.argv[2], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[2]}: {e}")
    checks[sys.argv[1]](doc)
    print(f"schema check OK: {sys.argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
