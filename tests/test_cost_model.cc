/**
 * @file
 * Tests for the analytic cost model (latency, utilization, energy).
 */

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "arch/model_zoo.h"

namespace procrustes {
namespace arch {
namespace {

CostModel
denseModel()
{
    CostOptions o;
    o.sparse = false;
    o.balance = BalanceMode::None;
    return {ArrayConfig::baseline16(), o};
}

CostModel
sparseModel(BalanceMode b = BalanceMode::HalfTile)
{
    CostOptions o;
    o.sparse = true;
    o.balance = b;
    return {ArrayConfig::baseline16(), o};
}

LayerSparsityProfile
maskedProfile(const LayerShape &l, double density, double sigma = 1.0,
              uint64_t seed = 7, double iact = 0.5)
{
    sparse::SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.kernelSigma = sigma;
    cfg.seed = seed;
    const auto mask =
        sparse::makeSyntheticMask(l.K, l.effectiveC(), l.R, l.S, cfg);
    return {mask, iact};
}

TEST(CostModel, DenseLatencyMatchesIdealWhenDivisible)
{
    // 256 output channels x batch 16 divides the 16x16 array exactly:
    // dense KN latency must equal MACs / PEs.
    const LayerShape l = convLayer("c", 64, 256, 3, 16);
    const auto dense = LayerSparsityProfile::uniform(1.0, 0.5);
    const PhaseCost pc = denseModel().evaluatePhase(
        l, Phase::Forward, MappingKind::KN, dense, 16);
    const double ideal =
        static_cast<double>(16 * l.macsPerSample()) / 256.0;
    EXPECT_NEAR(pc.computeCycles, ideal, 1e-6 * ideal);
}

TEST(CostModel, UtilizationLossOnFewChannels)
{
    // First conv layer has C = 3: the C,K mapping can only fill 3 of
    // 16 rows, so latency is ~16/3 of ideal ("inefficient on layers
    // that have few channels", Section VI-D).
    const LayerShape l = convLayer("conv1", 3, 64, 3, 32);
    const auto dense = LayerSparsityProfile::uniform(1.0, 1.0);
    const CostModel m = denseModel();
    const double ck = m.evaluatePhase(l, Phase::Forward, MappingKind::CK,
                                      dense, 16)
                          .computeCycles;
    const double kn = m.evaluatePhase(l, Phase::Forward, MappingKind::KN,
                                      dense, 16)
                          .computeCycles;
    EXPECT_GT(ck, 4.0 * kn);
}

TEST(CostModel, PqSlowOnSmallActivations)
{
    // A late 2x2-activation layer keeps only 4 of 256 PEs busy under
    // the activation-stationary P,Q mapping.
    const LayerShape l = convLayer("conv5", 512, 512, 3, 2);
    const auto dense = LayerSparsityProfile::uniform(1.0, 0.5);
    const CostModel m = denseModel();
    const double pq = m.evaluatePhase(l, Phase::Forward, MappingKind::PQ,
                                      dense, 16)
                          .computeCycles;
    const double kn = m.evaluatePhase(l, Phase::Forward, MappingKind::KN,
                                      dense, 16)
                          .computeCycles;
    EXPECT_GT(pq, 20.0 * kn);
}

TEST(CostModel, SparseLatencyScalesWithDensity)
{
    const LayerShape l = convLayer("c", 128, 256, 3, 8);
    const auto profile = maskedProfile(l, 0.2);
    const double dense_cycles =
        denseModel()
            .evaluatePhase(l, Phase::Forward, MappingKind::KN,
                           profile, 16)
            .computeCycles;
    const double sparse_cycles =
        sparseModel()
            .evaluatePhase(l, Phase::Forward, MappingKind::KN,
                           profile, 16)
            .computeCycles;
    // Balanced sparse execution should approach density x dense
    // latency; imbalance keeps it above the perfect value.
    EXPECT_LT(sparse_cycles, 0.6 * dense_cycles);
    EXPECT_GT(sparse_cycles, 0.18 * dense_cycles);
}

TEST(CostModel, BalancingOrdering)
{
    // unbalanced >= half-tile >= full-chip >= perfect density scaling.
    const LayerShape l = convLayer("c", 128, 256, 3, 8);
    const auto profile = maskedProfile(l, 0.2, /*sigma=*/1.5);
    const double none =
        sparseModel(BalanceMode::None)
            .evaluatePhase(l, Phase::Forward, MappingKind::KN, profile,
                           16)
            .computeCycles;
    const double half =
        sparseModel(BalanceMode::HalfTile)
            .evaluatePhase(l, Phase::Forward, MappingKind::KN, profile,
                           16)
            .computeCycles;
    const double full =
        sparseModel(BalanceMode::FullChip)
            .evaluatePhase(l, Phase::Forward, MappingKind::KN, profile,
                           16)
            .computeCycles;
    EXPECT_GE(none, half - 1e-6);
    EXPECT_GE(half, full - 1e-6);
    EXPECT_GT(none, 1.05 * full);   // skewed masks must show imbalance
}

TEST(CostModel, HalfTileClosesMostOfTheGap)
{
    // The Figure 13 claim: half-tile balancing removes the bulk of
    // the imbalance penalty.
    const LayerShape l = convLayer("c", 256, 256, 3, 8);
    const auto profile = maskedProfile(l, 0.2, /*sigma=*/1.5);
    const CostModel none = sparseModel(BalanceMode::None);
    const CostModel half = sparseModel(BalanceMode::HalfTile);
    const CostModel full = sparseModel(BalanceMode::FullChip);
    const auto cyc = [&](const CostModel &m) {
        return m.evaluatePhase(l, Phase::Forward, MappingKind::KN,
                               profile, 16)
            .computeCycles;
    };
    const double gap_before = cyc(none) - cyc(full);
    const double gap_after = cyc(half) - cyc(full);
    EXPECT_LT(gap_after, 0.35 * gap_before);
}

TEST(CostModel, EnergySparseBeatsDense)
{
    const LayerShape l = convLayer("c", 128, 128, 3, 16);
    const auto profile = maskedProfile(l, 0.2);
    const double dense_e =
        denseModel()
            .evaluatePhase(l, Phase::Forward, MappingKind::KN, profile,
                           16)
            .totalEnergyJ();
    const double sparse_e =
        sparseModel()
            .evaluatePhase(l, Phase::Forward, MappingKind::KN, profile,
                           16)
            .totalEnergyJ();
    EXPECT_LT(sparse_e, 0.5 * dense_e);
}

TEST(CostModel, MacEnergyDominatesForConvLayers)
{
    // FP32 training: "MACs dominate the energy usage" (Section VI-C).
    const LayerShape l = convLayer("c", 256, 256, 3, 8);
    const auto dense = LayerSparsityProfile::uniform(1.0, 0.5);
    const PhaseCost pc = denseModel().evaluatePhase(
        l, Phase::Forward, MappingKind::KN, dense, 16);
    EXPECT_GT(pc.macEnergyJ, pc.rfEnergyJ);
    EXPECT_GT(pc.macEnergyJ, pc.glbEnergyJ);
    EXPECT_GT(pc.macEnergyJ, pc.dramEnergyJ);
}

TEST(CostModel, EnergyNearlyMappingIndependent)
{
    // Figure 18's finding: dataflow choice barely moves energy
    // (within ~20% here; the paper calls it negligible).
    const LayerShape l = convLayer("c", 128, 256, 3, 16);
    const auto profile = maskedProfile(l, 0.25);
    const CostModel m = sparseModel();
    double lo = 1e300;
    double hi = 0.0;
    for (MappingKind mk : kAllMappings) {
        double e = 0.0;
        for (Phase p : {Phase::Forward, Phase::Backward,
                        Phase::WeightUpdate}) {
            e += m.evaluatePhase(l, p, mk, profile, 16).totalEnergyJ();
        }
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    EXPECT_LT(hi / lo, 1.25);
}

TEST(CostModel, DepthwiseLayersAreDramHeavy)
{
    // MobileNet's depthwise convolutions have little reuse: DRAM
    // energy share must far exceed a standard conv's share.
    const LayerShape dw = depthwiseLayer("dw", 96, 3, 28);
    const LayerShape conv = convLayer("c", 96, 96, 3, 28);
    const auto dense = LayerSparsityProfile::uniform(1.0, 0.5);
    const CostModel m = denseModel();
    const PhaseCost dwc = m.evaluatePhase(dw, Phase::Forward,
                                          MappingKind::KN, dense, 16);
    const PhaseCost cc = m.evaluatePhase(conv, Phase::Forward,
                                         MappingKind::KN, dense, 16);
    const double dw_share = dwc.dramEnergyJ / dwc.totalEnergyJ();
    const double conv_share = cc.dramEnergyJ / cc.totalEnergyJ();
    EXPECT_GT(dw_share, 5.0 * conv_share);
}

TEST(CostModel, IdealModeBeatsRealSparse)
{
    const LayerShape l = convLayer("c", 128, 128, 3, 16);
    const auto profile = maskedProfile(l, 0.2, 1.5);
    CostOptions io;
    io.sparse = true;
    io.ideal = true;
    io.balance = BalanceMode::FullChip;
    const CostModel ideal(ArrayConfig::baseline16(), io);
    const PhaseCost ip = ideal.evaluatePhase(
        l, Phase::Forward, MappingKind::KN, profile, 16);
    const PhaseCost rp = sparseModel().evaluatePhase(
        l, Phase::Forward, MappingKind::KN, profile, 16);
    EXPECT_LE(ip.cycles, rp.cycles);
    EXPECT_LE(ip.totalEnergyJ(), rp.totalEnergyJ());
}

TEST(CostModel, WeightUpdateUsesActivationSparsity)
{
    const LayerShape l = convLayer("c", 128, 128, 3, 16);
    // Same weight mask; very different activation densities.
    const auto dense_acts = maskedProfile(l, 0.2, 1.0, 7, 0.9);
    const auto sparse_acts = maskedProfile(l, 0.2, 1.0, 7, 0.3);
    const CostModel m = sparseModel();
    const double e_dense =
        m.evaluatePhase(l, Phase::WeightUpdate, MappingKind::KN,
                        dense_acts, 16)
            .macEnergyJ;
    const double e_sparse =
        m.evaluatePhase(l, Phase::WeightUpdate, MappingKind::KN,
                        sparse_acts, 16)
            .macEnergyJ;
    EXPECT_NEAR(e_sparse / e_dense, 0.3 / 0.9, 0.02);
}

TEST(CostModel, WaveStatsOverheadZeroWhenDense)
{
    const LayerShape l = convLayer("c", 64, 64, 3, 8);
    const auto dense = LayerSparsityProfile::uniform(1.0, 0.5);
    for (const WaveStats &ws :
         denseModel().waveStats(l, Phase::Forward, MappingKind::CK,
                                dense, 16)) {
        EXPECT_DOUBLE_EQ(ws.overhead(), 0.0);
    }
}

TEST(CostModel, CyclesBoundedByDramWhenTrafficDominates)
{
    // An fc layer at batch 1 moves many weights per MAC-cycle: with
    // dramBound enabled the memory interface limits the layer.
    const LayerShape l = fcLayer("fc", 4096, 4096);
    const auto dense = LayerSparsityProfile::uniform(1.0, 0.5);
    CostOptions o;
    o.sparse = false;
    o.dramBound = true;
    const CostModel m(ArrayConfig::baseline16(), o);
    const PhaseCost pc =
        m.evaluatePhase(l, Phase::Forward, MappingKind::KN, dense, 1);
    EXPECT_GT(pc.dramCycles, pc.computeCycles);
    EXPECT_DOUBLE_EQ(pc.cycles, pc.dramCycles);

    // Default reporting assumes double buffering hides DRAM latency.
    const PhaseCost pc2 = denseModel().evaluatePhase(
        l, Phase::Forward, MappingKind::KN, dense, 1);
    EXPECT_DOUBLE_EQ(pc2.cycles, pc2.computeCycles);
}

TEST(CostModel, RefillRateBoundsCyclesLikeTheSimulatorFrontEnd)
{
    // dramRefillWordsPerCycle mirrors the cycle simulator's DRAM->GLB
    // refill: cycles become max(cycles, dram_words / rate). A generous
    // rate leaves the estimate untouched; a starved rate makes the
    // phase refill-bound; disabled (<= 0, the default) is a no-op.
    const LayerShape l = fcLayer("fc", 4096, 4096);
    const auto dense = LayerSparsityProfile::uniform(1.0, 0.5);
    CostOptions base;
    base.sparse = false;
    const CostModel plain(ArrayConfig::baseline16(), base);
    const PhaseCost off =
        plain.evaluatePhase(l, Phase::Forward, MappingKind::KN, dense, 1);

    CostOptions fast = base;
    fast.dramRefillWordsPerCycle = 1e9;
    const PhaseCost free_refill =
        CostModel(ArrayConfig::baseline16(), fast)
            .evaluatePhase(l, Phase::Forward, MappingKind::KN, dense, 1);
    EXPECT_DOUBLE_EQ(free_refill.cycles, off.cycles);

    CostOptions slow = base;
    slow.dramRefillWordsPerCycle = 0.25;
    const PhaseCost starved =
        CostModel(ArrayConfig::baseline16(), slow)
            .evaluatePhase(l, Phase::Forward, MappingKind::KN, dense, 1);
    EXPECT_GT(starved.cycles, off.cycles);
    // The bound is the same words the dramCycles estimate prices, at
    // the configured rate instead of the interface rate.
    const double words =
        starved.dramCycles *
        ArrayConfig::baseline16().dramWordsPerCycle();
    EXPECT_DOUBLE_EQ(starved.cycles, words / 0.25);
}

TEST(CostModel, PhaseCostAccumulates)
{
    PhaseCost a;
    a.cycles = 1.0;
    a.macEnergyJ = 2.0;
    PhaseCost b;
    b.cycles = 3.0;
    b.rfEnergyJ = 4.0;
    a += b;
    EXPECT_DOUBLE_EQ(a.cycles, 4.0);
    EXPECT_DOUBLE_EQ(a.totalEnergyJ(), 6.0);
}

TEST(CostModel, MeasuredCsbBytesDriveSparseTrafficEnergy)
{
    // A measured compressed byte count replaces the density-derived
    // CSB weight-traffic estimate: perturbing the bytes (same mask,
    // same density) must move the GLB and DRAM energy terms, in the
    // byte count's direction, while leaving MAC/RF energy and the
    // wave-level latency untouched.
    const LayerShape l = convLayer("c", 64, 128, 3, 14);
    const auto profile = maskedProfile(l, 0.25);
    const CostModel m = sparseModel();

    const PhaseCost modelled =
        m.evaluatePhase(l, Phase::Forward, MappingKind::KN, profile, 16);

    // The modelled estimate in word units, as storedWords computes it.
    const double vol = static_cast<double>(l.weightCount());
    const double modelled_words =
        vol * profile.weightDensity() + vol / 32.0 +
        static_cast<double>(l.K * l.effectiveC());

    MeasuredLayerStats heavier;
    heavier.csbWeightBytes = modelled_words * 4.0 * 1.5;
    const PhaseCost grew = m.evaluatePhase(
        l, Phase::Forward, MappingKind::KN, profile, 16, heavier);
    EXPECT_GT(grew.glbEnergyJ, modelled.glbEnergyJ);
    EXPECT_GT(grew.dramEnergyJ, modelled.dramEnergyJ);
    EXPECT_DOUBLE_EQ(grew.macEnergyJ, modelled.macEnergyJ);
    EXPECT_DOUBLE_EQ(grew.rfEnergyJ, modelled.rfEnergyJ);
    EXPECT_DOUBLE_EQ(grew.computeCycles, modelled.computeCycles);

    MeasuredLayerStats lighter;
    lighter.csbWeightBytes = modelled_words * 4.0 * 0.5;
    const PhaseCost shrank = m.evaluatePhase(
        l, Phase::Forward, MappingKind::KN, profile, 16, lighter);
    EXPECT_LT(shrank.glbEnergyJ, modelled.glbEnergyJ);
    EXPECT_LT(shrank.dramEnergyJ, modelled.dramEnergyJ);

    // A measurement equal to the modelled GLB estimate reproduces the
    // GLB energy exactly; the DRAM side grows by exactly the pointer
    // words the bandwidth estimate used to neglect (vol*density +
    // mask bits only) — measurement closes that approximation.
    MeasuredLayerStats same;
    same.csbWeightBytes = modelled_words * 4.0;
    const PhaseCost match = m.evaluatePhase(
        l, Phase::Forward, MappingKind::KN, profile, 16, same);
    EXPECT_NEAR(match.glbEnergyJ, modelled.glbEnergyJ,
                1e-12 * modelled.glbEnergyJ);
    const double pointer_words =
        static_cast<double>(l.K * l.effectiveC());
    const double pointer_j =
        pointer_words * m.config().dramAccessPj * 1e-12;
    EXPECT_NEAR(match.dramEnergyJ, modelled.dramEnergyJ + pointer_j,
                1e-9 * modelled.dramEnergyJ);
}

TEST(CostModel, MeasuredDenseBytesFeedTheDenseBaseline)
{
    // The dense baseline streams the dense image: only the measured
    // dense byte count applies; a compressed measurement must be
    // ignored (that machine cannot consume CSB).
    const LayerShape l = convLayer("c", 64, 128, 3, 14);
    const auto profile = maskedProfile(l, 0.25);
    const CostModel m = denseModel();

    const PhaseCost modelled =
        m.evaluatePhase(l, Phase::Forward, MappingKind::KN, profile, 16);

    MeasuredLayerStats csb_only;
    csb_only.csbWeightBytes = 1.0;   // absurdly small; must not apply
    const PhaseCost ignored = m.evaluatePhase(
        l, Phase::Forward, MappingKind::KN, profile, 16, csb_only);
    EXPECT_DOUBLE_EQ(ignored.glbEnergyJ, modelled.glbEnergyJ);
    EXPECT_DOUBLE_EQ(ignored.dramEnergyJ, modelled.dramEnergyJ);

    MeasuredLayerStats dense_grew;
    dense_grew.denseWeightBytes =
        static_cast<double>(l.weightCount()) * 4.0 * 2.0;
    const PhaseCost grew = m.evaluatePhase(
        l, Phase::Forward, MappingKind::KN, profile, 16, dense_grew);
    EXPECT_GT(grew.glbEnergyJ, modelled.glbEnergyJ);
    EXPECT_GT(grew.dramEnergyJ, modelled.dramEnergyJ);
}

TEST(CostModel, IdealModeKeepsOverheadFreeEstimateDespiteMeasurement)
{
    // Figure 1's idealization assumes a zero-overhead format; the
    // measured bytes include real mask/pointer overheads and must not
    // leak into it.
    const LayerShape l = convLayer("c", 64, 128, 3, 14);
    const auto profile = maskedProfile(l, 0.25);
    CostOptions o;
    o.sparse = true;
    o.ideal = true;
    o.balance = BalanceMode::FullChip;
    const CostModel m(ArrayConfig::baseline16(), o);

    const PhaseCost modelled =
        m.evaluatePhase(l, Phase::Forward, MappingKind::KN, profile, 16);
    MeasuredLayerStats measured;
    measured.csbWeightBytes = 1e9;
    measured.denseWeightBytes = 1e9;
    const PhaseCost got = m.evaluatePhase(
        l, Phase::Forward, MappingKind::KN, profile, 16, measured);
    EXPECT_DOUBLE_EQ(got.glbEnergyJ, modelled.glbEnergyJ);
    EXPECT_DOUBLE_EQ(got.dramEnergyJ, modelled.dramEnergyJ);
}

} // namespace
} // namespace arch
} // namespace procrustes
