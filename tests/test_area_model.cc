/**
 * @file
 * Tests for the Table III area/power roll-up.
 */

#include <gtest/gtest.h>

#include "arch/area_model.h"

namespace procrustes {
namespace arch {
namespace {

TEST(AreaModel, ComponentTableMatchesTable3)
{
    const AreaModel am;
    bool found_mac = false;
    for (const ComponentArea &c : am.components()) {
        if (c.name == "FP32 MAC") {
            found_mac = true;
            EXPECT_NEAR(c.areaUm2, 18875.72, 1e-6);
            EXPECT_NEAR(c.powerMw, 7.29, 1e-6);
            EXPECT_TRUE(c.perPe);
            EXPECT_FALSE(c.procrustesOnly);
        }
        if (c.name == "Quantile Engine") {
            EXPECT_NEAR(c.areaUm2, 9861.4, 1e-6);
            EXPECT_FALSE(c.perPe);
            EXPECT_TRUE(c.procrustesOnly);
        }
    }
    EXPECT_TRUE(found_mac);
}

TEST(AreaModel, BaselineExcludesProcrustesModules)
{
    const AreaModel am(256);
    // Baseline = 256 * (MAC + RF) + GLB.
    const double expected =
        256.0 * (18875.72 + 198004.71) + 17109596.5;
    EXPECT_NEAR(am.baselineAreaUm2(), expected, 1.0);
}

TEST(AreaModel, ProcrustesAddsPerPeAndSystemModules)
{
    const AreaModel am(256);
    const double extra =
        256.0 * (1920.84 + 44932.66) + 9861.4 + 8725.23;
    EXPECT_NEAR(am.procrustesAreaUm2() - am.baselineAreaUm2(), extra,
                1.0);
}

TEST(AreaModel, OverheadsNearPaperNumbers)
{
    // The paper reports 14% area and 11% power overhead; our roll-up
    // from the itemized Table III components lands near those (the
    // paper's totals include un-itemized control logic, so allow a
    // few points of slack).
    const AreaModel am(256);
    EXPECT_GT(am.areaOverhead(), 0.10);
    EXPECT_LT(am.areaOverhead(), 0.20);
    EXPECT_GT(am.powerOverhead(), 0.08);
    EXPECT_LT(am.powerOverhead(), 0.16);
}

TEST(AreaModel, PrngIsTinyNextToMac)
{
    // Section VI-F: the WR unit's area and power "pale in comparison"
    // to the FP32 MAC.
    const AreaModel am;
    double prng_area = 0.0;
    double mac_area = 0.0;
    for (const ComponentArea &c : am.components()) {
        if (c.name == "PRNG (WR unit)")
            prng_area = c.areaUm2;
        if (c.name == "FP32 MAC")
            mac_area = c.areaUm2;
    }
    EXPECT_LT(prng_area, 0.12 * mac_area);
}

TEST(AreaModel, ScalesWithPeCount)
{
    const AreaModel a256(256);
    const AreaModel a1024(1024);
    // PE area quadruples; the fixed GLB keeps the total below 4x.
    EXPECT_GT(a1024.baselineAreaUm2(), 3.2 * a256.baselineAreaUm2());
    // Relative overhead moves only a few points with PE count: the
    // per-PE overheads scale together while the fixed GLB dilutes.
    EXPECT_NEAR(a1024.areaOverhead(), a256.areaOverhead(), 0.05);
}

} // namespace
} // namespace arch
} // namespace procrustes
