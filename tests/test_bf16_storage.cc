/**
 * @file
 * Tests for the bf16 storage tier: the round-to-nearest-even helper,
 * precision-aware CSB encode + byte accounting, and the layer-level
 * bf16 path (weights rounded at encode, inputs rounded into the cache,
 * fp32 accumulation throughout). The compute contract is exactness —
 * a bf16-storage layer must equal the fp32 executors run on explicitly
 * bf16-rounded operands bit for bit — so those comparisons are
 * memcmp-strict; only the finite-difference gradchecks carry the loose
 * tolerance that quantized operands force on a numeric derivative.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "sparse/csb.h"
#include "sparse/mask.h"
#include "sparse/sparse_conv.h"
#include "sparse/sparse_linear.h"

namespace procrustes {
namespace {

/** Exact bit equality — distinguishes +0 from -0. */
bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(std::as_const(a).data(), std::as_const(b).data(),
                       sizeof(float) * a.numel()) == 0;
}

float
bitsToFloat(uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

uint32_t
floatToBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

/** Prune a [O, I] or [K, C, R, S] tensor to the given density. */
void
pruneTo(Tensor *w, double density, uint64_t seed)
{
    sparse::SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed;
    const Shape &s = w->shape();
    const sparse::SparsityMask m =
        s.rank() == 4
            ? sparse::makeSyntheticMask(s[0], s[1], s[2], s[3], cfg)
            : sparse::makeSyntheticMask(s[0], s[1], 1, 1, cfg);
    for (int64_t i = 0; i < w->numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w->at(i) = 0.0f;
    }
}

TEST(Bf16Round, RoundsToNearestEvenAndKeepsSpecials)
{
    // Exactly representable values pass through untouched.
    EXPECT_EQ(bf16Round(0.0f), 0.0f);
    EXPECT_EQ(bf16Round(1.0f), 1.0f);
    EXPECT_EQ(bf16Round(-2.5f), -2.5f);

    // 1.0 + 2^-8 sits exactly halfway between 1.0 and 1.0 + 2^-7 (the
    // bf16 ulp at 1.0): nearest-even keeps the even (all-zero
    // mantissa) side, 1.0.
    EXPECT_EQ(bf16Round(bitsToFloat(0x3f808000u)), 1.0f);
    // One fp32 ulp above the halfway point rounds up to 1.0 + 2^-7.
    EXPECT_EQ(floatToBits(bf16Round(bitsToFloat(0x3f808001u))),
              0x3f810000u);
    // The halfway point above an odd bf16 mantissa rounds up (to even).
    EXPECT_EQ(floatToBits(bf16Round(bitsToFloat(0x3f818000u))),
              0x3f820000u);

    // Sign is preserved, including on -0.
    EXPECT_EQ(floatToBits(bf16Round(-0.0f)), 0x80000000u);
    EXPECT_LT(bf16Round(-1.5f), 0.0f);

    // bf16 keeps the full fp32 exponent: small normals survive.
    EXPECT_NE(bf16Round(1e-38f), 0.0f);

    // Inf / NaN stay what they are (a NaN payload that truncates away
    // must not decay into Inf).
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(bf16Round(inf), inf);
    EXPECT_EQ(bf16Round(-inf), -inf);
    EXPECT_TRUE(std::isnan(bf16Round(std::nanf(""))));
    EXPECT_TRUE(std::isnan(bf16Round(bitsToFloat(0x7f800001u))));

    // Idempotent: a bf16 value re-rounds to itself.
    Xorshift128Plus rng(41);
    for (int i = 0; i < 100; ++i) {
        Tensor t(Shape{1});
        t.fillGaussian(rng, 3.0f);
        const float once = bf16Round(t.at(0));
        EXPECT_EQ(floatToBits(bf16Round(once)), floatToBits(once));
    }
}

TEST(Bf16Storage, PrecisionParsingAndNames)
{
    EXPECT_STREQ(precisionName(Precision::kFp32), "fp32");
    EXPECT_STREQ(precisionName(Precision::kBf16), "bf16");
    EXPECT_EQ(parsePrecision("fp32"), Precision::kFp32);
    EXPECT_EQ(parsePrecision("bf16"), Precision::kBf16);
    EXPECT_EQ(precisionBytes(Precision::kFp32), 4);
    EXPECT_EQ(precisionBytes(Precision::kBf16), 2);
    EXPECT_DEATH(parsePrecision("fp16"), "storage precision");
}

TEST(Bf16Storage, CsbEncodeRoundsValuesAndHalvesValueBytes)
{
    Xorshift128Plus rng(53);
    Tensor w(Shape{24, 40});
    w.fillGaussian(rng, 0.5f);
    pruneTo(&w, 0.4, 59);

    const auto fp32 = sparse::CsbTensor::encodeMatrix(w, 8);
    const auto bf16 =
        sparse::CsbTensor::encodeMatrix(w, 8, Precision::kBf16);

    // bf16 keeps the fp32 exponent range, so no live weight can round
    // to zero: the mask (and nnz) is precision-invariant.
    EXPECT_TRUE(bf16.sameMaskAs(fp32));
    EXPECT_EQ(bf16.nnz(), fp32.nnz());
    EXPECT_EQ(fp32.storagePrecision(), Precision::kFp32);
    EXPECT_EQ(bf16.storagePrecision(), Precision::kBf16);

    // Every packed value is the rounded fp32 value.
    for (int64_t t = 0; t < bf16.nnz(); ++t)
        EXPECT_EQ(bf16.valuesData()[t], bf16Round(fp32.valuesData()[t]))
            << t;

    // The byte model prices 2-byte values (pointers/mask unchanged).
    EXPECT_EQ(bf16.valueBytes() * 2, fp32.valueBytes());
    EXPECT_EQ(fp32.totalBytes() - bf16.totalBytes(),
              fp32.valueBytes() - bf16.valueBytes());
    EXPECT_EQ(sparse::CsbTensor::denseBytes(w.shape(),
                                            Precision::kBf16) *
                  2,
              sparse::CsbTensor::denseBytes(w.shape()));
}

TEST(Bf16Storage, LinearForwardEqualsExecutorOnRoundedOperands)
{
    const int64_t n = 6, i_ext = 21, o_ext = 17;
    nn::Linear layer(i_ext, o_ext, "fc", /*with_bias=*/false);
    layer.setBackend(kernels::KernelBackend::kSparse);
    layer.setStoragePrecision(Precision::kBf16);
    EXPECT_EQ(layer.storagePrecision(), Precision::kBf16);

    Xorshift128Plus rng(61);
    layer.weight().value.fillGaussian(rng, 0.5f);
    pruneTo(&layer.weight().value, 0.4, 67);
    Tensor x(Shape{n, i_ext});
    x.fillGaussian(rng, 1.0f);

    const Tensor y = layer.forward(x, true);

    // The bf16 tier is *storage* rounding only: the same fp32 executor
    // run on explicitly rounded operands must match bit for bit.
    const auto csb = sparse::CsbTensor::encodeMatrix(
        layer.weight().value, nn::Linear::kCsbBlockSide,
        Precision::kBf16);
    const Tensor y_ref =
        sparse::sparseLinearForward(bf16RoundedCopy(x), csb);
    EXPECT_TRUE(bitwiseEqual(y, y_ref));
}

TEST(Bf16Storage, ConvTrainingStepEqualsExecutorOnRoundedOperands)
{
    nn::Conv2dConfig cfg;
    cfg.inChannels = 3;
    cfg.outChannels = 5;
    cfg.kernel = 3;
    cfg.stride = 1;
    cfg.pad = 1;
    cfg.bias = false;
    nn::Conv2d layer(cfg, "conv");
    layer.setBackend(kernels::KernelBackend::kSparse);
    layer.setStoragePrecision(Precision::kBf16);

    Xorshift128Plus rng(71);
    layer.weight().value.fillGaussian(rng, 0.5f);
    pruneTo(&layer.weight().value, 0.4, 73);
    Tensor x(Shape{2, 3, 7, 9});
    x.fillGaussian(rng, 1.0f);
    Tensor dy(Shape{2, 5, 7, 9});
    dy.fillGaussian(rng, 1.0f);

    const Tensor y = layer.forward(x, true);
    const Tensor dx = layer.backward(dy);

    const auto csb = sparse::CsbTensor::encodeConvFilters(
        layer.weight().value, Precision::kBf16);
    const Tensor xr = bf16RoundedCopy(x);
    const Tensor y_ref = sparse::sparseConvForward(xr, csb, 1, 1);
    const Tensor dx_ref =
        sparse::sparseConvBackwardData(dy, csb, x.shape(), 1, 1);
    Tensor dw_ref(layer.weight().value.shape());
    sparse::sparseConvBackwardWeights(xr, dy, csb, 1, 1, &dw_ref);

    EXPECT_TRUE(bitwiseEqual(y, y_ref));
    EXPECT_TRUE(bitwiseEqual(dx, dx_ref));
    EXPECT_TRUE(bitwiseEqual(layer.weight().grad, dw_ref));
}

/** L = <layer.forward(x), dy> for the FD checks below. */
double
linearLoss(nn::Linear *layer, const Tensor &x, const Tensor &dy)
{
    const Tensor y = layer->forward(x, true);
    const float *py = std::as_const(y).data();
    const float *pdy = std::as_const(dy).data();
    double loss = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i)
        loss += static_cast<double>(py[i]) * pdy[i];
    return loss;
}

TEST(Bf16Storage, LinearGradientsMatchFiniteDifferences)
{
    // Central differences through the bf16-storage forward. The
    // quantization step near |x| ~ 1 is ~2^-8, small against the 0.25
    // probe, so the numeric derivative approximates the analytic one
    // to roughly the quantization/probe ratio — hence the loose 5e-2
    // tolerance (the fp32 path checks at 1e-3 elsewhere).
    const int64_t n = 4, i_ext = 15, o_ext = 9;
    nn::Linear layer(i_ext, o_ext, "fc", /*with_bias=*/false);
    layer.setBackend(kernels::KernelBackend::kSparse);
    layer.setStoragePrecision(Precision::kBf16);

    Xorshift128Plus rng(83);
    layer.weight().value.fillGaussian(rng, 0.5f);
    pruneTo(&layer.weight().value, 0.5, 89);
    Tensor x(Shape{n, i_ext});
    x.fillGaussian(rng, 1.0f);
    Tensor dy(Shape{n, o_ext});
    dy.fillGaussian(rng, 1.0f);

    layer.forward(x, true);
    const Tensor dx = layer.backward(dy);
    const Tensor dw = layer.weight().grad;

    const float eps = 0.25f;
    for (int64_t i = 0; i < x.numel(); ++i) {
        const float orig = x.at(i);
        x.at(i) = orig + eps;
        const double lp = linearLoss(&layer, x, dy);
        x.at(i) = orig - eps;
        const double lm = linearLoss(&layer, x, dy);
        x.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dx.at(i), numeric,
                    5e-2 * std::max(1.0, std::fabs(numeric)))
            << "x[" << i << "]";
    }

    Tensor &w = layer.weight().value;
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (w.at(i) == 0.0f) {
            ASSERT_EQ(dw.at(i), 0.0f) << "pruned w[" << i << "]";
            continue;
        }
        const float orig = w.at(i);
        w.at(i) = orig + eps;
        const double lp = linearLoss(&layer, x, dy);
        w.at(i) = orig - eps;
        const double lm = linearLoss(&layer, x, dy);
        w.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dw.at(i), numeric,
                    5e-2 * std::max(1.0, std::fabs(numeric)))
            << "w[" << i << "]";
    }
}

TEST(MaskStableRefresh, LinearReusesTapGeometryAcrossSteps)
{
    // Two steps with the same mask but different values: the layer's
    // O(nnz) value-refresh fast path must be indistinguishable from a
    // fresh layer that gathers its tap views from scratch.
    const int64_t n = 9, i_ext = 26, o_ext = 14;
    Xorshift128Plus rng(97);
    Tensor w(Shape{o_ext, i_ext});
    w.fillGaussian(rng, 0.5f);
    pruneTo(&w, 0.4, 101);
    Tensor x(Shape{n, i_ext});
    x.fillGaussian(rng, 1.0f);
    Tensor dy(Shape{n, o_ext});
    dy.fillGaussian(rng, 1.0f);

    nn::Linear cached(i_ext, o_ext, "cached");
    cached.setBackend(kernels::KernelBackend::kSparse);
    cached.weight().value = w;
    cached.forward(x, true);   // step 1 gathers the tap views
    cached.backward(dy);
    // Optimizer-like update: scale live values, keep the mask.
    for (int64_t i = 0; i < w.numel(); ++i)
        cached.weight().value.at(i) *= 1.5f;
    cached.weight().grad = Tensor(w.shape());
    cached.bias().grad = Tensor(Shape{o_ext});
    const Tensor y2 = cached.forward(x, true);   // refresh fast path
    const Tensor dx2 = cached.backward(dy);

    nn::Linear fresh(i_ext, o_ext, "fresh");
    fresh.setBackend(kernels::KernelBackend::kSparse);
    fresh.weight().value = w;
    for (int64_t i = 0; i < w.numel(); ++i)
        fresh.weight().value.at(i) *= 1.5f;
    fresh.bias().value = cached.bias().value;
    const Tensor y_ref = fresh.forward(x, true);
    const Tensor dx_ref = fresh.backward(dy);

    EXPECT_TRUE(bitwiseEqual(y2, y_ref));
    EXPECT_TRUE(bitwiseEqual(dx2, dx_ref));
    EXPECT_TRUE(bitwiseEqual(cached.weight().grad,
                             fresh.weight().grad));

    // A mask change (new pruning epoch) must force a full re-gather,
    // not a stale-geometry refresh.
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (cached.weight().value.at(i) != 0.0f) {
            cached.weight().value.at(i) = 0.0f;   // kill one live weight
            break;
        }
    }
    cached.weight().grad = Tensor(w.shape());
    cached.bias().grad = Tensor(Shape{o_ext});
    const Tensor y3 = cached.forward(x, true);
    cached.backward(dy);

    nn::Linear fresh2(i_ext, o_ext, "fresh2");
    fresh2.setBackend(kernels::KernelBackend::kSparse);
    fresh2.weight().value = cached.weight().value;
    fresh2.bias().value = cached.bias().value;
    const Tensor y3_ref = fresh2.forward(x, true);
    EXPECT_TRUE(bitwiseEqual(y3, y3_ref));
}

} // namespace
} // namespace procrustes
