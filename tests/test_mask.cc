/**
 * @file
 * Tests for sparsity masks and the synthetic mask generators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "sparse/mask.h"

namespace procrustes {
namespace sparse {
namespace {

TEST(Mask, FromTensorCapturesZeroPattern)
{
    Tensor w(Shape{2, 2, 1, 1});
    w(0, 0, 0, 0) = 1.0f;
    w(1, 1, 0, 0) = -2.0f;
    const SparsityMask m = SparsityMask::fromTensor(w);
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_DOUBLE_EQ(m.density(), 0.5);
    EXPECT_EQ(m.blockNnz(0, 0), 1);
    EXPECT_EQ(m.blockNnz(0, 1), 0);
}

TEST(Mask, FromRank2TensorTreatsFcAsOneByOneKernels)
{
    Tensor w(Shape{3, 4});
    w(2, 3) = 1.0f;
    const SparsityMask m = SparsityMask::fromTensor(w);
    EXPECT_EQ(m.K, 3);
    EXPECT_EQ(m.C, 4);
    EXPECT_EQ(m.R, 1);
    EXPECT_EQ(m.blockNnz(2, 3), 1);
}

TEST(Mask, DenseMaskIsAllOnes)
{
    const SparsityMask m = SparsityMask::dense(3, 4, 3, 3);
    EXPECT_EQ(m.nnz(), 3 * 4 * 9);
    EXPECT_DOUBLE_EQ(m.density(), 1.0);
}

TEST(Mask, TileNnzSumsBlocks)
{
    SyntheticMaskConfig cfg;
    cfg.targetDensity = 0.3;
    cfg.seed = 5;
    const SparsityMask m = makeSyntheticMask(8, 8, 3, 3, cfg);
    int64_t manual = 0;
    for (int64_t k = 2; k < 5; ++k) {
        for (int64_t c = 1; c < 7; ++c)
            manual += m.blockNnz(k, c);
    }
    EXPECT_EQ(m.tileNnz(2, 5, 1, 7), manual);
    EXPECT_EQ(m.tileNnz(0, 8, 0, 8), m.nnz());
}

/** Density sweep: generated masks hit the target exactly. */
class SyntheticMaskDensity : public ::testing::TestWithParam<double>
{
};

TEST_P(SyntheticMaskDensity, HitsGlobalTarget)
{
    SyntheticMaskConfig cfg;
    cfg.targetDensity = GetParam();
    cfg.seed = 11;
    const SparsityMask m = makeSyntheticMask(32, 16, 3, 3, cfg);
    const auto expected = static_cast<int64_t>(
        std::llround(cfg.targetDensity * 32 * 16 * 9));
    EXPECT_EQ(m.nnz(), expected);
}

INSTANTIATE_TEST_SUITE_P(Densities, SyntheticMaskDensity,
                         ::testing::Values(0.05, 0.1, 0.2, 0.5, 1.0));

TEST(SyntheticMask, KernelSigmaControlsNonUniformity)
{
    // Larger lognormal sigma must spread per-kernel densities wider —
    // this is what drives the load-imbalance experiments.
    auto spread = [](double sigma) {
        SyntheticMaskConfig cfg;
        cfg.targetDensity = 0.2;
        cfg.kernelSigma = sigma;
        cfg.seed = 13;
        const SparsityMask m = makeSyntheticMask(32, 32, 3, 3, cfg);
        std::vector<double> densities;
        for (int64_t k = 0; k < 32; ++k) {
            for (int64_t c = 0; c < 32; ++c)
                densities.push_back(m.blockDensity(k, c));
        }
        return stddev(densities);
    };
    EXPECT_LT(spread(0.1), spread(1.0));
    EXPECT_LT(spread(1.0), spread(2.5) + 1e-9);
}

TEST(SyntheticMask, DeterministicPerSeed)
{
    SyntheticMaskConfig cfg;
    cfg.targetDensity = 0.15;
    cfg.seed = 17;
    const SparsityMask a = makeSyntheticMask(8, 8, 3, 3, cfg);
    const SparsityMask b = makeSyntheticMask(8, 8, 3, 3, cfg);
    EXPECT_EQ(a.bits, b.bits);
    cfg.seed = 18;
    const SparsityMask c = makeSyntheticMask(8, 8, 3, 3, cfg);
    EXPECT_NE(a.bits, c.bits);
}

TEST(QuantileStreamMask, DensityNearTargetWithEstimationLag)
{
    // The QE-driven mask generation mirrors the paper's observation
    // that estimation error tracks extra weights (7.5x -> 5.2x): the
    // achieved density may exceed 1/sparsity, but should stay within
    // about 2x of it and never fall far below.
    const double sparsity = 7.5;
    const SparsityMask m =
        maskFromQuantileStream(64, 32, 3, 3, sparsity, 1.0, 19);
    const double target = 1.0 / sparsity;
    EXPECT_GT(m.density(), 0.6 * target);
    EXPECT_LT(m.density(), 2.5 * target);
}

TEST(QuantileStreamMask, KeepsLargestMagnitudesPreferentially)
{
    // Kernels that got large synthetic scales should survive more:
    // correlation between block density and rank should be visibly
    // positive — verified via spread of densities being nonzero.
    const SparsityMask m =
        maskFromQuantileStream(32, 16, 3, 3, 5.0, 1.5, 23);
    std::vector<double> densities;
    for (int64_t k = 0; k < 32; ++k) {
        for (int64_t c = 0; c < 16; ++c)
            densities.push_back(m.blockDensity(k, c));
    }
    EXPECT_GT(stddev(densities), 0.05);
    // Some kernels nearly empty, some nearly full.
    EXPECT_LT(*std::min_element(densities.begin(), densities.end()),
              0.05);
    EXPECT_GT(*std::max_element(densities.begin(), densities.end()),
              0.5);
}

} // namespace
} // namespace sparse
} // namespace procrustes
