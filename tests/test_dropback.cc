/**
 * @file
 * Tests for the Dropback optimizer family (Algorithms 2-4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sparse/dropback.h"

namespace procrustes {
namespace sparse {
namespace {

using nn::Network;

void
buildMlp(Network &net, uint64_t seed, int64_t hidden = 64)
{
    net.add<nn::Flatten>("fl");
    net.add<nn::Linear>(2, hidden, "fc1");
    net.add<nn::ReLU>("r1");
    net.add<nn::Linear>(hidden, hidden, "fc2");
    net.add<nn::ReLU>("r2");
    net.add<nn::Linear>(hidden, 3, "fc3");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

nn::Dataset
spirals(uint64_t seed = 1)
{
    nn::SpiralConfig cfg;
    cfg.samplesPerClass = 100;
    cfg.seed = seed;
    return nn::makeSpirals(cfg);
}

/** Run `iters` dropback iterations on the spiral task. */
void
runIterations(Network &net, DropbackOptimizer &opt, int iters,
              uint64_t seed = 3)
{
    const auto ds = spirals(seed);
    nn::SoftmaxCrossEntropy loss;
    const auto params = net.params();
    const int64_t batch = 16;
    for (int it = 0; it < iters; ++it) {
        const auto order =
            nn::epochOrder(ds.size(), 5, it / 10);
        std::vector<int64_t> idx(
            order.begin() + (it * batch) % (ds.size() - batch),
            order.begin() + (it * batch) % (ds.size() - batch) + batch);
        net.zeroGrad();
        const Tensor logits = net.forward(ds.batch(idx), true);
        loss.forward(logits, ds.batchLabels(idx));
        net.backward(loss.backward());
        opt.step(params);
    }
}

TEST(Dropback, RejectsBadConfig)
{
    DropbackConfig cfg;
    cfg.sparsity = 1.0;
    EXPECT_DEATH(DropbackOptimizer{cfg}, "sparsity");
}

TEST(Dropback, TrackedFractionMatchesTargetWithExactSort)
{
    Network net;
    buildMlp(net, 1);
    DropbackConfig cfg;
    cfg.sparsity = 5.0;
    cfg.selection = SelectionMode::ExactSort;
    DropbackOptimizer opt(cfg);
    runIterations(net, opt, 5);
    // Exact selection keeps numel/sparsity weights (within rounding
    // and ties).
    EXPECT_NEAR(opt.trackedFraction(), 0.2, 0.02);
}

TEST(Dropback, NoDecayKeepsInitialValues)
{
    Network net;
    buildMlp(net, 2);
    // Snapshot initial weights.
    std::vector<Tensor> w0;
    for (nn::Param *p : net.params())
        w0.push_back(p->value);

    DropbackConfig cfg;
    cfg.sparsity = 4.0;
    cfg.initDecay = 1.0f;   // Algorithm 2: pruned -> W(0)
    DropbackOptimizer opt(cfg);
    runIterations(net, opt, 3);

    // With no decay, every pruned weight equals its initial value:
    // weight sparsity stays ~0 (no computation sparsity) -- the
    // drawback Section III-A fixes.
    EXPECT_LT(nn::weightSparsity(net), 0.01);

    // And a large share of weights should exactly equal W(0).
    const auto params = net.params();
    int64_t restored = 0;
    int64_t total = 0;
    for (size_t i = 0; i < params.size(); ++i) {
        if (!params[i]->prunable)
            continue;
        for (int64_t j = 0; j < params[i]->value.numel(); ++j) {
            if (params[i]->value.at(j) == w0[i].at(j))
                ++restored;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(restored) / total, 0.6);
}

TEST(Dropback, DecayCreatesComputationSparsity)
{
    Network net;
    buildMlp(net, 3);
    DropbackConfig cfg;
    cfg.sparsity = 5.0;
    cfg.initDecay = 0.9f;
    cfg.decayHorizon = 40;   // shortened horizon for the test
    DropbackOptimizer opt(cfg);
    runIterations(net, opt, 50);

    // After the horizon, pruned weights are exactly zero: weight
    // sparsity approaches 1 - 1/sparsity (Algorithm 3's payoff).
    EXPECT_GT(nn::weightSparsity(net), 0.70);
    EXPECT_LT(nn::weightSparsity(net), 0.90);
    EXPECT_EQ(opt.currentDecayFactor(), 0.0f);
}

TEST(Dropback, DecayFactorSchedule)
{
    DropbackConfig cfg;
    cfg.initDecay = 0.9f;
    cfg.decayHorizon = 1000;
    DropbackOptimizer opt(cfg);
    EXPECT_FLOAT_EQ(opt.currentDecayFactor(), 1.0f);   // iteration 0
}

TEST(Dropback, QuantileModeTracksNearTarget)
{
    Network net;
    buildMlp(net, 4);
    DropbackConfig cfg;
    cfg.sparsity = 7.5;
    cfg.selection = SelectionMode::QuantileEstimate;
    DropbackOptimizer opt(cfg);
    runIterations(net, opt, 60);

    // The paper reports estimation error tracks *extra* weights
    // (7.5x -> 5.2x); accept a tracked fraction between the target
    // (1/7.5 = 0.133) and ~2.5x the target.
    EXPECT_GT(opt.trackedFraction(), 0.08);
    EXPECT_LT(opt.trackedFraction(), 0.35);
    EXPECT_GT(opt.lastThreshold(), 0.0);
}

TEST(Dropback, NonPrunableParamsGetPlainSgd)
{
    Network net;
    net.add<nn::Flatten>("fl");
    auto *fc = net.add<nn::Linear>(2, 3, "fc");
    Xorshift128Plus rng(5);
    nn::kaimingInit(net, rng);

    DropbackConfig cfg;
    cfg.sparsity = 2.0;
    cfg.lr = 0.5f;
    DropbackOptimizer opt(cfg);

    // Handcraft gradients: bias grad = 1 -> bias should move by -lr.
    const auto params = net.params();
    for (nn::Param *p : params)
        p->grad.fill(1.0f);
    const float bias_before = fc->bias().value.at(0);
    opt.step(params);
    EXPECT_FLOAT_EQ(fc->bias().value.at(0), bias_before - 0.5f);
}

TEST(Dropback, WeightRecomputeMatchesStoredInitials)
{
    // Training with WR-regenerated initial weights must match training
    // with stored W(0) exactly, provided both start from the WR init.
    auto run = [&](bool use_wr) {
        Network net;
        buildMlp(net, 6);
        DropbackConfig cfg;
        cfg.sparsity = 4.0;
        cfg.initDecay = 0.9f;
        cfg.decayHorizon = 30;
        cfg.useWeightRecompute = true;   // first step re-inits from WR
        cfg.wrSeed = 99;
        DropbackOptimizer boot(cfg);
        // One zero-gradient step to fix initial weights from the WR.
        net.zeroGrad();
        boot.step(net.params());
        if (!use_wr)
            return net.params()[1]->value;   // fc1 weights after init
        runIterations(net, boot, 10);
        return net.params()[1]->value;
    };
    const Tensor after_init = run(false);
    const Tensor after_train = run(true);
    EXPECT_EQ(after_init.shape(), after_train.shape());
    // Training moved the weights (sanity that the paths diverge).
    EXPECT_GT(maxAbsDiff(after_init, after_train), 0.0f);
}

TEST(Dropback, AccumulatedGradientSurvivesForTrackedWeight)
{
    // A weight with a persistently large gradient must stay tracked
    // and accumulate updates across iterations.
    Network net;
    auto *fc = net.add<nn::Linear>(2, 2, "fc", /*with_bias=*/false);
    Xorshift128Plus rng(7);
    nn::kaimingInit(net, rng);

    DropbackConfig cfg;
    cfg.sparsity = 4.0;   // keep 1 of 4 weights
    cfg.lr = 0.1f;
    cfg.initDecay = 0.9f;
    cfg.decayHorizon = 5;
    DropbackOptimizer opt(cfg);

    const float w0_00 = fc->weight().value(0, 0);
    const auto params = net.params();
    for (int it = 0; it < 10; ++it) {
        for (nn::Param *p : params)
            p->grad.zero();
        fc->weight().grad(0, 0) = -1.0f;   // only (0,0) learns
        opt.step(params);
    }
    // After the horizon: tracked (0,0) accumulated +0.1 per step on
    // top of its embedded initial value (Algorithm 3 keeps the
    // initial component of tracked weights); everything else decayed
    // to exactly zero.
    EXPECT_NEAR(fc->weight().value(0, 0), w0_00 + 1.0f, 1e-4f);
    EXPECT_EQ(fc->weight().value(1, 1), 0.0f);
}

/**
 * The headline algorithmic property (Figures 6/7): sparse training
 * variants reach accuracy comparable to dense SGD on the same task.
 * Parameterized over the three Dropback configurations.
 */
struct AccuracyCase
{
    const char *name;
    float decay;
    SelectionMode mode;
};

class DropbackAccuracy : public ::testing::TestWithParam<AccuracyCase>
{
};

TEST_P(DropbackAccuracy, MatchesDenseSgdOnSpirals)
{
    const AccuracyCase &pc = GetParam();
    const auto train = spirals(1);
    const auto val = spirals(42);

    // Dense baseline. The MLP is over-parameterized for the task —
    // the regime Dropback's premise (a trainable sub-network exists)
    // requires.
    Network dense;
    buildMlp(dense, 11, /*hidden=*/128);
    nn::Sgd sgd(0.15f);
    nn::TrainConfig tc;
    tc.epochs = 50;
    tc.batchSize = 32;
    const double dense_acc =
        trainNetwork(dense, sgd, train, val, tc).back().valAccuracy;

    // Sparse variant (same init seed -> same starting point). The
    // decay rate is milder than the paper's 0.9 because this task has
    // ~30x fewer iterations per epoch than CIFAR-10 training; what is
    // asserted is the paper's *claim* — decay and streaming selection
    // do not cost accuracy relative to dense SGD on the same task.
    Network sparse_net;
    buildMlp(sparse_net, 11, /*hidden=*/128);
    DropbackConfig cfg;
    cfg.sparsity = 3.0;
    cfg.lr = 0.15f;
    cfg.initDecay = pc.decay;
    cfg.decayHorizon = 200;
    cfg.selection = pc.mode;
    DropbackOptimizer opt(cfg);
    const double sparse_acc =
        trainNetwork(sparse_net, opt, train, val, tc).back().valAccuracy;

    EXPECT_GT(dense_acc, 0.85);
    EXPECT_GT(sparse_acc, dense_acc - 0.12)
        << pc.name << ": sparse training lost too much accuracy";
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DropbackAccuracy,
    ::testing::Values(
        AccuracyCase{"alg2_sort_nodecay", 1.0f, SelectionMode::ExactSort},
        AccuracyCase{"alg3_sort_decay", 0.95f, SelectionMode::ExactSort},
        AccuracyCase{"procrustes_qe_decay", 0.95f,
                     SelectionMode::QuantileEstimate}),
    [](const ::testing::TestParamInfo<AccuracyCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace sparse
} // namespace procrustes
