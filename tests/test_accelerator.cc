/**
 * @file
 * Tests for the whole-network accelerator roll-ups: the paper's
 * headline energy/speedup claims in ratio form.
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"

namespace procrustes {
namespace arch {
namespace {

struct ModelCase
{
    const char *name;
};

class HeadlineClaims : public ::testing::TestWithParam<const char *>
{
  protected:
    static NetworkModel
    byName(const std::string &name)
    {
        for (NetworkModel &m : models())
            if (m.name == name)
                return m;
        ADD_FAILURE() << "unknown model";
        return {};
    }

    static std::vector<NetworkModel> &
    models()
    {
        static std::vector<NetworkModel> ms = allModels();
        return ms;
    }
};

TEST_P(HeadlineClaims, EnergyAndSpeedupInPaperBand)
{
    const NetworkModel m = byName(GetParam());
    const auto masks = generateMasks(m, m.paperSparsity, 7);
    const auto sparse_profiles = buildProfiles(m, masks);
    const auto dense_profiles = buildDenseProfiles(m);

    const Accelerator procrustes = Accelerator::procrustes();
    const Accelerator baseline = Accelerator::denseBaseline();
    const NetworkCost sc = procrustes.evaluate(m, sparse_profiles, 16);
    const NetworkCost dc = baseline.evaluate(m, dense_profiles, 16);

    const double energy_ratio = dc.totalEnergyJ() / sc.totalEnergyJ();
    const double speedup = dc.totalCycles() / sc.totalCycles();

    // Paper: 2.27x-3.26x energy, 2.28x-4x speedup across models.
    // Accept a generous band — absolute constants differ — but the
    // win must be significant and bounded.
    EXPECT_GT(energy_ratio, 1.6) << m.name;
    EXPECT_LT(energy_ratio, 6.0) << m.name;
    EXPECT_GT(speedup, 1.5) << m.name;
    EXPECT_LT(speedup, 8.0) << m.name;
}

INSTANTIATE_TEST_SUITE_P(Models, HeadlineClaims,
                         ::testing::Values("DenseNet", "WRN-28-10",
                                           "VGG-S", "MobileNetV2",
                                           "ResNet18"),
                         [](const ::testing::TestParamInfo<const char *>
                                &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(Accelerator, HigherSparsityMoreEnergySavings)
{
    // Figure 17's trend: ResNet18 at 11.7x saves more than at 3x.
    const NetworkModel m = buildResNet18();
    const auto dense_profiles = buildDenseProfiles(m);
    const double dense_e = Accelerator::denseBaseline()
                               .evaluate(m, dense_profiles, 16)
                               .totalEnergyJ();
    auto ratio_at = [&](double sparsity) {
        const auto masks = generateMasks(m, sparsity, 7);
        const auto profiles = buildProfiles(m, masks);
        return dense_e / Accelerator::procrustes()
                             .evaluate(m, profiles, 16)
                             .totalEnergyJ();
    };
    EXPECT_GT(ratio_at(11.7), ratio_at(3.0));
}

TEST(Accelerator, IdealBoundsRealSparse)
{
    const NetworkModel m = buildVggS();
    const auto masks = generateMasks(m, 5.2, 3);
    const auto profiles = buildProfiles(m, masks);
    const NetworkCost real =
        Accelerator::procrustes().evaluate(m, profiles, 16);
    const NetworkCost ideal =
        Accelerator::idealSparse().evaluate(m, profiles, 16);
    EXPECT_LE(ideal.totalCycles(), real.totalCycles());
    EXPECT_LE(ideal.totalEnergyJ(), real.totalEnergyJ());
}

TEST(Accelerator, ScalabilityNearIdealForKn)
{
    // Figure 20: 4x the PEs gives ~3.9x speedup under K,N, and energy
    // stays almost unchanged.
    const NetworkModel m = buildResNet18();
    const auto masks = generateMasks(m, 11.7, 7);
    const auto profiles = buildProfiles(m, masks);

    // Batch 64 (as the Figure 1 cycle counts imply): a minibatch of
    // 16 could not fill the 32-wide array's N axis.
    const NetworkCost c16 = Accelerator::procrustes(
                                ArrayConfig::baseline16())
                                .evaluate(m, profiles, 64);
    const NetworkCost c32 = Accelerator::procrustes(
                                ArrayConfig::scaled32())
                                .evaluate(m, profiles, 64);

    const double speedup = c16.totalCycles() / c32.totalCycles();
    EXPECT_GT(speedup, 3.0);
    EXPECT_LE(speedup, 4.05);
    const double energy_ratio =
        c32.totalEnergyJ() / c16.totalEnergyJ();
    EXPECT_NEAR(energy_ratio, 1.0, 0.05);
}

TEST(Accelerator, PqScalesWorseThanKn)
{
    // Figure 20's second claim: mappings that trade utilization for
    // reuse (P,Q) scale worse than the Procrustes mappings.
    const NetworkModel m = buildMobileNetV2();
    const auto masks = generateMasks(m, 10.0, 7);
    const auto profiles = buildProfiles(m, masks);

    CostOptions opts;
    opts.sparse = true;
    opts.balance = BalanceMode::HalfTile;
    auto speedup_for = [&](MappingKind mk) {
        const Accelerator a16(ArrayConfig::baseline16(), opts, mk);
        const Accelerator a32(ArrayConfig::scaled32(), opts, mk);
        return a16.evaluate(m, profiles, 64).totalCycles() /
               a32.evaluate(m, profiles, 64).totalCycles();
    };
    EXPECT_GT(speedup_for(MappingKind::KN),
              speedup_for(MappingKind::PQ));
}

TEST(Accelerator, LayerEvaluationSumsToNetwork)
{
    const NetworkModel m = buildDenseNetS();
    const auto masks = generateMasks(m, 3.9, 5);
    const auto profiles = buildProfiles(m, masks);
    const Accelerator acc = Accelerator::procrustes();

    const NetworkCost whole = acc.evaluate(m, profiles, 16);
    double by_layer = 0.0;
    for (size_t i = 0; i < m.layers.size(); ++i) {
        by_layer += acc.evaluateLayer(m.layers[i], profiles[i], 16)
                        .totalEnergyJ();
    }
    EXPECT_NEAR(by_layer, whole.totalEnergyJ(),
                1e-9 * whole.totalEnergyJ());
}

} // namespace
} // namespace arch
} // namespace procrustes
