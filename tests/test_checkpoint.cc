/**
 * @file
 * Bitwise training-state snapshots: serialization primitives, the
 * layer/optimizer state contracts, and the corrupt-snapshot guards.
 * Holds the regression tests for the two hidden-state bugs that broke
 * resume before this PR: batch-norm running statistics unreachable
 * through params(), and the gradual-pruning optimizer lazily
 * re-capturing its masks (marking everything alive) when restored
 * weights were fed to a fresh optimizer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/sgd.h"
#include "nn/trainer.h"
#include "serve/checkpoint.h"
#include "sparse/gradual_pruning.h"

namespace procrustes {
namespace {

using nn::Dataset;
using nn::Network;
using serve::TrainCursor;

// ---------------------------------------------------------------------
// Serialization primitives
// ---------------------------------------------------------------------

TEST(Serialize, ScalarAndStringRoundTripIsBitwise)
{
    ByteWriter w;
    w.writeU8(0xA5);
    w.writeU32(0xDEADBEEFu);
    w.writeU64(~0ull);
    w.writeI64(-42);
    w.writeF64(0.1);              // not exactly representable
    w.writeF32(-0.0f);            // sign of zero must survive
    w.writeF32(1e-41f);           // denormal
    w.writeF64(std::nan(""));     // NaN payload travels as bits
    w.writeString("conv1.weight");
    w.writeString("");

    ByteReader r(w.bytes());
    EXPECT_EQ(r.readU8(), 0xA5);
    EXPECT_EQ(r.readU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.readU64(), ~0ull);
    EXPECT_EQ(r.readI64(), -42);
    EXPECT_EQ(r.readF64(), 0.1);
    const float nz = r.readF32();
    EXPECT_EQ(nz, 0.0f);
    EXPECT_TRUE(std::signbit(nz));
    EXPECT_EQ(r.readF32(), 1e-41f);
    EXPECT_TRUE(std::isnan(r.readF64()));
    EXPECT_EQ(r.readString(), "conv1.weight");
    EXPECT_EQ(r.readString(), "");
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, TensorRoundTripPreservesShapeAndBits)
{
    Tensor t(Shape{2, 3, 1, 2});
    float *v = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        v[i] = 0.3f * static_cast<float>(i) - 1.7f;
    v[0] = -0.0f;
    v[1] = 1e-41f;

    ByteWriter w;
    w.writeTensor(t);
    ByteReader r(w.bytes());
    const Tensor back = r.readTensor();
    ASSERT_TRUE(back.shape() == t.shape());
    const float *b = back.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(b[i], v[i]);
    EXPECT_TRUE(std::signbit(b[0]));
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, ReadPastEndIsFatal)
{
    ByteWriter w;
    w.writeU32(7);
    ByteReader r(w.bytes());
    r.readU32();
    EXPECT_DEATH(r.readU64(), "truncated");
}

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/** Tiny conv+BN net: the batch-norm running-stat regression target. */
void
buildBnNet(Network &net, uint64_t seed)
{
    nn::Conv2dConfig c1;
    c1.inChannels = 1;
    c1.outChannels = 4;
    c1.kernel = 3;
    c1.pad = 1;
    c1.bias = false;
    net.add<nn::Conv2d>(c1, "conv1");
    net.add<nn::BatchNorm2d>(4, "bn1");
    net.add<nn::ReLU>("r1");
    net.add<nn::GlobalAvgPool>("gap");
    net.add<nn::Linear>(4, 3, "fc");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

/** Dense MLP for the pruning-optimizer regression. */
void
buildDenseMlp(Network &net, uint64_t seed)
{
    net.add<nn::Flatten>("fl");
    net.add<nn::Linear>(2, 16, "fc1");
    net.add<nn::ReLU>("r1");
    net.add<nn::Linear>(16, 3, "fc2");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

Dataset
tinyImages(uint64_t seed)
{
    nn::BlobImageConfig cfg;
    cfg.numClasses = 3;
    cfg.samplesPerClass = 8;
    cfg.channels = 1;
    cfg.height = 6;
    cfg.width = 6;
    cfg.sampleSeed = seed;
    return nn::makeBlobImages(cfg);
}

Dataset
tinySpirals(uint64_t seed)
{
    nn::SpiralConfig cfg;
    cfg.samplesPerClass = 12;
    cfg.seed = seed;
    return nn::makeSpirals(cfg);
}

/**
 * Run `steps` optimizer steps, mirroring the trainNetwork expression
 * sequence from a given cursor position (whole-epoch shuffles, batch
 * 8), and return the per-step losses.
 */
std::vector<double>
runSteps(Network &net, nn::Optimizer &opt, const Dataset &ds,
         int64_t steps, int64_t start_epoch = 0,
         int64_t start_step_in_epoch = 0)
{
    nn::SoftmaxCrossEntropy loss;
    const auto params = net.params();
    const int64_t batch = 8;
    std::vector<double> losses;
    int64_t epoch = start_epoch;
    int64_t step_in_epoch = start_step_in_epoch;
    for (int64_t s = 0; s < steps; ++s) {
        const auto order = nn::epochOrder(ds.size(), 7, epoch);
        const int64_t start = step_in_epoch * batch;
        const int64_t end = std::min(start + batch, ds.size());
        std::vector<int64_t> idx(order.begin() + start,
                                 order.begin() + end);
        const Tensor x = ds.batch(idx);
        const auto y = ds.batchLabels(idx);
        net.zeroGrad();
        const Tensor logits = net.forward(x, /*training=*/true);
        losses.push_back(loss.forward(logits, y));
        net.backward(loss.backward());
        opt.step(params);
        if (end >= ds.size()) {
            ++epoch;
            step_in_epoch = 0;
        } else {
            ++step_in_epoch;
        }
    }
    return losses;
}

void
expectNetsBitwiseEqual(Network &a, Network &b)
{
    const auto pa = a.params();
    const auto pb = b.params();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t pi = 0; pi < pa.size(); ++pi) {
        ASSERT_EQ(pa[pi]->value.numel(), pb[pi]->value.numel());
        const float *av = pa[pi]->value.data();
        const float *bv = pb[pi]->value.data();
        for (int64_t i = 0; i < pa[pi]->value.numel(); ++i)
            ASSERT_EQ(av[i], bv[i])
                << pa[pi]->name << " elem " << i;
    }
}

// ---------------------------------------------------------------------
// Satellite regression: batch-norm running stats (fails pre-fix)
// ---------------------------------------------------------------------

TEST(Checkpoint, BatchNormRunningStatsSurviveRestore)
{
    const Dataset ds = tinyImages(3);

    Network net;
    buildBnNet(net, 21);
    nn::Sgd opt(0.05f);
    runSteps(net, opt, ds, 5);

    auto *bn = dynamic_cast<nn::BatchNorm2d *>(net.layer(1));
    ASSERT_NE(bn, nullptr);
    // Training moved the running stats off their (0, 1) init — the
    // restore check below is not vacuous.
    bool moved = false;
    for (int64_t c = 0; c < 4; ++c) {
        if (bn->runningMean().data()[c] != 0.0f ||
            bn->runningVar().data()[c] != 1.0f)
            moved = true;
    }
    ASSERT_TRUE(moved);

    const auto blob = serve::snapshotTrainingState(net, opt, {});

    // Restore into a fresh twin. Pre-fix, running stats were not part
    // of any snapshot (unreachable through params()), so the restored
    // net evaluated with fresh (0, 1) statistics and these
    // comparisons failed.
    Network fresh;
    buildBnNet(fresh, 21);
    nn::Sgd fresh_opt(0.05f);
    serve::restoreTrainingState(blob, fresh, fresh_opt);

    auto *fbn = dynamic_cast<nn::BatchNorm2d *>(fresh.layer(1));
    ASSERT_NE(fbn, nullptr);
    for (int64_t c = 0; c < 4; ++c) {
        ASSERT_EQ(fbn->runningMean().data()[c],
                  bn->runningMean().data()[c]);
        ASSERT_EQ(fbn->runningVar().data()[c],
                  bn->runningVar().data()[c]);
    }

    // Inference (training=false) uses the running stats: the restored
    // net must produce bitwise-identical logits.
    std::vector<int64_t> idx = {0, 5, 11};
    const Tensor x = ds.batch(idx);
    const Tensor ya = net.forward(x, /*training=*/false);
    const Tensor yb = fresh.forward(x, /*training=*/false);
    ASSERT_EQ(ya.numel(), yb.numel());
    for (int64_t i = 0; i < ya.numel(); ++i)
        ASSERT_EQ(ya.data()[i], yb.data()[i]);
    EXPECT_EQ(nn::evaluateAccuracy(net, ds),
              nn::evaluateAccuracy(fresh, ds));
}

// ---------------------------------------------------------------------
// Satellite regression: pruning masks (fails pre-fix)
// ---------------------------------------------------------------------

sparse::GradualPruningConfig
quickPruning()
{
    sparse::GradualPruningConfig pc;
    pc.targetSparsity = 4.0;
    pc.lr = 0.05f;
    pc.warmupIterations = 2;
    pc.pruneInterval = 2;
    pc.pruneFraction = 0.3;
    return pc;
}

TEST(Checkpoint, PruningOptimizerResumeDoesNotReanimate)
{
    const Dataset ds = tinySpirals(9);

    // Train with pruning past several prune events. Dense backend:
    // pruned positions still receive non-zero gradients, so pre-fix
    // the re-captured (all-alive) masks let the update move them off
    // zero and the trajectories diverged.
    Network net;
    buildDenseMlp(net, 33);
    sparse::GradualMagnitudePruningOptimizer opt(quickPruning());
    runSteps(net, opt, ds, 8);   // 36 samples, batch 8: epoch = 5 steps
    ASSERT_GT(opt.pruneEvents(), 0);
    ASSERT_LT(opt.currentDensity(), 1.0);

    const auto blob = serve::snapshotTrainingState(net, opt, {});

    // Fresh engine, restore, continue; reference continues in place.
    Network resumed;
    buildDenseMlp(resumed, 33);
    sparse::GradualMagnitudePruningOptimizer ropt(quickPruning());
    serve::restoreTrainingState(blob, resumed, ropt);

    // The optimizer's schedule state came back exactly.
    EXPECT_EQ(ropt.iteration(), opt.iteration());
    EXPECT_EQ(ropt.pruneEvents(), opt.pruneEvents());
    EXPECT_EQ(ropt.currentDensity(), opt.currentDensity());
    EXPECT_EQ(ropt.averageDensity(), opt.averageDensity());

    // 8 steps in, cursor is (epoch 1, step 3 of 5).
    const auto ref_losses = runSteps(net, opt, ds, 7, 1, 3);
    const auto res_losses = runSteps(resumed, ropt, ds, 7, 1, 3);
    ASSERT_EQ(ref_losses.size(), res_losses.size());
    for (size_t i = 0; i < ref_losses.size(); ++i)
        ASSERT_EQ(ref_losses[i], res_losses[i]) << "step " << i;
    expectNetsBitwiseEqual(net, resumed);
    EXPECT_EQ(ropt.currentDensity(), opt.currentDensity());

    // Pruned positions stayed exactly zero through the resumed run
    // (the re-animation symptom pre-fix).
    EXPECT_EQ(nn::weightSparsity(resumed), nn::weightSparsity(net));
    EXPECT_GT(nn::weightSparsity(resumed), 0.0);
}

// ---------------------------------------------------------------------
// Momentum velocity
// ---------------------------------------------------------------------

TEST(Checkpoint, SgdMomentumVelocitySurvivesRestore)
{
    const Dataset ds = tinySpirals(4);

    Network net;
    buildDenseMlp(net, 8);
    nn::Sgd opt(0.05f, 0.9f);
    runSteps(net, opt, ds, 6);

    const auto blob = serve::snapshotTrainingState(net, opt, {});

    Network resumed;
    buildDenseMlp(resumed, 8);
    nn::Sgd ropt(0.05f, 0.9f);
    serve::restoreTrainingState(blob, resumed, ropt);
    EXPECT_EQ(ropt.iteration(), opt.iteration());

    // Without the velocity buffer the first resumed step already
    // diverges (momentum restarts from zero).
    const auto ref = runSteps(net, opt, ds, 5, 1, 1);
    const auto res = runSteps(resumed, ropt, ds, 5, 1, 1);
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(ref[i], res[i]) << "step " << i;
    expectNetsBitwiseEqual(net, resumed);
}

TEST(Checkpoint, FreshOptimizerSnapshotPreservesLazyVelocity)
{
    // Checkpointing before any step must restore the pre-lazy-init
    // state, which then initializes identically on the first step.
    Network net;
    buildDenseMlp(net, 2);
    nn::Sgd opt(0.1f, 0.9f);
    const auto blob = serve::snapshotTrainingState(net, opt, {});

    Network resumed;
    buildDenseMlp(resumed, 2);
    nn::Sgd ropt(0.1f, 0.9f);
    const TrainCursor cur =
        serve::restoreTrainingState(blob, resumed, ropt);
    EXPECT_EQ(cur.epoch, 0);
    EXPECT_EQ(ropt.iteration(), 0);

    const Dataset ds = tinySpirals(4);
    const auto ref = runSteps(net, opt, ds, 3);
    const auto res = runSteps(resumed, ropt, ds, 3);
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(ref[i], res[i]);
    expectNetsBitwiseEqual(net, resumed);
}

// ---------------------------------------------------------------------
// Cursor round trip and corrupt-snapshot guards
// ---------------------------------------------------------------------

TEST(Checkpoint, CursorRoundTripsExactly)
{
    Network net;
    buildDenseMlp(net, 5);
    nn::Sgd opt(0.1f);
    TrainCursor c;
    c.epoch = 3;
    c.stepInEpoch = 2;
    c.globalStep = 17;
    c.lossSum = 1.0 / 3.0;
    c.accSum = 2.0 / 7.0;
    c.samples = 44;
    const auto blob = serve::snapshotTrainingState(net, opt, c);

    Network other;
    buildDenseMlp(other, 5);
    nn::Sgd oopt(0.1f);
    const TrainCursor back =
        serve::restoreTrainingState(blob, other, oopt);
    EXPECT_EQ(back.epoch, c.epoch);
    EXPECT_EQ(back.stepInEpoch, c.stepInEpoch);
    EXPECT_EQ(back.globalStep, c.globalStep);
    EXPECT_EQ(back.lossSum, c.lossSum);
    EXPECT_EQ(back.accSum, c.accSum);
    EXPECT_EQ(back.samples, c.samples);
}

TEST(CheckpointDeath, BadMagicVersionTruncationAndMismatch)
{
    Network net;
    buildDenseMlp(net, 5);
    nn::Sgd opt(0.1f);
    const auto blob = serve::snapshotTrainingState(net, opt, {});

    {
        auto bad = blob;
        bad[0] ^= 0xFF;
        Network n2;
        buildDenseMlp(n2, 5);
        nn::Sgd o2(0.1f);
        EXPECT_DEATH(serve::restoreTrainingState(bad, n2, o2),
                     "bad magic");
    }
    {
        auto bad = blob;
        bad[4] = 99;   // version field
        Network n2;
        buildDenseMlp(n2, 5);
        nn::Sgd o2(0.1f);
        EXPECT_DEATH(serve::restoreTrainingState(bad, n2, o2),
                     "unsupported checkpoint version");
    }
    {
        auto bad = blob;
        bad.resize(bad.size() / 2);
        Network n2;
        buildDenseMlp(n2, 5);
        nn::Sgd o2(0.1f);
        EXPECT_DEATH(serve::restoreTrainingState(bad, n2, o2),
                     "truncated");
    }
    {
        // Different architecture: parameter names disagree.
        Network n2;
        buildBnNet(n2, 5);
        nn::Sgd o2(0.1f);
        EXPECT_DEATH(serve::restoreTrainingState(blob, n2, o2),
                     "mismatch");
    }
    {
        // Different optimizer kind for the same network.
        Network n2;
        buildDenseMlp(n2, 5);
        sparse::GradualMagnitudePruningOptimizer o2(quickPruning());
        EXPECT_DEATH(serve::restoreTrainingState(blob, n2, o2),
                     "checkpoint/optimizer mismatch");
    }
}

// ---------------------------------------------------------------------
// Satellite regression: Dataset::batch rank guard (fails pre-fix)
// ---------------------------------------------------------------------

TEST(DatasetDeath, BatchRejectsNonRank4Images)
{
    // A dataset whose images lost their [N, C, H, W] shape (e.g. a
    // caller handed over flattened features). Pre-fix batch() read
    // s[1]..s[3] of a rank-2 shape unchecked.
    Dataset ds = tinySpirals(4);
    const int64_t n = ds.images.shape()[0];
    Tensor flat(Shape{n, 2});
    float *dst = flat.data();
    const float *src = ds.images.data();
    for (int64_t i = 0; i < flat.numel(); ++i)
        dst[i] = src[i];
    ds.images = flat;
    EXPECT_DEATH(ds.batch({0, 1}), "rank-4");
}

} // namespace
} // namespace procrustes
