/**
 * @file
 * Finite-difference gradient checks for the CSB sparse executors.
 *
 * sparseConvBackwardData and sparseConvBackwardWeights must be the
 * exact adjoints of sparseConvForward under a random CSB mask: for the
 * scalar loss L = <forward(x, w), dy>, central differences of L match
 * the analytic dx and dW. Convolution is bilinear, so the central
 * difference of L along any single input or weight coordinate is
 * *linear* in the perturbation — a large step (0.25) makes the
 * truncation error exactly zero and leaves only float rounding, which
 * is what lets these checks run at 1e-3 tolerance in fp32.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sparse/csb.h"
#include "sparse/mask.h"
#include "sparse/sparse_conv.h"

namespace procrustes {
namespace sparse {
namespace {

/** Masked random filters at a given density. */
Tensor
maskedFilters(int64_t k, int64_t c, int64_t kernel, double density,
              uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{k, c, kernel, kernel});
    w.fillGaussian(rng, 0.5f);
    SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed + 1;
    const SparsityMask m = makeSyntheticMask(k, c, kernel, kernel, cfg);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w.at(i) = 0.0f;
    }
    return w;
}

/** L = <sparseConvForward(x, w), dy>, accumulated in double. */
double
sparseLoss(const Tensor &x, const Tensor &w, const Tensor &dy,
           int64_t stride, int64_t pad)
{
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const Tensor y = sparseConvForward(x, csb, stride, pad);
    const float *py = y.data();
    const float *pdy = dy.data();
    double loss = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i)
        loss += static_cast<double>(py[i]) * pdy[i];
    return loss;
}

struct GradCase
{
    int64_t stride;
    int64_t pad;
};

class SparseGradCheck : public ::testing::TestWithParam<GradCase>
{
};

TEST_P(SparseGradCheck, BackwardDataMatchesFiniteDifferences)
{
    const GradCase gc = GetParam();
    const Tensor w = maskedFilters(6, 3, 3, 0.4, 101);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);

    Xorshift128Plus rng(103);
    Tensor x(Shape{2, 3, 7, 8});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, gc.stride, gc.pad);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);

    const Tensor dx =
        sparseConvBackwardData(dy, csb, x.shape(), gc.stride, gc.pad);

    const float eps = 0.25f;
    const int64_t n = x.numel();
    const int64_t step = std::max<int64_t>(1, n / 24);
    for (int64_t i = 0; i < n; i += step) {
        const float orig = x.at(i);
        x.at(i) = orig + eps;
        const double lp = sparseLoss(x, w, dy, gc.stride, gc.pad);
        x.at(i) = orig - eps;
        const double lm = sparseLoss(x, w, dy, gc.stride, gc.pad);
        x.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dx.at(i), numeric,
                    1e-3 * std::max(1.0, std::fabs(numeric)))
            << "stride=" << gc.stride << " pad=" << gc.pad << " x[" << i
            << "]";
    }
}

TEST_P(SparseGradCheck, BackwardWeightsMatchesFiniteDifferences)
{
    const GradCase gc = GetParam();
    Tensor w = maskedFilters(5, 3, 3, 0.4, 107);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);

    Xorshift128Plus rng(109);
    Tensor x(Shape{2, 3, 7, 8});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, gc.stride, gc.pad);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);

    Tensor dw(w.shape());
    sparseConvBackwardWeights(x, dy, csb, gc.stride, gc.pad, &dw);

    // Pruned positions must receive exactly nothing.
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (w.at(i) == 0.0f)
            ASSERT_EQ(dw.at(i), 0.0f) << "pruned w[" << i << "]";
    }

    const float eps = 0.25f;
    int checked = 0;
    int64_t next = 0;
    const int64_t stride_i = std::max<int64_t>(1, w.numel() / 48);
    for (int64_t i = 0; i < w.numel() && checked < 24; ++i) {
        if (w.at(i) == 0.0f || i < next)
            continue;   // only live taps carry gradient
        next = i + stride_i;
        ++checked;
        const float orig = w.at(i);
        w.at(i) = orig + eps;
        const double lp = sparseLoss(x, w, dy, gc.stride, gc.pad);
        w.at(i) = orig - eps;
        const double lm = sparseLoss(x, w, dy, gc.stride, gc.pad);
        w.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dw.at(i), numeric,
                    1e-3 * std::max(1.0, std::fabs(numeric)))
            << "stride=" << gc.stride << " pad=" << gc.pad << " w[" << i
            << "]";
    }
    EXPECT_GT(checked, 0);
}

// Stride-1/stride-2 and pad-0/pad-1 corners, per the training shapes
// the conv layers actually run.
INSTANTIATE_TEST_SUITE_P(Geometries, SparseGradCheck,
                         ::testing::Values(GradCase{1, 1}, GradCase{1, 0},
                                           GradCase{2, 1},
                                           GradCase{2, 0}));

/** Zero out a deterministic fraction of a tensor (ReLU-like zeros). */
void
zeroSome(Tensor *t, uint64_t seed, double zero_fraction)
{
    Xorshift128Plus rng(seed);
    for (int64_t i = 0; i < t->numel(); ++i) {
        if (static_cast<double>(rng.next() % 1000) <
            zero_fraction * 1000.0)
            t->at(i) = 0.0f;
    }
}

/**
 * Brute-force executed-MAC counts honouring BOTH the weight mask and
 * activation zeros: the backward-data executor multiplies dy operands
 * (skips zeros), the backward-weight executor multiplies x operands
 * (skips zeros), and the forward executor skips weights only.
 */
SparseConvMacCounts
bruteForceMeasuredMacs(const Tensor &w, const Tensor &x, const Tensor &dy,
                       int64_t stride, int64_t pad)
{
    const Shape &ws = w.shape();
    const Shape &xs = x.shape();
    const int64_t n = xs[0];
    const int64_t k = ws[0], c = ws[1], r_ext = ws[2], s_ext = ws[3];
    const int64_t h = xs[2], width = xs[3];
    const int64_t p_ext = (h + 2 * pad - r_ext) / stride + 1;
    const int64_t q_ext = (width + 2 * pad - s_ext) / stride + 1;
    SparseConvMacCounts counts;
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ok = 0; ok < k; ++ok) {
            for (int64_t ic = 0; ic < c; ++ic) {
                for (int64_t r = 0; r < r_ext; ++r) {
                    for (int64_t s = 0; s < s_ext; ++s) {
                        if (w(ok, ic, r, s) == 0.0f)
                            continue;
                        for (int64_t p = 0; p < p_ext; ++p) {
                            const int64_t ih = p * stride + r - pad;
                            if (ih < 0 || ih >= h)
                                continue;
                            for (int64_t q = 0; q < q_ext; ++q) {
                                const int64_t iw =
                                    q * stride + s - pad;
                                if (iw < 0 || iw >= width)
                                    continue;
                                ++counts.forward;
                                if (dy(in, ok, p, q) != 0.0f)
                                    ++counts.backwardData;
                                if (x(in, ic, ih, iw) != 0.0f)
                                    ++counts.backwardWeight;
                            }
                        }
                    }
                }
            }
        }
    }
    return counts;
}

TEST_P(SparseGradCheck, ActivationSparseBackwardsStayExactAdjoints)
{
    // ReLU-zero activations and gradient zeros present: the skipping
    // executors must still be the exact adjoints of the forward.
    const GradCase gc = GetParam();
    const Tensor w = maskedFilters(6, 3, 3, 0.4, 211);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);

    Xorshift128Plus rng(223);
    Tensor x(Shape{2, 3, 7, 8});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 227, 0.5);
    const Tensor y = sparseConvForward(x, csb, gc.stride, gc.pad);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 229, 0.5);

    int64_t bw_data_macs = -1;
    const Tensor dx = sparseConvBackwardData(dy, csb, x.shape(),
                                             gc.stride, gc.pad,
                                             &bw_data_macs);
    Tensor dw(w.shape());
    int64_t bw_weight_macs = -1;
    sparseConvBackwardWeights(x, dy, csb, gc.stride, gc.pad, &dw,
                              &bw_weight_macs);

    // dx against central differences (bilinear => exact up to fp).
    const float eps = 0.25f;
    const int64_t n = x.numel();
    const int64_t step = std::max<int64_t>(1, n / 16);
    for (int64_t i = 0; i < n; i += step) {
        const float orig = x.at(i);
        x.at(i) = orig + eps;
        const double lp = sparseLoss(x, w, dy, gc.stride, gc.pad);
        x.at(i) = orig - eps;
        const double lm = sparseLoss(x, w, dy, gc.stride, gc.pad);
        x.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dx.at(i), numeric,
                    1e-3 * std::max(1.0, std::fabs(numeric)))
            << "x[" << i << "]";
    }

    // dW against central differences on live taps.
    Tensor wp = w;
    int checked = 0;
    const int64_t stride_i = std::max<int64_t>(1, w.numel() / 24);
    for (int64_t i = 0; i < w.numel() && checked < 12; i += stride_i) {
        if (wp.at(i) == 0.0f)
            continue;
        ++checked;
        const float orig = wp.at(i);
        wp.at(i) = orig + eps;
        const double lp = sparseLoss(x, wp, dy, gc.stride, gc.pad);
        wp.at(i) = orig - eps;
        const double lm = sparseLoss(x, wp, dy, gc.stride, gc.pad);
        wp.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dw.at(i), numeric,
                    1e-3 * std::max(1.0, std::fabs(numeric)))
            << "w[" << i << "]";
    }
    EXPECT_GT(checked, 0);

    // The executors' own MAC tallies and the counting function must
    // both match a brute force that honours mask + activation zeros.
    const SparseConvMacCounts expected =
        bruteForceMeasuredMacs(w, x, dy, gc.stride, gc.pad);
    const SparseConvMacCounts counted =
        sparseConvMacCounts(x, dy, csb, gc.stride, gc.pad);
    EXPECT_EQ(counted.forward, expected.forward);
    EXPECT_EQ(counted.backwardData, expected.backwardData);
    EXPECT_EQ(counted.backwardWeight, expected.backwardWeight);
    EXPECT_EQ(bw_data_macs, expected.backwardData);
    EXPECT_EQ(bw_weight_macs, expected.backwardWeight);

    // Zeros present => strictly fewer executed MACs than the
    // weight-only bound; the weight-only overload is that bound.
    const SparseConvMacCounts bound =
        sparseConvMacCounts(x, csb, gc.stride, gc.pad);
    EXPECT_EQ(counted.forward, bound.forward);
    EXPECT_LT(counted.backwardData, bound.backwardData);
    EXPECT_LT(counted.backwardWeight, bound.backwardWeight);
}

TEST(SparseGradCheck, SkippingExecutorsMatchDenseOperandResults)
{
    // Skipping a zero operand must not change the numbers at all:
    // compare against a run where the zeros are replaced by an
    // explicit dense traversal (the naive adjoint formulas).
    const Tensor w = maskedFilters(4, 3, 3, 0.5, 251);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    Xorshift128Plus rng(257);
    Tensor x(Shape{2, 3, 6, 6});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 263, 0.6);
    const Tensor y = sparseConvForward(x, csb, 1, 1);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 269, 0.6);

    const Tensor dx = sparseConvBackwardData(dy, csb, x.shape(), 1, 1);
    Tensor dw(w.shape());
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &dw);

    // Reference: dense loop nests over the same operands.
    Tensor dx_ref(x.shape());
    Tensor dw_ref(w.shape());
    const Shape &ws = w.shape();
    for (int64_t in = 0; in < 2; ++in) {
        for (int64_t ok = 0; ok < ws[0]; ++ok) {
            for (int64_t ic = 0; ic < ws[1]; ++ic) {
                for (int64_t r = 0; r < 3; ++r) {
                    for (int64_t s = 0; s < 3; ++s) {
                        const float wt = w(ok, ic, r, s);
                        if (wt == 0.0f)
                            continue;
                        for (int64_t p = 0; p < 6; ++p) {
                            const int64_t ih = p + r - 1;
                            if (ih < 0 || ih >= 6)
                                continue;
                            for (int64_t q = 0; q < 6; ++q) {
                                const int64_t iw = q + s - 1;
                                if (iw < 0 || iw >= 6)
                                    continue;
                                const float g = dy(in, ok, p, q);
                                dx_ref(in, ic, ih, iw) += wt * g;
                                dw_ref(ok, ic, r, s) +=
                                    g * x(in, ic, ih, iw);
                            }
                        }
                    }
                }
            }
        }
    }
    for (int64_t i = 0; i < dx.numel(); ++i)
        ASSERT_NEAR(dx.at(i), dx_ref.at(i),
                    1e-4f * (1.0f + std::fabs(dx_ref.at(i))))
            << "dx[" << i << "]";
    for (int64_t i = 0; i < dw.numel(); ++i)
        ASSERT_NEAR(dw.at(i), dw_ref.at(i),
                    1e-4f * (1.0f + std::fabs(dw_ref.at(i))))
            << "dw[" << i << "]";
}

TEST(SparseGradCheck, BackwardWeightsAccumulatesAcrossCalls)
{
    // Param::grad semantics: += into the given tensor, never overwrite.
    const Tensor w = maskedFilters(3, 2, 3, 0.5, 113);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    Xorshift128Plus rng(127);
    Tensor x(Shape{1, 2, 6, 6});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, 1, 1);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);

    Tensor once(w.shape());
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &once);
    Tensor twice(w.shape());
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &twice);
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &twice);
    for (int64_t i = 0; i < once.numel(); ++i)
        ASSERT_NEAR(twice.at(i), 2.0f * once.at(i),
                    1e-4f * (1.0f + std::fabs(once.at(i))))
            << i;
}

} // namespace
} // namespace sparse
} // namespace procrustes
