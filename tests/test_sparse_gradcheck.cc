/**
 * @file
 * Finite-difference gradient checks for the CSB sparse executors.
 *
 * sparseConvBackwardData and sparseConvBackwardWeights must be the
 * exact adjoints of sparseConvForward under a random CSB mask: for the
 * scalar loss L = <forward(x, w), dy>, central differences of L match
 * the analytic dx and dW. Convolution is bilinear, so the central
 * difference of L along any single input or weight coordinate is
 * *linear* in the perturbation — a large step (0.25) makes the
 * truncation error exactly zero and leaves only float rounding, which
 * is what lets these checks run at 1e-3 tolerance in fp32.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sparse/csb.h"
#include "sparse/mask.h"
#include "sparse/sparse_conv.h"

namespace procrustes {
namespace sparse {
namespace {

/** Masked random filters at a given density. */
Tensor
maskedFilters(int64_t k, int64_t c, int64_t kernel, double density,
              uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{k, c, kernel, kernel});
    w.fillGaussian(rng, 0.5f);
    SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed + 1;
    const SparsityMask m = makeSyntheticMask(k, c, kernel, kernel, cfg);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w.at(i) = 0.0f;
    }
    return w;
}

/** L = <sparseConvForward(x, w), dy>, accumulated in double. */
double
sparseLoss(const Tensor &x, const Tensor &w, const Tensor &dy,
           int64_t stride, int64_t pad)
{
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const Tensor y = sparseConvForward(x, csb, stride, pad);
    const float *py = y.data();
    const float *pdy = dy.data();
    double loss = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i)
        loss += static_cast<double>(py[i]) * pdy[i];
    return loss;
}

struct GradCase
{
    int64_t stride;
    int64_t pad;
};

class SparseGradCheck : public ::testing::TestWithParam<GradCase>
{
};

TEST_P(SparseGradCheck, BackwardDataMatchesFiniteDifferences)
{
    const GradCase gc = GetParam();
    const Tensor w = maskedFilters(6, 3, 3, 0.4, 101);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);

    Xorshift128Plus rng(103);
    Tensor x(Shape{2, 3, 7, 8});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, gc.stride, gc.pad);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);

    const Tensor dx =
        sparseConvBackwardData(dy, csb, x.shape(), gc.stride, gc.pad);

    const float eps = 0.25f;
    const int64_t n = x.numel();
    const int64_t step = std::max<int64_t>(1, n / 24);
    for (int64_t i = 0; i < n; i += step) {
        const float orig = x.at(i);
        x.at(i) = orig + eps;
        const double lp = sparseLoss(x, w, dy, gc.stride, gc.pad);
        x.at(i) = orig - eps;
        const double lm = sparseLoss(x, w, dy, gc.stride, gc.pad);
        x.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dx.at(i), numeric,
                    1e-3 * std::max(1.0, std::fabs(numeric)))
            << "stride=" << gc.stride << " pad=" << gc.pad << " x[" << i
            << "]";
    }
}

TEST_P(SparseGradCheck, BackwardWeightsMatchesFiniteDifferences)
{
    const GradCase gc = GetParam();
    Tensor w = maskedFilters(5, 3, 3, 0.4, 107);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);

    Xorshift128Plus rng(109);
    Tensor x(Shape{2, 3, 7, 8});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, gc.stride, gc.pad);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);

    Tensor dw(w.shape());
    sparseConvBackwardWeights(x, dy, csb, gc.stride, gc.pad, &dw);

    // Pruned positions must receive exactly nothing.
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (w.at(i) == 0.0f)
            ASSERT_EQ(dw.at(i), 0.0f) << "pruned w[" << i << "]";
    }

    const float eps = 0.25f;
    int checked = 0;
    int64_t next = 0;
    const int64_t stride_i = std::max<int64_t>(1, w.numel() / 48);
    for (int64_t i = 0; i < w.numel() && checked < 24; ++i) {
        if (w.at(i) == 0.0f || i < next)
            continue;   // only live taps carry gradient
        next = i + stride_i;
        ++checked;
        const float orig = w.at(i);
        w.at(i) = orig + eps;
        const double lp = sparseLoss(x, w, dy, gc.stride, gc.pad);
        w.at(i) = orig - eps;
        const double lm = sparseLoss(x, w, dy, gc.stride, gc.pad);
        w.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dw.at(i), numeric,
                    1e-3 * std::max(1.0, std::fabs(numeric)))
            << "stride=" << gc.stride << " pad=" << gc.pad << " w[" << i
            << "]";
    }
    EXPECT_GT(checked, 0);
}

// Stride-1/stride-2 and pad-0/pad-1 corners, per the training shapes
// the conv layers actually run.
INSTANTIATE_TEST_SUITE_P(Geometries, SparseGradCheck,
                         ::testing::Values(GradCase{1, 1}, GradCase{1, 0},
                                           GradCase{2, 1},
                                           GradCase{2, 0}));

TEST(SparseGradCheck, BackwardWeightsAccumulatesAcrossCalls)
{
    // Param::grad semantics: += into the given tensor, never overwrite.
    const Tensor w = maskedFilters(3, 2, 3, 0.5, 113);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    Xorshift128Plus rng(127);
    Tensor x(Shape{1, 2, 6, 6});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, 1, 1);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);

    Tensor once(w.shape());
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &once);
    Tensor twice(w.shape());
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &twice);
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &twice);
    for (int64_t i = 0; i < once.numel(); ++i)
        ASSERT_NEAR(twice.at(i), 2.0f * once.at(i),
                    1e-4f * (1.0f + std::fabs(once.at(i))))
            << i;
}

} // namespace
} // namespace sparse
} // namespace procrustes
