/**
 * @file
 * Unit tests for the common substrate: logging, PRNGs, math helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/rng.h"

namespace procrustes {
namespace {

TEST(MathUtils, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 16), 0);
    EXPECT_EQ(ceilDiv(1, 16), 1);
    EXPECT_EQ(ceilDiv(16, 16), 1);
    EXPECT_EQ(ceilDiv(17, 16), 2);
    EXPECT_EQ(ceilDiv(256, 16), 16);
}

TEST(MathUtils, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0);
    EXPECT_EQ(roundUp(1, 8), 8);
    EXPECT_EQ(roundUp(8, 8), 8);
    EXPECT_EQ(roundUp(9, 8), 16);
}

TEST(MathUtils, MeanAndStddev)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(MathUtils, ExactQuantile)
{
    std::vector<double> xs;
    for (int i = 0; i < 101; ++i)
        xs.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(exactQuantile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(exactQuantile(xs, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(exactQuantile(xs, 0.5), 50.0);
    EXPECT_DOUBLE_EQ(exactQuantile(xs, 0.9), 90.0);
}

TEST(Logging, AssertFiresOnViolation)
{
    EXPECT_DEATH(PROCRUSTES_ASSERT(false, "boom"), "assertion failed");
}

TEST(Logging, AssertPassesOnTrue)
{
    PROCRUSTES_ASSERT(true, "never");
    SUCCEED();
}

TEST(Xorshift32, MatchesReferenceRecurrence)
{
    // One step of Marsaglia's 13/17/5 recurrence computed by hand.
    uint32_t x = 2463534242u;
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    Xorshift32 gen(2463534242u);
    EXPECT_EQ(gen.next(), x);
}

TEST(Xorshift32, ZeroSeedRemapped)
{
    Xorshift32 gen(0);
    EXPECT_NE(gen.state(), 0u);
    EXPECT_NE(gen.next(), 0u);
}

TEST(Xorshift128Plus, Deterministic)
{
    Xorshift128Plus a(123);
    Xorshift128Plus b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift128Plus, DifferentSeedsDiverge)
{
    Xorshift128Plus a(1);
    Xorshift128Plus b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Xorshift128Plus, DoubleInUnitInterval)
{
    Xorshift128Plus gen(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = gen.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Xorshift128Plus, BoundedWithinRange)
{
    Xorshift128Plus gen(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = gen.nextBounded(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);   // all residues hit
}

TEST(Xorshift128Plus, GaussianMoments)
{
    Xorshift128Plus gen(11);
    const int n = 200000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = gen.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Splitmix64, AvalanchesAndIsDeterministic)
{
    EXPECT_EQ(splitmix64(42), splitmix64(42));
    EXPECT_NE(splitmix64(42), splitmix64(43));
    // Nearby inputs should differ in roughly half the bits.
    const uint64_t d = splitmix64(100) ^ splitmix64(101);
    const int popcnt = __builtin_popcountll(d);
    EXPECT_GT(popcnt, 16);
    EXPECT_LT(popcnt, 48);
}

TEST(StatelessUniform, PureFunctionOfInputs)
{
    EXPECT_EQ(statelessUniform32(1, 2, 0), statelessUniform32(1, 2, 0));
    EXPECT_NE(statelessUniform32(1, 2, 0), statelessUniform32(1, 3, 0));
    EXPECT_NE(statelessUniform32(1, 2, 0), statelessUniform32(1, 2, 1));
    EXPECT_NE(statelessUniform32(1, 2, 0), statelessUniform32(2, 2, 0));
}

TEST(StatelessGaussianSum3, BoundedSupport)
{
    // Sum of three centred int32 uniforms lies in (-3*2^31, 3*2^31).
    const int64_t bound = int64_t{3} << 31;
    for (uint64_t i = 0; i < 10000; ++i) {
        const int64_t s = statelessGaussianSum3(99, i);
        EXPECT_GT(s, -bound);
        EXPECT_LT(s, bound);
    }
}

} // namespace
} // namespace procrustes
