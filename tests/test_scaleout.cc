/**
 * @file
 * Data-parallel shard engine: mask-live gradient exchange units,
 * trainer-equivalence, and the shard-sweep x thread-sweep bitwise
 * determinism guarantee. Also holds the regression tests for the
 * trainer/optimizer bugs the engine made load-bearing: the dropped
 * ragged tail batch, momentum re-animating pruned weights, and the
 * silently mis-sized velocity buffer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "arch/accelerator.h"
#include "arch/workload_trace.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/activations.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/sgd.h"
#include "nn/trainer.h"
#include "scaleout/shard_engine.h"
#include "sparse/grad_exchange.h"
#include "sparse/gradual_pruning.h"

namespace procrustes {
namespace {

using nn::Dataset;
using nn::Network;
using scaleout::ShardTrainConfig;
using scaleout::ShardTrainResult;

/** Restore the default global pool when a sweep test exits. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard() { ThreadPool::resetGlobal(0); }
};

// ---------------------------------------------------------------------
// Mask-live gather / scatter / fold units
// ---------------------------------------------------------------------

TEST(GradExchange, GatherScatterRaggedGeometry)
{
    // Ragged versus the 8x8 CSB block grid: 5x7 fc-shaped and
    // 3x2x3x3 conv-shaped tensors.
    for (const Shape &shape :
         {Shape{5, 7}, Shape{3, 2, 3, 3}, Shape{13}}) {
        Tensor value(shape);
        float *v = value.data();
        const int64_t n = value.numel();
        // Zero a scattered third of the positions.
        for (int64_t i = 0; i < n; ++i)
            v[i] = (i % 3 == 1) ? 0.0f : 0.5f + static_cast<float>(i);

        const auto live = sparse::liveMaskFromValues(value);
        const int64_t nnz = sparse::liveCount(live);
        ASSERT_EQ(live.size(), static_cast<size_t>(n));
        int64_t expect_nnz = 0;
        for (int64_t i = 0; i < n; ++i)
            expect_nnz += (i % 3 == 1) ? 0 : 1;
        EXPECT_EQ(nnz, expect_nnz);

        // A gradient with distinct values everywhere (including at
        // dead positions, which must not survive the round trip).
        std::vector<float> grad(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i)
            grad[static_cast<size_t>(i)] =
                1.0f + 0.25f * static_cast<float>(i);

        std::vector<float> packed(static_cast<size_t>(nnz), -1.0f);
        EXPECT_EQ(sparse::gatherLive(grad.data(), live, packed.data()),
                  nnz);

        std::vector<float> back(static_cast<size_t>(n), -7.0f);
        sparse::scatterLive(packed.data(), live, back.data());
        for (int64_t i = 0; i < n; ++i) {
            if (live[static_cast<size_t>(i)])
                EXPECT_EQ(back[static_cast<size_t>(i)],
                          grad[static_cast<size_t>(i)]);
            else
                EXPECT_EQ(back[static_cast<size_t>(i)], 0.0f);
        }
    }
}

TEST(GradExchange, AllreduceFoldIsSequentialInSliceOrder)
{
    const std::vector<std::vector<float>> partials = {
        {1.0f, 2.0f}, {10.0f, 20.0f}, {100.0f, 200.0f}};
    const std::vector<float> weights = {0.5f, 0.25f, 0.25f};
    const auto reduced =
        sparse::sparseAllreduceGrads(partials, weights);
    ASSERT_EQ(reduced.size(), 2u);
    // Exact left fold: ((0 + 0.5*1) + 0.25*10) + 0.25*100 — all
    // representable, so equality is exact.
    EXPECT_EQ(reduced[0], 28.0f);
    EXPECT_EQ(reduced[1], 56.0f);
}

TEST(GradExchange, SingleSliceUnitWeightIsBitwiseIdentity)
{
    // 0 + 1*x == x for every float, including denormals and huge
    // values: the property that makes a one-shard, one-slice engine
    // step bitwise equal to the plain trainer.
    std::vector<float> x = {1e-40f, -3.25f, 7e30f, 0.1f};
    const auto reduced = sparse::sparseAllreduceGrads({x}, {1.0f});
    ASSERT_EQ(reduced.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(reduced[i], x[i]);
}

TEST(GradExchange, AllreduceVolumeAccounting)
{
    // 3 gather + 1 broadcast messages, 10 live of 40 positions.
    const auto v = sparse::allreduceVolume(10, 40, 3, 1);
    EXPECT_EQ(v.messages, 4);
    EXPECT_EQ(v.compressedBytes, 4 * 10 * 4);
    EXPECT_EQ(v.denseBytes, 4 * 40 * 4);

    // Single shard: nothing crosses the wire.
    const auto none = sparse::allreduceVolume(10, 40, 0, 0);
    EXPECT_EQ(none.messages, 0);
    EXPECT_EQ(none.compressedBytes, 0);
    EXPECT_EQ(none.denseBytes, 0);

    // Fully dense mask: compressed equals dense, never more.
    const auto dense = sparse::allreduceVolume(40, 40, 2, 1);
    EXPECT_EQ(dense.compressedBytes, dense.denseBytes);
}

// ---------------------------------------------------------------------
// Engine fixtures
// ---------------------------------------------------------------------

void
buildShardMlp(Network &net, uint64_t seed)
{
    net.add<nn::Flatten>("fl");
    net.add<nn::Linear>(2, 24, "fc1");
    net.add<nn::ReLU>("r1");
    net.add<nn::Linear>(24, 24, "fc2");
    net.add<nn::ReLU>("r2");
    net.add<nn::Linear>(24, 3, "fc3");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
    // CSB backend: dW honours the live mask, the property the
    // mask-live exchange assumes.
    for (size_t i = 0; i < net.size(); ++i) {
        if (auto *fc = dynamic_cast<nn::Linear *>(net.layer(i)))
            fc->setBackend(kernels::KernelBackend::kSparse);
    }
}

std::pair<Dataset, Dataset>
shardSpirals()
{
    nn::SpiralConfig cfg;
    cfg.samplesPerClass = 20;   // 60 samples: batch 16 leaves a
    cfg.seed = 5;               // ragged 12-sample tail
    const Dataset train = nn::makeSpirals(cfg);
    cfg.seed = 55;
    const Dataset val = nn::makeSpirals(cfg);
    return {train, val};
}

sparse::GradualPruningConfig
shardPruning()
{
    sparse::GradualPruningConfig pc;
    pc.targetSparsity = 4.0;
    pc.lr = 0.08f;
    pc.warmupIterations = 4;
    pc.pruneInterval = 3;
    pc.pruneFraction = 0.25;
    return pc;
}

ShardTrainResult
runSharded(int shards, int64_t epochs = 3)
{
    const auto splits = shardSpirals();
    ShardTrainConfig cfg;
    cfg.shards = shards;
    cfg.epochs = epochs;
    cfg.batchSize = 16;
    cfg.sliceSamples = 4;
    return scaleout::trainSharded(
        [](Network &net) { buildShardMlp(net, 11); },
        [] {
            return std::make_unique<
                sparse::GradualMagnitudePruningOptimizer>(
                shardPruning());
        },
        splits.first, splits.second, cfg);
}

// ---------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------

TEST(Scaleout, SingleShardOneSlicePerBatchMatchesPlainTrainer)
{
    const auto splits = shardSpirals();

    // Plain trainer.
    Network ref;
    buildShardMlp(ref, 11);
    sparse::GradualMagnitudePruningOptimizer ref_opt(shardPruning());
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batchSize = 16;
    const auto ref_hist = nn::trainNetwork(ref, ref_opt, splits.first,
                                           splits.second, tc);

    // Engine with one shard and one slice per global batch: the fold
    // degenerates to the identity, so everything is bitwise equal.
    ShardTrainConfig cfg;
    cfg.shards = 1;
    cfg.epochs = 3;
    cfg.batchSize = 16;
    cfg.sliceSamples = 16;
    const auto sharded = scaleout::trainSharded(
        [](Network &net) { buildShardMlp(net, 11); },
        [] {
            return std::make_unique<
                sparse::GradualMagnitudePruningOptimizer>(
                shardPruning());
        },
        splits.first, splits.second, cfg);

    const auto ref_params = ref.params();
    ASSERT_EQ(sharded.finalWeights.size(), ref_params.size());
    for (size_t pi = 0; pi < ref_params.size(); ++pi) {
        const Tensor &a = ref_params[pi]->value;
        const Tensor &b = sharded.finalWeights[pi];
        ASSERT_EQ(a.numel(), b.numel());
        const float *av = a.data();
        const float *bv = b.data();
        for (int64_t i = 0; i < a.numel(); ++i)
            ASSERT_EQ(av[i], bv[i]) << "param " << pi << " elem " << i;
    }
    ASSERT_EQ(sharded.history.size(), ref_hist.size());
    for (size_t e = 0; e < ref_hist.size(); ++e) {
        EXPECT_EQ(sharded.history[e].stats.trainLoss,
                  ref_hist[e].trainLoss);
        EXPECT_EQ(sharded.history[e].stats.valAccuracy,
                  ref_hist[e].valAccuracy);
        EXPECT_EQ(sharded.history[e].stats.weightSparsity,
                  ref_hist[e].weightSparsity);
        // One shard: nothing crosses the wire.
        EXPECT_EQ(sharded.history[e].exchange.compressedBytes, 0);
        EXPECT_EQ(sharded.history[e].exchange.messages, 0);
    }
}

TEST(Scaleout, ShardSweepBitwiseDeterminismAcrossThreadCounts)
{
    GlobalPoolGuard guard;

    // Reference: one shard, one thread.
    ThreadPool::resetGlobal(1);
    const ShardTrainResult ref = runSharded(1);

    for (int threads : {1, 2, 3, 8}) {
        ThreadPool::resetGlobal(threads);
        for (int shards : {1, 2, 4}) {
            const ShardTrainResult r = runSharded(shards);

            // Final weights (and therefore masks) bitwise identical.
            ASSERT_EQ(r.finalWeights.size(), ref.finalWeights.size());
            for (size_t pi = 0; pi < ref.finalWeights.size(); ++pi) {
                const float *av = ref.finalWeights[pi].data();
                const float *bv = r.finalWeights[pi].data();
                const int64_t n = ref.finalWeights[pi].numel();
                ASSERT_EQ(n, r.finalWeights[pi].numel());
                for (int64_t i = 0; i < n; ++i)
                    ASSERT_EQ(av[i], bv[i])
                        << "shards=" << shards
                        << " threads=" << threads << " param=" << pi
                        << " elem=" << i;
            }

            // Whole training trajectory identical too.
            ASSERT_EQ(r.history.size(), ref.history.size());
            for (size_t e = 0; e < ref.history.size(); ++e) {
                EXPECT_EQ(r.history[e].stats.trainLoss,
                          ref.history[e].stats.trainLoss);
                EXPECT_EQ(r.history[e].stats.valAccuracy,
                          ref.history[e].stats.valAccuracy);
                EXPECT_EQ(r.history[e].stats.weightSparsity,
                          ref.history[e].stats.weightSparsity);

                const auto &ex = r.history[e].exchange;
                if (shards == 1) {
                    EXPECT_EQ(ex.compressedBytes, 0);
                    EXPECT_EQ(ex.denseBytes, 0);
                } else {
                    EXPECT_GT(ex.messages, 0);
                    EXPECT_LE(ex.compressedBytes, ex.denseBytes);
                    // Exchange masks are sampled before each step, so
                    // an epoch that *starts* sparse (the previous one
                    // ended with pruned weights) must exchange
                    // strictly fewer bytes than dense.
                    if (e > 0 &&
                        r.history[e - 1].stats.weightSparsity > 0.0)
                        EXPECT_LT(ex.compressedBytes, ex.denseBytes);
                }
            }
            // Pruning really happened (the strict-inequality check
            // above is not vacuous).
            EXPECT_GT(r.history.back().stats.weightSparsity, 0.1);
        }
    }

    // Exchange byte counts are a deterministic function of the run:
    // same shard count, different thread count => identical bytes.
    ThreadPool::resetGlobal(2);
    const ShardTrainResult two_a = runSharded(2);
    ThreadPool::resetGlobal(3);
    const ShardTrainResult two_b = runSharded(2);
    ASSERT_EQ(two_a.history.size(), two_b.history.size());
    for (size_t e = 0; e < two_a.history.size(); ++e) {
        EXPECT_EQ(two_a.history[e].exchange.compressedBytes,
                  two_b.history[e].exchange.compressedBytes);
        EXPECT_EQ(two_a.history[e].exchange.denseBytes,
                  two_b.history[e].exchange.denseBytes);
        EXPECT_EQ(two_a.history[e].exchange.messages,
                  two_b.history[e].exchange.messages);
    }
}

TEST(Scaleout, ExchangeBytesFlowThroughTraceAndCostModel)
{
    const auto splits = shardSpirals();
    ShardTrainConfig cfg;
    cfg.shards = 2;
    cfg.epochs = 2;
    cfg.batchSize = 16;
    cfg.sliceSamples = 4;

    arch::WorkloadTrace trace;
    const auto r = scaleout::trainSharded(
        [](Network &net) { buildShardMlp(net, 11); },
        [] {
            return std::make_unique<
                sparse::GradualMagnitudePruningOptimizer>(
                shardPruning());
        },
        splits.first, splits.second, cfg, trace.observer());

    ASSERT_EQ(trace.epochCount(), 2u);
    for (size_t e = 0; e < trace.epochCount(); ++e) {
        const arch::EpochTrace &et = trace.epoch(e);
        // The trace's per-layer accumulation must reproduce the
        // engine's own epoch totals exactly (every traced layer owns
        // all exchanged params in this MLP).
        EXPECT_EQ(et.totalExchangeCompressedBytes(),
                  r.history[e].exchange.compressedBytes);
        EXPECT_EQ(et.totalExchangeDenseBytes(),
                  r.history[e].exchange.denseBytes);
        EXPECT_GT(et.totalExchangeCompressedBytes(), 0);
    }

    // Cost model: the interconnect term prices the measured bytes in
    // the weight-update phase at the configured word rate.
    arch::CostOptions opts;
    opts.sparse = true;
    opts.balance = arch::BalanceMode::HalfTile;
    opts.interconnectWordsPerCycle = 2.0;
    const arch::Accelerator acc(arch::ArrayConfig::baseline16(), opts,
                                arch::MappingKind::KN);
    const auto cost = acc.evaluateTrace(trace, 1);
    const arch::EpochTrace &et = trace.epoch(1);
    double expect_cycles = 0.0;
    for (const arch::LayerTrace &l : et.layers) {
        const double per_step =
            static_cast<double>(l.exchangeCompressedBytes) /
            static_cast<double>(l.steps);
        expect_cycles += (per_step / 4.0) / 2.0;
    }
    EXPECT_NEAR(cost.wu.interconnectCycles, expect_cycles,
                1e-9 * expect_cycles);
    EXPECT_GT(cost.wu.interconnectCycles, 0.0);
    EXPECT_EQ(cost.fw.interconnectCycles, 0.0);
    EXPECT_EQ(cost.bw.interconnectCycles, 0.0);
    // The phase latency respects the interconnect bound.
    EXPECT_GE(cost.wu.cycles + 1e-9,
              cost.wu.interconnectCycles);

    // Term off (default): no interconnect cycles anywhere.
    const auto plain =
        arch::Accelerator::procrustes().evaluateTrace(trace, 1);
    EXPECT_EQ(plain.wu.interconnectCycles, 0.0);
}

// ---------------------------------------------------------------------
// Trainer / optimizer regressions (fail before the PR's fixes)
// ---------------------------------------------------------------------

TEST(Training, RaggedTailBatchIsTrainedAndWeighted)
{
    nn::SpiralConfig dc;
    dc.samplesPerClass = 4;   // 12 samples: batch 8 -> steps of 8, 4
    const Dataset ds = nn::makeSpirals(dc);

    Network net;
    buildShardMlp(net, 3);
    nn::Sgd opt(0.05f);
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batchSize = 8;

    std::vector<int64_t> step_sizes;
    std::vector<double> step_losses;
    const auto hist = nn::trainNetwork(
        net, opt, ds, ds, tc, [&](const nn::StepTelemetry &t) {
            step_sizes.push_back(t.batchSize);
            step_losses.push_back(t.batchLoss);
        });

    // Pre-fix the loop dropped the 4-sample tail entirely (one step
    // per epoch, 8 of 12 samples trained).
    ASSERT_EQ(step_sizes.size(), 2u);
    EXPECT_EQ(step_sizes[0], 8);
    EXPECT_EQ(step_sizes[1], 4);
    EXPECT_EQ(opt.iteration(), 2);

    // Epoch loss is the sample-weighted mean, not the batch mean.
    const double expect =
        (step_losses[0] * 8.0 + step_losses[1] * 4.0) / 12.0;
    EXPECT_DOUBLE_EQ(hist[0].trainLoss, expect);
}

TEST(Sgd, MomentumDoesNotReanimatePrunedWeights)
{
    nn::Param p;
    p.init(Shape{4}, "w", /*can_prune=*/true);
    float *v = p.value.data();
    float *g = p.grad.data();
    const float init[4] = {1.0f, -2.0f, 3.0f, 0.5f};
    for (int i = 0; i < 4; ++i)
        v[i] = init[i];

    nn::Sgd opt(0.1f, 0.9f);
    std::vector<nn::Param *> params = {&p};

    // A step with live gradients builds non-zero velocity everywhere.
    for (int i = 0; i < 4; ++i)
        g[i] = 0.5f;
    opt.step(params);

    // Prune position 2: exact zero value, masked (zero) gradient from
    // here on — the CSB invariant.
    v[2] = 0.0f;
    for (int i = 0; i < 4; ++i)
        g[i] = (i == 2) ? 0.0f : 0.25f;
    opt.step(params);

    // Pre-fix the stale velocity moved the pruned weight off zero.
    EXPECT_EQ(v[2], 0.0f);
    // Live positions still take momentum updates.
    EXPECT_NE(v[0], init[0]);
    EXPECT_NE(v[3], init[3]);

    // And the pruned position stays dead on later steps too.
    for (int i = 0; i < 4; ++i)
        g[i] = (i == 2) ? 0.0f : 0.25f;
    opt.step(params);
    EXPECT_EQ(v[2], 0.0f);
}

TEST(Sgd, NonPrunableZeroParamsStillUpdate)
{
    // A zero-initialized bias with a live gradient must not be
    // mistaken for a pruned weight.
    nn::Param b;
    b.init(Shape{2}, "bias", /*can_prune=*/false);
    b.grad.data()[0] = 1.0f;
    b.grad.data()[1] = 1.0f;
    nn::Sgd opt(0.1f, 0.9f);
    std::vector<nn::Param *> params = {&b};
    opt.step(params);
    EXPECT_NE(b.value.data()[0], 0.0f);
}

TEST(Sgd, VelocityBufferSizeIsAssertedEveryStep)
{
    nn::Param a, b;
    a.init(Shape{3}, "a", true);
    b.init(Shape{3}, "b", true);
    nn::Sgd opt(0.1f, 0.9f);
    std::vector<nn::Param *> both = {&a, &b};
    opt.step(both);
    std::vector<nn::Param *> fewer = {&a};
    EXPECT_DEATH(opt.step(fewer), "parameter set changed");
}

} // namespace
} // namespace procrustes
