/**
 * @file
 * Tests for the cycle-level PE-array simulator, including agreement
 * with the analytic cost model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/accelerator.h"
#include "arch/cost_model.h"
#include "arch/workload_trace.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sim/cycle_sim.h"
#include "sparse/gradual_pruning.h"
#include "sparse/mask.h"

namespace procrustes {
namespace sim {
namespace {

using arch::ArrayConfig;
using arch::BalanceMode;
using arch::LayerShape;
using arch::LayerSparsityProfile;
using arch::MappingKind;
using arch::Phase;

WaveSpec
uniformWave(int rows, int cols, int64_t macs, int64_t words_a,
            int64_t words_b)
{
    WaveSpec w;
    w.rows = rows;
    w.cols = cols;
    w.channelA = Channel::RowBus;
    w.channelB = Channel::ColBus;
    w.channelOut = Channel::UnicastNet;
    TileDemand d;
    d.macs = macs;
    d.wordsA = words_a;
    d.wordsB = words_b;
    d.psumWords = 1;
    w.tiles.assign(static_cast<size_t>(rows) * cols, d);
    return w;
}

TEST(CycleSim, ComputeBoundWaveRunsAtOneMacPerCycle)
{
    // Few operand words, heavy reuse: compute-bound.
    const WaveSpec w = uniformWave(4, 4, 1000, 10, 10);
    const SimResult r = simulateWave(w, SimConfig{});
    EXPECT_EQ(r.macsRetired, 16 * 1000);
    // All PEs retire one MAC per cycle once words flow; slack only in
    // the first cycles.
    EXPECT_NEAR(static_cast<double>(r.computeCycles), 1000.0, 15.0);
}

TEST(CycleSim, BandwidthStarvedWaveStalls)
{
    // Every MAC needs a fresh unicast word; aggregate unicast
    // bandwidth of 16 words/cycle feeds 16 PEs at 1/PE — but 64 PEs
    // need 4x that, so the wave runs ~4x longer.
    WaveSpec w = uniformWave(8, 8, 100, 1, 100);
    w.channelB = Channel::UnicastNet;
    SimConfig cfg;
    cfg.unicastWordsPerCycle = 16;
    const SimResult r = simulateWave(w, cfg);
    EXPECT_GT(r.computeCycles, 350);
    EXPECT_GT(r.stallCycles, 0);
}

TEST(CycleSim, SkewedWaveMatchesMaxTileWork)
{
    WaveSpec w = uniformWave(2, 2, 100, 5, 5);
    w.tiles[0].macs = 1000;   // one heavy PE
    const SimResult r = simulateWave(w, SimConfig{});
    EXPECT_NEAR(static_cast<double>(r.computeCycles), 1000.0, 20.0);
}

TEST(CycleSim, BroadcastChannelFeedsAllPes)
{
    WaveSpec w = uniformWave(4, 4, 64, 64, 1);
    w.channelA = Channel::Broadcast;
    const SimResult r = simulateWave(w, SimConfig{});
    // One word per cycle broadcast, each word enables 1 MAC: the wave
    // takes ~64 cycles with all PEs in lockstep.
    EXPECT_NEAR(static_cast<double>(r.computeCycles), 64.0, 5.0);
}

TEST(CycleSim, DrainAddedAfterCompute)
{
    WaveSpec w = uniformWave(2, 2, 10, 1, 1);
    for (auto &t : w.tiles)
        t.psumWords = 50;
    w.channelOut = Channel::UnicastNet;
    SimConfig cfg;
    cfg.unicastWordsPerCycle = 4;
    const SimResult r = simulateWave(w, cfg);
    EXPECT_EQ(r.cycles - r.computeCycles, (4 * 50) / 4);
}

TEST(CycleSimDeathTest, RejectsNonPositiveUnicastBandwidth)
{
    const WaveSpec w = uniformWave(1, 1, 1, 1, 1);
    SimConfig bad;
    bad.unicastWordsPerCycle = 0;
    EXPECT_DEATH(simulateWave(w, bad), "unicastWordsPerCycle");
}

TEST(CycleSimDeathTest, RejectsNonPositiveGlbBanks)
{
    const WaveSpec w = uniformWave(1, 1, 1, 1, 1);
    SimConfig bad;
    bad.glbBanks = -4;
    EXPECT_DEATH(simulateWave(w, bad), "glbBanks must be positive");
}

TEST(CycleSimDeathTest, RejectsNonPositiveGlbBankPorts)
{
    const WaveSpec w = uniformWave(1, 1, 1, 1, 1);
    SimConfig bad;
    bad.glbBankPortsPerCycle = 0;
    EXPECT_DEATH(simulateWave(w, bad), "glbBankPortsPerCycle");
}

TEST(CycleSimDeathTest, RejectsNonPositiveMaxCycles)
{
    const WaveSpec w = uniformWave(1, 1, 1, 1, 1);
    SimConfig bad;
    bad.maxCycles = 0;
    EXPECT_DEATH(simulateWave(w, bad), "maxCycles");
}

TEST(CycleSim, UnboundedFifoAndRefillOffAreValidConfigs)
{
    // peFifoDepth <= 0 (unbounded queues) and dramWordsPerCycle <= 0
    // (refill front end off) are meaningful settings, not errors.
    const WaveSpec w = uniformWave(1, 1, 1, 1, 1);
    SimConfig cfg;
    cfg.peFifoDepth = 0;
    cfg.dramWordsPerCycle = 0.0;
    const SimResult r = simulateWave(w, cfg);
    EXPECT_EQ(r.macsRetired, 1);
}

TEST(CycleSim, ChannelMapping)
{
    EXPECT_EQ(channelFor(arch::FlowClass::MulticastRows),
              Channel::RowBus);
    EXPECT_EQ(channelFor(arch::FlowClass::ReduceCols), Channel::ColBus);
    EXPECT_EQ(channelFor(arch::FlowClass::Broadcast),
              Channel::Broadcast);
    EXPECT_EQ(channelFor(arch::FlowClass::Unicast), Channel::UnicastNet);
}

/**
 * Cross-validation: cycle-level simulation of small layers must agree
 * with the analytic model's compute latency within 25% (the analytic
 * model ignores fill/drain and interconnect contention).
 */
struct AgreementCase
{
    const char *name;
    MappingKind mapping;
    Phase phase;
};

class AnalyticAgreement : public ::testing::TestWithParam<AgreementCase>
{
};

TEST_P(AnalyticAgreement, CycleSimWithinBand)
{
    const AgreementCase &ac = GetParam();
    const LayerShape layer = arch::convLayer("c", 32, 32, 3, 8);
    sparse::SyntheticMaskConfig mc;
    mc.targetDensity = 0.25;
    mc.kernelSigma = 1.0;
    mc.seed = 5;
    const auto mask = sparse::makeSyntheticMask(
        layer.K, layer.effectiveC(), layer.R, layer.S, mc);
    const LayerSparsityProfile profile(mask, 0.5);

    const ArrayConfig acfg = ArrayConfig::baseline16();
    arch::CostOptions opts;
    opts.sparse = true;
    opts.balance = BalanceMode::HalfTile;
    const arch::CostModel analytic(acfg, opts);
    const double expected =
        analytic
            .evaluatePhase(layer, ac.phase, ac.mapping, profile, 16)
            .computeCycles;

    SimConfig scfg;
    scfg.unicastWordsPerCycle = 16;
    const SimResult sim = simulateLayerPhase(
        layer, ac.phase, ac.mapping, profile, 16, acfg, scfg,
        BalanceMode::HalfTile);

    EXPECT_GT(static_cast<double>(sim.computeCycles),
              0.75 * expected)
        << ac.name;
    EXPECT_LT(static_cast<double>(sim.computeCycles), 1.6 * expected)
        << ac.name;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AnalyticAgreement,
    ::testing::Values(
        AgreementCase{"kn_fw", MappingKind::KN, Phase::Forward},
        AgreementCase{"kn_bw", MappingKind::KN, Phase::Backward},
        AgreementCase{"kn_wu", MappingKind::KN, Phase::WeightUpdate},
        AgreementCase{"cn_fw", MappingKind::CN, Phase::Forward},
        AgreementCase{"ck_fw", MappingKind::CK, Phase::Forward}),
    [](const ::testing::TestParamInfo<AgreementCase> &info) {
        return info.param.name;
    });

TEST(CycleSim, UnicastBudgetSharedAcrossOperands)
{
    // Both operands ride the unicast network: its aggregate bandwidth
    // is one budget per cycle, not one per operand. 64 PEs x 200
    // words at 16 words/cycle needs >= 800 delivery cycles;
    // double-counting the budget per channel would finish in ~400.
    WaveSpec w = uniformWave(8, 8, 100, 100, 100);
    w.channelA = Channel::UnicastNet;
    w.channelB = Channel::UnicastNet;
    SimConfig cfg;
    cfg.unicastWordsPerCycle = 16;
    const SimResult r = simulateWave(w, cfg);
    EXPECT_GE(r.computeCycles, 800);
    EXPECT_EQ(r.macsRetired, 64 * 100);
}

TEST(CycleSim, RoundRobinCursorResumesAtLastServed)
{
    // Budget 2 over four equally hungry slots: the cursor must resume
    // one past the last slot served, so two calls reach all four
    // exactly once. (The seed advanced the cursor by one per cycle,
    // re-serving slot 1 while slot 3 starved: recv [1,2,1,0].)
    const std::vector<int64_t> cap(4, 100);
    std::vector<int64_t> recv(4, 0);
    int budget = 2;
    size_t cursor = unicastRoundRobin(cap, recv, budget, 0);
    EXPECT_EQ(budget, 0);
    EXPECT_EQ(cursor, 2u);
    budget = 2;
    cursor = unicastRoundRobin(cap, recv, budget, cursor);
    EXPECT_EQ(budget, 0);
    EXPECT_EQ(cursor, 0u);
    EXPECT_EQ(recv, (std::vector<int64_t>{1, 1, 1, 1}));
}

TEST(CycleSim, RoundRobinSkipsFullSlotsAndKeepsLeftoverBudget)
{
    const std::vector<int64_t> cap = {1, 0, 3};
    std::vector<int64_t> recv = {1, 0, 1};
    int budget = 4;
    const size_t cursor = unicastRoundRobin(cap, recv, budget, 0);
    // Only slot 2 is hungry; it gets one word this cycle, the rest of
    // the budget is left over, and service resumes after it.
    EXPECT_EQ(recv, (std::vector<int64_t>{1, 0, 2}));
    EXPECT_EQ(budget, 3);
    EXPECT_EQ(cursor, 0u);
}

TEST(CycleSim, SaturatedRowBusDeliversOneLinePerCycle)
{
    // More operand-A words than MACs on the row bus: the wave is
    // word-bound at one multicast line per row per cycle.
    WaveSpec w = uniformWave(4, 4, 100, 200, 10);
    const SimResult r = simulateWave(w, SimConfig{});
    EXPECT_NEAR(static_cast<double>(r.computeCycles), 200.0, 15.0);
    EXPECT_GT(r.stallCycles, 0);
}

TEST(CycleSim, SaturatedColBusDeliversOneLinePerCycle)
{
    WaveSpec w = uniformWave(4, 4, 100, 10, 200);
    const SimResult r = simulateWave(w, SimConfig{});
    EXPECT_NEAR(static_cast<double>(r.computeCycles), 200.0, 15.0);
    EXPECT_GT(r.stallCycles, 0);
}

TEST(CycleSim, DrainOnlyWaveTakesBandwidthBoundCycles)
{
    // No MACs, no operand words — just partial sums to drain. The
    // wave must not spin on compute: 4 PEs x 25 psums over a 4-wide
    // unicast output channel is exactly 25 drain cycles.
    WaveSpec w = uniformWave(2, 2, 0, 0, 0);
    for (auto &t : w.tiles)
        t.psumWords = 25;
    SimConfig cfg;
    cfg.unicastWordsPerCycle = 4;
    const SimResult r = simulateWave(w, cfg);
    EXPECT_EQ(r.macsRetired, 0);
    EXPECT_EQ(r.computeCycles, 0);
    EXPECT_EQ(r.drainCycles, 25);
    EXPECT_EQ(r.cycles, 25);
}

TEST(CycleSim, GlbBankConflictsStallAndAreCounted)
{
    // 16 unicast words/cycle against 4 single-ported banks: every
    // delivery cycle oversubscribes the GLB 4x and must replay.
    WaveSpec w = uniformWave(8, 8, 100, 1, 100);
    w.channelB = Channel::UnicastNet;
    SimConfig cfg;
    cfg.unicastWordsPerCycle = 16;
    cfg.glbBanks = 4;
    cfg.glbBankPortsPerCycle = 1;
    const SimResult r = simulateWave(w, cfg);
    EXPECT_GT(r.glbConflicts, 0);
    EXPECT_GT(r.glbConflictCycles, 0);
    EXPECT_EQ(r.cycles,
              r.computeCycles + r.drainCycles + r.glbConflictCycles);
    // Unicast words read once per PE; the single operand-A word is a
    // multicast line per row (one GLB read fans out to 8 PEs). Every
    // psum written once.
    EXPECT_EQ(r.totalGlbReads(), 64 * 100 + 8);
    EXPECT_EQ(r.totalGlbWrites(), 64 * 1);

    // The default GLB (64 banks) covers the full per-cycle demand of
    // the baseline array: same wave, no conflicts.
    const SimResult wide = simulateWave(w, SimConfig{});
    EXPECT_EQ(wide.glbConflicts, 0);
    EXPECT_EQ(wide.glbConflictCycles, 0);
}

TEST(CycleSim, FifoBackpressureThrottlesDeliveryWithoutSlowdown)
{
    // Row bus can feed one word per cycle but each word covers two
    // MACs: a shallow operand queue fills and withholds deliveries.
    // Backpressure must be counted, and — since words still arrive
    // ahead of consumption — must not change the makespan.
    WaveSpec w = uniformWave(4, 4, 200, 100, 1);
    SimConfig shallow;
    shallow.peFifoDepth = 2;
    const SimResult r_shallow = simulateWave(w, shallow);
    SimConfig unbounded;
    unbounded.peFifoDepth = 0;
    const SimResult r_unbounded = simulateWave(w, unbounded);
    EXPECT_GT(r_shallow.fifoBackpressureCycles, 0);
    EXPECT_EQ(r_unbounded.fifoBackpressureCycles, 0);
    EXPECT_EQ(r_shallow.computeCycles, r_unbounded.computeCycles);
    EXPECT_EQ(r_shallow.macsRetired, r_unbounded.macsRetired);
}

/** Serial-mode accounting identity (no overlap, no refill). */
void
expectSerialIdentity(const SimResult &r)
{
    EXPECT_EQ(r.overlappedDrainCycles, 0);
    EXPECT_EQ(r.dramStallCycles, 0);
    EXPECT_EQ(r.cycles,
              r.computeCycles + r.drainCycles + r.glbConflictCycles);
}

/** Full accounting contract (holds in every mode). */
void
expectCycleContract(const SimResult &r)
{
    EXPECT_EQ(r.cycles, r.computeCycles + r.drainCycles +
                            r.glbConflictCycles -
                            r.overlappedDrainCycles + r.dramStallCycles);
    EXPECT_GE(r.overlappedDrainCycles, 0);
    EXPECT_LE(r.overlappedDrainCycles,
              r.drainCycles + r.glbConflictCycles);
    EXPECT_GE(r.dramStallCycles, 0);
    EXPECT_LE(r.dramStallCycles, r.dramRefillCycles);
}

TEST(CycleSim, DoubleBufferTwoWaveOverlapHandComputed)
{
    // One 1x1-PE wave: 2 broadcast operand words unlock 10 MACs (10
    // compute cycles, 2 GLB reads), then 20 psums drain over the
    // 1-word/cycle broadcast output channel (20 drain cycles). Two of
    // them serially: 2 x (10 + 20) = 60 cycles.
    WaveSpec w = uniformWave(1, 1, 10, 1, 1);
    w.channelA = Channel::Broadcast;
    w.channelB = Channel::Broadcast;
    w.channelOut = Channel::Broadcast;
    w.tiles[0].psumWords = 20;
    const std::vector<WaveSpec> seq = {w, w};

    SimConfig cfg;   // 64 banks x 1 port: bank bandwidth 64 words/cycle
    const SimResult serial = simulateWaveSequence(seq, cfg);
    EXPECT_EQ(serial.computeCycles, 20);
    EXPECT_EQ(serial.drainCycles, 40);
    EXPECT_EQ(serial.cycles, 60);
    expectSerialIdentity(serial);

    // Double-buffered: wave 1's 20 staged words vanish into wave 2's
    // spare GLB write bandwidth (64 x 10 - 2 = 638 words spare), saving
    // all 20 serial drain cycles; wave 2's 20 words flush at the full
    // 64-words/cycle bank bandwidth in ceil(20/64) = 1 cycle, saving
    // 19 of 20. Total: 20 compute + 1 flush = 21 cycles, 39 overlapped.
    cfg.doubleBufferOutputs = true;
    const SimResult db = simulateWaveSequence(seq, cfg);
    EXPECT_EQ(db.cycles, 21);
    EXPECT_EQ(db.overlappedDrainCycles, 39);
    EXPECT_EQ(db.drainCycles, serial.drainCycles);
    expectCycleContract(db);
}

TEST(CycleSim, DoubleBufferNeverSlowerAndTrafficInvariant)
{
    // On every wave sequence and every (even oversubscribed) GLB
    // geometry: double-buffered total cycles <= serial, the accounting
    // contract holds, and the per-bank read/write traffic is bitwise
    // identical — the second buffer re-times the drain, it never
    // re-routes it.
    WaveSpec heavy_drain = uniformWave(8, 8, 10, 1, 1);
    for (auto &t : heavy_drain.tiles)
        t.psumWords = 40;
    WaveSpec unicast_out = uniformWave(4, 4, 50, 5, 50);
    unicast_out.channelB = Channel::UnicastNet;
    WaveSpec compute_heavy = uniformWave(8, 8, 500, 10, 10);
    const std::vector<std::vector<WaveSpec>> sequences = {
        {heavy_drain, heavy_drain, heavy_drain},
        {compute_heavy, heavy_drain},
        {heavy_drain, compute_heavy, unicast_out, heavy_drain},
        {unicast_out},
        {},
    };

    std::vector<SimConfig> cfgs(3);
    cfgs[1].glbBanks = 4;   // bank bandwidth below every output channel
    cfgs[2].glbBanks = 16;
    cfgs[2].unicastWordsPerCycle = 32;
    for (size_t c = 0; c < cfgs.size(); ++c) {
        SimConfig serial_cfg = cfgs[c];
        SimConfig db_cfg = cfgs[c];
        db_cfg.doubleBufferOutputs = true;
        for (size_t s = 0; s < sequences.size(); ++s) {
            const SimResult a =
                simulateWaveSequence(sequences[s], serial_cfg);
            const SimResult b =
                simulateWaveSequence(sequences[s], db_cfg);
            expectSerialIdentity(a);
            expectCycleContract(b);
            EXPECT_LE(b.cycles, a.cycles) << "cfg " << c << " seq " << s;
            EXPECT_EQ(a.glbBankReads, b.glbBankReads)
                << "cfg " << c << " seq " << s;
            EXPECT_EQ(a.glbBankWrites, b.glbBankWrites)
                << "cfg " << c << " seq " << s;
            EXPECT_EQ(a.computeCycles, b.computeCycles);
            EXPECT_EQ(a.drainCycles, b.drainCycles);
            EXPECT_EQ(a.macsRetired, b.macsRetired);
        }
    }
}

TEST(CycleSim, DoubleBufferEqualsSerialWhenDrainIsFree)
{
    // With nothing to drain the second buffer has nothing to hide:
    // both modes must clock identically.
    WaveSpec w = uniformWave(4, 4, 100, 10, 10);
    for (auto &t : w.tiles)
        t.psumWords = 0;
    const std::vector<WaveSpec> seq = {w, w, w};
    SimConfig db_cfg;
    db_cfg.doubleBufferOutputs = true;
    const SimResult serial = simulateWaveSequence(seq, SimConfig{});
    const SimResult db = simulateWaveSequence(seq, db_cfg);
    EXPECT_EQ(serial.cycles, db.cycles);
    EXPECT_EQ(db.overlappedDrainCycles, 0);
    EXPECT_EQ(serial.drainCycles, 0);
}

TEST(CycleSim, ZeroDensitySlotsStayIdle)
{
    // A fully pruned layer maps to zero-demand slots everywhere: no
    // phantom MACs or psum drain from per-slot floors. (The seed
    // clamped every slot to at least one MAC and one word, so an
    // all-zero mask still "computed".)
    const LayerShape layer = arch::convLayer("z", 32, 32, 3, 8);
    sparse::SparsityMask mask = sparse::SparsityMask::dense(
        layer.K, layer.effectiveC(), layer.R, layer.S);
    std::fill(mask.bits.begin(), mask.bits.end(),
              static_cast<uint8_t>(0));
    const LayerSparsityProfile profile(mask, 0.5);
    const ArrayConfig acfg = ArrayConfig::baseline16();
    for (Phase phase : {Phase::Forward, Phase::Backward}) {
        const SimResult r =
            simulateLayerPhase(layer, phase, MappingKind::KN, profile,
                               8, acfg, SimConfig{});
        EXPECT_EQ(r.macsRetired, 0) << static_cast<int>(phase);
        EXPECT_EQ(r.cycles, 0) << static_cast<int>(phase);
        EXPECT_EQ(r.stallCycles, 0) << static_cast<int>(phase);
    }
}

/** Small sparse-backend conv/bn/relu/fc net (trace-driven tests). */
void
buildTraceNet(nn::Network &net, uint64_t seed)
{
    nn::Conv2dConfig c1;
    c1.inChannels = 3;
    c1.outChannels = 8;
    c1.kernel = 3;
    c1.pad = 1;
    c1.bias = false;
    nn::Conv2d *conv1 = net.add<nn::Conv2d>(c1, "conv1");
    conv1->setBackend(kernels::KernelBackend::kSparse);
    net.add<nn::BatchNorm2d>(8, "bn1");
    net.add<nn::ReLU>("relu1");
    net.add<nn::MaxPool2d>(2, "pool1");
    net.add<nn::GlobalAvgPool>("gap");
    nn::Linear *fc = net.add<nn::Linear>(8, 4, "fc");
    fc->setBackend(kernels::KernelBackend::kSparse);
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
    // Prune a third of every trainable layer up front so the traced
    // masks are genuinely sparse from epoch 0.
    for (size_t i = 0; i < net.size(); ++i) {
        Tensor *w = nullptr;
        if (auto *conv = dynamic_cast<nn::Conv2d *>(net.layer(i)))
            w = &conv->weight().value;
        else if (auto *lin = dynamic_cast<nn::Linear *>(net.layer(i)))
            w = &lin->weight().value;
        if (!w)
            continue;
        for (int64_t j = 0; j < w->numel(); j += 3)
            w->at(j) = 0.0f;
    }
}

/** The non-default co-run config the trace tests exercise: drain
    double-buffering plus the DRAM refill front end at the paper's
    2 words/cycle. */
SimConfig
dbRefillConfig()
{
    SimConfig cfg;
    cfg.doubleBufferOutputs = true;
    cfg.dramWordsPerCycle = 2.0;
    return cfg;
}

/** Train 2 epochs and return the trace plus each epoch's co-runs
    (default serial config and the db+refill config). */
struct TracePipeline
{
    arch::WorkloadTrace trace;
    std::vector<TraceSimResult> sims;
    std::vector<TraceSimResult> dbSims;
};

TracePipeline
runTraceSimPipeline()
{
    nn::Network net;
    buildTraceNet(net, 41);
    nn::BlobImageConfig dcfg;
    dcfg.numClasses = 4;
    dcfg.samplesPerClass = 12;
    const nn::Dataset train = nn::makeBlobImages(dcfg);
    dcfg.sampleSeed = 77;
    const nn::Dataset val = nn::makeBlobImages(dcfg);
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batchSize = 8;
    // Gradual magnitude pruning with an interval shorter than an
    // epoch, so the two epoch-final masks genuinely differ.
    sparse::GradualPruningConfig pcfg;
    pcfg.targetSparsity = 4.0;
    pcfg.lr = 0.05f;
    pcfg.pruneInterval = 3;
    pcfg.pruneFraction = 0.3;
    pcfg.warmupIterations = 2;
    sparse::GradualMagnitudePruningOptimizer opt(pcfg);
    TracePipeline out;
    trainNetwork(net, opt, train, val, tc, out.trace.observer());
    const arch::Accelerator acc = arch::Accelerator::procrustes();
    for (size_t e = 0; e < out.trace.epochCount(); ++e) {
        TraceSimResult csim;
        acc.evaluateTrace(out.trace, e, nullptr, &csim);
        out.sims.push_back(csim);
        TraceSimResult dbsim;
        acc.evaluateTrace(out.trace, e, nullptr, &dbsim,
                          dbRefillConfig());
        out.dbSims.push_back(dbsim);
    }
    return out;
}

/** One trained pipeline shared by the single-configuration trace
    tests (the thread sweep re-trains under each pool size on
    purpose). */
const TracePipeline &
sharedPipeline()
{
    static const TracePipeline p = runTraceSimPipeline();
    return p;
}

TEST(TraceSim, EpochCoRunAgreesWithAnalyticModel)
{
    // Integration: the cycle-level simulator replays every traced
    // epoch from the measured masks/activations, and its total cycles
    // must stay within a bounded band of the analytic compute latency
    // (the simulator adds drain, fill, and contention on top — the
    // band is the fidelity bound BENCH_cosim.json v5 records).
    const TracePipeline &p = sharedPipeline();
    ASSERT_EQ(p.trace.epochCount(), 2u);
    for (size_t e = 0; e < p.sims.size(); ++e) {
        const TraceSimResult &cs = p.sims[e];
        EXPECT_GT(cs.total.macsRetired, 0) << e;
        EXPECT_GT(cs.analyticComputeCycles, 0.0) << e;
        // With refill off the ratio reference is the compute latency.
        EXPECT_EQ(cs.analyticRefCycles, cs.analyticComputeCycles) << e;
        EXPECT_GT(cs.analyticCycleRatio, 0.6) << e;
        EXPECT_LT(cs.analyticCycleRatio, 3.6) << e;
        // In serial mode with refill off the historical additive
        // cycle decomposition holds exactly for the accumulated
        // epoch, and phases sum to the total.
        EXPECT_EQ(cs.total.cycles,
                  cs.total.computeCycles + cs.total.drainCycles +
                      cs.total.glbConflictCycles)
            << e;
        EXPECT_EQ(cs.total.cycles,
                  cs.fw.cycles + cs.bw.cycles + cs.wu.cycles)
            << e;
        EXPECT_EQ(cs.total.macsRetired,
                  cs.fw.macsRetired + cs.bw.macsRetired +
                      cs.wu.macsRetired)
            << e;
        // The default 64-bank GLB covers the baseline array's peak
        // per-cycle demand: no conflicts on the default config.
        EXPECT_EQ(cs.total.glbConflicts, 0) << e;
        EXPECT_EQ(cs.total.glbConflictCycles, 0) << e;
        // Reads/writes happened and landed in the bank counters.
        EXPECT_GT(cs.total.totalGlbReads(), 0) << e;
        EXPECT_GT(cs.total.totalGlbWrites(), 0) << e;
    }
    // Pruning progresses between epochs, so the epochs are genuinely
    // different workloads (guards against comparing a constant).
    EXPECT_NE(p.sims[0].total.macsRetired, p.sims[1].total.macsRetired);
}

TEST(TraceSim, DoubleBufferAndRefillEpochInvariants)
{
    // The db+refill co-run of every traced epoch obeys the full
    // accounting contract, is never slower than the serial co-run on
    // compute+drain terms, keeps the per-bank traffic image identical,
    // and charges a genuinely positive refill demand from the measured
    // bytes. The refill-aware analytic reference also grows, keeping
    // the ratio meaningful.
    const TracePipeline &p = sharedPipeline();
    ASSERT_EQ(p.sims.size(), p.dbSims.size());
    for (size_t e = 0; e < p.sims.size(); ++e) {
        const TraceSimResult &serial = p.sims[e];
        const TraceSimResult &db = p.dbSims[e];
        expectCycleContract(db.total);
        EXPECT_GT(db.total.overlappedDrainCycles, 0) << e;
        EXPECT_GT(db.total.dramRefillCycles, 0) << e;
        // Same waves, same compute and drain demand, same traffic —
        // only the clocking differs.
        EXPECT_EQ(db.total.computeCycles, serial.total.computeCycles)
            << e;
        EXPECT_EQ(db.total.drainCycles, serial.total.drainCycles) << e;
        EXPECT_EQ(db.total.macsRetired, serial.total.macsRetired) << e;
        EXPECT_EQ(db.total.glbBankReads, serial.total.glbBankReads)
            << e;
        EXPECT_EQ(db.total.glbBankWrites, serial.total.glbBankWrites)
            << e;
        // Net of the refill stall, double-buffering never loses to
        // serial drain.
        EXPECT_LE(db.total.cycles - db.total.dramStallCycles,
                  serial.total.cycles)
            << e;
        // With overlap on, cross-boundary hidden cycles are
        // attributed to the total only: phases bound it from above.
        EXPECT_LE(db.total.cycles - db.total.dramStallCycles,
                  db.fw.cycles + db.bw.cycles + db.wu.cycles)
            << e;
        // Refill makes the analytic reference a max(compute, refill)
        // bound: at least the compute-only reference.
        EXPECT_GE(db.analyticRefCycles, db.analyticComputeCycles) << e;
        EXPECT_GT(db.analyticCycleRatio, 0.0) << e;
    }
}

TEST(TraceSim, PrebuiltPlanMatchesDirectEpochSimulation)
{
    // buildEpochWavePlan + simulateEpochPlan is the sweep-facing split
    // of simulateTraceEpoch: under any config (here db+refill) the two
    // paths must agree bitwise, or cached-geometry sweeps would drift
    // from the co-run they claim to re-clock.
    const TracePipeline &p = sharedPipeline();
    const arch::Accelerator acc = arch::Accelerator::procrustes();
    const arch::EpochTrace &et = p.trace.epoch(0);
    const EpochWavePlan plan = buildEpochWavePlan(
        et, acc.mapping(), acc.costModel().config(),
        acc.costModel().options().balance);
    EXPECT_EQ(plan.order.size(), 3 * et.layers.size());
    for (const SimConfig &cfg :
         {SimConfig{}, dbRefillConfig()}) {
        const TraceSimResult direct = simulateTraceEpoch(
            et, acc.mapping(), acc.costModel().config(), cfg,
            acc.costModel().options().balance);
        const TraceSimResult replay = simulateEpochPlan(plan, cfg);
        EXPECT_EQ(direct.total.cycles, replay.total.cycles);
        EXPECT_EQ(direct.total.overlappedDrainCycles,
                  replay.total.overlappedDrainCycles);
        EXPECT_EQ(direct.total.dramStallCycles,
                  replay.total.dramStallCycles);
        EXPECT_EQ(direct.fw.cycles, replay.fw.cycles);
        EXPECT_EQ(direct.bw.cycles, replay.bw.cycles);
        EXPECT_EQ(direct.wu.cycles, replay.wu.cycles);
        EXPECT_EQ(direct.total.glbBankReads, replay.total.glbBankReads);
        EXPECT_EQ(direct.total.glbBankWrites,
                  replay.total.glbBankWrites);
    }
}

/** Restores the process-wide pool to its env-resolved size on exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard() { ThreadPool::resetGlobal(0); }
};

void
expectSimResultsIdentical(const SimResult &a, const SimResult &b,
                          int threads)
{
    EXPECT_EQ(a.cycles, b.cycles) << threads;
    EXPECT_EQ(a.computeCycles, b.computeCycles) << threads;
    EXPECT_EQ(a.stallCycles, b.stallCycles) << threads;
    EXPECT_EQ(a.macsRetired, b.macsRetired) << threads;
    EXPECT_EQ(a.drainCycles, b.drainCycles) << threads;
    EXPECT_EQ(a.overlappedDrainCycles, b.overlappedDrainCycles)
        << threads;
    EXPECT_EQ(a.glbConflictCycles, b.glbConflictCycles) << threads;
    EXPECT_EQ(a.glbConflicts, b.glbConflicts) << threads;
    EXPECT_EQ(a.fifoBackpressureCycles, b.fifoBackpressureCycles)
        << threads;
    EXPECT_EQ(a.dramRefillCycles, b.dramRefillCycles) << threads;
    EXPECT_EQ(a.dramStallCycles, b.dramStallCycles) << threads;
    EXPECT_EQ(a.glbBankReads, b.glbBankReads) << threads;
    EXPECT_EQ(a.glbBankWrites, b.glbBankWrites) << threads;
}

TEST(TraceSim, ThreadSweepBitwiseIdenticalAcrossThreadCounts)
{
    // The whole trace-driven co-simulation — training on the CSB
    // executors, telemetry aggregation, and the cycle-level replay —
    // must be bitwise invariant to the thread-pool size.
    GlobalPoolGuard guard;
    ThreadPool::resetGlobal(1);
    const TracePipeline ref = runTraceSimPipeline();
    ASSERT_EQ(ref.sims.size(), 2u);

    for (int threads : {2, 3, 8}) {
        ThreadPool::resetGlobal(threads);
        ASSERT_EQ(ThreadPool::global().numThreads(), threads);
        const TracePipeline got = runTraceSimPipeline();
        ASSERT_EQ(got.sims.size(), ref.sims.size());
        ASSERT_EQ(got.dbSims.size(), ref.dbSims.size());
        for (size_t e = 0; e < ref.sims.size(); ++e) {
            expectSimResultsIdentical(got.sims[e].total,
                                      ref.sims[e].total, threads);
            expectSimResultsIdentical(got.sims[e].fw, ref.sims[e].fw,
                                      threads);
            expectSimResultsIdentical(got.sims[e].bw, ref.sims[e].bw,
                                      threads);
            expectSimResultsIdentical(got.sims[e].wu, ref.sims[e].wu,
                                      threads);
            // The overlap chain and refill accounting must be just as
            // thread-count-invariant as the serial path.
            expectSimResultsIdentical(got.dbSims[e].total,
                                      ref.dbSims[e].total, threads);
            EXPECT_EQ(got.sims[e].analyticComputeCycles,
                      ref.sims[e].analyticComputeCycles)
                << threads;
            EXPECT_EQ(got.sims[e].analyticCycleRatio,
                      ref.sims[e].analyticCycleRatio)
                << threads;
            EXPECT_EQ(got.dbSims[e].analyticRefCycles,
                      ref.dbSims[e].analyticRefCycles)
                << threads;
            EXPECT_EQ(got.dbSims[e].analyticCycleRatio,
                      ref.dbSims[e].analyticCycleRatio)
                << threads;
        }
    }
}

} // namespace
} // namespace sim
} // namespace procrustes
