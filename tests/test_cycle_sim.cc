/**
 * @file
 * Tests for the cycle-level PE-array simulator, including agreement
 * with the analytic cost model.
 */

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "sim/cycle_sim.h"
#include "sparse/mask.h"

namespace procrustes {
namespace sim {
namespace {

using arch::ArrayConfig;
using arch::BalanceMode;
using arch::LayerShape;
using arch::LayerSparsityProfile;
using arch::MappingKind;
using arch::Phase;

WaveSpec
uniformWave(int rows, int cols, int64_t macs, int64_t words_a,
            int64_t words_b)
{
    WaveSpec w;
    w.rows = rows;
    w.cols = cols;
    w.channelA = Channel::RowBus;
    w.channelB = Channel::ColBus;
    w.channelOut = Channel::UnicastNet;
    TileDemand d;
    d.macs = macs;
    d.wordsA = words_a;
    d.wordsB = words_b;
    d.psumWords = 1;
    w.tiles.assign(static_cast<size_t>(rows) * cols, d);
    return w;
}

TEST(CycleSim, ComputeBoundWaveRunsAtOneMacPerCycle)
{
    // Few operand words, heavy reuse: compute-bound.
    const WaveSpec w = uniformWave(4, 4, 1000, 10, 10);
    const SimResult r = simulateWave(w, SimConfig{});
    EXPECT_EQ(r.macsRetired, 16 * 1000);
    // All PEs retire one MAC per cycle once words flow; slack only in
    // the first cycles.
    EXPECT_NEAR(static_cast<double>(r.computeCycles), 1000.0, 15.0);
}

TEST(CycleSim, BandwidthStarvedWaveStalls)
{
    // Every MAC needs a fresh unicast word; aggregate unicast
    // bandwidth of 16 words/cycle feeds 16 PEs at 1/PE — but 64 PEs
    // need 4x that, so the wave runs ~4x longer.
    WaveSpec w = uniformWave(8, 8, 100, 1, 100);
    w.channelB = Channel::UnicastNet;
    SimConfig cfg;
    cfg.unicastWordsPerCycle = 16;
    const SimResult r = simulateWave(w, cfg);
    EXPECT_GT(r.computeCycles, 350);
    EXPECT_GT(r.stallCycles, 0);
}

TEST(CycleSim, SkewedWaveMatchesMaxTileWork)
{
    WaveSpec w = uniformWave(2, 2, 100, 5, 5);
    w.tiles[0].macs = 1000;   // one heavy PE
    const SimResult r = simulateWave(w, SimConfig{});
    EXPECT_NEAR(static_cast<double>(r.computeCycles), 1000.0, 20.0);
}

TEST(CycleSim, BroadcastChannelFeedsAllPes)
{
    WaveSpec w = uniformWave(4, 4, 64, 64, 1);
    w.channelA = Channel::Broadcast;
    const SimResult r = simulateWave(w, SimConfig{});
    // One word per cycle broadcast, each word enables 1 MAC: the wave
    // takes ~64 cycles with all PEs in lockstep.
    EXPECT_NEAR(static_cast<double>(r.computeCycles), 64.0, 5.0);
}

TEST(CycleSim, DrainAddedAfterCompute)
{
    WaveSpec w = uniformWave(2, 2, 10, 1, 1);
    for (auto &t : w.tiles)
        t.psumWords = 50;
    w.channelOut = Channel::UnicastNet;
    SimConfig cfg;
    cfg.unicastWordsPerCycle = 4;
    const SimResult r = simulateWave(w, cfg);
    EXPECT_EQ(r.cycles - r.computeCycles, (4 * 50) / 4);
}

TEST(CycleSim, ChannelMapping)
{
    EXPECT_EQ(channelFor(arch::FlowClass::MulticastRows),
              Channel::RowBus);
    EXPECT_EQ(channelFor(arch::FlowClass::ReduceCols), Channel::ColBus);
    EXPECT_EQ(channelFor(arch::FlowClass::Broadcast),
              Channel::Broadcast);
    EXPECT_EQ(channelFor(arch::FlowClass::Unicast), Channel::UnicastNet);
}

/**
 * Cross-validation: cycle-level simulation of small layers must agree
 * with the analytic model's compute latency within 25% (the analytic
 * model ignores fill/drain and interconnect contention).
 */
struct AgreementCase
{
    const char *name;
    MappingKind mapping;
    Phase phase;
};

class AnalyticAgreement : public ::testing::TestWithParam<AgreementCase>
{
};

TEST_P(AnalyticAgreement, CycleSimWithinBand)
{
    const AgreementCase &ac = GetParam();
    const LayerShape layer = arch::convLayer("c", 32, 32, 3, 8);
    sparse::SyntheticMaskConfig mc;
    mc.targetDensity = 0.25;
    mc.kernelSigma = 1.0;
    mc.seed = 5;
    const auto mask = sparse::makeSyntheticMask(
        layer.K, layer.effectiveC(), layer.R, layer.S, mc);
    const LayerSparsityProfile profile(mask, 0.5);

    const ArrayConfig acfg = ArrayConfig::baseline16();
    arch::CostOptions opts;
    opts.sparse = true;
    opts.balance = BalanceMode::HalfTile;
    const arch::CostModel analytic(acfg, opts);
    const double expected =
        analytic
            .evaluatePhase(layer, ac.phase, ac.mapping, profile, 16)
            .computeCycles;

    SimConfig scfg;
    scfg.unicastWordsPerCycle = 16;
    const SimResult sim = simulateLayerPhase(
        layer, ac.phase, ac.mapping, profile, 16, acfg, scfg,
        BalanceMode::HalfTile);

    EXPECT_GT(static_cast<double>(sim.computeCycles),
              0.75 * expected)
        << ac.name;
    EXPECT_LT(static_cast<double>(sim.computeCycles), 1.6 * expected)
        << ac.name;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AnalyticAgreement,
    ::testing::Values(
        AgreementCase{"kn_fw", MappingKind::KN, Phase::Forward},
        AgreementCase{"kn_bw", MappingKind::KN, Phase::Backward},
        AgreementCase{"kn_wu", MappingKind::KN, Phase::WeightUpdate},
        AgreementCase{"cn_fw", MappingKind::CN, Phase::Forward},
        AgreementCase{"ck_fw", MappingKind::CK, Phase::Forward}),
    [](const ::testing::TestParamInfo<AgreementCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace sim
} // namespace procrustes
