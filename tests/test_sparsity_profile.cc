/**
 * @file
 * Unit tests for LayerSparsityProfile: slice densities, half-splits,
 * and the deterministic activation-density jitter.
 */

#include <gtest/gtest.h>

#include "arch/sparsity_profile.h"

namespace procrustes {
namespace arch {
namespace {

sparse::SparsityMask
checkerboardMask(int64_t k, int64_t c)
{
    // Kernel (k, c) fully dense when (k + c) is even, empty otherwise.
    sparse::SparsityMask m;
    m.K = k;
    m.C = c;
    m.R = 3;
    m.S = 3;
    m.bits.assign(static_cast<size_t>(m.numel()), 0);
    for (int64_t kk = 0; kk < k; ++kk) {
        for (int64_t cc = 0; cc < c; ++cc) {
            if ((kk + cc) % 2 == 0) {
                for (int64_t e = 0; e < 9; ++e)
                    m.bits[static_cast<size_t>(
                        (kk * c + cc) * 9 + e)] = 1;
            }
        }
    }
    return m;
}

TEST(SparsityProfile, GlobalDensityFromMask)
{
    const LayerSparsityProfile p(checkerboardMask(4, 4), 0.5);
    EXPECT_DOUBLE_EQ(p.weightDensity(), 0.5);
    EXPECT_TRUE(p.hasMask());
    EXPECT_EQ(p.maskK(), 4);
    EXPECT_EQ(p.maskC(), 4);
}

TEST(SparsityProfile, SliceDensities)
{
    const LayerSparsityProfile p(checkerboardMask(4, 4), 0.5);
    // Every K-slice and C-slice of a checkerboard is half dense.
    for (int64_t k = 0; k < 4; ++k)
        EXPECT_DOUBLE_EQ(p.kDensity(k), 0.5);
    for (int64_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(p.cDensity(c), 0.5);
}

TEST(SparsityProfile, KernelDensities)
{
    const LayerSparsityProfile p(checkerboardMask(2, 2), 0.5);
    EXPECT_DOUBLE_EQ(p.kernelDensity(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(p.kernelDensity(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(p.kernelDensity(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(p.kernelDensity(1, 1), 1.0);
}

TEST(SparsityProfile, HalvesSumToSlice)
{
    sparse::SyntheticMaskConfig cfg;
    cfg.targetDensity = 0.3;
    cfg.seed = 5;
    const auto mask = sparse::makeSyntheticMask(16, 8, 3, 3, cfg);
    const LayerSparsityProfile p(mask, 0.5);
    for (int64_t k = 0; k < 16; ++k) {
        EXPECT_NEAR(p.kHalfDensity(k, 0) + p.kHalfDensity(k, 1),
                    p.kDensity(k), 1e-12);
    }
    for (int64_t c = 0; c < 8; ++c) {
        EXPECT_NEAR(p.cHalfDensity(c, 0) + p.cHalfDensity(c, 1),
                    p.cDensity(c), 1e-12);
    }
}

TEST(SparsityProfile, DepthwiseHalvesSplitEvenly)
{
    // With a single input channel the balancer cuts the kernel itself;
    // modelled as an even split.
    sparse::SyntheticMaskConfig cfg;
    cfg.targetDensity = 0.4;
    cfg.seed = 7;
    const auto mask = sparse::makeSyntheticMask(8, 1, 3, 3, cfg);
    const LayerSparsityProfile p(mask, 0.5);
    for (int64_t k = 0; k < 8; ++k) {
        EXPECT_DOUBLE_EQ(p.kHalfDensity(k, 0), p.kDensity(k) / 2.0);
        EXPECT_DOUBLE_EQ(p.kHalfDensity(k, 1), p.kDensity(k) / 2.0);
    }
}

TEST(SparsityProfile, UniformProfileHasNoMask)
{
    const auto p = LayerSparsityProfile::uniform(0.25, 0.6);
    EXPECT_FALSE(p.hasMask());
    EXPECT_DOUBLE_EQ(p.weightDensity(), 0.25);
    EXPECT_DOUBLE_EQ(p.kDensity(3), 0.25);
    EXPECT_DOUBLE_EQ(p.cDensity(9), 0.25);
    EXPECT_DOUBLE_EQ(p.kHalfDensity(3, 0), 0.125);
    EXPECT_DOUBLE_EQ(p.iactDensity(), 0.6);
}

TEST(SparsityProfile, ActivationJitterIsDeterministicAndBounded)
{
    const LayerSparsityProfile p(checkerboardMask(4, 4), 0.5,
                                 /*iact_sigma=*/0.15);
    for (int64_t n = 0; n < 64; ++n) {
        const double d = p.iactSampleDensity(n);
        EXPECT_DOUBLE_EQ(d, p.iactSampleDensity(n));
        EXPECT_GE(d, 0.02);
        EXPECT_LE(d, 1.0);
    }
    // Jitter must actually vary across samples.
    EXPECT_NE(p.iactSampleDensity(0), p.iactSampleDensity(1));

    // The dense-baseline uniform profile carries no jitter.
    const auto u = LayerSparsityProfile::uniform(1.0, 0.5);
    EXPECT_DOUBLE_EQ(u.iactSampleDensity(0), u.iactSampleDensity(1));
}

TEST(SparsityProfile, SpatialAndChannelDensities)
{
    sparse::SyntheticMaskConfig cfg;
    cfg.targetDensity = 0.2;
    cfg.seed = 9;
    const auto mask = sparse::makeSyntheticMask(8, 8, 3, 3, cfg);
    const LayerSparsityProfile p(mask, 0.5, /*iact_sigma=*/0.2);
    double sum = 0.0;
    for (int64_t pp = 0; pp < 8; ++pp) {
        for (int64_t q = 0; q < 8; ++q)
            sum += p.iactSpatialDensity(pp, q);
    }
    // Mean of the jittered field stays near the layer mean.
    EXPECT_NEAR(sum / 64.0, 0.5, 0.1);
}

TEST(SparsityProfile, OutOfRangeIndicesDie)
{
    const LayerSparsityProfile p(checkerboardMask(4, 4), 0.5);
    EXPECT_DEATH(p.kDensity(4), "out of range");
    EXPECT_DEATH(p.cDensity(-1), "out of range");
    EXPECT_DEATH(p.kernelDensity(0, 4), "out of range");
}

} // namespace
} // namespace arch
} // namespace procrustes
