/**
 * @file
 * Cross-module integration: train with the full Procrustes scheme,
 * extract the resulting masks, and drive the accelerator model with
 * them — the complete pipeline of the paper in one test binary.
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "common/rng.h"
#include "nn/activations.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sparse/csb.h"
#include "sparse/dropback.h"
#include "sparse/mask.h"

namespace procrustes {
namespace {

/** Train an MLP with the full Procrustes scheme (decay + QE). */
struct TrainedSparseNet
{
    nn::Network net;
    double valAccuracy = 0.0;
    double sparsity = 0.0;
};

TrainedSparseNet &
trainedNet()
{
    static TrainedSparseNet t = [] {
        TrainedSparseNet out;
        out.net.add<nn::Flatten>("fl");
        out.net.add<nn::Linear>(2, 128, "fc1");
        out.net.add<nn::ReLU>("r1");
        out.net.add<nn::Linear>(128, 128, "fc2");
        out.net.add<nn::ReLU>("r2");
        out.net.add<nn::Linear>(128, 3, "fc3");
        Xorshift128Plus rng(21);
        nn::kaimingInit(out.net, rng);

        nn::SpiralConfig dc;
        dc.samplesPerClass = 100;
        const nn::Dataset train = nn::makeSpirals(dc);
        dc.seed = 91;
        const nn::Dataset val = nn::makeSpirals(dc);

        sparse::DropbackConfig cfg;
        cfg.sparsity = 4.0;
        cfg.lr = 0.15f;
        cfg.initDecay = 0.95f;
        cfg.decayHorizon = 200;
        cfg.selection = sparse::SelectionMode::QuantileEstimate;
        sparse::DropbackOptimizer opt(cfg);

        nn::TrainConfig tc;
        tc.epochs = 50;
        tc.batchSize = 32;
        const auto hist = trainNetwork(out.net, opt, train, val, tc);
        out.valAccuracy = hist.back().valAccuracy;
        out.sparsity = hist.back().weightSparsity;
        return out;
    }();
    return t;
}

TEST(Integration, ProcrustesSchemeLearnsWithRealSparsity)
{
    TrainedSparseNet &t = trainedNet();
    EXPECT_GT(t.valAccuracy, 0.80);
    // Decay horizon passed: real computation sparsity exists.
    EXPECT_GT(t.sparsity, 0.4);
}

TEST(Integration, TrainedMasksDriveTheAcceleratorModel)
{
    TrainedSparseNet &t = trainedNet();

    // Extract masks from the trained fc weights and build a matching
    // fc-layer network model.
    arch::NetworkModel model;
    model.name = "spiral-mlp";
    std::vector<sparse::SparsityMask> masks;
    for (nn::Param *p : t.net.params()) {
        if (!p->prunable)
            continue;
        const Shape &s = p->value.shape();
        model.layers.push_back(
            arch::fcLayer(p->name, s[1], s[0]));
        model.iactDensity.push_back(0.5);
        masks.push_back(sparse::SparsityMask::fromTensor(p->value));
    }
    ASSERT_EQ(model.layers.size(), 3u);

    const auto profiles = arch::buildProfiles(model, masks);
    const auto dense_profiles = arch::buildDenseProfiles(model);
    const auto sparse_cost =
        arch::Accelerator::procrustes().evaluate(model, profiles, 16);
    const auto dense_cost = arch::Accelerator::denseBaseline().evaluate(
        model, dense_profiles, 16);

    // Real trained masks must translate into energy savings.
    EXPECT_LT(sparse_cost.totalEnergyJ(), dense_cost.totalEnergyJ());
    EXPECT_GT(sparse_cost.totalCycles(), 0.0);
}

TEST(Integration, TrainedWeightsSurviveCsbRoundTrip)
{
    TrainedSparseNet &t = trainedNet();
    for (nn::Param *p : t.net.params()) {
        if (!p->prunable)
            continue;
        const sparse::CsbTensor csb =
            sparse::CsbTensor::encodeMatrix(p->value, 8);
        EXPECT_FLOAT_EQ(maxAbsDiff(csb.decode(), p->value), 0.0f)
            << p->name;
        // Transposed view (backward pass) preserves every value.
        const Tensor wt = csb.decodeTransposed();
        const Shape &s = p->value.shape();
        for (int64_t i = 0; i < s[0]; i += 7) {
            for (int64_t j = 0; j < s[1]; j += 5)
                EXPECT_EQ(wt(j, i), p->value(i, j)) << p->name;
        }
        // Compression must beat dense storage once sparsity is real.
        if (csb.density() < 0.5) {
            EXPECT_LT(csb.totalBytes(),
                      sparse::CsbTensor::denseBytes(s));
        }
    }
}

TEST(Integration, DenseVsSparseAccuracyParity)
{
    // The end-to-end claim of Figures 6/7/15 on our substitute task:
    // dense SGD and the full Procrustes scheme reach comparable
    // accuracy from the same initialization.
    nn::SpiralConfig dc;
    dc.samplesPerClass = 100;
    const nn::Dataset train = nn::makeSpirals(dc);
    dc.seed = 91;
    const nn::Dataset val = nn::makeSpirals(dc);

    auto build = [](nn::Network &net) {
        net.add<nn::Flatten>("fl");
        net.add<nn::Linear>(2, 128, "fc1");
        net.add<nn::ReLU>("r1");
        net.add<nn::Linear>(128, 128, "fc2");
        net.add<nn::ReLU>("r2");
        net.add<nn::Linear>(128, 3, "fc3");
        Xorshift128Plus rng(33);
        nn::kaimingInit(net, rng);
    };
    nn::TrainConfig tc;
    tc.epochs = 50;
    tc.batchSize = 32;

    nn::Network dense;
    build(dense);
    nn::Sgd sgd(0.15f);
    const double dense_acc =
        trainNetwork(dense, sgd, train, val, tc).back().valAccuracy;

    nn::Network sparse_net;
    build(sparse_net);
    sparse::DropbackConfig cfg;
    cfg.sparsity = 3.0;
    cfg.lr = 0.15f;
    cfg.initDecay = 0.95f;
    cfg.decayHorizon = 200;
    cfg.selection = sparse::SelectionMode::QuantileEstimate;
    sparse::DropbackOptimizer opt(cfg);
    const double sparse_acc =
        trainNetwork(sparse_net, opt, train, val, tc)
            .back()
            .valAccuracy;

    EXPECT_GT(sparse_acc, dense_acc - 0.12);
}

} // namespace
} // namespace procrustes
