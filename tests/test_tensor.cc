/**
 * @file
 * Unit tests for the dense tensor substrate.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace procrustes {
namespace {

TEST(Shape, BasicProperties)
{
    const Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s[0], 2);
    EXPECT_EQ(s[1], 3);
    EXPECT_EQ(s[2], 4);
    EXPECT_EQ(s.numel(), 24);
    EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, ScalarShape)
{
    const Shape s;
    EXPECT_EQ(s.rank(), 0);
    EXPECT_EQ(s.numel(), 1);
}

TEST(Tensor, ZeroInitialized)
{
    const Tensor t(Shape{3, 3});
    EXPECT_EQ(t.numel(), 9);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, MultiDimIndexingIsRowMajor)
{
    Tensor t(Shape{2, 3});
    t(1, 2) = 5.0f;
    EXPECT_EQ(t.at(1 * 3 + 2), 5.0f);
    t(0, 1) = 2.0f;
    EXPECT_EQ(t.at(1), 2.0f);
}

TEST(Tensor, OutOfRangeIndexDies)
{
    Tensor t(Shape{2, 2});
    EXPECT_DEATH(t(2, 0), "out of range");
    EXPECT_DEATH(t(0, 0, 0), "rank mismatch");
}

TEST(Tensor, FillAndZeroFraction)
{
    Tensor t(Shape{10});
    EXPECT_DOUBLE_EQ(t.zeroFraction(), 1.0);
    t.fill(2.0f);
    EXPECT_DOUBLE_EQ(t.zeroFraction(), 0.0);
    t.at(0) = 0.0f;
    t.at(1) = 0.0f;
    EXPECT_DOUBLE_EQ(t.zeroFraction(), 0.2);
    EXPECT_DOUBLE_EQ(t.sum(), 16.0);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t(Shape{2, 6});
    t(1, 3) = 7.0f;
    t.reshape(Shape{3, 4});
    EXPECT_EQ(t(2, 1), 7.0f);   // flat index 9 in both layouts
    EXPECT_DEATH(t.reshape(Shape{5, 5}), "element count");
}

TEST(Tensor, GaussianFillMoments)
{
    Xorshift128Plus rng(3);
    Tensor t(Shape{100, 100});
    t.fillGaussian(rng, 2.0f);
    const double m = t.sum() / t.numel();
    double sq = 0.0;
    for (int64_t i = 0; i < t.numel(); ++i)
        sq += t.at(i) * t.at(i);
    EXPECT_NEAR(m, 0.0, 0.05);
    EXPECT_NEAR(sq / t.numel(), 4.0, 0.15);
}

TEST(Tensor, UniformFillRange)
{
    Xorshift128Plus rng(3);
    Tensor t(Shape{1000});
    t.fillUniform(rng, -1.0f, 1.0f);
    for (int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_GE(t.at(i), -1.0f);
        EXPECT_LT(t.at(i), 1.0f);
    }
}

TEST(TensorOps, AddInPlace)
{
    Tensor a(Shape{4});
    Tensor b(Shape{4});
    a.fill(1.0f);
    b.fill(2.5f);
    addInPlace(a, b);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(a.at(i), 3.5f);
}

TEST(TensorOps, ShapeMismatchDies)
{
    Tensor a(Shape{4});
    Tensor b(Shape{5});
    EXPECT_DEATH(addInPlace(a, b), "shape mismatch");
}

TEST(TensorOps, ScaleInPlace)
{
    Tensor a(Shape{3});
    a.fill(2.0f);
    scaleInPlace(a, -0.5f);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(a.at(i), -1.0f);
}

TEST(TensorOps, MaxAbsDiff)
{
    Tensor a(Shape{3});
    Tensor b(Shape{3});
    a.at(1) = 1.0f;
    b.at(1) = -2.0f;
    EXPECT_FLOAT_EQ(maxAbsDiff(a, b), 3.0f);
    EXPECT_FLOAT_EQ(maxAbsDiff(a, a), 0.0f);
}

} // namespace
} // namespace procrustes
