/**
 * @file
 * Bitwise parity tests between the scalar and AVX2 sparse microkernel
 * levels (kernels/sparse_microkernels.h), driven through the five CSB
 * executors they serve. The SIMD kernels' contract is *bitwise*
 * equality with the scalar reference — not closeness — so every
 * comparison here is an exact memcmp over the output bits plus exact
 * equality of the executed-MAC tallies. Shapes are deliberately ragged
 * (output widths and batch sizes that are not multiples of 8) so the
 * masked tails and the tiled/tail sample split are always exercised.
 *
 * All AVX2-dependent tests skip on hosts/builds without AVX2; the
 * scalar level is what the rest of the suite runs in that case.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "kernels/sparse_microkernels.h"
#include "sparse/mask.h"
#include "sparse/sparse_conv.h"
#include "sparse/sparse_linear.h"

namespace procrustes {
namespace sparse {
namespace {

/** Restores the dispatch level active at construction on exit. */
struct SimdLevelGuard
{
    kernels::SimdLevel saved = kernels::activeSimdLevel();
    ~SimdLevelGuard() { kernels::setSimdLevel(saved); }
};

/** Restores the process-wide pool to its env-resolved size on exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard() { ThreadPool::resetGlobal(0); }
};

/** Exact bit equality — distinguishes +0 from -0, unlike maxAbsDiff. */
bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(std::as_const(a).data(), std::as_const(b).data(),
                       sizeof(float) * a.numel()) == 0;
}

/** Masked random filters at a given density. */
Tensor
maskedFilters(int64_t k, int64_t c, int64_t kernel, double density,
              uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{k, c, kernel, kernel});
    w.fillGaussian(rng, 0.5f);
    if (density >= 1.0)
        return w;
    SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed + 1;
    const SparsityMask m = makeSyntheticMask(k, c, kernel, kernel, cfg);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w.at(i) = 0.0f;
    }
    return w;
}

/** Masked random [O, I] weight matrix at a given density. */
Tensor
maskedMatrix(int64_t o_ext, int64_t i_ext, double density, uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{o_ext, i_ext});
    w.fillGaussian(rng, 0.5f);
    if (density >= 1.0)
        return w;
    SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed + 1;
    const SparsityMask m = makeSyntheticMask(o_ext, i_ext, 1, 1, cfg);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w.at(i) = 0.0f;
    }
    return w;
}

/** Zero out a deterministic fraction of a tensor (ReLU-like zeros). */
void
zeroSome(Tensor *t, uint64_t seed, double zero_fraction)
{
    Xorshift128Plus rng(seed);
    for (int64_t i = 0; i < t->numel(); ++i) {
        if (static_cast<double>(rng.next() % 1000) <
            zero_fraction * 1000.0)
            t->at(i) = 0.0f;
    }
}

/** Everything the three conv executors produce for one input. */
struct ConvRun
{
    Tensor y, dx, dw;
    int64_t fw = -1, bwd = -1, bww = -1;
};

ConvRun
runConvPhases(const Tensor &w, const Tensor &x, const Tensor &dy,
              int64_t stride, int64_t pad)
{
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const Shape &xs = x.shape();
    const kernels::ConvTapPack pack =
        kernels::packConvTaps(csb, xs[2], xs[3], stride, pad);
    ConvRun out;
    out.y = sparseConvForward(x, csb, stride, pad, &out.fw, &pack);
    out.dx = sparseConvBackwardData(dy, csb, xs, stride, pad, &out.bwd,
                                    &pack);
    out.dw = Tensor(w.shape());
    sparseConvBackwardWeights(x, dy, csb, stride, pad, &out.dw,
                              &out.bww, &pack);
    return out;
}

struct ParityCase
{
    double density;
};

class SimdParity : public ::testing::TestWithParam<ParityCase>
{
  protected:
    void
    SetUp() override
    {
        if (!kernels::avx2Supported())
            GTEST_SKIP() << "no AVX2 on this build/host";
    }
};

TEST_P(SimdParity, ConvPhasesBitwiseEqualScalarOnRaggedShapes)
{
    SimdLevelGuard guard;
    const double density = GetParam().density;

    // Two ragged geometries: q_ext = 11 (8 + 3 tail) at stride 1 and
    // q_ext = 7 (tail-only, gather path) at stride 2.
    struct Geom
    {
        int64_t c, k, h, w, stride, pad;
    };
    const Geom geoms[] = {{3, 5, 9, 11, 1, 1}, {4, 6, 10, 13, 2, 1}};
    uint64_t seed = 1000;
    for (const Geom &g : geoms) {
        const Tensor w = maskedFilters(g.k, g.c, 3, density, ++seed);
        Xorshift128Plus rng(seed * 3);
        Tensor x(Shape{2, g.c, g.h, g.w});
        x.fillGaussian(rng, 1.0f);
        zeroSome(&x, seed * 5, 0.5);
        const int64_t p_ext = (g.h + 2 * g.pad - 3) / g.stride + 1;
        const int64_t q_ext = (g.w + 2 * g.pad - 3) / g.stride + 1;
        Tensor dy(Shape{2, g.k, p_ext, q_ext});
        dy.fillGaussian(rng, 1.0f);
        zeroSome(&dy, seed * 7, 0.5);

        kernels::setSimdLevel(kernels::SimdLevel::kScalar);
        const ConvRun ref = runConvPhases(w, x, dy, g.stride, g.pad);
        kernels::setSimdLevel(kernels::SimdLevel::kAvx2);
        const ConvRun got = runConvPhases(w, x, dy, g.stride, g.pad);

        EXPECT_TRUE(bitwiseEqual(got.y, ref.y))
            << "y density=" << density << " W=" << g.w;
        EXPECT_TRUE(bitwiseEqual(got.dx, ref.dx))
            << "dx density=" << density << " W=" << g.w;
        EXPECT_TRUE(bitwiseEqual(got.dw, ref.dw))
            << "dw density=" << density << " W=" << g.w;
        EXPECT_EQ(got.fw, ref.fw);
        EXPECT_EQ(got.bwd, ref.bwd);
        EXPECT_EQ(got.bww, ref.bww);
    }
}

TEST_P(SimdParity, FcPhasesBitwiseEqualScalarOnRaggedBatch)
{
    SimdLevelGuard guard;
    const double density = GetParam().density;

    // Batch 13 = one 8-sample tile + 5 tail samples; 37 and 29 leave
    // ragged CSB edge blocks.
    const int64_t n = 13, i_ext = 37, o_ext = 29;
    const Tensor w = maskedMatrix(o_ext, i_ext, density, 2000);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, 8);
    const FcTapViews views = gatherFcTapViews(csb);

    Xorshift128Plus rng(2003);
    Tensor x(Shape{n, i_ext});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 2005, 0.5);
    Tensor dy(Shape{n, o_ext});
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 2007, 0.5);

    auto run = [&](kernels::SimdLevel level) {
        kernels::setSimdLevel(level);
        ConvRun out;   // reuse the y/dx/dw + tallies container
        out.y = sparseLinearForward(x, csb, &out.fw, &views);
        out.dx = sparseLinearBackwardData(dy, csb, &out.bwd, &views);
        out.dw = Tensor(w.shape());
        sparseLinearBackwardWeights(x, dy, csb, &out.dw, &out.bww,
                                    &views);
        return out;
    };
    const ConvRun ref = run(kernels::SimdLevel::kScalar);
    const ConvRun got = run(kernels::SimdLevel::kAvx2);

    EXPECT_TRUE(bitwiseEqual(got.y, ref.y)) << "density=" << density;
    EXPECT_TRUE(bitwiseEqual(got.dx, ref.dx)) << "density=" << density;
    EXPECT_TRUE(bitwiseEqual(got.dw, ref.dw)) << "density=" << density;
    EXPECT_EQ(got.fw, ref.fw);
    EXPECT_EQ(got.bwd, ref.bwd);
    EXPECT_EQ(got.bww, ref.bww);
}

// 0%, 50%, 80%, and 95% weight sparsity.
INSTANTIATE_TEST_SUITE_P(Densities, SimdParity,
                         ::testing::Values(ParityCase{1.0},
                                           ParityCase{0.5},
                                           ParityCase{0.2},
                                           ParityCase{0.05}));

TEST(SimdParityThreads, Avx2ExecutorsBitwiseInvariantAcrossThreadCounts)
{
    // The AVX2 level must be thread-count invariant on its own terms:
    // the tiled/tail sample split moves with the parallelFor chunk
    // boundaries, so this catches any arithmetic that differs between
    // the tile and row kernels.
    if (!kernels::avx2Supported())
        GTEST_SKIP() << "no AVX2 on this build/host";
    SimdLevelGuard simd_guard;
    GlobalPoolGuard pool_guard;
    kernels::setSimdLevel(kernels::SimdLevel::kAvx2);

    const int64_t n = 13, i_ext = 37, o_ext = 29;
    const Tensor w = maskedMatrix(o_ext, i_ext, 0.3, 3001);
    const Tensor wc = maskedFilters(5, 3, 3, 0.3, 3003);
    Xorshift128Plus rng(3005);
    Tensor x(Shape{n, i_ext});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 3007, 0.5);
    Tensor dy(Shape{n, o_ext});
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 3011, 0.5);
    Tensor xc(Shape{3, 3, 9, 11});
    xc.fillGaussian(rng, 1.0f);
    Tensor dyc(Shape{3, 5, 9, 11});
    dyc.fillGaussian(rng, 1.0f);
    zeroSome(&dyc, 3013, 0.5);

    Tensor ref_y, ref_dx, ref_dw, ref_cy, ref_cdx, ref_cdw;
    for (int threads : {1, 2, 3, 8}) {
        ThreadPool::resetGlobal(threads);
        const CsbTensor csb = CsbTensor::encodeMatrix(w, 8);
        const Tensor y = sparseLinearForward(x, csb);
        const Tensor dxt = sparseLinearBackwardData(dy, csb);
        Tensor dw(w.shape());
        sparseLinearBackwardWeights(x, dy, csb, &dw);
        const ConvRun conv = runConvPhases(wc, xc, dyc, 1, 1);
        if (threads == 1) {
            ref_y = y;
            ref_dx = dxt;
            ref_dw = std::move(dw);
            ref_cy = conv.y;
            ref_cdx = conv.dx;
            ref_cdw = conv.dw;
            continue;
        }
        EXPECT_TRUE(bitwiseEqual(y, ref_y)) << threads;
        EXPECT_TRUE(bitwiseEqual(dxt, ref_dx)) << threads;
        EXPECT_TRUE(bitwiseEqual(dw, ref_dw)) << threads;
        EXPECT_TRUE(bitwiseEqual(conv.y, ref_cy)) << threads;
        EXPECT_TRUE(bitwiseEqual(conv.dx, ref_cdx)) << threads;
        EXPECT_TRUE(bitwiseEqual(conv.dw, ref_cdw)) << threads;
    }
}

TEST(SimdDispatch, LevelNameAndOverrideRoundTrip)
{
    SimdLevelGuard guard;
    EXPECT_STREQ(kernels::simdLevelName(kernels::SimdLevel::kScalar),
                 "scalar");
    EXPECT_STREQ(kernels::simdLevelName(kernels::SimdLevel::kAvx2),
                 "avx2");
    kernels::setSimdLevel(kernels::SimdLevel::kScalar);
    EXPECT_EQ(kernels::activeSimdLevel(), kernels::SimdLevel::kScalar);
    if (kernels::avx2Supported()) {
        kernels::setSimdLevel(kernels::SimdLevel::kAvx2);
        EXPECT_EQ(kernels::activeSimdLevel(),
                  kernels::SimdLevel::kAvx2);
    }
}

} // namespace
} // namespace sparse
} // namespace procrustes
