/**
 * @file
 * Tests for the measured-workload telemetry pipeline: layer step
 * reports, the trainNetwork observer hook, WorkloadTrace aggregation,
 * measured LayerSparsityProfiles, trace-driven accelerator evaluation,
 * and end-to-end backend parity (gemm vs CSB sparse under a fully
 * dense mask must train identically).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arch/accelerator.h"
#include "arch/workload_trace.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sparse/csb.h"
#include "sparse/mask.h"

namespace procrustes {
namespace {

/** Small conv/bn/relu/fc network on a chosen conv backend. */
void
buildNet(nn::Network &net, kernels::KernelBackend backend, uint64_t seed)
{
    nn::Conv2dConfig c1;
    c1.inChannels = 3;
    c1.outChannels = 8;
    c1.kernel = 3;
    c1.pad = 1;
    c1.bias = false;
    nn::Conv2d *conv1 = net.add<nn::Conv2d>(c1, "conv1");
    conv1->setBackend(backend);
    net.add<nn::BatchNorm2d>(8, "bn1");
    net.add<nn::ReLU>("relu1");
    net.add<nn::MaxPool2d>(2, "pool1");
    nn::Conv2dConfig c2;
    c2.inChannels = 8;
    c2.outChannels = 12;
    c2.kernel = 3;
    c2.pad = 1;
    c2.bias = false;
    nn::Conv2d *conv2 = net.add<nn::Conv2d>(c2, "conv2");
    conv2->setBackend(backend);
    net.add<nn::BatchNorm2d>(12, "bn2");
    net.add<nn::ReLU>("relu2");
    net.add<nn::GlobalAvgPool>("gap");
    net.add<nn::Linear>(12, 4, "fc");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

std::pair<nn::Dataset, nn::Dataset>
blobSplits()
{
    nn::BlobImageConfig cfg;
    cfg.numClasses = 4;
    cfg.samplesPerClass = 12;
    const nn::Dataset train = nn::makeBlobImages(cfg);
    cfg.sampleSeed = 77;
    const nn::Dataset val = nn::makeBlobImages(cfg);
    return {train, val};
}

TEST(StepObserver, DeliversPerStepReportsInLayerOrder)
{
    nn::Network net;
    buildNet(net, kernels::KernelBackend::kSparse, 5);
    auto splits = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batchSize = 8;
    nn::Sgd opt(0.05f);

    std::vector<nn::StepTelemetry> seen;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 [&seen](const nn::StepTelemetry &t) {
                     seen.push_back(t);
                 });

    const int64_t batches_per_epoch = splits.first.size() / tc.batchSize;
    ASSERT_EQ(static_cast<int64_t>(seen.size()),
              tc.epochs * batches_per_epoch);
    EXPECT_EQ(seen.front().epoch, 0);
    EXPECT_EQ(seen.back().epoch, tc.epochs - 1);
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i].step, static_cast<int64_t>(i));

    // conv1, relu1, conv2, relu2, fc report; bn / pool layers do not.
    const auto &reports = seen.front().reports;
    ASSERT_EQ(reports.size(), 5u);
    EXPECT_EQ(reports[0].layerName, "conv1");
    EXPECT_EQ(reports[0].kind, nn::LayerStepReport::Kind::Conv);
    EXPECT_EQ(reports[1].kind, nn::LayerStepReport::Kind::Activation);
    EXPECT_EQ(reports[2].layerName, "conv2");
    EXPECT_EQ(reports[4].layerName, "fc");
    EXPECT_EQ(reports[4].kind, nn::LayerStepReport::Kind::Linear);

    // Conv geometry must describe the real run.
    const nn::LayerStepReport &c1 = reports[0];
    EXPECT_EQ(c1.batch, 8);
    EXPECT_EQ(c1.K, 8);
    EXPECT_EQ(c1.C, 3);
    EXPECT_EQ(c1.R, 3);
    EXPECT_EQ(c1.P, 12);   // blob images are 12x12, pad 1 stride 1
    EXPECT_TRUE(c1.hasMacs);
    EXPECT_TRUE(c1.sparseExecuted);
    EXPECT_TRUE(c1.hasMask);
    EXPECT_GT(c1.fwMacs, 0);
    EXPECT_GT(c1.bwDataMacs, 0);
    EXPECT_GT(c1.bwWeightMacs, 0);

    // conv2 sits behind relu1/pool1, so its input has measured zeros
    // and its x-skipping weight-update executor must do fewer MACs
    // than its dy-dense forward would suggest.
    const nn::LayerStepReport &c2 = reports[2];
    EXPECT_LT(c2.inputDensity, 1.0);
    EXPECT_GT(c2.inputDensity, 0.0);
    EXPECT_LT(c2.bwWeightMacs, c2.fwMacs);
    ASSERT_EQ(c2.inputChannelDensity.size(), 8u);
    ASSERT_EQ(c2.inputSampleDensity.size(), 8u);
    ASSERT_EQ(c2.inputSampleHalfDensity.size(), 16u);
    for (size_t n = 0; n < c2.inputSampleDensity.size(); ++n) {
        EXPECT_NEAR(c2.inputSampleHalfDensity[n * 2] +
                        c2.inputSampleHalfDensity[n * 2 + 1],
                    c2.inputSampleDensity[n], 1e-12);
    }

    // The fc layer stays on the default gemm backend here (buildNet
    // switches only the convs), so it reports honest dense MACs and
    // must not claim sparse execution.
    const nn::LayerStepReport &fc = reports[4];
    EXPECT_FALSE(fc.sparseExecuted);
    EXPECT_EQ(fc.fwMacs, 8 * 12 * 4);
    EXPECT_EQ(fc.bwDataMacs, fc.fwMacs);
    EXPECT_EQ(fc.bwWeightMacs, fc.fwMacs);
}

TEST(StepObserver, SparseFcReportsMeasuredSkippedMacs)
{
    // With the fc layer on the CSB backend and some of its weights
    // pruned, its report must carry the executors' measured tallies:
    // strictly below dense in every phase (the mask skip), with the
    // backward phases additionally under the forward count (operand
    // zeros: dy carries softmax gradients — dense — but the
    // GlobalAvgPool input behind two ReLUs has measured zeros).
    nn::Network net;
    buildNet(net, kernels::KernelBackend::kSparse, 19);
    auto *fc_layer = dynamic_cast<nn::Linear *>(
        net.layer(net.size() - 1));
    ASSERT_NE(fc_layer, nullptr);
    fc_layer->setBackend(kernels::KernelBackend::kSparse);
    Tensor &w = fc_layer->weight().value;
    for (int64_t i = 0; i < w.numel(); i += 2)
        w.at(i) = 0.0f;   // 50% fc sparsity

    auto splits = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batchSize = 8;
    nn::Sgd opt(0.01f);
    std::vector<nn::StepTelemetry> seen;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 [&seen](const nn::StepTelemetry &t) {
                     seen.push_back(t);
                 });
    ASSERT_FALSE(seen.empty());

    const nn::LayerStepReport &fc = seen.front().reports.back();
    ASSERT_EQ(fc.kind, nn::LayerStepReport::Kind::Linear);
    EXPECT_TRUE(fc.hasMacs);
    EXPECT_TRUE(fc.sparseExecuted);
    const int64_t dense = fc.batch * fc.K * fc.C;
    EXPECT_GT(fc.fwMacs, 0);
    EXPECT_LT(fc.fwMacs, dense);
    EXPECT_GT(fc.bwDataMacs, 0);
    EXPECT_LT(fc.bwDataMacs, dense);
    EXPECT_GT(fc.bwWeightMacs, 0);
    EXPECT_LE(fc.bwWeightMacs, fc.fwMacs);
    // Half the weights are pruned and frozen: the fc mask must still
    // be ~50% dense after the step (kSparse gives pruned weights no
    // gradient, so SGD cannot revive them).
    EXPECT_LT(fc.mask.density(), 0.75);
}

TEST(WorkloadTrace, MeasuredMacsOnlyTrustedFromSparseExecutors)
{
    // Synthetic telemetry, full control: one conv layer at weight
    // density 0.5, once traced from a dense backend (dense executed
    // counts, sparseExecuted=false) and once from the CSB executors
    // (distinctive skipped counts, sparseExecuted=true). evaluateTrace
    // must route the former to the modelled density estimate and pass
    // the latter through verbatim.
    sparse::SparsityMask mask = sparse::SparsityMask::dense(8, 4, 3, 3);
    for (size_t i = 0; i < mask.bits.size(); i += 2)
        mask.bits[i] = 0;   // density exactly 0.5

    auto makeTelemetry = [&mask](bool sparse_executed, int64_t macs) {
        nn::StepTelemetry t;
        t.epoch = 0;
        t.step = 0;
        t.batchSize = 4;
        nn::LayerStepReport r;
        r.layerName = "conv";
        r.kind = nn::LayerStepReport::Kind::Conv;
        r.batch = 4;
        r.K = 8;
        r.C = 4;
        r.R = 3;
        r.S = 3;
        r.P = 10;
        r.Q = 10;
        r.hasMacs = true;
        r.sparseExecuted = sparse_executed;
        r.fwMacs = macs;
        r.bwDataMacs = macs;
        r.bwWeightMacs = macs;
        r.hasMask = true;
        r.mask = mask;
        r.inputDensity = 1.0;
        t.reports.push_back(std::move(r));
        return t;
    };
    const int64_t dense_macs = 4 * 8 * 4 * 3 * 3 * 10 * 10;
    const arch::Accelerator acc = arch::Accelerator::procrustes();

    arch::WorkloadTrace dense_trace;
    dense_trace.observe(makeTelemetry(false, dense_macs));
    EXPECT_FALSE(dense_trace.epoch(0).layers[0].sparseExecuted);
    const arch::NetworkCost dense_traced =
        acc.evaluateTrace(dense_trace, 0);
    // Modelled estimate: dense * weight density 0.5, not the dense
    // executed count.
    EXPECT_NEAR(dense_traced.fw.macs, 0.5 * dense_macs,
                1e-6 * dense_macs);

    arch::WorkloadTrace sparse_trace;
    const int64_t skipped_macs = 123456;
    sparse_trace.observe(makeTelemetry(true, skipped_macs));
    EXPECT_TRUE(sparse_trace.epoch(0).layers[0].sparseExecuted);
    const arch::NetworkCost sparse_traced =
        acc.evaluateTrace(sparse_trace, 0);
    EXPECT_DOUBLE_EQ(sparse_traced.fw.macs,
                     static_cast<double>(skipped_macs));
}

TEST(WorkloadTrace, MeasuredFcMacsFlowIntoTraceDrivenEvaluation)
{
    // Same routing contract as the conv test above, for fc layers:
    // a Linear traced from the CSB executors (sparseExecuted=true)
    // must have its measured counts consumed verbatim by
    // evaluateTrace on a sparse config, while a dense-traced fc and
    // the dense baseline keep the modelled estimate.
    sparse::SparsityMask mask = sparse::SparsityMask::dense(16, 32, 1, 1);
    for (size_t i = 0; i < mask.bits.size(); i += 2)
        mask.bits[i] = 0;   // density exactly 0.5

    auto makeTelemetry = [&mask](bool sparse_executed, int64_t macs) {
        nn::StepTelemetry t;
        t.epoch = 0;
        t.step = 0;
        t.batchSize = 4;
        nn::LayerStepReport r;
        r.layerName = "fc";
        r.kind = nn::LayerStepReport::Kind::Linear;
        r.batch = 4;
        r.K = 16;
        r.C = 32;
        r.hasMacs = true;
        r.sparseExecuted = sparse_executed;
        r.fwMacs = macs;
        r.bwDataMacs = macs;
        r.bwWeightMacs = macs;
        r.hasMask = true;
        r.mask = mask;
        r.inputDensity = 1.0;
        t.reports.push_back(std::move(r));
        return t;
    };
    const int64_t dense_macs = 4 * 16 * 32;
    const arch::Accelerator acc = arch::Accelerator::procrustes();
    const arch::Accelerator baseline =
        arch::Accelerator::denseBaseline();

    // Dense-traced fc: modelled estimate (dense * weight density).
    arch::WorkloadTrace dense_trace;
    dense_trace.observe(makeTelemetry(false, dense_macs));
    EXPECT_EQ(dense_trace.epoch(0).layers[0].shape.type,
              arch::LayerType::FullyConnected);
    const arch::NetworkCost dense_traced =
        acc.evaluateTrace(dense_trace, 0);
    EXPECT_NEAR(dense_traced.fw.macs, 0.5 * dense_macs,
                1e-6 * dense_macs);

    // Sparse-traced fc: the executors' count, verbatim, in every
    // phase.
    arch::WorkloadTrace sparse_trace;
    const int64_t skipped_macs = 777;
    sparse_trace.observe(makeTelemetry(true, skipped_macs));
    EXPECT_TRUE(sparse_trace.epoch(0).layers[0].sparseExecuted);
    const arch::NetworkCost sparse_traced =
        acc.evaluateTrace(sparse_trace, 0);
    EXPECT_DOUBLE_EQ(sparse_traced.fw.macs,
                     static_cast<double>(skipped_macs));
    EXPECT_DOUBLE_EQ(sparse_traced.bw.macs,
                     static_cast<double>(skipped_macs));
    EXPECT_DOUBLE_EQ(sparse_traced.wu.macs,
                     static_cast<double>(skipped_macs));

    // The dense baseline never uses measured counts, whatever the
    // trace says.
    const arch::NetworkCost baseline_traced =
        baseline.evaluateTrace(sparse_trace, 0);
    EXPECT_NE(baseline_traced.fw.macs,
              static_cast<double>(skipped_macs));
}

TEST(WorkloadTrace, RecordsEpochFinalCompressedWeightBytes)
{
    // Synthetic telemetry: the compressed/dense weight footprints are
    // last-writer-wins per epoch (like the mask) and sum across
    // layers in the epoch summary.
    sparse::SparsityMask mask = sparse::SparsityMask::dense(2, 2, 3, 3);
    auto makeTelemetry = [&mask](int64_t step, int64_t csb_bytes) {
        nn::StepTelemetry t;
        t.epoch = 0;
        t.step = step;
        t.batchSize = 4;
        nn::LayerStepReport r;
        r.layerName = "conv";
        r.kind = nn::LayerStepReport::Kind::Conv;
        r.batch = 4;
        r.K = 2;
        r.C = 2;
        r.R = 3;
        r.S = 3;
        r.P = 4;
        r.Q = 4;
        r.hasMacs = true;
        r.sparseExecuted = true;
        r.fwMacs = 10;
        r.bwDataMacs = 10;
        r.bwWeightMacs = 10;
        r.hasMask = true;
        r.mask = mask;
        r.hasWeightBytes = true;
        r.csbWeightBytes = csb_bytes;
        r.denseWeightBytes = 2 * 2 * 3 * 3 * 4;
        t.reports.push_back(std::move(r));
        return t;
    };
    arch::WorkloadTrace trace;
    trace.observe(makeTelemetry(0, 100));
    trace.observe(makeTelemetry(1, 80));   // pruning shrank the encode
    const arch::EpochTrace &e = trace.epoch(0);
    EXPECT_EQ(e.layers[0].csbWeightBytes, 80);   // epoch-final value
    EXPECT_EQ(e.layers[0].denseWeightBytes, 2 * 2 * 3 * 3 * 4);
    EXPECT_EQ(e.totalCsbWeightBytes(), 80);
    EXPECT_EQ(e.totalDenseWeightBytes(), 2 * 2 * 3 * 3 * 4);
}

TEST(WorkloadTrace, MeasuredCompressedBytesMatchFinalWeightEncode)
{
    // End to end: after a pruned sparse training run, the last
    // epoch's recorded footprint must equal a fresh CSB encode of the
    // network's final weights — same mask snapshot, same byte count.
    nn::Network net;
    buildNet(net, kernels::KernelBackend::kSparse, 23);
    auto *fc_layer = dynamic_cast<nn::Linear *>(
        net.layer(net.size() - 1));
    ASSERT_NE(fc_layer, nullptr);
    fc_layer->setBackend(kernels::KernelBackend::kSparse);
    // Prune half of every trainable layer so compression has bite.
    for (size_t i = 0; i < net.size(); ++i) {
        nn::Layer *l = net.layer(i);
        Tensor *w = nullptr;
        if (auto *conv = dynamic_cast<nn::Conv2d *>(l))
            w = &conv->weight().value;
        else if (auto *fc = dynamic_cast<nn::Linear *>(l))
            w = &fc->weight().value;
        if (!w)
            continue;
        for (int64_t j = 0; j < w->numel(); j += 2)
            w->at(j) = 0.0f;
    }

    auto splits = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batchSize = 8;
    nn::Sgd opt(0.05f);
    arch::WorkloadTrace trace;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 trace.observer());

    const arch::EpochTrace &last = trace.lastEpoch();
    ASSERT_EQ(last.layers.size(), 3u);   // conv1, conv2, fc
    int64_t expect_csb = 0;
    int64_t expect_dense = 0;
    for (size_t i = 0; i < net.size(); ++i) {
        nn::Layer *l = net.layer(i);
        if (auto *conv = dynamic_cast<nn::Conv2d *>(l)) {
            expect_csb += sparse::CsbTensor::encodeConvFilters(
                              conv->weight().value)
                              .totalBytes();
            expect_dense += sparse::CsbTensor::denseBytes(
                conv->weight().value.shape());
        } else if (auto *fc = dynamic_cast<nn::Linear *>(l)) {
            expect_csb += sparse::CsbTensor::encodeMatrix(
                              fc->weight().value,
                              nn::Linear::kCsbBlockSide)
                              .totalBytes();
            expect_dense += sparse::CsbTensor::denseBytes(
                fc->weight().value.shape());
        }
    }
    EXPECT_EQ(last.totalCsbWeightBytes(), expect_csb);
    EXPECT_EQ(last.totalDenseWeightBytes(), expect_dense);
    // Half-pruned weights must actually compress below dense storage.
    EXPECT_LT(last.totalCsbWeightBytes(), last.totalDenseWeightBytes());
}

TEST(WorkloadTrace, AggregatesEpochsAndBuildsMeasuredModel)
{
    nn::Network net;
    buildNet(net, kernels::KernelBackend::kSparse, 7);
    auto splits = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batchSize = 8;
    nn::Sgd opt(0.05f);

    arch::WorkloadTrace trace;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 trace.observer());

    ASSERT_EQ(trace.epochCount(), 3u);
    const arch::EpochTrace &e0 = trace.epoch(0);
    EXPECT_EQ(e0.epoch, 0);
    EXPECT_EQ(e0.batchSize, 8);
    EXPECT_EQ(e0.steps, splits.first.size() / tc.batchSize);
    ASSERT_EQ(e0.layers.size(), 3u);   // conv1, conv2, fc
    EXPECT_EQ(e0.layers[0].name, "conv1");
    EXPECT_EQ(e0.layers[2].shape.type,
              arch::LayerType::FullyConnected);
    EXPECT_GT(e0.totalMacsPerStep(), 0.0);
    EXPECT_GT(e0.meanLoss, 0.0);

    const arch::NetworkModel model = trace.networkModel(0);
    ASSERT_EQ(model.layers.size(), 3u);
    EXPECT_EQ(model.layers[0].K, 8);
    EXPECT_EQ(model.layers[0].P, 12);
    EXPECT_EQ(model.layers[1].C, 8);
    // conv2's measured input density (post-ReLU) must be genuinely
    // sparse and must flow into the model.
    EXPECT_LT(model.iactDensity[1], 1.0);
    EXPECT_GT(model.iactDensity[1], 0.0);

    // Rank-4 inputs carry spatial marginals sized to the input extent
    // (12x12 images, pooled to 6x6 before conv2); the fc input is
    // rank-2 and has none.
    EXPECT_EQ(e0.layers[0].iacts.perRow.size(), 12u);
    EXPECT_EQ(e0.layers[0].iacts.perCol.size(), 12u);
    EXPECT_EQ(e0.layers[1].iacts.perRow.size(), 6u);
    EXPECT_EQ(e0.layers[1].iacts.perCol.size(), 6u);
    EXPECT_TRUE(e0.layers[2].iacts.perRow.empty());
    EXPECT_TRUE(e0.layers[2].iacts.perCol.empty());
}

TEST(WorkloadTrace, TraceProfileMatchesHandBuiltOnFixedMask)
{
    // Zero a fixed pattern into conv1's weights; under the kSparse
    // backend pruned weights get no gradient, so the mask is stable
    // across the whole run and the trace's profile must agree with a
    // hand-built profile over the same mask.
    nn::Network net;
    buildNet(net, kernels::KernelBackend::kSparse, 11);
    auto *conv1 = dynamic_cast<nn::Conv2d *>(net.layer(0));
    ASSERT_NE(conv1, nullptr);
    Tensor &w = conv1->weight().value;
    for (int64_t i = 0; i < w.numel(); i += 3)
        w.at(i) = 0.0f;
    const sparse::SparsityMask expect_mask =
        sparse::SparsityMask::fromTensor(w);

    auto splits = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batchSize = 8;
    nn::Sgd opt(0.01f);
    arch::WorkloadTrace trace;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 trace.observer());

    const arch::LayerTrace &lt = trace.epoch(0).layers[0];
    ASSERT_EQ(lt.mask.numel(), expect_mask.numel());
    for (int64_t i = 0; i < expect_mask.numel(); ++i)
        ASSERT_EQ(lt.mask.bits[static_cast<size_t>(i)],
                  expect_mask.bits[static_cast<size_t>(i)])
            << i;

    const auto profiles = trace.profiles(0);
    const arch::LayerSparsityProfile hand(expect_mask,
                                          lt.iacts.mean,
                                          /*iact_sigma=*/0.0);
    const arch::LayerSparsityProfile &measured = profiles[0];
    EXPECT_TRUE(measured.isMeasured());
    EXPECT_DOUBLE_EQ(measured.weightDensity(), hand.weightDensity());
    for (int64_t k = 0; k < expect_mask.K; ++k) {
        EXPECT_DOUBLE_EQ(measured.kDensity(k), hand.kDensity(k));
        EXPECT_DOUBLE_EQ(measured.kHalfDensity(k, 0),
                         hand.kHalfDensity(k, 0));
    }
    for (int64_t c = 0; c < expect_mask.C; ++c)
        EXPECT_DOUBLE_EQ(measured.cDensity(c), hand.cDensity(c));
    for (int64_t k = 0; k < expect_mask.K; ++k) {
        for (int64_t c = 0; c < expect_mask.C; ++c)
            EXPECT_DOUBLE_EQ(measured.kernelDensity(k, c),
                             hand.kernelDensity(k, c));
    }
}

TEST(MeasuredProfile, UsesMeasurementsNotJitter)
{
    sparse::SparsityMask mask = sparse::SparsityMask::dense(4, 4, 3, 3);
    arch::MeasuredIactStats st;
    st.mean = 0.5;
    st.perSample = {0.4, 0.6, 0.5, 0.5};
    st.perSampleHalf = {0.1, 0.3, 0.3, 0.3, 0.25, 0.25, 0.2, 0.3};
    st.perChannel = {0.45, 0.55, 0.5, 0.5};
    const auto p = arch::LayerSparsityProfile::measured(mask, st);

    EXPECT_TRUE(p.isMeasured());
    EXPECT_DOUBLE_EQ(p.iactDensity(), 0.5);
    EXPECT_DOUBLE_EQ(p.iactSampleDensity(0), 0.4);
    EXPECT_DOUBLE_EQ(p.iactSampleDensity(1), 0.6);
    EXPECT_DOUBLE_EQ(p.iactSampleDensity(4), 0.4);   // wraps
    EXPECT_DOUBLE_EQ(p.iactSampleHalfDensity(0, 0), 0.1);
    EXPECT_DOUBLE_EQ(p.iactSampleHalfDensity(0, 1), 0.3);
    EXPECT_DOUBLE_EQ(p.iactChannelDensity(1), 0.55);
    // No spatial measurement exists: spatial queries return the mean,
    // identically for every location (no hash jitter).
    EXPECT_DOUBLE_EQ(p.iactSpatialDensity(0, 0),
                     p.iactSpatialDensity(7, 3));

    // A synthetic profile with the same mean disagrees location to
    // location (that is the jitter being replaced).
    const arch::LayerSparsityProfile synthetic(mask, 0.5, 0.1);
    EXPECT_NE(synthetic.iactSampleDensity(0),
              synthetic.iactSampleDensity(1));
}

TEST(MeasuredProfile, SpatialQueriesMapOntoMarginalsThroughStride)
{
    sparse::SparsityMask mask = sparse::SparsityMask::dense(4, 4, 3, 3);
    arch::MeasuredIactStats st;
    st.mean = 0.5;
    st.perRow = {0.2, 0.8, 0.5, 0.5};    // input rows, H = 4
    st.perCol = {0.5, 0.5, 0.4, 0.6};    // input cols, W = 4
    const auto p =
        arch::LayerSparsityProfile::measured(mask, st, /*stride=*/2);

    // Output (p, q) reads input (p * stride, q * stride), ratio-
    // combined as row * col / mean.
    EXPECT_DOUBLE_EQ(p.iactSpatialDensity(0, 0), 0.2 * 0.5 / 0.5);
    EXPECT_DOUBLE_EQ(p.iactSpatialDensity(0, 1), 0.2 * 0.4 / 0.5);
    // Order matters: (p, q) is (row, col), not interchangeable.
    EXPECT_NE(p.iactSpatialDensity(0, 1), p.iactSpatialDensity(1, 0));
    // Past the measured extent the query clamps to the last slot:
    // outputs (2, 2) and (9, 9) both read input (3, 3).
    EXPECT_DOUBLE_EQ(p.iactSpatialDensity(9, 9),
                     p.iactSpatialDensity(2, 2));
    EXPECT_DOUBLE_EQ(p.iactSpatialDensity(9, 9), 0.5 * 0.6 / 0.5);
}

TEST(WorkloadTrace, TraceDrivenAcceleratorTrajectoryIsSane)
{
    nn::Network net;
    buildNet(net, kernels::KernelBackend::kSparse, 13);
    // Prune half of each conv's weights up front so the sparse machine
    // has something to exploit.
    for (size_t i = 0; i < net.size(); ++i) {
        auto *conv = dynamic_cast<nn::Conv2d *>(net.layer(i));
        if (!conv)
            continue;
        Tensor &w = conv->weight().value;
        for (int64_t j = 0; j < w.numel(); j += 2)
            w.at(j) = 0.0f;
    }
    auto splits = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batchSize = 8;
    nn::Sgd opt(0.05f);
    arch::WorkloadTrace trace;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 trace.observer());

    const arch::Accelerator sparse_acc = arch::Accelerator::procrustes();
    const arch::Accelerator dense_acc =
        arch::Accelerator::denseBaseline();
    for (size_t e = 0; e < trace.epochCount(); ++e) {
        const arch::NetworkCost sc = sparse_acc.evaluateTrace(trace, e);
        const arch::NetworkCost dc = dense_acc.evaluateTrace(trace, e);
        EXPECT_GT(sc.totalCycles(), 0.0);
        EXPECT_GT(sc.totalEnergyJ(), 0.0);
        // Half the weights are pruned and activations carry ReLU
        // zeros: the measured-workload Procrustes run must beat the
        // dense baseline on both axes.
        EXPECT_LT(sc.totalCycles(), dc.totalCycles());
        EXPECT_LT(sc.totalEnergyJ(), dc.totalEnergyJ());
        // Measured MACs must also be what the cost rolls up for the
        // conv layers (fc keeps the modelled estimate).
        const arch::EpochTrace &et = trace.epoch(e);
        EXPECT_GT(et.totalMacsPerStep(), 0.0);
    }
}

TEST(WorkloadTrace, RaggedSampleVectorsDropToScalarMean)
{
    // A caller that feeds a short final batch delivers shorter
    // per-sample vectors; per-slot means are then meaningless and must
    // be dropped (profiles fall back to the scalar mean) rather than
    // silently restarted from zero.
    sparse::SparsityMask mask = sparse::SparsityMask::dense(2, 2, 3, 3);
    auto makeTelemetry = [&mask](int64_t step, int64_t batch) {
        nn::StepTelemetry t;
        t.epoch = 0;
        t.step = step;
        t.batchSize = batch;
        nn::LayerStepReport r;
        r.layerName = "conv";
        r.kind = nn::LayerStepReport::Kind::Conv;
        r.batch = batch;
        r.K = 2;
        r.C = 2;
        r.R = 3;
        r.S = 3;
        r.P = 4;
        r.Q = 4;
        r.hasMacs = true;
        r.sparseExecuted = true;
        r.fwMacs = 100;
        r.bwDataMacs = 100;
        r.bwWeightMacs = 100;
        r.hasMask = true;
        r.mask = mask;
        r.inputDensity = 0.5;
        r.inputSampleDensity.assign(static_cast<size_t>(batch), 0.5);
        r.inputSampleHalfDensity.assign(static_cast<size_t>(batch) * 2,
                                        0.25);
        r.inputChannelDensity.assign(2, 0.5);
        t.reports.push_back(std::move(r));
        return t;
    };
    arch::WorkloadTrace trace;
    trace.observe(makeTelemetry(0, 4));
    trace.observe(makeTelemetry(1, 2));   // ragged final batch
    const arch::LayerTrace &l = trace.epoch(0).layers[0];
    EXPECT_TRUE(l.iacts.perSample.empty());
    EXPECT_TRUE(l.iacts.perSampleHalf.empty());
    ASSERT_EQ(l.iacts.perChannel.size(), 2u);   // sizes matched: kept
    EXPECT_DOUBLE_EQ(l.iacts.mean, 0.5);

    const auto p = trace.profiles(0)[0];
    EXPECT_DOUBLE_EQ(p.iactSampleDensity(0), 0.5);   // scalar fallback
}

TEST(WorkloadTrace, MeasuredWeightBytesMoveTraceDrivenTrafficEnergy)
{
    // Acceptance check for the measured-traffic path: two traces that
    // differ only in the recorded compressed footprint must evaluate
    // to different GLB/DRAM energies — the byte count, not the
    // density estimate, is what the traffic terms consume.
    sparse::SparsityMask mask = sparse::SparsityMask::dense(8, 4, 3, 3);
    for (size_t i = 0; i < mask.bits.size(); i += 2)
        mask.bits[i] = 0;   // density exactly 0.5

    auto makeTelemetry = [&mask](int64_t csb_bytes) {
        nn::StepTelemetry t;
        t.epoch = 0;
        t.step = 0;
        t.batchSize = 4;
        nn::LayerStepReport r;
        r.layerName = "conv";
        r.kind = nn::LayerStepReport::Kind::Conv;
        r.batch = 4;
        r.K = 8;
        r.C = 4;
        r.R = 3;
        r.S = 3;
        r.P = 10;
        r.Q = 10;
        r.hasMacs = true;
        r.sparseExecuted = true;
        r.fwMacs = 1000;
        r.bwDataMacs = 1000;
        r.bwWeightMacs = 1000;
        r.hasMask = true;
        r.mask = mask;
        r.hasWeightBytes = true;
        r.csbWeightBytes = csb_bytes;
        r.denseWeightBytes = 8 * 4 * 3 * 3 * 4;
        r.inputDensity = 1.0;
        t.reports.push_back(std::move(r));
        return t;
    };
    const arch::Accelerator acc = arch::Accelerator::procrustes();

    arch::WorkloadTrace small;
    small.observe(makeTelemetry(600));
    arch::WorkloadTrace large;
    large.observe(makeTelemetry(6000));

    const arch::NetworkCost cs = acc.evaluateTrace(small, 0);
    const arch::NetworkCost cl = acc.evaluateTrace(large, 0);
    EXPECT_GT(cl.total().glbEnergyJ, cs.total().glbEnergyJ);
    EXPECT_GT(cl.total().dramEnergyJ, cs.total().dramEnergyJ);
    // MAC/RF energy comes from the (identical) measured MACs.
    EXPECT_DOUBLE_EQ(cl.total().macEnergyJ, cs.total().macEnergyJ);
    EXPECT_DOUBLE_EQ(cl.total().rfEnergyJ, cs.total().rfEnergyJ);

    // The dense baseline streams the dense image; identical dense
    // bytes mean identical traffic whatever the CSB field says.
    const arch::Accelerator baseline =
        arch::Accelerator::denseBaseline();
    const arch::NetworkCost bs = baseline.evaluateTrace(small, 0);
    const arch::NetworkCost bl = baseline.evaluateTrace(large, 0);
    EXPECT_DOUBLE_EQ(bl.total().glbEnergyJ, bs.total().glbEnergyJ);
    EXPECT_DOUBLE_EQ(bl.total().dramEnergyJ, bs.total().dramEnergyJ);
}

TEST(WorkloadTrace, TraceDrivenImbalanceHistogramsComeFromMeasuredMasks)
{
    // End to end on a real pruned run: evaluateTrace must emit
    // balanced/unbalanced histograms whose balanced mean never
    // exceeds the unbalanced one, with genuinely non-zero imbalance
    // once pruning has made the masks uneven.
    nn::Network net;
    buildNet(net, kernels::KernelBackend::kSparse, 29);
    Xorshift128Plus prune_rng(31);
    for (size_t i = 0; i < net.size(); ++i) {
        auto *conv = dynamic_cast<nn::Conv2d *>(net.layer(i));
        if (!conv)
            continue;
        Tensor &w = conv->weight().value;
        // Uneven pruning: drop 70% of even output channels, 20% of
        // odd ones, so K-slices carry visibly different work.
        const Shape &s = w.shape();
        for (int64_t k = 0; k < s[0]; ++k) {
            const double p = (k % 2 == 0) ? 0.7 : 0.2;
            for (int64_t j = 0; j < s.numel() / s[0]; ++j) {
                if (prune_rng.nextDouble() < p)
                    w.at(k * (s.numel() / s[0]) + j) = 0.0f;
            }
        }
    }
    auto splits = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batchSize = 8;
    nn::Sgd opt(0.05f);
    arch::WorkloadTrace trace;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 trace.observer());

    const arch::Accelerator acc = arch::Accelerator::procrustes();
    for (size_t e = 0; e < trace.epochCount(); ++e) {
        arch::EpochImbalance imb;
        acc.evaluateTrace(trace, e, &imb);
        EXPECT_GT(imb.unbalanced.meanOverhead, 0.0) << e;
        EXPECT_LE(imb.balanced.meanOverhead,
                  imb.unbalanced.meanOverhead + 1e-12)
            << e;
        EXPECT_LE(imb.balanced.maxOverhead,
                  imb.unbalanced.maxOverhead + 1e-12)
            << e;
        double total = 0.0;
        for (double f : imb.unbalanced.fraction)
            total += f;
        EXPECT_NEAR(total, 1.0, 1e-9) << e;
    }
}

/** Restores the process-wide pool to its env-resolved size on exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard() { ThreadPool::resetGlobal(0); }
};

/** One full trace-pipeline run at the current pool size. */
struct PipelineResult
{
    arch::WorkloadTrace trace;
    std::vector<arch::EpochImbalance> imbalance;
};

PipelineResult
runTracePipeline()
{
    nn::Network net;
    buildNet(net, kernels::KernelBackend::kSparse, 41);
    auto *fc_layer =
        dynamic_cast<nn::Linear *>(net.layer(net.size() - 1));
    fc_layer->setBackend(kernels::KernelBackend::kSparse);
    for (size_t i = 0; i < net.size(); ++i) {
        nn::Layer *l = net.layer(i);
        Tensor *w = nullptr;
        if (auto *conv = dynamic_cast<nn::Conv2d *>(l))
            w = &conv->weight().value;
        else if (auto *fc = dynamic_cast<nn::Linear *>(l))
            w = &fc->weight().value;
        if (!w)
            continue;
        for (int64_t j = 0; j < w->numel(); j += 3)
            w->at(j) = 0.0f;
    }
    auto splits = blobSplits();
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.batchSize = 8;
    nn::Sgd opt(0.05f);
    PipelineResult out;
    trainNetwork(net, opt, splits.first, splits.second, tc,
                 out.trace.observer());
    const arch::Accelerator acc = arch::Accelerator::procrustes();
    for (size_t e = 0; e < out.trace.epochCount(); ++e) {
        arch::EpochImbalance imb;
        acc.evaluateTrace(out.trace, e, &imb);
        out.imbalance.push_back(imb);
    }
    return out;
}

void
expectHistogramsIdentical(const arch::ImbalanceHistogram &a,
                          const arch::ImbalanceHistogram &b)
{
    EXPECT_EQ(a.meanOverhead, b.meanOverhead);
    EXPECT_EQ(a.maxOverhead, b.maxOverhead);
    ASSERT_EQ(a.fraction.size(), b.fraction.size());
    for (size_t i = 0; i < a.fraction.size(); ++i)
        EXPECT_EQ(a.fraction[i], b.fraction[i]) << i;
}

TEST(ThreadSweep, TracePipelineBitwiseIdenticalAcrossThreadCounts)
{
    // The whole measured pipeline — training on the CSB executors,
    // telemetry aggregation, measured MAC tallies, byte counts, and
    // the mask-replayed imbalance histograms — must be bitwise
    // invariant to the thread-pool size.
    GlobalPoolGuard guard;
    ThreadPool::resetGlobal(1);
    const PipelineResult ref = runTracePipeline();
    ASSERT_EQ(ref.trace.epochCount(), 2u);

    for (int threads : {2, 3, 8}) {
        ThreadPool::resetGlobal(threads);
        ASSERT_EQ(ThreadPool::global().numThreads(), threads);
        const PipelineResult got = runTracePipeline();
        ASSERT_EQ(got.trace.epochCount(), ref.trace.epochCount());
        for (size_t e = 0; e < ref.trace.epochCount(); ++e) {
            const arch::EpochTrace &re = ref.trace.epoch(e);
            const arch::EpochTrace &ge = got.trace.epoch(e);
            EXPECT_EQ(ge.steps, re.steps) << threads;
            EXPECT_EQ(ge.meanLoss, re.meanLoss) << threads;
            ASSERT_EQ(ge.layers.size(), re.layers.size());
            for (size_t i = 0; i < re.layers.size(); ++i) {
                const arch::LayerTrace &rl = re.layers[i];
                const arch::LayerTrace &gl = ge.layers[i];
                EXPECT_EQ(gl.fwMacs, rl.fwMacs) << threads;
                EXPECT_EQ(gl.bwDataMacs, rl.bwDataMacs) << threads;
                EXPECT_EQ(gl.bwWeightMacs, rl.bwWeightMacs) << threads;
                EXPECT_EQ(gl.csbWeightBytes, rl.csbWeightBytes)
                    << threads;
                EXPECT_EQ(gl.denseWeightBytes, rl.denseWeightBytes);
                EXPECT_EQ(gl.mask.bits, rl.mask.bits) << threads;
                EXPECT_EQ(gl.iacts.mean, rl.iacts.mean) << threads;
                EXPECT_EQ(gl.iacts.perSample, rl.iacts.perSample);
                EXPECT_EQ(gl.iacts.perSampleHalf,
                          rl.iacts.perSampleHalf);
                EXPECT_EQ(gl.iacts.perChannel, rl.iacts.perChannel);
                EXPECT_EQ(gl.iacts.perRow, rl.iacts.perRow);
                EXPECT_EQ(gl.iacts.perCol, rl.iacts.perCol);
            }
            expectHistogramsIdentical(got.imbalance[e].balanced,
                                      ref.imbalance[e].balanced);
            expectHistogramsIdentical(got.imbalance[e].unbalanced,
                                      ref.imbalance[e].unbalanced);
        }
    }
}

TEST(BackendParity, GemmAndSparseTrainIdenticallyUnderDenseMask)
{
    // With every weight non-zero (an all-ones mask) the CSB executors
    // walk the full operation space, so the two backends compute the
    // same mathematical result; training trajectories must agree to
    // float tolerance step for step.
    auto run = [](kernels::KernelBackend backend) {
        nn::Network net;
        buildNet(net, backend, 17);
        auto splits = blobSplits();
        nn::TrainConfig tc;
        tc.epochs = 2;
        tc.batchSize = 8;
        nn::Sgd opt(0.05f);
        std::vector<double> losses;
        trainNetwork(net, opt, splits.first, splits.second, tc,
                     [&losses](const nn::StepTelemetry &t) {
                         losses.push_back(t.batchLoss);
                     });
        return losses;
    };
    const auto gemm_losses = run(kernels::KernelBackend::kGemm);
    const auto sparse_losses = run(kernels::KernelBackend::kSparse);
    ASSERT_EQ(gemm_losses.size(), sparse_losses.size());
    ASSERT_FALSE(gemm_losses.empty());
    for (size_t i = 0; i < gemm_losses.size(); ++i) {
        EXPECT_NEAR(gemm_losses[i], sparse_losses[i],
                    1e-3 * (1.0 + std::fabs(gemm_losses[i])))
            << "step " << i;
    }
}

} // namespace
} // namespace procrustes
