/**
 * @file
 * Tests for layer geometry and the five-network model zoo (Table II).
 */

#include <gtest/gtest.h>

#include "arch/model_zoo.h"

namespace procrustes {
namespace arch {
namespace {

TEST(LayerShape, ConvGeometry)
{
    const LayerShape l = convLayer("c", 64, 128, 3, 32);
    EXPECT_EQ(l.P, 32);   // same padding
    EXPECT_EQ(l.weightCount(), 128 * 64 * 9);
    EXPECT_EQ(l.macsPerSample(), 128 * 64 * 9 * 32 * 32);
    EXPECT_EQ(l.iactsPerSample(), 64 * 34 * 34);
    EXPECT_EQ(l.oactsPerSample(), 128 * 32 * 32);
}

TEST(LayerShape, StridedConvHalvesOutput)
{
    const LayerShape l = convLayer("c", 3, 64, 7, 224, 2, 3);
    EXPECT_EQ(l.P, 112);
}

TEST(LayerShape, DepthwiseCollapsesC)
{
    const LayerShape l = depthwiseLayer("dw", 96, 3, 14);
    EXPECT_EQ(l.effectiveC(), 1);
    EXPECT_EQ(l.weightCount(), 96 * 9);
    EXPECT_EQ(l.macsPerSample(), 96 * 9 * 14 * 14);
    EXPECT_EQ(dimExtent(l, Dim::C, 16), 1);
}

TEST(LayerShape, FcIsDegenerateConv)
{
    const LayerShape l = fcLayer("fc", 512, 1000);
    EXPECT_EQ(l.weightCount(), 512000);
    EXPECT_EQ(l.macsPerSample(), 512000);
    EXPECT_EQ(l.P, 1);
}

/**
 * Table II dense-size check: each network's weight count must land
 * within 15% of the paper's reported model size.
 */
struct ZooCase
{
    const char *name;
    double weightsM;   //!< Table II "dense size"
    double macsM;      //!< Table II "dense MACs"
};

class ModelZooSizes : public ::testing::TestWithParam<ZooCase>
{
  protected:
    static NetworkModel
    byName(const std::string &name)
    {
        for (NetworkModel &m : cached())
            if (m.name == name)
                return m;
        ADD_FAILURE() << "unknown model " << name;
        return {};
    }

    static std::vector<NetworkModel> &
    cached()
    {
        static std::vector<NetworkModel> models = allModels();
        return models;
    }
};

TEST_P(ModelZooSizes, WeightsMatchTable2)
{
    const ZooCase &zc = GetParam();
    const NetworkModel m = byName(zc.name);
    const double weights = static_cast<double>(m.denseWeights()) / 1e6;
    EXPECT_NEAR(weights, zc.weightsM, 0.15 * zc.weightsM)
        << zc.name << " dense size off Table II";
}

TEST_P(ModelZooSizes, MacsMatchTable2)
{
    const ZooCase &zc = GetParam();
    const NetworkModel m = byName(zc.name);
    const double macs =
        static_cast<double>(m.denseMacsPerSample()) / 1e6;
    // MAC counts depend on minor bookkeeping choices (shortcut convs,
    // transition layers); accept 40%.
    EXPECT_NEAR(macs, zc.macsM, 0.40 * zc.macsM)
        << zc.name << " dense MACs off Table II";
}

INSTANTIATE_TEST_SUITE_P(
    TableII, ModelZooSizes,
    ::testing::Values(ZooCase{"DenseNet", 2.7, 528.0},
                      ZooCase{"WRN-28-10", 36.0, 4000.0},
                      ZooCase{"VGG-S", 15.0, 269.0},
                      ZooCase{"MobileNetV2", 3.5, 301.0},
                      ZooCase{"ResNet18", 11.7, 1800.0}),
    [](const ::testing::TestParamInfo<ZooCase> &info) {
        std::string n = info.param.name;
        for (char &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(ModelZoo, AllModelsHaveConsistentMetadata)
{
    for (const NetworkModel &m : allModels()) {
        EXPECT_FALSE(m.layers.empty()) << m.name;
        EXPECT_EQ(m.layers.size(), m.iactDensity.size()) << m.name;
        EXPECT_GT(m.paperSparsity, 1.0) << m.name;
        EXPECT_DOUBLE_EQ(m.iactDensity[0], 1.0)
            << m.name << ": raw input must be dense";
        for (double d : m.iactDensity) {
            EXPECT_GT(d, 0.0) << m.name;
            EXPECT_LE(d, 1.0) << m.name;
        }
    }
}

TEST(ModelZoo, GeneratedMasksHitSparsityTarget)
{
    const NetworkModel m = buildVggS();
    const auto masks = generateMasks(m, 5.2, 1);
    ASSERT_EQ(masks.size(), m.layers.size());
    int64_t nnz = 0;
    int64_t total = 0;
    for (const auto &mask : masks) {
        nnz += mask.nnz();
        total += mask.numel();
    }
    const double density =
        static_cast<double>(nnz) / static_cast<double>(total);
    EXPECT_NEAR(density, 1.0 / 5.2, 0.03);
}

TEST(ModelZoo, MasksVaryAcrossLayers)
{
    const NetworkModel m = buildResNet18();
    const auto masks = generateMasks(m, 11.7, 2);
    double lo = 1.0;
    double hi = 0.0;
    for (const auto &mask : masks) {
        lo = std::min(lo, mask.density());
        hi = std::max(hi, mask.density());
    }
    // Layer-level lognormal variation: spread must exist.
    EXPECT_LT(lo, hi * 0.7);
}

TEST(ModelZoo, ProfilesMatchMasks)
{
    const NetworkModel m = buildDenseNetS();
    const auto masks = generateMasks(m, 3.9, 3);
    const auto profiles = buildProfiles(m, masks);
    ASSERT_EQ(profiles.size(), masks.size());
    for (size_t i = 0; i < masks.size(); ++i) {
        EXPECT_NEAR(profiles[i].weightDensity(), masks[i].density(),
                    1e-12);
    }
}

TEST(ModelZoo, DenseProfilesAreDense)
{
    const NetworkModel m = buildVggS();
    for (const auto &p : buildDenseProfiles(m))
        EXPECT_DOUBLE_EQ(p.weightDensity(), 1.0);
}

TEST(ModelZoo, MobileNetHasDepthwiseLayers)
{
    const NetworkModel m = buildMobileNetV2();
    int depthwise = 0;
    for (const LayerShape &l : m.layers) {
        if (l.type == LayerType::DepthwiseConv)
            ++depthwise;
    }
    EXPECT_EQ(depthwise, 17);   // one per inverted-residual block
}

} // namespace
} // namespace arch
} // namespace procrustes
