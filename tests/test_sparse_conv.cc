/**
 * @file
 * Tests for the CSB-backed sparse convolution executors, validated
 * against the dense nn::Conv2d reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/model_zoo.h"
#include "common/rng.h"
#include "nn/conv2d.h"
#include "sparse/mask.h"
#include "sparse/sparse_conv.h"

namespace procrustes {
namespace sparse {
namespace {

/** Masked random filters at a given density. */
Tensor
maskedFilters(int64_t k, int64_t c, int64_t kernel, double density,
              uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{k, c, kernel, kernel});
    w.fillGaussian(rng, 0.5f);
    SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed + 1;
    const SparsityMask m = makeSyntheticMask(k, c, kernel, kernel, cfg);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w.at(i) = 0.0f;
    }
    return w;
}

struct ConvCase
{
    int64_t stride;
    int64_t pad;
    double density;
};

class SparseConvAgainstDense : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(SparseConvAgainstDense, ForwardMatchesDenseReference)
{
    const ConvCase &cc = GetParam();
    const Tensor w = maskedFilters(6, 4, 3, cc.density, 11);

    nn::Conv2dConfig cfg;
    cfg.inChannels = 4;
    cfg.outChannels = 6;
    cfg.kernel = 3;
    cfg.stride = cc.stride;
    cfg.pad = cc.pad;
    cfg.bias = false;
    nn::Conv2d dense(cfg, "ref");
    dense.weight().value = w;

    Xorshift128Plus rng(13);
    Tensor x(Shape{2, 4, 9, 9});
    x.fillGaussian(rng, 1.0f);

    const Tensor ref = dense.forward(x, true);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const Tensor out = sparseConvForward(x, csb, cc.stride, cc.pad);
    ASSERT_EQ(out.shape(), ref.shape());
    EXPECT_LT(maxAbsDiff(out, ref), 1e-4f);
}

TEST_P(SparseConvAgainstDense, BackwardDataMatchesDenseReference)
{
    const ConvCase &cc = GetParam();
    const Tensor w = maskedFilters(5, 3, 3, cc.density, 17);

    nn::Conv2dConfig cfg;
    cfg.inChannels = 3;
    cfg.outChannels = 5;
    cfg.kernel = 3;
    cfg.stride = cc.stride;
    cfg.pad = cc.pad;
    cfg.bias = false;
    nn::Conv2d dense(cfg, "ref");
    dense.weight().value = w;

    Xorshift128Plus rng(19);
    Tensor x(Shape{2, 3, 8, 8});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = dense.forward(x, true);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);
    const Tensor ref_dx = dense.backward(dy);

    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const Tensor dx = sparseConvBackwardData(dy, csb, x.shape(),
                                             cc.stride, cc.pad);
    ASSERT_EQ(dx.shape(), ref_dx.shape());
    EXPECT_LT(maxAbsDiff(dx, ref_dx), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SparseConvAgainstDense,
    ::testing::Values(ConvCase{1, 1, 0.15}, ConvCase{1, 1, 0.5},
                      ConvCase{1, 0, 0.25}, ConvCase{2, 1, 0.25},
                      ConvCase{1, 1, 1.0}));

TEST(SparseConv, MacCountScalesWithDensity)
{
    Xorshift128Plus rng(23);
    Tensor x(Shape{1, 4, 8, 8});
    x.fillGaussian(rng, 1.0f);

    const Tensor dense_w = maskedFilters(8, 4, 3, 1.0, 29);
    const Tensor sparse_w = maskedFilters(8, 4, 3, 0.2, 31);
    const auto dense_csb = CsbTensor::encodeConvFilters(dense_w);
    const auto sparse_csb = CsbTensor::encodeConvFilters(sparse_w);

    const int64_t dense_macs = sparseConvMacs(x, dense_csb, 1, 1);
    const int64_t sparse_macs = sparseConvMacs(x, sparse_csb, 1, 1);
    EXPECT_NEAR(static_cast<double>(sparse_macs) /
                    static_cast<double>(dense_macs),
                0.2, 0.02);
}

TEST(SparseConv, EmptyFilterProducesZeroOutput)
{
    Tensor w(Shape{2, 2, 3, 3});   // all zeros
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    Xorshift128Plus rng(37);
    Tensor x(Shape{1, 2, 5, 5});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, 1, 1);
    EXPECT_DOUBLE_EQ(y.sum(), 0.0);
}

TEST(SparseConv, RejectsChannelMismatch)
{
    const Tensor w = maskedFilters(2, 3, 3, 0.5, 41);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    Tensor x(Shape{1, 4, 5, 5});
    EXPECT_DEATH(sparseConvForward(x, csb, 1, 1), "channels");
}

// -------------------------------------- masked-dense dW parity (zoo)

/** Conv geometry as it reaches the executors (channels/kernel/stride). */
struct ZooGeom
{
    int64_t c, k, kernel, stride;

    bool
    operator==(const ZooGeom &o) const
    {
        return c == o.c && k == o.k && kernel == o.kernel &&
               stride == o.stride;
    }
};

/**
 * Every distinct conv filter geometry across the five evaluation
 * networks. Depthwise layers appear as their per-filter view (C = 1):
 * that is the loop nest the executors would run per group.
 */
std::vector<ZooGeom>
zooConvGeometries()
{
    std::vector<ZooGeom> out;
    for (const arch::NetworkModel &m : arch::allModels()) {
        for (const arch::LayerShape &l : m.layers) {
            if (l.type == arch::LayerType::FullyConnected)
                continue;
            const ZooGeom g{l.effectiveC(), l.K, l.R, l.stride};
            if (std::find(out.begin(), out.end(), g) == out.end())
                out.push_back(g);
        }
    }
    return out;
}

TEST(SparseConvBackwardWeights, MatchesMaskedDenseOnZooLayerShapes)
{
    // For each zoo layer shape: the CSB weight-gradient executor must
    // equal the dense reference dW with pruned positions zeroed. The
    // spatial extent is shrunk (the filter geometry, not the image
    // size, is what the kernels branch on) to keep the sweep fast.
    const std::vector<ZooGeom> geoms = zooConvGeometries();
    ASSERT_GT(geoms.size(), 20u);

    uint64_t seed = 200;
    for (const ZooGeom &g : geoms) {
        const int64_t pad = g.kernel / 2;
        const int64_t in_hw = g.kernel + 3;
        const Tensor w = maskedFilters(g.k, g.c, g.kernel, 0.3, ++seed);

        nn::Conv2dConfig cfg;
        cfg.inChannels = g.c;
        cfg.outChannels = g.k;
        cfg.kernel = g.kernel;
        cfg.stride = g.stride;
        cfg.pad = pad;
        cfg.bias = false;
        nn::Conv2d dense(cfg, "ref");
        dense.setBackend(kernels::KernelBackend::kGemm);
        dense.weight().value = w;

        Xorshift128Plus rng(seed * 7);
        Tensor x(Shape{1, g.c, in_hw, in_hw});
        x.fillGaussian(rng, 1.0f);
        const Tensor y = dense.forward(x, true);
        Tensor dy(y.shape());
        dy.fillGaussian(rng, 1.0f);
        dense.backward(dy);

        const CsbTensor csb = CsbTensor::encodeConvFilters(w);
        Tensor dw(w.shape());
        sparseConvBackwardWeights(x, dy, csb, g.stride, pad, &dw);

        const float *pref = dense.weight().grad.data();
        const float *pw = w.data();
        const float *pdw = dw.data();
        for (int64_t i = 0; i < w.numel(); ++i) {
            const float expected = pw[i] == 0.0f ? 0.0f : pref[i];
            ASSERT_NEAR(pdw[i], expected,
                        1e-3f * (1.0f + std::fabs(expected)))
                << "C=" << g.c << " K=" << g.k << " R=" << g.kernel
                << " stride=" << g.stride << " i=" << i;
        }
    }
}

// ------------------------------------- three-phase exact MAC counting

/**
 * Brute-force MACs of one training phase by replaying its loop nest.
 * All three phases visit the same in-bounds (n, k, c, r, s, p, q)
 * tuples — the loops below differ only in which operand they would
 * touch, mirroring the executors.
 */
int64_t
bruteForcePhaseMacs(const Tensor &w, int64_t n, int64_t h, int64_t width,
                    int64_t stride, int64_t pad)
{
    const Shape &ws = w.shape();
    const int64_t k = ws[0], c = ws[1], r_ext = ws[2], s_ext = ws[3];
    const int64_t p_ext = (h + 2 * pad - r_ext) / stride + 1;
    const int64_t q_ext = (width + 2 * pad - s_ext) / stride + 1;
    int64_t count = 0;
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ok = 0; ok < k; ++ok) {
            for (int64_t ic = 0; ic < c; ++ic) {
                for (int64_t r = 0; r < r_ext; ++r) {
                    for (int64_t s = 0; s < s_ext; ++s) {
                        if (w(ok, ic, r, s) == 0.0f)
                            continue;
                        for (int64_t p = 0; p < p_ext; ++p) {
                            const int64_t ih = p * stride + r - pad;
                            if (ih < 0 || ih >= h)
                                continue;
                            for (int64_t q = 0; q < q_ext; ++q) {
                                const int64_t iw = q * stride + s - pad;
                                if (iw < 0 || iw >= width)
                                    continue;
                                ++count;
                            }
                        }
                    }
                }
            }
        }
    }
    return count;
}

TEST(SparseConvMacCounts, AllPhasesMatchBruteForceOnPaddedEdges)
{
    // Edge geometries where the padding halo clips aggressively: big
    // pad relative to the image, stride that skips rows, kernels the
    // size of the input.
    struct EdgeCase
    {
        int64_t kernel, stride, pad, h, w;
    };
    const EdgeCase cases[] = {
        {3, 1, 1, 4, 4},   // classic same-pad small image
        {5, 2, 2, 7, 6},   // 5x5 stride 2, rectangular
        {3, 3, 1, 8, 5},   // stride 3 skips most rows
        {3, 1, 2, 4, 4},   // pad wider than the kernel overhang
        {1, 1, 0, 5, 5},   // pointwise: no halo at all
        {5, 1, 2, 5, 5},   // kernel as big as the image
    };
    uint64_t seed = 300;
    for (const EdgeCase &ec : cases) {
        const Tensor w = maskedFilters(4, 3, ec.kernel, 0.4, ++seed);
        const CsbTensor csb = CsbTensor::encodeConvFilters(w);
        Tensor x(Shape{2, 3, ec.h, ec.w});
        const int64_t expected =
            bruteForcePhaseMacs(w, 2, ec.h, ec.w, ec.stride, ec.pad);

        const SparseConvMacCounts counts =
            sparseConvMacCounts(x, csb, ec.stride, ec.pad);
        EXPECT_EQ(counts.forward, expected)
            << "kernel=" << ec.kernel << " stride=" << ec.stride
            << " pad=" << ec.pad;
        EXPECT_EQ(counts.backwardData, expected);
        EXPECT_EQ(counts.backwardWeight, expected);
        EXPECT_EQ(counts.total(), 3 * expected);
        EXPECT_EQ(sparseConvMacs(x, csb, ec.stride, ec.pad), expected);
    }
}

TEST(SparseConvBackwardWeights, DeterministicUnderThreading)
{
    const Tensor w = maskedFilters(8, 4, 3, 0.3, 61);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    Xorshift128Plus rng(67);
    Tensor x(Shape{2, 4, 9, 9});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, 1, 1);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);

    Tensor dw1(w.shape());
    Tensor dw2(w.shape());
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &dw1);
    sparseConvBackwardWeights(x, dy, csb, 1, 1, &dw2);
    EXPECT_EQ(maxAbsDiff(dw1, dw2), 0.0f);
}

} // namespace
} // namespace sparse
} // namespace procrustes
