/**
 * @file
 * Tests for the CSB-backed sparse convolution executors, validated
 * against the dense nn::Conv2d reference.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "sparse/mask.h"
#include "sparse/sparse_conv.h"

namespace procrustes {
namespace sparse {
namespace {

/** Masked random filters at a given density. */
Tensor
maskedFilters(int64_t k, int64_t c, int64_t kernel, double density,
              uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{k, c, kernel, kernel});
    w.fillGaussian(rng, 0.5f);
    SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed + 1;
    const SparsityMask m = makeSyntheticMask(k, c, kernel, kernel, cfg);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w.at(i) = 0.0f;
    }
    return w;
}

struct ConvCase
{
    int64_t stride;
    int64_t pad;
    double density;
};

class SparseConvAgainstDense : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(SparseConvAgainstDense, ForwardMatchesDenseReference)
{
    const ConvCase &cc = GetParam();
    const Tensor w = maskedFilters(6, 4, 3, cc.density, 11);

    nn::Conv2dConfig cfg;
    cfg.inChannels = 4;
    cfg.outChannels = 6;
    cfg.kernel = 3;
    cfg.stride = cc.stride;
    cfg.pad = cc.pad;
    cfg.bias = false;
    nn::Conv2d dense(cfg, "ref");
    dense.weight().value = w;

    Xorshift128Plus rng(13);
    Tensor x(Shape{2, 4, 9, 9});
    x.fillGaussian(rng, 1.0f);

    const Tensor ref = dense.forward(x, true);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const Tensor out = sparseConvForward(x, csb, cc.stride, cc.pad);
    ASSERT_EQ(out.shape(), ref.shape());
    EXPECT_LT(maxAbsDiff(out, ref), 1e-4f);
}

TEST_P(SparseConvAgainstDense, BackwardDataMatchesDenseReference)
{
    const ConvCase &cc = GetParam();
    const Tensor w = maskedFilters(5, 3, 3, cc.density, 17);

    nn::Conv2dConfig cfg;
    cfg.inChannels = 3;
    cfg.outChannels = 5;
    cfg.kernel = 3;
    cfg.stride = cc.stride;
    cfg.pad = cc.pad;
    cfg.bias = false;
    nn::Conv2d dense(cfg, "ref");
    dense.weight().value = w;

    Xorshift128Plus rng(19);
    Tensor x(Shape{2, 3, 8, 8});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = dense.forward(x, true);
    Tensor dy(y.shape());
    dy.fillGaussian(rng, 1.0f);
    const Tensor ref_dx = dense.backward(dy);

    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const Tensor dx = sparseConvBackwardData(dy, csb, x.shape(),
                                             cc.stride, cc.pad);
    ASSERT_EQ(dx.shape(), ref_dx.shape());
    EXPECT_LT(maxAbsDiff(dx, ref_dx), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SparseConvAgainstDense,
    ::testing::Values(ConvCase{1, 1, 0.15}, ConvCase{1, 1, 0.5},
                      ConvCase{1, 0, 0.25}, ConvCase{2, 1, 0.25},
                      ConvCase{1, 1, 1.0}));

TEST(SparseConv, MacCountScalesWithDensity)
{
    Xorshift128Plus rng(23);
    Tensor x(Shape{1, 4, 8, 8});
    x.fillGaussian(rng, 1.0f);

    const Tensor dense_w = maskedFilters(8, 4, 3, 1.0, 29);
    const Tensor sparse_w = maskedFilters(8, 4, 3, 0.2, 31);
    const auto dense_csb = CsbTensor::encodeConvFilters(dense_w);
    const auto sparse_csb = CsbTensor::encodeConvFilters(sparse_w);

    const int64_t dense_macs = sparseConvMacs(x, dense_csb, 1, 1);
    const int64_t sparse_macs = sparseConvMacs(x, sparse_csb, 1, 1);
    EXPECT_NEAR(static_cast<double>(sparse_macs) /
                    static_cast<double>(dense_macs),
                0.2, 0.02);
}

TEST(SparseConv, EmptyFilterProducesZeroOutput)
{
    Tensor w(Shape{2, 2, 3, 3});   // all zeros
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    Xorshift128Plus rng(37);
    Tensor x(Shape{1, 2, 5, 5});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = sparseConvForward(x, csb, 1, 1);
    EXPECT_DOUBLE_EQ(y.sum(), 0.0);
}

TEST(SparseConv, RejectsChannelMismatch)
{
    const Tensor w = maskedFilters(2, 3, 3, 0.5, 41);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    Tensor x(Shape{1, 4, 5, 5});
    EXPECT_DEATH(sparseConvForward(x, csb, 1, 1), "channels");
}

} // namespace
} // namespace sparse
} // namespace procrustes
