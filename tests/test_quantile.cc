/**
 * @file
 * Tests for the DUMIQUE streaming quantile estimator (Algorithm 4).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math_utils.h"
#include "common/rng.h"
#include "sparse/quantile.h"

namespace procrustes {
namespace sparse {
namespace {

/** Stream `n` |N(0,1)| values through an estimator. */
std::vector<double>
halfNormalStream(int n, uint64_t seed)
{
    Xorshift128Plus rng(seed);
    std::vector<double> xs;
    xs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        xs.push_back(std::fabs(rng.nextGaussian()));
    return xs;
}

TEST(Quantile, RejectsBadParameters)
{
    EXPECT_DEATH(QuantileEstimator(0.0), "quantile");
    EXPECT_DEATH(QuantileEstimator(1.0), "quantile");
    EXPECT_DEATH(QuantileEstimator(0.5, 0.0), "rho");
    EXPECT_DEATH(QuantileEstimator(0.5, 1e-3, -1.0), "initial");
}

TEST(Quantile, EstimateRisesTowardsLargeValues)
{
    QuantileEstimator qe(0.9);
    const double start = qe.estimate();
    for (int i = 0; i < 1000; ++i)
        qe.update(10.0);
    EXPECT_GT(qe.estimate(), start);
    EXPECT_EQ(qe.updates(), 1000u);
}

/**
 * Property sweep: for several target quantiles the estimate should
 * converge near the true quantile of a stationary half-normal stream.
 */
class QuantileConvergence : public ::testing::TestWithParam<double>
{
};

TEST_P(QuantileConvergence, ConvergesToTrueQuantile)
{
    const double q = GetParam();
    const auto xs = halfNormalStream(400000, 42);
    QuantileEstimator qe(q);
    for (double x : xs)
        qe.update(x);

    const double truth = exactQuantile(
        std::vector<double>(xs.begin(), xs.end()), q);
    // DUMIQUE is a stochastic-approximation method: accept 15%
    // relative error after a long stream.
    EXPECT_NEAR(qe.estimate(), truth, 0.15 * truth)
        << "target quantile " << q;
}

INSTANTIATE_TEST_SUITE_P(TargetQuantiles, QuantileConvergence,
                         ::testing::Values(0.5, 0.75, 0.9, 0.95));

TEST(Quantile, InsensitiveToInitialEstimate)
{
    // The paper reports negligible sensitivity to Q(0) and rho
    // (Section III-B); verify two very different initializations land
    // near each other.
    const auto xs = halfNormalStream(300000, 7);
    QuantileEstimator low(0.9, 1e-3, 1e-6);
    QuantileEstimator high(0.9, 1e-3, 10.0);
    for (double x : xs) {
        low.update(x);
        high.update(x);
    }
    EXPECT_NEAR(low.estimate(), high.estimate(),
                0.1 * high.estimate());
}

TEST(Quantile, TracksDistributionShift)
{
    // Gradients grow during training; the estimate must follow.
    QuantileEstimator qe(0.9);
    Xorshift128Plus rng(3);
    for (int i = 0; i < 200000; ++i)
        qe.update(std::fabs(rng.nextGaussian()));
    const double before = qe.estimate();
    for (int i = 0; i < 200000; ++i)
        qe.update(5.0 * std::fabs(rng.nextGaussian()));
    EXPECT_GT(qe.estimate(), 2.0 * before);
}

TEST(ParallelQuantile, MatchesScalarOnAverage)
{
    const auto xs = halfNormalStream(400000, 11);
    QuantileEstimator scalar(0.9);
    ParallelQuantileEstimator wide(0.9, 4);
    for (double x : xs) {
        scalar.update(x);
        wide.update(x);
    }
    wide.flush();
    // Averaging four inputs narrows the distribution, so the wide
    // estimate differs somewhat; it must stay in the same regime.
    EXPECT_NEAR(wide.estimate(), scalar.estimate(),
                0.5 * scalar.estimate());
}

TEST(ParallelQuantile, FlushHandlesPartialGroup)
{
    ParallelQuantileEstimator qe(0.9, 4);
    qe.update(1.0);
    qe.update(1.0);
    const uint64_t before = qe.base().updates();
    qe.flush();
    EXPECT_EQ(qe.base().updates(), before + 1);
    qe.flush();   // idempotent on empty buffer
    EXPECT_EQ(qe.base().updates(), before + 1);
}

TEST(ParallelQuantile, WidthOneEqualsScalar)
{
    const auto xs = halfNormalStream(10000, 13);
    QuantileEstimator scalar(0.8);
    ParallelQuantileEstimator wide(0.8, 1);
    for (double x : xs) {
        scalar.update(x);
        wide.update(x);
    }
    EXPECT_DOUBLE_EQ(wide.estimate(), scalar.estimate());
}

TEST(ParallelQuantile, FourPerCycleThroughputContract)
{
    // The QE unit accepts a peak of 4 updates per cycle by folding
    // them into one estimator update; 4n updates -> n folds.
    ParallelQuantileEstimator qe(0.9, 4);
    for (int i = 0; i < 4000; ++i)
        qe.update(1.0);
    EXPECT_EQ(qe.base().updates(), 1000u);
}

} // namespace
} // namespace sparse
} // namespace procrustes
