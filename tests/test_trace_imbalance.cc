/**
 * @file
 * Tests for the measured-mask load-balance replay
 * (arch/trace_imbalance.h): per-wave work built directly from
 * epoch-final weight masks and measured activation-density vectors,
 * cross-checked against brute-force per-PE tallies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/cost_model.h"
#include "arch/trace_imbalance.h"
#include "common/math_utils.h"

namespace procrustes {
namespace arch {
namespace {

/** A conv LayerShape with the geometry the mask describes. */
LayerShape
convShape(int64_t k, int64_t c, int64_t r, int64_t p)
{
    LayerShape s;
    s.name = "conv";
    s.type = LayerType::Conv;
    s.K = k;
    s.C = c;
    s.R = r;
    s.S = r;
    s.P = p;
    s.Q = p;
    return s;
}

/** One-layer epoch around a mask, dense activations by default. */
EpochTrace
epochAround(const sparse::SparsityMask &mask, int64_t batch)
{
    LayerTrace l;
    l.name = "conv";
    l.shape = convShape(mask.K, mask.C, mask.R, /*p=*/8);
    l.mask = mask;
    l.iacts.mean = 1.0;
    l.steps = 1;
    EpochTrace e;
    e.batchSize = batch;
    e.steps = 1;
    e.layers.push_back(std::move(l));
    return e;
}

TEST(TraceImbalance, UniformMaskReportsZeroOverheadEverywhere)
{
    // Every kernel carries the same non-zero count, so every per-PE
    // tile is identical: zero overhead per wave, under every mapping
    // and balancing policy, in the weight-sparse phases. The wu phase
    // is uniform too (mean-only activation measurement).
    sparse::SparsityMask mask = sparse::SparsityMask::dense(20, 6, 3, 3);
    for (int64_t k = 0; k < mask.K; ++k) {
        for (int64_t c = 0; c < mask.C; ++c) {
            // Zero the same two positions of every kernel.
            mask.bits[static_cast<size_t>((k * mask.C + c) * 9 + 0)] = 0;
            mask.bits[static_cast<size_t>((k * mask.C + c) * 9 + 4)] = 0;
        }
    }
    const EpochTrace e = epochAround(mask, 4);
    const ArrayConfig cfg = ArrayConfig::baseline16();

    for (MappingKind mapping : {MappingKind::CK, MappingKind::KN,
                                MappingKind::CN, MappingKind::PQ}) {
        for (BalanceMode balance : {BalanceMode::None,
                                    BalanceMode::HalfTile,
                                    BalanceMode::FullChip}) {
            for (Phase phase : {Phase::Forward, Phase::Backward,
                                Phase::WeightUpdate}) {
                const auto overheads = collectMeasuredOverheads(
                    e, phase, mapping, cfg, balance);
                ASSERT_FALSE(overheads.empty());
                for (double o : overheads)
                    EXPECT_NEAR(o, 0.0, 1e-12)
                        << mappingName(mapping) << " " << phaseName(phase);
            }
        }
    }
}

TEST(TraceImbalance, SingleHotSliceMatchesBruteForceTallyUnderKn)
{
    // All non-zeros live in K-slice 0. Under the K,N mapping each PE
    // column along K owns one slice, so the first wave has one loaded
    // PE and 15 idle ones; brute-force tally: max = nnz(k=0),
    // mean = total / active-PE count.
    sparse::SparsityMask mask = sparse::SparsityMask::dense(20, 6, 3, 3);
    for (int64_t k = 1; k < mask.K; ++k) {
        for (int64_t i = 0; i < mask.C * 9; ++i)
            mask.bits[static_cast<size_t>(k * mask.C * 9 + i)] = 0;
    }
    ASSERT_EQ(mask.tileNnz(0, 1, 0, mask.C), 6 * 9);
    const int64_t batch = 4;
    const EpochTrace e = epochAround(mask, batch);
    const ArrayConfig cfg = ArrayConfig::baseline16();

    const auto overheads = collectMeasuredOverheads(
        e, Phase::Forward, MappingKind::KN, cfg, BalanceMode::None);
    // K = 20 on a 16-row array: two K blocks, one N block (batch 4
    // under 16 columns) -> two waves.
    ASSERT_EQ(overheads.size(), 2u);

    // Brute force, wave 0 (k in [0, 16)): per-PE work is that slice's
    // live-weight count.
    std::vector<double> work;
    for (int64_t k = 0; k < 16; ++k)
        work.push_back(
            static_cast<double>(mask.tileNnz(k, k + 1, 0, mask.C)));
    const double peak = *std::max_element(work.begin(), work.end());
    double sum = 0.0;
    for (double w : work)
        sum += w;
    const double mean = sum / static_cast<double>(work.size());
    EXPECT_DOUBLE_EQ(overheads[0], peak / mean - 1.0);
    EXPECT_DOUBLE_EQ(overheads[0], 15.0);   // one hot PE of 16

    // Wave 1 (k in [16, 20)) holds no non-zeros at all: zero work
    // reports zero overhead, not a division blow-up.
    EXPECT_DOUBLE_EQ(overheads[1], 0.0);
}

TEST(TraceImbalance, ChunkedCkMatchesBruteForcePerPeTally)
{
    // The C,K mapping gives each PE an RF-bounded chunk of kernels
    // along K (CostModel::weightTileChunk granularity). Rebuild the
    // per-PE work assignment by hand from the mask and compare.
    sparse::SparsityMask mask =
        sparse::makeSyntheticMask(20, 6, 3, 3, [] {
            sparse::SyntheticMaskConfig c;
            c.targetDensity = 0.3;
            c.seed = 99;
            return c;
        }());
    const int64_t batch = 4;
    const EpochTrace e = epochAround(mask, batch);
    const ArrayConfig cfg = ArrayConfig::baseline16();
    const LayerShape shape = e.layers[0].shape;

    const auto overheads = collectMeasuredOverheads(
        e, Phase::Forward, MappingKind::CK, cfg, BalanceMode::None);

    const int64_t g = weightTileChunk(cfg, shape, shape.K, cfg.cols);
    const int64_t stride1 = cfg.cols * g;
    std::vector<double> expect;
    for (int64_t b0 = 0; b0 < shape.C; b0 += cfg.rows) {
        const int64_t n0 = std::min<int64_t>(cfg.rows, shape.C - b0);
        for (int64_t b1 = 0; b1 < shape.K; b1 += stride1) {
            std::vector<double> work;
            for (int64_t i = 0; i < n0; ++i) {
                for (int64_t j = 0; j < cfg.cols; ++j) {
                    const int64_t base = b1 + j * g;
                    if (base >= shape.K)
                        break;
                    const int64_t count =
                        std::min(g, shape.K - base);
                    double w = 0.0;
                    for (int64_t t = 0; t < count; ++t)
                        w += static_cast<double>(
                            mask.blockNnz(base + t, b0 + i));
                    work.push_back(w);
                }
            }
            const double peak =
                *std::max_element(work.begin(), work.end());
            double sum = 0.0;
            for (double w : work)
                sum += w;
            expect.push_back(
                peak / (sum / static_cast<double>(work.size())) - 1.0);
        }
    }
    ASSERT_EQ(overheads.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_DOUBLE_EQ(overheads[i], expect[i]) << i;
}

TEST(TraceImbalance, WeightUpdateUsesMeasuredSampleVectors)
{
    // wu-phase tiles under K,N follow the measured per-sample
    // densities: one slow sample dominates the unbalanced wave, and
    // the measured C-split halves let half-tile pairing flatten it
    // completely when the halves complement.
    sparse::SparsityMask mask = sparse::SparsityMask::dense(20, 6, 3, 3);
    EpochTrace e = epochAround(mask, 4);
    MeasuredIactStats &iacts = e.layers[0].iacts;
    iacts.mean = 0.5;
    iacts.perSample = {0.2, 0.8, 0.5, 0.5};
    iacts.perSampleHalf = {0.1, 0.1, 0.4, 0.4, 0.25, 0.25, 0.25, 0.25};
    const ArrayConfig cfg = ArrayConfig::baseline16();

    const auto unbalanced = collectMeasuredOverheads(
        e, Phase::WeightUpdate, MappingKind::KN, cfg, BalanceMode::None);
    // Two K blocks replicate the same 4-sample wave.
    ASSERT_EQ(unbalanced.size(), 2u);
    EXPECT_NEAR(unbalanced[0], 0.8 / 0.5 - 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(unbalanced[0], unbalanced[1]);

    const auto balanced = collectMeasuredOverheads(
        e, Phase::WeightUpdate, MappingKind::KN, cfg,
        BalanceMode::HalfTile);
    // Sorted halves pair 0.1+0.4 twice and 0.25+0.25 twice: perfectly
    // flat.
    ASSERT_EQ(balanced.size(), 2u);
    EXPECT_NEAR(balanced[0], 0.0, 1e-12);
}

TEST(TraceImbalance, BalancedNeverExceedsUnbalancedOnSkewedMasks)
{
    // Lognormal kernel structure at several densities: per-wave
    // half-tile pairing must never exceed the unbalanced overhead,
    // wave for wave and in the pooled histograms.
    const ArrayConfig cfg = ArrayConfig::baseline16();
    for (double density : {0.1, 0.25, 0.5}) {
        sparse::SyntheticMaskConfig mc;
        mc.targetDensity = density;
        mc.kernelSigma = 0.6;
        mc.rowSigma = 0.3;
        mc.seed = static_cast<uint64_t>(density * 1000);
        const sparse::SparsityMask mask =
            sparse::makeSyntheticMask(48, 24, 3, 3, mc);
        const EpochTrace e = epochAround(mask, 16);

        for (Phase phase : {Phase::Forward, Phase::Backward}) {
            const auto ub = collectMeasuredOverheads(
                e, phase, MappingKind::KN, cfg, BalanceMode::None);
            const auto b = collectMeasuredOverheads(
                e, phase, MappingKind::KN, cfg, BalanceMode::HalfTile);
            ASSERT_EQ(ub.size(), b.size());
            for (size_t i = 0; i < ub.size(); ++i)
                EXPECT_LE(b[i], ub[i] + 1e-12) << i;
        }

        const EpochImbalance imb = measuredEpochImbalance(
            e, MappingKind::KN, cfg, BalanceMode::HalfTile);
        EXPECT_LE(imb.balanced.meanOverhead,
                  imb.unbalanced.meanOverhead + 1e-12);
        EXPECT_LE(imb.balanced.maxOverhead,
                  imb.unbalanced.maxOverhead + 1e-12);
        EXPECT_GT(imb.unbalanced.meanOverhead, 0.0);
    }
}

TEST(TraceImbalance, FullChipIsPerfectAndEmptyMaskIsSafe)
{
    sparse::SparsityMask mask = sparse::SparsityMask::dense(20, 6, 3, 3);
    std::fill(mask.bits.begin(), mask.bits.end(), 0);   // fully pruned
    const EpochTrace e = epochAround(mask, 4);
    const ArrayConfig cfg = ArrayConfig::baseline16();
    for (Phase phase : {Phase::Forward, Phase::Backward,
                        Phase::WeightUpdate}) {
        for (BalanceMode balance : {BalanceMode::None,
                                    BalanceMode::FullChip}) {
            for (double o : collectMeasuredOverheads(
                     e, phase, MappingKind::KN, cfg, balance))
                EXPECT_DOUBLE_EQ(o, 0.0);
        }
    }
}

TEST(TraceImbalance, WaveOverheadHonoursCheapBalancingGate)
{
    // The same skewed working set: half-tile balancing only applies
    // when the mapping admits it; on a two-sparse-axis mapping the
    // request silently degrades to unbalanced execution, exactly like
    // the cost model.
    const std::vector<TileHalves> tiles{{4.0, 4.0}, {1.0, 0.0},
                                        {0.5, 0.5}, {2.0, 1.0}};
    const double unbalanced =
        waveOverhead(tiles, BalanceMode::None, true);
    const double gated =
        waveOverhead(tiles, BalanceMode::HalfTile, false);
    const double applied =
        waveOverhead(tiles, BalanceMode::HalfTile, true);
    EXPECT_DOUBLE_EQ(gated, unbalanced);
    EXPECT_LT(applied, unbalanced);
    EXPECT_DOUBLE_EQ(waveOverhead(tiles, BalanceMode::FullChip, false),
                     0.0);
    EXPECT_DOUBLE_EQ(waveOverhead({}, BalanceMode::None, true), 0.0);
}

} // namespace
} // namespace arch
} // namespace procrustes
