/**
 * @file
 * Tests for the gradual magnitude-pruning baselines (Section II-E).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sparse/dropback.h"
#include "sparse/gradual_pruning.h"

namespace procrustes {
namespace sparse {
namespace {

using nn::Network;

void
buildMlp(Network &net, uint64_t seed)
{
    net.add<nn::Flatten>("fl");
    net.add<nn::Linear>(2, 96, "fc1");
    net.add<nn::ReLU>("r1");
    net.add<nn::Linear>(96, 96, "fc2");
    net.add<nn::ReLU>("r2");
    net.add<nn::Linear>(96, 3, "fc3");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

TEST(GradualPruning, RejectsBadConfig)
{
    GradualPruningConfig cfg;
    cfg.targetSparsity = 1.0;
    EXPECT_DEATH(GradualMagnitudePruningOptimizer{cfg}, "sparsity");
    cfg.targetSparsity = 5.0;
    cfg.pruneFraction = 1.5;
    EXPECT_DEATH(GradualMagnitudePruningOptimizer{cfg}, "fraction");
}

TEST(GradualPruning, DensityDecreasesMonotonically)
{
    Network net;
    buildMlp(net, 1);
    GradualPruningConfig cfg;
    cfg.targetSparsity = 5.0;
    cfg.lr = 0.05f;
    cfg.pruneInterval = 5;
    cfg.warmupIterations = 5;
    GradualMagnitudePruningOptimizer opt(cfg);

    const auto params = net.params();
    double prev = 1.0;
    for (int it = 0; it < 100; ++it) {
        for (nn::Param *p : params)
            p->grad.fill(0.01f);
        opt.step(params);
        EXPECT_LE(opt.currentDensity(), prev + 1e-12);
        prev = opt.currentDensity();
    }
    // Lottery-ticket schedule: density after k events = 0.8^k, floored
    // at the target.
    EXPECT_NEAR(opt.currentDensity(), 0.2, 0.02);
    EXPECT_GE(opt.pruneEvents(), 7);
}

TEST(GradualPruning, StopsAtTargetSparsity)
{
    Network net;
    buildMlp(net, 2);
    GradualPruningConfig cfg;
    cfg.targetSparsity = 2.0;
    cfg.lr = 0.05f;
    cfg.pruneInterval = 2;
    cfg.warmupIterations = 0;
    GradualMagnitudePruningOptimizer opt(cfg);
    const auto params = net.params();
    for (int it = 0; it < 60; ++it) {
        for (nn::Param *p : params)
            p->grad.fill(0.01f);
        opt.step(params);
    }
    EXPECT_NEAR(opt.currentDensity(), 0.5, 0.01);
}

TEST(GradualPruning, PrunedWeightsStayZero)
{
    Network net;
    buildMlp(net, 3);
    GradualPruningConfig cfg;
    cfg.targetSparsity = 4.0;
    cfg.lr = 0.1f;
    cfg.pruneInterval = 3;
    cfg.warmupIterations = 0;
    GradualMagnitudePruningOptimizer opt(cfg);
    const auto params = net.params();
    for (int it = 0; it < 50; ++it) {
        for (nn::Param *p : params)
            p->grad.fill(0.05f);   // nonzero gradients everywhere
        opt.step(params);
    }
    // Weight sparsity equals 1 - density despite dense gradients.
    EXPECT_NEAR(nn::weightSparsity(net), 1.0 - opt.currentDensity(),
                1e-6);
}

TEST(GradualPruning, AverageDensityFarAboveFinalDensity)
{
    // The paper's Section I argument: gradual pruning keeps average
    // density high over the run, capping whole-training energy
    // savings; Dropback-style constant-budget training does not.
    Network net;
    buildMlp(net, 4);
    GradualPruningConfig cfg;
    cfg.targetSparsity = 5.0;
    cfg.lr = 0.05f;
    cfg.pruneInterval = 10;
    cfg.warmupIterations = 40;
    GradualMagnitudePruningOptimizer opt(cfg);
    const auto params = net.params();
    for (int it = 0; it < 150; ++it) {
        for (nn::Param *p : params)
            p->grad.fill(0.01f);
        opt.step(params);
    }
    EXPECT_NEAR(opt.currentDensity(), 0.2, 0.05);
    EXPECT_GT(opt.averageDensity(), 2.0 * opt.currentDensity());
}

TEST(GradualPruning, TrainsSpiralsToReasonableAccuracy)
{
    nn::SpiralConfig dc;
    dc.samplesPerClass = 100;
    const auto train = nn::makeSpirals(dc);
    dc.seed = 91;
    const auto val = nn::makeSpirals(dc);

    Network net;
    buildMlp(net, 5);
    GradualPruningConfig cfg;
    cfg.targetSparsity = 3.0;
    cfg.lr = 0.15f;
    cfg.pruneInterval = 20;
    cfg.warmupIterations = 100;
    GradualMagnitudePruningOptimizer opt(cfg);
    nn::TrainConfig tc;
    tc.epochs = 40;
    tc.batchSize = 32;
    const auto hist = trainNetwork(net, opt, train, val, tc);
    EXPECT_GT(hist.back().valAccuracy, 0.80);
    EXPECT_GT(hist.back().weightSparsity, 0.5);
}

TEST(GradualPruning, EagerStyleScheduleIsSlower)
{
    // Eager Pruning removes <1% per event: after the same number of
    // events its density is far higher than the lottery schedule's.
    auto run = [](double fraction) {
        Network net;
        buildMlp(net, 6);
        GradualPruningConfig cfg;
        cfg.targetSparsity = 10.0;
        cfg.lr = 0.05f;
        cfg.pruneInterval = 4;
        cfg.warmupIterations = 0;
        cfg.pruneFraction = fraction;
        GradualMagnitudePruningOptimizer opt(cfg);
        const auto params = net.params();
        for (int it = 0; it < 80; ++it) {
            for (nn::Param *p : params)
                p->grad.fill(0.01f);
            opt.step(params);
        }
        return opt.currentDensity();
    };
    EXPECT_GT(run(0.008), 2.0 * run(0.2));
}

} // namespace
} // namespace sparse
} // namespace procrustes
