/**
 * @file
 * Test harness for the CSB sparse fc executors (sparse_linear.h) and
 * the Linear kSparse backend built on them — the proof obligations of
 * the "last dense gap" close-out:
 *
 *   - parity: y / dx / dW / db match a masked-dense reference at 0%,
 *     50%, and 80% weight sparsity with 50-60% activation zeros;
 *   - gradients: finite-difference gradcheck of dx and dW. Linear is
 *     bilinear, so a large central-difference step (0.25) has exactly
 *     zero truncation error and the checks run at 1e-3 in fp32;
 *   - determinism: every executor is bitwise thread-count-invariant
 *     (pools of 1 / 2 / 3 / 8 threads);
 *   - MAC accounting: executor tallies and sparseLinearMacCounts
 *     match a brute force honouring the weight mask AND operand
 *     zeros, and executed MACs sit strictly below the dense count at
 *     >= 50% sparsity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "nn/linear.h"
#include "sparse/csb.h"
#include "sparse/mask.h"
#include "sparse/sparse_linear.h"

namespace procrustes {
namespace sparse {
namespace {

constexpr int64_t kBlockSide = nn::Linear::kCsbBlockSide;

/** Masked random [O, I] weight matrix at a given density. */
Tensor
maskedMatrix(int64_t o_ext, int64_t i_ext, double density, uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{o_ext, i_ext});
    w.fillGaussian(rng, 0.5f);
    if (density >= 1.0)
        return w;
    SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed + 1;
    const SparsityMask m = makeSyntheticMask(o_ext, i_ext, 1, 1, cfg);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w.at(i) = 0.0f;
    }
    return w;
}

/** Zero out a deterministic fraction of a tensor (ReLU-like zeros). */
void
zeroSome(Tensor *t, uint64_t seed, double zero_fraction)
{
    Xorshift128Plus rng(seed);
    for (int64_t i = 0; i < t->numel(); ++i) {
        if (static_cast<double>(rng.next() % 1000) <
            zero_fraction * 1000.0)
            t->at(i) = 0.0f;
    }
}

/** L = <sparseLinearForward(x, w), dy>, accumulated in double. */
double
sparseLoss(const Tensor &x, const Tensor &w, const Tensor &dy)
{
    const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);
    const Tensor y = sparseLinearForward(x, csb);
    const float *py = y.data();
    const float *pdy = dy.data();
    double loss = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i)
        loss += static_cast<double>(py[i]) * pdy[i];
    return loss;
}

class SparseLinear : public ::testing::TestWithParam<double>
{
};

TEST_P(SparseLinear, ForwardAndBackwardsMatchMaskedDense)
{
    // The three executors against explicit dense loop nests over the
    // same (masked) operands, with 50-60% activation and gradient
    // zeros present: skipping a zero operand must not change a single
    // number, and pruned positions must receive exactly no gradient.
    const double density = GetParam();
    const int64_t n = 5, i_ext = 19, o_ext = 13;
    const Tensor w = maskedMatrix(o_ext, i_ext, density, 301);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);

    Xorshift128Plus rng(307);
    Tensor x(Shape{n, i_ext});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 311, 0.55);
    Tensor dy(Shape{n, o_ext});
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 313, 0.5);

    const Tensor y = sparseLinearForward(x, csb);
    const Tensor dx = sparseLinearBackwardData(dy, csb);
    Tensor dw(w.shape());
    sparseLinearBackwardWeights(x, dy, csb, &dw);

    // Dense references.
    Tensor y_ref(Shape{n, o_ext});
    Tensor dx_ref(Shape{n, i_ext});
    Tensor dw_ref(w.shape());
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t o = 0; o < o_ext; ++o) {
            float acc = 0.0f;
            for (int64_t i = 0; i < i_ext; ++i)
                acc += x(in, i) * w(o, i);
            y_ref(in, o) = acc;
        }
        for (int64_t i = 0; i < i_ext; ++i) {
            float acc = 0.0f;
            for (int64_t o = 0; o < o_ext; ++o)
                acc += dy(in, o) * w(o, i);
            dx_ref(in, i) = acc;
        }
    }
    for (int64_t o = 0; o < o_ext; ++o) {
        for (int64_t i = 0; i < i_ext; ++i) {
            if (w(o, i) == 0.0f)
                continue;   // pruned: the executor must not touch it
            float acc = 0.0f;
            for (int64_t in = 0; in < n; ++in)
                acc += dy(in, o) * x(in, i);
            dw_ref(o, i) = acc;
        }
    }

    for (int64_t i = 0; i < y.numel(); ++i)
        ASSERT_NEAR(y.at(i), y_ref.at(i),
                    1e-4f * (1.0f + std::fabs(y_ref.at(i))))
            << "y[" << i << "] density=" << density;
    for (int64_t i = 0; i < dx.numel(); ++i)
        ASSERT_NEAR(dx.at(i), dx_ref.at(i),
                    1e-4f * (1.0f + std::fabs(dx_ref.at(i))))
            << "dx[" << i << "] density=" << density;
    for (int64_t i = 0; i < dw.numel(); ++i) {
        if (w.at(i) == 0.0f)
            ASSERT_EQ(dw.at(i), 0.0f) << "pruned w[" << i << "]";
        else
            ASSERT_NEAR(dw.at(i), dw_ref.at(i),
                        1e-4f * (1.0f + std::fabs(dw_ref.at(i))))
                << "dw[" << i << "] density=" << density;
    }
}

TEST_P(SparseLinear, BackwardDataMatchesFiniteDifferences)
{
    const double density = GetParam();
    const Tensor w = maskedMatrix(11, 17, density, 401);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);

    Xorshift128Plus rng(403);
    Tensor x(Shape{4, 17});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 409, 0.5);
    Tensor dy(Shape{4, 11});
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 419, 0.5);

    const Tensor dx = sparseLinearBackwardData(dy, csb);

    const float eps = 0.25f;
    for (int64_t i = 0; i < x.numel(); ++i) {
        const float orig = x.at(i);
        x.at(i) = orig + eps;
        const double lp = sparseLoss(x, w, dy);
        x.at(i) = orig - eps;
        const double lm = sparseLoss(x, w, dy);
        x.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dx.at(i), numeric,
                    1e-3 * std::max(1.0, std::fabs(numeric)))
            << "density=" << density << " x[" << i << "]";
    }
}

TEST_P(SparseLinear, BackwardWeightsMatchesFiniteDifferences)
{
    const double density = GetParam();
    Tensor w = maskedMatrix(9, 15, density, 421);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);

    Xorshift128Plus rng(431);
    Tensor x(Shape{4, 15});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 433, 0.6);
    Tensor dy(Shape{4, 9});
    dy.fillGaussian(rng, 1.0f);

    Tensor dw(w.shape());
    sparseLinearBackwardWeights(x, dy, csb, &dw);

    const float eps = 0.25f;
    int checked = 0;
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (w.at(i) == 0.0f) {
            ASSERT_EQ(dw.at(i), 0.0f) << "pruned w[" << i << "]";
            continue;   // only live positions carry gradient
        }
        ++checked;
        const float orig = w.at(i);
        w.at(i) = orig + eps;
        const double lp = sparseLoss(x, w, dy);
        w.at(i) = orig - eps;
        const double lm = sparseLoss(x, w, dy);
        w.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dw.at(i), numeric,
                    1e-3 * std::max(1.0, std::fabs(numeric)))
            << "density=" << density << " w[" << i << "]";
    }
    EXPECT_GT(checked, 0);
}

TEST_P(SparseLinear, MacCountsMatchBruteForce)
{
    const double density = GetParam();
    const int64_t n = 6, i_ext = 21, o_ext = 10;
    const Tensor w = maskedMatrix(o_ext, i_ext, density, 503);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);

    Xorshift128Plus rng(509);
    Tensor x(Shape{n, i_ext});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 521, 0.55);
    Tensor dy(Shape{n, o_ext});
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 523, 0.5);

    // Brute force honouring the weight mask and operand zeros — the
    // executors' skip rules replayed as plain loops.
    SparseLinearMacCounts expected;
    for (int64_t o = 0; o < o_ext; ++o) {
        for (int64_t i = 0; i < i_ext; ++i) {
            if (w(o, i) == 0.0f)
                continue;
            for (int64_t in = 0; in < n; ++in) {
                ++expected.forward;
                if (dy(in, o) != 0.0f)
                    ++expected.backwardData;
                if (x(in, i) != 0.0f)
                    ++expected.backwardWeight;
            }
        }
    }

    const SparseLinearMacCounts counted =
        sparseLinearMacCounts(x, dy, csb);
    EXPECT_EQ(counted.forward, expected.forward);
    EXPECT_EQ(counted.backwardData, expected.backwardData);
    EXPECT_EQ(counted.backwardWeight, expected.backwardWeight);

    // The executors' own tallies must agree with the brute force.
    int64_t fw_macs = -1, bw_data_macs = -1, bw_weight_macs = -1;
    sparseLinearForward(x, csb, &fw_macs);
    sparseLinearBackwardData(dy, csb, &bw_data_macs);
    Tensor dw(w.shape());
    sparseLinearBackwardWeights(x, dy, csb, &dw, &bw_weight_macs);
    EXPECT_EQ(fw_macs, expected.forward);
    EXPECT_EQ(bw_data_macs, expected.backwardData);
    EXPECT_EQ(bw_weight_macs, expected.backwardWeight);

    // The weight-only overload is the zero-free upper bound; with
    // operand zeros present the backward counts sit strictly below it.
    const SparseLinearMacCounts bound = sparseLinearMacCounts(x, csb);
    EXPECT_EQ(bound.forward, csb.nnz() * n);
    EXPECT_EQ(counted.forward, bound.forward);
    EXPECT_LT(counted.backwardData, bound.backwardData);
    EXPECT_LT(counted.backwardWeight, bound.backwardWeight);

    // At >= 50% weight sparsity every executed phase count must be
    // strictly below the dense operation space.
    const int64_t dense = n * o_ext * i_ext;
    if (density <= 0.5) {
        EXPECT_LT(counted.forward, dense);
        EXPECT_LT(counted.backwardData, dense);
        EXPECT_LT(counted.backwardWeight, dense);
    }
}

// 0%, 50%, and 80% weight sparsity (the paper's fc operating points).
INSTANTIATE_TEST_SUITE_P(Densities, SparseLinear,
                         ::testing::Values(1.0, 0.5, 0.2));

TEST(SparseLinearViews, PreGatheredTapViewsMatchLocalGather)
{
    // The FcTapViews fast path (one block walk shared by all three
    // phases, as Linear uses per step) must be bit-identical to the
    // per-call gather, tallies included.
    const Tensor w = maskedMatrix(14, 27, 0.4, 901);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);
    const FcTapViews views = gatherFcTapViews(csb);
    Xorshift128Plus rng(907);
    Tensor x(Shape{4, 27});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 911, 0.5);
    Tensor dy(Shape{4, 14});
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 919, 0.5);

    int64_t fw_a = -1, fw_b = -1, bwd_a = -1, bwd_b = -1;
    int64_t bww_a = -1, bww_b = -1;
    const Tensor y_a = sparseLinearForward(x, csb, &fw_a);
    const Tensor y_b = sparseLinearForward(x, csb, &fw_b, &views);
    const Tensor dx_a = sparseLinearBackwardData(dy, csb, &bwd_a);
    const Tensor dx_b =
        sparseLinearBackwardData(dy, csb, &bwd_b, &views);
    Tensor dw_a(w.shape()), dw_b(w.shape());
    sparseLinearBackwardWeights(x, dy, csb, &dw_a, &bww_a);
    sparseLinearBackwardWeights(x, dy, csb, &dw_b, &bww_b, &views);

    EXPECT_EQ(maxAbsDiff(y_a, y_b), 0.0f);
    EXPECT_EQ(maxAbsDiff(dx_a, dx_b), 0.0f);
    EXPECT_EQ(maxAbsDiff(dw_a, dw_b), 0.0f);
    EXPECT_EQ(fw_a, fw_b);
    EXPECT_EQ(bwd_a, bwd_b);
    EXPECT_EQ(bww_a, bww_b);
}

TEST(SparseLinearAccumulate, BackwardWeightsAccumulatesAcrossCalls)
{
    // Param::grad semantics: += into the given tensor, never overwrite.
    const Tensor w = maskedMatrix(7, 12, 0.5, 601);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);
    Xorshift128Plus rng(607);
    Tensor x(Shape{3, 12});
    x.fillGaussian(rng, 1.0f);
    Tensor dy(Shape{3, 7});
    dy.fillGaussian(rng, 1.0f);

    Tensor once(w.shape());
    sparseLinearBackwardWeights(x, dy, csb, &once);
    Tensor twice(w.shape());
    sparseLinearBackwardWeights(x, dy, csb, &twice);
    sparseLinearBackwardWeights(x, dy, csb, &twice);
    for (int64_t i = 0; i < once.numel(); ++i)
        ASSERT_NEAR(twice.at(i), 2.0f * once.at(i),
                    1e-4f * (1.0f + std::fabs(once.at(i))))
            << i;
}

TEST(SparseLinearEdge, EmptyMatrixProducesZeroGradAndZeroMacs)
{
    // A fully pruned fc matrix: every output is zero, nothing
    // executes, nothing accumulates.
    Tensor w(Shape{6, 10});   // all zeros
    const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);
    ASSERT_EQ(csb.nnz(), 0);
    Xorshift128Plus rng(613);
    Tensor x(Shape{2, 10});
    x.fillGaussian(rng, 1.0f);
    Tensor dy(Shape{2, 6});
    dy.fillGaussian(rng, 1.0f);

    int64_t fw = -1, bwd = -1, bww = -1;
    const Tensor y = sparseLinearForward(x, csb, &fw);
    const Tensor dx = sparseLinearBackwardData(dy, csb, &bwd);
    Tensor dw(w.shape());
    sparseLinearBackwardWeights(x, dy, csb, &dw, &bww);
    EXPECT_EQ(fw, 0);
    EXPECT_EQ(bwd, 0);
    EXPECT_EQ(bww, 0);
    for (int64_t i = 0; i < y.numel(); ++i)
        ASSERT_EQ(y.at(i), 0.0f);
    for (int64_t i = 0; i < dx.numel(); ++i)
        ASSERT_EQ(dx.at(i), 0.0f);
    for (int64_t i = 0; i < dw.numel(); ++i)
        ASSERT_EQ(dw.at(i), 0.0f);
}

// --------------------------------------- thread-count determinism sweep

/** Restores the process-wide pool to its env-resolved size on exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard() { ThreadPool::resetGlobal(0); }
};

/** Everything one fc training step produces, for bitwise comparison. */
struct FcStepResult
{
    Tensor y, dx, dw, db;          // dense gemm backend
    Tensor sy, sdx, sdw, sdb;      // CSB sparse backend
};

/**
 * One dense-gemm + one CSB-sparse Linear training step on fixed seeds
 * at the current global pool size. Batch 16 against out_features 10
 * makes the batch dimension the parallel axis for every swept pool
 * size, and in_features 37 leaves a ragged edge block (37 = 4*8 + 5).
 */
FcStepResult
runFcTrainingStep()
{
    const int64_t n = 16, i_ext = 37, o_ext = 10;
    FcStepResult out;
    Xorshift128Plus rng(701);
    Tensor x(Shape{n, i_ext});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 703, 0.5);
    Tensor dy(Shape{n, o_ext});
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 709, 0.5);

    nn::Linear dense(i_ext, o_ext, "dense");
    dense.setBackend(kernels::KernelBackend::kGemm);
    Xorshift128Plus wrng(719);
    dense.weight().value.fillGaussian(wrng, 0.5f);
    dense.bias().value.fillGaussian(wrng, 0.5f);
    out.y = dense.forward(x, true);
    out.dx = dense.backward(dy);
    out.dw = dense.weight().grad;
    out.db = dense.bias().grad;

    nn::Linear sparse(i_ext, o_ext, "sparse");
    sparse.setBackend(kernels::KernelBackend::kSparse);
    sparse.weight().value = dense.weight().value;
    sparse.bias().value = dense.bias().value;
    // Prune ~70% so the CSB executors actually skip blocks and taps.
    Xorshift128Plus prng(727);
    for (int64_t i = 0; i < sparse.weight().value.numel(); ++i) {
        if (prng.nextFloat() < 0.7f)
            sparse.weight().value.at(i) = 0.0f;
    }
    out.sy = sparse.forward(x, true);
    out.sdx = sparse.backward(dy);
    out.sdw = sparse.weight().grad;
    out.sdb = sparse.bias().grad;
    return out;
}

TEST(ThreadSweep, FcTrainingStepBitwiseIdenticalAcrossThreadCounts)
{
    GlobalPoolGuard guard;
    ThreadPool::resetGlobal(1);
    const FcStepResult ref = runFcTrainingStep();

    for (int threads : {2, 3, 8}) {
        ThreadPool::resetGlobal(threads);
        ASSERT_EQ(ThreadPool::global().numThreads(), threads);
        const FcStepResult got = runFcTrainingStep();
        EXPECT_EQ(maxAbsDiff(got.y, ref.y), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.dx, ref.dx), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.dw, ref.dw), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.db, ref.db), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.sy, ref.sy), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.sdx, ref.sdx), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.sdw, ref.sdw), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.sdb, ref.sdb), 0.0f) << threads;
    }
}

TEST(ThreadSweep, FcExecutorsBitwiseIdenticalOnNarrowBatch)
{
    // Batch 3 leaves threads idle at pool size 8: the executors must
    // still produce bit-identical results (private output rows plus
    // the sample-ordered dW reduction are partition-independent).
    GlobalPoolGuard guard;
    const Tensor w = maskedMatrix(24, 40, 0.3, 801);

    Xorshift128Plus rng(809);
    Tensor x(Shape{3, 40});
    x.fillGaussian(rng, 1.0f);
    zeroSome(&x, 811, 0.5);
    Tensor dy(Shape{3, 24});
    dy.fillGaussian(rng, 1.0f);
    zeroSome(&dy, 821, 0.5);

    Tensor ref_y, ref_dx, ref_dw;
    int64_t ref_fw = 0, ref_bwd = 0, ref_bww = 0;
    for (int threads : {1, 2, 3, 8}) {
        ThreadPool::resetGlobal(threads);
        const CsbTensor csb = CsbTensor::encodeMatrix(w, kBlockSide);
        int64_t fw = -1, bwd = -1, bww = -1;
        const Tensor y = sparseLinearForward(x, csb, &fw);
        const Tensor dx = sparseLinearBackwardData(dy, csb, &bwd);
        Tensor dw(w.shape());
        sparseLinearBackwardWeights(x, dy, csb, &dw, &bww);
        if (threads == 1) {
            ref_y = y;
            ref_dx = dx;
            ref_dw = dw;
            ref_fw = fw;
            ref_bwd = bwd;
            ref_bww = bww;
            continue;
        }
        EXPECT_EQ(maxAbsDiff(y, ref_y), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(dx, ref_dx), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(dw, ref_dw), 0.0f) << threads;
        // The MAC tallies are sums of per-chunk integers — equally
        // thread-count-invariant.
        EXPECT_EQ(fw, ref_fw) << threads;
        EXPECT_EQ(bwd, ref_bwd) << threads;
        EXPECT_EQ(bww, ref_bww) << threads;
    }
}

} // namespace
} // namespace sparse
} // namespace procrustes
