/**
 * @file
 * Numeric gradient checks for every differentiable layer.
 *
 * Analytic gradients from backward() are compared against central
 * differences of the loss. Correct gradients are the foundation of
 * every accuracy experiment in the paper reproduction: if backprop is
 * wrong, the Dropback accumulated-gradient machinery is meaningless.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/pooling.h"

namespace procrustes {
namespace nn {
namespace {

/** Loss of a network on a fixed batch (training mode). */
double
netLoss(Network &net, const Tensor &x, const std::vector<int> &labels)
{
    SoftmaxCrossEntropy loss;
    const Tensor logits = net.forward(x, /*training=*/true);
    return loss.forward(logits, labels);
}

/**
 * Compare analytic parameter gradients against central differences.
 * Checks up to `samples` evenly spaced elements of every parameter.
 */
void
checkParamGradients(Network &net, const Tensor &x,
                    const std::vector<int> &labels, double tol,
                    int samples = 12)
{
    SoftmaxCrossEntropy loss;
    net.zeroGrad();
    const Tensor logits = net.forward(x, true);
    loss.forward(logits, labels);
    net.backward(loss.backward());

    const float eps = 1e-3f;
    for (Param *p : net.params()) {
        const int64_t n = p->value.numel();
        const int64_t step = std::max<int64_t>(1, n / samples);
        for (int64_t i = 0; i < n; i += step) {
            const float orig = p->value.at(i);
            p->value.at(i) = orig + eps;
            const double lp = netLoss(net, x, labels);
            p->value.at(i) = orig - eps;
            const double lm = netLoss(net, x, labels);
            p->value.at(i) = orig;
            const double numeric = (lp - lm) / (2.0 * eps);
            const double analytic = p->grad.at(i);
            EXPECT_NEAR(analytic, numeric,
                        tol * std::max(1.0, std::fabs(numeric)))
                << p->name << "[" << i << "]";
        }
    }
}

/** Compare analytic input gradients against central differences. */
void
checkInputGradients(Network &net, Tensor x,
                    const std::vector<int> &labels, double tol,
                    int samples = 10)
{
    SoftmaxCrossEntropy loss;
    net.zeroGrad();
    const Tensor logits = net.forward(x, true);
    loss.forward(logits, labels);
    const Tensor dx = net.backward(loss.backward());

    const float eps = 1e-3f;
    const int64_t n = x.numel();
    const int64_t step = std::max<int64_t>(1, n / samples);
    for (int64_t i = 0; i < n; i += step) {
        const float orig = x.at(i);
        x.at(i) = orig + eps;
        const double lp = netLoss(net, x, labels);
        x.at(i) = orig - eps;
        const double lm = netLoss(net, x, labels);
        x.at(i) = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(dx.at(i), numeric,
                    tol * std::max(1.0, std::fabs(numeric)))
            << "input[" << i << "]";
    }
}

Tensor
randomInput(const Shape &s, uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor x(s);
    x.fillGaussian(rng, 1.0f);
    return x;
}

TEST(GradCheck, LinearLayer)
{
    Network net;
    net.add<Linear>(6, 4, "fc1");
    Xorshift128Plus rng(1);
    kaimingInit(net, rng);
    const Tensor x = randomInput(Shape{3, 6}, 2);
    checkParamGradients(net, x, {0, 1, 3}, 2e-2);
    checkInputGradients(net, x, {0, 1, 3}, 2e-2);
}

TEST(GradCheck, ConvLayer)
{
    Network net;
    Conv2dConfig cfg;
    cfg.inChannels = 2;
    cfg.outChannels = 3;
    cfg.kernel = 3;
    cfg.pad = 1;
    net.add<Conv2d>(cfg, "conv");
    net.add<Flatten>("fl");
    net.add<Linear>(3 * 4 * 4, 2, "fc");
    Xorshift128Plus rng(3);
    kaimingInit(net, rng);
    const Tensor x = randomInput(Shape{2, 2, 4, 4}, 4);
    checkParamGradients(net, x, {0, 1}, 2e-2);
    checkInputGradients(net, x, {0, 1}, 2e-2);
}

TEST(GradCheck, StridedConv)
{
    Network net;
    Conv2dConfig cfg;
    cfg.inChannels = 1;
    cfg.outChannels = 2;
    cfg.kernel = 3;
    cfg.pad = 1;
    cfg.stride = 2;
    net.add<Conv2d>(cfg, "conv");
    net.add<Flatten>("fl");
    net.add<Linear>(2 * 3 * 3, 2, "fc");
    Xorshift128Plus rng(5);
    kaimingInit(net, rng);
    const Tensor x = randomInput(Shape{2, 1, 6, 6}, 6);
    checkParamGradients(net, x, {1, 0}, 2e-2);
    checkInputGradients(net, x, {1, 0}, 2e-2);
}

TEST(GradCheck, ReluNetwork)
{
    Network net;
    net.add<Linear>(5, 8, "fc1");
    net.add<ReLU>("relu");
    net.add<Linear>(8, 3, "fc2");
    Xorshift128Plus rng(7);
    kaimingInit(net, rng);
    const Tensor x = randomInput(Shape{4, 5}, 8);
    checkParamGradients(net, x, {0, 2, 1, 0}, 2e-2);
    checkInputGradients(net, x, {0, 2, 1, 0}, 2e-2);
}

TEST(GradCheck, BatchNormNetwork)
{
    Network net;
    Conv2dConfig cfg;
    cfg.inChannels = 2;
    cfg.outChannels = 4;
    cfg.kernel = 3;
    cfg.pad = 1;
    cfg.bias = false;
    net.add<Conv2d>(cfg, "conv");
    net.add<BatchNorm2d>(4, "bn");
    net.add<ReLU>("relu");
    net.add<Flatten>("fl");
    net.add<Linear>(4 * 4 * 4, 2, "fc");
    Xorshift128Plus rng(9);
    kaimingInit(net, rng);
    const Tensor x = randomInput(Shape{4, 2, 4, 4}, 10);
    // Batch-norm gradients couple the whole batch; slightly looser tol.
    checkParamGradients(net, x, {0, 1, 1, 0}, 4e-2);
    checkInputGradients(net, x, {0, 1, 1, 0}, 4e-2);
}

TEST(GradCheck, MaxPoolNetwork)
{
    Network net;
    Conv2dConfig cfg;
    cfg.inChannels = 1;
    cfg.outChannels = 2;
    cfg.kernel = 3;
    cfg.pad = 1;
    net.add<Conv2d>(cfg, "conv");
    net.add<MaxPool2d>(2, "pool");
    net.add<Flatten>("fl");
    net.add<Linear>(2 * 2 * 2, 2, "fc");
    Xorshift128Plus rng(11);
    kaimingInit(net, rng);
    const Tensor x = randomInput(Shape{2, 1, 4, 4}, 12);
    checkParamGradients(net, x, {1, 0}, 2e-2);
}

TEST(GradCheck, GlobalAvgPoolNetwork)
{
    Network net;
    Conv2dConfig cfg;
    cfg.inChannels = 2;
    cfg.outChannels = 3;
    cfg.kernel = 3;
    cfg.pad = 1;
    net.add<Conv2d>(cfg, "conv");
    net.add<GlobalAvgPool>("gap");
    net.add<Linear>(3, 2, "fc");
    Xorshift128Plus rng(13);
    kaimingInit(net, rng);
    const Tensor x = randomInput(Shape{2, 2, 4, 4}, 14);
    checkParamGradients(net, x, {0, 1}, 2e-2);
    checkInputGradients(net, x, {0, 1}, 2e-2);
}

} // namespace
} // namespace nn
} // namespace procrustes
