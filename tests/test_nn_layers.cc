/**
 * @file
 * Unit tests for the NN layers' forward semantics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"

namespace procrustes {
namespace nn {
namespace {

TEST(Conv2d, OutputShape)
{
    Conv2dConfig cfg;
    cfg.inChannels = 3;
    cfg.outChannels = 8;
    cfg.kernel = 3;
    cfg.pad = 1;
    Conv2d conv(cfg, "c");
    Tensor x(Shape{2, 3, 8, 8});
    const Tensor y = conv.forward(x, true);
    EXPECT_EQ(y.shape(), Shape({2, 8, 8, 8}));
}

TEST(Conv2d, StrideShrinksOutput)
{
    Conv2dConfig cfg;
    cfg.inChannels = 1;
    cfg.outChannels = 1;
    cfg.kernel = 3;
    cfg.pad = 1;
    cfg.stride = 2;
    Conv2d conv(cfg, "c");
    Tensor x(Shape{1, 1, 8, 8});
    EXPECT_EQ(conv.forward(x, true).shape(), Shape({1, 1, 4, 4}));
}

TEST(Conv2d, IdentityKernelPassesThrough)
{
    Conv2dConfig cfg;
    cfg.inChannels = 1;
    cfg.outChannels = 1;
    cfg.kernel = 3;
    cfg.pad = 1;
    cfg.bias = false;
    Conv2d conv(cfg, "c");
    conv.weight().value(0, 0, 1, 1) = 1.0f;   // centre tap only

    Xorshift128Plus rng(5);
    Tensor x(Shape{1, 1, 5, 5});
    x.fillGaussian(rng, 1.0f);
    const Tensor y = conv.forward(x, true);
    EXPECT_LT(maxAbsDiff(x, y), 1e-6f);
}

TEST(Conv2d, KnownValueConvolution)
{
    // 2x2 input, 2x2 kernel of ones, no padding -> single output
    // equal to the input sum.
    Conv2dConfig cfg;
    cfg.inChannels = 1;
    cfg.outChannels = 1;
    cfg.kernel = 2;
    cfg.pad = 0;
    cfg.bias = false;
    Conv2d conv(cfg, "c");
    conv.weight().value.fill(1.0f);
    Tensor x(Shape{1, 1, 2, 2});
    x(0, 0, 0, 0) = 1.0f;
    x(0, 0, 0, 1) = 2.0f;
    x(0, 0, 1, 0) = 3.0f;
    x(0, 0, 1, 1) = 4.0f;
    const Tensor y = conv.forward(x, true);
    EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 10.0f);
}

TEST(Conv2d, BiasAddsPerChannel)
{
    Conv2dConfig cfg;
    cfg.inChannels = 1;
    cfg.outChannels = 2;
    cfg.kernel = 1;
    cfg.pad = 0;
    Conv2d conv(cfg, "c");
    conv.bias().value.at(0) = 1.5f;
    conv.bias().value.at(1) = -2.0f;
    Tensor x(Shape{1, 1, 2, 2});
    const Tensor y = conv.forward(x, true);
    EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 1.5f);
    EXPECT_FLOAT_EQ(y(0, 1, 0, 0), -2.0f);
}

TEST(Linear, MatVecSemantics)
{
    Linear fc(3, 2, "fc");
    // W = [[1,2,3],[4,5,6]], b = [0.5, -0.5]
    for (int o = 0; o < 2; ++o) {
        for (int i = 0; i < 3; ++i)
            fc.weight().value(o, i) = static_cast<float>(o * 3 + i + 1);
    }
    fc.bias().value.at(0) = 0.5f;
    fc.bias().value.at(1) = -0.5f;
    Tensor x(Shape{1, 3});
    x(0, 0) = 1.0f;
    x(0, 1) = 1.0f;
    x(0, 2) = 1.0f;
    const Tensor y = fc.forward(x, true);
    EXPECT_FLOAT_EQ(y(0, 0), 6.5f);
    EXPECT_FLOAT_EQ(y(0, 1), 14.5f);
}

TEST(ReLU, ClampsAndTracksSparsity)
{
    ReLU relu("r");
    Tensor x(Shape{1, 1, 2, 2});
    x(0, 0, 0, 0) = -1.0f;
    x(0, 0, 0, 1) = 2.0f;
    x(0, 0, 1, 0) = 0.0f;
    x(0, 0, 1, 1) = -3.0f;
    const Tensor y = relu.forward(x, true);
    EXPECT_FLOAT_EQ(y(0, 0, 0, 1), 2.0f);
    EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 0.0f);
    EXPECT_DOUBLE_EQ(relu.lastOutputSparsity(), 0.75);
}

TEST(ReLU, BackwardMasksGradient)
{
    ReLU relu("r");
    Tensor x(Shape{1, 1, 1, 2});
    x(0, 0, 0, 0) = -1.0f;
    x(0, 0, 0, 1) = 1.0f;
    relu.forward(x, true);
    Tensor dy(Shape{1, 1, 1, 2});
    dy.fill(3.0f);
    const Tensor dx = relu.backward(dy);
    EXPECT_FLOAT_EQ(dx(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dx(0, 0, 0, 1), 3.0f);
}

TEST(BatchNorm, NormalizesTrainingBatch)
{
    BatchNorm2d bn(2, "bn");
    Xorshift128Plus rng(9);
    Tensor x(Shape{8, 2, 4, 4});
    x.fillGaussian(rng, 3.0f);
    const Tensor y = bn.forward(x, /*training=*/true);

    // Per-channel mean ~0 and variance ~1 after normalization.
    for (int c = 0; c < 2; ++c) {
        double sum = 0.0;
        double sq = 0.0;
        int64_t count = 0;
        for (int n = 0; n < 8; ++n) {
            for (int h = 0; h < 4; ++h) {
                for (int w = 0; w < 4; ++w) {
                    const double v = y(n, c, h, w);
                    sum += v;
                    sq += v * v;
                    ++count;
                }
            }
        }
        EXPECT_NEAR(sum / count, 0.0, 1e-4);
        EXPECT_NEAR(sq / count, 1.0, 1e-2);
    }
}

TEST(BatchNorm, EvalUsesRunningStats)
{
    BatchNorm2d bn(1, "bn");
    Tensor x(Shape{4, 1, 2, 2});
    x.fill(10.0f);
    // Before any training step, running mean 0 / var 1: eval output
    // equals the input (gamma=1, beta=0).
    const Tensor y = bn.forward(x, /*training=*/false);
    EXPECT_NEAR(y(0, 0, 0, 0), 10.0f, 1e-3f);
}

TEST(MaxPool, SelectsMaxAndRoutesGradient)
{
    MaxPool2d pool(2, "p");
    Tensor x(Shape{1, 1, 2, 2});
    x(0, 0, 0, 0) = 1.0f;
    x(0, 0, 0, 1) = 5.0f;
    x(0, 0, 1, 0) = -2.0f;
    x(0, 0, 1, 1) = 0.5f;
    const Tensor y = pool.forward(x, true);
    EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 5.0f);

    Tensor dy(Shape{1, 1, 1, 1});
    dy.fill(2.0f);
    const Tensor dx = pool.backward(dy);
    EXPECT_FLOAT_EQ(dx(0, 0, 0, 1), 2.0f);
    EXPECT_FLOAT_EQ(dx(0, 0, 0, 0), 0.0f);
}

TEST(GlobalAvgPool, AveragesPlane)
{
    GlobalAvgPool gap("g");
    Tensor x(Shape{1, 2, 2, 2});
    for (int i = 0; i < 4; ++i)
        x.at(i) = static_cast<float>(i + 1);   // channel 0: 1..4
    x.at(4) = 8.0f;                            // channel 1: 8,0,0,0
    const Tensor y = gap.forward(x, true);
    EXPECT_EQ(y.shape(), Shape({1, 2}));
    EXPECT_FLOAT_EQ(y(0, 0), 2.5f);
    EXPECT_FLOAT_EQ(y(0, 1), 2.0f);
}

TEST(Flatten, RoundTrip)
{
    Flatten fl("f");
    Tensor x(Shape{2, 3, 4, 4});
    x(1, 2, 3, 3) = 9.0f;
    const Tensor y = fl.forward(x, true);
    EXPECT_EQ(y.shape(), Shape({2, 48}));
    EXPECT_FLOAT_EQ(y(1, 47), 9.0f);
    const Tensor dx = fl.backward(y);
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC)
{
    SoftmaxCrossEntropy loss;
    Tensor logits(Shape{2, 4});
    const double l = loss.forward(logits, {0, 3});
    EXPECT_NEAR(l, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZero)
{
    SoftmaxCrossEntropy loss;
    Xorshift128Plus rng(2);
    Tensor logits(Shape{3, 5});
    logits.fillGaussian(rng, 1.0f);
    loss.forward(logits, {1, 2, 4});
    const Tensor g = loss.backward();
    // Softmax-CE gradient rows sum to zero.
    for (int n = 0; n < 3; ++n) {
        double row = 0.0;
        for (int j = 0; j < 5; ++j)
            row += g(n, j);
        EXPECT_NEAR(row, 0.0, 1e-6);
    }
}

TEST(SoftmaxCrossEntropy, AccuracyTracksArgmax)
{
    SoftmaxCrossEntropy loss;
    Tensor logits(Shape{2, 3});
    logits(0, 1) = 5.0f;   // predicts class 1
    logits(1, 0) = 5.0f;   // predicts class 0
    loss.forward(logits, {1, 2});
    EXPECT_DOUBLE_EQ(loss.accuracy(), 0.5);
}

} // namespace
} // namespace nn
} // namespace procrustes
