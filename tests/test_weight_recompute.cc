/**
 * @file
 * Tests for the Weight-Recompute (WR) unit model (Section V).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/weight_recompute.h"

namespace procrustes {
namespace sparse {
namespace {

TEST(WeightRecompute, StatelessAndDeterministic)
{
    const WeightRecomputeUnit wr(42);
    const WeightRecomputeUnit wr2(42);
    for (uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(wr.initialWeight(i, 0.1f, 1.0f),
                  wr2.initialWeight(i, 0.1f, 1.0f));
        // Repeated queries of the same unit agree (no hidden state).
        EXPECT_EQ(wr.initialWeight(i, 0.1f, 1.0f),
                  wr.initialWeight(i, 0.1f, 1.0f));
    }
}

TEST(WeightRecompute, DifferentSeedsProduceDifferentWeights)
{
    const WeightRecomputeUnit a(1);
    const WeightRecomputeUnit b(2);
    int same = 0;
    for (uint64_t i = 0; i < 100; ++i) {
        if (a.initialWeight(i, 1.0f, 1.0f) ==
            b.initialWeight(i, 1.0f, 1.0f))
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(WeightRecompute, ApproximatelyStandardNormal)
{
    const WeightRecomputeUnit wr(7);
    const int n = 100000;
    double sum = 0.0;
    double sq = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
        const double v = wr.standardVariate(i);
        sum += v;
        sq += v * v;
        // Irwin-Hall(3) support is bounded.
        EXPECT_GT(v, -3.0);
        EXPECT_LT(v, 3.0);
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(WeightRecompute, TailsLighterThanUniform)
{
    // The sum-of-three shape concentrates mass near zero: more than
    // half the variates should fall within one standard deviation
    // (a single uniform would put ~58% outside +-1 of its 3-sigma-wide
    // support; Irwin-Hall(3) puts ~62.5% inside).
    const WeightRecomputeUnit wr(9);
    int inside = 0;
    const int n = 50000;
    for (uint64_t i = 0; i < n; ++i) {
        if (std::fabs(wr.standardVariate(i)) < 1.0)
            ++inside;
    }
    EXPECT_GT(static_cast<double>(inside) / n, 0.55);
}

TEST(WeightRecompute, ScalingImplementsInitFormula)
{
    const WeightRecomputeUnit wr(11);
    // Kaiming std for fan_in 50.
    const float std = std::sqrt(2.0f / 50.0f);
    const float base = wr.initialWeight(5, 1.0f, 1.0f);
    EXPECT_FLOAT_EQ(wr.initialWeight(5, std, 1.0f), base * std);
}

TEST(WeightRecompute, DecayScalesAndZeroKillsOutput)
{
    const WeightRecomputeUnit wr(13);
    const float base = wr.initialWeight(3, 1.0f, 1.0f);
    EXPECT_FLOAT_EQ(wr.initialWeight(3, 1.0f, 0.5f), base * 0.5f);
    EXPECT_FLOAT_EQ(wr.initialWeight(3, 1.0f, 0.0f), 0.0f);
}

TEST(WeightRecompute, DecayScheduleReachesExactZero)
{
    // lambda = 0.9 per iteration: after the paper's 1000-iteration
    // horizon the FP32 product underflows to exactly zero, creating
    // computation sparsity.
    const WeightRecomputeUnit wr(17);
    float decay = 1.0f;
    for (int t = 0; t < 1000; ++t)
        decay *= 0.9f;
    EXPECT_EQ(wr.initialWeight(1, 0.05f, decay), 0.0f);
}

} // namespace
} // namespace sparse
} // namespace procrustes
