/**
 * @file
 * Tests for the Compressed Sparse Block weight format (Section IV-B).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/csb.h"
#include "sparse/mask.h"

namespace procrustes {
namespace sparse {
namespace {

/** Random conv filters with an exact-density mask applied. */
Tensor
sparseFilters(int64_t k, int64_t c, int64_t r, int64_t s, double density,
              uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{k, c, r, s});
    w.fillGaussian(rng, 1.0f);
    SyntheticMaskConfig cfg;
    cfg.targetDensity = density;
    cfg.seed = seed + 1;
    const SparsityMask m = makeSyntheticMask(k, c, r, s, cfg);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (!m.bits[static_cast<size_t>(i)])
            w.at(i) = 0.0f;
    }
    return w;
}

Tensor
sparseMatrix(int64_t rows, int64_t cols, double density, uint64_t seed)
{
    Xorshift128Plus rng(seed);
    Tensor w(Shape{rows, cols});
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (rng.nextDouble() < density)
            w.at(i) = static_cast<float>(rng.nextGaussian());
    }
    return w;
}

/** Reference 180-degree kernel rotation. */
Tensor
rotate180Ref(const Tensor &w)
{
    const Shape &s = w.shape();
    Tensor out(s);
    for (int64_t k = 0; k < s[0]; ++k) {
        for (int64_t c = 0; c < s[1]; ++c) {
            for (int64_t r = 0; r < s[2]; ++r) {
                for (int64_t q = 0; q < s[3]; ++q) {
                    out(k, c, s[2] - 1 - r, s[3] - 1 - q) = w(k, c, r, q);
                }
            }
        }
    }
    return out;
}

/** Encode/decode round trip across densities (property sweep). */
class CsbRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(CsbRoundTrip, ConvFiltersDecodeExactly)
{
    const double density = GetParam();
    const Tensor w = sparseFilters(8, 6, 3, 3, density, 17);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    EXPECT_FLOAT_EQ(maxAbsDiff(csb.decode(), w), 0.0f);
    EXPECT_NEAR(csb.density(), density, 0.05);
}

TEST_P(CsbRoundTrip, RotationMatchesReference)
{
    const double density = GetParam();
    const Tensor w = sparseFilters(5, 4, 3, 3, density, 23);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    EXPECT_FLOAT_EQ(maxAbsDiff(csb.decodeRotated180(), rotate180Ref(w)),
                    0.0f);
}

TEST_P(CsbRoundTrip, MatrixDecodeAndTranspose)
{
    const double density = GetParam();
    const Tensor w = sparseMatrix(20, 12, density, 31);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, 4);
    EXPECT_FLOAT_EQ(maxAbsDiff(csb.decode(), w), 0.0f);

    const Tensor wt = csb.decodeTransposed();
    ASSERT_EQ(wt.shape(), Shape({12, 20}));
    for (int64_t i = 0; i < 20; ++i) {
        for (int64_t j = 0; j < 12; ++j)
            EXPECT_EQ(wt(j, i), w(i, j));
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, CsbRoundTrip,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.9));

TEST(Csb, EmptyTensorHasNoValues)
{
    Tensor w(Shape{4, 4, 3, 3});
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    EXPECT_EQ(csb.nnz(), 0);
    EXPECT_FLOAT_EQ(maxAbsDiff(csb.decode(), w), 0.0f);
}

TEST(Csb, FullyDenseTensorRoundTrips)
{
    Xorshift128Plus rng(3);
    Tensor w(Shape{3, 3, 3, 3});
    w.fillGaussian(rng, 1.0f);
    // fillGaussian essentially never produces exact zeros.
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    EXPECT_EQ(csb.nnz(), w.numel());
    EXPECT_FLOAT_EQ(maxAbsDiff(csb.decode(), w), 0.0f);
}

TEST(Csb, BlockNnzIsPointerSubtraction)
{
    const Tensor w = sparseFilters(6, 5, 3, 3, 0.3, 41);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const SparsityMask m = SparsityMask::fromTensor(w);
    ASSERT_EQ(csb.numBlocks(), 30);
    for (int64_t k = 0; k < 6; ++k) {
        for (int64_t c = 0; c < 5; ++c) {
            EXPECT_EQ(csb.blockNnz(k * 5 + c), m.blockNnz(k, c))
                << "kernel (" << k << ", " << c << ")";
        }
    }
}

TEST(Csb, BlockDenseFetch)
{
    Tensor w(Shape{2, 1, 2, 2});
    w(1, 0, 0, 1) = 3.0f;
    w(1, 0, 1, 0) = -2.0f;
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    const auto b0 = csb.blockDense(0);
    const auto b1 = csb.blockDense(1);
    EXPECT_EQ(b0, (std::vector<float>{0, 0, 0, 0}));
    EXPECT_EQ(b1, (std::vector<float>{0, 3.0f, -2.0f, 0}));
}

TEST(Csb, EdgeBlocksInNonDivisibleMatrix)
{
    // 7x5 matrix with 3x3 blocks exercises ragged edge blocks.
    const Tensor w = sparseMatrix(7, 5, 0.4, 47);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, 3);
    EXPECT_EQ(csb.numBlocks(), 3 * 2);
    EXPECT_FLOAT_EQ(maxAbsDiff(csb.decode(), w), 0.0f);
    EXPECT_FLOAT_EQ(csb.decodeTransposed()(4, 6), w(6, 4));
}

TEST(Csb, StorageAccounting)
{
    const Tensor w = sparseFilters(8, 8, 3, 3, 0.2, 53);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    EXPECT_EQ(csb.valueBytes(), csb.nnz() * 4);
    // 1 bit per dense element.
    EXPECT_EQ(csb.maskBytes(), w.numel() / 8);
    EXPECT_EQ(csb.pointerBytes(), (8 * 8 + 1) * 4);
    EXPECT_EQ(csb.totalBytes(),
              csb.valueBytes() + csb.maskBytes() + csb.pointerBytes());
    // At 20% density the compressed form must beat dense storage.
    EXPECT_LT(csb.totalBytes(), CsbTensor::denseBytes(w.shape()));
}

TEST(Csb, RotationRejectedForMatrices)
{
    const Tensor w = sparseMatrix(4, 4, 0.5, 59);
    const CsbTensor csb = CsbTensor::encodeMatrix(w, 2);
    EXPECT_DEATH(csb.decodeRotated180(), "conv filters");
}

TEST(Csb, TranspositionRejectedForConvFilters)
{
    const Tensor w = sparseFilters(2, 2, 3, 3, 0.5, 61);
    const CsbTensor csb = CsbTensor::encodeConvFilters(w);
    EXPECT_DEATH(csb.decodeTransposed(), "fc matrices");
}

// ------------------------------------------- property / fuzz sweep

/** Bitwise decode identity: every element, exact float equality. */
void
expectBitwiseEqual(const Tensor &got, const Tensor &want)
{
    ASSERT_EQ(got.shape(), want.shape());
    for (int64_t i = 0; i < want.numel(); ++i)
        ASSERT_EQ(got.at(i), want.at(i)) << "element " << i;
}

/** Zero out a `sparsity` fraction of elements, exactly at 0 and 1. */
void
applyRandomMask(Tensor *w, double sparsity, Xorshift128Plus *rng)
{
    for (int64_t i = 0; i < w->numel(); ++i) {
        if (sparsity >= 1.0 || rng->nextDouble() < sparsity)
            w->at(i) = 0.0f;
        else if (w->at(i) == 0.0f)
            w->at(i) = 1.0f;   // force exact target at sparsity 0
    }
}

TEST(CsbFuzz, RandomConvShapesAndSparsitiesRoundTripBitwise)
{
    // Random geometries x {0, 25, 50, 95, 100}% sparsity: the encode
    // must reproduce the dense tensor bit for bit, report the exact
    // non-zero count, and account its bytes consistently.
    Xorshift128Plus rng(20260726);
    const double sparsities[] = {0.0, 0.25, 0.5, 0.95, 1.0};
    for (int iter = 0; iter < 24; ++iter) {
        const int64_t k = 1 + static_cast<int64_t>(rng.next() % 9);
        const int64_t c = 1 + static_cast<int64_t>(rng.next() % 7);
        const int64_t r = 1 + static_cast<int64_t>(rng.next() % 7);
        const int64_t s = 1 + static_cast<int64_t>(rng.next() % 7);
        const double sparsity = sparsities[iter % 5];

        Tensor w(Shape{k, c, r, s});
        w.fillGaussian(rng, 1.0f);
        applyRandomMask(&w, sparsity, &rng);
        int64_t nnz = 0;
        for (int64_t i = 0; i < w.numel(); ++i)
            nnz += w.at(i) != 0.0f;

        const CsbTensor csb = CsbTensor::encodeConvFilters(w);
        EXPECT_EQ(csb.nnz(), nnz) << "shape " << k << "x" << c << "x"
                                  << r << "x" << s;
        expectBitwiseEqual(csb.decode(), w);
        EXPECT_EQ(csb.totalBytes(), csb.valueBytes() + csb.maskBytes() +
                                        csb.pointerBytes());
        EXPECT_EQ(csb.valueBytes(), nnz * 4);
    }
}

TEST(CsbFuzz, RandomMatrixShapesIncludeRaggedBlocks)
{
    // Matrix encodes at block sides that do NOT divide the shape:
    // edge blocks cover the in-range remainder and both traversals
    // (row-major and transposed-while-fetching) must stay bitwise
    // exact.
    Xorshift128Plus rng(424243);
    const double sparsities[] = {0.0, 0.25, 0.5, 0.95, 1.0};
    for (int iter = 0; iter < 24; ++iter) {
        const int64_t rows = 1 + static_cast<int64_t>(rng.next() % 29);
        const int64_t cols = 1 + static_cast<int64_t>(rng.next() % 29);
        const int64_t side = 2 + static_cast<int64_t>(rng.next() % 7);
        const double sparsity = sparsities[iter % 5];

        Tensor w(Shape{rows, cols});
        w.fillGaussian(rng, 1.0f);
        applyRandomMask(&w, sparsity, &rng);

        const CsbTensor csb = CsbTensor::encodeMatrix(w, side);
        EXPECT_EQ(csb.blockSide(), side);
        expectBitwiseEqual(csb.decode(), w);

        const Tensor wt = csb.decodeTransposed();
        ASSERT_EQ(wt.shape(), Shape({cols, rows}));
        for (int64_t i = 0; i < rows; ++i) {
            for (int64_t j = 0; j < cols; ++j)
                ASSERT_EQ(wt(j, i), w(i, j))
                    << rows << "x" << cols << " side " << side;
        }
    }
}

TEST(CsbFuzz, TotalBytesMonotoneInNonzeroCount)
{
    // On a fixed geometry, mask and pointer storage are constant, so
    // totalBytes must grow strictly with every added non-zero —
    // checked by revealing one random zero at a time from the empty
    // tensor up to fully dense.
    Xorshift128Plus rng(777);
    Tensor w(Shape{3, 4, 3, 3});
    int64_t prev = CsbTensor::encodeConvFilters(w).totalBytes();
    const int64_t empty_bytes = prev;

    std::vector<int64_t> order(static_cast<size_t>(w.numel()));
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int64_t>(i);
    for (size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.next() % i]);

    for (int64_t idx : order) {
        w.at(idx) = static_cast<float>(rng.nextGaussian()) + 10.0f;
        const int64_t bytes =
            CsbTensor::encodeConvFilters(w).totalBytes();
        EXPECT_EQ(bytes, prev + 4);   // one value word per non-zero
        prev = bytes;
    }
    EXPECT_EQ(prev, empty_bytes + w.numel() * 4);
}

TEST(CsbFuzz, EmptyTensorsAcrossKindsAndRaggedEdges)
{
    // All-zero tensors: no values, only mask + pointer overhead, and
    // the round trip still reproduces the zeros exactly — including a
    // matrix smaller than one block.
    Tensor conv(Shape{2, 3, 5, 5});
    const CsbTensor cc = CsbTensor::encodeConvFilters(conv);
    EXPECT_EQ(cc.nnz(), 0);
    EXPECT_EQ(cc.valueBytes(), 0);
    EXPECT_EQ(cc.totalBytes(), cc.maskBytes() + cc.pointerBytes());
    expectBitwiseEqual(cc.decode(), conv);

    Tensor mat(Shape{2, 3});
    const CsbTensor cm = CsbTensor::encodeMatrix(mat, 8);
    EXPECT_EQ(cm.nnz(), 0);
    EXPECT_EQ(cm.numBlocks(), 1);   // one ragged block covers it all
    expectBitwiseEqual(cm.decode(), mat);
    expectBitwiseEqual(cm.decodeTransposed(), Tensor(Shape{3, 2}));
}

TEST(Csb, VariableKernelSizesSupported)
{
    // Region size adapts per layer: 1x1, 5x5, 7x7 kernels all encode.
    for (int64_t kernel : {1, 5, 7}) {
        const Tensor w =
            sparseFilters(4, 3, kernel, kernel, 0.3, 67 + kernel);
        const CsbTensor csb = CsbTensor::encodeConvFilters(w);
        EXPECT_EQ(csb.blockElems(), kernel * kernel);
        EXPECT_FLOAT_EQ(maxAbsDiff(csb.decode(), w), 0.0f);
        EXPECT_FLOAT_EQ(
            maxAbsDiff(csb.decodeRotated180(), rotate180Ref(w)), 0.0f);
    }
}

} // namespace
} // namespace sparse
} // namespace procrustes
