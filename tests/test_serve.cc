/**
 * @file
 * Multi-tenant training service: TrainingJob == trainNetwork bitwise
 * equivalence, the mid-epoch checkpoint/resume sweep (checkpoint step
 * x thread count, all bitwise), fair-share scheduling, and the
 * concurrent == solo determinism guarantee.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/activations.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/sgd.h"
#include "nn/trainer.h"
#include "serve/job_scheduler.h"
#include "serve/training_job.h"
#include "sparse/gradual_pruning.h"

namespace procrustes {
namespace {

using nn::Dataset;
using nn::Network;
using serve::JobConfig;
using serve::JobScheduler;
using serve::SchedulerConfig;
using serve::TrainingJob;

/** Restore the default global pool when a sweep test exits. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard() { ThreadPool::resetGlobal(0); }
};

/** CSB-backend MLP: the sparse job the sweep checkpoints. */
void
buildSparseMlp(Network &net, uint64_t seed)
{
    net.add<nn::Flatten>("fl");
    net.add<nn::Linear>(2, 24, "fc1");
    net.add<nn::ReLU>("r1");
    net.add<nn::Linear>(24, 24, "fc2");
    net.add<nn::ReLU>("r2");
    net.add<nn::Linear>(24, 3, "fc3");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
    for (size_t i = 0; i < net.size(); ++i) {
        if (auto *fc = dynamic_cast<nn::Linear *>(net.layer(i)))
            fc->setBackend(kernels::KernelBackend::kSparse);
    }
}

std::pair<Dataset, Dataset>
serveSpirals()
{
    nn::SpiralConfig cfg;
    cfg.samplesPerClass = 20;   // 60 samples: batch 16 leaves a
    cfg.seed = 5;               // ragged 12-sample tail, 4 steps/epoch
    const Dataset train = nn::makeSpirals(cfg);
    cfg.seed = 55;
    const Dataset val = nn::makeSpirals(cfg);
    return {train, val};
}

sparse::GradualPruningConfig
servePruning()
{
    sparse::GradualPruningConfig pc;
    pc.targetSparsity = 4.0;
    pc.lr = 0.08f;
    pc.warmupIterations = 4;
    pc.pruneInterval = 3;
    pc.pruneFraction = 0.25;
    return pc;
}

JobConfig
sweepJobConfig()
{
    JobConfig jc;
    jc.name = "sweep";
    jc.epochs = 3;
    jc.batchSize = 16;
    jc.shuffleSeed = 7;
    return jc;
}

std::unique_ptr<TrainingJob>
makeSweepJob(const Dataset &train, const Dataset &val)
{
    return std::make_unique<TrainingJob>(
        sweepJobConfig(), [](Network &n) { buildSparseMlp(n, 11); },
        [] {
            return std::make_unique<
                sparse::GradualMagnitudePruningOptimizer>(
                servePruning());
        },
        &train, &val);
}

std::vector<Tensor>
copyWeights(Network &net)
{
    std::vector<Tensor> out;
    // COW value semantics: the copy keeps these bits even if the net
    // keeps training.
    for (nn::Param *p : net.params())
        out.push_back(p->value);
    return out;
}

void
expectWeightsEqual(const std::vector<Tensor> &a,
                   const std::vector<Tensor> &b,
                   const std::string &what)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t pi = 0; pi < a.size(); ++pi) {
        ASSERT_EQ(a[pi].numel(), b[pi].numel());
        const float *av = a[pi].data();
        const float *bv = b[pi].data();
        for (int64_t i = 0; i < a[pi].numel(); ++i)
            ASSERT_EQ(av[i], bv[i])
                << what << " param " << pi << " elem " << i;
    }
}

void
expectHistoryEqual(const std::vector<nn::EpochStats> &a,
                   const std::vector<nn::EpochStats> &b,
                   const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t e = 0; e < a.size(); ++e) {
        EXPECT_EQ(a[e].epoch, b[e].epoch) << what;
        EXPECT_EQ(a[e].trainLoss, b[e].trainLoss) << what;
        EXPECT_EQ(a[e].trainAccuracy, b[e].trainAccuracy) << what;
        EXPECT_EQ(a[e].valAccuracy, b[e].valAccuracy) << what;
        EXPECT_EQ(a[e].weightSparsity, b[e].weightSparsity) << what;
    }
}

// ---------------------------------------------------------------------
// TrainingJob == trainNetwork
// ---------------------------------------------------------------------

TEST(TrainingJob, MatchesPlainTrainerBitwise)
{
    const auto splits = serveSpirals();

    Network ref;
    buildSparseMlp(ref, 11);
    sparse::GradualMagnitudePruningOptimizer ref_opt(servePruning());
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batchSize = 16;
    std::vector<double> ref_losses;
    const auto ref_hist = nn::trainNetwork(
        ref, ref_opt, splits.first, splits.second, tc,
        [&](const nn::StepTelemetry &t) {
            ref_losses.push_back(t.batchLoss);
        });

    auto job = makeSweepJob(splits.first, splits.second);
    std::vector<double> job_losses;
    std::vector<int64_t> job_steps;
    job->setObserver([&](const nn::StepTelemetry &t) {
        job_losses.push_back(t.batchLoss);
        job_steps.push_back(t.step);
    });
    job->run();

    ASSERT_TRUE(job->finished());
    ASSERT_EQ(job_losses.size(), ref_losses.size());
    for (size_t i = 0; i < ref_losses.size(); ++i) {
        ASSERT_EQ(job_losses[i], ref_losses[i]) << "step " << i;
        ASSERT_EQ(job_steps[i], static_cast<int64_t>(i));
    }
    expectHistoryEqual(job->history(), ref_hist, "job-vs-trainer");

    const auto ref_params = ref.params();
    const auto jw = copyWeights(job->network());
    ASSERT_EQ(jw.size(), ref_params.size());
    for (size_t pi = 0; pi < ref_params.size(); ++pi) {
        const float *av = ref_params[pi]->value.data();
        const float *bv = jw[pi].data();
        for (int64_t i = 0; i < ref_params[pi]->value.numel(); ++i)
            ASSERT_EQ(av[i], bv[i]);
    }
}

// ---------------------------------------------------------------------
// Mid-epoch checkpoint / resume sweep (checkpoint step x threads)
// ---------------------------------------------------------------------

TEST(TrainingJob, CheckpointResumeSweepIsBitwise)
{
    GlobalPoolGuard guard;
    const auto splits = serveSpirals();

    // Uninterrupted reference at one thread: per-step losses, epoch
    // history, final weights.
    ThreadPool::resetGlobal(1);
    auto ref = makeSweepJob(splits.first, splits.second);
    std::vector<double> ref_losses;
    ref->setObserver([&](const nn::StepTelemetry &t) {
        ref_losses.push_back(t.batchLoss);
    });
    ref->run();
    const auto ref_weights = copyWeights(ref->network());
    const auto ref_history = ref->history();
    const int64_t total_steps = ref->globalStep();
    ASSERT_EQ(total_steps, 12);   // 3 epochs x 4 steps

    // Checkpoint at: a fresh job, after one step, mid-epoch (step 6 =
    // epoch 1 step 2), and at an epoch boundary (step 8 = epoch 2
    // step 0) — the pruning schedule (warmup 4, interval 3) has fired
    // by the later points.
    for (const int64_t ckpt_at : {0, 1, 6, 8}) {
        std::vector<uint8_t> blob;
        {
            ThreadPool::resetGlobal(1);
            auto first = makeSweepJob(splits.first, splits.second);
            for (int64_t s = 0; s < ckpt_at; ++s)
                first->step();
            blob = first->checkpoint();
        }

        for (const int threads : {1, 2, 3, 8}) {
            ThreadPool::resetGlobal(threads);
            auto resumed = makeSweepJob(splits.first, splits.second);
            resumed->restore(blob);
            ASSERT_EQ(resumed->globalStep(), ckpt_at);

            std::vector<double> res_losses;
            resumed->setObserver([&](const nn::StepTelemetry &t) {
                res_losses.push_back(t.batchLoss);
            });
            resumed->run();

            const std::string what = "ckpt@" +
                                     std::to_string(ckpt_at) +
                                     " threads=" +
                                     std::to_string(threads);
            // Post-resume steps match the reference tail exactly.
            ASSERT_EQ(res_losses.size(),
                      static_cast<size_t>(total_steps - ckpt_at))
                << what;
            for (size_t i = 0; i < res_losses.size(); ++i)
                ASSERT_EQ(res_losses[i],
                          ref_losses[static_cast<size_t>(ckpt_at) + i])
                    << what << " resumed step " << i;

            // Epochs closed after the restore point match, including
            // the epoch the checkpoint interrupted mid-stream (its
            // accumulators travelled in the cursor).
            const size_t first_epoch =
                resumed->history().empty()
                    ? ref_history.size()
                    : static_cast<size_t>(
                          resumed->history().front().epoch);
            ASSERT_EQ(resumed->history().size() + first_epoch,
                      ref_history.size())
                << what;
            for (size_t e = 0; e < resumed->history().size(); ++e) {
                const auto &a = resumed->history()[e];
                const auto &b = ref_history[first_epoch + e];
                ASSERT_EQ(a.epoch, b.epoch) << what;
                ASSERT_EQ(a.trainLoss, b.trainLoss) << what;
                ASSERT_EQ(a.trainAccuracy, b.trainAccuracy) << what;
                ASSERT_EQ(a.valAccuracy, b.valAccuracy) << what;
                ASSERT_EQ(a.weightSparsity, b.weightSparsity) << what;
            }

            expectWeightsEqual(copyWeights(resumed->network()),
                               ref_weights, what);
        }
    }
    // The sweep exercised a genuinely sparse trajectory.
    EXPECT_GT(ref_history.back().weightSparsity, 0.1);
}

// ---------------------------------------------------------------------
// Scheduler: concurrent == solo, fairness, stats
// ---------------------------------------------------------------------

/** Four tenants with distinct models, optimizers, and seeds. */
std::vector<std::unique_ptr<TrainingJob>>
makeTenantJobs(const Dataset &train, const Dataset &val,
               int64_t epochs = 2)
{
    std::vector<std::unique_ptr<TrainingJob>> jobs;
    const char *names[4] = {"prune-a", "prune-b", "momentum", "plain"};
    for (int j = 0; j < 4; ++j) {
        JobConfig jc;
        jc.name = names[j];
        jc.epochs = epochs;
        jc.batchSize = 16;
        jc.shuffleSeed = 7 + static_cast<uint64_t>(j);
        const uint64_t seed = 11 + static_cast<uint64_t>(j);
        serve::OptimizerFactory make_opt;
        switch (j) {
        case 0:
            make_opt = [] {
                return std::make_unique<
                    sparse::GradualMagnitudePruningOptimizer>(
                    servePruning());
            };
            break;
        case 1:
            make_opt = [] {
                auto pc = servePruning();
                pc.targetSparsity = 6.0;
                pc.pruneFraction = 0.4;
                return std::make_unique<
                    sparse::GradualMagnitudePruningOptimizer>(pc);
            };
            break;
        case 2:
            make_opt = [] {
                return std::make_unique<nn::Sgd>(0.05f, 0.9f);
            };
            break;
        default:
            make_opt = [] {
                return std::make_unique<nn::Sgd>(0.05f);
            };
            break;
        }
        jobs.push_back(std::make_unique<TrainingJob>(
            jc, [seed](Network &n) { buildSparseMlp(n, seed); },
            make_opt, &train, &val));
    }
    return jobs;
}

TEST(JobScheduler, ConcurrentJobsMatchSoloBitwise)
{
    GlobalPoolGuard guard;
    const auto splits = serveSpirals();

    // Solo references, one thread.
    ThreadPool::resetGlobal(1);
    std::vector<std::vector<Tensor>> solo_weights;
    std::vector<std::vector<nn::EpochStats>> solo_history;
    {
        auto jobs = makeTenantJobs(splits.first, splits.second);
        for (auto &j : jobs) {
            j->run();
            solo_weights.push_back(copyWeights(j->network()));
            solo_history.push_back(j->history());
        }
    }

    for (const int threads : {2, 8}) {
        ThreadPool::resetGlobal(threads);
        JobScheduler sched;
        std::vector<TrainingJob *> handles;
        for (auto &j : makeTenantJobs(splits.first, splits.second))
            handles.push_back(sched.addJob(std::move(j)));
        sched.runAll();
        ASSERT_TRUE(sched.allFinished());

        for (size_t j = 0; j < handles.size(); ++j) {
            const std::string what =
                handles[j]->config().name + " threads=" +
                std::to_string(threads);
            expectHistoryEqual(handles[j]->history(),
                               solo_history[j], what);
            expectWeightsEqual(copyWeights(handles[j]->network()),
                               solo_weights[j], what);
        }
    }
}

TEST(JobScheduler, FairShareBoundsEpochSpread)
{
    const auto splits = serveSpirals();

    // Mixed job lengths and a concurrency cap below the job count.
    SchedulerConfig sc;
    sc.maxConcurrent = 2;
    JobScheduler sched(sc);
    std::vector<TrainingJob *> handles;
    const int64_t lengths[4] = {2, 2, 4, 4};
    for (int j = 0; j < 4; ++j) {
        JobConfig jc;
        jc.name = "t" + std::to_string(j);
        jc.epochs = lengths[j];
        jc.batchSize = 16;
        const uint64_t seed = 21 + static_cast<uint64_t>(j);
        handles.push_back(sched.addJob(std::make_unique<TrainingJob>(
            jc, [seed](Network &n) { buildSparseMlp(n, seed); },
            [] { return std::make_unique<nn::Sgd>(0.05f); },
            &splits.first, &splits.second)));
    }

    while (sched.runRound() > 0) {
        // Fairness invariant: among unfinished jobs, epoch spread <= 1.
        int64_t lo = INT64_MAX;
        int64_t hi = INT64_MIN;
        for (TrainingJob *j : handles) {
            if (j->finished())
                continue;
            lo = std::min(lo, j->epochsCompleted());
            hi = std::max(hi, j->epochsCompleted());
        }
        if (lo <= hi)
            EXPECT_LE(hi - lo, 1);
    }
    for (int j = 0; j < 4; ++j)
        EXPECT_EQ(handles[j]->epochsCompleted(), lengths[j]);
    // 12 epochs of work at 2 per round.
    EXPECT_EQ(sched.roundsExecuted(), 6);
}

TEST(StatsWriter, StreamsStepAndEpochLines)
{
    const auto splits = serveSpirals();
    const std::string path =
        ::testing::TempDir() + "serve_stats_test.jsonl";

    {
        serve::StatsWriter stats(path);
        auto job = makeSweepJob(splits.first, splits.second);
        job->setStatsWriter(&stats);
        job->runEpoch();
        job->runEpoch();
        // 2 epochs x 4 steps + 2 epoch summaries.
        EXPECT_EQ(stats.linesWritten(), 10);
        job->setStatsWriter(nullptr);
        job->runEpoch();
        EXPECT_EQ(stats.linesWritten(), 10);
    }

    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[512];
    int steps = 0;
    int epochs = 0;
    int lines = 0;
    while (std::fgets(line, sizeof(line), f)) {
        ++lines;
        const std::string s(line);
        EXPECT_EQ(s.front(), '{');
        EXPECT_NE(s.find("\"job\": \"sweep\""), std::string::npos);
        if (s.find("\"kind\": \"step\"") != std::string::npos) {
            ++steps;
            EXPECT_NE(s.find("\"loss\": "), std::string::npos);
        } else {
            EXPECT_NE(s.find("\"kind\": \"epoch\""),
                      std::string::npos);
            ++epochs;
            EXPECT_NE(s.find("\"val_accuracy\": "),
                      std::string::npos);
        }
    }
    std::fclose(f);
    EXPECT_EQ(lines, 10);
    EXPECT_EQ(steps, 8);
    EXPECT_EQ(epochs, 2);
    std::remove(path.c_str());
}

} // namespace
} // namespace procrustes
