/**
 * @file
 * Tests for the half-tile load balancer (Figure 9).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "arch/load_balancer.h"
#include "common/rng.h"

namespace procrustes {
namespace arch {
namespace {

TEST(LoadBalancer, UniformWorkUnchanged)
{
    const std::vector<TileHalves> tiles(16, TileHalves{1.0, 1.0});
    const auto balanced = rebalanceHalfTiles(tiles);
    for (double w : balanced)
        EXPECT_DOUBLE_EQ(w, 2.0);
    EXPECT_DOUBLE_EQ(rebalancedMax(tiles), unbalancedMax(tiles));
}

TEST(LoadBalancer, PairsSparseWithDense)
{
    // Figure 9's worked example: one dense tile, one empty tile.
    const std::vector<TileHalves> tiles{{4.0, 4.0}, {0.0, 0.0}};
    const auto balanced = rebalanceHalfTiles(tiles);
    // Each new tile gets one heavy and one empty half.
    EXPECT_DOUBLE_EQ(balanced[0], 4.0);
    EXPECT_DOUBLE_EQ(balanced[1], 4.0);
    EXPECT_DOUBLE_EQ(unbalancedMax(tiles), 8.0);
    EXPECT_DOUBLE_EQ(rebalancedMax(tiles), 4.0);
}

TEST(LoadBalancer, ConservesTotalWork)
{
    Xorshift128Plus rng(5);
    std::vector<TileHalves> tiles;
    double total = 0.0;
    for (int i = 0; i < 16; ++i) {
        TileHalves t{rng.nextDouble(), rng.nextDouble()};
        total += t.total();
        tiles.push_back(t);
    }
    const auto balanced = rebalanceHalfTiles(tiles);
    const double balanced_total =
        std::accumulate(balanced.begin(), balanced.end(), 0.0);
    EXPECT_NEAR(balanced_total, total, 1e-12);
}

/** Property sweep over random working sets of varying skew. */
class BalancerProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BalancerProperty, NeverIncreasesMaxAndBeatsWorstCase)
{
    Xorshift128Plus rng(static_cast<uint64_t>(GetParam()));
    std::vector<TileHalves> tiles;
    double total = 0.0;
    for (int i = 0; i < 16; ++i) {
        // Lognormal-ish skew mimics kernel-density variation.
        const double a = std::exp(1.5 * rng.nextGaussian());
        const double b = std::exp(1.5 * rng.nextGaussian());
        tiles.push_back({a, b});
        total += a + b;
    }
    const double before = unbalancedMax(tiles);
    const double after = rebalancedMax(tiles);
    const double ideal = total / 16.0;

    // Pairing never hurts and never beats perfect balance.
    EXPECT_LE(after, before + 1e-12);
    EXPECT_GE(after, ideal - 1e-12);
}

TEST_P(BalancerProperty, GuaranteedBound)
{
    // Opposite-end pairing guarantees max <= ideal + max_half (the
    // heaviest half is paired with the lightest).
    Xorshift128Plus rng(static_cast<uint64_t>(GetParam()) + 1000);
    std::vector<TileHalves> tiles;
    double max_half = 0.0;
    double total = 0.0;
    for (int i = 0; i < 16; ++i) {
        const double a = rng.nextDouble() * 10.0;
        const double b = rng.nextDouble() * 10.0;
        tiles.push_back({a, b});
        max_half = std::max({max_half, a, b});
        total += a + b;
    }
    EXPECT_LE(rebalancedMax(tiles), total / 16.0 + max_half + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalancerProperty,
                         ::testing::Range(1, 21));

TEST(LoadBalancer, SignificantImprovementOnSkewedSets)
{
    // Average improvement over many skewed working sets should be
    // substantial (the Figure 5 -> Figure 13 transformation).
    Xorshift128Plus rng(99);
    double before_sum = 0.0;
    double after_sum = 0.0;
    double ideal_sum = 0.0;
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<TileHalves> tiles;
        double total = 0.0;
        for (int i = 0; i < 16; ++i) {
            // Mask-like skew (calibrated sigma, see SyntheticMaskConfig):
            // strong enough to hurt, mild enough that half-tile pairing
            // can absorb most of it.
            const double a = std::exp(0.5 * rng.nextGaussian());
            const double b = std::exp(0.5 * rng.nextGaussian());
            tiles.push_back({a, b});
            total += a + b;
        }
        before_sum += unbalancedMax(tiles);
        after_sum += rebalancedMax(tiles);
        ideal_sum += total / 16.0;
    }
    const double before_overhead = before_sum / ideal_sum - 1.0;
    const double after_overhead = after_sum / ideal_sum - 1.0;
    // A solid chunk of the imbalance must vanish. Pairing cannot be
    // perfect: the heaviest single half floors the balanced maximum,
    // so expect roughly a halving rather than elimination.
    EXPECT_LT(after_overhead, 0.6 * before_overhead);
}

TEST(LoadBalancer, EmptySetDies)
{
    const std::vector<TileHalves> empty;
    EXPECT_DEATH(rebalancedMax(empty), "empty");
    EXPECT_DEATH(unbalancedMax(empty), "empty");
}

} // namespace
} // namespace arch
} // namespace procrustes
