/**
 * @file
 * Tests for the load-imbalance histograms (Figures 5 and 13).
 */

#include <gtest/gtest.h>

#include "arch/imbalance.h"

namespace procrustes {
namespace arch {
namespace {

TEST(Histogram, BinsAndNormalizes)
{
    const std::vector<double> overheads{0.0, 0.05, 0.05, 0.35, 2.0};
    const ImbalanceHistogram h = buildHistogram(overheads, 5, 0.31);
    EXPECT_EQ(h.fraction.size(), 5u);
    double total = 0.0;
    for (double f : h.fraction)
        total += f;
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(h.fraction[0], 0.6, 1e-12);   // 0, .05, .05
    EXPECT_NEAR(h.fraction[1], 0.2, 1e-12);   // .35
    EXPECT_NEAR(h.fraction[4], 0.2, 1e-12);   // 2.0 clamps to last bin
    EXPECT_NEAR(h.maxOverhead, 2.0, 1e-12);
}

TEST(Histogram, FractionAboveThreshold)
{
    const std::vector<double> overheads{0.0, 0.1, 0.5, 0.7, 0.9};
    const ImbalanceHistogram h = buildHistogram(overheads, 10, 0.1);
    EXPECT_NEAR(h.fractionAbove(0.5), 0.6, 1e-12);
}

class ImbalanceFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        model_ = buildVggS();
        const auto masks = generateMasks(model_, 5.2, 1);
        profiles_ = buildProfiles(model_, masks);
        cfg_ = ArrayConfig::baseline16();
    }

    NetworkModel model_;
    std::vector<LayerSparsityProfile> profiles_;
    ArrayConfig cfg_;
};

TEST_F(ImbalanceFixture, UnbalancedCkShowsHeavyTail)
{
    // Figure 5: under the weight-stationary C,K mapping with no
    // balancing, a sizeable fraction of working sets exceed 50%
    // overhead.
    const auto overheads =
        collectOverheads(model_, profiles_, Phase::Forward,
                         MappingKind::CK, 16, cfg_, BalanceMode::None);
    const ImbalanceHistogram h = buildHistogram(overheads, 32, 0.05);
    EXPECT_GT(h.meanOverhead, 0.25);
    EXPECT_GT(h.fractionAbove(0.5), 0.10);
}

TEST_F(ImbalanceFixture, BalancedKnIsTight)
{
    // Figure 13: half-tile balancing under K,N keeps most working
    // sets under 10% overhead with a bounded worst case.
    const auto overheads = collectOverheads(
        model_, profiles_, Phase::Forward, MappingKind::KN, 16, cfg_,
        BalanceMode::HalfTile);
    const ImbalanceHistogram h = buildHistogram(overheads, 32, 0.05);
    EXPECT_LT(h.meanOverhead, 0.10);
    EXPECT_GT(h.fraction[0] + h.fraction[1], 0.60)
        << "most working sets should sit below 10% overhead";
    EXPECT_LT(h.maxOverhead, 0.60);
}

TEST_F(ImbalanceFixture, BalancingImprovesEveryStatistic)
{
    const auto before =
        collectOverheads(model_, profiles_, Phase::Forward,
                         MappingKind::KN, 16, cfg_, BalanceMode::None);
    const auto after = collectOverheads(
        model_, profiles_, Phase::Forward, MappingKind::KN, 16, cfg_,
        BalanceMode::HalfTile);
    const ImbalanceHistogram hb = buildHistogram(before, 32, 0.05);
    const ImbalanceHistogram ha = buildHistogram(after, 32, 0.05);
    EXPECT_LT(ha.meanOverhead, hb.meanOverhead);
    EXPECT_LE(ha.maxOverhead, hb.maxOverhead + 1e-12);
}

TEST_F(ImbalanceFixture, FullChipBalancingIsPerfect)
{
    const auto overheads = collectOverheads(
        model_, profiles_, Phase::Forward, MappingKind::KN, 16, cfg_,
        BalanceMode::FullChip);
    for (double o : overheads)
        EXPECT_NEAR(o, 0.0, 1e-12);
}

} // namespace
} // namespace arch
} // namespace procrustes
