/**
 * @file
 * Tests for mapping / flow classification (Figures 3 and 11).
 */

#include <gtest/gtest.h>

#include "arch/dataflow.h"

namespace procrustes {
namespace arch {
namespace {

TEST(Dataflow, CkForwardMatchesFigure3)
{
    // Figure 3: x multicast-H (rows carry C), y collect-V, w unicast.
    EXPECT_EQ(classifyFlow(Phase::Forward, Operand::Iacts,
                           MappingKind::CK),
              FlowClass::MulticastRows);
    EXPECT_EQ(classifyFlow(Phase::Forward, Operand::Oacts,
                           MappingKind::CK),
              FlowClass::ReduceCols);
    EXPECT_EQ(classifyFlow(Phase::Forward, Operand::Weights,
                           MappingKind::CK),
              FlowClass::Unicast);
}

TEST(Dataflow, CkBackwardAndUpdateMatchFigure3Table)
{
    // bw: dL/dx output horizontal-reduced, dL/dy vertical, w unicast.
    EXPECT_EQ(classifyFlow(Phase::Backward, Operand::Iacts,
                           MappingKind::CK),
              FlowClass::ReduceRows);
    EXPECT_EQ(classifyFlow(Phase::Backward, Operand::Oacts,
                           MappingKind::CK),
              FlowClass::MulticastCols);
    EXPECT_EQ(classifyFlow(Phase::Backward, Operand::Weights,
                           MappingKind::CK),
              FlowClass::Unicast);
    // wu: x horizontal, dL/dy vertical, dL/dw unicast (collected).
    EXPECT_EQ(classifyFlow(Phase::WeightUpdate, Operand::Iacts,
                           MappingKind::CK),
              FlowClass::MulticastRows);
    EXPECT_EQ(classifyFlow(Phase::WeightUpdate, Operand::Oacts,
                           MappingKind::CK),
              FlowClass::MulticastCols);
    EXPECT_EQ(classifyFlow(Phase::WeightUpdate, Operand::Weights,
                           MappingKind::CK),
              FlowClass::Unicast);
}

TEST(Dataflow, KnForwardMatchesFigure11)
{
    // Figure 11: w multicast-H (rows carry K), x multicast-V (cols
    // carry N), y unicast.
    EXPECT_EQ(classifyFlow(Phase::Forward, Operand::Weights,
                           MappingKind::KN),
              FlowClass::MulticastRows);
    EXPECT_EQ(classifyFlow(Phase::Forward, Operand::Iacts,
                           MappingKind::KN),
              FlowClass::MulticastCols);
    EXPECT_EQ(classifyFlow(Phase::Forward, Operand::Oacts,
                           MappingKind::KN),
              FlowClass::Unicast);
}

TEST(Dataflow, KnBackwardAndUpdateMatchFigure11Table)
{
    EXPECT_EQ(classifyFlow(Phase::Backward, Operand::Weights,
                           MappingKind::KN),
              FlowClass::MulticastRows);
    // dL/dx is summed over K: PEs within a column (the K axis)
    // combine — the "∂L/∂x vertical" row of Figure 11's table.
    EXPECT_EQ(classifyFlow(Phase::Backward, Operand::Iacts,
                           MappingKind::KN),
              FlowClass::ReduceCols);
    EXPECT_EQ(classifyFlow(Phase::Backward, Operand::Oacts,
                           MappingKind::KN),
              FlowClass::Unicast);
    // wu: dL/dw reduced across the minibatch (horizontal) axis, x
    // multicast along each column, dL/dy unicast (Figure 11 table).
    EXPECT_EQ(classifyFlow(Phase::WeightUpdate, Operand::Weights,
                           MappingKind::KN),
              FlowClass::ReduceRows);
    EXPECT_EQ(classifyFlow(Phase::WeightUpdate, Operand::Iacts,
                           MappingKind::KN),
              FlowClass::MulticastCols);
    EXPECT_EQ(classifyFlow(Phase::WeightUpdate, Operand::Oacts,
                           MappingKind::KN),
              FlowClass::Unicast);
}

TEST(Dataflow, PqForwardBroadcastsWeights)
{
    EXPECT_EQ(classifyFlow(Phase::Forward, Operand::Weights,
                           MappingKind::PQ),
              FlowClass::Broadcast);
    EXPECT_EQ(classifyFlow(Phase::Forward, Operand::Iacts,
                           MappingKind::PQ),
              FlowClass::Unicast);
    // wu with PQ: the dw output is reduced across the whole array —
    // the interconnect pain the paper calls out.
    EXPECT_EQ(classifyFlow(Phase::WeightUpdate, Operand::Weights,
                           MappingKind::PQ),
              FlowClass::ReduceAll);
}

TEST(Dataflow, SpatialReuseFactors)
{
    // KN fw: weights shared by 16 columns, x by 16 rows, y unicast.
    EXPECT_EQ(spatialReuse(Phase::Forward, Operand::Weights,
                           MappingKind::KN, 16, 16),
              16);
    EXPECT_EQ(spatialReuse(Phase::Forward, Operand::Iacts,
                           MappingKind::KN, 16, 16),
              16);
    EXPECT_EQ(spatialReuse(Phase::Forward, Operand::Oacts,
                           MappingKind::KN, 16, 16),
              1);
    // PQ fw: weights broadcast to all 256 PEs.
    EXPECT_EQ(spatialReuse(Phase::Forward, Operand::Weights,
                           MappingKind::PQ, 16, 16),
              256);
}

TEST(Dataflow, CheapBalancingTruthTable)
{
    // fw/bw (weight-sparse): KN and CN balance along one axis; CK has
    // two sparse axes (needs the Figure 10 interconnect); PQ has none.
    for (Phase p : {Phase::Forward, Phase::Backward}) {
        EXPECT_TRUE(supportsCheapBalancing(p, MappingKind::KN));
        EXPECT_TRUE(supportsCheapBalancing(p, MappingKind::CN));
        EXPECT_FALSE(supportsCheapBalancing(p, MappingKind::CK));
        EXPECT_FALSE(supportsCheapBalancing(p, MappingKind::PQ));
    }
    // wu (iact-sparse): KN balances along N, CK along C; CN has two
    // sparse axes; PQ is "hard to load-balance" (two sparse axes).
    EXPECT_TRUE(supportsCheapBalancing(Phase::WeightUpdate,
                                       MappingKind::KN));
    EXPECT_TRUE(supportsCheapBalancing(Phase::WeightUpdate,
                                       MappingKind::CK));
    EXPECT_FALSE(supportsCheapBalancing(Phase::WeightUpdate,
                                        MappingKind::CN));
    EXPECT_FALSE(supportsCheapBalancing(Phase::WeightUpdate,
                                        MappingKind::PQ));
}

TEST(Dataflow, NamesRoundTrip)
{
    EXPECT_EQ(mappingName(MappingKind::KN), "KN");
    EXPECT_EQ(mappingName(MappingKind::PQ), "PQ");
    EXPECT_EQ(phaseName(Phase::Forward), "fw");
    EXPECT_EQ(phaseName(Phase::WeightUpdate), "wu");
    EXPECT_EQ(flowClassName(FlowClass::MulticastRows), "multicast-H");
}

TEST(Dataflow, OutputOperandsPerPhase)
{
    EXPECT_EQ(outputOperand(Phase::Forward), Operand::Oacts);
    EXPECT_EQ(outputOperand(Phase::Backward), Operand::Iacts);
    EXPECT_EQ(outputOperand(Phase::WeightUpdate), Operand::Weights);
}

TEST(Dataflow, SparseOperandPolicy)
{
    // One source of sparsity per phase (Section I, insight 1).
    EXPECT_EQ(sparseOperand(Phase::Forward), Operand::Weights);
    EXPECT_EQ(sparseOperand(Phase::Backward), Operand::Weights);
    EXPECT_EQ(sparseOperand(Phase::WeightUpdate), Operand::Iacts);
}

} // namespace
} // namespace arch
} // namespace procrustes
