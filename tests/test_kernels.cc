/**
 * @file
 * Tests for the fast compute backend: the blocked GEMM, the im2col
 * lowering, the thread pool, copy-on-write tensor storage, and — most
 * importantly — parity between the naive and GEMM conv/linear backends
 * (forward, dx, dW, db) across strides, paddings, and odd shapes, plus
 * bitwise determinism under multi-threading.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/scratch_arena.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "kernels/gemm.h"
#include "kernels/im2col.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "sparse/csb.h"
#include "sparse/sparse_conv.h"

namespace procrustes {
namespace {

using kernels::KernelBackend;

// ---------------------------------------------------------------- GEMM

/** Reference triple loop: c (+)= a * b. */
void
naiveGemm(int64_t m, int64_t n, int64_t k, const float *a, const float *b,
          float *c, bool accumulate)
{
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float acc = accumulate ? c[i * n + j] : 0.0f;
            for (int64_t p = 0; p < k; ++p)
                acc += a[i * k + p] * b[p * n + j];
            c[i * n + j] = acc;
        }
    }
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapes, MatchesNaiveTripleLoop)
{
    const auto [m, n, k] = GetParam();
    Xorshift128Plus rng(17);
    std::vector<float> a(static_cast<size_t>(m * k));
    std::vector<float> b(static_cast<size_t>(k * n));
    std::vector<float> c(static_cast<size_t>(m * n), 0.5f);
    std::vector<float> ref = c;
    for (auto &v : a)
        v = static_cast<float>(rng.nextGaussian());
    for (auto &v : b)
        v = static_cast<float>(rng.nextGaussian());

    for (bool accumulate : {false, true}) {
        kernels::gemm(m, n, k, a.data(), b.data(), c.data(), accumulate);
        naiveGemm(m, n, k, a.data(), b.data(), ref.data(), accumulate);
        for (size_t i = 0; i < c.size(); ++i)
            ASSERT_NEAR(c[i], ref[i],
                        1e-4f * (1.0f + std::fabs(ref[i])))
                << "acc=" << accumulate << " i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 16, 8),
                      std::make_tuple(5, 17, 3), std::make_tuple(7, 19, 23),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(3, 100, 300),
                      std::make_tuple(130, 33, 71)));

TEST(Gemm, ThreadCountInvariant)
{
    // m values chosen so naive chunking would split a 4-row micro-tile
    // (e.g. m=70 on 2 threads gives 9-row panels without grain
    // rounding); chunk sizes are grain-aligned precisely so every
    // output row lands in the same micro-kernel for any thread count.
    for (int64_t m : {8, 61, 70, 130}) {
        const int64_t n = 47, k = 129;
        Xorshift128Plus rng(23);
        std::vector<float> a(static_cast<size_t>(m * k));
        std::vector<float> b(static_cast<size_t>(k * n));
        for (auto &v : a)
            v = static_cast<float>(rng.nextGaussian());
        for (auto &v : b)
            v = static_cast<float>(rng.nextGaussian());

        std::vector<float> ref(static_cast<size_t>(m * n));
        kernels::gemm(m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                      /*accumulate=*/false, nullptr);
        for (int threads : {1, 2, 3, 4}) {
            ThreadPool pool(threads);
            std::vector<float> c(static_cast<size_t>(m * n));
            kernels::gemm(m, n, k, a.data(), k, b.data(), n, c.data(),
                          n, /*accumulate=*/false, &pool);
            // Row panels partition C on tile boundaries, so the
            // reduction order per element is identical: results must
            // match bitwise, not just approximately.
            for (size_t i = 0; i < c.size(); ++i)
                ASSERT_EQ(c[i], ref[i])
                    << "m=" << m << " threads=" << threads << " i=" << i;
        }
    }
}

TEST(Transpose, RoundTrip)
{
    const int64_t rows = 37, cols = 53;
    Xorshift128Plus rng(31);
    std::vector<float> a(static_cast<size_t>(rows * cols));
    for (auto &v : a)
        v = static_cast<float>(rng.nextGaussian());
    std::vector<float> at(a.size());
    std::vector<float> back(a.size());
    kernels::transpose(a.data(), rows, cols, at.data());
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < cols; ++j)
            ASSERT_EQ(at[static_cast<size_t>(j * rows + i)],
                      a[static_cast<size_t>(i * cols + j)]);
    }
    kernels::transpose(at.data(), cols, rows, back.data());
    EXPECT_EQ(a, back);
}

// --------------------------------------------------------- thread pool

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    const int64_t n = 10000;
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    pool.parallelFor(0, n, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, EmptyAndTinyRanges)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int64_t> sum{0};
    pool.parallelFor(0, 3, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, NestedCallRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    pool.parallelFor(0, 8, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
            // Nested submission must not deadlock; it runs serially.
            pool.parallelFor(0, 4, [&](int64_t b2, int64_t e2) {
                total.fetch_add(e2 - b2);
            });
        }
    });
    EXPECT_EQ(total.load(), 8 * 4);
}

TEST(ThreadPool, ConcurrentSubmittersDegradeToSerial)
{
    // Two application threads sharing one pool: the loser of the
    // submission race runs inline instead of aborting or deadlocking.
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    auto submit = [&] {
        for (int iter = 0; iter < 20; ++iter) {
            pool.parallelFor(0, 1000, [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i)
                    sum.fetch_add(1);
            });
        }
    };
    std::thread t1(submit);
    std::thread t2(submit);
    t1.join();
    t2.join();
    EXPECT_EQ(sum.load(), 2 * 20 * 1000);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    for (int iter = 0; iter < 50; ++iter) {
        std::atomic<int64_t> sum{0};
        pool.parallelFor(0, 100, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                sum.fetch_add(i);
        });
        ASSERT_EQ(sum.load(), 4950);
    }
}

// ------------------------------------------------- copy-on-write tensor

TEST(TensorCow, CopySharesUntilWrite)
{
    Tensor a(Shape{2, 3});
    a.fill(1.0f);
    Tensor b = a;
    const Tensor &ca = a;
    const Tensor &cb = b;
    // Copy is O(1): both views alias one buffer.
    EXPECT_EQ(ca.data(), cb.data());
    EXPECT_TRUE(a.sharesStorage());

    b.at(0) = 7.0f;   // write detaches b only
    EXPECT_NE(ca.data(), cb.data());
    EXPECT_FLOAT_EQ(a.at(0), 1.0f);
    EXPECT_FLOAT_EQ(b.at(0), 7.0f);
    EXPECT_FALSE(a.sharesStorage());
}

TEST(TensorCow, CachedInputSurvivesCallerMutation)
{
    // The Conv2d caching pattern: layer keeps a COW alias, caller then
    // mutates its tensor; the cached values must be unaffected.
    Tensor x(Shape{4});
    for (int i = 0; i < 4; ++i)
        x.at(i) = static_cast<float>(i);
    Tensor cached = x;
    x.fill(-1.0f);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(cached.at(i), static_cast<float>(i));
}

// ------------------------------------------- conv backend parity suite

struct ParityCase
{
    int64_t n, c, h, w, k, kernel, stride, pad;
    bool bias;
};

/** Random conv pair (naive + gemm) with identical weights. */
struct ConvPair
{
    nn::Conv2d naive;
    nn::Conv2d gemm;

    explicit ConvPair(const ParityCase &pc)
        : naive(makeCfg(pc), "naive"), gemm(makeCfg(pc), "gemm")
    {
        naive.setBackend(KernelBackend::kNaive);
        gemm.setBackend(KernelBackend::kGemm);
        Xorshift128Plus rng(7);
        naive.weight().value.fillGaussian(rng, 0.5f);
        gemm.weight().value = naive.weight().value;
        if (pc.bias) {
            naive.bias().value.fillGaussian(rng, 0.5f);
            gemm.bias().value = naive.bias().value;
        }
    }

    static nn::Conv2dConfig
    makeCfg(const ParityCase &pc)
    {
        nn::Conv2dConfig cfg;
        cfg.inChannels = pc.c;
        cfg.outChannels = pc.k;
        cfg.kernel = pc.kernel;
        cfg.stride = pc.stride;
        cfg.pad = pc.pad;
        cfg.bias = pc.bias;
        return cfg;
    }
};

class ConvBackendParity : public ::testing::TestWithParam<ParityCase>
{
};

TEST_P(ConvBackendParity, ForwardAndAllGradientsMatch)
{
    const ParityCase pc = GetParam();
    ConvPair pair(pc);

    Xorshift128Plus rng(11);
    Tensor x(Shape{pc.n, pc.c, pc.h, pc.w});
    x.fillGaussian(rng, 1.0f);

    const Tensor y_naive = pair.naive.forward(x, true);
    const Tensor y_gemm = pair.gemm.forward(x, true);
    ASSERT_EQ(y_naive.shape(), y_gemm.shape());
    EXPECT_LT(maxAbsDiff(y_naive, y_gemm), 1e-4f);

    Tensor dy(y_naive.shape());
    dy.fillGaussian(rng, 1.0f);
    const Tensor dx_naive = pair.naive.backward(dy);
    const Tensor dx_gemm = pair.gemm.backward(dy);
    ASSERT_EQ(dx_naive.shape(), dx_gemm.shape());
    EXPECT_LT(maxAbsDiff(dx_naive, dx_gemm), 1e-4f);
    EXPECT_LT(maxAbsDiff(pair.naive.weight().grad,
                         pair.gemm.weight().grad),
              1e-4f);
    if (pc.bias) {
        EXPECT_LT(maxAbsDiff(pair.naive.bias().grad,
                             pair.gemm.bias().grad),
                  1e-4f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvBackendParity,
    ::testing::Values(
        ParityCase{2, 3, 8, 8, 5, 3, 1, 1, true},     // basic 3x3
        ParityCase{1, 1, 5, 5, 1, 3, 1, 0, false},    // no padding
        ParityCase{2, 4, 9, 9, 6, 3, 2, 1, true},     // stride 2
        ParityCase{1, 2, 7, 9, 3, 3, 1, 1, true},     // non-square input
        ParityCase{2, 3, 6, 6, 4, 1, 1, 0, true},     // 1x1 kernel
        ParityCase{1, 2, 11, 7, 3, 5, 2, 2, false},   // 5x5, stride 2
        ParityCase{3, 5, 10, 6, 7, 3, 3, 1, true},    // stride 3, odd chans
        ParityCase{1, 1, 4, 4, 2, 3, 1, 2, true}));   // pad > 1

TEST(ConvBackendParity, RepeatedBackwardAccumulatesIdentically)
{
    // Two backward passes without zeroing must accumulate the same way
    // on both backends (Param::grad is +=, never overwritten).
    const ParityCase pc{2, 3, 8, 8, 4, 3, 1, 1, true};
    ConvPair pair(pc);
    Xorshift128Plus rng(13);
    Tensor x(Shape{pc.n, pc.c, pc.h, pc.w});
    x.fillGaussian(rng, 1.0f);
    Tensor dy(Shape{pc.n, pc.k, 8, 8});
    dy.fillGaussian(rng, 1.0f);
    for (int pass = 0; pass < 2; ++pass) {
        pair.naive.forward(x, true);
        pair.gemm.forward(x, true);
        pair.naive.backward(dy);
        pair.gemm.backward(dy);
    }
    EXPECT_LT(maxAbsDiff(pair.naive.weight().grad,
                         pair.gemm.weight().grad),
              2e-4f);
}

TEST(ConvBackendParity, GemmBackendIsDeterministic)
{
    // Same inputs twice through the threaded GEMM backend must agree
    // bitwise (maxAbsDiff exactly zero), not just to tolerance.
    const ParityCase pc{2, 8, 12, 12, 16, 3, 1, 1, true};
    ConvPair run1(pc);
    ConvPair run2(pc);
    Xorshift128Plus rng(19);
    Tensor x(Shape{pc.n, pc.c, pc.h, pc.w});
    x.fillGaussian(rng, 1.0f);
    Tensor dy(Shape{pc.n, pc.k, 12, 12});
    dy.fillGaussian(rng, 1.0f);

    const Tensor y1 = run1.gemm.forward(x, true);
    const Tensor y2 = run2.gemm.forward(x, true);
    EXPECT_EQ(maxAbsDiff(y1, y2), 0.0f);
    const Tensor dx1 = run1.gemm.backward(dy);
    const Tensor dx2 = run2.gemm.backward(dy);
    EXPECT_EQ(maxAbsDiff(dx1, dx2), 0.0f);
    EXPECT_EQ(maxAbsDiff(run1.gemm.weight().grad,
                         run2.gemm.weight().grad),
              0.0f);
}

// ----------------------------------------------- linear backend parity

TEST(LinearBackendParity, ForwardAndGradientsMatch)
{
    nn::Linear naive(37, 23, "n");
    nn::Linear gemm(37, 23, "g");
    naive.setBackend(KernelBackend::kNaive);
    gemm.setBackend(KernelBackend::kGemm);
    Xorshift128Plus rng(29);
    naive.weight().value.fillGaussian(rng, 0.5f);
    gemm.weight().value = naive.weight().value;
    naive.bias().value.fillGaussian(rng, 0.5f);
    gemm.bias().value = naive.bias().value;

    Tensor x(Shape{9, 37});
    x.fillGaussian(rng, 1.0f);
    const Tensor y_naive = naive.forward(x, true);
    const Tensor y_gemm = gemm.forward(x, true);
    EXPECT_LT(maxAbsDiff(y_naive, y_gemm), 1e-4f);

    Tensor dy(y_naive.shape());
    dy.fillGaussian(rng, 1.0f);
    const Tensor dx_naive = naive.backward(dy);
    const Tensor dx_gemm = gemm.backward(dy);
    EXPECT_LT(maxAbsDiff(dx_naive, dx_gemm), 1e-4f);
    EXPECT_LT(maxAbsDiff(naive.weight().grad, gemm.weight().grad), 1e-4f);
    EXPECT_LT(maxAbsDiff(naive.bias().grad, gemm.bias().grad), 1e-4f);
}

// ------------------------------------------------------ im2col lowering

TEST(Im2col, Col2imIsAdjointOfIm2col)
{
    // <im2col(x), c> == <x, col2im(c)> for random x, c — the defining
    // property that makes the GEMM backward pass correct.
    const kernels::ConvGeom g = kernels::makeConvGeom(
        /*c=*/2, /*h=*/7, /*w=*/6, /*k=*/1, /*r=*/3, /*s=*/3,
        /*stride=*/2, /*pad=*/1);
    Xorshift128Plus rng(37);
    const int64_t xelems = g.c * g.h * g.w;
    const int64_t celems = g.colRows() * g.colCols();
    std::vector<float> x(static_cast<size_t>(xelems));
    std::vector<float> c(static_cast<size_t>(celems));
    for (auto &v : x)
        v = static_cast<float>(rng.nextGaussian());
    for (auto &v : c)
        v = static_cast<float>(rng.nextGaussian());

    std::vector<float> col(static_cast<size_t>(celems));
    kernels::im2col(x.data(), g, col.data());
    double lhs = 0.0;
    for (int64_t i = 0; i < celems; ++i)
        lhs += static_cast<double>(col[static_cast<size_t>(i)]) *
               c[static_cast<size_t>(i)];

    std::vector<float> back(static_cast<size_t>(xelems), 0.0f);
    kernels::col2im(c.data(), g, back.data());
    double rhs = 0.0;
    for (int64_t i = 0; i < xelems; ++i)
        rhs += static_cast<double>(back[static_cast<size_t>(i)]) *
               x[static_cast<size_t>(i)];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, RejectsKernelLargerThanPaddedInput)
{
    // h + 2*pad - r = -1 would truncate to output extent 1 instead of
    // the mathematically empty 0; the geometry must be rejected.
    EXPECT_DEATH(kernels::makeConvGeom(/*c=*/1, /*h=*/2, /*w=*/2,
                                       /*k=*/1, /*r=*/3, /*s=*/3,
                                       /*stride=*/2, /*pad=*/0),
                 "larger than padded input");
}

// --------------------------------------------------- exact sparse MACs

TEST(SparseConvMacs, ExactlyCountsInBoundsMacs)
{
    // Dense 3x3 kernel on a 4x4 input with pad 1: each spatial tap
    // fires for 3/4/3 valid rows x 3/4/3 valid cols = 100 MACs, not
    // the 9 * 16 = 144 interior upper bound.
    Tensor w(Shape{1, 1, 3, 3});
    w.fill(1.0f);
    const sparse::CsbTensor csb = sparse::CsbTensor::encodeConvFilters(w);
    Tensor x(Shape{1, 1, 4, 4});
    EXPECT_EQ(sparse::sparseConvMacs(x, csb, 1, 1), 100);
}

TEST(SparseConvMacs, MatchesBruteForceCount)
{
    Xorshift128Plus rng(41);
    Tensor w(Shape{3, 2, 3, 3});
    w.fillGaussian(rng, 1.0f);
    // Zero out ~half the taps.
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (rng.nextFloat() < 0.5f)
            w.at(i) = 0.0f;
    }
    const sparse::CsbTensor csb = sparse::CsbTensor::encodeConvFilters(w);

    const int64_t n = 2, h = 6, width = 5, stride = 2, pad = 1;
    Tensor x(Shape{n, 2, h, width});
    const int64_t p_ext = (h + 2 * pad - 3) / stride + 1;
    const int64_t q_ext = (width + 2 * pad - 3) / stride + 1;

    // Brute force: replay the executor's loops and count every MAC.
    int64_t expected = 0;
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t k = 0; k < 3; ++k) {
            for (int64_t c = 0; c < 2; ++c) {
                for (int64_t r = 0; r < 3; ++r) {
                    for (int64_t s = 0; s < 3; ++s) {
                        if (w(k, c, r, s) == 0.0f)
                            continue;
                        for (int64_t p = 0; p < p_ext; ++p) {
                            const int64_t ih = p * stride + r - pad;
                            if (ih < 0 || ih >= h)
                                continue;
                            for (int64_t q = 0; q < q_ext; ++q) {
                                const int64_t iw =
                                    q * stride + s - pad;
                                if (iw < 0 || iw >= width)
                                    continue;
                                ++expected;
                            }
                        }
                    }
                }
            }
        }
    }
    EXPECT_EQ(sparse::sparseConvMacs(x, csb, stride, pad), expected);
}

// --------------------------------------- thread-count determinism sweep

/** Restores the process-wide pool to its env-resolved size on exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard() { ThreadPool::resetGlobal(0); }
};

/** Everything one training step produces, for bitwise comparison. */
struct StepResult
{
    Tensor y, dx, dw, db;          // dense gemm backend
    Tensor sy, sdx, sdw, sdb;      // CSB sparse backend
};

/**
 * One dense-gemm + one CSB-sparse Conv2d training step on fixed seeds
 * at the current global pool size. Batch 5 straddles the dispatch
 * boundary: batch-parallel at 1-3 threads, GEMM-row-panel at 8 — the
 * sweep asserts the decompositions agree bit for bit.
 */
StepResult
runTrainingStep()
{
    nn::Conv2dConfig cfg;
    cfg.inChannels = 4;
    cfg.outChannels = 10;
    cfg.kernel = 3;
    cfg.stride = 1;
    cfg.pad = 1;
    cfg.bias = true;

    StepResult out;
    Xorshift128Plus rng(71);
    Tensor x(Shape{5, 4, 9, 9});
    x.fillGaussian(rng, 1.0f);
    Tensor dy(Shape{5, 10, 9, 9});
    dy.fillGaussian(rng, 1.0f);

    nn::Conv2d dense(cfg, "dense");
    dense.setBackend(KernelBackend::kGemm);
    Xorshift128Plus wrng(73);
    dense.weight().value.fillGaussian(wrng, 0.5f);
    dense.bias().value.fillGaussian(wrng, 0.5f);
    out.y = dense.forward(x, true);
    out.dx = dense.backward(dy);
    out.dw = dense.weight().grad;
    out.db = dense.bias().grad;

    nn::Conv2d sparse(cfg, "sparse");
    sparse.setBackend(KernelBackend::kSparse);
    sparse.weight().value = dense.weight().value;
    sparse.bias().value = dense.bias().value;
    // Prune ~70% so the CSB executors actually skip blocks and taps.
    Xorshift128Plus prng(79);
    for (int64_t i = 0; i < sparse.weight().value.numel(); ++i) {
        if (prng.nextFloat() < 0.7f)
            sparse.weight().value.at(i) = 0.0f;
    }
    out.sy = sparse.forward(x, true);
    out.sdx = sparse.backward(dy);
    out.sdw = sparse.weight().grad;
    out.sdb = sparse.bias().grad;
    return out;
}

TEST(ThreadSweep, TrainingStepBitwiseIdenticalAcrossThreadCounts)
{
    GlobalPoolGuard guard;
    ThreadPool::resetGlobal(1);
    const StepResult ref = runTrainingStep();

    for (int threads : {2, 3, 8}) {
        ThreadPool::resetGlobal(threads);
        ASSERT_EQ(ThreadPool::global().numThreads(), threads);
        const StepResult got = runTrainingStep();
        EXPECT_EQ(maxAbsDiff(got.y, ref.y), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.dx, ref.dx), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.dw, ref.dw), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.db, ref.db), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.sy, ref.sy), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.sdx, ref.sdx), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.sdw, ref.sdw), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(got.sdb, ref.sdb), 0.0f) << threads;
    }
}

TEST(ThreadSweep, WideBatchGemmConvBitwiseIdentical)
{
    // Batch 16 stays batch-parallel at every swept size; stride 2 and
    // asymmetric spatial extents exercise the scratch sizing.
    GlobalPoolGuard guard;
    nn::Conv2dConfig cfg;
    cfg.inChannels = 3;
    cfg.outChannels = 6;
    cfg.kernel = 3;
    cfg.stride = 2;
    cfg.pad = 1;
    cfg.bias = true;

    Xorshift128Plus rng(83);
    Tensor x(Shape{16, 3, 11, 7});
    x.fillGaussian(rng, 1.0f);

    Tensor ref_y, ref_dx, ref_dw, ref_db, dy;
    for (int threads : {1, 2, 3, 8}) {
        ThreadPool::resetGlobal(threads);
        nn::Conv2d conv(cfg, "conv");
        conv.setBackend(KernelBackend::kGemm);
        Xorshift128Plus wrng(89);
        conv.weight().value.fillGaussian(wrng, 0.5f);
        conv.bias().value.fillGaussian(wrng, 0.5f);
        const Tensor y = conv.forward(x, true);
        if (threads == 1) {
            dy = Tensor(y.shape());
            Xorshift128Plus drng(97);
            dy.fillGaussian(drng, 1.0f);
        }
        const Tensor dx = conv.backward(dy);
        if (threads == 1) {
            ref_y = y;
            ref_dx = dx;
            ref_dw = conv.weight().grad;
            ref_db = conv.bias().grad;
            continue;
        }
        EXPECT_EQ(maxAbsDiff(y, ref_y), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(dx, ref_dx), 0.0f) << threads;
        EXPECT_EQ(maxAbsDiff(conv.weight().grad, ref_dw), 0.0f)
            << threads;
        EXPECT_EQ(maxAbsDiff(conv.bias().grad, ref_db), 0.0f) << threads;
    }
}

// --------------------------------------------------------- scratch arena

TEST(ScratchArena, ReusesReturnedBuffers)
{
    ScratchArena arena;
    float *first = nullptr;
    {
        ScratchArena::Buffer b = arena.acquire(1024);
        ASSERT_GE(b.size(), 1024u);
        first = b.data();
        b.data()[0] = 1.0f;
        b.data()[1023] = 2.0f;
    }
    EXPECT_EQ(arena.freeListSize(), 1u);
    {
        // Same-size checkout must come back from the free list — and,
        // with a single cached buffer, as the same allocation.
        ScratchArena::Buffer b = arena.acquire(1024);
        EXPECT_EQ(b.data(), first);
    }
    EXPECT_EQ(arena.reuseCount(), 1);
    EXPECT_EQ(arena.allocCount(), 1);
}

TEST(ScratchArena, BestFitPrefersSmallestSufficientBuffer)
{
    ScratchArena arena;
    {
        ScratchArena::Buffer big = arena.acquire(4096);
        ScratchArena::Buffer small = arena.acquire(64);
    }
    ASSERT_EQ(arena.freeListSize(), 2u);
    ScratchArena::Buffer b = arena.acquire(32);
    EXPECT_EQ(b.size(), 64u);   // took the small one, not the 4096
    EXPECT_EQ(arena.freeListSize(), 1u);
}

TEST(ScratchArena, GrowsLargestWhenNothingFits)
{
    ScratchArena arena;
    {
        ScratchArena::Buffer b = arena.acquire(100);
    }
    ScratchArena::Buffer b = arena.acquire(500);
    EXPECT_GE(b.size(), 500u);
    // Growing a cached buffer counts as an allocation, not a reuse.
    EXPECT_EQ(arena.allocCount(), 2);
    EXPECT_EQ(arena.reuseCount(), 0);
}

TEST(ScratchArena, ZeroFillsOnRequest)
{
    ScratchArena arena;
    {
        ScratchArena::Buffer b = arena.acquire(16);
        for (size_t i = 0; i < 16; ++i)
            b.data()[i] = 3.0f;
    }
    ScratchArena::Buffer b = arena.acquire(16);
    b.zero();
    for (size_t i = 0; i < 16; ++i)
        ASSERT_EQ(b.data()[i], 0.0f) << i;
}

TEST(ScratchArena, ConcurrentCheckoutsAreDistinct)
{
    // Every task checks out a workspace, stamps it, and verifies no
    // other task scribbled on it — the property the batch-parallel
    // conv relies on.
    ScratchArena arena;
    ThreadPool pool(4);
    std::atomic<int> failures{0};
    pool.parallelFor(0, 64, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
            ScratchArena::Buffer buf = arena.acquire(256);
            const float stamp = static_cast<float>(i + 1);
            for (size_t j = 0; j < 256; ++j)
                buf.data()[j] = stamp;
            for (size_t j = 0; j < 256; ++j) {
                if (buf.data()[j] != stamp)
                    failures.fetch_add(1);
            }
        }
    });
    EXPECT_EQ(failures.load(), 0);
}

TEST(SparseConv, DeterministicUnderThreading)
{
    Xorshift128Plus rng(43);
    Tensor w(Shape{8, 4, 3, 3});
    w.fillGaussian(rng, 0.5f);
    for (int64_t i = 0; i < w.numel(); ++i) {
        if (rng.nextFloat() < 0.7f)
            w.at(i) = 0.0f;
    }
    const sparse::CsbTensor csb = sparse::CsbTensor::encodeConvFilters(w);
    Tensor x(Shape{2, 4, 9, 9});
    x.fillGaussian(rng, 1.0f);

    const Tensor y1 = sparse::sparseConvForward(x, csb, 1, 1);
    const Tensor y2 = sparse::sparseConvForward(x, csb, 1, 1);
    EXPECT_EQ(maxAbsDiff(y1, y2), 0.0f);

    Tensor dy(y1.shape());
    dy.fillGaussian(rng, 1.0f);
    const Tensor dx1 =
        sparse::sparseConvBackwardData(dy, csb, x.shape(), 1, 1);
    const Tensor dx2 =
        sparse::sparseConvBackwardData(dy, csb, x.shape(), 1, 1);
    EXPECT_EQ(maxAbsDiff(dx1, dx2), 0.0f);
}

} // namespace
} // namespace procrustes
