/**
 * @file
 * End-to-end training tests for the mini framework on synthetic tasks.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"

namespace procrustes {
namespace nn {
namespace {

/** Small MLP for the spiral task. */
void
buildSpiralMlp(Network &net, uint64_t seed)
{
    net.add<Flatten>("fl");
    net.add<Linear>(2, 48, "fc1");
    net.add<ReLU>("r1");
    net.add<Linear>(48, 48, "fc2");
    net.add<ReLU>("r2");
    net.add<Linear>(48, 3, "fc3");
    Xorshift128Plus rng(seed);
    kaimingInit(net, rng);
}

/** Small CNN for the blob-image task. */
void
buildBlobCnn(Network &net, int classes, uint64_t seed)
{
    Conv2dConfig c1;
    c1.inChannels = 3;
    c1.outChannels = 8;
    c1.kernel = 3;
    c1.pad = 1;
    c1.bias = false;
    net.add<Conv2d>(c1, "conv1");
    net.add<BatchNorm2d>(8, "bn1");
    net.add<ReLU>("r1");
    net.add<MaxPool2d>(2, "pool1");
    Conv2dConfig c2;
    c2.inChannels = 8;
    c2.outChannels = 16;
    c2.kernel = 3;
    c2.pad = 1;
    c2.bias = false;
    net.add<Conv2d>(c2, "conv2");
    net.add<BatchNorm2d>(16, "bn2");
    net.add<ReLU>("r2");
    net.add<GlobalAvgPool>("gap");
    net.add<Linear>(16, classes, "fc");
    Xorshift128Plus rng(seed);
    kaimingInit(net, rng);
}

TEST(Datasets, BlobImagesAreBalancedAndDeterministic)
{
    BlobImageConfig cfg;
    cfg.numClasses = 4;
    cfg.samplesPerClass = 10;
    const Dataset a = makeBlobImages(cfg);
    const Dataset b = makeBlobImages(cfg);
    EXPECT_EQ(a.size(), 40);
    EXPECT_EQ(a.numClasses, 4);
    EXPECT_FLOAT_EQ(maxAbsDiff(a.images, b.images), 0.0f);
    int counts[4] = {0, 0, 0, 0};
    for (int label : a.labels)
        ++counts[label];
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(counts[c], 10);
}

TEST(Datasets, SpiralsCoverAllClasses)
{
    SpiralConfig cfg;
    const Dataset d = makeSpirals(cfg);
    EXPECT_EQ(d.size(), 600);
    EXPECT_EQ(d.images.shape(), Shape({600, 2, 1, 1}));
}

TEST(Datasets, BatchExtraction)
{
    BlobImageConfig cfg;
    cfg.numClasses = 2;
    cfg.samplesPerClass = 3;
    const Dataset d = makeBlobImages(cfg);
    const Tensor b = d.batch({0, 5});
    EXPECT_EQ(b.shape()[0], 2);
    const auto labels = d.batchLabels({0, 5});
    EXPECT_EQ(labels[0], 0);
    EXPECT_EQ(labels[1], 1);
}

TEST(Datasets, EpochOrderIsPermutation)
{
    const auto order = epochOrder(100, 1, 0);
    std::vector<bool> seen(100, false);
    for (int64_t i : order) {
        ASSERT_GE(i, 0);
        ASSERT_LT(i, 100);
        EXPECT_FALSE(seen[static_cast<size_t>(i)]);
        seen[static_cast<size_t>(i)] = true;
    }
    // Different epochs shuffle differently.
    EXPECT_NE(order, epochOrder(100, 1, 1));
}

TEST(Training, MlpLearnsSpirals)
{
    SpiralConfig data_cfg;
    data_cfg.samplesPerClass = 120;
    const Dataset train = makeSpirals(data_cfg);
    data_cfg.seed = 99;
    const Dataset val = makeSpirals(data_cfg);

    Network net;
    buildSpiralMlp(net, 1);
    Sgd opt(0.1f, 0.9f);
    TrainConfig tc;
    tc.epochs = 30;
    tc.batchSize = 32;
    const auto history = trainNetwork(net, opt, train, val, tc);

    EXPECT_GT(history.back().valAccuracy, 0.85)
        << "MLP failed to learn the spiral task";
    // Loss should broadly decrease.
    EXPECT_LT(history.back().trainLoss, history.front().trainLoss);
}

TEST(Training, CnnLearnsBlobImages)
{
    BlobImageConfig data_cfg;
    data_cfg.numClasses = 6;
    data_cfg.samplesPerClass = 40;
    const Dataset train = makeBlobImages(data_cfg);
    data_cfg.sampleSeed = 77;
    const Dataset val = makeBlobImages(data_cfg);

    Network net;
    buildBlobCnn(net, 6, 2);
    Sgd opt(0.05f, 0.9f);
    TrainConfig tc;
    tc.epochs = 8;
    tc.batchSize = 16;
    const auto history = trainNetwork(net, opt, train, val, tc);
    EXPECT_GT(history.back().valAccuracy, 0.9)
        << "CNN failed to learn the blob-image task";
}

TEST(Training, DeterministicGivenSeeds)
{
    SpiralConfig data_cfg;
    data_cfg.samplesPerClass = 40;
    const Dataset train = makeSpirals(data_cfg);

    auto run = [&] {
        Network net;
        buildSpiralMlp(net, 5);
        Sgd opt(0.05f);
        TrainConfig tc;
        tc.epochs = 3;
        tc.batchSize = 16;
        return trainNetwork(net, opt, train, train, tc).back().trainLoss;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Training, SparsityReportedForDenseNetIsZero)
{
    Network net;
    buildSpiralMlp(net, 6);
    // Kaiming-initialized dense weights have no exact zeros.
    EXPECT_LT(weightSparsity(net), 1e-3);
}

} // namespace
} // namespace nn
} // namespace procrustes
