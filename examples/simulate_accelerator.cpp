/**
 * @file
 * Scenario: cycle-level validation of the analytic model.
 *
 * Runs the clocked PE-array simulator (explicit row/column buses,
 * unicast network, per-cycle MAC issue) against the analytic cost
 * model on a small layer under several mappings/phases, then scales
 * the accelerator from 16x16 to 32x32 with the analytic model.
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "sim/cycle_sim.h"
#include "sparse/mask.h"

using namespace procrustes;
using namespace procrustes::arch;

int
main()
{
    // A small conv layer with a skewed 25%-dense mask.
    const LayerShape layer = convLayer("demo", 32, 64, 3, 8);
    sparse::SyntheticMaskConfig mc;
    mc.targetDensity = 0.25;
    mc.kernelSigma = 0.6;
    mc.seed = 3;
    const auto mask = sparse::makeSyntheticMask(
        layer.K, layer.effectiveC(), layer.R, layer.S, mc);
    const LayerSparsityProfile profile(mask, 0.5);

    const ArrayConfig acfg = ArrayConfig::baseline16();
    CostOptions opts;
    opts.sparse = true;
    opts.balance = BalanceMode::HalfTile;
    const CostModel analytic(acfg, opts);
    sim::SimConfig scfg;

    std::printf("cycle-level simulator vs analytic model "
                "(conv 32->64, 8x8, density %.2f):\n",
                profile.weightDensity());
    std::printf("%-10s %-4s %12s %12s %8s %10s\n", "mapping", "phase",
                "analytic", "simulated", "delta", "stalls");
    for (MappingKind mk :
         {MappingKind::KN, MappingKind::CN, MappingKind::CK}) {
        for (Phase ph :
             {Phase::Forward, Phase::Backward, Phase::WeightUpdate}) {
            const double expected =
                analytic.evaluatePhase(layer, ph, mk, profile, 16)
                    .computeCycles;
            const sim::SimResult r = sim::simulateLayerPhase(
                layer, ph, mk, profile, 16, acfg, scfg,
                BalanceMode::HalfTile);
            std::printf("%-10s %-4s %12.0f %12lld %+7.1f%% %10lld\n",
                        mappingName(mk).c_str(),
                        phaseName(ph).c_str(), expected,
                        static_cast<long long>(r.computeCycles),
                        100.0 * (static_cast<double>(r.computeCycles) /
                                     expected -
                                 1.0),
                        static_cast<long long>(r.stallCycles));
        }
    }

    // Analytic scalability sweep on a real network.
    std::printf("\nscaling ResNet18 training (analytic, K,N, batch "
                "64):\n");
    const NetworkModel rn = buildResNet18();
    const auto masks = generateMasks(rn, rn.paperSparsity, 7);
    const auto profiles = buildProfiles(rn, masks);
    const NetworkCost c16 =
        Accelerator::procrustes(ArrayConfig::baseline16())
            .evaluate(rn, profiles, 64);
    const NetworkCost c32 =
        Accelerator::procrustes(ArrayConfig::scaled32())
            .evaluate(rn, profiles, 64);
    std::printf("  16x16: %.4g cycles, %.3f J\n", c16.totalCycles(),
                c16.totalEnergyJ());
    std::printf("  32x32: %.4g cycles, %.3f J  (%.2fx speedup on 4x "
                "PEs)\n",
                c32.totalCycles(), c32.totalEnergyJ(),
                c16.totalCycles() / c32.totalCycles());
    return 0;
}
