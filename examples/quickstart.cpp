/**
 * @file
 * Quickstart: train a small network with the Procrustes sparse
 * training scheme and estimate the accelerator-side savings.
 *
 * This walks the full public API in ~80 lines:
 *   1. build a network with the mini framework (nn/),
 *   2. train it with the hardware-friendly Dropback optimizer
 *      (initial-weight decay + streaming quantile selection),
 *   3. extract the trained sparsity mask,
 *   4. evaluate dense-baseline vs Procrustes cost on the
 *      16x16-PE accelerator model (arch/).
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "nn/activations.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sparse/dropback.h"
#include "sparse/mask.h"

using namespace procrustes;

int
main()
{
    // Layers pick up the process default (override with
    // PROCRUSTES_KERNEL_BACKEND=naive|gemm, PROCRUSTES_NUM_THREADS=n).
    std::printf("compute backend: %s, %d threads\n",
                kernels::kernelBackendName(
                    kernels::defaultKernelBackend()),
                ThreadPool::global().numThreads());

    // 1. A small over-parameterized MLP on the spiral task.
    nn::Network net;
    net.add<nn::Flatten>("fl");
    net.add<nn::Linear>(2, 128, "fc1");
    net.add<nn::ReLU>("r1");
    net.add<nn::Linear>(128, 128, "fc2");
    net.add<nn::ReLU>("r2");
    net.add<nn::Linear>(128, 3, "fc3");
    Xorshift128Plus rng(42);
    nn::kaimingInit(net, rng);

    nn::SpiralConfig data_cfg;
    data_cfg.samplesPerClass = 100;
    const nn::Dataset train = nn::makeSpirals(data_cfg);
    data_cfg.seed = 91;
    const nn::Dataset val = nn::makeSpirals(data_cfg);

    // 2. Procrustes training: 4x weight budget, decay, streaming QE.
    sparse::DropbackConfig opt_cfg;
    opt_cfg.sparsity = 4.0;
    opt_cfg.lr = 0.15f;
    opt_cfg.initDecay = 0.95f;
    opt_cfg.decayHorizon = 200;
    opt_cfg.selection = sparse::SelectionMode::QuantileEstimate;
    sparse::DropbackOptimizer opt(opt_cfg);

    nn::TrainConfig train_cfg;
    train_cfg.epochs = 50;
    train_cfg.batchSize = 32;
    const auto history =
        nn::trainNetwork(net, opt, train, val, train_cfg);
    std::printf("trained %lld epochs: accuracy %.3f, weight sparsity "
                "%.1f%%\n",
                static_cast<long long>(train_cfg.epochs),
                history.back().valAccuracy,
                100.0 * history.back().weightSparsity);

    // 3. Masks from the trained weights feed the hardware model.
    arch::NetworkModel model;
    model.name = "quickstart-mlp";
    std::vector<sparse::SparsityMask> masks;
    for (nn::Param *p : net.params()) {
        if (!p->prunable)
            continue;
        const Shape &s = p->value.shape();
        model.layers.push_back(arch::fcLayer(p->name, s[1], s[0]));
        model.iactDensity.push_back(0.5);
        masks.push_back(sparse::SparsityMask::fromTensor(p->value));
    }

    // 4. Dense baseline vs Procrustes on the 16x16 array.
    const auto sparse_profiles = arch::buildProfiles(model, masks);
    const auto dense_profiles = arch::buildDenseProfiles(model);
    const auto dense_cost = arch::Accelerator::denseBaseline().evaluate(
        model, dense_profiles, 16);
    const auto sparse_cost = arch::Accelerator::procrustes().evaluate(
        model, sparse_profiles, 16);

    std::printf("accelerator model, one training iteration:\n");
    std::printf("  dense baseline: %.3g cycles, %.3g uJ\n",
                dense_cost.totalCycles(),
                dense_cost.totalEnergyJ() * 1e6);
    std::printf("  Procrustes:     %.3g cycles, %.3g uJ\n",
                sparse_cost.totalCycles(),
                sparse_cost.totalEnergyJ() * 1e6);
    std::printf("  => %.2fx speedup, %.2fx energy savings\n",
                dense_cost.totalCycles() / sparse_cost.totalCycles(),
                dense_cost.totalEnergyJ() /
                    sparse_cost.totalEnergyJ());
    return 0;
}
