/**
 * @file
 * Scenario: sparse-from-scratch CNN training with epoch-by-epoch
 * reporting, compared against dense SGD, plus CSB compression of the
 * trained weights.
 *
 * Mirrors the paper's motivating workload — a conv/batch-norm/ReLU
 * network trained with the adapted Dropback algorithm — at a
 * laptop-friendly scale.
 */

#include <cstdio>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sparse/csb.h"
#include "sparse/dropback.h"

using namespace procrustes;

namespace {

void
buildCnn(nn::Network &net, uint64_t seed)
{
    nn::Conv2dConfig c1;
    c1.inChannels = 3;
    c1.outChannels = 12;
    c1.kernel = 3;
    c1.pad = 1;
    c1.bias = false;
    net.add<nn::Conv2d>(c1, "conv1");
    net.add<nn::BatchNorm2d>(12, "bn1");
    net.add<nn::ReLU>("relu1");
    net.add<nn::MaxPool2d>(2, "pool1");
    nn::Conv2dConfig c2;
    c2.inChannels = 12;
    c2.outChannels = 24;
    c2.kernel = 3;
    c2.pad = 1;
    c2.bias = false;
    net.add<nn::Conv2d>(c2, "conv2");
    net.add<nn::BatchNorm2d>(24, "bn2");
    net.add<nn::ReLU>("relu2");
    net.add<nn::GlobalAvgPool>("gap");
    net.add<nn::Linear>(24, 6, "fc");
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

} // namespace

int
main()
{
    nn::BlobImageConfig data_cfg;
    data_cfg.numClasses = 6;
    data_cfg.samplesPerClass = 40;
    const nn::Dataset train = nn::makeBlobImages(data_cfg);
    data_cfg.sampleSeed = 77;
    const nn::Dataset val = nn::makeBlobImages(data_cfg);

    nn::TrainConfig tc;
    tc.epochs = 14;
    tc.batchSize = 16;

    // Dense SGD baseline.
    nn::Network dense;
    buildCnn(dense, 3);
    nn::Sgd sgd(0.05f, 0.9f);
    const auto dense_hist = trainNetwork(dense, sgd, train, val, tc);

    // Procrustes sparse training at a 5x weight budget.
    nn::Network sparse_net;
    buildCnn(sparse_net, 3);
    sparse::DropbackConfig cfg;
    cfg.sparsity = 5.0;
    cfg.lr = 0.05f;
    cfg.initDecay = 0.95f;
    cfg.decayHorizon = 100;
    cfg.selection = sparse::SelectionMode::QuantileEstimate;
    sparse::DropbackOptimizer opt(cfg);
    const auto sparse_hist =
        trainNetwork(sparse_net, opt, train, val, tc);

    std::printf("epoch |  dense acc | procrustes acc | sparsity\n");
    for (size_t e = 0; e < dense_hist.size(); ++e) {
        std::printf("%5zu |      %.3f |          %.3f | %6.1f%%\n", e,
                    dense_hist[e].valAccuracy,
                    sparse_hist[e].valAccuracy,
                    100.0 * sparse_hist[e].weightSparsity);
    }

    // Compress the trained conv filters with the CSB format and report
    // what the accelerator would actually store and move.
    std::printf("\nCSB compression of the trained model:\n");
    for (nn::Param *p : sparse_net.params()) {
        if (!p->prunable)
            continue;
        const Shape &s = p->value.shape();
        const sparse::CsbTensor csb =
            s.rank() == 4
                ? sparse::CsbTensor::encodeConvFilters(p->value)
                : sparse::CsbTensor::encodeMatrix(p->value, 8);
        std::printf("  %-14s dense %6lld B -> csb %6lld B "
                    "(density %.1f%%)\n",
                    p->name.c_str(),
                    static_cast<long long>(
                        sparse::CsbTensor::denseBytes(s)),
                    static_cast<long long>(csb.totalBytes()),
                    100.0 * csb.density());
    }
    return 0;
}
