/**
 * @file
 * Scenario: architecture exploration — sweep the four spatial
 * mappings and three balancing policies over a chosen network and
 * report per-phase latency, energy, and the load-imbalance histogram.
 *
 * This is how a hardware designer would use the library: pick a
 * network, generate (or import) sparsity masks, and compare dataflow
 * candidates before committing to an interconnect.
 */

#include <cstdio>
#include <string>

#include "arch/accelerator.h"
#include "arch/imbalance.h"

using namespace procrustes;
using namespace procrustes::arch;

int
main(int argc, char **argv)
{
    // Pick the network from the command line (default: VGG-S).
    const std::string which = argc > 1 ? argv[1] : "VGG-S";
    NetworkModel model;
    bool found = false;
    for (NetworkModel &m : allModels()) {
        if (m.name == which) {
            model = m;
            found = true;
        }
    }
    if (!found) {
        std::printf("unknown model '%s'; choose from:", which.c_str());
        for (const NetworkModel &m : allModels())
            std::printf(" %s", m.name.c_str());
        std::printf("\n");
        return 1;
    }

    const int64_t batch = 64;
    const auto masks = generateMasks(model, model.paperSparsity, 7);
    const auto profiles = buildProfiles(model, masks);
    std::printf("%s: %lld weights, %.1fx sparsity, batch %lld\n",
                model.name.c_str(),
                static_cast<long long>(model.denseWeights()),
                model.paperSparsity, static_cast<long long>(batch));

    std::printf("\nmapping x balancing sweep (total cycles / total "
                "J):\n%-6s", "");
    for (const char *bm : {"none", "half-tile", "full-chip"})
        std::printf(" %22s", bm);
    std::printf("\n");
    for (MappingKind mk : kAllMappings) {
        std::printf("%-6s", mappingName(mk).c_str());
        for (BalanceMode bm : {BalanceMode::None, BalanceMode::HalfTile,
                               BalanceMode::FullChip}) {
            CostOptions opts;
            opts.sparse = true;
            opts.balance = bm;
            const Accelerator acc(ArrayConfig::baseline16(), opts, mk);
            const NetworkCost c = acc.evaluate(model, profiles, batch);
            std::printf(" %11.4g/%9.3f", c.totalCycles(),
                        c.totalEnergyJ());
        }
        std::printf("\n");
    }

    std::printf("\nforward-pass imbalance histograms (fraction of "
                "working sets):\n");
    for (MappingKind mk : {MappingKind::CK, MappingKind::KN}) {
        for (BalanceMode bm :
             {BalanceMode::None, BalanceMode::HalfTile}) {
            const auto overheads = collectOverheads(
                model, profiles, Phase::Forward, mk, batch,
                ArrayConfig::baseline16(), bm);
            const ImbalanceHistogram h =
                buildHistogram(overheads, 8, 0.25);
            std::printf("  %s/%-9s mean %5.1f%% max %6.1f%% | bins:",
                        mappingName(mk).c_str(),
                        bm == BalanceMode::None ? "none" : "half-tile",
                        100.0 * h.meanOverhead,
                        100.0 * h.maxOverhead);
            for (double f : h.fraction)
                std::printf(" %4.1f%%", 100.0 * f);
            std::printf("\n");
        }
    }

    std::printf("\nrecommendation: K,N with half-tile balancing (the "
                "Procrustes design point)\n");
    return 0;
}
