/**
 * @file
 * Scenario: co-simulation — train a CNN for real and drive the
 * accelerator model from the measured workload, epoch by epoch.
 *
 * This is the paper's §VI methodology end to end in one process: the
 * functional trainer runs a VGG-style conv/batch-norm/ReLU stack with
 * gradual magnitude pruning on the CSB sparse backend; a WorkloadTrace
 * observer captures every step's executed MACs (weight-mask skipped,
 * plus ReLU-zero skipping in both backward phases), live masks, and
 * measured activation densities; and after training each epoch's
 * measured workload is replayed through the Procrustes cost model and
 * the dense baseline. The output is a per-epoch JSON trajectory of
 * accuracy, sparsity, and trace-driven accelerator cycles + energy —
 * measured densities, not hash-jitter, flowing into the CostModel,
 * measured compressed weight bytes in the GLB/DRAM traffic terms, and
 * per-epoch load-imbalance histograms (balanced vs unbalanced)
 * replayed straight from the epoch-final masks. The cycle-level
 * PE-array simulator (banked GLB, operand FIFOs, explicit
 * interconnects) co-runs every epoch from the same measured facts, so
 * each epoch also reports simulated cycles and the analytic-vs-cycle
 * fidelity ratio.
 */

#include <cstdio>

#include "arch/accelerator.h"
#include "arch/workload_trace.h"
#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/data.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/trainer.h"
#include "sim/cycle_sim.h"
#include "sparse/gradual_pruning.h"

using namespace procrustes;

namespace {

/** VGG-S-flavoured blob-image CNN (three conv blocks, one fc head). */
void
buildCnn(nn::Network &net, int classes, uint64_t seed)
{
    auto block = [&net](const char *tag, int64_t cin, int64_t cout) {
        nn::Conv2dConfig c;
        c.inChannels = cin;
        c.outChannels = cout;
        c.kernel = 3;
        c.pad = 1;
        c.bias = false;
        nn::Conv2d *conv =
            net.add<nn::Conv2d>(c, std::string("conv") + tag);
        conv->setBackend(kernels::KernelBackend::kSparse);
        net.add<nn::BatchNorm2d>(cout, std::string("bn") + tag);
        net.add<nn::ReLU>(std::string("relu") + tag);
    };
    block("1", 3, 16);
    net.add<nn::MaxPool2d>(2, "pool1");
    block("2", 16, 32);
    net.add<nn::MaxPool2d>(2, "pool2");
    block("3", 32, 32);
    net.add<nn::GlobalAvgPool>("gap");
    nn::Linear *fc = net.add<nn::Linear>(32, classes, "fc");
    // The fc head runs the CSB fc executors too, so every trainable
    // layer contributes measured (not modelled) MACs to the trace.
    fc->setBackend(kernels::KernelBackend::kSparse);
    Xorshift128Plus rng(seed);
    nn::kaimingInit(net, rng);
}

} // namespace

int
main()
{
    nn::BlobImageConfig data_cfg;
    data_cfg.numClasses = 6;
    data_cfg.samplesPerClass = 40;
    const nn::Dataset train = nn::makeBlobImages(data_cfg);
    data_cfg.sampleSeed = 77;
    const nn::Dataset val = nn::makeBlobImages(data_cfg);

    nn::Network net;
    buildCnn(net, data_cfg.numClasses, 3);

    sparse::GradualPruningConfig pcfg;
    pcfg.targetSparsity = 4.0;
    pcfg.lr = 0.05f;
    pcfg.pruneInterval = 30;
    pcfg.pruneFraction = 0.2;
    pcfg.warmupIterations = 30;
    sparse::GradualMagnitudePruningOptimizer opt(pcfg);

    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.batchSize = 16;

    arch::WorkloadTrace trace;
    const auto history =
        trainNetwork(net, opt, train, val, tc, trace.observer());

    const arch::Accelerator procrustes = arch::Accelerator::procrustes();
    const arch::Accelerator baseline =
        arch::Accelerator::denseBaseline();

    std::printf("{\n  \"workload\": \"blob-cnn gradual-pruning cosim\","
                "\n  \"epochs\": [\n");
    for (size_t e = 0; e < trace.epochCount(); ++e) {
        const arch::EpochTrace &et = trace.epoch(e);
        arch::EpochImbalance imb;
        sim::TraceSimResult csim;
        const arch::NetworkCost sparse_cost =
            procrustes.evaluateTrace(trace, e, &imb, &csim);
        const arch::NetworkCost dense_cost = baseline.evaluateTrace(trace, e);
        std::printf(
            "    {\"epoch\": %zu, \"train_loss\": %.4f, "
            "\"val_accuracy\": %.4f,\n"
            "     \"weight_density\": %.4f, \"iact_density\": %.4f,\n"
            "     \"measured_macs_per_step\": %.0f,\n"
            "     \"procrustes_cycles\": %.4g, "
            "\"procrustes_energy_j\": %.4g,\n"
            "     \"dense_cycles\": %.4g, \"dense_energy_j\": %.4g,\n"
            "     \"imbalance_mean_unbalanced\": %.4f, "
            "\"imbalance_mean_balanced\": %.4f,\n"
            "     \"cycle_sim\": {\"cycles\": %lld, "
            "\"stall_cycles\": %lld, \"drain_cycles\": %lld,\n"
            "      \"glb_conflicts\": %lld, "
            "\"fifo_backpressure_cycles\": %lld,\n"
            "      \"analytic_cycle_ratio\": %.4f},\n"
            "     \"speedup\": %.2f, \"energy_ratio\": %.2f}%s\n",
            e, history[e].trainLoss, history[e].valAccuracy,
            et.meanWeightDensity(), et.meanIactDensity(),
            et.totalMacsPerStep(), sparse_cost.totalCycles(),
            sparse_cost.totalEnergyJ(), dense_cost.totalCycles(),
            dense_cost.totalEnergyJ(), imb.unbalanced.meanOverhead,
            imb.balanced.meanOverhead,
            static_cast<long long>(csim.total.cycles),
            static_cast<long long>(csim.total.stallCycles),
            static_cast<long long>(csim.total.drainCycles),
            static_cast<long long>(csim.total.glbConflicts),
            static_cast<long long>(csim.total.fifoBackpressureCycles),
            csim.analyticCycleRatio,
            dense_cost.totalCycles() / sparse_cost.totalCycles(),
            dense_cost.totalEnergyJ() / sparse_cost.totalEnergyJ(),
            e + 1 < trace.epochCount() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
