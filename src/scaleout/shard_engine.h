/**
 * @file
 * Data-parallel shard engine: M-way replicated training with sparse
 * gradient exchange, executed for real on the shared ThreadPool.
 *
 * The paper's Figure 20 scales PEs within one chip; this engine goes
 * beyond it and models (while actually executing) data-parallel
 * training across M accelerator shards. Each shard holds a full
 * bitwise-identical replica of the network; every global batch is
 * split into fixed-size grad slices; each slice runs forward +
 * backward on the replica that owns it; then a deterministic
 * allreduce-style exchange (sparse::sparseAllreduceGrads) reduces the
 * mask-live packed gradients in global slice order, scatters the
 * reduced gradient into every replica, and every replica's optimizer
 * steps — so replicas stay bitwise identical forever.
 *
 * Determinism contract. The grad-slice size (ShardTrainConfig::
 * sliceSamples) — NOT the shard count — fixes the floating-point
 * reduction granularity: a slice's contribution is computed on a
 * bitwise-identical replica regardless of which shard owns it, and the
 * fold order is the global slice order. Final weights are therefore
 * bitwise identical for ANY shard count at a matched global batch, and
 * (by the repo-wide kernel guarantee) for any thread count. There is
 * deliberately no per-shard pre-reduction: IEEE754 summation is not
 * decomposable at shard boundaries, so pre-reducing would tie results
 * to M.
 *
 * Exchange semantics. Gradients of prunable parameters are projected
 * through the live weight mask ("live iff value != 0", the CSB encode
 * rule) — exactly the masked dW the zero-skipping CSB executors
 * produce — and travel as packed values with no indices, since every
 * replica shares the mask. Non-prunable parameters (biases, batch-norm
 * affine) travel dense. Wire traffic is measured per parameter per
 * step (reduce-to-root gather + broadcast) and flows into the step's
 * LayerStepReports so WorkloadTrace / the cost-model interconnect term
 * (CostOptions::interconnectWordsPerCycle) can price it.
 *
 * Caveats: layers with non-parameter training state (BatchNorm running
 * statistics) are outside the exchange — use BN-free networks when
 * cross-shard-identical validation accuracy matters. Prunable layers
 * should run the CSB sparse backend so the executed dW already honours
 * the mask the exchange assumes.
 */

#ifndef PROCRUSTES_SCALEOUT_SHARD_ENGINE_H_
#define PROCRUSTES_SCALEOUT_SHARD_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/trainer.h"
#include "sparse/grad_exchange.h"

namespace procrustes {
namespace scaleout {

/** Scale-out training configuration. */
struct ShardTrainConfig
{
    /** Shard (replica) count M. */
    int shards = 1;

    int64_t epochs = 10;

    /** Global batch size — the optimizer-visible batch. */
    int64_t batchSize = 16;

    /**
     * Grad-slice size: the fixed gradient-accumulation granularity.
     * Must be held constant when comparing shard counts — it, not the
     * shard count, determines the floating-point reduction order. A
     * slice never crosses a global-batch boundary (the last slice of a
     * batch may be ragged). sliceSamples == batchSize makes a
     * one-shard run bitwise identical to nn::trainNetwork.
     */
    int64_t sliceSamples = 4;

    uint64_t shuffleSeed = 7;
};

/** Builds one shard's network replica (must be deterministic). */
using NetworkBuilder = std::function<void(nn::Network &)>;

/** Creates one shard's optimizer (must be deterministic). */
using OptimizerFactory = std::function<std::unique_ptr<nn::Optimizer>()>;

/** Measured exchange wire traffic, summed over one epoch's steps. */
struct ShardExchangeStats
{
    int64_t compressedBytes = 0;  //!< mask-live packed fp32 payloads
    int64_t denseBytes = 0;       //!< dense twin, same message counts
    int64_t messages = 0;
};

/** One epoch of sharded training. */
struct ShardEpochStats
{
    nn::EpochStats stats;          //!< loss / accuracy / sparsity
    ShardExchangeStats exchange;
};

/** Result of a sharded training run. */
struct ShardTrainResult
{
    std::vector<ShardEpochStats> history;

    /** Final parameter values (replica 0 == every replica), in
        Network::params() order. */
    std::vector<Tensor> finalWeights;
};

/**
 * Run data-parallel training of M bitwise-identical replicas.
 *
 * Shards execute concurrently on the shared ThreadPool (one pool task
 * per shard; nested kernel parallelism runs inline). With shards == 1
 * the engine stays out of the pool's way so kernels keep their normal
 * parallelism. `observer` receives one merged StepTelemetry per global
 * batch — per-slice executed MACs summed, densities sample-weighted,
 * the post-update mask/footprint, and per-layer exchange bytes
 * (LayerStepReport::hasExchange) — so arch::WorkloadTrace consumes a
 * sharded run exactly like a plain one.
 */
ShardTrainResult trainSharded(const NetworkBuilder &build,
                              const OptimizerFactory &make_opt,
                              const nn::Dataset &train,
                              const nn::Dataset &val,
                              const ShardTrainConfig &cfg,
                              const nn::StepObserver &observer = {});

} // namespace scaleout
} // namespace procrustes

#endif // PROCRUSTES_SCALEOUT_SHARD_ENGINE_H_
