#include "scaleout/shard_engine.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/loss.h"

namespace procrustes {
namespace scaleout {

namespace {

/** One shard: replica network, optimizer, params, loss scratch. */
struct Replica
{
    nn::Network net;
    std::unique_ptr<nn::Optimizer> opt;
    std::vector<nn::Param *> params;
    nn::SoftmaxCrossEntropy loss;
};

/** Bitwise compare every replica's parameter values to replica 0. */
void
assertReplicasIdentical(
    const std::vector<std::unique_ptr<Replica>> &reps, const char *when)
{
    for (size_t m = 1; m < reps.size(); ++m) {
        PROCRUSTES_ASSERT(reps[m]->params.size() ==
                              reps[0]->params.size(),
                          "replica parameter count mismatch");
        for (size_t pi = 0; pi < reps[0]->params.size(); ++pi) {
            const Tensor &a = reps[0]->params[pi]->value;
            const Tensor &b = reps[m]->params[pi]->value;
            PROCRUSTES_ASSERT(a.numel() == b.numel(),
                              "replica parameter shape mismatch");
            const float *av = a.data();
            const float *bv = b.data();
            const bool same =
                std::equal(av, av + a.numel(), bv);
            if (!same)
                PANIC(std::string("shard replicas diverged (") + when +
                      "): the builder/optimizer factory is not "
                      "deterministic or a layer carries unexchanged "
                      "training state");
        }
    }
}

/** acc += w * v elementwise, sizing acc on first use. */
void
weightedAccum(std::vector<double> *acc, const std::vector<double> &v,
              double w)
{
    if (acc->size() != v.size())
        acc->assign(v.size(), 0.0);
    for (size_t i = 0; i < v.size(); ++i)
        (*acc)[i] += w * v[i];
}

/**
 * Fold the per-slice reports into the post-update base reports: MACs
 * sum, scalar/per-slot densities average sample-weighted, per-sample
 * vectors concatenate in slice order (slices are contiguous in the
 * global batch), sparseExecuted ANDs. The base keeps its own mask and
 * weight-byte fields — they were sampled after the optimizer step,
 * matching nn::trainNetwork's convention.
 */
void
mergeSliceReports(
    std::vector<nn::LayerStepReport> *reports,
    const std::vector<std::vector<nn::LayerStepReport>> &slice_reports,
    const std::vector<int64_t> &slice_n, int64_t batch)
{
    for (size_t ri = 0; ri < reports->size(); ++ri) {
        nn::LayerStepReport &out = (*reports)[ri];
        out.batch = batch;
        out.fwMacs = 0;
        out.bwDataMacs = 0;
        out.bwWeightMacs = 0;
        bool sparse_all = true;
        double in_density = 0.0;
        double out_density = 0.0;
        std::vector<double> chan, row, col;
        std::vector<double> per_sample, per_half;
        for (size_t s = 0; s < slice_reports.size(); ++s) {
            PROCRUSTES_ASSERT(slice_reports[s].size() ==
                                  reports->size(),
                              "report set changed across slices");
            const nn::LayerStepReport &r = slice_reports[s][ri];
            PROCRUSTES_ASSERT(r.layerName == out.layerName,
                              "report order changed across slices");
            const double w = static_cast<double>(slice_n[s]) /
                             static_cast<double>(batch);
            out.fwMacs += r.fwMacs;
            out.bwDataMacs += r.bwDataMacs;
            out.bwWeightMacs += r.bwWeightMacs;
            sparse_all = sparse_all && r.sparseExecuted;
            in_density += w * r.inputDensity;
            out_density += w * r.outputDensity;
            weightedAccum(&chan, r.inputChannelDensity, w);
            weightedAccum(&row, r.inputRowDensity, w);
            weightedAccum(&col, r.inputColDensity, w);
            per_sample.insert(per_sample.end(),
                              r.inputSampleDensity.begin(),
                              r.inputSampleDensity.end());
            per_half.insert(per_half.end(),
                            r.inputSampleHalfDensity.begin(),
                            r.inputSampleHalfDensity.end());
        }
        out.sparseExecuted = out.hasMacs && sparse_all;
        out.inputDensity = in_density;
        out.outputDensity = out_density;
        out.inputChannelDensity = std::move(chan);
        out.inputRowDensity = std::move(row);
        out.inputColDensity = std::move(col);
        out.inputSampleDensity = std::move(per_sample);
        out.inputSampleHalfDensity = std::move(per_half);
    }
}

/**
 * Attach each parameter's measured exchange volume to the report of
 * the layer that owns it (param "fc1.weight" -> report "fc1").
 */
void
annotateExchange(std::vector<nn::LayerStepReport> *reports,
                 const std::vector<nn::Param *> &params,
                 const std::vector<sparse::ExchangeVolume> &vols)
{
    for (nn::LayerStepReport &r : *reports) {
        const std::string prefix = r.layerName + ".";
        sparse::ExchangeVolume layer_vol;
        bool any = false;
        for (size_t pi = 0; pi < params.size(); ++pi) {
            if (params[pi]->name.rfind(prefix, 0) == 0) {
                layer_vol += vols[pi];
                any = true;
            }
        }
        if (any) {
            r.hasExchange = true;
            r.exchangeCompressedBytes = layer_vol.compressedBytes;
            r.exchangeDenseBytes = layer_vol.denseBytes;
        }
    }
}

} // namespace

ShardTrainResult
trainSharded(const NetworkBuilder &build,
             const OptimizerFactory &make_opt, const nn::Dataset &train,
             const nn::Dataset &val, const ShardTrainConfig &cfg,
             const nn::StepObserver &observer)
{
    PROCRUSTES_ASSERT(cfg.shards >= 1, "need at least one shard");
    PROCRUSTES_ASSERT(cfg.batchSize >= 1,
                      "batch size must be positive");
    PROCRUSTES_ASSERT(cfg.sliceSamples >= 1,
                      "slice size must be positive");
    PROCRUSTES_ASSERT(train.size() > 0, "empty training set");

    const int M = cfg.shards;
    std::vector<std::unique_ptr<Replica>> reps;
    reps.reserve(static_cast<size_t>(M));
    for (int m = 0; m < M; ++m) {
        auto r = std::make_unique<Replica>();
        build(r->net);
        r->opt = make_opt();
        r->params = r->net.params();
        reps.push_back(std::move(r));
    }
    const size_t np = reps[0]->params.size();
    assertReplicasIdentical(reps, "after build");

    ShardTrainResult result;
    int64_t global_step = 0;

    for (int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        const auto order =
            nn::epochOrder(train.size(), cfg.shuffleSeed, epoch);
        double loss_sum = 0.0;
        double acc_sum = 0.0;
        int64_t samples = 0;
        ShardExchangeStats ex_epoch;

        for (int64_t start = 0; start < train.size();
             start += cfg.batchSize) {
            const int64_t end =
                std::min(start + cfg.batchSize, train.size());
            const int64_t n = end - start;
            const int64_t slices =
                (n + cfg.sliceSamples - 1) / cfg.sliceSamples;

            // Pre-step live masks, identical on every replica. The
            // live pattern covers every position the CSB executors
            // can write a non-zero gradient to; non-prunable
            // parameters (zero-init biases, batch-norm affine) go
            // dense — a value-derived mask would drop their
            // legitimate zero entries.
            std::vector<std::vector<uint8_t>> live(np);
            std::vector<int64_t> nnz(np);
            for (size_t pi = 0; pi < np; ++pi) {
                const nn::Param *p = reps[0]->params[pi];
                if (p->prunable) {
                    live[pi] = sparse::liveMaskFromValues(p->value);
                } else {
                    live[pi].assign(
                        static_cast<size_t>(p->value.numel()), 1);
                }
                nnz[pi] = sparse::liveCount(live[pi]);
            }

            // partials[pi][s]: slice s's packed mask-live gradient of
            // parameter pi. Slots are disjoint per slice, so shard
            // workers fill them without synchronization and the
            // result is independent of scheduling.
            std::vector<std::vector<std::vector<float>>> partials(np);
            for (size_t pi = 0; pi < np; ++pi)
                partials[pi].resize(static_cast<size_t>(slices));
            std::vector<double> slice_loss(
                static_cast<size_t>(slices), 0.0);
            std::vector<double> slice_acc(
                static_cast<size_t>(slices), 0.0);
            std::vector<int64_t> slice_n(
                static_cast<size_t>(slices), 0);
            std::vector<std::vector<nn::LayerStepReport>>
                slice_reports(observer ? static_cast<size_t>(slices)
                                       : 0);

            // Shard m owns slices {s : s % M == m} and runs them in
            // ascending order on its own replica. Replicas are
            // bitwise identical, so a slice's forward/backward result
            // does not depend on the owner — only the slice geometry
            // (fixed by sliceSamples) pins the FP reduction.
            auto run_shard = [&](int m) {
                Replica &rep = *reps[static_cast<size_t>(m)];
                for (int64_t s = m; s < slices; s += M) {
                    const int64_t s0 = start + s * cfg.sliceSamples;
                    const int64_t s1 =
                        std::min(s0 + cfg.sliceSamples, end);
                    std::vector<int64_t> idx(order.begin() + s0,
                                             order.begin() + s1);
                    const Tensor x = train.batch(idx);
                    const auto y = train.batchLabels(idx);
                    rep.net.zeroGrad();
                    const Tensor logits =
                        rep.net.forward(x, /*training=*/true);
                    const size_t su = static_cast<size_t>(s);
                    slice_loss[su] = rep.loss.forward(logits, y);
                    slice_acc[su] = rep.loss.accuracy();
                    slice_n[su] = s1 - s0;
                    rep.net.backward(rep.loss.backward());
                    for (size_t pi = 0; pi < np; ++pi) {
                        std::vector<float> &pk = partials[pi][su];
                        pk.resize(static_cast<size_t>(nnz[pi]));
                        // Const ref: COW data() must not detach while
                        // other shards run.
                        const Tensor &g = rep.params[pi]->grad;
                        sparse::gatherLive(g.data(), live[pi],
                                           pk.data());
                    }
                    if (observer) {
                        auto &out = slice_reports[su];
                        for (size_t li = 0; li < rep.net.size();
                             ++li) {
                            nn::LayerStepReport r;
                            if (rep.net.layer(li)->stepReport(&r))
                                out.push_back(std::move(r));
                        }
                    }
                }
            };
            if (M == 1) {
                // Stay off the pool so nested kernels keep their
                // normal parallelism.
                run_shard(0);
            } else {
                ThreadPool::global().parallelFor(
                    0, M,
                    [&](int64_t b, int64_t e) {
                        for (int64_t m = b; m < e; ++m)
                            run_shard(static_cast<int>(m));
                    },
                    /*grain=*/1);
            }

            // Global-mean weighting: the per-slice loss gradient is a
            // slice mean (1/n_s), so scale by n_s/n before the fold.
            std::vector<float> weights(static_cast<size_t>(slices));
            for (int64_t s = 0; s < slices; ++s)
                weights[static_cast<size_t>(s)] =
                    static_cast<float>(slice_n[static_cast<size_t>(s)]) /
                    static_cast<float>(n);

            // Reduce-to-root + broadcast traffic: the root (shard 0)
            // already holds its own slices, and with M == 1 nothing
            // crosses the wire at all.
            const int64_t root_slices = (slices + M - 1) / M;
            const int64_t gather_msgs = slices - root_slices;
            const int64_t bcast_msgs = M - 1;

            std::vector<sparse::ExchangeVolume> vols(np);
            for (size_t pi = 0; pi < np; ++pi) {
                const std::vector<float> reduced =
                    sparse::sparseAllreduceGrads(partials[pi],
                                                 weights);
                for (int m = 0; m < M; ++m) {
                    nn::Param *p =
                        reps[static_cast<size_t>(m)]->params[pi];
                    sparse::scatterLive(reduced.data(), live[pi],
                                        p->grad.data());
                }
                vols[pi] = sparse::allreduceVolume(
                    nnz[pi], reps[0]->params[pi]->value.numel(),
                    gather_msgs, bcast_msgs);
                ex_epoch.compressedBytes += vols[pi].compressedBytes;
                ex_epoch.denseBytes += vols[pi].denseBytes;
                ex_epoch.messages += vols[pi].messages;
            }

            // Every replica applies the identical reduced gradient,
            // so replicas remain bitwise identical after the step.
            for (int m = 0; m < M; ++m)
                reps[static_cast<size_t>(m)]->opt->step(
                    reps[static_cast<size_t>(m)]->params);

            // Same expression shape as trainNetwork's accumulation so
            // the compiler contracts (or not) identically and the
            // one-shard single-slice trajectory stays bitwise equal to
            // the plain trainer's.
            for (int64_t s = 0; s < slices; ++s) {
                const size_t su = static_cast<size_t>(s);
                loss_sum += slice_loss[su] *
                            static_cast<double>(slice_n[su]);
                acc_sum += slice_acc[su] *
                           static_cast<double>(slice_n[su]);
            }
            samples += n;

            if (observer) {
                nn::StepTelemetry t;
                t.epoch = epoch;
                t.step = global_step;
                t.batchSize = n;
                double batch_loss = 0.0;
                for (int64_t s = 0; s < slices; ++s) {
                    const size_t su = static_cast<size_t>(s);
                    batch_loss += slice_loss[su] *
                                  static_cast<double>(slice_n[su]);
                }
                t.batchLoss =
                    slices == 1 ? slice_loss[0]
                                : batch_loss / static_cast<double>(n);
                for (size_t li = 0; li < reps[0]->net.size(); ++li) {
                    nn::LayerStepReport r;
                    if (reps[0]->net.layer(li)->stepReport(&r))
                        t.reports.push_back(std::move(r));
                }
                mergeSliceReports(&t.reports, slice_reports, slice_n,
                                  n);
                annotateExchange(&t.reports, reps[0]->params, vols);
                observer(t);
            }
            ++global_step;
        }

        assertReplicasIdentical(reps, "after epoch");

        ShardEpochStats es;
        es.stats.epoch = epoch;
        es.stats.trainLoss =
            samples ? loss_sum / static_cast<double>(samples) : 0.0;
        es.stats.trainAccuracy =
            samples ? acc_sum / static_cast<double>(samples) : 0.0;
        es.stats.valAccuracy =
            nn::evaluateAccuracy(reps[0]->net, val);
        es.stats.weightSparsity = nn::weightSparsity(reps[0]->net);
        es.exchange = ex_epoch;
        result.history.push_back(es);
    }

    result.finalWeights.reserve(np);
    for (size_t pi = 0; pi < np; ++pi)
        result.finalWeights.push_back(reps[0]->params[pi]->value);
    return result;
}

} // namespace scaleout
} // namespace procrustes
