/**
 * @file
 * im2col / col2im lowering between NCHW activations and GEMM operands.
 *
 * One image [C, H, W] is lowered to a column matrix [C*R*S, P*Q]: row
 * e = (c*R + r)*S + s holds, for every output position (p, q), the
 * input element that filter tap (c, r, s) multiplies — zero where the
 * tap falls in the padding halo. Convolution then becomes
 * Y[K, P*Q] = W[K, C*R*S] * col, and the data-gradient convolution is
 * col2im of W^T * dY, the exact adjoint scatter-add.
 */

#ifndef PROCRUSTES_KERNELS_IM2COL_H_
#define PROCRUSTES_KERNELS_IM2COL_H_

#include <algorithm>
#include <cstdint>

namespace procrustes {
namespace kernels {

/**
 * Output-coordinate range [lo, hi) whose input projection
 * o*stride + tap - pad lands inside [0, in_extent) — the padding clip
 * shared by the im2col lowering, the CSB sparse executors, and the
 * exact MAC count.
 */
inline void
validOutRange(int64_t out_extent, int64_t in_extent, int64_t tap,
              int64_t stride, int64_t pad, int64_t *lo, int64_t *hi)
{
    const int64_t shift = tap - pad;   // in = out*stride + shift
    *lo = shift < 0 ? (-shift + stride - 1) / stride : 0;
    const int64_t last = in_extent - 1 - shift;
    *hi = last < 0 ? 0 : std::min(out_extent, last / stride + 1);
    if (*hi < *lo)
        *hi = *lo;
}

/** Static geometry of one 2-D convolution. */
struct ConvGeom
{
    int64_t c = 0;        //!< input channels
    int64_t h = 0;        //!< input height
    int64_t w = 0;        //!< input width
    int64_t k = 0;        //!< output channels
    int64_t r = 0;        //!< filter height
    int64_t s = 0;        //!< filter width
    int64_t stride = 1;
    int64_t pad = 0;
    int64_t p = 0;        //!< output height
    int64_t q = 0;        //!< output width

    int64_t colRows() const { return c * r * s; }
    int64_t colCols() const { return p * q; }
};

/**
 * Derive a ConvGeom from input/filter extents (output extents follow
 * the usual floor formula; asserts they are positive).
 */
ConvGeom makeConvGeom(int64_t c, int64_t h, int64_t w, int64_t k,
                      int64_t r, int64_t s, int64_t stride, int64_t pad);

/**
 * Lower one image to a column matrix.
 *
 * @param x one image, [C, H, W] row-major.
 * @param g convolution geometry.
 * @param col output, [C*R*S, P*Q] row-major, fully overwritten
 *        (padding positions are zero-filled).
 */
void im2col(const float *x, const ConvGeom &g, float *col);

/**
 * Adjoint of im2col: scatter-add a column matrix back to image space.
 *
 * @param col [C*R*S, P*Q] row-major.
 * @param g convolution geometry.
 * @param x one image, [C, H, W]; contributions are ACCUMULATED into it
 *        (callers zero it first when they want a plain col2im).
 */
void col2im(const float *col, const ConvGeom &g, float *x);

} // namespace kernels
} // namespace procrustes

#endif // PROCRUSTES_KERNELS_IM2COL_H_
