#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace procrustes {
namespace kernels {

namespace {

// Register tile: 4 rows x 16 columns (2 AVX2 vectors per row) keeps 8
// vector accumulators live, which fits the 16 ymm registers with room
// for the broadcast A values and the B loads.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;

// Cache blocks: a KC x NC slab of B (~512 KiB at 256x512 floats) stays
// L2-resident while kMr rows of A stream against it.
constexpr int64_t kKc = 256;
constexpr int64_t kNc = 512;

/**
 * Interior micro-kernel: C[0:4, 0:16] (+)= A[0:4, 0:kc] * B[0:kc, 0:16].
 * `first` selects overwrite vs accumulate for this k-slab.
 */
inline void
micro4x16(int64_t kc, const float *a, int64_t lda, const float *b,
          int64_t ldb, float *c, int64_t ldc, bool first)
{
    float acc[kMr][kNr];
    if (first) {
        std::memset(acc, 0, sizeof(acc));
    } else {
        for (int64_t i = 0; i < kMr; ++i) {
            for (int64_t j = 0; j < kNr; ++j)
                acc[i][j] = c[i * ldc + j];
        }
    }
    for (int64_t p = 0; p < kc; ++p) {
        const float *bp = b + p * ldb;
        const float a0 = a[0 * lda + p];
        const float a1 = a[1 * lda + p];
        const float a2 = a[2 * lda + p];
        const float a3 = a[3 * lda + p];
        for (int64_t j = 0; j < kNr; ++j) {
            const float bv = bp[j];
            acc[0][j] += a0 * bv;
            acc[1][j] += a1 * bv;
            acc[2][j] += a2 * bv;
            acc[3][j] += a3 * bv;
        }
    }
    for (int64_t i = 0; i < kMr; ++i) {
        for (int64_t j = 0; j < kNr; ++j)
            c[i * ldc + j] = acc[i][j];
    }
}

/** Edge micro-kernel for partial mr x nr tiles. */
inline void
microEdge(int64_t mr, int64_t nr, int64_t kc, const float *a, int64_t lda,
          const float *b, int64_t ldb, float *c, int64_t ldc, bool first)
{
    float acc[kMr][kNr];
    for (int64_t i = 0; i < mr; ++i) {
        for (int64_t j = 0; j < nr; ++j)
            acc[i][j] = first ? 0.0f : c[i * ldc + j];
    }
    for (int64_t p = 0; p < kc; ++p) {
        const float *bp = b + p * ldb;
        for (int64_t i = 0; i < mr; ++i) {
            const float av = a[i * lda + p];
            for (int64_t j = 0; j < nr; ++j)
                acc[i][j] += av * bp[j];
        }
    }
    for (int64_t i = 0; i < mr; ++i) {
        for (int64_t j = 0; j < nr; ++j)
            c[i * ldc + j] = acc[i][j];
    }
}

/** Full blocked GEMM restricted to the row panel [i0, i1) of C. */
void
gemmPanel(int64_t i0, int64_t i1, int64_t n, int64_t k, const float *a,
          int64_t lda, const float *b, int64_t ldb, float *c, int64_t ldc,
          bool accumulate)
{
    for (int64_t jc = 0; jc < n; jc += kNc) {
        const int64_t nc = std::min(kNc, n - jc);
        for (int64_t pc = 0; pc < k; pc += kKc) {
            const int64_t kc = std::min(kKc, k - pc);
            const bool first = (pc == 0) && !accumulate;
            for (int64_t i = i0; i < i1; i += kMr) {
                const int64_t mr = std::min(kMr, i1 - i);
                const float *ap = a + i * lda + pc;
                for (int64_t j = jc; j < jc + nc; j += kNr) {
                    const int64_t nr = std::min(kNr, jc + nc - j);
                    const float *bp = b + pc * ldb + j;
                    float *cp = c + i * ldc + j;
                    if (mr == kMr && nr == kNr) {
                        micro4x16(kc, ap, lda, bp, ldb, cp, ldc, first);
                    } else {
                        microEdge(mr, nr, kc, ap, lda, bp, ldb, cp, ldc,
                                  first);
                    }
                }
            }
        }
    }
}

} // namespace

void
gemm(int64_t m, int64_t n, int64_t k, const float *a, int64_t lda,
     const float *b, int64_t ldb, float *c, int64_t ldc, bool accumulate,
     ThreadPool *pool)
{
    PROCRUSTES_ASSERT(m >= 0 && n >= 0 && k >= 0, "negative gemm extent");
    PROCRUSTES_ASSERT(lda >= k && ldb >= n && ldc >= n,
                      "gemm leading dimension too small");
    if (m == 0 || n == 0)
        return;
    if (k == 0) {
        if (!accumulate) {
            for (int64_t i = 0; i < m; ++i)
                std::memset(c + i * ldc, 0,
                            static_cast<size_t>(n) * sizeof(float));
        }
        return;
    }

    auto panel = [&](int64_t i0, int64_t i1) {
        gemmPanel(i0, i1, n, k, a, lda, b, ldb, c, ldc, accumulate);
    };
    if (pool == nullptr) {
        panel(0, m);
        return;
    }
    // Row panels are disjoint in C, so the reduction order inside each
    // output element is fixed and the result is thread-count invariant.
    pool->parallelFor(0, m, panel, /*grain=*/kMr * 2);
}

void
gemm(int64_t m, int64_t n, int64_t k, const float *a, const float *b,
     float *c, bool accumulate)
{
    gemm(m, n, k, a, k, b, n, c, n, accumulate, &ThreadPool::global());
}

void
transpose(const float *in, int64_t rows, int64_t cols, float *out)
{
    // Blocked to keep both the read and write streams cache-friendly.
    constexpr int64_t kB = 32;
    for (int64_t i0 = 0; i0 < rows; i0 += kB) {
        const int64_t i1 = std::min(rows, i0 + kB);
        for (int64_t j0 = 0; j0 < cols; j0 += kB) {
            const int64_t j1 = std::min(cols, j0 + kB);
            for (int64_t i = i0; i < i1; ++i) {
                for (int64_t j = j0; j < j1; ++j)
                    out[j * rows + i] = in[i * cols + j];
            }
        }
    }
}

} // namespace kernels
} // namespace procrustes
