#include "kernels/im2col.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace procrustes {
namespace kernels {

ConvGeom
makeConvGeom(int64_t c, int64_t h, int64_t w, int64_t k, int64_t r,
             int64_t s, int64_t stride, int64_t pad)
{
    PROCRUSTES_ASSERT(c > 0 && h > 0 && w > 0 && k > 0 && r > 0 && s > 0,
                      "conv geometry extents must be positive");
    PROCRUSTES_ASSERT(stride > 0 && pad >= 0, "bad stride/pad");
    // Guard before the division: a negative numerator truncates toward
    // zero in C++, which would turn an empty output into a bogus 1.
    PROCRUSTES_ASSERT(h + 2 * pad >= r && w + 2 * pad >= s,
                      "kernel larger than padded input");
    ConvGeom g;
    g.c = c;
    g.h = h;
    g.w = w;
    g.k = k;
    g.r = r;
    g.s = s;
    g.stride = stride;
    g.pad = pad;
    g.p = (h + 2 * pad - r) / stride + 1;
    g.q = (w + 2 * pad - s) / stride + 1;
    PROCRUSTES_ASSERT(g.p > 0 && g.q > 0, "conv output would be empty");
    return g;
}

void
im2col(const float *x, const ConvGeom &g, float *col)
{
    const int64_t pq = g.p * g.q;
    for (int64_t ic = 0; ic < g.c; ++ic) {
        for (int64_t ir = 0; ir < g.r; ++ir) {
            int64_t p_lo, p_hi;
            validOutRange(g.p, g.h, ir, g.stride, g.pad, &p_lo, &p_hi);
            for (int64_t is = 0; is < g.s; ++is) {
                int64_t q_lo, q_hi;
                validOutRange(g.q, g.w, is, g.stride, g.pad, &q_lo, &q_hi);
                float *dst = col + ((ic * g.r + ir) * g.s + is) * pq;
                if (p_lo > 0) {
                    std::memset(dst, 0,
                                static_cast<size_t>(p_lo * g.q) *
                                    sizeof(float));
                }
                for (int64_t op = p_lo; op < p_hi; ++op) {
                    const int64_t ih = op * g.stride + ir - g.pad;
                    const float *src = x + (ic * g.h + ih) * g.w;
                    float *row = dst + op * g.q;
                    if (q_lo > 0) {
                        std::memset(row, 0,
                                    static_cast<size_t>(q_lo) *
                                        sizeof(float));
                    }
                    if (g.stride == 1) {
                        if (q_hi > q_lo) {
                            std::memcpy(row + q_lo,
                                        src + q_lo + is - g.pad,
                                        static_cast<size_t>(q_hi - q_lo) *
                                            sizeof(float));
                        }
                    } else {
                        for (int64_t oq = q_lo; oq < q_hi; ++oq)
                            row[oq] =
                                src[oq * g.stride + is - g.pad];
                    }
                    if (q_hi < g.q) {
                        std::memset(row + q_hi, 0,
                                    static_cast<size_t>(g.q - q_hi) *
                                        sizeof(float));
                    }
                }
                if (p_hi < g.p) {
                    std::memset(dst + p_hi * g.q, 0,
                                static_cast<size_t>((g.p - p_hi) * g.q) *
                                    sizeof(float));
                }
            }
        }
    }
}

void
col2im(const float *col, const ConvGeom &g, float *x)
{
    const int64_t pq = g.p * g.q;
    for (int64_t ic = 0; ic < g.c; ++ic) {
        for (int64_t ir = 0; ir < g.r; ++ir) {
            int64_t p_lo, p_hi;
            validOutRange(g.p, g.h, ir, g.stride, g.pad, &p_lo, &p_hi);
            for (int64_t is = 0; is < g.s; ++is) {
                int64_t q_lo, q_hi;
                validOutRange(g.q, g.w, is, g.stride, g.pad, &q_lo, &q_hi);
                const float *src =
                    col + ((ic * g.r + ir) * g.s + is) * pq;
                // Base includes q_lo so it never points before the
                // image row (is < pad would otherwise underflow it).
                const int64_t iw0 = q_lo * g.stride + is - g.pad;
                for (int64_t op = p_lo; op < p_hi; ++op) {
                    const int64_t ih = op * g.stride + ir - g.pad;
                    float *dst = x + (ic * g.h + ih) * g.w + iw0;
                    const float *row = src + op * g.q + q_lo;
                    for (int64_t oq = 0; oq < q_hi - q_lo; ++oq)
                        dst[oq * g.stride] += row[oq];
                }
            }
        }
    }
}

} // namespace kernels
} // namespace procrustes
