/**
 * @file
 * Internal implementations shared by the sparse-microkernel TUs.
 *
 * The scalar reference kernels live here as inlines so the AVX2
 * translation unit can fall back to them (e.g. strided backward-data
 * rows) with *identical* code — both TUs are compiled with
 * -ffp-contract=off, so the inlined arithmetic rounds the same way in
 * each. The AVX2 entry points are declared here and defined in
 * sparse_microkernels_avx2.cc, which is compiled with -mavx2 only when
 * the compiler supports it (PROCRUSTES_HAVE_AVX2).
 *
 * Not installed API: include only from src/kernels/sparse_microkernels*.cc.
 */

#ifndef PROCRUSTES_KERNELS_SPARSE_MICROKERNELS_IMPL_H_
#define PROCRUSTES_KERNELS_SPARSE_MICROKERNELS_IMPL_H_

#include <cmath>

#include "kernels/sparse_microkernels.h"

namespace procrustes {
namespace kernels {
namespace detail {

/**
 * Scalar conv forward over one flattened tap run against the prepared
 * input: tap-major loops, one fused multiply-add per output element
 * per tap, full plane per tap (padding made every tap unclipped). Per
 * output element the taps arrive in increasing t order — the exact
 * accumulation sequence the output-stationary AVX2 kernel replays in
 * registers, so the two are bitwise identical. yplane accumulates
 * (partial sums survive chunked calls).
 */
inline void
convFwdRunScalar(const ConvRunTap *taps, int64_t ntaps,
                 const float *xbase, float *yplane, int64_t xrs,
                 int64_t p_ext, int64_t q_ext)
{
    for (int64_t t = 0; t < ntaps; ++t) {
        const float wt = taps[t].w;
        for (int64_t p = 0; p < p_ext; ++p) {
            const float *xr = xbase + taps[t].xoff + p * xrs;
            float *yr = yplane + p * q_ext;
            for (int64_t q = 0; q < q_ext; ++q)
                yr[q] = std::fmaf(wt, xr[q], yr[q]);
        }
    }
}

/** Scalar conv backward-data: zero-dy skip + executed-MAC tally. */
inline int64_t
convBwdDataPlaneScalar(const ConvTap *taps, int64_t ntaps,
                       const float *wvals, const float *dyplane,
                       float *dxplane, int64_t in_w, int64_t stride,
                       int64_t q_ext)
{
    const int64_t xrs = stride * in_w;
    int64_t macs = 0;
    for (int64_t t = 0; t < ntaps; ++t) {
        const ConvTap &tp = taps[t];
        const float wt = wvals[t];
        for (int64_t p = tp.pLo; p < tp.pHi; ++p) {
            float *dxr = dxplane + p * xrs + tp.xoff;
            const float *gr = dyplane + p * q_ext + tp.qLo;
            for (int64_t q = 0; q < tp.nq; ++q) {
                const float g = gr[q];
                if (g == 0.0f)
                    continue;
                dxr[q * stride] += wt * g;
                ++macs;
            }
        }
    }
    return macs;
}

/**
 * Scalar conv backward-weight with the SIMD lane schedule: each tap
 * accumulates into 8 lanes indexed by q mod 8 (exactly the lanes an
 * AVX2 register carries) and collapses them with the fixed binary tree
 * the vector hsum uses — so this reference is bitwise identical to
 * the AVX2 kernel, not merely close. Products with a zero x operand
 * are accumulated (they add an exact ±0, an identity on lanes that
 * start at +0) but not counted as executed MACs.
 */
inline int64_t
convBwdWeightBlockScalar(const ConvTap *taps, int64_t ntaps,
                         const float *x_chan, const float *dy_chan,
                         int64_t x_batch_stride, int64_t dy_batch_stride,
                         int64_t batch, int64_t in_w, int64_t stride,
                         int64_t q_ext, float *dw_block)
{
    const int64_t xrs = stride * in_w;
    int64_t macs = 0;
    for (int64_t t = 0; t < ntaps; ++t) {
        const ConvTap &tp = taps[t];
        float lane[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
        if (tp.nq > 0 && tp.pHi > tp.pLo) {
            for (int64_t in = 0; in < batch; ++in) {
                const float *xp = x_chan + in * x_batch_stride;
                const float *gp = dy_chan + in * dy_batch_stride;
                for (int64_t p = tp.pLo; p < tp.pHi; ++p) {
                    const float *xr = xp + p * xrs + tp.xoff;
                    const float *gr = gp + p * q_ext + tp.qLo;
                    for (int64_t q = 0; q < tp.nq; ++q) {
                        const float xv = xr[q * stride];
                        lane[q & 7] += gr[q] * xv;
                        macs += xv != 0.0f;
                    }
                }
            }
        }
        dw_block[tp.elem] += ((lane[0] + lane[4]) + (lane[2] + lane[6])) +
                             ((lane[1] + lane[5]) + (lane[3] + lane[7]));
    }
    return macs;
}

/** Scalar fc forward for one sample (the original executor loop). */
inline void
fcFwdRowScalar(const int64_t *offsets, const int64_t *index,
               const float *value, int64_t groups, const float *xr,
               float *yr)
{
    for (int64_t o = 0; o < groups; ++o) {
        float acc = 0.0f;
        for (int64_t t = offsets[o]; t < offsets[o + 1]; ++t)
            acc += value[t] * xr[index[t]];
        yr[o] = acc;
    }
}

/** Scalar fc backward-data for one sample (zero-dy skip + tally). */
inline int64_t
fcBwdDataRowScalar(const int64_t *offsets, const int64_t *index,
                   const float *value, int64_t groups, const float *dyr,
                   float *dxr)
{
    int64_t macs = 0;
    for (int64_t i = 0; i < groups; ++i) {
        float acc = 0.0f;
        for (int64_t t = offsets[i]; t < offsets[i + 1]; ++t) {
            const float g = dyr[index[t]];
            if (g == 0.0f)
                continue;
            acc += value[t] * g;
            ++macs;
        }
        dxr[i] = acc;
    }
    return macs;
}

/**
 * Scalar fc tile kernels: lane l is sample l, accumulated in the same
 * per-lane tap order as the untiled reference — bitwise identical to
 * both the AVX2 tile kernel and the per-sample scalar loop.
 */
inline void
fcFwdTile8Scalar(const int64_t *offsets, const int64_t *index,
                 const float *value, int64_t groups, const float *xtile,
                 float *ytile)
{
    for (int64_t o = 0; o < groups; ++o) {
        float acc[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
        for (int64_t t = offsets[o]; t < offsets[o + 1]; ++t) {
            const float v = value[t];
            const float *xl = xtile + index[t] * 8;
            for (int l = 0; l < 8; ++l)
                acc[l] += v * xl[l];
        }
        float *yl = ytile + o * 8;
        for (int l = 0; l < 8; ++l)
            yl[l] = acc[l];
    }
}

inline int64_t
fcBwdDataTile8Scalar(const int64_t *offsets, const int64_t *index,
                     const float *value, int64_t groups,
                     const float *dytile, float *dxtile)
{
    int64_t macs = 0;
    for (int64_t i = 0; i < groups; ++i) {
        float acc[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
        for (int64_t t = offsets[i]; t < offsets[i + 1]; ++t) {
            const float v = value[t];
            const float *gl = dytile + index[t] * 8;
            for (int l = 0; l < 8; ++l) {
                acc[l] += v * gl[l];
                macs += gl[l] != 0.0f;
            }
        }
        float *dl = dxtile + i * 8;
        for (int l = 0; l < 8; ++l)
            dl[l] = acc[l];
    }
    return macs;
}

/** Scalar fc weight-update fill (the original skip loop). */
inline int64_t
fcWuFillScalar(const int32_t *idx32, const int32_t *row32, int64_t nnz,
               const float *xr, const float *dyr, float *slot)
{
    int64_t macs = 0;
    for (int64_t t = 0; t < nnz; ++t) {
        const float xv = xr[idx32[t]];
        if (xv == 0.0f) {
            slot[t] = 0.0f;
            continue;
        }
        slot[t] = dyr[row32[t]] * xv;
        ++macs;
    }
    return macs;
}

/** Scalar fc weight-update reduction (the original sample-order sum). */
inline void
fcWuReduceScalar(const int32_t *di32, const float *part, int64_t nnz,
                 int64_t samples, int64_t t0, int64_t t1, float *pdw)
{
    for (int64_t t = t0; t < t1; ++t) {
        const int64_t di = di32[t];
        float acc = pdw[di];
        for (int64_t s = 0; s < samples; ++s)
            acc += part[s * nnz + t];
        pdw[di] = acc;
    }
}

#ifdef PROCRUSTES_HAVE_AVX2
void convFwdPlaneRunAvx2(const ConvRunTap *taps, int64_t ntaps,
                         const float *xbase, float *yplane, int64_t xrs,
                         int64_t p_ext, int64_t q_ext);
int64_t convBwdDataPlaneAvx2(const ConvTap *taps, int64_t ntaps,
                             const float *wvals, const float *dyplane,
                             float *dxplane, int64_t in_w, int64_t stride,
                             int64_t q_ext);
int64_t convBwdWeightBlockAvx2(const ConvTap *taps, int64_t ntaps,
                               const float *x_chan, const float *dy_chan,
                               int64_t x_batch_stride,
                               int64_t dy_batch_stride, int64_t batch,
                               int64_t in_w, int64_t stride,
                               int64_t q_ext, float *dw_block);
void fcFwdTile8Avx2(const int64_t *offsets, const int64_t *index,
                    const float *value, int64_t groups,
                    const float *xtile, float *ytile);
int64_t fcBwdDataTile8Avx2(const int64_t *offsets, const int64_t *index,
                           const float *value, int64_t groups,
                           const float *dytile, float *dxtile);
int64_t fcWuFillAvx2(const int32_t *idx32, const int32_t *row32,
                     int64_t nnz, const float *xr, const float *dyr,
                     float *slot);
void fcWuReduceAvx2(const int32_t *di32, const float *part, int64_t nnz,
                    int64_t samples, int64_t t0, int64_t t1, float *pdw);
#endif // PROCRUSTES_HAVE_AVX2

} // namespace detail
} // namespace kernels
} // namespace procrustes

#endif // PROCRUSTES_KERNELS_SPARSE_MICROKERNELS_IMPL_H_
