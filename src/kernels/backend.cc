#include "kernels/backend.h"

#include <cstdlib>

#include "common/logging.h"

namespace procrustes {
namespace kernels {

namespace {

KernelBackend
initialBackend()
{
    if (const char *env = std::getenv("PROCRUSTES_KERNEL_BACKEND"))
        return parseKernelBackend(env);
    return KernelBackend::kGemm;
}

KernelBackend &
defaultBackendSlot()
{
    static KernelBackend backend = initialBackend();
    return backend;
}

} // namespace

KernelBackend
defaultKernelBackend()
{
    return defaultBackendSlot();
}

void
setDefaultKernelBackend(KernelBackend backend)
{
    defaultBackendSlot() = backend;
}

const char *
kernelBackendName(KernelBackend backend)
{
    switch (backend) {
    case KernelBackend::kNaive:
        return "naive";
    case KernelBackend::kSparse:
        return "sparse";
    case KernelBackend::kGemm:
        break;
    }
    return "gemm";
}

KernelBackend
parseKernelBackend(const std::string &name)
{
    if (name == "naive")
        return KernelBackend::kNaive;
    if (name == "gemm")
        return KernelBackend::kGemm;
    if (name == "sparse")
        return KernelBackend::kSparse;
    FATAL("unknown kernel backend '" + name +
          "' (want naive|gemm|sparse)");
}

} // namespace kernels
} // namespace procrustes
