#include "kernels/backend.h"

#include <cstdlib>

#include "common/logging.h"

namespace procrustes {
namespace kernels {

namespace {

KernelBackend
initialBackend()
{
    if (const char *env = std::getenv("PROCRUSTES_KERNEL_BACKEND"))
        return parseKernelBackend(env);
    return KernelBackend::kGemm;
}

KernelBackend &
defaultBackendSlot()
{
    static KernelBackend backend = initialBackend();
    return backend;
}

} // namespace

KernelBackend
defaultKernelBackend()
{
    return defaultBackendSlot();
}

void
setDefaultKernelBackend(KernelBackend backend)
{
    defaultBackendSlot() = backend;
}

const char *
kernelBackendName(KernelBackend backend)
{
    return backend == KernelBackend::kNaive ? "naive" : "gemm";
}

KernelBackend
parseKernelBackend(const std::string &name)
{
    if (name == "naive")
        return KernelBackend::kNaive;
    if (name == "gemm")
        return KernelBackend::kGemm;
    FATAL("unknown kernel backend '" + name + "' (want naive|gemm)");
}

} // namespace kernels
} // namespace procrustes
