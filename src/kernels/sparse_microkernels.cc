#include "kernels/sparse_microkernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "kernels/im2col.h"   // validOutRange: the shared padding clip
#include "kernels/sparse_microkernels_impl.h"

namespace procrustes {
namespace kernels {

namespace {

/** Resolve the dispatch level once from env + CPU capability. */
int
resolveSimdLevel()
{
    const char *env = std::getenv("PROCRUSTES_SIMD");
    if (env && *env) {
        if (std::strcmp(env, "scalar") == 0)
            return static_cast<int>(SimdLevel::kScalar);
        if (std::strcmp(env, "avx2") == 0) {
            if (!avx2Supported())
                FATAL("PROCRUSTES_SIMD=avx2 but this build/host has "
                      "no AVX2");
            return static_cast<int>(SimdLevel::kAvx2);
        }
        FATAL("PROCRUSTES_SIMD must be 'avx2' or 'scalar'");
    }
    return static_cast<int>(avx2Supported() ? SimdLevel::kAvx2
                                            : SimdLevel::kScalar);
}

std::atomic<int> g_simd_level{-1};

} // namespace

bool
avx2Supported()
{
#if defined(PROCRUSTES_HAVE_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

SimdLevel
activeSimdLevel()
{
    int level = g_simd_level.load(std::memory_order_relaxed);
    if (level < 0) {
        level = resolveSimdLevel();
        g_simd_level.store(level, std::memory_order_relaxed);
    }
    return static_cast<SimdLevel>(level);
}

void
setSimdLevel(SimdLevel level)
{
    PROCRUSTES_ASSERT(level == SimdLevel::kScalar || avx2Supported(),
                      "cannot select AVX2 kernels on this build/host");
    g_simd_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char *
simdLevelName(SimdLevel level)
{
    return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

ConvTapPack
packConvTaps(const sparse::CsbTensor &w, int64_t in_h, int64_t in_w,
             int64_t stride, int64_t pad)
{
    PROCRUSTES_ASSERT(w.kind() == sparse::CsbTensor::Kind::ConvFilters,
                      "tap packing applies to CSB conv filters");
    const Shape &ws = w.denseShape();
    const int64_t r_ext = ws[2];
    const int64_t s_ext = ws[3];
    PROCRUSTES_ASSERT(in_h + 2 * pad >= r_ext && in_w + 2 * pad >= s_ext,
                      "convolution output would be empty");

    ConvTapPack pack;
    pack.inH = in_h;
    pack.inW = in_w;
    pack.stride = stride;
    pack.pad = pad;
    pack.pExt = (in_h + 2 * pad - r_ext) / stride + 1;
    pack.qExt = (in_w + 2 * pad - s_ext) / stride + 1;

    const int64_t nb = w.numBlocks();
    pack.blockOff.assign(static_cast<size_t>(nb) + 1, 0);
    pack.taps.reserve(static_cast<size_t>(w.nnz()));
    for (int64_t b = 0; b < nb; ++b) {
        if (w.blockNnz(b) > 0) {
            for (int64_t e = 0; e < w.blockElems(); ++e) {
                if (!w.blockMaskBit(b, e))
                    continue;
                const int64_t r = e / s_ext;
                const int64_t s = e % s_ext;
                int64_t p_lo, p_hi, q_lo, q_hi;
                validOutRange(pack.pExt, in_h, r, stride, pad, &p_lo,
                              &p_hi);
                validOutRange(pack.qExt, in_w, s, stride, pad, &q_lo,
                              &q_hi);
                ConvTap t;
                t.elem = static_cast<int32_t>(e);
                t.pLo = static_cast<int32_t>(p_lo);
                t.pHi = static_cast<int32_t>(p_hi);
                t.qLo = static_cast<int32_t>(q_lo);
                t.nq = static_cast<int32_t>(q_hi - q_lo);
                // Fold qLo into the base so the row pointer never points
                // before the buffer (s < pad would otherwise form an
                // out-of-bounds base).
                t.xoff = (r - pad) * in_w + q_lo * stride + s - pad;
                pack.taps.push_back(t);
            }
        }
        pack.blockOff[static_cast<size_t>(b) + 1] =
            static_cast<int64_t>(pack.taps.size());
    }
    return pack;
}

void
sparseConvFwdPlaneRun(const ConvRunTap *taps, int64_t ntaps,
                      const float *xbase, float *yplane,
                      int64_t xrow_stride, int64_t p_ext, int64_t q_ext)
{
#ifdef PROCRUSTES_HAVE_AVX2
    if (activeSimdLevel() == SimdLevel::kAvx2) {
        detail::convFwdPlaneRunAvx2(taps, ntaps, xbase, yplane,
                                    xrow_stride, p_ext, q_ext);
        return;
    }
#endif
    detail::convFwdRunScalar(taps, ntaps, xbase, yplane, xrow_stride,
                             p_ext, q_ext);
}

int64_t
sparseConvBwdDataPlane(const ConvTap *taps, int64_t ntaps,
                       const float *wvals, const float *dyplane,
                       float *dxplane, int64_t in_w, int64_t stride,
                       int64_t q_ext)
{
#ifdef PROCRUSTES_HAVE_AVX2
    if (activeSimdLevel() == SimdLevel::kAvx2)
        return detail::convBwdDataPlaneAvx2(taps, ntaps, wvals, dyplane,
                                            dxplane, in_w, stride, q_ext);
#endif
    return detail::convBwdDataPlaneScalar(taps, ntaps, wvals, dyplane,
                                          dxplane, in_w, stride, q_ext);
}

int64_t
sparseConvBwdWeightBlock(const ConvTap *taps, int64_t ntaps,
                         const float *x_chan, const float *dy_chan,
                         int64_t x_batch_stride, int64_t dy_batch_stride,
                         int64_t batch, int64_t in_w, int64_t stride,
                         int64_t q_ext, float *dw_block)
{
#ifdef PROCRUSTES_HAVE_AVX2
    if (activeSimdLevel() == SimdLevel::kAvx2)
        return detail::convBwdWeightBlockAvx2(
            taps, ntaps, x_chan, dy_chan, x_batch_stride, dy_batch_stride,
            batch, in_w, stride, q_ext, dw_block);
#endif
    return detail::convBwdWeightBlockScalar(
        taps, ntaps, x_chan, dy_chan, x_batch_stride, dy_batch_stride,
        batch, in_w, stride, q_ext, dw_block);
}

void
fcPackTile8(const float *src, int64_t row_stride, int64_t width,
            float *tile)
{
    for (int l = 0; l < 8; ++l) {
        const float *row = src + l * row_stride;
        for (int64_t i = 0; i < width; ++i)
            tile[i * 8 + l] = row[i];
    }
}

void
fcUnpackTile8(const float *tile, float *dst, int64_t row_stride,
              int64_t width)
{
    for (int l = 0; l < 8; ++l) {
        float *row = dst + l * row_stride;
        for (int64_t i = 0; i < width; ++i)
            row[i] = tile[i * 8 + l];
    }
}

void
sparseFcFwdRow(const int64_t *offsets, const int64_t *index,
               const float *value, int64_t groups, const float *xr,
               float *yr)
{
    detail::fcFwdRowScalar(offsets, index, value, groups, xr, yr);
}

int64_t
sparseFcBwdDataRow(const int64_t *offsets, const int64_t *index,
                   const float *value, int64_t groups, const float *dyr,
                   float *dxr)
{
    return detail::fcBwdDataRowScalar(offsets, index, value, groups, dyr,
                                      dxr);
}

void
sparseFcFwdTile8(const int64_t *offsets, const int64_t *index,
                 const float *value, int64_t groups, const float *xtile,
                 float *ytile)
{
#ifdef PROCRUSTES_HAVE_AVX2
    if (activeSimdLevel() == SimdLevel::kAvx2) {
        detail::fcFwdTile8Avx2(offsets, index, value, groups, xtile,
                               ytile);
        return;
    }
#endif
    detail::fcFwdTile8Scalar(offsets, index, value, groups, xtile, ytile);
}

int64_t
sparseFcBwdDataTile8(const int64_t *offsets, const int64_t *index,
                     const float *value, int64_t groups,
                     const float *dytile, float *dxtile)
{
#ifdef PROCRUSTES_HAVE_AVX2
    if (activeSimdLevel() == SimdLevel::kAvx2)
        return detail::fcBwdDataTile8Avx2(offsets, index, value, groups,
                                          dytile, dxtile);
#endif
    return detail::fcBwdDataTile8Scalar(offsets, index, value, groups,
                                        dytile, dxtile);
}

int64_t
sparseFcWuFill(const int32_t *idx32, const int32_t *row32, int64_t nnz,
               const float *xr, const float *dyr, float *slot)
{
#ifdef PROCRUSTES_HAVE_AVX2
    if (activeSimdLevel() == SimdLevel::kAvx2)
        return detail::fcWuFillAvx2(idx32, row32, nnz, xr, dyr, slot);
#endif
    return detail::fcWuFillScalar(idx32, row32, nnz, xr, dyr, slot);
}

void
sparseFcWuReduce(const int32_t *di32, const float *part, int64_t nnz,
                 int64_t samples, int64_t t0, int64_t t1, float *pdw)
{
#ifdef PROCRUSTES_HAVE_AVX2
    if (activeSimdLevel() == SimdLevel::kAvx2) {
        detail::fcWuReduceAvx2(di32, part, nnz, samples, t0, t1, pdw);
        return;
    }
#endif
    detail::fcWuReduceScalar(di32, part, nnz, samples, t0, t1, pdw);
}

} // namespace kernels
} // namespace procrustes
