/**
 * @file
 * AVX2 definitions of the sparse microkernels.
 *
 * Compiled with -mavx2 -mfma -ffp-contract=off (per-file, so the rest
 * of the library keeps its host flags and the MARCH_NATIVE=OFF
 * sanitizer build still gets vector kernels). Rounding is symmetric
 * with the scalar reference by construction: the conv forward kernel
 * uses an explicit _mm256_fmadd_ps mirrored by std::fmaf in the
 * scalar loop (both round the fused product-sum once); every other
 * accumulation uses explicit _mm256_add_ps(_mm256_mul_ps(...)) —
 * never a compiler-contracted FMA — so each product is rounded
 * exactly once, like its scalar counterpart.
 *
 * Bitwise-parity invariants (see sparse_microkernels.h):
 *   - lanes are independent outputs (fwd, bwd-data, fc tiles), or
 *   - the lane schedule + reduction tree is mirrored by the scalar
 *     reference (conv bwd-weight), or
 *   - the accumulation order per output is untouched (fc wu reduce).
 * Zero operands are multiplied instead of skipped; the executed-MAC
 * tallies count them out via compare + movemask + popcount.
 */

#ifdef PROCRUSTES_HAVE_AVX2

#include <immintrin.h>

#include "kernels/sparse_microkernels_impl.h"

namespace procrustes {
namespace kernels {
namespace detail {

namespace {

/** Lane masks for 0..7 active tail lanes (high bit set = active). */
alignas(32) const int32_t kTailMask[8][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},
    {-1, 0, 0, 0, 0, 0, 0, 0},
    {-1, -1, 0, 0, 0, 0, 0, 0},
    {-1, -1, -1, 0, 0, 0, 0, 0},
    {-1, -1, -1, -1, 0, 0, 0, 0},
    {-1, -1, -1, -1, -1, 0, 0, 0},
    {-1, -1, -1, -1, -1, -1, 0, 0},
    {-1, -1, -1, -1, -1, -1, -1, 0},
};

inline __m256i
tailMask(int64_t rem)
{
    return _mm256_load_si256(
        reinterpret_cast<const __m256i *>(kTailMask[rem]));
}

/** Gather indices {0, stride, ..., 7*stride} for strided x rows. */
inline __m256i
strideIndex(int64_t stride)
{
    const int32_t s = static_cast<int32_t>(stride);
    return _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s,
                             7 * s);
}

/**
 * Fixed horizontal-sum tree: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)),
 * mirrored exactly by convBwdWeightBlockScalar.
 */
inline float
hsum8(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    const __m128 s = _mm_add_ps(lo, hi);
    const __m128 s2 = _mm_add_ps(s, _mm_movehl_ps(s, s));
    const __m128 s3 =
        _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
    return _mm_cvtss_f32(s3);
}

inline int
countNonzero(__m256 v)
{
    const __m256 zero = _mm256_setzero_ps();
    return __builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_NEQ_UQ))));
}

/**
 * Forward strip: ROWS x NV output vectors held in registers while the
 * whole tap chunk streams by. The prepared input made every tap
 * full-range at unit column stride, so the per-tap work is ROWS * NV
 * load-fused FMAs and nothing else. Partial tail vectors accumulate
 * up to 7 in-buffer garbage lanes; the masked y load/store drops them,
 * so the stored lanes see exactly the scalar fmaf sequence.
 */
template <int ROWS, int NV>
inline void
fwdStrip(const ConvRunTap *taps, int64_t ntaps, const float *xbase,
         int64_t xrs, int64_t p0, int64_t qs, int64_t qn, float *yplane,
         int64_t q_ext)
{
    const int full = static_cast<int>(qn / 8);
    const __m256i tmask = tailMask(qn - 8 * full);
    __m256 acc[ROWS][NV];
    for (int r = 0; r < ROWS; ++r) {
        const float *ys = yplane + (p0 + r) * q_ext + qs;
        for (int v = 0; v < NV; ++v)
            acc[r][v] = v < full
                            ? _mm256_loadu_ps(ys + 8 * v)
                            : _mm256_maskload_ps(ys + 8 * v, tmask);
    }
    for (int64_t t = 0; t < ntaps; ++t) {
        const __m256 wt = _mm256_set1_ps(taps[t].w);
        const float *x0 = xbase + taps[t].xoff + p0 * xrs + qs;
        for (int r = 0; r < ROWS; ++r) {
            const float *xr = x0 + r * xrs;
            for (int v = 0; v < NV; ++v)
                acc[r][v] = _mm256_fmadd_ps(
                    wt, _mm256_loadu_ps(xr + 8 * v), acc[r][v]);
        }
    }
    for (int r = 0; r < ROWS; ++r) {
        float *ys = yplane + (p0 + r) * q_ext + qs;
        for (int v = 0; v < NV; ++v) {
            if (v < full)
                _mm256_storeu_ps(ys + 8 * v, acc[r][v]);
            else
                _mm256_maskstore_ps(ys + 8 * v, tmask, acc[r][v]);
        }
    }
}

template <int ROWS>
inline void
fwdStripNv(const ConvRunTap *taps, int64_t ntaps, const float *xbase,
           int64_t xrs, int64_t p0, int64_t qs, int64_t qn,
           float *yplane, int64_t q_ext)
{
    switch ((qn + 7) / 8) {
    case 1:
        fwdStrip<ROWS, 1>(taps, ntaps, xbase, xrs, p0, qs, qn, yplane,
                          q_ext);
        break;
    case 2:
        fwdStrip<ROWS, 2>(taps, ntaps, xbase, xrs, p0, qs, qn, yplane,
                          q_ext);
        break;
    case 3:
        fwdStrip<ROWS, 3>(taps, ntaps, xbase, xrs, p0, qs, qn, yplane,
                          q_ext);
        break;
    default:
        fwdStrip<ROWS, 4>(taps, ntaps, xbase, xrs, p0, qs, qn, yplane,
                          q_ext);
        break;
    }
}

} // namespace

void
convFwdPlaneRunAvx2(const ConvRunTap *taps, int64_t ntaps,
                    const float *xbase, float *yplane, int64_t xrs,
                    int64_t p_ext, int64_t q_ext)
{
    // Strip height trades accumulator registers against per-tap
    // overhead: narrow planes (<= 2 vectors per row) afford 4 rows;
    // wide ones stay at 2 (3 rows x 4 vectors spills accumulators).
    const int64_t rp = q_ext <= 16 ? 4 : 2;
    for (int64_t p0 = 0; p0 < p_ext; p0 += rp) {
        const int64_t rows = p_ext - p0 < rp ? p_ext - p0 : rp;
        for (int64_t qs = 0; qs < q_ext; qs += 32) {
            const int64_t qn =
                q_ext - qs < 32 ? q_ext - qs : static_cast<int64_t>(32);
            switch (rows) {
            case 1:
                fwdStripNv<1>(taps, ntaps, xbase, xrs, p0, qs, qn,
                              yplane, q_ext);
                break;
            case 2:
                fwdStripNv<2>(taps, ntaps, xbase, xrs, p0, qs, qn,
                              yplane, q_ext);
                break;
            case 3:
                fwdStripNv<3>(taps, ntaps, xbase, xrs, p0, qs, qn,
                              yplane, q_ext);
                break;
            default:
                fwdStripNv<4>(taps, ntaps, xbase, xrs, p0, qs, qn,
                              yplane, q_ext);
                break;
            }
        }
    }
}

int64_t
convBwdDataPlaneAvx2(const ConvTap *taps, int64_t ntaps,
                     const float *wvals, const float *dyplane,
                     float *dxplane, int64_t in_w, int64_t stride,
                     int64_t q_ext)
{
    // The dx scatter is only contiguous at stride 1; strided rows run
    // the scalar reference (identical at both dispatch levels).
    if (stride != 1)
        return convBwdDataPlaneScalar(taps, ntaps, wvals, dyplane,
                                      dxplane, in_w, stride, q_ext);
    int64_t macs = 0;
    for (int64_t t = 0; t < ntaps; ++t) {
        const ConvTap &tp = taps[t];
        if (tp.nq <= 0 || tp.pHi <= tp.pLo)
            continue;
        const __m256 wt = _mm256_set1_ps(wvals[t]);
        for (int64_t p = tp.pLo; p < tp.pHi; ++p) {
            float *dxr = dxplane + p * in_w + tp.xoff;
            const float *gr = dyplane + p * q_ext + tp.qLo;
            int64_t q = 0;
            for (; q + 8 <= tp.nq; q += 8) {
                const __m256 g = _mm256_loadu_ps(gr + q);
                __m256 d = _mm256_loadu_ps(dxr + q);
                d = _mm256_add_ps(d, _mm256_mul_ps(wt, g));
                _mm256_storeu_ps(dxr + q, d);
                macs += countNonzero(g);
            }
            const int64_t rem = tp.nq - q;
            if (rem) {
                const __m256i m = tailMask(rem);
                const __m256 g = _mm256_maskload_ps(gr + q, m);
                __m256 d = _mm256_maskload_ps(dxr + q, m);
                d = _mm256_add_ps(d, _mm256_mul_ps(wt, g));
                _mm256_maskstore_ps(dxr + q, m, d);
                macs += countNonzero(g);   // dead lanes load +0: uncounted
            }
        }
    }
    return macs;
}

int64_t
convBwdWeightBlockAvx2(const ConvTap *taps, int64_t ntaps,
                       const float *x_chan, const float *dy_chan,
                       int64_t x_batch_stride, int64_t dy_batch_stride,
                       int64_t batch, int64_t in_w, int64_t stride,
                       int64_t q_ext, float *dw_block)
{
    const int64_t xrs = stride * in_w;
    const __m256i vidx = strideIndex(stride);
    int64_t macs = 0;
    for (int64_t t = 0; t < ntaps; ++t) {
        const ConvTap &tp = taps[t];
        __m256 acc = _mm256_setzero_ps();
        if (tp.nq > 0 && tp.pHi > tp.pLo) {
            for (int64_t in = 0; in < batch; ++in) {
                const float *xp = x_chan + in * x_batch_stride;
                const float *gp = dy_chan + in * dy_batch_stride;
                for (int64_t p = tp.pLo; p < tp.pHi; ++p) {
                    const float *xr = xp + p * xrs + tp.xoff;
                    const float *gr = gp + p * q_ext + tp.qLo;
                    int64_t q = 0;
                    for (; q + 8 <= tp.nq; q += 8) {
                        const __m256 xv =
                            stride == 1
                                ? _mm256_loadu_ps(xr + q)
                                : _mm256_i32gather_ps(xr + q * stride,
                                                      vidx, 4);
                        const __m256 g = _mm256_loadu_ps(gr + q);
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(g, xv));
                        macs += countNonzero(xv);
                    }
                    const int64_t rem = tp.nq - q;
                    if (rem) {
                        const __m256i m = tailMask(rem);
                        __m256 xv;
                        if (stride == 1) {
                            xv = _mm256_maskload_ps(xr + q, m);
                        } else {
                            xv = _mm256_mask_i32gather_ps(
                                _mm256_setzero_ps(), xr + q * stride,
                                vidx, _mm256_castsi256_ps(m), 4);
                        }
                        const __m256 g = _mm256_maskload_ps(gr + q, m);
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(g, xv));
                        macs += countNonzero(xv);
                    }
                }
            }
        }
        dw_block[tp.elem] += hsum8(acc);
    }
    return macs;
}

void
fcFwdTile8Avx2(const int64_t *offsets, const int64_t *index,
               const float *value, int64_t groups, const float *xtile,
               float *ytile)
{
    for (int64_t o = 0; o < groups; ++o) {
        __m256 acc = _mm256_setzero_ps();
        for (int64_t t = offsets[o]; t < offsets[o + 1]; ++t) {
            const __m256 v = _mm256_set1_ps(value[t]);
            const __m256 xv = _mm256_loadu_ps(xtile + index[t] * 8);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(v, xv));
        }
        _mm256_storeu_ps(ytile + o * 8, acc);
    }
}

int64_t
fcBwdDataTile8Avx2(const int64_t *offsets, const int64_t *index,
                   const float *value, int64_t groups,
                   const float *dytile, float *dxtile)
{
    int64_t macs = 0;
    for (int64_t i = 0; i < groups; ++i) {
        __m256 acc = _mm256_setzero_ps();
        for (int64_t t = offsets[i]; t < offsets[i + 1]; ++t) {
            const __m256 v = _mm256_set1_ps(value[t]);
            const __m256 g = _mm256_loadu_ps(dytile + index[t] * 8);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(v, g));
            macs += countNonzero(g);
        }
        _mm256_storeu_ps(dxtile + i * 8, acc);
    }
    return macs;
}

int64_t
fcWuFillAvx2(const int32_t *idx32, const int32_t *row32, int64_t nnz,
             const float *xr, const float *dyr, float *slot)
{
    int64_t macs = 0;
    int64_t t = 0;
    for (; t + 8 <= nnz; t += 8) {
        const __m256i vi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(idx32 + t));
        const __m256i vr = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row32 + t));
        const __m256 xv = _mm256_i32gather_ps(xr, vi, 4);
        const __m256 g = _mm256_i32gather_ps(dyr, vr, 4);
        // Zero x lanes write dy * ±0 where the scalar reference writes
        // +0 — scratch-only ±0 noise the sample-ordered reduction is
        // provably insensitive to (see sparse_microkernels.h).
        _mm256_storeu_ps(slot + t, _mm256_mul_ps(g, xv));
        macs += countNonzero(xv);
    }
    for (; t < nnz; ++t) {
        const float xv = xr[idx32[t]];
        if (xv == 0.0f) {
            slot[t] = 0.0f;
            continue;
        }
        slot[t] = dyr[row32[t]] * xv;
        ++macs;
    }
    return macs;
}

void
fcWuReduceAvx2(const int32_t *di32, const float *part, int64_t nnz,
               int64_t samples, int64_t t0, int64_t t1, float *pdw)
{
    int64_t t = t0;
    for (; t + 8 <= t1; t += 8) {
        const __m256i vdi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(di32 + t));
        // Live (o, i) pairs are distinct, so the dW slots of 8 adjacent
        // taps never alias: gather-accumulate-scatter is safe, and each
        // slot still sums its partials in sample order — bitwise equal
        // to the scalar reduction.
        __m256 acc = _mm256_i32gather_ps(pdw, vdi, 4);
        for (int64_t s = 0; s < samples; ++s)
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(part + s * nnz + t));
        alignas(32) float out[8];
        _mm256_store_ps(out, acc);
        for (int l = 0; l < 8; ++l)
            pdw[di32[t + l]] = out[l];
    }
    for (; t < t1; ++t) {
        const int64_t di = di32[t];
        float acc = pdw[di];
        for (int64_t s = 0; s < samples; ++s)
            acc += part[s * nnz + t];
        pdw[di] = acc;
    }
}

} // namespace detail
} // namespace kernels
} // namespace procrustes

#endif // PROCRUSTES_HAVE_AVX2
