/**
 * @file
 * SIMD microkernels for the CSB sparse executors.
 *
 * The five sparse training executors (conv forward / backward-data /
 * backward-weight in src/sparse/sparse_conv.cc, fc forward / backward
 * in src/sparse/sparse_linear.cc) traverse non-zero weights but still
 * sweep a *dense* axis per tap — the output-pixel q loop for conv, the
 * sample axis for fc. These microkernels vectorize that dense axis
 * with AVX2 while keeping the per-output nonzero traversal order
 * fixed, so the results are bitwise identical to the scalar reference
 * for every thread count and SIMD level:
 *
 *   - conv forward is output-stationary over a *prepared* input: the
 *     executor copies each input plane once into a zero-padded,
 *     stride-phase-split scratch layout, after which every mask-live
 *     tap covers the full output plane with unit column stride — no
 *     range masks, no gathers, just contiguous loads feeding FMAs.
 *     The AVX2 kernel holds a register strip of output pixels and
 *     accumulates every tap of an input-channel run into it in the one
 *     fixed tap order, so each output element sees the exact addition
 *     sequence of the scalar reference (pad taps contribute an exact
 *     ±0, an identity — see the zero-skipping note). Both levels use a
 *     fused multiply-add per tap (std::fmaf / vfmadd), which rounds
 *     once, identically.
 *   - conv backward-data broadcasts one weight against 8 gradient
 *     pixels per step; lanes are independent output elements, so
 *     chunking cannot change any sum.
 *   - conv backward-weight reduces each tap over (n, p, q) into 8
 *     accumulator lanes indexed by q mod 8 and collapses them with a
 *     fixed binary tree; the scalar fallback implements the *same*
 *     lane schedule, so both levels agree bit-for-bit.
 *   - fc forward / backward-data process the batch in transposed
 *     8-sample tiles: lane l is sample l, each lane accumulates its
 *     taps in the one fixed gather order.
 *   - fc backward-weight vectorizes the per-sample partial fill
 *     (gather x / dy by tap index) and the per-tap sample-ordered
 *     reduction; accumulation order per dW element is unchanged.
 *
 * Zero-skipping note: the scalar executors skip zero operands, the
 * SIMD paths multiply them (a PE would skip; a lane is free). Both are
 * bitwise equal because an accumulator that starts at +0 can never
 * become -0 (IEEE 754: exact cancellation rounds to +0, and +0 + (±0)
 * is +0), so adding wt * ±0 is an identity on every partial sum. The
 * executed-MAC tallies still count only non-zero operands (via
 * compare + movemask + popcount), matching the scalar counters.
 *
 * Both microkernel translation units are compiled with
 * -ffp-contract=off, so the compiler may not fuse (or un-fuse) what
 * the other level rounds differently. Where an FMA is used it is
 * explicit and symmetric (conv forward: std::fmaf / _mm256_fmadd_ps);
 * everywhere else both levels use explicit mul + add.
 *
 * Dispatch: PROCRUSTES_SIMD=avx2|scalar overrides the default (AVX2
 * whenever the binary and the CPU support it); setSimdLevel() lets
 * tests flip levels programmatically. The scalar fallback is compiled
 * unconditionally, so non-AVX2 hosts build and run unchanged.
 */

#ifndef PROCRUSTES_KERNELS_SPARSE_MICROKERNELS_H_
#define PROCRUSTES_KERNELS_SPARSE_MICROKERNELS_H_

#include <cstdint>
#include <vector>

#include "sparse/csb.h"

namespace procrustes {
namespace kernels {

/** SIMD implementation level of the sparse microkernels. */
enum class SimdLevel
{
    kScalar = 0,   //!< portable reference, always compiled
    kAvx2 = 1,     //!< 8-lane AVX2, bitwise identical to kScalar
};

/** True if this binary AND this CPU can run the AVX2 kernels. */
bool avx2Supported();

/**
 * The level the microkernels dispatch to. Resolved once from the
 * PROCRUSTES_SIMD environment variable (avx2 | scalar; forcing avx2 on
 * a host without it is a fatal error), defaulting to kAvx2 whenever
 * avx2Supported().
 */
SimdLevel activeSimdLevel();

/** Override the dispatch level (tests); kAvx2 requires avx2Supported(). */
void setSimdLevel(SimdLevel level);

/** Human-readable level name ("scalar" / "avx2"). */
const char *simdLevelName(SimdLevel level);

/**
 * One live conv weight with its padding-clipped output ranges and the
 * precomputed input-plane offset of its first valid row — everything
 * the inner loops need, so they stream taps instead of chasing block
 * maps. Taps are packed in CSB mask order, which is exactly the packed
 * value order, so tap i of a block pairs with value i of that block.
 */
struct ConvTap
{
    int32_t elem;       //!< dense element r * S + s within the block
    int32_t pLo, pHi;   //!< valid output rows [pLo, pHi)
    int32_t qLo;        //!< first valid output column
    int32_t nq;         //!< number of valid output columns
    int64_t xoff;       //!< plane offset of the p == pLo.. row base:
                        //!< xrow = plane + p*stride*W + xoff
};

/**
 * Gather-free packed tap stream for one CSB conv-filter tensor at one
 * input geometry: per-block contiguous ConvTap runs addressed by
 * blockOff (size numBlocks + 1). One pack serves all three conv
 * phases — the mask-live tap set IS the packed value set — and stays
 * valid as long as the mask and the input geometry do (weight *values*
 * live in the CsbTensor and are re-read each call, so a pack survives
 * optimizer steps that only change values).
 */
struct ConvTapPack
{
    std::vector<ConvTap> taps;      //!< block-major, mask order
    std::vector<int64_t> blockOff;  //!< per-block tap offsets, nb + 1
    int64_t inH = 0, inW = 0;       //!< input geometry the pack clips to
    int64_t stride = 0, pad = 0;
    int64_t pExt = 0, qExt = 0;     //!< derived output extents

    bool valid() const { return !blockOff.empty(); }

    /** True if this pack describes the given call geometry. */
    bool
    matches(int64_t in_h, int64_t in_w, int64_t s, int64_t p) const
    {
        return valid() && inH == in_h && inW == in_w && stride == s &&
               pad == p;
    }
};

/** Build the packed tap stream for CSB conv filters at one geometry. */
ConvTapPack packConvTaps(const sparse::CsbTensor &w, int64_t in_h,
                         int64_t in_w, int64_t stride, int64_t pad);

/**
 * One flattened forward tap against the *prepared* input (zero-padded,
 * stride-phase-split — see sparseConvForward): channel plane, kernel
 * row, and phase slot are all folded into one offset and the weight
 * value is copied in, so the forward kernel streams one homogeneous
 * array over an input-channel run of one output channel. Every tap
 * covers the full output plane at unit column stride by construction.
 * Executors rebuild these per call (values change every optimizer
 * step) from the cached ConvTapPack geometry.
 */
struct ConvRunTap
{
    int64_t xoff;   //!< prepared-x offset of output (0, 0): output
                    //!< (p, q) reads xbase + xoff + p*xrow_stride + q
    float w;        //!< the tap's weight value
};

/**
 * Forward conv kernel for one whole output plane: accumulate every
 * run tap (an input-channel chunk of one output channel, in pack
 * order) into yplane. yplane carries partial sums across chunked
 * calls — the executor zero-initializes it once. The AVX2 level is
 * output-stationary — register strips of y accumulate all taps before
 * one store — and bitwise identical to the scalar tap-major reference:
 * per output element both visit the taps in the same order with one
 * fused multiply-add each. The AVX2 level may *read* up to 7 floats
 * past a tap's last valid column (the prepared buffer guarantees the
 * slack); those lanes never reach yplane — masked stores drop them.
 * Dispatches on activeSimdLevel().
 */
void sparseConvFwdPlaneRun(const ConvRunTap *taps, int64_t ntaps,
                           const float *xbase, float *yplane,
                           int64_t xrow_stride, int64_t p_ext,
                           int64_t q_ext);

/**
 * Backward-data conv inner kernel: scatter one block's taps from one
 * gradient plane into one dx plane. Returns the executed MACs (taps x
 * non-zero dy operands). Strided (stride > 1) rows run the scalar
 * reference at both levels — the dx scatter is non-contiguous there.
 */
int64_t sparseConvBwdDataPlane(const ConvTap *taps, int64_t ntaps,
                               const float *wvals, const float *dyplane,
                               float *dxplane, int64_t in_w,
                               int64_t stride, int64_t q_ext);

/**
 * Backward-weight conv inner kernel: reduce one block's taps over the
 * whole batch into dw_block (the block's dense r*S+s slots, via
 * ConvTap::elem). x_chan / dy_chan point at sample 0 of the block's
 * input / output channel plane; *_batch_stride advance one sample.
 * Returns the executed MACs (taps x non-zero x operands). Both levels
 * use the same 8-lane q-mod-8 accumulator schedule and the same fixed
 * reduction tree, so they are bitwise identical.
 */
int64_t sparseConvBwdWeightBlock(const ConvTap *taps, int64_t ntaps,
                                 const float *x_chan,
                                 const float *dy_chan,
                                 int64_t x_batch_stride,
                                 int64_t dy_batch_stride, int64_t batch,
                                 int64_t in_w, int64_t stride,
                                 int64_t q_ext, float *dw_block);

/**
 * Transpose an 8-sample row-major slab [8, width] (row stride
 * row_stride) into a lane tile tile[width * 8], tile[i*8 + l] =
 * src[l*row_stride + i]. Pure data movement — no dispatch needed.
 */
void fcPackTile8(const float *src, int64_t row_stride, int64_t width,
                 float *tile);

/** Inverse of fcPackTile8: dst[l*row_stride + i] = tile[i*8 + l]. */
void fcUnpackTile8(const float *tile, float *dst, int64_t row_stride,
                   int64_t width);

/**
 * Forward fc row kernel for ONE sample: yr[o] = sum of row o's taps.
 * This is the untiled reference the tile kernels are lane-equal to;
 * executors use it for tail samples so every sample's arithmetic lives
 * in this -ffp-contract=off TU (an executor-side loop could be fused
 * into FMAs by its own TU's flags and break bitwise parity).
 */
void sparseFcFwdRow(const int64_t *offsets, const int64_t *index,
                    const float *value, int64_t groups, const float *xr,
                    float *yr);

/**
 * Backward-data fc row kernel for ONE sample (column-view taps, zero-dy
 * skip). Returns executed MACs. Tail-sample counterpart of
 * sparseFcBwdDataTile8, same TU-pinning rationale as sparseFcFwdRow.
 */
int64_t sparseFcBwdDataRow(const int64_t *offsets, const int64_t *index,
                           const float *value, int64_t groups,
                           const float *dyr, float *dxr);

/**
 * Forward fc tile kernel: for each of `groups` output rows, accumulate
 * its taps across the 8 sample lanes of xtile into ytile[o*8..].
 * Per-lane accumulation order equals the scalar per-sample executor's,
 * so results are bitwise identical to the untiled reference.
 */
void sparseFcFwdTile8(const int64_t *offsets, const int64_t *index,
                      const float *value, int64_t groups,
                      const float *xtile, float *ytile);

/**
 * Backward-data fc tile kernel (column-view taps, dytile in, dxtile
 * out). Returns executed MACs: taps x non-zero dy lanes.
 */
int64_t sparseFcBwdDataTile8(const int64_t *offsets, const int64_t *index,
                             const float *value, int64_t groups,
                             const float *dytile, float *dxtile);

/**
 * Weight-update fc fill kernel: slot[t] = dy[row32[t]] * x[idx32[t]]
 * for all nnz taps of one sample (an exact zero when the x operand is
 * zero). Returns executed MACs (non-zero x operands).
 */
int64_t sparseFcWuFill(const int32_t *idx32, const int32_t *row32,
                       int64_t nnz, const float *xr, const float *dyr,
                       float *slot);

/**
 * Weight-update fc reduction kernel over taps [t0, t1): pdw[di32[t]]
 * += sum of this group's per-sample partials in sample order (part is
 * [samples, nnz] row-major). Sample order per tap is preserved at both
 * levels, so the accumulation stays bitwise thread-count invariant.
 */
void sparseFcWuReduce(const int32_t *di32, const float *part,
                      int64_t nnz, int64_t samples, int64_t t0,
                      int64_t t1, float *pdw);

} // namespace kernels
} // namespace procrustes

#endif // PROCRUSTES_KERNELS_SPARSE_MICROKERNELS_H_
