/**
 * @file
 * Compute-backend selector for the NN layers.
 *
 * Every layer that owns a heavy loop nest (Conv2d, Linear) carries the
 * original direct loop nest (`kNaive`), kept as the semantic reference
 * for parity tests, the lowered im2col + tiled-GEMM path (`kGemm`)
 * that the training benchmarks run on, and the CSB sparse executors
 * (`kSparse`): weights are consumed in compressed form and all three
 * training passes — forward, backward-data, and backward-weight —
 * skip pruned positions, the paper's Figure 2 access pattern (conv
 * blocks are read 180°-rotated in backward-data; fc blocks are read
 * transposed). The process-wide default starts from the
 * PROCRUSTES_KERNEL_BACKEND environment variable ("naive", "gemm", or
 * "sparse") and can be overridden per layer.
 */

#ifndef PROCRUSTES_KERNELS_BACKEND_H_
#define PROCRUSTES_KERNELS_BACKEND_H_

#include <string>

namespace procrustes {
namespace kernels {

/** Which implementation a layer's forward/backward dispatches to. */
enum class KernelBackend
{
    kNaive,   //!< direct loop nest (reference semantics)
    kGemm,    //!< im2col lowering + blocked GEMM + thread pool
    kSparse,  //!< CSB zero-skipping executors (conv + fc layers)
};

/** Process-wide default backend newly-constructed layers pick up. */
KernelBackend defaultKernelBackend();

/** Override the process-wide default. */
void setDefaultKernelBackend(KernelBackend backend);

/** "naive" / "gemm" / "sparse". */
const char *kernelBackendName(KernelBackend backend);

/** Parse a backend name; fatal() on anything unrecognized. */
KernelBackend parseKernelBackend(const std::string &name);

} // namespace kernels
} // namespace procrustes

#endif // PROCRUSTES_KERNELS_BACKEND_H_
