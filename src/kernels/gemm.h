/**
 * @file
 * Cache-blocked single-precision GEMM for the software compute backend.
 *
 * All lowered convolution and fully-connected work in the training loop
 * funnels into one primitive: row-major C = A * B (optionally C += A *
 * B). The implementation blocks over k and n for cache residency, runs
 * a register-tiled 4x16 micro-kernel on the interior (which GCC/Clang
 * auto-vectorize to FMA at -O2 -march=native), and parallelizes over
 * disjoint row panels of C through the shared ThreadPool — so results
 * are bitwise deterministic for any thread count.
 *
 * Operand transposes (filter rot/transpose views, dy^T for weight
 * gradients) are materialized explicitly with transpose() rather than
 * handled by strided kernel variants; the copies are O(matrix) next to
 * the O(matrix * k) multiply and keep every inner loop unit-stride.
 */

#ifndef PROCRUSTES_KERNELS_GEMM_H_
#define PROCRUSTES_KERNELS_GEMM_H_

#include <cstdint>

namespace procrustes {

class ThreadPool;

namespace kernels {

/**
 * Row-major GEMM: C = A * B, or C += A * B when `accumulate`.
 *
 * @param m rows of A and C.
 * @param n columns of B and C.
 * @param k columns of A / rows of B.
 * @param a A, m x k, leading dimension lda >= k.
 * @param b B, k x n, leading dimension ldb >= n.
 * @param c C, m x n, leading dimension ldc >= n.
 * @param accumulate add into C instead of overwriting it.
 * @param pool pool to parallelize row panels over; nullptr runs serial.
 */
void gemm(int64_t m, int64_t n, int64_t k, const float *a, int64_t lda,
          const float *b, int64_t ldb, float *c, int64_t ldc,
          bool accumulate, ThreadPool *pool);

/** Convenience overload: packed leading dimensions, global pool. */
void gemm(int64_t m, int64_t n, int64_t k, const float *a, const float *b,
          float *c, bool accumulate = false);

/** Row-major out[c][r] = in[r][c] for an r x c matrix. */
void transpose(const float *in, int64_t rows, int64_t cols, float *out);

} // namespace kernels
} // namespace procrustes

#endif // PROCRUSTES_KERNELS_GEMM_H_
