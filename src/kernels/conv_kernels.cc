#include "kernels/conv_kernels.h"

#include <algorithm>

#include "common/logging.h"
#include "common/scratch_arena.h"
#include "common/thread_pool.h"
#include "kernels/gemm.h"

namespace procrustes {
namespace kernels {

ConvGeom
convGeomFromTensors(const Tensor &x, const Shape &w_shape, int64_t stride,
                    int64_t pad)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4, "conv input must be NCHW");
    PROCRUSTES_ASSERT(w_shape.rank() == 4, "conv filters must be KCRS");
    PROCRUSTES_ASSERT(xs[1] == w_shape[1], "conv channel mismatch");
    return makeConvGeom(xs[1], xs[2], xs[3], w_shape[0], w_shape[2],
                        w_shape[3], stride, pad);
}

namespace {

/**
 * True when splitting the batch across tasks beats splitting each
 * image's GEMM into row panels: every thread gets at least one whole
 * image. Both decompositions are bitwise identical per output element
 * (images are independent; serial and row-panel GEMM share one
 * reduction order), so this is purely a utilization choice and cannot
 * perturb results across thread counts.
 */
bool
useBatchParallel(int64_t n, const ThreadPool &pool)
{
    return n >= pool.numThreads() && pool.numThreads() > 1;
}

} // namespace

Tensor
convForwardGemm(const Tensor &x, const Tensor &w, const Tensor *bias,
                const ConvGeom &g)
{
    const int64_t n = x.shape()[0];
    const int64_t crs = g.colRows();
    const int64_t pq = g.colCols();
    Tensor y(Shape{n, g.k, g.p, g.q});

    const float *px = x.data();
    const float *pw = w.data();
    const float *pb = bias ? bias->data() : nullptr;
    float *py = y.data();

    ThreadPool &pool = ThreadPool::global();
    const int64_t chw = g.c * g.h * g.w;
    auto forwardImage = [&](int64_t in, float *col) {
        im2col(px + in * chw, g, col);
        float *yn = py + in * g.k * pq;
        // Explicit-pool overload: no global-pool lookup per image; the
        // nested call runs serially inside a worker either way.
        gemm(g.k, pq, crs, pw, crs, col, pq, yn, pq,
             /*accumulate=*/false, &pool);
        if (pb) {
            for (int64_t ok = 0; ok < g.k; ++ok) {
                const float b = pb[ok];
                float *row = yn + ok * pq;
                for (int64_t j = 0; j < pq; ++j)
                    row[j] += b;
            }
        }
    };

    if (useBatchParallel(n, pool)) {
        // Images are independent: each task lowers and multiplies its
        // own images with a private workspace. The nested GEMM runs
        // serially inside the task (the pool never nests).
        pool.parallelFor(0, n, [&](int64_t n0, int64_t n1) {
            ScratchArena::Buffer col =
                ScratchArena::global().acquire(
                    static_cast<size_t>(crs * pq));
            for (int64_t in = n0; in < n1; ++in)
                forwardImage(in, col.data());
        });
    } else {
        // Narrow batch: keep the batch loop serial and let the GEMM
        // spread row panels across the pool instead.
        ScratchArena::Buffer col = ScratchArena::global().acquire(
            static_cast<size_t>(crs * pq));
        for (int64_t in = 0; in < n; ++in)
            forwardImage(in, col.data());
    }
    return y;
}

Tensor
convBackwardGemm(const Tensor &x, const Tensor &w, const Tensor &dy,
                 const ConvGeom &g, Tensor *dw, Tensor *db)
{
    const int64_t n = x.shape()[0];
    const int64_t crs = g.colRows();
    const int64_t pq = g.colCols();
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, g.k, g.p, g.q}),
                      "dy shape mismatch in conv backward");
    PROCRUSTES_ASSERT(dw && dw->shape() == w.shape(),
                      "dw shape mismatch in conv backward");

    Tensor dx(x.shape());

    // The backward filter view: one transpose serves every image.
    ScratchArena::Buffer wt = ScratchArena::global().acquire(
        static_cast<size_t>(crs * g.k));
    transpose(w.data(), g.k, crs, wt.data());

    // Per-image dW / db partials. Whichever task computes image `in`
    // writes slice `in`, and the reduction walks images in index order
    // — so the accumulation order per dW element is fixed for every
    // thread count (and every batch decomposition). The partial buffer
    // is capped: images are processed in groups whose size depends
    // only on the filter geometry (never on the thread count, which
    // would change the writeback boundaries and hence the rounding),
    // bounding scratch at ~64 MB for any batch size.
    const int64_t kcrs = g.k * crs;
    constexpr int64_t kMaxPartialBytes = 64 << 20;
    const int64_t group = std::min(
        n, std::max<int64_t>(
               1, kMaxPartialBytes /
                      (kcrs * static_cast<int64_t>(sizeof(float)))));
    ScratchArena::Buffer dw_part = ScratchArena::global().acquire(
        static_cast<size_t>(group * kcrs));
    ScratchArena::Buffer db_part;
    if (db) {
        db_part = ScratchArena::global().acquire(
            static_cast<size_t>(group * g.k));
    }

    const float *px = x.data();
    const float *pdy = dy.data();
    float *pdx = dx.data();
    float *pdw_part = dw_part.data();
    float *pdb_part = db ? db_part.data() : nullptr;
    float *pdw = dw->data();
    float *pdb = db ? db->data() : nullptr;

    ThreadPool &pool = ThreadPool::global();
    const bool batch_parallel = useBatchParallel(n, pool);

    const int64_t chw = g.c * g.h * g.w;
    // `slot` is the image's index within its group (its partial slice).
    auto backwardImage = [&](int64_t in, int64_t slot, float *col,
                             float *colt, float *dcol) {
        const float *dyn = pdy + in * g.k * pq;

        // Weight-update pass: partial dW_n = dY_n * col(X_n)^T.
        im2col(px + in * chw, g, col);
        transpose(col, crs, pq, colt);
        gemm(g.k, crs, pq, dyn, pq, colt, crs, pdw_part + slot * kcrs,
             crs, /*accumulate=*/false, &pool);

        // Backward (data) pass: dX_n = col2im(W^T * dY_n).
        gemm(crs, pq, g.k, wt.data(), g.k, dyn, pq, dcol, pq,
             /*accumulate=*/false, &pool);
        col2im(dcol, g, pdx + in * chw);

        if (pdb_part) {
            for (int64_t ok = 0; ok < g.k; ++ok) {
                const float *row = dyn + ok * pq;
                float acc = 0.0f;
                for (int64_t j = 0; j < pq; ++j)
                    acc += row[j];
                pdb_part[slot * g.k + ok] = acc;
            }
        }
    };

    // Serial path reuses one workspace across all groups.
    ScratchArena::Buffer scol, scolt, sdcol;
    if (!batch_parallel) {
        ScratchArena &arena = ScratchArena::global();
        scol = arena.acquire(static_cast<size_t>(crs * pq));
        scolt = arena.acquire(static_cast<size_t>(pq * crs));
        sdcol = arena.acquire(static_cast<size_t>(crs * pq));
    }

    for (int64_t base = 0; base < n; base += group) {
        const int64_t hi = std::min(n, base + group);

        if (batch_parallel) {
            pool.parallelFor(base, hi, [&](int64_t n0, int64_t n1) {
                ScratchArena &arena = ScratchArena::global();
                ScratchArena::Buffer col =
                    arena.acquire(static_cast<size_t>(crs * pq));
                ScratchArena::Buffer colt =
                    arena.acquire(static_cast<size_t>(pq * crs));
                ScratchArena::Buffer dcol =
                    arena.acquire(static_cast<size_t>(crs * pq));
                for (int64_t in = n0; in < n1; ++in)
                    backwardImage(in, in - base, col.data(),
                                  colt.data(), dcol.data());
            });
        } else {
            for (int64_t in = base; in < hi; ++in)
                backwardImage(in, in - base, scol.data(), scolt.data(),
                              sdcol.data());
        }

        // Ordered reduction: every dW element sums this group's
        // per-image partials in image order. Parallel over elements
        // (disjoint outputs), never over images — that, plus group
        // boundaries that do not depend on the thread count, is what
        // keeps the result bitwise identical for any pool size.
        const int64_t gn = hi - base;
        pool.parallelFor(0, kcrs, [&](int64_t j0, int64_t j1) {
            for (int64_t j = j0; j < j1; ++j) {
                float acc = pdw[j];
                for (int64_t s = 0; s < gn; ++s)
                    acc += pdw_part[s * kcrs + j];
                pdw[j] = acc;
            }
        });
        if (pdb) {
            for (int64_t ok = 0; ok < g.k; ++ok) {
                float acc = pdb[ok];
                for (int64_t s = 0; s < gn; ++s)
                    acc += pdb_part[s * g.k + ok];
                pdb[ok] = acc;
            }
        }
    }
    return dx;
}

} // namespace kernels
} // namespace procrustes
