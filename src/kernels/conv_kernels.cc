#include "kernels/conv_kernels.h"

#include <vector>

#include "common/logging.h"
#include "kernels/gemm.h"

namespace procrustes {
namespace kernels {

ConvGeom
convGeomFromTensors(const Tensor &x, const Shape &w_shape, int64_t stride,
                    int64_t pad)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4, "conv input must be NCHW");
    PROCRUSTES_ASSERT(w_shape.rank() == 4, "conv filters must be KCRS");
    PROCRUSTES_ASSERT(xs[1] == w_shape[1], "conv channel mismatch");
    return makeConvGeom(xs[1], xs[2], xs[3], w_shape[0], w_shape[2],
                        w_shape[3], stride, pad);
}

Tensor
convForwardGemm(const Tensor &x, const Tensor &w, const Tensor *bias,
                const ConvGeom &g)
{
    const int64_t n = x.shape()[0];
    const int64_t crs = g.colRows();
    const int64_t pq = g.colCols();
    Tensor y(Shape{n, g.k, g.p, g.q});

    std::vector<float> col(static_cast<size_t>(crs * pq));
    const float *px = x.data();
    const float *pw = w.data();
    const float *pb = bias ? bias->data() : nullptr;
    float *py = y.data();

    const int64_t chw = g.c * g.h * g.w;
    for (int64_t in = 0; in < n; ++in) {
        im2col(px + in * chw, g, col.data());
        float *yn = py + in * g.k * pq;
        gemm(g.k, pq, crs, pw, col.data(), yn, /*accumulate=*/false);
        if (pb) {
            for (int64_t ok = 0; ok < g.k; ++ok) {
                const float b = pb[ok];
                float *row = yn + ok * pq;
                for (int64_t j = 0; j < pq; ++j)
                    row[j] += b;
            }
        }
    }
    return y;
}

Tensor
convBackwardGemm(const Tensor &x, const Tensor &w, const Tensor &dy,
                 const ConvGeom &g, Tensor *dw, Tensor *db)
{
    const int64_t n = x.shape()[0];
    const int64_t crs = g.colRows();
    const int64_t pq = g.colCols();
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, g.k, g.p, g.q}),
                      "dy shape mismatch in conv backward");
    PROCRUSTES_ASSERT(dw && dw->shape() == w.shape(),
                      "dw shape mismatch in conv backward");

    Tensor dx(x.shape());

    // The backward filter view: one transpose serves every image.
    std::vector<float> wt(static_cast<size_t>(crs * g.k));
    transpose(w.data(), g.k, crs, wt.data());

    std::vector<float> col(static_cast<size_t>(crs * pq));
    std::vector<float> colt(static_cast<size_t>(pq * crs));
    std::vector<float> dcol(static_cast<size_t>(crs * pq));

    const float *px = x.data();
    const float *pdy = dy.data();
    float *pdx = dx.data();
    float *pdw = dw->data();
    float *pdb = db ? db->data() : nullptr;

    const int64_t chw = g.c * g.h * g.w;
    for (int64_t in = 0; in < n; ++in) {
        const float *dyn = pdy + in * g.k * pq;

        // Weight-update pass: dW += dY_n * col(X_n)^T.
        im2col(px + in * chw, g, col.data());
        transpose(col.data(), crs, pq, colt.data());
        gemm(g.k, crs, pq, dyn, colt.data(), pdw, /*accumulate=*/true);

        // Backward (data) pass: dX_n = col2im(W^T * dY_n).
        gemm(crs, pq, g.k, wt.data(), dyn, dcol.data(),
             /*accumulate=*/false);
        col2im(dcol.data(), g, pdx + in * chw);

        if (pdb) {
            for (int64_t ok = 0; ok < g.k; ++ok) {
                const float *row = dyn + ok * pq;
                float acc = 0.0f;
                for (int64_t j = 0; j < pq; ++j)
                    acc += row[j];
                pdb[ok] += acc;
            }
        }
    }
    return dx;
}

} // namespace kernels
} // namespace procrustes
