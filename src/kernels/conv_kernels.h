/**
 * @file
 * GEMM-lowered convolution executors (forward, data grad, weight grad).
 *
 * These implement the three convolutions of the paper's training loop
 * (Figure 2) on the im2col lowering:
 *
 *   forward:  Y_n[K, PQ]   = W[K, CRS]   * col(X_n)
 *   data bw:  dX_n         = col2im(W^T[CRS, K] * dY_n[K, PQ])
 *   weight:   dW[K, CRS]  += dY_n[K, PQ] * col(X_n)^T   (summed over n)
 *
 * Work is spread across the shared ThreadPool over the batch dimension
 * when the batch is wide enough to feed every thread (each task lowers
 * its own images with a private ScratchArena workspace), and over GEMM
 * row panels otherwise. Per-image dW/db partials are reduced in fixed
 * image order, so gradient accumulation order — and hence every output
 * bit — is identical for any thread count and either decomposition.
 */

#ifndef PROCRUSTES_KERNELS_CONV_KERNELS_H_
#define PROCRUSTES_KERNELS_CONV_KERNELS_H_

#include "kernels/im2col.h"
#include "tensor/tensor.h"

namespace procrustes {
namespace kernels {

/** Geometry from tensors: x is [N, C, H, W], w is [K, C, R, S]. */
ConvGeom convGeomFromTensors(const Tensor &x, const Shape &w_shape,
                             int64_t stride, int64_t pad);

/**
 * Forward convolution y = x * w (+ bias) via im2col + GEMM.
 *
 * @param x input activations [N, C, H, W].
 * @param w filters [K, C, R, S].
 * @param bias optional per-output-channel bias [K]; may be nullptr.
 * @param g geometry (from convGeomFromTensors).
 * @return output activations [N, K, P, Q].
 */
Tensor convForwardGemm(const Tensor &x, const Tensor &w,
                       const Tensor *bias, const ConvGeom &g);

/**
 * Backward convolution computing all three gradients in one pass.
 *
 * @param x forward input [N, C, H, W].
 * @param w filters [K, C, R, S].
 * @param dy output gradient [N, K, P, Q].
 * @param g geometry.
 * @param dw weight gradient [K, C, R, S]; ACCUMULATED into.
 * @param db optional bias gradient [K]; ACCUMULATED into; nullptr skips.
 * @return input gradient dx [N, C, H, W].
 */
Tensor convBackwardGemm(const Tensor &x, const Tensor &w, const Tensor &dy,
                        const ConvGeom &g, Tensor *dw, Tensor *db);

} // namespace kernels
} // namespace procrustes

#endif // PROCRUSTES_KERNELS_CONV_KERNELS_H_
