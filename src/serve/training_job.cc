#include "serve/training_job.h"

#include <algorithm>

#include "common/logging.h"

namespace procrustes {
namespace serve {

TrainingJob::TrainingJob(const JobConfig &cfg, const NetworkBuilder &build,
                         const OptimizerFactory &make_opt,
                         const nn::Dataset *train, const nn::Dataset *val)
    : cfg_(cfg), train_(train), val_(val)
{
    PROCRUSTES_ASSERT(train && val, "job datasets must be non-null");
    PROCRUSTES_ASSERT(cfg.epochs > 0 && cfg.batchSize > 0,
                      "job epochs and batch size must be positive");
    build(net_);
    opt_ = make_opt();
    PROCRUSTES_ASSERT(opt_ != nullptr, "optimizer factory returned null");
    params_ = net_.params();
}

bool
TrainingJob::step()
{
    PROCRUSTES_ASSERT(!finished(), "step() on a finished job");

    if (orderEpoch_ != cursor_.epoch) {
        order_ = nn::epochOrder(train_->size(), cfg_.shuffleSeed,
                                cursor_.epoch);
        orderEpoch_ = cursor_.epoch;
    }

    const int64_t start = cursor_.stepInEpoch * cfg_.batchSize;
    PROCRUSTES_ASSERT(start < train_->size(),
                      "training cursor past end of epoch");
    const int64_t end =
        std::min(start + cfg_.batchSize, train_->size());
    const int64_t n = end - start;
    std::vector<int64_t> idx(order_.begin() + start,
                             order_.begin() + end);
    const Tensor x = train_->batch(idx);
    const auto y = train_->batchLabels(idx);

    // The exact expression sequence of nn::trainNetwork — reduction
    // order and accumulator shapes are load-bearing for the bitwise
    // job == trainNetwork equivalence.
    net_.zeroGrad();
    const Tensor logits = net_.forward(x, /*training=*/true);
    const double batch_loss = loss_.forward(logits, y);
    cursor_.lossSum += batch_loss * static_cast<double>(n);
    cursor_.accSum += loss_.accuracy() * static_cast<double>(n);
    net_.backward(loss_.backward());
    opt_->step(params_);

    if (observer_ || stats_) {
        nn::StepTelemetry t;
        t.epoch = cursor_.epoch;
        t.step = cursor_.globalStep;
        t.batchSize = n;
        t.batchLoss = batch_loss;
        if (observer_) {
            // Telemetry reports cost O(activations); gather them only
            // for a full observer, not for the JSONL step line.
            for (size_t li = 0; li < net_.size(); ++li) {
                nn::LayerStepReport r;
                if (net_.layer(li)->stepReport(&r))
                    t.reports.push_back(std::move(r));
            }
            observer_(t);
        }
        if (stats_)
            stats_->writeStep(cfg_.name, t);
    }

    ++cursor_.globalStep;
    ++cursor_.stepInEpoch;
    cursor_.samples += n;

    if (end >= train_->size()) {
        closeEpoch();
        return true;
    }
    return false;
}

void
TrainingJob::closeEpoch()
{
    nn::EpochStats st;
    st.epoch = cursor_.epoch;
    st.trainLoss = cursor_.samples
                       ? cursor_.lossSum /
                             static_cast<double>(cursor_.samples)
                       : 0.0;
    st.trainAccuracy = cursor_.samples
                           ? cursor_.accSum /
                                 static_cast<double>(cursor_.samples)
                           : 0.0;
    st.valAccuracy = nn::evaluateAccuracy(net_, *val_);
    st.weightSparsity = nn::weightSparsity(net_);
    history_.push_back(st);
    if (stats_)
        stats_->writeEpoch(cfg_.name, st);

    ++cursor_.epoch;
    cursor_.stepInEpoch = 0;
    cursor_.lossSum = 0.0;
    cursor_.accSum = 0.0;
    cursor_.samples = 0;
}

void
TrainingJob::runEpoch()
{
    while (!step()) {
    }
}

void
TrainingJob::run()
{
    while (!finished())
        runEpoch();
}

std::vector<uint8_t>
TrainingJob::checkpoint()
{
    return snapshotTrainingState(net_, *opt_, cursor_);
}

void
TrainingJob::restore(const std::vector<uint8_t> &blob)
{
    cursor_ = restoreTrainingState(blob, net_, *opt_);
    // params() hands out fresh Param pointers only when layers change,
    // but restore replaced Tensor values, not Params — the cached
    // pointer list stays valid. The shuffle cache does not: force a
    // re-derive for the restored epoch.
    orderEpoch_ = -1;
    order_.clear();
}

void
TrainingJob::setObserver(const nn::StepObserver &observer)
{
    observer_ = observer;
}

} // namespace serve
} // namespace procrustes
