/**
 * @file
 * Fair-share scheduler multiplexing training jobs over the shared pool.
 *
 * The service grants each tenant epoch-granularity time slices: every
 * round, the unfinished jobs that have completed the fewest epochs run
 * one epoch each (ties broken by submission order), concurrently as
 * tasks on ThreadPool::global(). Nested parallelFor calls run inline
 * on the pool (common/thread_pool.h), so each job's kernels execute
 * single-threaded inside its task — job-level parallelism replaces
 * kernel-level parallelism, exactly the shard-engine trade. When a
 * round selects a single job it runs inline on the caller, keeping
 * kernel parallelism for the solo case.
 *
 * Fairness invariant: the epoch spread among unfinished jobs never
 * exceeds one, regardless of maxConcurrent or mixed job lengths.
 *
 * Determinism: jobs share no mutable state (datasets are read-only,
 * one network/optimizer per job, one StatsWriter per job), so each
 * job's trajectory is bitwise identical to running it alone at any
 * thread count.
 */

#ifndef PROCRUSTES_SERVE_JOB_SCHEDULER_H_
#define PROCRUSTES_SERVE_JOB_SCHEDULER_H_

#include <memory>
#include <vector>

#include "serve/training_job.h"

namespace procrustes {
namespace serve {

/** Scheduler configuration. */
struct SchedulerConfig
{
    /** Jobs run per round; 0 = every unfinished job. */
    int maxConcurrent = 0;
};

/** Round-based fair-share multiplexer for TrainingJobs. */
class JobScheduler
{
  public:
    explicit JobScheduler(const SchedulerConfig &cfg = {});

    /** Take ownership of a job; returns a stable handle to it. */
    TrainingJob *addJob(std::unique_ptr<TrainingJob> job);

    /**
     * Run one scheduling round: the least-advanced unfinished jobs
     * (at most maxConcurrent) each advance by one epoch. Returns the
     * number of jobs that ran (0 when all jobs are finished).
     */
    int runRound();

    /** Run rounds until every job is finished. */
    void runAll();

    bool allFinished() const;
    int64_t roundsExecuted() const { return rounds_; }
    size_t jobCount() const { return jobs_.size(); }
    TrainingJob *job(size_t i) { return jobs_.at(i).get(); }

  private:
    SchedulerConfig cfg_;
    std::vector<std::unique_ptr<TrainingJob>> jobs_;
    int64_t rounds_ = 0;
};

} // namespace serve
} // namespace procrustes

#endif // PROCRUSTES_SERVE_JOB_SCHEDULER_H_
