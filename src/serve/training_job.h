/**
 * @file
 * A resumable training job: the unit the multi-tenant service runs.
 *
 * TrainingJob owns a network replica, an optimizer, a pruning/update
 * schedule (whatever the optimizer implements), references to its
 * datasets, and a TrainCursor into the shuffled sample stream. It
 * advances one optimizer step at a time, with the step expression
 * sequence mirroring nn::trainNetwork exactly — same reduction order,
 * same sample-weighted accumulators — so a job trained to completion
 * is bitwise identical to a trainNetwork run with the same seeds, and
 * a job checkpointed at any step and restored into a fresh engine
 * continues bitwise-identically.
 *
 * Resume needs no stored permutation: epochOrder(n, seed, epoch) is a
 * pure function, so the cursor's (epoch, stepInEpoch) pair locates
 * the next batch mid-stream.
 */

#ifndef PROCRUSTES_SERVE_TRAINING_JOB_H_
#define PROCRUSTES_SERVE_TRAINING_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/trainer.h"
#include "serve/checkpoint.h"
#include "serve/stats_writer.h"

namespace procrustes {
namespace serve {

/** Builds a job's network (must be deterministic). */
using NetworkBuilder = std::function<void(nn::Network &)>;

/** Creates a job's optimizer (must be deterministic). */
using OptimizerFactory = std::function<std::unique_ptr<nn::Optimizer>()>;

/** Per-job training configuration (mirrors nn::TrainConfig). */
struct JobConfig
{
    std::string name = "job";
    int64_t epochs = 10;
    int64_t batchSize = 16;
    uint64_t shuffleSeed = 7;
};

/**
 * One tenant's training run. Not thread-safe: the scheduler ensures a
 * job is driven by at most one thread at a time.
 */
class TrainingJob
{
  public:
    /**
     * `train` and `val` are borrowed and must outlive the job; jobs
     * may share datasets (Dataset access is read-only).
     */
    TrainingJob(const JobConfig &cfg, const NetworkBuilder &build,
                const OptimizerFactory &make_opt,
                const nn::Dataset *train, const nn::Dataset *val);

    /**
     * Run one optimizer step. Returns true when the step closed an
     * epoch (validation ran and an EpochStats was appended). Must not
     * be called on a finished job.
     */
    bool step();

    /** Run steps until the current epoch closes. */
    void runEpoch();

    /** Run to completion. */
    void run();

    bool finished() const { return cursor_.epoch >= cfg_.epochs; }
    int64_t epochsCompleted() const { return cursor_.epoch; }
    int64_t globalStep() const { return cursor_.globalStep; }
    const JobConfig &config() const { return cfg_; }
    const std::vector<nn::EpochStats> &history() const { return history_; }
    nn::Network &network() { return net_; }
    nn::Optimizer &optimizer() { return *opt_; }

    /** Snapshot the full training state (serve/checkpoint.h format). */
    std::vector<uint8_t> checkpoint();

    /**
     * Restore a snapshot taken from a job with the same builder and
     * optimizer factory. Epoch history before the restored cursor is
     * not part of the snapshot — the resumed job's history() covers
     * epochs closed after the restore point only.
     */
    void restore(const std::vector<uint8_t> &blob);

    /** Per-step telemetry hook (same contract as trainNetwork's). */
    void setObserver(const nn::StepObserver &observer);

    /** Attach a JSONL sink (borrowed, may be null to detach). */
    void setStatsWriter(StatsWriter *stats) { stats_ = stats; }

  private:
    void closeEpoch();

    JobConfig cfg_;
    nn::Network net_;
    std::unique_ptr<nn::Optimizer> opt_;
    const nn::Dataset *train_;
    const nn::Dataset *val_;
    nn::SoftmaxCrossEntropy loss_;
    std::vector<nn::Param *> params_;
    TrainCursor cursor_;
    std::vector<nn::EpochStats> history_;
    nn::StepObserver observer_;
    StatsWriter *stats_ = nullptr;
    /** Cached epochOrder for orderEpoch_; rebuilt lazily on demand. */
    std::vector<int64_t> order_;
    int64_t orderEpoch_ = -1;
};

} // namespace serve
} // namespace procrustes

#endif // PROCRUSTES_SERVE_TRAINING_JOB_H_
