#include "serve/job_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace procrustes {
namespace serve {

JobScheduler::JobScheduler(const SchedulerConfig &cfg) : cfg_(cfg)
{
    PROCRUSTES_ASSERT(cfg.maxConcurrent >= 0,
                      "maxConcurrent must be non-negative");
}

TrainingJob *
JobScheduler::addJob(std::unique_ptr<TrainingJob> job)
{
    PROCRUSTES_ASSERT(job != nullptr, "cannot add a null job");
    jobs_.push_back(std::move(job));
    return jobs_.back().get();
}

bool
JobScheduler::allFinished() const
{
    for (const auto &j : jobs_) {
        if (!j->finished())
            return false;
    }
    return true;
}

int
JobScheduler::runRound()
{
    // Least-advanced first, submission order breaking ties: a stable
    // sort on epochsCompleted gives every unfinished job a turn before
    // any job gets a second one, which is what bounds the epoch
    // spread at one.
    std::vector<TrainingJob *> ready;
    for (const auto &j : jobs_) {
        if (!j->finished())
            ready.push_back(j.get());
    }
    if (ready.empty())
        return 0;
    std::stable_sort(ready.begin(), ready.end(),
                     [](const TrainingJob *a, const TrainingJob *b) {
                         return a->epochsCompleted() <
                                b->epochsCompleted();
                     });
    if (cfg_.maxConcurrent > 0 &&
        static_cast<size_t>(cfg_.maxConcurrent) < ready.size()) {
        ready.resize(static_cast<size_t>(cfg_.maxConcurrent));
    }

    const auto n = static_cast<int64_t>(ready.size());
    if (n == 1) {
        // Stay off the pool so nested kernels keep their parallelism.
        ready[0]->runEpoch();
    } else {
        ThreadPool::global().parallelFor(
            0, n,
            [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i)
                    ready[static_cast<size_t>(i)]->runEpoch();
            },
            /*grain=*/1);
    }
    ++rounds_;
    return static_cast<int>(n);
}

void
JobScheduler::runAll()
{
    while (runRound() > 0) {
    }
}

} // namespace serve
} // namespace procrustes
