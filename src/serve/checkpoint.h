/**
 * @file
 * Versioned bitwise training-state snapshots.
 *
 * The multi-tenant training service promises that a job checkpointed
 * at any optimizer step and resumed in a fresh engine continues
 * *bitwise identically* to the uninterrupted run. That requires
 * capturing every piece of trajectory state, not just the weights:
 *
 *  - parameter values (gradients are not state — checkpoints are
 *    taken between steps, where grads are about to be zeroed),
 *  - layer state outside params() (batch-norm running statistics,
 *    via Layer::serializeState),
 *  - optimizer state (step counter, momentum velocity, pruning masks
 *    and schedule counters, via Optimizer::serializeState),
 *  - the training cursor: (epoch, step-in-epoch) — sufficient to
 *    resume mid-stream because epochOrder() is a pure function of
 *    (size, seed, epoch) — plus the running epoch accumulators so a
 *    mid-epoch resume reproduces the epoch's EpochStats exactly.
 *
 * The format is a little-endian byte image (common/serialize.h) with
 * a magic + version header; restore validates the target network
 * (layer count/names, parameter names/shapes/prunability) and the
 * optimizer kind, and FATALs — a user-facing corrupt/mismatched
 * snapshot error, not a programming bug — on any disagreement.
 */

#ifndef PROCRUSTES_SERVE_CHECKPOINT_H_
#define PROCRUSTES_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.h"
#include "nn/sgd.h"

namespace procrustes {
namespace serve {

/** 'PCKP' — Procrustes checkpoint. */
constexpr uint32_t kCheckpointMagic = 0x50434b50u;

/** Bump on any layout change; restore rejects other versions. */
constexpr uint32_t kCheckpointVersion = 1;

/**
 * Where a training run is in its sample stream, plus the running
 * accumulators of the open epoch. `stepInEpoch` counts completed
 * optimizer steps within `epoch`; the next batch starts at sample
 * offset stepInEpoch * batchSize of epochOrder(n, seed, epoch).
 */
struct TrainCursor
{
    int64_t epoch = 0;
    int64_t stepInEpoch = 0;
    int64_t globalStep = 0;
    /** @name Open-epoch accumulators (trainer.cc expression state). */
    /**@{*/
    double lossSum = 0.0;
    double accSum = 0.0;
    int64_t samples = 0;
    /**@}*/
};

/**
 * Serialize the full training state of (net, opt) at `cursor` into a
 * self-describing binary snapshot. WARNs (once per call) when the
 * optimizer has not opted into the checkpoint contract
 * (Optimizer::checkpointComplete() == false) — the snapshot then
 * restores its step counter only.
 */
std::vector<uint8_t> snapshotTrainingState(nn::Network &net,
                                           const nn::Optimizer &opt,
                                           const TrainCursor &cursor);

/**
 * Restore a snapshot into a freshly built (net, opt) of the same
 * architecture and optimizer kind, returning the training cursor.
 * FATALs on corrupt payloads or architecture/optimizer mismatch.
 */
TrainCursor restoreTrainingState(const std::vector<uint8_t> &blob,
                                 nn::Network &net, nn::Optimizer &opt);

/** Write a snapshot to a file; FATALs if the file cannot be written. */
void saveCheckpointFile(const std::string &path,
                        const std::vector<uint8_t> &blob);

/** Read a snapshot back; FATALs if the file cannot be read. */
std::vector<uint8_t> loadCheckpointFile(const std::string &path);

} // namespace serve
} // namespace procrustes

#endif // PROCRUSTES_SERVE_CHECKPOINT_H_
