#include "serve/checkpoint.h"

#include <cstdio>

#include "common/serialize.h"

namespace procrustes {
namespace serve {

namespace {

void
writeCursor(ByteWriter &w, const TrainCursor &c)
{
    w.writeI64(c.epoch);
    w.writeI64(c.stepInEpoch);
    w.writeI64(c.globalStep);
    w.writeF64(c.lossSum);
    w.writeF64(c.accSum);
    w.writeI64(c.samples);
}

TrainCursor
readCursor(ByteReader &r)
{
    TrainCursor c;
    c.epoch = r.readI64();
    c.stepInEpoch = r.readI64();
    c.globalStep = r.readI64();
    c.lossSum = r.readF64();
    c.accSum = r.readF64();
    c.samples = r.readI64();
    return c;
}

/** Skip `n` payload bytes of `r` (already validated to fit). */
void
skipBytes(ByteReader &r, uint32_t n)
{
    std::vector<uint8_t> sink(n);
    if (n)
        r.readBytes(sink.data(), n);
}

} // namespace

std::vector<uint8_t>
snapshotTrainingState(nn::Network &net, const nn::Optimizer &opt,
                      const TrainCursor &cursor)
{
    if (!opt.checkpointComplete()) {
        WARN(std::string("checkpointing optimizer kind '") +
             opt.stateKind() +
             "' which has not opted into the checkpoint contract; "
             "only its step counter will be restored");
    }

    ByteWriter w;
    w.writeU32(kCheckpointMagic);
    w.writeU32(kCheckpointVersion);
    writeCursor(w, cursor);

    const auto params = net.params();
    w.writeU32(static_cast<uint32_t>(params.size()));
    for (const nn::Param *p : params) {
        w.writeString(p->name);
        w.writeU8(p->prunable ? 1 : 0);
        w.writeTensor(p->value);
    }

    // Layer payloads are length-prefixed so restore can verify each
    // layer consumed exactly what its twin wrote — a mismatch there
    // means the architectures differ in ways the name check missed.
    w.writeU32(static_cast<uint32_t>(net.size()));
    for (size_t li = 0; li < net.size(); ++li) {
        const nn::Layer *layer = net.layer(li);
        w.writeString(layer->name());
        ByteWriter lw;
        layer->serializeState(lw);
        w.writeU32(static_cast<uint32_t>(lw.size()));
        w.writeBytes(lw.bytes().data(), lw.size());
    }

    w.writeString(opt.stateKind());
    ByteWriter ow;
    opt.serializeState(ow);
    w.writeU32(static_cast<uint32_t>(ow.size()));
    w.writeBytes(ow.bytes().data(), ow.size());

    return w.bytes();
}

TrainCursor
restoreTrainingState(const std::vector<uint8_t> &blob, nn::Network &net,
                     nn::Optimizer &opt)
{
    ByteReader r(blob);
    if (r.readU32() != kCheckpointMagic)
        FATAL("not a checkpoint: bad magic");
    const uint32_t version = r.readU32();
    if (version != kCheckpointVersion) {
        FATAL("unsupported checkpoint version " +
              std::to_string(version) + " (expected " +
              std::to_string(kCheckpointVersion) + ")");
    }
    const TrainCursor cursor = readCursor(r);

    const auto params = net.params();
    const uint32_t param_count = r.readU32();
    if (param_count != params.size()) {
        FATAL("checkpoint/network mismatch: " +
              std::to_string(param_count) + " parameters in snapshot, " +
              std::to_string(params.size()) + " in network");
    }
    for (nn::Param *p : params) {
        const std::string name = r.readString();
        if (name != p->name) {
            FATAL("checkpoint/network mismatch: parameter '" + name +
                  "' in snapshot, '" + p->name + "' in network");
        }
        const bool prunable = r.readU8() != 0;
        if (prunable != p->prunable) {
            FATAL("checkpoint/network mismatch: prunability differs "
                  "for parameter '" +
                  name + "'");
        }
        Tensor value = r.readTensor();
        if (!(value.shape() == p->value.shape())) {
            FATAL("checkpoint/network mismatch: shape differs for "
                  "parameter '" +
                  name + "'");
        }
        p->value = std::move(value);
    }

    const uint32_t layer_count = r.readU32();
    if (layer_count != net.size()) {
        FATAL("checkpoint/network mismatch: " +
              std::to_string(layer_count) + " layers in snapshot, " +
              std::to_string(net.size()) + " in network");
    }
    for (size_t li = 0; li < net.size(); ++li) {
        nn::Layer *layer = net.layer(li);
        const std::string name = r.readString();
        if (name != layer->name()) {
            FATAL("checkpoint/network mismatch: layer '" + name +
                  "' in snapshot, '" + layer->name() + "' in network");
        }
        const uint32_t payload = r.readU32();
        if (payload > r.remaining())
            FATAL("checkpoint truncated: layer payload overruns blob");
        ByteReader lr(blob.data() + r.offset(), payload);
        layer->restoreState(lr);
        if (!lr.atEnd()) {
            FATAL("checkpoint corrupt: layer '" + name + "' left " +
                  std::to_string(lr.remaining()) +
                  " unread state bytes");
        }
        skipBytes(r, payload);
    }

    const std::string kind = r.readString();
    if (kind != opt.stateKind()) {
        FATAL("checkpoint/optimizer mismatch: snapshot holds '" + kind +
              "' state, optimizer is '" + opt.stateKind() + "'");
    }
    const uint32_t opt_payload = r.readU32();
    if (opt_payload > r.remaining())
        FATAL("checkpoint truncated: optimizer payload overruns blob");
    ByteReader orr(blob.data() + r.offset(), opt_payload);
    opt.restoreState(orr);
    if (!orr.atEnd())
        FATAL("checkpoint corrupt: optimizer left unread state bytes");
    skipBytes(r, opt_payload);

    if (!r.atEnd())
        FATAL("checkpoint corrupt: trailing bytes after snapshot");
    return cursor;
}

void
saveCheckpointFile(const std::string &path,
                   const std::vector<uint8_t> &blob)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        FATAL("cannot write checkpoint file '" + path + "'");
    if (!blob.empty() &&
        std::fwrite(blob.data(), 1, blob.size(), f) != blob.size()) {
        std::fclose(f);
        FATAL("short write to checkpoint file '" + path + "'");
    }
    std::fclose(f);
}

std::vector<uint8_t>
loadCheckpointFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        FATAL("cannot read checkpoint file '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> blob(static_cast<size_t>(size > 0 ? size : 0));
    if (!blob.empty() &&
        std::fread(blob.data(), 1, blob.size(), f) != blob.size()) {
        std::fclose(f);
        FATAL("short read from checkpoint file '" + path + "'");
    }
    std::fclose(f);
    return blob;
}

} // namespace serve
} // namespace procrustes
