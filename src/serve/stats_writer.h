/**
 * @file
 * Streaming per-job training statistics as JSON Lines.
 *
 * Each TrainingJob gets its own StatsWriter (one file per job, so no
 * locking is needed — the scheduler never runs one job on two threads
 * at once). Records are appended and flushed as they happen, so an
 * interrupted run leaves a readable prefix; floats are printed with
 * %.17g so a consumer that round-trips them recovers the exact
 * double, matching the bitwise-determinism bar of the bench JSON.
 */

#ifndef PROCRUSTES_SERVE_STATS_WRITER_H_
#define PROCRUSTES_SERVE_STATS_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "nn/trainer.h"

namespace procrustes {
namespace serve {

/** Append-only JSONL sink for one job's step/epoch telemetry. */
class StatsWriter
{
  public:
    /** Open (truncate) `path`; FATALs if it cannot be created. */
    explicit StatsWriter(const std::string &path);
    ~StatsWriter();

    StatsWriter(const StatsWriter &) = delete;
    StatsWriter &operator=(const StatsWriter &) = delete;

    /** One line per optimizer step: kind, job, epoch, step, loss. */
    void writeStep(const std::string &job, const nn::StepTelemetry &t);

    /** One line per closed epoch: the EpochStats summary. */
    void writeEpoch(const std::string &job, const nn::EpochStats &st);

    int64_t linesWritten() const { return lines_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    FILE *file_ = nullptr;
    int64_t lines_ = 0;
};

} // namespace serve
} // namespace procrustes

#endif // PROCRUSTES_SERVE_STATS_WRITER_H_
