#include "serve/stats_writer.h"

#include "common/logging.h"

namespace procrustes {
namespace serve {

StatsWriter::StatsWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "w");
    if (!file_)
        FATAL("cannot open stats file '" + path + "'");
}

StatsWriter::~StatsWriter()
{
    if (file_)
        std::fclose(file_);
}

void
StatsWriter::writeStep(const std::string &job, const nn::StepTelemetry &t)
{
    std::fprintf(file_,
                 "{\"kind\": \"step\", \"job\": \"%s\", \"epoch\": %lld, "
                 "\"step\": %lld, \"batch\": %lld, \"loss\": %.17g}\n",
                 job.c_str(), static_cast<long long>(t.epoch),
                 static_cast<long long>(t.step),
                 static_cast<long long>(t.batchSize), t.batchLoss);
    std::fflush(file_);
    ++lines_;
}

void
StatsWriter::writeEpoch(const std::string &job, const nn::EpochStats &st)
{
    std::fprintf(file_,
                 "{\"kind\": \"epoch\", \"job\": \"%s\", \"epoch\": %lld, "
                 "\"train_loss\": %.17g, \"train_accuracy\": %.17g, "
                 "\"val_accuracy\": %.17g, \"weight_sparsity\": %.17g}\n",
                 job.c_str(), static_cast<long long>(st.epoch),
                 st.trainLoss, st.trainAccuracy, st.valAccuracy,
                 st.weightSparsity);
    std::fflush(file_);
    ++lines_;
}

} // namespace serve
} // namespace procrustes
