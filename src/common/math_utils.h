/**
 * @file
 * Small numeric helpers shared across the library.
 */

#ifndef PROCRUSTES_COMMON_MATH_UTILS_H_
#define PROCRUSTES_COMMON_MATH_UTILS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace procrustes {

/** Ceiling division for non-negative integers. */
constexpr int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Round a up to the next multiple of b. */
constexpr int64_t
roundUp(int64_t a, int64_t b)
{
    return ceilDiv(a, b) * b;
}

/** Arithmetic mean of a sample; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Population standard deviation of a sample; 0 for size < 2. */
double stddev(const std::vector<double> &xs);

/**
 * Exact empirical quantile via nth_element (copies the input).
 * q in [0, 1]; q = 0 is the minimum, q = 1 the maximum.
 */
double exactQuantile(std::vector<double> xs, double q);

/** Clamp helper mirroring std::clamp with deduced double args. */
inline double
clampd(double x, double lo, double hi)
{
    return std::min(std::max(x, lo), hi);
}

} // namespace procrustes

#endif // PROCRUSTES_COMMON_MATH_UTILS_H_
