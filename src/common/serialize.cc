#include "common/serialize.h"

namespace procrustes {

void
ByteWriter::writeTensor(const Tensor &t)
{
    const Shape &s = t.shape();
    writeU32(static_cast<uint32_t>(s.rank()));
    for (int i = 0; i < s.rank(); ++i)
        writeI64(s[i]);
    writeI64(t.numel());
    writeBytes(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
}

Tensor
ByteReader::readTensor()
{
    const uint32_t rank = readU32();
    if (rank > static_cast<uint32_t>(Shape::kMaxRank))
        FATAL("checkpoint corrupt: tensor rank out of range");
    std::vector<int64_t> dims;
    dims.reserve(rank);
    for (uint32_t i = 0; i < rank; ++i)
        dims.push_back(readI64());
    const int64_t numel = readI64();
    Tensor t(rank ? Shape(dims) : Shape{});
    if (t.numel() != numel)
        FATAL("checkpoint corrupt: tensor payload size mismatch");
    readBytes(t.data(), static_cast<size_t>(numel) * sizeof(float));
    return t;
}

} // namespace procrustes
