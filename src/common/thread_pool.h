/**
 * @file
 * Persistent worker-thread pool with a parallelFor helper.
 *
 * The functional model runs orders of magnitude more MACs than the
 * hardware model, so the software kernels (src/kernels/) parallelize
 * over independent output partitions — row panels of a GEMM, output
 * channels of a sparse convolution. The pool is deliberately simple:
 * one job at a time, chunked work distribution via an atomic cursor,
 * and the submitting thread participates in execution. Because every
 * chunk writes a disjoint output range and iterates in a fixed order,
 * results are bitwise deterministic regardless of how chunks land on
 * threads.
 */

#ifndef PROCRUSTES_COMMON_THREAD_POOL_H_
#define PROCRUSTES_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace procrustes {

/** Fixed-size pool of persistent worker threads. */
class ThreadPool
{
  public:
    /**
     * Create a pool.
     *
     * @param num_threads total worker count including the submitting
     *        thread; 0 selects PROCRUSTES_NUM_THREADS from the
     *        environment, else std::thread::hardware_concurrency().
     */
    explicit ThreadPool(int num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads that execute chunks (workers + submitter). */
    int numThreads() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Run body(chunk_begin, chunk_end) over disjoint chunks covering
     * [begin, end). Blocks until every chunk has finished. Chunk sizes
     * are always a multiple of `grain` (callers pass their tile size so
     * boundaries never split a tile and the decomposition is identical
     * for every thread count). A nested call from inside a pool task,
     * or a submission racing another thread's submission, runs inline
     * (serially) instead of deadlocking or aborting.
     */
    void parallelFor(int64_t begin, int64_t end,
                     const std::function<void(int64_t, int64_t)> &body,
                     int64_t grain = 1);

    /** Process-wide shared pool, created on first use. */
    static ThreadPool &global();

    /**
     * Replace the process-wide pool with one of `num_threads` threads
     * (0 re-resolves PROCRUSTES_NUM_THREADS / hardware concurrency).
     * For thread-count sweeps in tests and benchmarks: the caller must
     * guarantee no kernel is mid-flight on the old pool, because any
     * reference previously obtained from global() is invalidated.
     */
    static void resetGlobal(int num_threads);

  private:
    /** One in-flight parallelFor: chunk cursor plus completion count. */
    struct Job
    {
        const std::function<void(int64_t, int64_t)> *body = nullptr;
        int64_t end = 0;
        int64_t chunk = 1;
        std::atomic<int64_t> next{0};
        std::atomic<int64_t> remaining{0};   //!< elements not yet done
    };

    void workerLoop();

    /** Claim and run chunks until the job's cursor is exhausted. */
    void runChunks(Job &job);

    std::vector<std::thread> workers_;
    std::mutex submitMu_;              //!< serializes submitters
    std::mutex mu_;
    std::condition_variable workCv_;   //!< wakes workers on a new job
    std::condition_variable doneCv_;   //!< wakes the submitter
    std::shared_ptr<Job> job_;         //!< current job, guarded by mu_
    uint64_t generation_ = 0;          //!< bumped per job, guarded by mu_
    bool stop_ = false;
};

} // namespace procrustes

#endif // PROCRUSTES_COMMON_THREAD_POOL_H_
