/**
 * @file
 * Bitwise-exact binary serialization primitives.
 *
 * The job service's checkpoint/resume contract is *bitwise* equality:
 * a training run restored from a snapshot must continue exactly as the
 * uninterrupted run would have. Text formats cannot guarantee that
 * (float -> decimal -> float round trips are easy to get subtly
 * wrong), so all training state travels as raw little-endian byte
 * images of the in-memory values: float and double payloads are
 * memcpy'd bit patterns, never printf'd. ByteWriter appends to a
 * growable buffer; ByteReader walks it back and treats any underrun
 * or trailing garbage as a corrupted snapshot (fatal, user-facing).
 */

#ifndef PROCRUSTES_COMMON_SERIALIZE_H_
#define PROCRUSTES_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace procrustes {

/** Append-only binary encoder for checkpoint payloads. */
class ByteWriter
{
  public:
    void
    writeBytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    void writeU8(uint8_t v) { writeBytes(&v, sizeof(v)); }
    void writeU32(uint32_t v) { writeBytes(&v, sizeof(v)); }
    void writeU64(uint64_t v) { writeBytes(&v, sizeof(v)); }
    void writeI64(int64_t v) { writeBytes(&v, sizeof(v)); }

    /** Raw bit image — exact for every value including -0.0 / NaN. */
    void writeF64(double v) { writeBytes(&v, sizeof(v)); }
    void writeF32(float v) { writeBytes(&v, sizeof(v)); }

    /** Length-prefixed UTF-8 string. */
    void
    writeString(const std::string &s)
    {
        writeU32(static_cast<uint32_t>(s.size()));
        writeBytes(s.data(), s.size());
    }

    /** Length-prefixed raw fp32 array (bit images). */
    void
    writeFloatArray(const float *v, int64_t n)
    {
        writeI64(n);
        writeBytes(v, static_cast<size_t>(n) * sizeof(float));
    }

    /** Shape (rank + extents) followed by the raw fp32 payload. */
    void writeTensor(const Tensor &t);

    const std::vector<uint8_t> &bytes() const { return buf_; }
    size_t size() const { return buf_.size(); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Sequential decoder over a checkpoint payload. Reading past the end
 * is a corrupted-snapshot condition and FATALs; callers that embed
 * sub-payloads should check offset() against the recorded length.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    explicit ByteReader(const std::vector<uint8_t> &buf)
        : ByteReader(buf.data(), buf.size())
    {}

    void
    readBytes(void *out, size_t n)
    {
        if (off_ + n > size_)
            FATAL("checkpoint truncated: read past end of snapshot");
        std::memcpy(out, data_ + off_, n);
        off_ += n;
    }

    uint8_t readU8() { return readScalar<uint8_t>(); }
    uint32_t readU32() { return readScalar<uint32_t>(); }
    uint64_t readU64() { return readScalar<uint64_t>(); }
    int64_t readI64() { return readScalar<int64_t>(); }
    double readF64() { return readScalar<double>(); }
    float readF32() { return readScalar<float>(); }

    std::string
    readString()
    {
        const uint32_t n = readU32();
        std::string s(n, '\0');
        readBytes(s.data(), n);
        return s;
    }

    /** Counterpart of ByteWriter::writeFloatArray. */
    std::vector<float>
    readFloatArray()
    {
        const int64_t n = readI64();
        if (n < 0)
            FATAL("checkpoint corrupt: negative array length");
        std::vector<float> v(static_cast<size_t>(n));
        readBytes(v.data(), v.size() * sizeof(float));
        return v;
    }

    /** Counterpart of ByteWriter::writeTensor. */
    Tensor readTensor();

    size_t offset() const { return off_; }
    size_t remaining() const { return size_ - off_; }
    bool atEnd() const { return off_ == size_; }

  private:
    template <typename T>
    T
    readScalar()
    {
        T v;
        readBytes(&v, sizeof(v));
        return v;
    }

    const uint8_t *data_;
    size_t size_;
    size_t off_ = 0;
};

} // namespace procrustes

#endif // PROCRUSTES_COMMON_SERIALIZE_H_
