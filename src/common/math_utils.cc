#include "common/math_utils.h"

#include <cstddef>

#include "common/logging.h"

namespace procrustes {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
exactQuantile(std::vector<double> xs, double q)
{
    PROCRUSTES_ASSERT(!xs.empty(), "quantile of empty sample");
    PROCRUSTES_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    const auto n = xs.size();
    const auto idx = static_cast<size_t>(
        clampd(q * static_cast<double>(n - 1), 0.0,
               static_cast<double>(n - 1)));
    std::nth_element(xs.begin(), xs.begin() + static_cast<long>(idx),
                     xs.end());
    return xs[idx];
}

} // namespace procrustes
