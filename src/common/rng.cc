#include "common/rng.h"

#include <cmath>

namespace procrustes {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Xorshift128Plus::Xorshift128Plus(uint64_t seed)
{
    s0_ = splitmix64(seed);
    s1_ = splitmix64(s0_);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 0x9e3779b97f4a7c15ULL;
}

uint64_t
Xorshift128Plus::next()
{
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

double
Xorshift128Plus::nextDouble()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Xorshift128Plus::nextBounded(uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Xorshift128Plus::nextGaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u;
    double v;
    double s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
}

uint32_t
statelessUniform32(uint64_t seed, uint64_t index, uint32_t lane)
{
    // Mix (seed, index, lane) into a xorshift state, then clock the
    // generator a fixed number of steps, mirroring the hardware WR
    // unit: identical inputs always reproduce identical bits.
    const uint64_t mixed =
        splitmix64(seed ^ splitmix64(index ^ (uint64_t{lane} << 32)));
    Xorshift32 gen(static_cast<uint32_t>(mixed ^ (mixed >> 32)));
    gen.next();
    gen.next();
    return gen.next();
}

int64_t
statelessGaussianSum3(uint64_t seed, uint64_t index)
{
    int64_t sum = 0;
    for (uint32_t lane = 0; lane < 3; ++lane) {
        const uint32_t bits = statelessUniform32(seed, index, lane);
        // Centre each uniform draw at zero before summing.
        sum += static_cast<int64_t>(static_cast<int32_t>(bits));
    }
    return sum;
}

} // namespace procrustes
