/**
 * @file
 * Xorshift pseudo-random number generators (Marsaglia, 2003).
 *
 * Procrustes' per-PE Weight-Recompute (WR) unit is built from three
 * xorshift generators whose outputs are summed to produce an
 * approximately Gaussian value (Section V of the paper). Unlike a
 * conventional RNG, the WR unit holds no hidden state: its output is a
 * pure function of (seed, weight index). The stateless helpers below
 * provide exactly that contract; the stateful Xorshift32 /
 * Xorshift128Plus classes serve general simulation needs.
 */

#ifndef PROCRUSTES_COMMON_RNG_H_
#define PROCRUSTES_COMMON_RNG_H_

#include <cstdint>

namespace procrustes {

/**
 * The classic 32-bit xorshift generator (Marsaglia 2003, "Xorshift
 * RNGs"), period 2^32 - 1. State must never be zero.
 */
class Xorshift32
{
  public:
    /** Construct from a nonzero seed; zero is remapped to a constant. */
    explicit Xorshift32(uint32_t seed = 0x9e3779b9u)
        : state_(seed ? seed : 0x9e3779b9u)
    {}

    /** Advance the generator and return the next 32-bit value. */
    uint32_t
    next()
    {
        uint32_t x = state_;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        state_ = x;
        return x;
    }

    /** Current internal state (useful for checkpointing tests). */
    uint32_t state() const { return state_; }

  private:
    uint32_t state_;
};

/**
 * xorshift128+ generator: fast, 64-bit output, good statistical quality
 * for simulation workloads (not cryptographic).
 */
class Xorshift128Plus
{
  public:
    /** Seed both lanes via splitmix64 so any 64-bit seed is usable. */
    explicit Xorshift128Plus(uint64_t seed = 0x853c49e6748fea9bULL);

    /** Advance and return the next 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [0, 1). */
    float nextFloat() { return static_cast<float>(nextDouble()); }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Standard normal variate (Box-Muller; consumes two outputs). */
    double nextGaussian();

  private:
    uint64_t s0_;
    uint64_t s1_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * splitmix64 finalizer: used to derive well-mixed per-index states from
 * (seed, index) pairs. This is the statelessness backbone of the WR
 * unit model.
 */
uint64_t splitmix64(uint64_t x);

/**
 * Stateless uniform 32-bit draw, a pure function of (seed, index, lane).
 *
 * Models one of the WR unit's xorshift generators: the hardware seeds a
 * xorshift from a mix of the layer seed and the weight index and clocks
 * it a fixed number of times, so the same (seed, index) always yields
 * the same bits.
 */
uint32_t statelessUniform32(uint64_t seed, uint64_t index, uint32_t lane);

/**
 * Sum of three stateless xorshift outputs, centred at zero.
 *
 * By the central limit theorem the sum of three independent uniforms is
 * approximately Gaussian (an Irwin-Hall(3) distribution); this is the
 * distribution the WR unit produces before integer scaling. The result
 * is returned as a signed 64-bit integer in
 * (-3 * 2^31, +3 * 2^31).
 */
int64_t statelessGaussianSum3(uint64_t seed, uint64_t index);

} // namespace procrustes

#endif // PROCRUSTES_COMMON_RNG_H_
