#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace procrustes {

namespace {

/** True while the current thread is executing a pool chunk. */
thread_local bool t_inside_pool = false;

int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PROCRUSTES_NUM_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
        WARN(std::string("ignoring bad PROCRUSTES_NUM_THREADS='") + env +
             "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    const int total = resolveThreadCount(num_threads);
    workers_.reserve(static_cast<size_t>(total - 1));
    for (int i = 0; i < total - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;   // keeps the job alive past the wait
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [&] {
                return stop_ || (job_ != nullptr && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        runChunks(*job);
    }
}

void
ThreadPool::runChunks(Job &job)
{
    t_inside_pool = true;
    for (;;) {
        const int64_t b = job.next.fetch_add(job.chunk,
                                             std::memory_order_relaxed);
        if (b >= job.end)
            break;
        const int64_t e = std::min(job.end, b + job.chunk);
        (*job.body)(b, e);
        if (job.remaining.fetch_sub(e - b, std::memory_order_acq_rel) ==
            e - b) {
            // Last elements retired: wake the submitting thread.
            std::lock_guard<std::mutex> lock(mu_);
            doneCv_.notify_all();
        }
    }
    t_inside_pool = false;
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)> &body,
                        int64_t grain)
{
    if (end <= begin)
        return;
    const int64_t n = end - begin;
    grain = std::max<int64_t>(1, grain);
    // Serial fast paths: tiny ranges, no workers, or a nested call from
    // inside a chunk (the outer job's threads are all busy here).
    if (workers_.empty() || n <= grain || t_inside_pool) {
        body(begin, end);
        return;
    }

    // One job at a time: a second submitter (another application
    // thread sharing this pool) degrades to inline serial execution
    // rather than aborting or deadlocking.
    std::unique_lock<std::mutex> submit(submitMu_, std::try_to_lock);
    if (!submit.owns_lock()) {
        body(begin, end);
        return;
    }

    auto job = std::make_shared<Job>();
    job->body = &body;
    job->end = end;
    // ~4 chunks per thread for load balance without cursor contention,
    // rounded up to a grain multiple: callers pass their tile size as
    // the grain, so chunk boundaries never split a tile and the work
    // decomposition — hence the fp reduction pattern — is identical
    // for every thread count.
    int64_t chunk = std::max(
        grain, (n + numThreads() * 4 - 1) / (numThreads() * 4));
    chunk = (chunk + grain - 1) / grain * grain;
    job->chunk = chunk;
    job->next.store(begin, std::memory_order_relaxed);
    job->remaining.store(n, std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lock(mu_);
        PROCRUSTES_ASSERT(job_ == nullptr,
                          "concurrent parallelFor submissions");
        job_ = job;
        ++generation_;
    }
    workCv_.notify_all();

    runChunks(*job);

    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [&] {
        return job->remaining.load(std::memory_order_acquire) == 0;
    });
    job_.reset();
    // `body` may dangle once we return, but late-waking workers only see
    // an exhausted cursor through their own shared_ptr and never call it.
}

namespace {

/** Slot + guard for the replaceable process-wide pool. The published
 *  pointer makes the steady-state global() lookup a single atomic
 *  load; the mutex only serializes creation and resetGlobal. */
std::mutex &
globalPoolMutex()
{
    static std::mutex mu;
    return mu;
}

std::unique_ptr<ThreadPool> &
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

std::atomic<ThreadPool *> &
globalPoolCache()
{
    static std::atomic<ThreadPool *> cache{nullptr};
    return cache;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    if (ThreadPool *pool =
            globalPoolCache().load(std::memory_order_acquire))
        return *pool;
    std::lock_guard<std::mutex> lock(globalPoolMutex());
    std::unique_ptr<ThreadPool> &slot = globalPoolSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(0);
    globalPoolCache().store(slot.get(), std::memory_order_release);
    return *slot;
}

void
ThreadPool::resetGlobal(int num_threads)
{
    std::lock_guard<std::mutex> lock(globalPoolMutex());
    // Unpublish, then destroy the old pool so its workers exit before
    // the new ones spin up (keeps peak thread count bounded during
    // sweeps). Callers guarantee no work is in flight across a reset.
    globalPoolCache().store(nullptr, std::memory_order_release);
    globalPoolSlot().reset();
    globalPoolSlot() = std::make_unique<ThreadPool>(num_threads);
    globalPoolCache().store(globalPoolSlot().get(),
                            std::memory_order_release);
}

} // namespace procrustes
