#include "common/logging.h"

#include <cstdio>

namespace procrustes {

namespace detail {

void
logMessage(const char *prefix, const char *file, int line,
           const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(), file,
                 line);
}

} // namespace detail

void
panicImpl(const char *file, int line, const std::string &msg)
{
    detail::logMessage("panic", file, line, msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    detail::logMessage("fatal", file, line, msg);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    detail::logMessage("warn", file, line, msg);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace procrustes
