/**
 * @file
 * Reusable scratch-buffer arena for per-task kernel workspaces.
 *
 * The batch-parallel convolution executors hand every worker task its
 * own im2col/col2im workspace so tasks never share mutable state. Those
 * workspaces are large (C*R*S x P*Q floats) and requested once per
 * task, thousands of times per training run; allocating them fresh
 * each time would put malloc on the hot path and fragment the heap.
 * The arena keeps a small free list of previously-used buffers and
 * hands them back out on a best-fit basis: a checkout is one mutex
 * acquisition, and steady-state training reuses the same few
 * allocations forever.
 *
 * Buffers are RAII handles: destruction returns the storage to the
 * arena. Contents on acquire are UNDEFINED — callers that need zeros
 * must clear explicitly (most kernel uses fully overwrite first).
 */

#ifndef PROCRUSTES_COMMON_SCRATCH_ARENA_H_
#define PROCRUSTES_COMMON_SCRATCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace procrustes {

/** Mutex-guarded free list of reusable float workspaces. */
class ScratchArena
{
  public:
    /** RAII checkout of one workspace; returns storage on destruction. */
    class Buffer
    {
      public:
        Buffer() = default;

        Buffer(Buffer &&other) noexcept
            : arena_(other.arena_), storage_(std::move(other.storage_))
        {
            other.arena_ = nullptr;
        }

        Buffer &
        operator=(Buffer &&other) noexcept
        {
            if (this != &other) {
                releaseToArena();
                arena_ = other.arena_;
                storage_ = std::move(other.storage_);
                other.arena_ = nullptr;
            }
            return *this;
        }

        Buffer(const Buffer &) = delete;
        Buffer &operator=(const Buffer &) = delete;

        ~Buffer() { releaseToArena(); }

        /** Workspace base pointer (size() floats, contents undefined). */
        float *data() { return storage_.data(); }
        const float *data() const { return storage_.data(); }

        /** Usable extent in floats (>= the acquire request). */
        size_t size() const { return storage_.size(); }

        /** memset the workspace to zero. */
        void zero();

      private:
        friend class ScratchArena;

        Buffer(ScratchArena *arena, std::vector<float> &&storage)
            : arena_(arena), storage_(std::move(storage))
        {
        }

        void releaseToArena();

        ScratchArena *arena_ = nullptr;
        std::vector<float> storage_;
    };

    ScratchArena() = default;

    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /**
     * Check out a workspace of at least `floats` elements. Prefers the
     * smallest cached buffer that fits; grows a cached buffer when none
     * fits; allocates fresh only when the free list is empty.
     */
    Buffer acquire(size_t floats);

    /** @name Telemetry (tests and tuning). */
    /**@{*/
    /** Checkouts served without a fresh heap allocation. */
    int64_t reuseCount() const;
    /** Checkouts that allocated or grew a buffer. */
    int64_t allocCount() const;
    /** Buffers currently parked on the free list. */
    size_t freeListSize() const;
    /**@}*/

    /** Drop every cached buffer (frees the memory). */
    void clear();

    /** Process-wide arena shared by the kernel executors. */
    static ScratchArena &global();

  private:
    /** Free-list caps: beyond either, returned buffers are simply
     *  freed. The count cap covers every worker of a wide pool holding
     *  one forward + three backward workspaces; the byte cap bounds
     *  how much a burst of large checkouts (e.g. dW partial groups)
     *  can leave resident. */
    static constexpr size_t kMaxFreeBuffers = 64;
    static constexpr size_t kMaxFreeBytes = size_t{256} << 20;

    void release(std::vector<float> &&storage);

    mutable std::mutex mu_;
    std::vector<std::vector<float>> free_;
    size_t freeBytes_ = 0;
    int64_t reuses_ = 0;
    int64_t allocs_ = 0;
};

} // namespace procrustes

#endif // PROCRUSTES_COMMON_SCRATCH_ARENA_H_
