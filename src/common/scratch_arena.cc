#include "common/scratch_arena.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace procrustes {

void
ScratchArena::Buffer::zero()
{
    if (!storage_.empty())
        std::memset(storage_.data(), 0,
                    storage_.size() * sizeof(float));
}

void
ScratchArena::Buffer::releaseToArena()
{
    if (arena_ != nullptr) {
        arena_->release(std::move(storage_));
        arena_ = nullptr;
    }
}

ScratchArena::Buffer
ScratchArena::acquire(size_t floats)
{
    std::vector<float> storage;
    bool reused = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Best fit: the smallest cached buffer that already fits. If
        // none fits, grow the largest one rather than allocating a
        // brand-new block next to it.
        size_t best = free_.size();
        size_t largest = free_.size();
        for (size_t i = 0; i < free_.size(); ++i) {
            const size_t cap = free_[i].size();
            if (cap >= floats &&
                (best == free_.size() || cap < free_[best].size()))
                best = i;
            if (largest == free_.size() ||
                cap > free_[largest].size())
                largest = i;
        }
        const bool fits = best < free_.size();
        const size_t pick = fits ? best : largest;
        if (pick < free_.size()) {
            storage = std::move(free_[pick]);
            freeBytes_ -= storage.size() * sizeof(float);
            free_.erase(free_.begin() + static_cast<ptrdiff_t>(pick));
            reused = fits;
        }
        if (reused)
            ++reuses_;
        else
            ++allocs_;
    }
    if (storage.size() < floats) {
        // Growing: drop the old contents first so the reallocation
        // does not copy data the contract already declares undefined.
        storage.clear();
        storage.resize(floats);
    }
    return Buffer(this, std::move(storage));
}

void
ScratchArena::release(std::vector<float> &&storage)
{
    if (storage.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    const size_t bytes = storage.size() * sizeof(float);
    if (free_.size() < kMaxFreeBuffers &&
        freeBytes_ + bytes <= kMaxFreeBytes) {
        freeBytes_ += bytes;
        free_.push_back(std::move(storage));
    }
    // else: drop it; the vector frees on scope exit.
}

int64_t
ScratchArena::reuseCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
}

int64_t
ScratchArena::allocCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return allocs_;
}

size_t
ScratchArena::freeListSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
}

void
ScratchArena::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    free_.clear();
    freeBytes_ = 0;
}

ScratchArena &
ScratchArena::global()
{
    static ScratchArena arena;
    return arena;
}

} // namespace procrustes
