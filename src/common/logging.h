/**
 * @file
 * Status-message and error-reporting helpers in the gem5 spirit.
 *
 * Two error functions with distinct purposes:
 *  - panic():  something happened that should never happen regardless of
 *              what the user does (an actual library bug). Aborts.
 *  - fatal():  the run cannot continue due to a user-side condition (bad
 *              configuration, invalid arguments). Exits with code 1.
 *
 * Two status functions that never stop execution:
 *  - warn():   functionality may not behave exactly as expected.
 *  - inform(): normal operating messages.
 */

#ifndef PROCRUSTES_COMMON_LOGGING_H_
#define PROCRUSTES_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace procrustes {

namespace detail {

/** Print a formatted diagnostic line with a severity prefix. */
void logMessage(const char *prefix, const char *file, int line,
                const std::string &msg);

} // namespace detail

/** Report an internal invariant violation and abort. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Report an unrecoverable user-side error and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Report a suspicious-but-survivable condition. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Report a normal status message. */
void informImpl(const std::string &msg);

} // namespace procrustes

#define PANIC(msg) ::procrustes::panicImpl(__FILE__, __LINE__, (msg))
#define FATAL(msg) ::procrustes::fatalImpl(__FILE__, __LINE__, (msg))
#define WARN(msg) ::procrustes::warnImpl(__FILE__, __LINE__, (msg))
#define INFORM(msg) ::procrustes::informImpl((msg))

/** Panic unless an internal invariant holds. */
#define PROCRUSTES_ASSERT(cond, msg)                                        \
    do {                                                                    \
        if (!(cond)) {                                                      \
            PANIC(std::string("assertion failed: ") + #cond + ": " + (msg));\
        }                                                                   \
    } while (0)

#endif // PROCRUSTES_COMMON_LOGGING_H_
