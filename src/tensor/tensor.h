/**
 * @file
 * A minimal dense FP32 tensor substrate.
 *
 * The paper trains with 32-bit floating point throughout (Section V), so
 * a float-only tensor keeps the neural-network framework honest about
 * the datatype the accelerator models. Layout is row-major over up to
 * six dimensions; the activation convention throughout the repo is
 * NCHW and the convolution-filter convention is KCRS.
 */

#ifndef PROCRUSTES_TENSOR_TENSOR_H_
#define PROCRUSTES_TENSOR_TENSOR_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"

namespace procrustes {

class Xorshift128Plus;

/**
 * Storage precision of a tensor image held in accelerator memory.
 *
 * Compute stays fp32 throughout (the accumulators of Section V); the
 * precision tier describes how weights/activations are *stored* in
 * GLB/DRAM. kBf16 keeps fp32's full exponent range with 8 mantissa
 * bits, so values round-trip at half the bytes and — crucially for the
 * CSB encode rule — a non-zero normal float never rounds to zero
 * (only sub-bf16-denormal magnitudes < 2^-133 can), preserving
 * mask/value consistency.
 */
enum class Precision
{
    kFp32,   //!< 4-byte IEEE single (the default tier)
    kBf16,   //!< 2-byte bfloat16 storage, fp32 accumulate
};

/** Bytes one stored element occupies at this precision. */
inline int
precisionBytes(Precision p)
{
    return p == Precision::kBf16 ? 2 : 4;
}

/** Human-readable tier name ("fp32" / "bf16"). */
const char *precisionName(Precision p);

/** Parse "fp32" / "bf16" (fatal on anything else). */
Precision parsePrecision(const std::string &s);

/**
 * Default storage tier, resolved once from the environment variable
 * PROCRUSTES_STORAGE_PRECISION (fp32 | bf16; default fp32). Layers
 * read it at construction; setStoragePrecision overrides per layer.
 */
Precision defaultStoragePrecision();

/**
 * Round an fp32 value to the nearest bfloat16 (round-to-nearest-even)
 * and return it widened back to fp32 — the value a bf16 storage tier
 * would reproduce on read.
 */
inline float
bf16Round(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    if ((bits & 0x7f800000u) == 0x7f800000u) {
        // Inf / NaN: truncate (no rounding carry into the exponent),
        // re-quieting a NaN whose payload truncated away so it cannot
        // turn into an Inf.
        const bool was_nan = (bits & 0x007fffffu) != 0;
        bits &= 0xffff0000u;
        if (was_nan && (bits & 0x007f0000u) == 0)
            bits |= 0x00400000u;
    } else {
        bits += 0x7fffu + ((bits >> 16) & 1u);   // round to nearest even
        bits &= 0xffff0000u;
    }
    float out;
    std::memcpy(&out, &bits, sizeof(bits));
    return out;
}

/** Dense tensor shape: an ordered list of extents, rank <= kMaxRank. */
class Shape
{
  public:
    static constexpr int kMaxRank = 6;

    /** Empty (rank-0) shape describing a scalar. */
    Shape() : rank_(0) { dims_.fill(1); }

    /** Construct from an explicit extent list. */
    Shape(std::initializer_list<int64_t> dims);

    /** Construct from a vector of extents. */
    explicit Shape(const std::vector<int64_t> &dims);

    /** Number of dimensions. */
    int rank() const { return rank_; }

    /** Extent of dimension i. */
    int64_t
    operator[](int i) const
    {
        PROCRUSTES_ASSERT(i >= 0 && i < rank_, "shape index out of range");
        return dims_[static_cast<size_t>(i)];
    }

    /** Total number of elements. */
    int64_t numel() const;

    /** Equality compares rank and every extent. */
    bool operator==(const Shape &other) const;
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** Human-readable form, e.g. "[2, 3, 4]". */
    std::string str() const;

  private:
    std::array<int64_t, kMaxRank> dims_;
    int rank_;
};

/**
 * Dense row-major FP32 tensor with copy-on-write storage.
 *
 * Copies and copy-assignments share the underlying buffer; any mutable
 * access (non-const data()/at()/operator(), fill, ...) detaches the
 * tensor onto a private copy first. Value semantics are therefore
 * identical to a deep-copying tensor, but pure caching copies — e.g. a
 * layer saving its input batch for the weight-update pass — cost O(1)
 * instead of a full activation copy per batch. Hot loops in the NN
 * framework index through data() directly, while the variadic
 * operator() provides bounds-checked convenience access for tests and
 * setup code.
 *
 * Sharing is not thread-safe for concurrent detach; the kernels only
 * ever hand worker threads raw pointers obtained before dispatch.
 */
class Tensor
{
  public:
    /** Empty tensor (no storage). */
    Tensor() = default;

    /** Allocate a zero-filled tensor of the given shape. */
    explicit Tensor(const Shape &shape);

    /** Allocate with an initializer-list shape. */
    Tensor(std::initializer_list<int64_t> dims) : Tensor(Shape(dims)) {}

    /** Shape accessor. */
    const Shape &shape() const { return shape_; }

    /** Total element count. */
    int64_t
    numel() const
    {
        return storage_ ? static_cast<int64_t>(storage_->size()) : 0;
    }

    /** Raw storage access for hot loops; mutable access detaches. */
    float *
    data()
    {
        detach();
        return storage_ ? storage_->data() : nullptr;
    }

    const float *data() const
    {
        return storage_ ? storage_->data() : nullptr;
    }

    /** True if this tensor shares its buffer with another copy. */
    bool sharesStorage() const { return storage_ && storage_.use_count() > 1; }

    /** Flat element access with bounds check. */
    float &
    at(int64_t i)
    {
        PROCRUSTES_ASSERT(i >= 0 && i < numel(), "flat index out of range");
        detach();
        return (*storage_)[static_cast<size_t>(i)];
    }

    float
    at(int64_t i) const
    {
        PROCRUSTES_ASSERT(i >= 0 && i < numel(), "flat index out of range");
        return (*storage_)[static_cast<size_t>(i)];
    }

    /** Multi-dimensional access; the index count must equal the rank. */
    template <typename... Ix>
    float &
    operator()(Ix... ix)
    {
        const size_t flat = flatIndex({static_cast<int64_t>(ix)...});
        detach();
        return (*storage_)[flat];
    }

    template <typename... Ix>
    float
    operator()(Ix... ix) const
    {
        return (*storage_)[flatIndex({static_cast<int64_t>(ix)...})];
    }

    /** Set every element to value. */
    void fill(float value);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /** Fill with N(0, std^2) variates from the supplied generator. */
    void fillGaussian(Xorshift128Plus &rng, float std);

    /** Fill with U[lo, hi) variates from the supplied generator. */
    void fillUniform(Xorshift128Plus &rng, float lo, float hi);

    /** Reshape in place; the element count must be preserved. */
    void reshape(const Shape &new_shape);

    /** Sum of all elements (double accumulator). */
    double sum() const;

    /** Fraction of elements equal to exactly zero. */
    double zeroFraction() const;

  private:
    size_t flatIndex(std::initializer_list<int64_t> ix) const;

    /** Clone the buffer if it is shared (copy-on-write). */
    void
    detach()
    {
        if (storage_ && storage_.use_count() > 1)
            storage_ = std::make_shared<std::vector<float>>(*storage_);
    }

    Shape shape_;
    std::shared_ptr<std::vector<float>> storage_;
};

/** Copy of t with every element rounded through bf16 storage. */
Tensor bf16RoundedCopy(const Tensor &t);

/** Elementwise a += b (shapes must match). */
void addInPlace(Tensor &a, const Tensor &b);

/** Elementwise a *= s. */
void scaleInPlace(Tensor &a, float s);

/** Max absolute elementwise difference between two same-shape tensors. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace procrustes

#endif // PROCRUSTES_TENSOR_TENSOR_H_
