#include "tensor/tensor.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/rng.h"

namespace procrustes {

const char *
precisionName(Precision p)
{
    return p == Precision::kBf16 ? "bf16" : "fp32";
}

Precision
parsePrecision(const std::string &s)
{
    if (s == "fp32")
        return Precision::kFp32;
    if (s == "bf16")
        return Precision::kBf16;
    FATAL("storage precision must be 'fp32' or 'bf16', got '" + s + "'");
}

Precision
defaultStoragePrecision()
{
    static const Precision resolved = [] {
        const char *env = std::getenv("PROCRUSTES_STORAGE_PRECISION");
        return env && *env ? parsePrecision(env) : Precision::kFp32;
    }();
    return resolved;
}

Tensor
bf16RoundedCopy(const Tensor &t)
{
    Tensor out(t.shape());
    const float *src = t.data();
    float *dst = out.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        dst[i] = bf16Round(src[i]);
    return out;
}

Shape::Shape(std::initializer_list<int64_t> dims) : rank_(0)
{
    PROCRUSTES_ASSERT(dims.size() <= kMaxRank, "rank exceeds kMaxRank");
    dims_.fill(1);
    for (int64_t d : dims) {
        PROCRUSTES_ASSERT(d >= 0, "negative extent");
        dims_[static_cast<size_t>(rank_++)] = d;
    }
}

Shape::Shape(const std::vector<int64_t> &dims) : rank_(0)
{
    PROCRUSTES_ASSERT(dims.size() <= kMaxRank, "rank exceeds kMaxRank");
    dims_.fill(1);
    for (int64_t d : dims) {
        PROCRUSTES_ASSERT(d >= 0, "negative extent");
        dims_[static_cast<size_t>(rank_++)] = d;
    }
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int i = 0; i < rank_; ++i)
        n *= dims_[static_cast<size_t>(i)];
    return n;
}

bool
Shape::operator==(const Shape &other) const
{
    if (rank_ != other.rank_)
        return false;
    for (int i = 0; i < rank_; ++i) {
        if (dims_[static_cast<size_t>(i)] !=
            other.dims_[static_cast<size_t>(i)]) {
            return false;
        }
    }
    return true;
}

std::string
Shape::str() const
{
    std::ostringstream os;
    os << "[";
    for (int i = 0; i < rank_; ++i) {
        if (i)
            os << ", ";
        os << dims_[static_cast<size_t>(i)];
    }
    os << "]";
    return os.str();
}

Tensor::Tensor(const Shape &shape)
    : shape_(shape),
      storage_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(shape.numel()), 0.0f))
{
}

size_t
Tensor::flatIndex(std::initializer_list<int64_t> ix) const
{
    PROCRUSTES_ASSERT(static_cast<int>(ix.size()) == shape_.rank(),
                      "index rank mismatch");
    int64_t flat = 0;
    int dim = 0;
    for (int64_t i : ix) {
        PROCRUSTES_ASSERT(i >= 0 && i < shape_[dim],
                          "index out of range in dim " + std::to_string(dim));
        flat = flat * shape_[dim] + i;
        ++dim;
    }
    return static_cast<size_t>(flat);
}

void
Tensor::fill(float value)
{
    float *p = data();
    const int64_t n = numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = value;
}

void
Tensor::fillGaussian(Xorshift128Plus &rng, float std)
{
    float *p = data();
    const int64_t n = numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.nextGaussian()) * std;
}

void
Tensor::fillUniform(Xorshift128Plus &rng, float lo, float hi)
{
    float *p = data();
    const int64_t n = numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = lo + (hi - lo) * rng.nextFloat();
}

void
Tensor::reshape(const Shape &new_shape)
{
    PROCRUSTES_ASSERT(new_shape.numel() == numel(),
                      "reshape changes element count");
    shape_ = new_shape;
}

double
Tensor::sum() const
{
    const float *p = data();
    const int64_t n = numel();
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i)
        acc += p[i];
    return acc;
}

double
Tensor::zeroFraction() const
{
    const int64_t n = numel();
    if (n == 0)
        return 0.0;
    const float *p = data();
    int64_t zeros = 0;
    for (int64_t i = 0; i < n; ++i) {
        if (p[i] == 0.0f)
            ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(n);
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    PROCRUSTES_ASSERT(a.shape() == b.shape(), "shape mismatch in add");
    float *pa = a.data();
    const float *pb = b.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i)
        pa[i] += pb[i];
}

void
scaleInPlace(Tensor &a, float s)
{
    float *pa = a.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i)
        pa[i] *= s;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    PROCRUSTES_ASSERT(a.shape() == b.shape(), "shape mismatch in diff");
    const float *pa = a.data();
    const float *pb = b.data();
    float worst = 0.0f;
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i)
        worst = std::max(worst, std::fabs(pa[i] - pb[i]));
    return worst;
}

} // namespace procrustes
