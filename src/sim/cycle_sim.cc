#include "sim/cycle_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/thread_pool.h"
#include "arch/load_balancer.h"
#include "arch/trace_imbalance.h"

namespace procrustes {
namespace sim {

using arch::Dim;
using arch::FlowClass;
using arch::LayerShape;
using arch::LayerSparsityProfile;
using arch::LayerTrace;
using arch::MappingKind;
using arch::Operand;
using arch::Phase;
using arch::TileHalves;

Channel
channelFor(FlowClass flow)
{
    switch (flow) {
      case FlowClass::MulticastRows:
      case FlowClass::ReduceRows:
        return Channel::RowBus;
      case FlowClass::MulticastCols:
      case FlowClass::ReduceCols:
        return Channel::ColBus;
      case FlowClass::Broadcast:
      case FlowClass::ReduceAll:
        return Channel::Broadcast;
      case FlowClass::Unicast:
        return Channel::UnicastNet;
    }
    PANIC("unknown flow class");
}

void
SimResult::accumulate(const SimResult &o)
{
    cycles += o.cycles;
    computeCycles += o.computeCycles;
    stallCycles += o.stallCycles;
    macsRetired += o.macsRetired;
    drainCycles += o.drainCycles;
    overlappedDrainCycles += o.overlappedDrainCycles;
    glbConflictCycles += o.glbConflictCycles;
    glbConflicts += o.glbConflicts;
    fifoBackpressureCycles += o.fifoBackpressureCycles;
    dramRefillCycles += o.dramRefillCycles;
    dramStallCycles += o.dramStallCycles;
    if (glbBankReads.size() < o.glbBankReads.size())
        glbBankReads.resize(o.glbBankReads.size(), 0);
    for (size_t i = 0; i < o.glbBankReads.size(); ++i)
        glbBankReads[i] += o.glbBankReads[i];
    if (glbBankWrites.size() < o.glbBankWrites.size())
        glbBankWrites.resize(o.glbBankWrites.size(), 0);
    for (size_t i = 0; i < o.glbBankWrites.size(); ++i)
        glbBankWrites[i] += o.glbBankWrites[i];
}

int64_t
SimResult::totalGlbReads() const
{
    int64_t t = 0;
    for (int64_t r : glbBankReads)
        t += r;
    return t;
}

int64_t
SimResult::totalGlbWrites() const
{
    int64_t t = 0;
    for (int64_t w : glbBankWrites)
        t += w;
    return t;
}

void
validateSimConfig(const SimConfig &cfg)
{
    if (cfg.unicastWordsPerCycle <= 0)
        FATAL("SimConfig::unicastWordsPerCycle must be positive (got " +
              std::to_string(cfg.unicastWordsPerCycle) + ")");
    if (cfg.glbBanks <= 0)
        FATAL("SimConfig::glbBanks must be positive (got " +
              std::to_string(cfg.glbBanks) + ")");
    if (cfg.glbBankPortsPerCycle <= 0)
        FATAL("SimConfig::glbBankPortsPerCycle must be positive (got " +
              std::to_string(cfg.glbBankPortsPerCycle) + ")");
    if (cfg.maxCycles <= 0)
        FATAL("SimConfig::maxCycles must be positive (got " +
              std::to_string(cfg.maxCycles) + ")");
}

size_t
unicastRoundRobin(const std::vector<int64_t> &cap,
                  std::vector<int64_t> &recv, int &budget, size_t cursor)
{
    const size_t n = cap.size();
    if (n == 0)
        return 0;
    size_t next = cursor % n;
    for (size_t step = 0; step < n && budget > 0; ++step) {
        const size_t idx = (cursor + step) % n;
        if (recv[idx] < cap[idx]) {
            ++recv[idx];
            --budget;
            next = (idx + 1) % n;
        }
    }
    return next;
}

namespace {

/** True if the PE may retire one more MAC this cycle. */
bool
canIssue(const TileDemand &d, int64_t done, int64_t recv_a, int64_t recv_b)
{
    if (done >= d.macs)
        return false;
    // Operand words unlock MACs proportionally: word w of operand A
    // enables MACs up to w * (macs / wordsA).
    if (d.wordsA > 0 && done * d.wordsA >= recv_a * d.macs)
        return false;
    if (d.wordsB > 0 && done * d.wordsB >= recv_b * d.macs)
        return false;
    return true;
}

/**
 * Most words a PE may have received: the queue holds `depth` words
 * past the `consumed` point (the words its retired MACs have used up),
 * never more than the full demand.
 */
int64_t
deliveryCap(int64_t words, int64_t macs, int64_t done, int depth)
{
    if (depth <= 0 || macs <= 0)
        return words;
    const int64_t consumed = ceilDiv(done * words, macs);
    return std::min(words, consumed + depth);
}

/**
 * Deliver one multicast word along each row (or column) with a hungry,
 * non-full PE; returns the number of lines that fired (one GLB word
 * read per fired line).
 */
int64_t
deliverBus(const WaveSpec &wave, const std::vector<int64_t> &cap,
           std::vector<int64_t> &recv, bool row_major)
{
    const int outer = row_major ? wave.rows : wave.cols;
    const int inner = row_major ? wave.cols : wave.rows;
    int64_t fired = 0;
    for (int o = 0; o < outer; ++o) {
        bool any = false;
        for (int i = 0; i < inner; ++i) {
            const int r = row_major ? o : i;
            const int c = row_major ? i : o;
            const auto idx = static_cast<size_t>(r * wave.cols + c);
            if (recv[idx] < cap[idx]) {
                any = true;
                break;
            }
        }
        if (!any)
            continue;
        ++fired;
        for (int i = 0; i < inner; ++i) {
            const int r = row_major ? o : i;
            const int c = row_major ? i : o;
            const auto idx = static_cast<size_t>(r * wave.cols + c);
            if (recv[idx] < cap[idx])
                ++recv[idx];
        }
    }
    return fired;
}

/** Deliver one broadcast word to every hungry, non-full PE. */
int64_t
deliverBroadcast(const std::vector<int64_t> &cap,
                 std::vector<int64_t> &recv)
{
    int64_t fired = 0;
    for (size_t idx = 0; idx < cap.size(); ++idx) {
        if (recv[idx] < cap[idx]) {
            ++recv[idx];
            fired = 1;
        }
    }
    return fired;
}

/**
 * Move one operand's words for one cycle; returns words transmitted
 * (= GLB reads). `uni_budget` is the cycle's remaining aggregate
 * unicast bandwidth, shared across operands: when both operands ride
 * the unicast network they split one budget instead of each spending
 * the full configured bandwidth.
 */
int64_t
deliverChannel(const WaveSpec &wave, const std::vector<int64_t> &cap,
               std::vector<int64_t> &recv, Channel ch, int &uni_budget,
               size_t &uni_cursor)
{
    switch (ch) {
      case Channel::RowBus:
        return deliverBus(wave, cap, recv, /*row_major=*/true);
      case Channel::ColBus:
        return deliverBus(wave, cap, recv, /*row_major=*/false);
      case Channel::Broadcast:
        return deliverBroadcast(cap, recv);
      case Channel::UnicastNet: {
        const int before = uni_budget;
        uni_cursor = unicastRoundRobin(cap, recv, uni_budget, uni_cursor);
        return before - uni_budget;
      }
    }
    PANIC("unknown channel");
}

} // namespace

namespace {

/**
 * Per-wave facts the double-buffered drain accounting needs beyond
 * SimResult: how much spare GLB write bandwidth the compute window
 * left (reads have priority), and what the wave's own drain costs in
 * serial mode (drain cycles plus the bank-conflict replay cycles the
 * drain's writes caused).
 */
struct WaveSideband
{
    int64_t computeCycles = 0;
    int64_t computeReads = 0;        //!< GLB reads during compute
    int64_t drainWords = 0;          //!< psum words written
    int64_t drainSerialCycles = 0;   //!< drainCycles + drain conflicts
};

SimResult simulateWaveImpl(const WaveSpec &wave, const SimConfig &cfg,
                           WaveSideband *sb);

} // namespace

SimResult
simulateWave(const WaveSpec &wave, const SimConfig &cfg)
{
    return simulateWaveImpl(wave, cfg, nullptr);
}

namespace {

SimResult
simulateWaveImpl(const WaveSpec &wave, const SimConfig &cfg,
                 WaveSideband *sb)
{
    PROCRUSTES_ASSERT(
        wave.tiles.size() ==
            static_cast<size_t>(wave.rows) * static_cast<size_t>(wave.cols),
        "tile count mismatch");
    validateSimConfig(cfg);
    SimResult res;
    const int64_t banks = cfg.glbBanks;
    const int64_t bank_bw = banks * cfg.glbBankPortsPerCycle;
    res.glbBankReads.assign(static_cast<size_t>(banks), 0);
    res.glbBankWrites.assign(static_cast<size_t>(banks), 0);

    const size_t n = wave.tiles.size();
    std::vector<int64_t> macs_done(n, 0);
    std::vector<int64_t> recv_a(n, 0);
    std::vector<int64_t> recv_b(n, 0);
    std::vector<int64_t> cap_a(n, 0);
    std::vector<int64_t> cap_b(n, 0);
    size_t uni_cursor = 0;
    int64_t glb_addr = 0;   // rolling word address, interleaved on banks

    // Charge one cycle's GLB accesses to banks; surplus beyond the
    // aggregate bank bandwidth replays in appended stall cycles.
    auto chargeGlb = [&](int64_t words, std::vector<int64_t> &per_bank) {
        for (int64_t w = 0; w < words; ++w)
            ++per_bank[static_cast<size_t>((glb_addr++) % banks)];
        if (words > bank_bw) {
            res.glbConflicts += words - bank_bw;
            res.glbConflictCycles += ceilDiv(words, bank_bw) - 1;
        }
    };

    int64_t remaining = 0;
    for (const TileDemand &d : wave.tiles)
        remaining += d.macs;

    int64_t compute_reads = 0;
    while (remaining > 0) {
        PROCRUSTES_ASSERT(res.computeCycles < cfg.maxCycles,
                          "wave exceeded cycle limit");
        // Queue caps for this cycle; a hungry PE at its cap has a word
        // withheld by backpressure.
        for (size_t idx = 0; idx < n; ++idx) {
            const TileDemand &d = wave.tiles[idx];
            cap_a[idx] = deliveryCap(d.wordsA, d.macs, macs_done[idx],
                                     cfg.peFifoDepth);
            cap_b[idx] = deliveryCap(d.wordsB, d.macs, macs_done[idx],
                                     cfg.peFifoDepth);
            if (recv_a[idx] < d.wordsA && recv_a[idx] >= cap_a[idx])
                ++res.fifoBackpressureCycles;
            if (recv_b[idx] < d.wordsB && recv_b[idx] >= cap_b[idx])
                ++res.fifoBackpressureCycles;
        }

        // Delivery happens first; a word arriving this cycle can feed
        // a MAC this cycle (single-cycle forwarding). One unicast
        // budget serves both operands.
        int uni_budget = cfg.unicastWordsPerCycle;
        int64_t words = deliverChannel(wave, cap_a, recv_a, wave.channelA,
                                       uni_budget, uni_cursor);
        words += deliverChannel(wave, cap_b, recv_b, wave.channelB,
                                uni_budget, uni_cursor);
        chargeGlb(words, res.glbBankReads);
        compute_reads += words;

        for (size_t idx = 0; idx < n; ++idx) {
            const TileDemand &d = wave.tiles[idx];
            if (macs_done[idx] >= d.macs)
                continue;
            if (canIssue(d, macs_done[idx], recv_a[idx], recv_b[idx])) {
                ++macs_done[idx];
                ++res.macsRetired;
                --remaining;
            } else {
                ++res.stallCycles;
            }
        }
        ++res.computeCycles;
    }

    // Drain partial sums through the output channel, one bandwidth-
    // limited batch of GLB writes per cycle. The writes are charged to
    // banks here regardless of drain mode, so the per-bank traffic
    // image is identical in both modes: with double-buffered outputs
    // the sequence layer re-times this drain (hiding it in the next
    // wave's spare GLB write bandwidth) but never re-routes it — see
    // simulateWaveSequence.
    int64_t psum_words = 0;
    for (const TileDemand &d : wave.tiles)
        psum_words += d.psumWords;
    const int64_t psum_total = psum_words;
    const int64_t pre_drain_conflicts = res.glbConflictCycles;
    int64_t drain_bw = 1;
    switch (wave.channelOut) {
      case Channel::RowBus:
        drain_bw = wave.rows;
        break;
      case Channel::ColBus:
        drain_bw = wave.cols;
        break;
      case Channel::Broadcast:
        drain_bw = 1;
        break;
      case Channel::UnicastNet:
        drain_bw = cfg.unicastWordsPerCycle;
        break;
    }
    drain_bw = std::max<int64_t>(1, drain_bw);
    while (psum_words > 0) {
        const int64_t w = std::min(drain_bw, psum_words);
        psum_words -= w;
        ++res.drainCycles;
        chargeGlb(w, res.glbBankWrites);
    }

    res.cycles = res.computeCycles + res.drainCycles + res.glbConflictCycles;
    if (sb != nullptr) {
        sb->computeCycles = res.computeCycles;
        sb->computeReads = compute_reads;
        sb->drainWords = psum_total;
        sb->drainSerialCycles =
            res.drainCycles +
            (res.glbConflictCycles - pre_drain_conflicts);
    }
    return res;
}

} // namespace

namespace {

/**
 * What a clocked piece exposes so callers can continue the
 * double-buffered drain chain across piece boundaries
 * (simulateEpochPlan): the spare GLB write capacity of the FIRST
 * wave's compute window (unused inside the piece — the first wave has
 * no in-piece predecessor to drain), and the LAST wave's staged psum
 * words together with the bank-bandwidth flush cycles for them that
 * the piece's own cycle count already includes. A boundary can then
 * hide some of those tail words under the next piece's head spare and
 * refund the difference in flush cycles.
 */
struct PieceLink
{
    int64_t headSpareWords = 0;
    int64_t tailWords = 0;
    int64_t tailFlushCycles = 0;
    bool hasWaves = false;
};

/**
 * Clock a wave sequence, chaining the two-psum-buffer drain overlap
 * when cfg.doubleBufferOutputs. At each wave boundary the finished
 * wave's psums swap into the spare buffer and stream to the GLB
 * through the write bandwidth the next wave's compute window leaves
 * spare (operand reads have priority: spare = banks x ports x C_next
 * minus the window's reads); words still pending when the window
 * closes flush at the full aggregate bank bandwidth before the next
 * swap. The cycles this saves versus the serial drain (drain cycles
 * plus the drain's own conflict-replay cycles) are removed from
 * `cycles` and reported in overlappedDrainCycles; per-bank traffic is
 * untouched, so reads/writes match serial mode exactly. The saving is
 * provably non-negative, so double-buffered never clocks slower than
 * serial on the same waves.
 */
SimResult
simulateSequencePiece(const std::vector<WaveSpec> &waves,
                      const SimConfig &cfg, PieceLink *link)
{
    validateSimConfig(cfg);
    SimResult total;
    total.glbBankReads.assign(static_cast<size_t>(cfg.glbBanks), 0);
    total.glbBankWrites.assign(static_cast<size_t>(cfg.glbBanks), 0);
    const int64_t bank_bw =
        static_cast<int64_t>(cfg.glbBanks) * cfg.glbBankPortsPerCycle;
    int64_t pending_words = 0;   // staged psums of the previous wave
    int64_t pending_serial = 0;  // their serial-mode drain cycles
    bool first = true;
    for (const WaveSpec &wave : waves) {
        WaveSideband sb;
        const SimResult r = simulateWaveImpl(wave, cfg, &sb);
        total.accumulate(r);
        if (cfg.doubleBufferOutputs) {
            const int64_t spare = std::max<int64_t>(
                0, bank_bw * sb.computeCycles - sb.computeReads);
            if (first && link != nullptr)
                link->headSpareWords = spare;
            if (!first) {
                const int64_t hidden = std::min(pending_words, spare);
                const int64_t flush =
                    ceilDiv(pending_words - hidden, bank_bw);
                const int64_t saved = pending_serial - flush;
                total.cycles -= saved;
                total.overlappedDrainCycles += saved;
            }
            pending_words = sb.drainWords;
            pending_serial = sb.drainSerialCycles;
        }
        first = false;
    }
    if (cfg.doubleBufferOutputs && !first) {
        // Last wave: the array is idle, so the staging buffer flushes
        // at the full bank bandwidth. The flush stays exposed here;
        // piece-chaining callers may refund part of it at the boundary.
        const int64_t flush = ceilDiv(pending_words, bank_bw);
        const int64_t saved = pending_serial - flush;
        total.cycles -= saved;
        total.overlappedDrainCycles += saved;
        if (link != nullptr) {
            link->tailWords = pending_words;
            link->tailFlushCycles = flush;
        }
    }
    if (link != nullptr)
        link->hasWaves = !first;
    return total;
}

/**
 * Clock one (layer, phase) piece: the wave sequence plus its DRAM->GLB
 * refill. Refill is double-buffered against the piece's whole
 * array-busy window (compute + drain + conflict replay, net of
 * internal overlap): only the excess demand surfaces as dramStallCycles
 * and extends `cycles`.
 */
SimResult
simulatePhasePiece(const std::vector<WaveSpec> &waves, double refill_words,
                   const SimConfig &cfg, PieceLink *link)
{
    SimResult res = simulateSequencePiece(waves, cfg, link);
    if (cfg.dramWordsPerCycle > 0.0 && refill_words > 0.0) {
        const int64_t refill = static_cast<int64_t>(
            std::ceil(refill_words / cfg.dramWordsPerCycle));
        res.dramRefillCycles += refill;
        const int64_t stall = std::max<int64_t>(0, refill - res.cycles);
        res.dramStallCycles += stall;
        res.cycles += stall;
    }
    return res;
}

/**
 * Per-slot sparse-operand densities as the wave builder needs them:
 * the profile oracle reads the analytic model's synthetic profile, the
 * trace oracle the measured epoch facts. Keeping the wave geometry in
 * one builder (buildWaves) guarantees the two paths can never tile
 * differently.
 */
struct ProfileOracle
{
    const LayerSparsityProfile &p;

    double
    broadcastDensity(Operand sp) const
    {
        return sp == Operand::Weights ? p.weightDensity()
                                      : p.iactDensity();
    }

    double
    pairDensity(Operand sp, Dim d0, int64_t i0, Dim d1, int64_t i1) const
    {
        if (sp == Operand::Weights) {
            const int64_t k = d0 == Dim::K ? i0 : i1;
            const int64_t c = d0 == Dim::K ? i1 : i0;
            return p.kernelDensity(k, c);
        }
        (void)d1;
        return p.iactSpatialDensity(i0, i1);
    }

    double
    sliceDensity(Operand sp, Dim d, int64_t idx) const
    {
        if (sp == Operand::Weights)
            return d == Dim::K ? p.kDensity(idx) : p.cDensity(idx);
        return d == Dim::N ? p.iactSampleDensity(idx)
                           : p.iactChannelDensity(idx);
    }

    TileHalves
    sliceHalves(Operand sp, Dim d, int64_t idx) const
    {
        TileHalves h;
        if (sp == Operand::Weights) {
            h.first = d == Dim::K ? p.kHalfDensity(idx, 0)
                                  : p.cHalfDensity(idx, 0);
            h.second = d == Dim::K ? p.kHalfDensity(idx, 1)
                                   : p.cHalfDensity(idx, 1);
        } else {
            h.first = p.iactSampleHalfDensity(idx, 0);
            h.second = p.iactSampleHalfDensity(idx, 1);
        }
        return h;
    }
};

/**
 * Measured-trace oracle: exact mask slice counts normalized to
 * densities (the work units of arch::measuredSliceWork /
 * measuredPairWork divided by the slice's dense position count), and
 * measured activation vectors consumed as densities directly.
 */
struct TraceOracle
{
    const LayerTrace &l;

    double
    kernelPositions() const
    {
        return static_cast<double>(
            std::max<int64_t>(1, l.mask.R) *
            std::max<int64_t>(1, l.mask.S));
    }

    double
    sliceVolume(Dim d) const
    {
        const double rs = kernelPositions();
        if (d == Dim::K)
            return std::max<int64_t>(1, l.mask.C) * rs;
        return std::max<int64_t>(1, l.mask.K) * rs;
    }

    double
    broadcastDensity(Operand sp) const
    {
        return sp == Operand::Weights ? l.weightDensity() : l.iacts.mean;
    }

    double
    pairDensity(Operand sp, Dim d0, int64_t i0, Dim d1, int64_t i1) const
    {
        const double w = arch::measuredPairWork(l, sp, d0, i0, d1, i1);
        return sp == Operand::Weights ? w / kernelPositions() : w;
    }

    double
    sliceDensity(Operand sp, Dim d, int64_t idx) const
    {
        const TileHalves h = arch::measuredSliceWork(l, sp, d, idx);
        const double w = h.total();
        return sp == Operand::Weights ? w / sliceVolume(d) : w;
    }

    TileHalves
    sliceHalves(Operand sp, Dim d, int64_t idx) const
    {
        TileHalves h = arch::measuredSliceWork(l, sp, d, idx);
        if (sp == Operand::Weights) {
            const double vol = sliceVolume(d);
            h.first /= vol;
            h.second /= vol;
        }
        return h;
    }
};

/**
 * Build the wave sequence for (layer, phase, mapping) — the analytic
 * model's exact tiling: spatial blocking, RF-bounded weight chunking,
 * optional half-tile balancing — with per-slot densities from the
 * oracle. Slots with zero density are idle: zero demand, no phantom
 * MAC or psum word, excluded from stalls. Waves whose every slot is
 * idle are dropped (they would simulate to zero cycles). Geometry
 * depends only on the oracle's facts, the mapping, the array config,
 * and the balance mode — never on SimConfig — which is what lets
 * sweep drivers build once and re-clock per configuration.
 */
template <typename Oracle>
std::vector<WaveSpec>
buildWaves(const LayerShape &layer, Phase phase, MappingKind mapping,
           int64_t batch, const arch::ArrayConfig &acfg,
           arch::BalanceMode balance, const Oracle &oracle)
{
    const auto dims = arch::spatialDims(mapping);
    const int64_t a0 = acfg.rows;
    const int64_t a1 = acfg.cols;
    const int64_t ext0 = arch::dimExtent(layer, dims[0], batch);
    const int64_t ext1 = arch::dimExtent(layer, dims[1], batch);
    const double dense_macs =
        static_cast<double>(batch) *
        static_cast<double>(layer.macsPerSample());
    const double per_index =
        dense_macs / static_cast<double>(ext0 * ext1);

    const Operand sp = arch::sparseOperand(phase);
    const Operand out = arch::outputOperand(phase);
    const Operand other = [&] {
        for (Operand op : arch::kAllOperands) {
            if (op != sp && op != out)
                return op;
        }
        PANIC("operand set degenerate");
    }();

    // Per-(d0,d1)-index unique word counts of each operand.
    auto f_idx = [&](Operand op) {
        double f = static_cast<double>(
            arch::operandVolume(layer, op, batch));
        for (int axis = 0; axis < 2; ++axis) {
            if (arch::dependsOn(op, dims[axis]))
                f /= static_cast<double>(
                    arch::dimExtent(layer, dims[axis], batch));
        }
        return f;
    };
    const double fa = f_idx(sp);
    const double fb = f_idx(other);
    const double fo = f_idx(out);

    const bool dep0 = arch::dependsOn(sp, dims[0]);
    const bool dep1 = arch::dependsOn(sp, dims[1]);
    const bool cheap_ok = arch::supportsCheapBalancing(phase, mapping);

    // Weight-sparse both-axes mappings tile multiple kernels per PE
    // (RF-bounded), mirroring CostModel::chunkedWeightWaves.
    const int64_t g =
        (dep0 && dep1 && sp == Operand::Weights)
            ? arch::weightTileChunk(acfg, layer, ext1, a1)
            : 1;
    const int64_t stride1 = a1 * g;
    const bool other_dep1 = arch::dependsOn(other, dims[1]);
    const bool out_dep1 = arch::dependsOn(out, dims[1]);

    WaveSpec wave_template;
    wave_template.rows = acfg.rows;
    wave_template.cols = acfg.cols;
    wave_template.channelA =
        channelFor(arch::classifyFlow(phase, sp, mapping));
    wave_template.channelB =
        channelFor(arch::classifyFlow(phase, other, mapping));
    wave_template.channelOut =
        channelFor(arch::classifyFlow(phase, out, mapping));

    std::vector<WaveSpec> waves;
    for (int64_t b0 = 0; b0 < ext0; b0 += a0) {
        const int64_t n0 = std::min(a0, ext0 - b0);
        for (int64_t b1 = 0; b1 < ext1; b1 += stride1) {
            const int64_t n1 =
                std::min(a1, ceilDiv(ext1 - b1, g));
            WaveSpec wave = wave_template;
            wave.tiles.assign(
                static_cast<size_t>(acfg.rows) * acfg.cols, {});

            // Per-slot effective density along the sparse structure.
            auto density_at = [&](int64_t i, int64_t j) {
                if (!dep0 && !dep1)
                    return oracle.broadcastDensity(sp);
                if (dep0 && dep1)
                    return oracle.pairDensity(sp, dims[0], b0 + i,
                                              dims[1], b1 + j);
                const Dim d = dep0 ? dims[0] : dims[1];
                const int64_t idx = dep0 ? b0 + i : b1 + j;
                return oracle.sliceDensity(sp, d, idx);
            };

            // Optional half-tile balancing along the sparse axis.
            std::vector<double> balanced;
            if (balance == arch::BalanceMode::HalfTile && cheap_ok &&
                (dep0 != dep1)) {
                const Dim d = dep0 ? dims[0] : dims[1];
                const int64_t base = dep0 ? b0 : b1;
                const int64_t count = dep0 ? n0 : n1;
                std::vector<TileHalves> tiles;
                for (int64_t i = 0; i < count; ++i)
                    tiles.push_back(oracle.sliceHalves(sp, d, base + i));
                balanced = arch::rebalanceHalfTiles(tiles);
            }

            bool any_work = false;
            for (int64_t i = 0; i < n0; ++i) {
                for (int64_t j = 0; j < n1; ++j) {
                    // Aggregate the PE's kernel chunk (g = 1 unless
                    // weight-sparse on both axes).
                    const int64_t base = b1 + j * g;
                    const int64_t count =
                        std::min(g, ext1 - base);
                    double dens_sum = 0.0;
                    if (!balanced.empty()) {
                        const int64_t slot = dep0 ? i : j;
                        dens_sum = balanced[static_cast<size_t>(slot)];
                    } else if (g == 1) {
                        dens_sum = density_at(i, j);
                    } else {
                        for (int64_t t = 0; t < count; ++t) {
                            dens_sum += oracle.pairDensity(
                                sp, dims[0], b0 + i, dims[1], base + t);
                        }
                    }
                    // A zero-density slot is a fully pruned slice or
                    // chunk: it holds no weights, retires no MACs, and
                    // drains no psums — idle, not a phantom one-MAC
                    // tile.
                    if (dens_sum <= 0.0)
                        continue;
                    TileDemand d;
                    d.macs = std::max<int64_t>(
                        1, std::llround(per_index * dens_sum));
                    d.wordsA = std::max<int64_t>(
                        1, std::llround(fa * dens_sum));
                    d.wordsB = std::max<int64_t>(
                        1, std::llround(
                               fb * (other_dep1 ? count : 1)));
                    d.psumWords = std::max<int64_t>(
                        1,
                        std::llround(fo * (out_dep1 ? count : 1)));
                    wave.tiles[static_cast<size_t>(i * acfg.cols + j)] =
                        d;
                    any_work = true;
                }
            }

            if (any_work)
                waves.push_back(std::move(wave));
        }
    }
    return waves;
}

} // namespace

SimResult
simulateWaveSequence(const std::vector<WaveSpec> &waves,
                     const SimConfig &cfg)
{
    return simulateSequencePiece(waves, cfg, nullptr);
}

SimResult
simulateLayerPhase(const LayerShape &layer, Phase phase,
                   MappingKind mapping,
                   const LayerSparsityProfile &profile, int64_t batch,
                   const arch::ArrayConfig &acfg, const SimConfig &scfg,
                   arch::BalanceMode balance)
{
    validateSimConfig(scfg);
    return simulateWaveSequence(
        buildWaves(layer, phase, mapping, batch, acfg, balance,
                   ProfileOracle{profile}),
        scfg);
}

double
traceRefillWords(const LayerTrace &layer, Phase phase, int64_t batch)
{
    // Mirror of CostModel::dramWords for the sparse machine: the
    // measured compressed weight image plus dense/compressed
    // activation volumes at the measured input density. 32-bit words.
    const LayerShape &shape = layer.shape;
    const double w_dense = static_cast<double>(
        arch::operandVolume(shape, Operand::Weights, batch));
    const double x_dense = static_cast<double>(
        arch::operandVolume(shape, Operand::Iacts, batch));
    const double y_dense = static_cast<double>(
        arch::operandVolume(shape, Operand::Oacts, batch));

    const double mask_over = 1.0 / 32.0;
    const double w_stored =
        layer.csbWeightBytes > 0
            ? static_cast<double>(layer.csbWeightBytes) / 4.0
            : w_dense * layer.weightDensity() + w_dense * mask_over;
    const double x_comp = x_dense * layer.iacts.mean + x_dense * mask_over;

    switch (phase) {
      case Phase::Forward:
        // Weights + dense inputs in; dense outputs plus the compressed
        // input copy kept for the weight-update phase out.
        return w_stored + x_dense + y_dense + x_comp;
      case Phase::Backward:
        return w_stored + y_dense + x_dense;
      case Phase::WeightUpdate:
        return x_comp + y_dense + w_stored;
    }
    PANIC("unknown phase");
}

SimResult
simulateTraceLayerPhase(const LayerTrace &layer, Phase phase,
                        MappingKind mapping, int64_t batch,
                        const arch::ArrayConfig &acfg,
                        const SimConfig &scfg, arch::BalanceMode balance)
{
    validateSimConfig(scfg);
    return simulatePhasePiece(
        buildWaves(layer.shape, phase, mapping, batch, acfg, balance,
                   TraceOracle{layer}),
        traceRefillWords(layer, phase, batch), scfg, nullptr);
}

EpochWavePlan
buildEpochWavePlan(const arch::EpochTrace &epoch, MappingKind mapping,
                   const arch::ArrayConfig &acfg,
                   arch::BalanceMode balance)
{
    PROCRUSTES_ASSERT(epoch.batchSize > 0, "epoch has no batch size");
    EpochWavePlan plan;
    plan.batchSize = epoch.batchSize;

    // Execution order of one training iteration: forward through the
    // layers, then backward-data and weight-update per layer walking
    // back — the order the cross-phase drain-overlap chain follows.
    const size_t nl = epoch.layers.size();
    for (size_t l = 0; l < nl; ++l)
        plan.order.push_back({l, Phase::Forward, {}, 0.0});
    for (size_t i = 0; i < nl; ++i) {
        const size_t l = nl - 1 - i;
        plan.order.push_back({l, Phase::Backward, {}, 0.0});
        plan.order.push_back({l, Phase::WeightUpdate, {}, 0.0});
    }

    // Each entry's geometry is a pure function of the epoch's measured
    // facts — build them in parallel; indices fix the order.
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(plan.order.size()),
        [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i) {
                PhaseWavePlan &e = plan.order[static_cast<size_t>(i)];
                const LayerTrace &layer = epoch.layers[e.layerIndex];
                e.waves = buildWaves(layer.shape, e.phase, mapping,
                                     epoch.batchSize, acfg, balance,
                                     TraceOracle{layer});
                e.refillWords =
                    traceRefillWords(layer, e.phase, epoch.batchSize);
            }
        });
    return plan;
}

TraceSimResult
simulateEpochPlan(const EpochWavePlan &plan, const SimConfig &scfg)
{
    validateSimConfig(scfg);
    const size_t n = plan.order.size();
    const int64_t bank_bw =
        static_cast<int64_t>(scfg.glbBanks) * scfg.glbBankPortsPerCycle;
    std::vector<SimResult> piece(n);
    std::vector<PieceLink> link(n);

    // Each (layer, phase) piece is an independent pure function of
    // (plan, scfg): simulate them in parallel, stitch in fixed order.
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(n), [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i) {
                const auto idx = static_cast<size_t>(i);
                piece[idx] = simulatePhasePiece(
                    plan.order[idx].waves, plan.order[idx].refillWords,
                    scfg, &link[idx]);
            }
        });

    TraceSimResult out;
    int64_t tail_words = 0;   // previous piece's staged tail psums
    int64_t tail_flush = 0;   // their flush cycles, already counted
    for (size_t i = 0; i < n; ++i) {
        const PhaseWavePlan &e = plan.order[i];
        SimResult &bucket = e.phase == Phase::Forward
                                ? out.fw
                                : e.phase == Phase::Backward ? out.bw
                                                             : out.wu;
        bucket.accumulate(piece[i]);
        out.total.accumulate(piece[i]);
        if (scfg.doubleBufferOutputs && link[i].hasWaves) {
            // Boundary overlap: the previous piece's tail words hide
            // under this piece's first compute window (its spare GLB
            // write bandwidth, unused inside the piece); the refunded
            // flush cycles are attributed to `total` only — inside a
            // phase bucket the pieces are not adjacent in time.
            const int64_t hidden =
                std::min(tail_words, link[i].headSpareWords);
            const int64_t new_flush =
                ceilDiv(tail_words - hidden, bank_bw);
            const int64_t credit = tail_flush - new_flush;
            out.total.cycles -= credit;
            out.total.overlappedDrainCycles += credit;
            tail_words = link[i].tailWords;
            tail_flush = link[i].tailFlushCycles;
        }
    }
    return out;
}

TraceSimResult
simulateTraceEpoch(const arch::EpochTrace &epoch, MappingKind mapping,
                   const arch::ArrayConfig &acfg, const SimConfig &scfg,
                   arch::BalanceMode balance)
{
    validateSimConfig(scfg);
    return simulateEpochPlan(
        buildEpochWavePlan(epoch, mapping, acfg, balance), scfg);
}

} // namespace sim
} // namespace procrustes
