#include "sim/cycle_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"
#include "arch/load_balancer.h"

namespace procrustes {
namespace sim {

using arch::Dim;
using arch::FlowClass;
using arch::LayerShape;
using arch::LayerSparsityProfile;
using arch::MappingKind;
using arch::Operand;
using arch::Phase;

Channel
channelFor(FlowClass flow)
{
    switch (flow) {
      case FlowClass::MulticastRows:
      case FlowClass::ReduceRows:
        return Channel::RowBus;
      case FlowClass::MulticastCols:
      case FlowClass::ReduceCols:
        return Channel::ColBus;
      case FlowClass::Broadcast:
      case FlowClass::ReduceAll:
        return Channel::Broadcast;
      case FlowClass::Unicast:
        return Channel::UnicastNet;
    }
    PANIC("unknown flow class");
}

namespace {

/** Per-PE progress state during a wave. */
struct PeState
{
    int64_t macsDone = 0;
    int64_t recvA = 0;
    int64_t recvB = 0;
};

/** True if the PE may retire one more MAC this cycle. */
bool
canIssue(const TileDemand &d, const PeState &s)
{
    if (s.macsDone >= d.macs)
        return false;
    // Operand words unlock MACs proportionally: word w of operand A
    // enables MACs up to w * (macs / wordsA).
    if (d.wordsA > 0 && s.macsDone * d.wordsA >= s.recvA * d.macs)
        return false;
    if (d.wordsB > 0 && s.macsDone * d.wordsB >= s.recvB * d.macs)
        return false;
    return true;
}

/** Deliver one multicast word along each row (or column) that wants it. */
void
deliverBus(const WaveSpec &wave, std::vector<PeState> &st, bool operand_a,
           bool row_major)
{
    const int outer = row_major ? wave.rows : wave.cols;
    const int inner = row_major ? wave.cols : wave.rows;
    for (int o = 0; o < outer; ++o) {
        bool any = false;
        for (int i = 0; i < inner; ++i) {
            const int r = row_major ? o : i;
            const int c = row_major ? i : o;
            const auto idx = static_cast<size_t>(r * wave.cols + c);
            const TileDemand &d = wave.tiles[idx];
            const int64_t need = operand_a ? d.wordsA : d.wordsB;
            const int64_t got =
                operand_a ? st[idx].recvA : st[idx].recvB;
            if (got < need) {
                any = true;
                break;
            }
        }
        if (!any)
            continue;
        for (int i = 0; i < inner; ++i) {
            const int r = row_major ? o : i;
            const int c = row_major ? i : o;
            const auto idx = static_cast<size_t>(r * wave.cols + c);
            const TileDemand &d = wave.tiles[idx];
            if (operand_a) {
                if (st[idx].recvA < d.wordsA)
                    ++st[idx].recvA;
            } else {
                if (st[idx].recvB < d.wordsB)
                    ++st[idx].recvB;
            }
        }
    }
}

/** Deliver one broadcast word to every PE that wants it. */
void
deliverBroadcast(const WaveSpec &wave, std::vector<PeState> &st,
                 bool operand_a)
{
    for (size_t idx = 0; idx < wave.tiles.size(); ++idx) {
        const TileDemand &d = wave.tiles[idx];
        if (operand_a) {
            if (st[idx].recvA < d.wordsA)
                ++st[idx].recvA;
        } else {
            if (st[idx].recvB < d.wordsB)
                ++st[idx].recvB;
        }
    }
}

/** Deliver up to `budget` unicast words round-robin; returns cursor. */
size_t
deliverUnicast(const WaveSpec &wave, std::vector<PeState> &st,
               bool operand_a, int budget, size_t cursor)
{
    const size_t n = wave.tiles.size();
    int delivered = 0;
    for (size_t step = 0; step < n && delivered < budget; ++step) {
        const size_t idx = (cursor + step) % n;
        const TileDemand &d = wave.tiles[idx];
        if (operand_a) {
            if (st[idx].recvA < d.wordsA) {
                ++st[idx].recvA;
                ++delivered;
            }
        } else {
            if (st[idx].recvB < d.wordsB) {
                ++st[idx].recvB;
                ++delivered;
            }
        }
    }
    return (cursor + 1) % n;
}

void
deliverChannel(const WaveSpec &wave, std::vector<PeState> &st,
               Channel ch, bool operand_a, const SimConfig &cfg,
               size_t &uni_cursor)
{
    switch (ch) {
      case Channel::RowBus:
        deliverBus(wave, st, operand_a, /*row_major=*/true);
        break;
      case Channel::ColBus:
        deliverBus(wave, st, operand_a, /*row_major=*/false);
        break;
      case Channel::Broadcast:
        deliverBroadcast(wave, st, operand_a);
        break;
      case Channel::UnicastNet:
        uni_cursor = deliverUnicast(wave, st, operand_a,
                                    cfg.unicastWordsPerCycle, uni_cursor);
        break;
    }
}

} // namespace

SimResult
simulateWave(const WaveSpec &wave, const SimConfig &cfg)
{
    PROCRUSTES_ASSERT(
        wave.tiles.size() ==
            static_cast<size_t>(wave.rows) * static_cast<size_t>(wave.cols),
        "tile count mismatch");
    SimResult res;
    std::vector<PeState> st(wave.tiles.size());
    size_t uni_cursor = 0;

    int64_t remaining = 0;
    for (const TileDemand &d : wave.tiles)
        remaining += d.macs;

    while (remaining > 0) {
        PROCRUSTES_ASSERT(res.computeCycles < cfg.maxCycles,
                          "wave exceeded cycle limit");
        // Delivery happens first; a word arriving this cycle can feed
        // a MAC this cycle (single-cycle forwarding).
        deliverChannel(wave, st, wave.channelA, /*operand_a=*/true, cfg,
                       uni_cursor);
        deliverChannel(wave, st, wave.channelB, /*operand_a=*/false, cfg,
                       uni_cursor);

        for (size_t idx = 0; idx < wave.tiles.size(); ++idx) {
            const TileDemand &d = wave.tiles[idx];
            if (st[idx].macsDone >= d.macs)
                continue;
            if (canIssue(d, st[idx])) {
                ++st[idx].macsDone;
                ++res.macsRetired;
                --remaining;
            } else {
                ++res.stallCycles;
            }
        }
        ++res.computeCycles;
    }

    // Drain partial sums through the output channel.
    int64_t psum_words = 0;
    for (const TileDemand &d : wave.tiles)
        psum_words += d.psumWords;
    int64_t drain_bw = 1;
    switch (wave.channelOut) {
      case Channel::RowBus:
        drain_bw = wave.rows;
        break;
      case Channel::ColBus:
        drain_bw = wave.cols;
        break;
      case Channel::Broadcast:
        drain_bw = 1;
        break;
      case Channel::UnicastNet:
        drain_bw = cfg.unicastWordsPerCycle;
        break;
    }
    const int64_t drain = ceilDiv(psum_words, drain_bw);
    res.cycles = res.computeCycles + drain;
    return res;
}

SimResult
simulateLayerPhase(const LayerShape &layer, Phase phase,
                   MappingKind mapping,
                   const LayerSparsityProfile &profile, int64_t batch,
                   const arch::ArrayConfig &acfg, const SimConfig &scfg,
                   arch::BalanceMode balance)
{
    const auto dims = arch::spatialDims(mapping);
    const int64_t a0 = acfg.rows;
    const int64_t a1 = acfg.cols;
    const int64_t ext0 = arch::dimExtent(layer, dims[0], batch);
    const int64_t ext1 = arch::dimExtent(layer, dims[1], batch);
    const double dense_macs =
        static_cast<double>(batch) *
        static_cast<double>(layer.macsPerSample());
    const double per_index =
        dense_macs / static_cast<double>(ext0 * ext1);

    const Operand sp = arch::sparseOperand(phase);
    const Operand out = arch::outputOperand(phase);
    const Operand other = [&] {
        for (Operand op : arch::kAllOperands) {
            if (op != sp && op != out)
                return op;
        }
        PANIC("operand set degenerate");
    }();

    // Per-(d0,d1)-index unique word counts of each operand.
    auto f_idx = [&](Operand op) {
        double f = static_cast<double>(
            arch::operandVolume(layer, op, batch));
        for (int axis = 0; axis < 2; ++axis) {
            if (arch::dependsOn(op, dims[axis]))
                f /= static_cast<double>(
                    arch::dimExtent(layer, dims[axis], batch));
        }
        return f;
    };
    const double fa = f_idx(sp);
    const double fb = f_idx(other);
    const double fo = f_idx(out);

    const bool dep0 = arch::dependsOn(sp, dims[0]);
    const bool dep1 = arch::dependsOn(sp, dims[1]);
    const bool cheap_ok = arch::supportsCheapBalancing(phase, mapping);

    // Weight-sparse both-axes mappings tile multiple kernels per PE
    // (RF-bounded), mirroring CostModel::chunkedWeightWaves.
    const int64_t g =
        (dep0 && dep1 && sp == Operand::Weights)
            ? arch::weightTileChunk(acfg, layer, ext1, a1)
            : 1;
    const int64_t stride1 = a1 * g;
    const bool other_dep1 = arch::dependsOn(other, dims[1]);
    const bool out_dep1 = arch::dependsOn(out, dims[1]);

    WaveSpec wave_template;
    wave_template.rows = acfg.rows;
    wave_template.cols = acfg.cols;
    wave_template.channelA =
        channelFor(arch::classifyFlow(phase, sp, mapping));
    wave_template.channelB =
        channelFor(arch::classifyFlow(phase, other, mapping));
    wave_template.channelOut =
        channelFor(arch::classifyFlow(phase, out, mapping));

    SimResult total;
    for (int64_t b0 = 0; b0 < ext0; b0 += a0) {
        const int64_t n0 = std::min(a0, ext0 - b0);
        for (int64_t b1 = 0; b1 < ext1; b1 += stride1) {
            const int64_t n1 =
                std::min(a1, ceilDiv(ext1 - b1, g));
            WaveSpec wave = wave_template;
            wave.tiles.assign(
                static_cast<size_t>(acfg.rows) * acfg.cols, {});

            // Per-slot effective density along the sparse structure.
            auto density_at = [&](int64_t i, int64_t j) {
                if (!dep0 && !dep1)
                    return sp == Operand::Weights
                               ? profile.weightDensity()
                               : profile.iactDensity();
                if (dep0 && dep1) {
                    if (sp == Operand::Weights) {
                        const int64_t k =
                            dims[0] == Dim::K ? b0 + i : b1 + j;
                        const int64_t c =
                            dims[0] == Dim::K ? b1 + j : b0 + i;
                        return profile.kernelDensity(k, c);
                    }
                    return profile.iactSpatialDensity(b0 + i, b1 + j);
                }
                const Dim d = dep0 ? dims[0] : dims[1];
                const int64_t idx = dep0 ? b0 + i : b1 + j;
                if (sp == Operand::Weights) {
                    return d == Dim::K ? profile.kDensity(idx)
                                       : profile.cDensity(idx);
                }
                return d == Dim::N ? profile.iactSampleDensity(idx)
                                   : profile.iactChannelDensity(idx);
            };

            // Optional half-tile balancing along the sparse axis.
            std::vector<double> balanced;
            if (balance == arch::BalanceMode::HalfTile && cheap_ok &&
                (dep0 != dep1)) {
                const Dim d = dep0 ? dims[0] : dims[1];
                const int64_t base = dep0 ? b0 : b1;
                const int64_t count = dep0 ? n0 : n1;
                std::vector<arch::TileHalves> tiles;
                for (int64_t i = 0; i < count; ++i) {
                    arch::TileHalves h;
                    if (sp == Operand::Weights) {
                        h.first = d == Dim::K
                                      ? profile.kHalfDensity(base + i, 0)
                                      : profile.cHalfDensity(base + i, 0);
                        h.second = d == Dim::K
                                       ? profile.kHalfDensity(base + i, 1)
                                       : profile.cHalfDensity(base + i, 1);
                    } else {
                        h.first =
                            profile.iactSampleHalfDensity(base + i, 0);
                        h.second =
                            profile.iactSampleHalfDensity(base + i, 1);
                    }
                    tiles.push_back(h);
                }
                balanced = arch::rebalanceHalfTiles(tiles);
            }

            for (int64_t i = 0; i < n0; ++i) {
                for (int64_t j = 0; j < n1; ++j) {
                    // Aggregate the PE's kernel chunk (g = 1 unless
                    // weight-sparse on both axes).
                    const int64_t base = b1 + j * g;
                    const int64_t count =
                        std::min(g, ext1 - base);
                    double dens_sum = 0.0;
                    if (!balanced.empty()) {
                        const int64_t slot = dep0 ? i : j;
                        dens_sum = balanced[static_cast<size_t>(slot)];
                    } else if (g == 1) {
                        dens_sum = density_at(i, j);
                    } else {
                        for (int64_t t = 0; t < count; ++t) {
                            dens_sum += profile.kernelDensity(
                                dims[0] == Dim::K ? b0 + i : base + t,
                                dims[0] == Dim::K ? base + t : b0 + i);
                        }
                    }
                    TileDemand d;
                    d.macs = std::max<int64_t>(
                        1, std::llround(per_index * dens_sum));
                    d.wordsA = std::max<int64_t>(
                        1, std::llround(fa * dens_sum));
                    d.wordsB = std::max<int64_t>(
                        1, std::llround(
                               fb * (other_dep1 ? count : 1)));
                    d.psumWords = std::max<int64_t>(
                        1,
                        std::llround(fo * (out_dep1 ? count : 1)));
                    wave.tiles[static_cast<size_t>(i * acfg.cols + j)] =
                        d;
                }
            }

            const SimResult r = simulateWave(wave, scfg);
            total.cycles += r.cycles;
            total.computeCycles += r.computeCycles;
            total.stallCycles += r.stallCycles;
            total.macsRetired += r.macsRetired;
        }
    }
    return total;
}

} // namespace sim
} // namespace procrustes
