/**
 * @file
 * Cycle-level PE-array simulator.
 *
 * The analytic cost model (arch/cost_model.h) assumes each wave runs
 * for exactly its slowest tile's MAC count. This simulator checks that
 * assumption by actually clocking the array: per cycle, the three
 * interconnects of Figure 14 (a horizontal bus per row, a vertical bus
 * per column, and a unicast network) deliver operand words, and each PE
 * retires one MAC when both of its operands have arrived. Stalls from
 * interconnect bandwidth, multicast sharing, and drain time become
 * visible, bounding the analytic model's error (asserted in
 * integration tests).
 */

#ifndef PROCRUSTES_SIM_CYCLE_SIM_H_
#define PROCRUSTES_SIM_CYCLE_SIM_H_

#include <cstdint>
#include <vector>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "arch/dataflow.h"
#include "arch/sparsity_profile.h"

namespace procrustes {
namespace sim {

/** Delivery channel an operand rides on (from its FlowClass). */
enum class Channel
{
    RowBus,      //!< one word/cycle per row, received by the whole row
    ColBus,      //!< one word/cycle per column
    Broadcast,   //!< one word/cycle to the entire array
    UnicastNet,  //!< configurable aggregate words/cycle, per-PE data
};

/** Map a flow class onto a delivery channel. */
Channel channelFor(arch::FlowClass flow);

/** Per-PE demand for one wave. */
struct TileDemand
{
    int64_t macs = 0;        //!< MACs this PE must retire
    int64_t wordsA = 0;      //!< operand-A words it must receive
    int64_t wordsB = 0;      //!< operand-B words it must receive
    int64_t psumWords = 0;   //!< output words drained at wave end
};

/** One wave: demands for every PE slot (row-major, rows x cols). */
struct WaveSpec
{
    int rows = 0;
    int cols = 0;
    Channel channelA = Channel::RowBus;
    Channel channelB = Channel::UnicastNet;
    Channel channelOut = Channel::UnicastNet;
    std::vector<TileDemand> tiles;   //!< size rows*cols; idle PEs zeroed
};

/** Result of simulating one wave (or a sequence). */
struct SimResult
{
    int64_t cycles = 0;        //!< total cycles including drain
    int64_t computeCycles = 0; //!< cycles until the last MAC retired
    int64_t stallCycles = 0;   //!< PE-cycles stalled waiting on operands
    int64_t macsRetired = 0;
};

/** Simulator configuration. */
struct SimConfig
{
    /** Aggregate unicast-network bandwidth (words/cycle). */
    int unicastWordsPerCycle = 16;

    /** Safety limit on simulated cycles per wave. */
    int64_t maxCycles = 200'000'000;
};

/** Clock one wave to completion. */
SimResult simulateWave(const WaveSpec &wave, const SimConfig &cfg);

/**
 * Build the wave sequence for (layer, phase, mapping) from the same
 * sparsity profile the analytic model uses, then simulate every wave.
 * Operand channels follow classifyFlow().
 */
SimResult simulateLayerPhase(const arch::LayerShape &layer,
                             arch::Phase phase, arch::MappingKind mapping,
                             const arch::LayerSparsityProfile &profile,
                             int64_t batch, const arch::ArrayConfig &acfg,
                             const SimConfig &scfg,
                             arch::BalanceMode balance =
                                 arch::BalanceMode::HalfTile);

} // namespace sim
} // namespace procrustes

#endif // PROCRUSTES_SIM_CYCLE_SIM_H_
