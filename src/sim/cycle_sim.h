/**
 * @file
 * Cycle-level PE-array simulator.
 *
 * The analytic cost model (arch/cost_model.h) assumes each wave runs
 * for exactly its slowest tile's MAC count. This simulator checks that
 * assumption by actually clocking the array: per cycle, the three
 * interconnects of Figure 14 (a horizontal bus per row, a vertical bus
 * per column, and a unicast network) deliver operand words, and each PE
 * retires one MAC when both of its operands have arrived. Stalls from
 * interconnect bandwidth, multicast sharing, GLB bank conflicts,
 * operand-queue backpressure, and drain time become visible, bounding
 * the analytic model's error (asserted in integration tests).
 *
 * Two memory-side effects are modelled on top of the interconnects:
 *
 *  Banked GLB.  Every operand word the interconnects move in a cycle
 *  is a GLB read, and every drained partial sum a GLB write. Accesses
 *  interleave over `SimConfig::glbBanks` banks word-round-robin (one
 *  rolling address counter per wave), each bank serving
 *  `glbBankPortsPerCycle` words per cycle. When a cycle's accesses
 *  oversubscribe the banks, the surplus replays in stall cycles
 *  appended to the wave (`SimResult::glbConflictCycles`); each
 *  deferred access also counts in `glbConflicts`, and per-bank
 *  read/write totals land in `glbBankReads` / `glbBankWrites`.
 *
 *  PE operand FIFOs.  Each PE buffers at most `peFifoDepth` words per
 *  operand ahead of consumption (consumption is proportional: word w
 *  of an operand unlocks MACs up to w * macs / words). Deliveries to a
 *  full queue are withheld — the bus does not fire for a line whose
 *  every hungry PE is full — and the withheld PE-operand-cycles are
 *  counted in `fifoBackpressureCycles`.
 *
 * Entry points: simulateWave clocks one explicit WaveSpec;
 * simulateLayerPhase builds waves from the analytic model's synthetic
 * sparsity profile; simulateTraceLayerPhase / simulateTraceEpoch build
 * them from a measured WorkloadTrace epoch (exact epoch-final mask
 * slice counts and measured activation vectors, shared with the
 * imbalance replay in arch/trace_imbalance.h).
 */

#ifndef PROCRUSTES_SIM_CYCLE_SIM_H_
#define PROCRUSTES_SIM_CYCLE_SIM_H_

#include <cstdint>
#include <vector>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "arch/dataflow.h"
#include "arch/sparsity_profile.h"
#include "arch/workload_trace.h"

namespace procrustes {
namespace sim {

/** Delivery channel an operand rides on (from its FlowClass). */
enum class Channel
{
    RowBus,      //!< one word/cycle per row, received by the whole row
    ColBus,      //!< one word/cycle per column
    Broadcast,   //!< one word/cycle to the entire array
    UnicastNet,  //!< configurable aggregate words/cycle, per-PE data
};

/** Map a flow class onto a delivery channel. */
Channel channelFor(arch::FlowClass flow);

/** Per-PE demand for one wave. */
struct TileDemand
{
    int64_t macs = 0;        //!< MACs this PE must retire
    int64_t wordsA = 0;      //!< operand-A words it must receive
    int64_t wordsB = 0;      //!< operand-B words it must receive
    int64_t psumWords = 0;   //!< output words drained at wave end
};

/** One wave: demands for every PE slot (row-major, rows x cols). */
struct WaveSpec
{
    int rows = 0;
    int cols = 0;
    Channel channelA = Channel::RowBus;
    Channel channelB = Channel::UnicastNet;
    Channel channelOut = Channel::UnicastNet;
    std::vector<TileDemand> tiles;   //!< size rows*cols; idle PEs zeroed
};

/**
 * Result of simulating one wave (or a sequence). Additive cycle
 * decomposition: cycles = computeCycles + drainCycles +
 * glbConflictCycles.
 */
struct SimResult
{
    int64_t cycles = 0;        //!< total cycles including drain + stalls
    int64_t computeCycles = 0; //!< cycles until the last MAC retired
    int64_t stallCycles = 0;   //!< PE-cycles stalled waiting on operands
    int64_t macsRetired = 0;

    /** Baseline drain cycles (psum words over the output channel). */
    int64_t drainCycles = 0;

    /** Whole-array stall cycles replaying oversubscribed GLB banks. */
    int64_t glbConflictCycles = 0;

    /** GLB accesses deferred past their issue cycle (bank conflicts). */
    int64_t glbConflicts = 0;

    /** PE-operand-cycles with a delivery withheld by a full queue. */
    int64_t fifoBackpressureCycles = 0;

    /** Per-bank GLB access totals (size SimConfig::glbBanks). */
    std::vector<int64_t> glbBankReads;
    std::vector<int64_t> glbBankWrites;

    /** Accumulate another result (bank vectors resized as needed). */
    void accumulate(const SimResult &o);

    /** Sum over glbBankReads / glbBankWrites. */
    int64_t totalGlbReads() const;
    int64_t totalGlbWrites() const;
};

/** Simulator configuration. */
struct SimConfig
{
    /** Aggregate unicast-network bandwidth (words/cycle), shared
        between both operands when both ride the unicast network. */
    int unicastWordsPerCycle = 16;

    /**
     * GLB banks; word addresses interleave round-robin across them.
     * The default (64) covers the peak per-cycle word demand of the
     * baseline 16x16 array (16 row + 16 col + 16 unicast words), so
     * conflicts appear only for scaled arrays or narrower GLBs.
     */
    int glbBanks = 64;

    /** Words one bank serves per cycle. */
    int glbBankPortsPerCycle = 1;

    /**
     * Per-PE, per-operand queue depth in words (<= 0: unbounded).
     * Deliveries beyond `consumed + depth` words are withheld.
     */
    int peFifoDepth = 8;

    /** Safety limit on simulated cycles per wave. */
    int64_t maxCycles = 200'000'000;
};

/**
 * Share `budget` unicast words round-robin across the slots, starting
 * at `cursor`: each slot with recv[i] < cap[i] receives at most one
 * word per cycle, `budget` is decremented per delivered word, and the
 * returned cursor points one past the LAST slot served — service
 * resumes where it stopped, so under contention every hungry slot is
 * reached before any slot is served twice. (The seed advanced the
 * cursor by one per cycle, systematically re-favouring low indices.)
 * Exposed as the unicast network's scheduling primitive so fairness is
 * directly testable.
 */
size_t unicastRoundRobin(const std::vector<int64_t> &cap,
                         std::vector<int64_t> &recv, int &budget,
                         size_t cursor);

/** Clock one wave to completion. */
SimResult simulateWave(const WaveSpec &wave, const SimConfig &cfg);

/**
 * Build the wave sequence for (layer, phase, mapping) from the same
 * sparsity profile the analytic model uses, then simulate every wave.
 * Operand channels follow classifyFlow(). Slots whose sparse-operand
 * density is zero (fully pruned slices/chunks) carry zero demand: they
 * retire no phantom MACs, drain no phantom psums, and are excluded
 * from stall accounting.
 */
SimResult simulateLayerPhase(const arch::LayerShape &layer,
                             arch::Phase phase, arch::MappingKind mapping,
                             const arch::LayerSparsityProfile &profile,
                             int64_t batch, const arch::ArrayConfig &acfg,
                             const SimConfig &scfg,
                             arch::BalanceMode balance =
                                 arch::BalanceMode::HalfTile);

/**
 * Trace-driven variant of simulateLayerPhase: identical wave geometry
 * (tiling, channels, RF chunking, half-tile balancing), but per-tile
 * work comes from the measured epoch facts — exact epoch-final mask
 * slice counts (SparsityMask::tileNnz / blockNnz via
 * arch::measuredSliceWork / measuredPairWork) for weight-sparse
 * phases, measured per-sample / per-channel / spatial activation
 * vectors for the weight-update phase — instead of the profile's
 * density scalars.
 */
SimResult simulateTraceLayerPhase(const arch::LayerTrace &layer,
                                  arch::Phase phase,
                                  arch::MappingKind mapping, int64_t batch,
                                  const arch::ArrayConfig &acfg,
                                  const SimConfig &scfg,
                                  arch::BalanceMode balance =
                                      arch::BalanceMode::HalfTile);

/** Cycle-level account of one traced epoch (one training iteration). */
struct TraceSimResult
{
    SimResult total;   //!< all layers, all three phases
    SimResult fw;      //!< forward
    SimResult bw;      //!< backward (data gradients)
    SimResult wu;      //!< weight update

    /**
     * Analytic compute latency of the same epoch
     * (NetworkCost::total().computeCycles) and total.cycles divided by
     * it — filled by Accelerator::evaluateTrace when it co-runs both
     * models, negative when simulated stand-alone.
     */
    double analyticComputeCycles = -1.0;
    double analyticCycleRatio = -1.0;
};

/**
 * Simulate every layer of a traced epoch across all three training
 * phases at the trace's own batch size — one training iteration, the
 * same unit the analytic evaluateTrace reports. Deterministic: depends
 * only on the epoch's measured facts, never on thread count.
 */
TraceSimResult simulateTraceEpoch(const arch::EpochTrace &epoch,
                                  arch::MappingKind mapping,
                                  const arch::ArrayConfig &acfg,
                                  const SimConfig &scfg,
                                  arch::BalanceMode balance =
                                      arch::BalanceMode::HalfTile);

} // namespace sim
} // namespace procrustes

#endif // PROCRUSTES_SIM_CYCLE_SIM_H_
