/**
 * @file
 * Cycle-level PE-array simulator.
 *
 * The analytic cost model (arch/cost_model.h) assumes each wave runs
 * for exactly its slowest tile's MAC count. This simulator checks that
 * assumption by actually clocking the array: per cycle, the three
 * interconnects of Figure 14 (a horizontal bus per row, a vertical bus
 * per column, and a unicast network) deliver operand words, and each PE
 * retires one MAC when both of its operands have arrived. Stalls from
 * interconnect bandwidth, multicast sharing, GLB bank conflicts,
 * operand-queue backpressure, and drain time become visible, bounding
 * the analytic model's error (asserted in integration tests).
 *
 * Memory-side effects modelled on top of the interconnects:
 *
 *  Banked GLB.  Every operand word the interconnects move in a cycle
 *  is a GLB read, and every drained partial sum a GLB write. Accesses
 *  interleave over `SimConfig::glbBanks` banks word-round-robin (one
 *  rolling address counter per wave), each bank serving
 *  `glbBankPortsPerCycle` words per cycle. When a cycle's accesses
 *  oversubscribe the banks, the surplus replays in stall cycles
 *  appended to the wave (`SimResult::glbConflictCycles`); each
 *  deferred access also counts in `glbConflicts`, and per-bank
 *  read/write totals land in `glbBankReads` / `glbBankWrites`.
 *
 *  PE operand FIFOs.  Each PE buffers at most `peFifoDepth` words per
 *  operand ahead of consumption (consumption is proportional: word w
 *  of an operand unlocks MACs up to w * macs / words). Deliveries to a
 *  full queue are withheld — the bus does not fire for a line whose
 *  every hungry PE is full — and the withheld PE-operand-cycles are
 *  counted in `fifoBackpressureCycles`.
 *
 *  Double-buffered psum drain (`SimConfig::doubleBufferOutputs`).
 *  With a single psum buffer the array sits idle while a wave's
 *  partial sums stream out over the output channel — drain is
 *  density-independent, so it dominates at high sparsity. With a
 *  second buffer, wave N's psums swap into a staging buffer at wave
 *  end and stream into the GLB while wave N+1 fills and computes. The
 *  staged writes go through the GLB's own write machinery, so the
 *  drain stops being output-channel-bound and becomes bank-bound: in
 *  each compute window the staged words consume the write bandwidth
 *  the window leaves spare (banks x ports x cycles minus the window's
 *  operand reads — reads have priority, so the overlap never slows
 *  the fill), and words still pending when the window closes flush at
 *  the full aggregate bank bandwidth before the next swap. The cycles
 *  saved versus serial drain land in
 *  `SimResult::overlappedDrainCycles`. The second buffer's GLB write
 *  traffic still flows through the banked-GLB conflict accounting —
 *  writes are charged to banks exactly as in serial mode, so the
 *  per-bank traffic image is identical in both modes and only the
 *  timing differs. A narrow GLB therefore throttles the overlap
 *  twice: little spare bandwidth during compute, and a slow flush.
 *
 *  DRAM->GLB refill (`SimConfig::dramWordsPerCycle`).  When positive,
 *  a refill front end charges the cycles needed to stream each traced
 *  (layer, phase)'s working set from DRAM into the GLB at this rate —
 *  from the *measured* byte counts (compressed weight image
 *  `LayerTrace::csbWeightBytes`, activation volumes scaled by the
 *  measured densities), so TraceSimResult prices end-to-end traffic,
 *  not just bank contention. Refill is double-buffered against
 *  compute: only the demand exceeding the phase's array-busy window is
 *  exposed (`dramStallCycles`); the full demand is reported in
 *  `dramRefillCycles`. Only the trace-driven entry points model
 *  refill (the profile path has no measured bytes).
 *
 * Cycle accounting contract: for every result,
 *
 *   cycles = computeCycles + drainCycles + glbConflictCycles
 *            - overlappedDrainCycles + dramStallCycles.
 *
 * In serial mode with refill off (the defaults) the last two terms
 * are zero and the decomposition is the historical additive identity
 * `cycles = compute + drain + glb_conflict`. With double buffering
 * the identity over the first three terms becomes an inequality
 * (cycles <= compute + drain + glb_conflict): the slack is exactly
 * `overlappedDrainCycles`. With refill on, cycles additionally grow
 * by the exposed (non-overlapped) refill stall.
 *
 * Entry points: simulateWave clocks one explicit WaveSpec;
 * simulateWaveSequence chains a sequence (with drain overlap when
 * enabled); simulateLayerPhase builds waves from the analytic model's
 * synthetic sparsity profile; simulateTraceLayerPhase /
 * simulateTraceEpoch build them from a measured WorkloadTrace epoch
 * (exact epoch-final mask slice counts and measured activation
 * vectors, shared with the imbalance replay in
 * arch/trace_imbalance.h). buildEpochWavePlan / simulateEpochPlan
 * split the epoch replay into its SimConfig-independent geometry and
 * the per-config clocking, so knob sweeps over one measured epoch
 * (bench_dataflow) build the waves once.
 */

#ifndef PROCRUSTES_SIM_CYCLE_SIM_H_
#define PROCRUSTES_SIM_CYCLE_SIM_H_

#include <cstdint>
#include <vector>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "arch/dataflow.h"
#include "arch/sparsity_profile.h"
#include "arch/workload_trace.h"

namespace procrustes {
namespace sim {

/** Delivery channel an operand rides on (from its FlowClass). */
enum class Channel
{
    RowBus,      //!< one word/cycle per row, received by the whole row
    ColBus,      //!< one word/cycle per column
    Broadcast,   //!< one word/cycle to the entire array
    UnicastNet,  //!< configurable aggregate words/cycle, per-PE data
};

/** Map a flow class onto a delivery channel. */
Channel channelFor(arch::FlowClass flow);

/** Per-PE demand for one wave. */
struct TileDemand
{
    int64_t macs = 0;        //!< MACs this PE must retire
    int64_t wordsA = 0;      //!< operand-A words it must receive
    int64_t wordsB = 0;      //!< operand-B words it must receive
    int64_t psumWords = 0;   //!< output words drained at wave end
};

/** One wave: demands for every PE slot (row-major, rows x cols). */
struct WaveSpec
{
    int rows = 0;
    int cols = 0;
    Channel channelA = Channel::RowBus;
    Channel channelB = Channel::UnicastNet;
    Channel channelOut = Channel::UnicastNet;
    std::vector<TileDemand> tiles;   //!< size rows*cols; idle PEs zeroed
};

/**
 * Result of simulating one wave (or a sequence/epoch). See the file
 * header for the cycle accounting contract: cycles = compute + drain
 * + glb_conflict - overlapped_drain + dram_stall, which collapses to
 * the additive compute + drain + glb_conflict identity in serial
 * mode with refill off.
 */
struct SimResult
{
    int64_t cycles = 0;        //!< total cycles including drain + stalls
    int64_t computeCycles = 0; //!< cycles until the last MAC retired
    int64_t stallCycles = 0;   //!< PE-cycles stalled waiting on operands
    int64_t macsRetired = 0;

    /** Baseline drain cycles (psum words over the output channel). */
    int64_t drainCycles = 0;

    /**
     * Cycles the second psum buffer saves versus serial drain
     * (doubleBufferOutputs): staged words hidden in the next compute
     * window's spare GLB write bandwidth, plus the speedup of flushing
     * leftovers at aggregate bank bandwidth instead of the output
     * channel. Zero in serial mode; never exceeds drainCycles +
     * glbConflictCycles, and never negative (double-buffered never
     * clocks slower than serial on the same waves).
     */
    int64_t overlappedDrainCycles = 0;

    /** Whole-array stall cycles replaying oversubscribed GLB banks. */
    int64_t glbConflictCycles = 0;

    /** GLB accesses deferred past their issue cycle (bank conflicts). */
    int64_t glbConflicts = 0;

    /** PE-operand-cycles with a delivery withheld by a full queue. */
    int64_t fifoBackpressureCycles = 0;

    /**
     * Total DRAM->GLB refill demand in cycles (measured bytes over
     * SimConfig::dramWordsPerCycle); zero when refill is off.
     */
    int64_t dramRefillCycles = 0;

    /**
     * Refill cycles not hidden under the array-busy window (the
     * double-buffered GLB exposes only the excess); included in
     * `cycles`. Never exceeds dramRefillCycles.
     */
    int64_t dramStallCycles = 0;

    /** Per-bank GLB access totals (size SimConfig::glbBanks). */
    std::vector<int64_t> glbBankReads;
    std::vector<int64_t> glbBankWrites;

    /** Accumulate another result (bank vectors resized as needed). */
    void accumulate(const SimResult &o);

    /** Sum over glbBankReads / glbBankWrites. */
    int64_t totalGlbReads() const;
    int64_t totalGlbWrites() const;
};

/** Simulator configuration. */
struct SimConfig
{
    /** Aggregate unicast-network bandwidth (words/cycle), shared
        between both operands when both ride the unicast network. */
    int unicastWordsPerCycle = 16;

    /**
     * GLB banks; word addresses interleave round-robin across them.
     * The default (64) covers the peak per-cycle word demand of the
     * baseline 16x16 array (16 row + 16 col + 16 unicast words), so
     * conflicts appear only for scaled arrays or narrower GLBs.
     */
    int glbBanks = 64;

    /** Words one bank serves per cycle. */
    int glbBankPortsPerCycle = 1;

    /**
     * Per-PE, per-operand queue depth in words (<= 0: unbounded).
     * Deliveries beyond `consumed + depth` words are withheld.
     */
    int peFifoDepth = 8;

    /**
     * Double-buffered partial-sum outputs: wave N's psums stage into a
     * second buffer and stream to the GLB through the spare banked
     * write bandwidth of wave N+1's fill/compute window (see file
     * header). Off by default: drain is serial over the output
     * channel, preserving the additive decomposition.
     */
    bool doubleBufferOutputs = false;

    /**
     * DRAM->GLB refill bandwidth in words/cycle for the trace-driven
     * entry points; <= 0 (default) disables the refill front end. The
     * paper's 64-bit interface at one transfer per cycle is 2.0
     * 32-bit words/cycle (ArrayConfig::dramWordsPerCycle()).
     */
    double dramWordsPerCycle = 0.0;

    /** Safety limit on simulated cycles per wave. */
    int64_t maxCycles = 200'000'000;
};

/**
 * Validate a SimConfig at an entry point: rejects non-positive
 * `unicastWordsPerCycle` / `glbBanks` / `glbBankPortsPerCycle` /
 * `maxCycles` (silent div-by-zero or a spin otherwise) with a clear
 * FATAL error. `peFifoDepth <= 0` (unbounded) and
 * `dramWordsPerCycle <= 0` (refill off) are valid by design.
 */
void validateSimConfig(const SimConfig &cfg);

/**
 * Share `budget` unicast words round-robin across the slots, starting
 * at `cursor`: each slot with recv[i] < cap[i] receives at most one
 * word per cycle, `budget` is decremented per delivered word, and the
 * returned cursor points one past the LAST slot served — service
 * resumes where it stopped, so under contention every hungry slot is
 * reached before any slot is served twice. (The seed advanced the
 * cursor by one per cycle, systematically re-favouring low indices.)
 * Exposed as the unicast network's scheduling primitive so fairness is
 * directly testable.
 */
size_t unicastRoundRobin(const std::vector<int64_t> &cap,
                         std::vector<int64_t> &recv, int &budget,
                         size_t cursor);

/** Clock one wave to completion (serial drain: a single wave has no
    successor to overlap with). */
SimResult simulateWave(const WaveSpec &wave, const SimConfig &cfg);

/**
 * Clock a sequence of waves in order. With
 * `cfg.doubleBufferOutputs`, each wave's drain overlaps the next
 * wave's fill/compute (two-psum-buffer pipeline; the hidden cycles
 * land in overlappedDrainCycles); otherwise the waves run serially
 * and results simply accumulate.
 */
SimResult simulateWaveSequence(const std::vector<WaveSpec> &waves,
                               const SimConfig &cfg);

/**
 * Build the wave sequence for (layer, phase, mapping) from the same
 * sparsity profile the analytic model uses, then simulate every wave
 * (drain-overlapped when cfg.doubleBufferOutputs). Operand channels
 * follow classifyFlow(). Slots whose sparse-operand density is zero
 * (fully pruned slices/chunks) carry zero demand: they retire no
 * phantom MACs, drain no phantom psums, and are excluded from stall
 * accounting. No DRAM refill: the profile path has no measured bytes.
 */
SimResult simulateLayerPhase(const arch::LayerShape &layer,
                             arch::Phase phase, arch::MappingKind mapping,
                             const arch::LayerSparsityProfile &profile,
                             int64_t batch, const arch::ArrayConfig &acfg,
                             const SimConfig &scfg,
                             arch::BalanceMode balance =
                                 arch::BalanceMode::HalfTile);

/**
 * Trace-driven variant of simulateLayerPhase: identical wave geometry
 * (tiling, channels, RF chunking, half-tile balancing), but per-tile
 * work comes from the measured epoch facts — exact epoch-final mask
 * slice counts (SparsityMask::tileNnz / blockNnz via
 * arch::measuredSliceWork / measuredPairWork) for weight-sparse
 * phases, measured per-sample / per-channel / spatial activation
 * vectors for the weight-update phase — instead of the profile's
 * density scalars. When cfg.dramWordsPerCycle > 0 the phase is also
 * charged its DRAM->GLB refill from the layer's measured bytes.
 */
SimResult simulateTraceLayerPhase(const arch::LayerTrace &layer,
                                  arch::Phase phase,
                                  arch::MappingKind mapping, int64_t batch,
                                  const arch::ArrayConfig &acfg,
                                  const SimConfig &scfg,
                                  arch::BalanceMode balance =
                                      arch::BalanceMode::HalfTile);

/**
 * DRAM->GLB refill demand of one traced (layer, phase) in 32-bit
 * words, from the measured facts: the compressed weight image
 * (LayerTrace::csbWeightBytes — falls back to the mask-density
 * estimate when a trace predates byte telemetry) plus dense/compressed
 * activation volumes scaled by the measured input density, mirroring
 * the per-phase structure of CostModel::dramWords for the sparse
 * machine.
 */
double traceRefillWords(const arch::LayerTrace &layer, arch::Phase phase,
                        int64_t batch);

/**
 * SimConfig-independent wave geometry of one traced (layer, phase):
 * the exact WaveSpec sequence simulateTraceLayerPhase would clock,
 * plus the phase's DRAM refill word demand. Building this is the
 * expensive part of a trace replay (mask slice queries, balancing);
 * it depends only on the epoch's measured facts, the mapping, the
 * array geometry, and the balance mode — never on SimConfig — so
 * knob sweeps build it once and re-clock it per configuration.
 */
struct PhaseWavePlan
{
    size_t layerIndex = 0;
    arch::Phase phase = arch::Phase::Forward;
    std::vector<WaveSpec> waves;
    double refillWords = 0.0;   //!< DRAM->GLB demand (32-bit words)
};

/** Wave geometry of a whole traced epoch, in execution order:
    forward through the layers, then backward-data and weight-update
    per layer in reverse — the order the drain-overlap chain follows. */
struct EpochWavePlan
{
    int64_t batchSize = 0;
    std::vector<PhaseWavePlan> order;
};

/** Build the epoch's wave geometry once (parallel over (layer, phase)
    via the shared ThreadPool; bitwise thread-count-invariant). */
EpochWavePlan buildEpochWavePlan(const arch::EpochTrace &epoch,
                                 arch::MappingKind mapping,
                                 const arch::ArrayConfig &acfg,
                                 arch::BalanceMode balance =
                                     arch::BalanceMode::HalfTile);

/** Cycle-level account of one traced epoch (one training iteration). */
struct TraceSimResult
{
    SimResult total;   //!< all layers, all three phases
    SimResult fw;      //!< forward
    SimResult bw;      //!< backward (data gradients)
    SimResult wu;      //!< weight update

    /**
     * Analytic compute latency of the same epoch
     * (NetworkCost::total().computeCycles) — filled by
     * Accelerator::evaluateTrace when it co-runs both models,
     * negative when simulated stand-alone.
     */
    double analyticComputeCycles = -1.0;

    /**
     * Analytic reference the simulated total is compared against:
     * equal to analyticComputeCycles when the co-run's SimConfig
     * models no refill, otherwise the per-(layer, phase) overlap-aware
     * refill bound max(compute, dram_words / dramWordsPerCycle) summed
     * over the epoch — the CostModel mirror of the simulator's refill
     * front end, so the ratio stays meaningful when the simulator
     * prices end-to-end traffic.
     */
    double analyticRefCycles = -1.0;

    /** total.cycles / analyticRefCycles (negative stand-alone). */
    double analyticCycleRatio = -1.0;
};

/**
 * Simulate every layer of a traced epoch across all three training
 * phases at the trace's own batch size — one training iteration, the
 * same unit the analytic evaluateTrace reports. Equivalent to
 * buildEpochWavePlan + simulateEpochPlan. Deterministic: depends only
 * on the epoch's measured facts, never on thread count (the
 * (layer, phase) pieces simulate in parallel on the shared ThreadPool
 * and accumulate in fixed execution order).
 */
TraceSimResult simulateTraceEpoch(const arch::EpochTrace &epoch,
                                  arch::MappingKind mapping,
                                  const arch::ArrayConfig &acfg,
                                  const SimConfig &scfg,
                                  arch::BalanceMode balance =
                                      arch::BalanceMode::HalfTile);

/**
 * Clock a prebuilt epoch plan under one SimConfig. With
 * doubleBufferOutputs the drain-overlap chain runs across the whole
 * execution order — wave N's drain hides under wave N+1's
 * fill/compute even across layer and phase boundaries (the pipelined
 * dataflow the paper's Figures 18-19 assume); cross-boundary hidden
 * cycles are attributed to `total` only, so with overlap on
 * total.cycles <= fw.cycles + bw.cycles + wu.cycles (equality holds
 * in serial mode).
 */
TraceSimResult simulateEpochPlan(const EpochWavePlan &plan,
                                 const SimConfig &scfg);

} // namespace sim
} // namespace procrustes

#endif // PROCRUSTES_SIM_CYCLE_SIM_H_
