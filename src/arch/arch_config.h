/**
 * @file
 * Hardware configuration and per-access energy table.
 *
 * Geometry follows Table I of the paper: a 16x16 PE array with 32-bit
 * floating-point MACs, 1 KB register file per PE, a 128 KB shared
 * global buffer, and a 64-bit DRAM interface (Figure 14). The paper's
 * scalability study (Figure 20) quadruples the PE count and scales the
 * GLB by sqrt(2) per doubling of array side.
 *
 * Energy constants substitute for Accelergy's 40/45 nm library (not
 * redistributable): the FP32 MAC and RF figures are derived from the
 * paper's own Table III synthesis powers (FreePDK 45 nm, ~1 GHz), and
 * the SRAM/DRAM per-word costs are standard literature values of the
 * same vintage. Absolute joules therefore differ from the paper's
 * testbed, but every conclusion drawn from them is a ratio (sparse vs
 * dense, mapping vs mapping), which the ratios of these constants
 * preserve. See DESIGN.md §4.
 */

#ifndef PROCRUSTES_ARCH_ARCH_CONFIG_H_
#define PROCRUSTES_ARCH_ARCH_CONFIG_H_

#include <cstdint>

namespace procrustes {
namespace arch {

/** PE-array geometry and memory-hierarchy energy model. */
struct ArrayConfig
{
    int rows = 16;                  //!< PE rows
    int cols = 16;                  //!< PE columns
    int64_t rfBytesPerPe = 1024;    //!< per-PE register file
    int64_t glbBytes = 128 * 1024;  //!< shared global buffer
    int64_t dramBitsPerCycle = 64;  //!< off-chip interface width

    /** FP32 multiply-accumulate energy (pJ). */
    double macPj = 16.8;

    /** Register-file access energy (pJ / 32-bit word). */
    double rfAccessPj = 5.2;

    /** RF accesses charged per MAC (operand + psum traffic). */
    double rfAccessesPerMac = 2.0;

    /** Global-buffer access energy (pJ / 32-bit word). */
    double glbAccessPj = 12.0;

    /** DRAM access energy (pJ / 32-bit word). */
    double dramAccessPj = 160.0;

    /** Total PE count. */
    int64_t pes() const { return static_cast<int64_t>(rows) * cols; }

    /** DRAM words transferable per cycle. */
    double
    dramWordsPerCycle() const
    {
        return static_cast<double>(dramBitsPerCycle) / 32.0;
    }

    /** The paper's baseline 16x16 configuration. */
    static ArrayConfig baseline16() { return {}; }

    /**
     * The 32x32 scalability configuration of Figure 20: 4x the PEs,
     * GLB doubled over the 256-core size (a factor of sqrt(2) per
     * array-side doubling).
     */
    static ArrayConfig
    scaled32()
    {
        ArrayConfig c;
        c.rows = 32;
        c.cols = 32;
        c.glbBytes = 256 * 1024;
        return c;
    }
};

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_ARCH_CONFIG_H_
