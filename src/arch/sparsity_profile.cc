#include "arch/sparsity_profile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/rng.h"

namespace procrustes {
namespace arch {

LayerSparsityProfile::LayerSparsityProfile(
    const sparse::SparsityMask &mask, double iact_density,
    double iact_sigma, uint64_t seed)
    : iactDensity_(iact_density),
      iactSigma_(iact_sigma),
      seed_(seed),
      maskK_(mask.K),
      maskC_(mask.C),
      kernelElems_(mask.R * mask.S)
{
    PROCRUSTES_ASSERT(iact_density > 0.0 && iact_density <= 1.0,
                      "iact density out of range");
    kernelNnz_.resize(static_cast<size_t>(maskK_ * maskC_));
    kNnz_.assign(static_cast<size_t>(maskK_), 0);
    kHalfNnz_.assign(static_cast<size_t>(maskK_) * 2, 0);
    cNnz_.assign(static_cast<size_t>(maskC_), 0);
    cHalfNnz_.assign(static_cast<size_t>(maskC_) * 2, 0);

    const int64_t c_split = maskC_ / 2;
    const int64_t k_split = maskK_ / 2;
    int64_t total = 0;
    for (int64_t k = 0; k < maskK_; ++k) {
        for (int64_t c = 0; c < maskC_; ++c) {
            const auto nnz =
                static_cast<int32_t>(mask.blockNnz(k, c));
            kernelNnz_[static_cast<size_t>(k * maskC_ + c)] = nnz;
            kNnz_[static_cast<size_t>(k)] += nnz;
            kHalfNnz_[static_cast<size_t>(k * 2 +
                                          (c >= c_split ? 1 : 0))] += nnz;
            cNnz_[static_cast<size_t>(c)] += nnz;
            cHalfNnz_[static_cast<size_t>(c * 2 +
                                          (k >= k_split ? 1 : 0))] += nnz;
            total += nnz;
        }
    }
    weightDensity_ =
        static_cast<double>(total) /
        static_cast<double>(maskK_ * maskC_ * kernelElems_);
}

LayerSparsityProfile
LayerSparsityProfile::measured(const sparse::SparsityMask &mask,
                               const MeasuredIactStats &iacts,
                               int64_t stride)
{
    // Measured densities can legitimately be tiny (a dead layer) or
    // exactly 1.0; clamp into the range the model arithmetic accepts
    // rather than asserting like the synthetic constructors do.
    LayerSparsityProfile p(mask, clampd(iacts.mean, 0.01, 1.0),
                           /*iact_sigma=*/0.0);
    p.measured_ = true;
    p.measSample_ = iacts.perSample;
    p.measSampleHalf_ = iacts.perSampleHalf;
    p.measChannel_ = iacts.perChannel;
    p.measRow_ = iacts.perRow;
    p.measCol_ = iacts.perCol;
    p.measStride_ = stride > 0 ? stride : 1;
    for (double &d : p.measSample_)
        d = clampd(d, 0.01, 1.0);
    // A half may carry nearly all of its sample's non-zeros, so its
    // ceiling is the full sample density, not 0.5.
    for (double &d : p.measSampleHalf_)
        d = clampd(d, 0.005, 1.0);
    for (double &d : p.measChannel_)
        d = clampd(d, 0.01, 1.0);
    for (double &d : p.measRow_)
        d = clampd(d, 0.01, 1.0);
    for (double &d : p.measCol_)
        d = clampd(d, 0.01, 1.0);
    return p;
}

LayerSparsityProfile
LayerSparsityProfile::uniform(double weight_density, double iact_density)
{
    LayerSparsityProfile p;
    PROCRUSTES_ASSERT(weight_density > 0.0 && weight_density <= 1.0,
                      "weight density out of range");
    PROCRUSTES_ASSERT(iact_density > 0.0 && iact_density <= 1.0,
                      "iact density out of range");
    p.weightDensity_ = weight_density;
    p.iactDensity_ = iact_density;
    return p;
}

double
LayerSparsityProfile::kDensity(int64_t k) const
{
    if (!hasMask())
        return weightDensity_;
    PROCRUSTES_ASSERT(k >= 0 && k < maskK_, "k out of range");
    return static_cast<double>(kNnz_[static_cast<size_t>(k)]) /
           static_cast<double>(maskC_ * kernelElems_);
}

double
LayerSparsityProfile::kHalfDensity(int64_t k, int h) const
{
    if (!hasMask())
        return weightDensity_ / 2.0;
    PROCRUSTES_ASSERT(k >= 0 && k < maskK_ && (h == 0 || h == 1),
                      "half index out of range");
    // A single-input-channel slice (depthwise) has no C split; the
    // balancer cuts the kernel itself along R instead, which we model
    // as an even split.
    if (maskC_ == 1)
        return kDensity(k) / 2.0;
    // Half-densities are normalized to the *full* slice so the two
    // halves sum to kDensity(k).
    return static_cast<double>(
               kHalfNnz_[static_cast<size_t>(k * 2 + h)]) /
           static_cast<double>(maskC_ * kernelElems_);
}

double
LayerSparsityProfile::cDensity(int64_t c) const
{
    if (!hasMask())
        return weightDensity_;
    PROCRUSTES_ASSERT(c >= 0 && c < maskC_, "c out of range");
    return static_cast<double>(cNnz_[static_cast<size_t>(c)]) /
           static_cast<double>(maskK_ * kernelElems_);
}

double
LayerSparsityProfile::cHalfDensity(int64_t c, int h) const
{
    if (!hasMask())
        return weightDensity_ / 2.0;
    PROCRUSTES_ASSERT(c >= 0 && c < maskC_ && (h == 0 || h == 1),
                      "half index out of range");
    if (maskK_ == 1)
        return cDensity(c) / 2.0;
    return static_cast<double>(
               cHalfNnz_[static_cast<size_t>(c * 2 + h)]) /
           static_cast<double>(maskK_ * kernelElems_);
}

double
LayerSparsityProfile::kernelDensity(int64_t k, int64_t c) const
{
    if (!hasMask())
        return weightDensity_;
    PROCRUSTES_ASSERT(k >= 0 && k < maskK_ && c >= 0 && c < maskC_,
                      "kernel index out of range");
    return static_cast<double>(
               kernelNnz_[static_cast<size_t>(k * maskC_ + c)]) /
           static_cast<double>(kernelElems_);
}

double
LayerSparsityProfile::jitter(uint64_t a, uint64_t b) const
{
    // Deterministic standard-normal-ish value in [-2, 2] from a hash:
    // the sum of four uniform draws (CLT), cheap and reproducible.
    const uint64_t h = splitmix64(seed_ ^ splitmix64(a * 0x9e37 + b));
    double acc = 0.0;
    for (int i = 0; i < 4; ++i) {
        const auto bits =
            static_cast<uint32_t>(h >> (i * 16)) & 0xffffu;
        acc += static_cast<double>(bits) / 65535.0 - 0.5;
    }
    return acc * 2.0;   // std ~= 0.58, bounded by +-4
}

double
LayerSparsityProfile::iactSampleDensity(int64_t n) const
{
    if (measured_ && !measSample_.empty()) {
        // Wrap: a profile measured at batch B still answers queries at
        // other batch sizes with a representative measured sample.
        return measSample_[static_cast<size_t>(n) % measSample_.size()];
    }
    return clampd(iactDensity_ *
                      (1.0 + iactSigma_ *
                                 jitter(static_cast<uint64_t>(n), 1)),
                  0.02, 1.0);
}

double
LayerSparsityProfile::iactSampleHalfDensity(int64_t n, int h) const
{
    if (measured_ && !measSampleHalf_.empty()) {
        const size_t idx =
            (static_cast<size_t>(n) % (measSampleHalf_.size() / 2)) * 2 +
            static_cast<size_t>(h);
        return measSampleHalf_[idx];
    }
    const double base = iactSampleDensity(n) / 2.0;
    if (measured_)
        return base;   // measured mean, no synthetic half-asymmetry
    return clampd(base * (1.0 + iactSigma_ *
                                    jitter(static_cast<uint64_t>(n),
                                           2 + static_cast<uint64_t>(h))),
                  0.01, 0.5);
}

double
LayerSparsityProfile::iactChannelDensity(int64_t c) const
{
    if (measured_ && !measChannel_.empty())
        return measChannel_[static_cast<size_t>(c) % measChannel_.size()];
    return clampd(iactDensity_ *
                      (1.0 + iactSigma_ *
                                 jitter(static_cast<uint64_t>(c), 11)),
                  0.02, 1.0);
}

double
LayerSparsityProfile::iactChannelHalfDensity(int64_t c, int h) const
{
    const double base = iactChannelDensity(c) / 2.0;
    if (measured_)
        return base;   // no measured sub-channel split; assume even
    return clampd(base * (1.0 + iactSigma_ *
                                    jitter(static_cast<uint64_t>(c),
                                           13 + static_cast<uint64_t>(h))),
                  0.01, 0.5);
}

double
LayerSparsityProfile::iactSpatialDensity(int64_t p, int64_t q) const
{
    if (measured_) {
        // Answer from the measured input-space marginals when the
        // trace carried them (rank-4 layers): ratio-combine the row
        // and column densities of the input location feeding output
        // (p, q), so the mean stays near the layer mean.
        if (!measRow_.empty() && !measCol_.empty()) {
            const auto at = [this](const std::vector<double> &m,
                                   int64_t idx) {
                const int64_t last =
                    static_cast<int64_t>(m.size()) - 1;
                return m[static_cast<size_t>(
                    std::min(idx * measStride_, last))];
            };
            const double combined = at(measRow_, p) * at(measCol_, q) /
                                    std::max(iactDensity_, 1e-9);
            return clampd(combined, 0.02, 1.0);
        }
        return clampd(iactDensity_, 0.02, 1.0);
    }
    return clampd(iactDensity_ *
                      (1.0 + iactSigma_ *
                                 jitter(static_cast<uint64_t>(p) * 131,
                                        static_cast<uint64_t>(q) + 29)),
                  0.02, 1.0);
}

} // namespace arch
} // namespace procrustes
