#include "arch/dataflow.h"

#include "common/logging.h"

namespace procrustes {
namespace arch {

std::string
mappingName(MappingKind m)
{
    switch (m) {
      case MappingKind::CK:
        return "CK";
      case MappingKind::KN:
        return "KN";
      case MappingKind::CN:
        return "CN";
      case MappingKind::PQ:
        return "PQ";
    }
    PANIC("unknown mapping");
}

std::array<Dim, 2>
spatialDims(MappingKind m)
{
    switch (m) {
      case MappingKind::CK:
        return {Dim::C, Dim::K};
      case MappingKind::KN:
        return {Dim::K, Dim::N};
      case MappingKind::CN:
        return {Dim::C, Dim::N};
      case MappingKind::PQ:
        return {Dim::P, Dim::Q};
    }
    PANIC("unknown mapping");
}

std::string
flowClassName(FlowClass f)
{
    switch (f) {
      case FlowClass::Broadcast:
        return "broadcast";
      case FlowClass::MulticastRows:
        return "multicast-H";
      case FlowClass::MulticastCols:
        return "multicast-V";
      case FlowClass::ReduceRows:
        return "reduce-H";
      case FlowClass::ReduceCols:
        return "reduce-V";
      case FlowClass::ReduceAll:
        return "reduce-all";
      case FlowClass::Unicast:
        return "unicast";
    }
    PANIC("unknown flow class");
}

FlowClass
classifyFlow(Phase phase, Operand op, MappingKind m)
{
    const auto dims = spatialDims(m);
    const bool dep_row = dependsOn(op, dims[0]);
    const bool dep_col = dependsOn(op, dims[1]);
    const bool is_output = op == outputOperand(phase);

    if (is_output) {
        if (dep_row && dep_col)
            return FlowClass::Unicast;
        if (dep_row)
            return FlowClass::ReduceRows;   // combine along each row
        if (dep_col)
            return FlowClass::ReduceCols;   // combine along each column
        return FlowClass::ReduceAll;
    }
    if (dep_row && dep_col)
        return FlowClass::Unicast;
    if (dep_row)
        return FlowClass::MulticastRows;    // one value feeds a row
    if (dep_col)
        return FlowClass::MulticastCols;    // one value feeds a column
    return FlowClass::Broadcast;
}

int64_t
spatialReuse(Phase phase, Operand op, MappingKind m, int rows, int cols)
{
    (void)phase;
    const auto dims = spatialDims(m);
    int64_t reuse = 1;
    if (!dependsOn(op, dims[0]))
        reuse *= rows;
    if (!dependsOn(op, dims[1]))
        reuse *= cols;
    return reuse;
}

bool
supportsCheapBalancing(Phase phase, MappingKind m)
{
    const Operand sparse_op = sparseOperand(phase);
    const auto dims = spatialDims(m);
    const bool dep_row = dependsOn(sparse_op, dims[0]);
    const bool dep_col = dependsOn(sparse_op, dims[1]);
    // Exactly one sparse axis: rebalancing shuffles work along it while
    // every flow on the other axis is untouched (Figure 12). Two sparse
    // axes (e.g. C,K with weight sparsity) would need chip-wide
    // exchange and a complex interconnect (Figure 10); zero sparse
    // axes means the workload is already uniform across PEs.
    return dep_row != dep_col;
}

} // namespace arch
} // namespace procrustes
