#include "arch/phase.h"

#include "common/logging.h"

namespace procrustes {
namespace arch {

std::string
phaseName(Phase p)
{
    switch (p) {
      case Phase::Forward:
        return "fw";
      case Phase::Backward:
        return "bw";
      case Phase::WeightUpdate:
        return "wu";
    }
    PANIC("unknown phase");
}

Operand
outputOperand(Phase p)
{
    switch (p) {
      case Phase::Forward:
        return Operand::Oacts;        // y
      case Phase::Backward:
        return Operand::Iacts;        // dL/dx
      case Phase::WeightUpdate:
        return Operand::Weights;      // dL/dw
    }
    PANIC("unknown phase");
}

bool
dependsOn(Operand op, Dim d)
{
    switch (op) {
      case Operand::Weights:
        return d == Dim::K || d == Dim::C || d == Dim::R || d == Dim::S;
      case Operand::Iacts:
        // Input activations index the spatial halo P*stride+R-1 etc.;
        // for dependence analysis P/Q stand in for H/W.
        return d == Dim::N || d == Dim::C || d == Dim::P || d == Dim::Q;
      case Operand::Oacts:
        return d == Dim::N || d == Dim::K || d == Dim::P || d == Dim::Q;
    }
    PANIC("unknown operand");
}

int64_t
dimExtent(const LayerShape &layer, Dim d, int64_t batch)
{
    switch (d) {
      case Dim::N:
        return batch;
      case Dim::K:
        return layer.K;
      case Dim::C:
        // Depthwise convolutions bind C to K one-to-one; the
        // independent C extent is 1 (see DESIGN.md §5).
        return layer.type == LayerType::DepthwiseConv ? 1 : layer.C;
      case Dim::P:
        return layer.P;
      case Dim::Q:
        return layer.Q;
      case Dim::R:
        return layer.R;
      case Dim::S:
        return layer.S;
    }
    PANIC("unknown dim");
}

Operand
sparseOperand(Phase p)
{
    switch (p) {
      case Phase::Forward:
      case Phase::Backward:
        return Operand::Weights;
      case Phase::WeightUpdate:
        return Operand::Iacts;
    }
    PANIC("unknown phase");
}

int64_t
operandVolume(const LayerShape &layer, Operand op, int64_t batch)
{
    switch (op) {
      case Operand::Weights:
        return layer.weightCount();
      case Operand::Iacts:
        return batch * layer.iactsPerSample();
      case Operand::Oacts:
        return batch * layer.oactsPerSample();
    }
    PANIC("unknown operand");
}

} // namespace arch
} // namespace procrustes
