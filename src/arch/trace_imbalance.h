/**
 * @file
 * Measured-mask load-balance replay: Figures 5 and 13 rebuilt from the
 * masks a real training run produced, not from synthetic profiles.
 *
 * collectOverheads answers "how imbalanced would this network be"
 * through a LayerSparsityProfile, whose activation statistics may be
 * synthetic jitter. This module answers the question for a recorded
 * WorkloadTrace epoch with no profile in between: per-wave TileHalves
 * work is tallied directly from the epoch-final weight masks (fw/bw
 * phases — exact per-slice non-zero counts via SparsityMask::tileNnz
 * and per-kernel counts for the RF-chunked C,K tiling) and from the
 * measured per-sample / per-channel activation-density vectors (wu
 * phase), then run through the same half-tile balancer the hardware
 * would use (rebalanceHalfTiles). Accelerator::evaluateTrace emits the
 * resulting balanced/unbalanced histograms per epoch, which is what
 * BENCH_cosim.json v3 records.
 */

#ifndef PROCRUSTES_ARCH_TRACE_IMBALANCE_H_
#define PROCRUSTES_ARCH_TRACE_IMBALANCE_H_

#include <cstdint>
#include <vector>

#include "arch/imbalance.h"
#include "arch/workload_trace.h"

namespace procrustes {
namespace arch {

/** Balanced-vs-unbalanced overhead distributions of one epoch. */
struct EpochImbalance
{
    ImbalanceHistogram unbalanced;   //!< BalanceMode::None
    ImbalanceHistogram balanced;     //!< the requested balancing policy
};

/**
 * Half-split work of one slice of the sparse operand along dim `d`.
 * Weights slice to *exact* live-position counts from the epoch-final
 * mask (SparsityMask::tileNnz, halved along the axis the half-tile
 * balancer cuts); activations slice to measured densities (per-sample
 * halves where the telemetry recorded them, per-channel means
 * otherwise). Shared by the imbalance replay and the trace-driven
 * cycle simulator so both tally identical work.
 */
TileHalves measuredSliceWork(const LayerTrace &layer, Operand sp, Dim d,
                             int64_t idx);

/**
 * Work of one PE tile when both spatial dims index the sparse operand:
 * exact per-kernel counts (SparsityMask::blockNnz) for weights,
 * ratio-combined measured marginals (clamped to [0, 1]) for
 * activations.
 */
double measuredPairWork(const LayerTrace &layer, Operand sp, Dim d0,
                        int64_t i0, Dim d1, int64_t i1);

/**
 * Per-wave working sets of one traced layer in one phase under one
 * mapping: each inner vector holds the half-split work tiles of one
 * full-PE-array wave, in issue order. Work units are live weight
 * positions (fw/bw: exact counts from the epoch-final mask) or
 * relative activation non-zero volume (wu: measured density vectors);
 * overheads are ratios within a wave, so the unit never matters.
 * Waves whose sparse operand is uniform across the array by
 * construction carry a single uniform tile (zero overhead).
 */
std::vector<std::vector<TileHalves>>
measuredLayerWaves(const LayerTrace &layer, Phase phase,
                   MappingKind mapping, const ArrayConfig &cfg,
                   int64_t batch);

/**
 * Per-wave overheads of every layer of a traced epoch in one phase —
 * the measured-mask analogue of collectOverheads. Half-tile balancing
 * applies only where the mapping admits it (supportsCheapBalancing),
 * exactly like the cost model.
 */
std::vector<double>
collectMeasuredOverheads(const EpochTrace &epoch, Phase phase,
                         MappingKind mapping, const ArrayConfig &cfg,
                         BalanceMode balance);

/**
 * Balanced and unbalanced overhead histograms of one epoch, all three
 * training phases pooled (the balanced side uses `balance`, the
 * unbalanced side BalanceMode::None). Defaults match the Figure 5/13
 * binning. Balanced meanOverhead never exceeds unbalanced: the
 * original tiles are one feasible pairing of the same halves, so the
 * half-tile pairing can only lower every wave's maximum.
 */
EpochImbalance
measuredEpochImbalance(const EpochTrace &epoch, MappingKind mapping,
                       const ArrayConfig &cfg, BalanceMode balance,
                       int bins = 32, double bin_width = 0.05);

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_TRACE_IMBALANCE_H_
