#include "arch/workload_trace.h"

#include "common/logging.h"

namespace procrustes {
namespace arch {

namespace {

/** Map a trainable layer's report onto a cost-model LayerShape. */
LayerShape
shapeFromReport(const nn::LayerStepReport &r)
{
    LayerShape s;
    s.name = r.layerName;
    s.type = r.kind == nn::LayerStepReport::Kind::Linear
                 ? LayerType::FullyConnected
                 : LayerType::Conv;
    s.K = r.K;
    s.C = r.C;
    s.R = r.R;
    s.S = r.S;
    s.P = r.P;
    s.Q = r.Q;
    s.stride = r.stride;
    return s;
}

/** Running scalar mean. */
double
meanInto(double acc, double v, int64_t count)
{
    const double n = static_cast<double>(count);
    return acc * ((n - 1.0) / n) + v / n;
}

} // namespace

double
LayerTrace::fwMacsPerStep() const
{
    return steps ? static_cast<double>(fwMacs) /
                       static_cast<double>(steps)
                 : 0.0;
}

double
LayerTrace::bwDataMacsPerStep() const
{
    return steps ? static_cast<double>(bwDataMacs) /
                       static_cast<double>(steps)
                 : 0.0;
}

double
LayerTrace::bwWeightMacsPerStep() const
{
    return steps ? static_cast<double>(bwWeightMacs) /
                       static_cast<double>(steps)
                 : 0.0;
}

double
EpochTrace::totalMacsPerStep() const
{
    double total = 0.0;
    for (const LayerTrace &l : layers) {
        total += l.fwMacsPerStep() + l.bwDataMacsPerStep() +
                 l.bwWeightMacsPerStep();
    }
    return total;
}

double
EpochTrace::meanIactDensity() const
{
    double weighted = 0.0;
    double weight = 0.0;
    for (const LayerTrace &l : layers) {
        const double w = static_cast<double>(l.shape.macsPerSample());
        weighted += l.iacts.mean * w;
        weight += w;
    }
    return weight > 0.0 ? weighted / weight : 1.0;
}

int64_t
EpochTrace::totalCsbWeightBytes() const
{
    int64_t total = 0;
    for (const LayerTrace &l : layers)
        total += l.csbWeightBytes;
    return total;
}

int64_t
EpochTrace::totalDenseWeightBytes() const
{
    int64_t total = 0;
    for (const LayerTrace &l : layers)
        total += l.denseWeightBytes;
    return total;
}

int64_t
EpochTrace::totalExchangeCompressedBytes() const
{
    int64_t total = 0;
    for (const LayerTrace &l : layers)
        total += l.exchangeCompressedBytes;
    return total;
}

int64_t
EpochTrace::totalExchangeDenseBytes() const
{
    int64_t total = 0;
    for (const LayerTrace &l : layers)
        total += l.exchangeDenseBytes;
    return total;
}

double
EpochTrace::meanWeightDensity() const
{
    int64_t nnz = 0;
    int64_t total = 0;
    for (const LayerTrace &l : layers) {
        nnz += l.mask.nnz();
        total += l.mask.numel();
    }
    return total ? static_cast<double>(nnz) / static_cast<double>(total)
                 : 1.0;
}

void
WorkloadTrace::accumulateMean(std::vector<double> *acc,
                              const std::vector<double> &v, int64_t count)
{
    if (count == 1) {
        *acc = v;
        return;
    }
    if (acc->size() != v.size()) {
        // Ragged step (e.g. a caller that does not drop short final
        // batches): slot i no longer means the same thing across
        // steps, so per-slot means are unrecoverable — drop them for
        // the rest of the epoch (stays empty: future sizes cannot
        // match either) and let profiles fall back to the scalar mean.
        acc->clear();
        return;
    }
    const double n = static_cast<double>(count);
    for (size_t i = 0; i < v.size(); ++i)
        (*acc)[i] = (*acc)[i] * ((n - 1.0) / n) + v[i] / n;
}

void
WorkloadTrace::observe(const nn::StepTelemetry &t)
{
    if (epochs_.empty() ||
        epochs_.back().epoch != t.epoch) {
        PROCRUSTES_ASSERT(epochs_.empty() ||
                              t.epoch > epochs_.back().epoch,
                          "telemetry epochs must arrive in order");
        EpochTrace e;
        e.epoch = t.epoch;
        e.batchSize = t.batchSize;
        epochs_.push_back(std::move(e));
    }
    EpochTrace &e = epochs_.back();
    ++e.steps;
    e.meanLoss = meanInto(e.meanLoss, t.batchLoss, e.steps);

    // Only trainable layers with MAC telemetry become trace rows;
    // activation layers already show up as their consumer's measured
    // input density.
    size_t row = 0;
    for (const nn::LayerStepReport &r : t.reports) {
        if (!r.hasMacs || !r.hasMask)
            continue;
        if (row >= e.layers.size()) {
            PROCRUSTES_ASSERT(e.steps == 1,
                              "layer set changed mid-epoch");
            LayerTrace l;
            l.name = r.layerName;
            e.layers.push_back(std::move(l));
        }
        LayerTrace &l = e.layers[row];
        ++row;
        PROCRUSTES_ASSERT(l.name.empty() || l.name == r.layerName,
                          "layer order changed mid-epoch");
        l.shape = shapeFromReport(r);
        l.mask = r.mask;   // last writer wins: epoch-final mask
        if (r.hasWeightBytes) {
            // Same last-writer-wins convention as the mask: the bytes
            // describe the epoch-final compressed weight image.
            l.csbWeightBytes = r.csbWeightBytes;
            l.denseWeightBytes = r.denseWeightBytes;
        }
        if (r.hasExchange) {
            // Wire traffic sums over the epoch (unlike the footprint
            // fields above, which are snapshots): each step's
            // allreduce actually moved these bytes.
            l.exchangeCompressedBytes += r.exchangeCompressedBytes;
            l.exchangeDenseBytes += r.exchangeDenseBytes;
        }
        // A single dense-executed step poisons the epoch's counts for
        // sparse-accelerator purposes, so AND across steps.
        l.sparseExecuted =
            (l.steps == 0 || l.sparseExecuted) && r.sparseExecuted;
        ++l.steps;
        l.iacts.mean = meanInto(l.iacts.mean, r.inputDensity, l.steps);
        l.oactDensity = meanInto(l.oactDensity, r.outputDensity, l.steps);
        accumulateMean(&l.iacts.perSample, r.inputSampleDensity, l.steps);
        accumulateMean(&l.iacts.perSampleHalf, r.inputSampleHalfDensity,
                       l.steps);
        accumulateMean(&l.iacts.perChannel, r.inputChannelDensity,
                       l.steps);
        accumulateMean(&l.iacts.perRow, r.inputRowDensity, l.steps);
        accumulateMean(&l.iacts.perCol, r.inputColDensity, l.steps);
        l.fwMacs += r.fwMacs;
        l.bwDataMacs += r.bwDataMacs;
        l.bwWeightMacs += r.bwWeightMacs;
    }
    PROCRUSTES_ASSERT(row == e.layers.size(),
                      "trainable layer count changed mid-epoch");
}

const EpochTrace &
WorkloadTrace::epoch(size_t i) const
{
    PROCRUSTES_ASSERT(i < epochs_.size(), "epoch index out of range");
    return epochs_[i];
}

const EpochTrace &
WorkloadTrace::lastEpoch() const
{
    PROCRUSTES_ASSERT(!epochs_.empty(), "no epochs observed");
    return epochs_.back();
}

NetworkModel
WorkloadTrace::networkModel(size_t epoch_idx) const
{
    const EpochTrace &e = epoch(epoch_idx);
    NetworkModel m;
    m.name = "measured";
    m.dataset = "trace";
    for (const LayerTrace &l : e.layers) {
        m.layers.push_back(l.shape);
        m.iactDensity.push_back(l.iacts.mean);
    }
    return m;
}

std::vector<LayerSparsityProfile>
WorkloadTrace::profiles(size_t epoch_idx) const
{
    const EpochTrace &e = epoch(epoch_idx);
    std::vector<LayerSparsityProfile> out;
    out.reserve(e.layers.size());
    for (const LayerTrace &l : e.layers)
        out.push_back(LayerSparsityProfile::measured(l.mask, l.iacts,
                                                     l.shape.stride));
    return out;
}

} // namespace arch
} // namespace procrustes
