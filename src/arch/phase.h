/**
 * @file
 * Training phases and the per-phase Einsum structure (Figure 2).
 *
 * Each training phase is a contraction `out += a * b` over the 7-D
 * operation space:
 *
 *   forward:        y[N,K,P,Q]  += w[K,C,R,S]        * x[N,C,H,W]
 *   backward:       dx[N,C,H,W] += rot180(w)[K,C,R,S] * dy[N,K,P,Q]
 *   weight update:  dw[K,C,R,S] += x[N,C,H,W]        * dy[N,K,P,Q]
 *
 * The dataflow framework only needs each operand's index set (which
 * dimensions it depends on) and which operand is sparse in which phase:
 * weights in fw/bw, input activations in wu. The back-propagated
 * gradient dy is dense because batch normalization destroys its
 * sparsity (Section II-B).
 */

#ifndef PROCRUSTES_ARCH_PHASE_H_
#define PROCRUSTES_ARCH_PHASE_H_

#include <array>
#include <cstdint>
#include <string>

#include "arch/layer_shape.h"

namespace procrustes {
namespace arch {

/** The three training phases. */
enum class Phase
{
    Forward,
    Backward,
    WeightUpdate,
};

/** Short display name: "fw", "bw", "wu". */
std::string phaseName(Phase p);

/** Dimensions of the operation space that can index an operand. */
enum class Dim : int
{
    N = 0,  //!< minibatch
    K,      //!< output channels
    C,      //!< input channels
    P,      //!< output y
    Q,      //!< output x
    R,      //!< filter y
    S,      //!< filter x
};

/** Operand roles in the phase Einsum. */
enum class Operand
{
    Weights,     //!< w (fw, bw) or dw (wu output)
    Iacts,       //!< x (fw, wu) or dx (bw output)
    Oacts,       //!< y (fw output) or dy (bw, wu)
};

/** All three operands, for iteration. */
inline constexpr std::array<Operand, 3> kAllOperands = {
    Operand::Weights, Operand::Iacts, Operand::Oacts};

/** The output operand of a phase (the other two are inputs). */
Operand outputOperand(Phase p);

/** Does `op` depend on dimension `d`? (Index-set membership.) */
bool dependsOn(Operand op, Dim d);

/** Extent of dimension d for a layer at the given minibatch size. */
int64_t dimExtent(const LayerShape &layer, Dim d, int64_t batch);

/**
 * The sparse input operand of each phase under the Procrustes policy
 * (one source of sparsity per phase, Section I insight 1): weights in
 * fw and bw, input activations in wu.
 */
Operand sparseOperand(Phase p);

/**
 * Unique element count of an operand for one layer at a batch size
 * (dense volume; input activations use the halo-inclusive H x W).
 */
int64_t operandVolume(const LayerShape &layer, Operand op, int64_t batch);

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_PHASE_H_
