/**
 * @file
 * Top-level accelerator roll-ups: whole-network, all-phase evaluation.
 *
 * Ties the cost model, model zoo, and sparsity profiles together into
 * the two machines the paper compares: the dense baseline training
 * accelerator (Table I, top) and Procrustes (Table I, bottom), plus
 * the Figure 1 idealization.
 */

#ifndef PROCRUSTES_ARCH_ACCELERATOR_H_
#define PROCRUSTES_ARCH_ACCELERATOR_H_

#include <string>
#include <vector>

#include "arch/cost_model.h"
#include "arch/model_zoo.h"
#include "arch/trace_imbalance.h"
#include "arch/workload_trace.h"
#include "sim/cycle_sim.h"

namespace procrustes {
namespace arch {

/** Whole-network cost, broken down by phase. */
struct NetworkCost
{
    PhaseCost fw;
    PhaseCost bw;
    PhaseCost wu;

    /** Sum across phases. */
    PhaseCost total() const;

    /** Total energy across all phases (J). */
    double totalEnergyJ() const { return total().totalEnergyJ(); }

    /** Total cycles across all phases. */
    double totalCycles() const { return total().cycles; }
};

/** One accelerator configuration under evaluation. */
class Accelerator
{
  public:
    /**
     * @param cfg array geometry and energies.
     * @param opts sparse / balance / ideal behaviour.
     * @param mapping spatial partitioning used for all phases (the
     *        paper selects K,N for Procrustes, Section VI-D).
     */
    Accelerator(const ArrayConfig &cfg, const CostOptions &opts,
                MappingKind mapping)
        : model_(cfg, opts), mapping_(mapping)
    {}

    /** Evaluate one training iteration of a network at a batch size. */
    NetworkCost evaluate(const NetworkModel &net,
                         const std::vector<LayerSparsityProfile> &profiles,
                         int64_t batch) const;

    /** Evaluate a single layer across all three phases. */
    NetworkCost evaluateLayer(const LayerShape &layer,
                              const LayerSparsityProfile &profile,
                              int64_t batch) const;

    /**
     * Trace-driven mode: evaluate one epoch of a measured
     * WorkloadTrace — one training iteration at the trace's own batch
     * size, using the run's real masks, measured activation densities
     * (no synthetic jitter), and — when this configuration exploits
     * sparsity AND the layer's telemetry came from the zero-skipping
     * CSB executors (LayerTrace::sparseExecuted) — the executors'
     * per-phase executed MAC counts in place of density estimates.
     * Both Conv2d and Linear provide measured counts under
     * KernelBackend::kSparse; the dense baseline and layers traced on
     * a dense backend keep the modelled MAC accounting.
     *
     * The GLB/DRAM weight-traffic terms likewise run from measurement:
     * each layer's epoch-final compressed footprint
     * (LayerTrace::csbWeightBytes, i.e. CsbTensor::totalBytes of the
     * real encode) replaces the density-derived CSB size on
     * sparsity-exploiting configurations, and the measured dense
     * footprint feeds the dense baseline.
     *
     * @param imbalance when non-null, receives the epoch's
     *        balanced/unbalanced load-imbalance histograms replayed
     *        from the measured masks and activation densities
     *        (arch/trace_imbalance.h) under this accelerator's mapping
     *        and balancing policy, all three phases pooled.
     * @param cycle_sim when non-null, the cycle-level PE-array
     *        simulator (sim/cycle_sim.h) co-runs the same epoch —
     *        identical wave geometry, work from the same measured
     *        masks and activation vectors — and its per-phase results
     *        land here, with analyticCycleRatio set to simulated
     *        cycles over this model's analytic compute latency (the
     *        fidelity bound BENCH_cosim.json v4 records).
     * @param sim_cfg interconnect / GLB / FIFO geometry for the
     *        cycle-level co-run (ignored when cycle_sim is null).
     */
    NetworkCost evaluateTrace(const WorkloadTrace &trace,
                              size_t epoch_idx,
                              EpochImbalance *imbalance = nullptr,
                              sim::TraceSimResult *cycle_sim = nullptr,
                              const sim::SimConfig &sim_cfg = {}) const;

    const CostModel &costModel() const { return model_; }
    MappingKind mapping() const { return mapping_; }

    /** The paper's Procrustes configuration (sparse, K,N, half-tile). */
    static Accelerator procrustes(
        const ArrayConfig &cfg = ArrayConfig::baseline16());

    /** The dense baseline of Table I (no sparse training support). */
    static Accelerator denseBaseline(
        const ArrayConfig &cfg = ArrayConfig::baseline16());

    /** The Figure 1 idealization. */
    static Accelerator idealSparse(
        const ArrayConfig &cfg = ArrayConfig::baseline16());

  private:
    CostModel model_;
    MappingKind mapping_;
};

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_ACCELERATOR_H_
