/**
 * @file
 * Spatial mappings and dataflow classification (Sections II-C, IV-C).
 *
 * A mapping assigns two operation-space dimensions to the two axes of
 * the PE array; the interconnect role of each operand then *follows*
 * from its index set:
 *
 *   - depends on neither spatial dim  -> broadcast to the whole array;
 *   - depends on one                  -> multicast along the other axis
 *                                        (inputs) or spatially reduced
 *                                        along it (outputs);
 *   - depends on both                 -> unicast.
 *
 * This derivation reproduces the paper's tables: the weight-stationary
 * C,K mapping of Figure 3 (x multicast-H, y reduce-V, w unicast) and
 * the Procrustes K,N mapping of Figure 11 (w multicast-H, x
 * multicast-V, y unicast) in every phase.
 */

#ifndef PROCRUSTES_ARCH_DATAFLOW_H_
#define PROCRUSTES_ARCH_DATAFLOW_H_

#include <array>
#include <string>

#include "arch/phase.h"

namespace procrustes {
namespace arch {

/** The four spatial partitionings evaluated in the paper. */
enum class MappingKind
{
    CK,   //!< weight-stationary input x output channels (Figure 3)
    KN,   //!< Procrustes: output channels x minibatch (Figure 11)
    CN,   //!< input channels x minibatch
    PQ,   //!< activation-stationary output spatial (SCNN-style)
};

/** All mappings, for sweeps. */
inline constexpr std::array<MappingKind, 4> kAllMappings = {
    MappingKind::CK, MappingKind::KN, MappingKind::CN, MappingKind::PQ};

/** Display name, e.g. "KN". */
std::string mappingName(MappingKind m);

/** The two spatialized dims: [0] -> array rows, [1] -> array columns. */
std::array<Dim, 2> spatialDims(MappingKind m);

/** Interconnect role of an operand under a mapping. */
enum class FlowClass
{
    Broadcast,      //!< same value to every PE
    MulticastRows,  //!< shared along each row (varies across rows)
    MulticastCols,  //!< shared along each column (varies across cols)
    ReduceRows,     //!< output reduced along each row
    ReduceCols,     //!< output reduced along each column
    ReduceAll,      //!< output reduced across the whole array
    Unicast,        //!< distinct value per PE
};

/** Display name for a flow class. */
std::string flowClassName(FlowClass f);

/**
 * Classify the interconnect role of `op` in `phase` under mapping `m`.
 *
 * Inputs that do not depend on a spatial dim are shared across the
 * axis that dim is mapped to; outputs that do not depend on a spatial
 * dim are reduced across that axis.
 */
FlowClass classifyFlow(Phase phase, Operand op, MappingKind m);

/**
 * Spatial reuse factor: how many PEs share (inputs) or combine
 * (outputs) one value of `op` within a full wave of an rows x cols
 * array. 1 for unicast operands.
 */
int64_t spatialReuse(Phase phase, Operand op, MappingKind m, int rows,
                     int cols);

/**
 * True when the mapping admits the Procrustes half-tile load balancer
 * for this phase: the phase's sparse operand must depend on exactly
 * one spatial dim (the balancing axis), and the other axis must carry
 * a dense dimension so rebalancing does not perturb its flows
 * (Figure 12). The C,K mapping fails this test — balancing it needs
 * the complex all-to-all interconnect of Figure 10.
 */
bool supportsCheapBalancing(Phase phase, MappingKind m);

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_DATAFLOW_H_
