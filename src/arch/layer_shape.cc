#include "arch/layer_shape.h"

#include "common/logging.h"

namespace procrustes {
namespace arch {

int64_t
LayerShape::macsPerSample() const
{
    return K * effectiveC() * R * S * P * Q;
}

int64_t
LayerShape::weightCount() const
{
    return K * effectiveC() * R * S;
}

int64_t
LayerShape::iactsPerSample() const
{
    return C * inH() * inW();
}

LayerShape
convLayer(const std::string &name, int64_t c, int64_t k, int64_t kernel,
          int64_t in_hw, int64_t stride, int64_t pad)
{
    PROCRUSTES_ASSERT(c > 0 && k > 0 && kernel > 0 && in_hw > 0 &&
                          stride > 0,
                      "bad conv geometry");
    if (pad < 0)
        pad = kernel / 2;   // "same" padding by default
    LayerShape l;
    l.name = name;
    l.type = LayerType::Conv;
    l.C = c;
    l.K = k;
    l.R = kernel;
    l.S = kernel;
    l.stride = stride;
    l.P = (in_hw + 2 * pad - kernel) / stride + 1;
    l.Q = l.P;
    PROCRUSTES_ASSERT(l.P > 0, "conv output collapsed to zero");
    return l;
}

LayerShape
depthwiseLayer(const std::string &name, int64_t channels, int64_t kernel,
               int64_t in_hw, int64_t stride)
{
    LayerShape l = convLayer(name, channels, channels, kernel, in_hw,
                             stride);
    l.type = LayerType::DepthwiseConv;
    return l;
}

LayerShape
fcLayer(const std::string &name, int64_t in_features, int64_t out_features)
{
    PROCRUSTES_ASSERT(in_features > 0 && out_features > 0,
                      "bad fc geometry");
    LayerShape l;
    l.name = name;
    l.type = LayerType::FullyConnected;
    l.C = in_features;
    l.K = out_features;
    return l;
}

} // namespace arch
} // namespace procrustes
