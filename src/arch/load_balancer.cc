#include "arch/load_balancer.h"

#include <algorithm>

#include "common/logging.h"

namespace procrustes {
namespace arch {

std::vector<double>
rebalanceHalfTiles(const std::vector<TileHalves> &tiles)
{
    std::vector<double> halves;
    halves.reserve(tiles.size() * 2);
    for (const TileHalves &t : tiles) {
        halves.push_back(t.first);
        halves.push_back(t.second);
    }
    std::sort(halves.begin(), halves.end());

    const size_t n = tiles.size();
    std::vector<double> combined(n);
    for (size_t i = 0; i < n; ++i)
        combined[i] = halves[i] + halves[2 * n - 1 - i];
    return combined;
}

double
rebalancedMax(const std::vector<TileHalves> &tiles)
{
    PROCRUSTES_ASSERT(!tiles.empty(), "empty working set");
    double worst = 0.0;
    for (double w : rebalanceHalfTiles(tiles))
        worst = std::max(worst, w);
    return worst;
}

double
unbalancedMax(const std::vector<TileHalves> &tiles)
{
    PROCRUSTES_ASSERT(!tiles.empty(), "empty working set");
    double worst = 0.0;
    for (const TileHalves &t : tiles)
        worst = std::max(worst, t.total());
    return worst;
}

double
meanWork(const std::vector<TileHalves> &tiles)
{
    PROCRUSTES_ASSERT(!tiles.empty(), "empty working set");
    double sum = 0.0;
    for (const TileHalves &t : tiles)
        sum += t.total();
    return sum / static_cast<double>(tiles.size());
}

} // namespace arch
} // namespace procrustes
