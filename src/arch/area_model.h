/**
 * @file
 * Silicon area / power accounting (Table III).
 *
 * The paper synthesizes the Procrustes-specific modules with Synopsys
 * DC in FreePDK 45 nm; synthesis is unavailable offline, so the
 * component figures from Table III seed this model and the *roll-up
 * arithmetic* — per-PE replication, system-level components, and the
 * resulting area/power overhead over an equivalent dense accelerator —
 * is recomputed rather than copied (DESIGN.md §4).
 */

#ifndef PROCRUSTES_ARCH_AREA_MODEL_H_
#define PROCRUSTES_ARCH_AREA_MODEL_H_

#include <string>
#include <vector>

namespace procrustes {
namespace arch {

/** One synthesized component. */
struct ComponentArea
{
    std::string name;
    double powerMw = 0.0;
    double areaUm2 = 0.0;
    bool perPe = false;           //!< replicated once per PE
    bool procrustesOnly = false;  //!< absent from the dense baseline
};

/** Area/power roll-up for a PE-array accelerator. */
class AreaModel
{
  public:
    /** Construct with the paper's Table III component values. */
    explicit AreaModel(int64_t pe_count = 256);

    /** Component table (for printing Table III). */
    const std::vector<ComponentArea> &components() const
    {
        return components_;
    }

    /** Total area of the dense baseline (um^2). */
    double baselineAreaUm2() const;

    /** Total area of Procrustes (um^2). */
    double procrustesAreaUm2() const;

    /** Area overhead of Procrustes over the baseline (fraction). */
    double areaOverhead() const;

    /** Total baseline power on a dense workload (mW). */
    double baselinePowerMw() const;

    /** Total Procrustes power on the same dense workload (mW). */
    double procrustesPowerMw() const;

    /** Power overhead (fraction). */
    double powerOverhead() const;

    int64_t peCount() const { return peCount_; }

  private:
    double totalArea(bool include_procrustes) const;
    double totalPower(bool include_procrustes) const;

    int64_t peCount_;
    std::vector<ComponentArea> components_;
};

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_AREA_MODEL_H_
