#include "arch/area_model.h"

#include "common/logging.h"

namespace procrustes {
namespace arch {

AreaModel::AreaModel(int64_t pe_count) : peCount_(pe_count)
{
    PROCRUSTES_ASSERT(pe_count > 0, "PE count must be positive");
    // Component values from Table III (Synopsys DC, FreePDK 45 nm);
    // power assumes the same dense computation on both machines.
    components_ = {
        {"FP32 MAC", 7.29, 18875.72, /*perPe=*/true, false},
        {"Register File", 15.61, 198004.71, true, false},
        {"PRNG (WR unit)", 0.35, 1920.84, true, true},
        {"Mask Memory", 2.65, 44932.66, true, true},
        {"Global Buffer", 73.74, 17109596.5, false, false},
        {"Quantile Engine", 1.38, 9861.4, false, true},
        {"Load Balancer", 2.05, 8725.23, false, true},
    };
}

double
AreaModel::totalArea(bool include_procrustes) const
{
    double total = 0.0;
    for (const ComponentArea &c : components_) {
        if (c.procrustesOnly && !include_procrustes)
            continue;
        total += c.areaUm2 *
                 (c.perPe ? static_cast<double>(peCount_) : 1.0);
    }
    return total;
}

double
AreaModel::totalPower(bool include_procrustes) const
{
    double total = 0.0;
    for (const ComponentArea &c : components_) {
        if (c.procrustesOnly && !include_procrustes)
            continue;
        total += c.powerMw *
                 (c.perPe ? static_cast<double>(peCount_) : 1.0);
    }
    return total;
}

double
AreaModel::baselineAreaUm2() const
{
    return totalArea(false);
}

double
AreaModel::procrustesAreaUm2() const
{
    return totalArea(true);
}

double
AreaModel::areaOverhead() const
{
    return procrustesAreaUm2() / baselineAreaUm2() - 1.0;
}

double
AreaModel::baselinePowerMw() const
{
    return totalPower(false);
}

double
AreaModel::procrustesPowerMw() const
{
    return totalPower(true);
}

double
AreaModel::powerOverhead() const
{
    return procrustesPowerMw() / baselinePowerMw() - 1.0;
}

} // namespace arch
} // namespace procrustes
