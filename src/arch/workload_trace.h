/**
 * @file
 * Measured-workload trace: the seam between the real trainer (src/nn)
 * and the accelerator model (src/arch).
 *
 * The paper's headline numbers (§VI) are produced by feeding *measured*
 * weight masks and ReLU activation densities from PyTorch training runs
 * into the extended Timeloop model — not synthetic distributions. This
 * class is that pipeline for our own trainer: attach observer() to
 * nn::trainNetwork and every step's LayerStepReports (per-phase
 * executed MACs from the zero-skipping executors, live weight masks,
 * compressed weight footprints, measured activation densities) are
 * aggregated per epoch. Each epoch then converts into a NetworkModel +
 * measured LayerSparsityProfiles that Accelerator::evaluateTrace
 * consumes, yielding per-epoch latency and energy trajectories of the
 * accelerator running the *actual* training workload — with the
 * GLB/DRAM weight-traffic terms fed by the measured byte counts and
 * load-imbalance histograms replayed from the epoch-final masks
 * (arch/trace_imbalance.h), not estimated from mean densities.
 */

#ifndef PROCRUSTES_ARCH_WORKLOAD_TRACE_H_
#define PROCRUSTES_ARCH_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "arch/model_zoo.h"
#include "arch/sparsity_profile.h"
#include "nn/trainer.h"
#include "sparse/mask.h"

namespace procrustes {
namespace arch {

/** One trainable layer's measured facts, aggregated over one epoch. */
struct LayerTrace
{
    std::string name;
    LayerShape shape;             //!< geometry measured from the run
    sparse::SparsityMask mask;    //!< live mask at the epoch's last step

    /** Measured input-activation statistics (mean over the epoch's
        steps; per-slot vectors averaged elementwise). */
    MeasuredIactStats iacts;
    double oactDensity = 1.0;     //!< mean output density

    /** @name Executed MACs, summed over the epoch's steps. */
    /**@{*/
    /** True when the counts came from the zero-skipping CSB executors
        (see LayerStepReport::sparseExecuted); dense-backend counts are
        the full operation space and must not be mistaken for what a
        sparse accelerator would execute. */
    bool sparseExecuted = false;
    int64_t fwMacs = 0;
    int64_t bwDataMacs = 0;
    int64_t bwWeightMacs = 0;
    /**@}*/

    /** @name Weight storage footprint at the epoch's last step. */
    /**@{*/
    /** CsbTensor::totalBytes of the live weights (packed values +
        mask bits + block pointers) — the compressed image the
        accelerator streams; first input of the storage/traffic
        accounting. */
    int64_t csbWeightBytes = 0;
    int64_t denseWeightBytes = 0;   //!< 4 bytes per dense position
    /**@}*/

    /** @name Cross-shard gradient-exchange wire bytes, summed over the
        epoch's steps (zero unless the scale-out shard engine drove the
        run — see LayerStepReport::hasExchange). */
    /**@{*/
    int64_t exchangeCompressedBytes = 0;
    int64_t exchangeDenseBytes = 0;
    /**@}*/

    int64_t steps = 0;            //!< steps aggregated into this row

    double weightDensity() const { return mask.density(); }

    /** Mean executed MACs per step for one phase. */
    double fwMacsPerStep() const;
    double bwDataMacsPerStep() const;
    double bwWeightMacsPerStep() const;
};

/** One epoch of the measured workload. */
struct EpochTrace
{
    int64_t epoch = 0;
    int64_t steps = 0;
    int64_t batchSize = 0;
    double meanLoss = 0.0;        //!< mean per-step training loss
    std::vector<LayerTrace> layers;

    /** Whole-network executed MACs per step, all phases. */
    double totalMacsPerStep() const;

    /** MAC-weighted mean input-activation density. */
    double meanIactDensity() const;

    /** Weight non-zero fraction over all traced layers. */
    double meanWeightDensity() const;

    /** @name Epoch-final weight storage, summed over traced layers. */
    /**@{*/
    int64_t totalCsbWeightBytes() const;
    int64_t totalDenseWeightBytes() const;
    /**@}*/

    /** @name Epoch gradient-exchange wire traffic, summed over traced
        layers (zero for single-shard / plain-trainer runs). */
    /**@{*/
    int64_t totalExchangeCompressedBytes() const;
    int64_t totalExchangeDenseBytes() const;
    /**@}*/
};

/**
 * Aggregates nn::StepTelemetry into per-epoch measured workloads and
 * converts them into cost-model inputs.
 */
class WorkloadTrace
{
  public:
    /** Consume one step's telemetry (steps must arrive in order). */
    void observe(const nn::StepTelemetry &t);

    /** Observer functor bound to this trace, for trainNetwork. */
    nn::StepObserver
    observer()
    {
        return [this](const nn::StepTelemetry &t) { observe(t); };
    }

    /** Number of epochs observed so far. */
    size_t epochCount() const { return epochs_.size(); }

    /** Aggregated view of epoch i. */
    const EpochTrace &epoch(size_t i) const;

    /** Most recent epoch. */
    const EpochTrace &lastEpoch() const;

    /**
     * The measured network as a cost-model NetworkModel: layer shapes
     * from the run's real geometry, iactDensity from measurement.
     */
    NetworkModel networkModel(size_t epoch_idx) const;

    /**
     * Trace-driven profiles for epoch i: real masks + measured
     * activation statistics, no synthetic jitter
     * (LayerSparsityProfile::measured).
     */
    std::vector<LayerSparsityProfile> profiles(size_t epoch_idx) const;

  private:
    /** Running elementwise mean: acc = acc*(n-1)/n + v/n. */
    static void accumulateMean(std::vector<double> *acc,
                               const std::vector<double> &v,
                               int64_t count);

    std::vector<EpochTrace> epochs_;
};

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_WORKLOAD_TRACE_H_
