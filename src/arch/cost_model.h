/**
 * @file
 * Analytic latency / energy model ("Timeloop-lite").
 *
 * The paper evaluates Procrustes with Timeloop extended for sparse
 * weight masks, sparse computation, encoding overheads, and load
 * imbalance, plus Accelergy per-access energies (Section VI-A). This
 * model reimplements that methodology from scratch:
 *
 *  Latency.  Work is issued in *waves* — full-PE-array sets of work
 *  tiles, one tile per PE, tiles indexed by the mapping's two spatial
 *  dimensions (Figure 4). Per-tile work scales with the local density
 *  of the phase's sparse operand (from the mask's per-kernel structure)
 *  and wave latency is the maximum over its tiles; the half-tile
 *  balancer transforms the tile multiset before the max when the
 *  mapping admits it. Utilization losses from dims that do not divide
 *  the array fall out of the ceil arithmetic. A layer is additionally
 *  bounded by DRAM bandwidth (64-bit interface).
 *
 *  Energy.  E = MACs*e_mac + MACs*k_rf*e_rf + GLB accesses*e_glb +
 *  DRAM words*e_dram. GLB traffic per operand is its (sparse-adjusted)
 *  unique volume times a refetch factor: one refetch per wave-block
 *  along every spatial dim the operand does NOT depend on — multicast
 *  within a wave is counted once, which is exactly the spatial-reuse
 *  advantage the single-dimension flows preserve. Sparse weights add
 *  CSB overheads (1 mask bit per dense element plus a pointer per
 *  block); the ideal mode of Figure 1 drops them. In trace-driven
 *  mode the density-derived CSB estimate is bypassed entirely: the
 *  workload-trace pipeline supplies the byte count of the weight
 *  image the trainer actually encoded (CsbTensor::totalBytes) and the
 *  GLB/DRAM weight-traffic terms consume it verbatim
 *  (MeasuredLayerStats below).
 */

#ifndef PROCRUSTES_ARCH_COST_MODEL_H_
#define PROCRUSTES_ARCH_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "arch/arch_config.h"
#include "arch/dataflow.h"
#include "arch/load_balancer.h"
#include "arch/sparsity_profile.h"

namespace procrustes {
namespace arch {

/** Load-balancing policy applied by the model. */
enum class BalanceMode
{
    None,       //!< tiles run where they land (Figure 4b)
    HalfTile,   //!< Procrustes half-tile pairing along the sparse axis
    FullChip,   //!< perfect chip-wide balancing (complex interconnect)
};

/** Model behaviour switches. */
struct CostOptions
{
    /** Exploit sparsity (Procrustes) or run the dense baseline. */
    bool sparse = true;

    /** Balancing policy (only meaningful when sparse). */
    BalanceMode balance = BalanceMode::HalfTile;

    /**
     * Figure 1 idealization: perfect load balance, zero-overhead
     * compressed format, free retained-weight selection.
     */
    bool ideal = false;

    /**
     * When true, a layer's latency is bounded below by its DRAM
     * traffic over the 64-bit interface. Default false: double
     * buffering is assumed to overlap DRAM with compute (Timeloop's
     * usual reporting); DRAM traffic always counts towards energy.
     */
    bool dramBound = false;

    /**
     * Overlap-aware DRAM->GLB refill mirror of the cycle simulator's
     * SimConfig::dramWordsPerCycle front end: when positive, a phase's
     * latency is bounded below by its DRAM word traffic streamed at
     * this rate (cycles = max(cycles, dram_words / rate)) — refill
     * fully double-buffered against compute, only the excess exposed.
     * Like dramBound but at an explicit bandwidth, so the analytic
     * model and a refill-charging simulation stay comparable.
     * Non-positive (default) disables the bound.
     */
    double dramRefillWordsPerCycle = -1.0;

    /**
     * Shard-interconnect bandwidth in 32-bit words per cycle: when
     * positive and the trace supplies measured gradient-exchange bytes
     * (MeasuredLayerStats::exchangeBytes, from the scale-out shard
     * engine), the weight-update phase is additionally bounded below
     * by streaming those bytes at this rate — the allreduce is
     * overlapped with weight-update compute and only the excess
     * extends the phase, mirroring the DRAM-refill modelling above.
     * Non-positive (default) disables the term.
     */
    double interconnectWordsPerCycle = -1.0;
};

/**
 * Kernels per work tile along the spatialized weight dimension:
 * bounded by half the register file (weight-stationary residency) and
 * never more than what one pass over the dimension requires. Single
 * kernels only when the dimension is small or kernels are large.
 */
int64_t weightTileChunk(const ArrayConfig &cfg, const LayerShape &layer,
                        int64_t ext, int64_t array_dim);

/** One PE's tile of an RF-chunked weight-stationary wave. */
struct ChunkTileRef
{
    int64_t index0 = 0;     //!< in-range index along the first dim
    int64_t chunkBase = 0;  //!< first kernel of the chunk (second dim)
    int64_t chunkCount = 0; //!< kernels in this PE's chunk
};

/**
 * Per-wave tile geometry of the RF-chunked weight-stationary tiling
 * (C,K-style mappings where both spatial dims index the weights):
 * one inner vector per wave, one ChunkTileRef per active PE, in issue
 * order. Shared by the modelled waves (CostModel::evaluatePhase) and
 * the measured-mask replay (arch/trace_imbalance.h) so the two can
 * never tile at different granularities.
 */
std::vector<std::vector<ChunkTileRef>>
weightChunkWaves(const ArrayConfig &cfg, const LayerShape &layer,
                 int64_t ext0, int64_t ext1);

/**
 * Measured per-layer facts that replace modelled estimates — the seam
 * through which the workload-trace pipeline feeds the cost model. Any
 * field left negative keeps the corresponding modelled estimate, so a
 * default-constructed instance reproduces pure modelling.
 */
struct MeasuredLayerStats
{
    /**
     * Executed MACs of the phase as tallied by the zero-skipping CSB
     * executors. Replaces the density-estimated MAC count in the MAC /
     * register-file energy accounting and the reported `macs`;
     * wave-level latency still comes from the profile's density
     * structure.
     */
    double macs = -1.0;

    /**
     * Compressed weight footprint in bytes (CsbTensor::totalBytes:
     * packed values + mask bits + block pointers) as measured from the
     * trainer's real encode. On a sparsity-exploiting non-ideal
     * configuration this replaces the density-derived CSB size in the
     * GLB/DRAM weight-traffic terms. The ideal mode (Figure 1) keeps
     * its zero-overhead estimate: measured bytes include the format
     * overhead the idealization assumes away.
     */
    double csbWeightBytes = -1.0;

    /**
     * Dense weight footprint in bytes (4 per position) — the image the
     * dense baseline streams; consumed by non-sparse configurations.
     */
    double denseWeightBytes = -1.0;

    /**
     * Measured cross-shard gradient-exchange wire bytes for this
     * layer in one step (mask-live packed values under a sparse
     * configuration, the dense twin for the dense baseline). Priced by
     * CostOptions::interconnectWordsPerCycle in the weight-update
     * phase; negative (default) means no exchange was measured.
     */
    double exchangeBytes = -1.0;
};

/** Latency and energy of one (layer, phase) evaluation. */
struct PhaseCost
{
    double cycles = 0.0;         //!< max(compute, DRAM-bound)
    double computeCycles = 0.0;
    double dramCycles = 0.0;
    /** Cycles to stream measured gradient-exchange bytes over the
        shard interconnect (weight-update phase only; zero unless
        CostOptions::interconnectWordsPerCycle is set and the trace
        measured an exchange). */
    double interconnectCycles = 0.0;
    double macs = 0.0;           //!< effective (sparsity-skipped) MACs
    double macEnergyJ = 0.0;
    double rfEnergyJ = 0.0;
    double glbEnergyJ = 0.0;
    double dramEnergyJ = 0.0;

    double
    totalEnergyJ() const
    {
        return macEnergyJ + rfEnergyJ + glbEnergyJ + dramEnergyJ;
    }

    PhaseCost &operator+=(const PhaseCost &o);
};

/** Per-wave latency statistics (for the imbalance histograms). */
struct WaveStats
{
    double maxWork = 0.0;    //!< wave latency (cycles)
    double meanWork = 0.0;   //!< perfectly balanced latency

    /** Execution overhead versus perfect balance (Figures 5/13). */
    double
    overhead() const
    {
        return meanWork > 0.0 ? maxWork / meanWork - 1.0 : 0.0;
    }
};

/** Analytic per-phase cost model. */
class CostModel
{
  public:
    CostModel(const ArrayConfig &cfg, const CostOptions &opts)
        : cfg_(cfg), opts_(opts)
    {}

    /**
     * Evaluate one layer in one phase under one mapping.
     *
     * @param measured measured quantities from the workload-trace
     *        pipeline (executed MACs, compressed/dense weight bytes).
     *        Each non-negative field replaces its modelled estimate;
     *        the default instance keeps pure modelling.
     */
    PhaseCost evaluatePhase(const LayerShape &layer, Phase phase,
                            MappingKind mapping,
                            const LayerSparsityProfile &profile,
                            int64_t batch,
                            const MeasuredLayerStats &measured = {}) const;

    /** Per-wave latency stats (drives Figures 5 and 13). */
    std::vector<WaveStats> waveStats(const LayerShape &layer, Phase phase,
                                     MappingKind mapping,
                                     const LayerSparsityProfile &profile,
                                     int64_t batch) const;

    const ArrayConfig &config() const { return cfg_; }
    const CostOptions &options() const { return opts_; }

  private:
    /** Density of the phase's sparse operand, or 1 in dense mode. */
    double effectiveDensity(Phase phase,
                            const LayerSparsityProfile &profile) const;

    /** Slice density of the sparse operand along one spatial dim. */
    double sliceDensity(const LayerSparsityProfile &profile, Operand op,
                        Dim d, int64_t idx) const;

    /** Half-split slice densities (for the balancer). */
    TileHalves sliceHalves(const LayerSparsityProfile &profile,
                           Operand op, Dim d, int64_t idx) const;

    /** Density when both spatial dims index the sparse operand. */
    double pairDensity(const LayerSparsityProfile &profile, Operand op,
                       Dim d0, int64_t i0, Dim d1, int64_t i1) const;

    /** Compute-side latency: sum of wave maxima. */
    double computeLatency(const LayerShape &layer, Phase phase,
                          MappingKind mapping,
                          const LayerSparsityProfile &profile,
                          int64_t batch) const;

    /** Wave stats for weight-sparse both-axes mappings (RF-chunked). */
    std::vector<WaveStats> chunkedWeightWaves(
        const LayerShape &layer, Phase phase, MappingKind mapping,
        const LayerSparsityProfile &profile, int64_t batch) const;

    /** GLB access count for the whole phase. */
    double glbAccesses(const LayerShape &layer, Phase phase,
                       MappingKind mapping,
                       const LayerSparsityProfile &profile,
                       int64_t batch,
                       const MeasuredLayerStats &measured) const;

    /** DRAM words moved for the whole phase. */
    double dramWords(const LayerShape &layer, Phase phase,
                     const LayerSparsityProfile &profile, int64_t batch,
                     const MeasuredLayerStats &measured) const;

    /** Stored (GLB/DRAM) word count of an operand in this phase. */
    double storedWords(const LayerShape &layer, Phase phase, Operand op,
                       const LayerSparsityProfile &profile,
                       int64_t batch,
                       const MeasuredLayerStats &measured) const;

    /**
     * Word count of the weight image this configuration streams:
     * measured bytes when the trace supplies them (compressed for
     * sparse non-ideal configurations, dense for the baseline),
     * negative when no measurement applies and the modelled estimate
     * must stand.
     */
    double measuredWeightWords(const MeasuredLayerStats &measured) const;

    ArrayConfig cfg_;
    CostOptions opts_;
};

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_COST_MODEL_H_
