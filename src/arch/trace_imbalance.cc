#include "arch/trace_imbalance.h"

#include <algorithm>
#include <utility>

#include "arch/cost_model.h"
#include "arch/dataflow.h"
#include "common/logging.h"
#include "common/math_utils.h"

namespace procrustes {
namespace arch {

namespace {

/** Measured mean density with an index wrapped into a vector, or the
    scalar mean when no vector was measured (ragged epochs drop them). */
double
wrapped(const std::vector<double> &v, int64_t idx, double fallback)
{
    if (v.empty())
        return fallback;
    return v[static_cast<size_t>(idx) % v.size()];
}

} // namespace

TileHalves
measuredSliceWork(const LayerTrace &layer, Operand sp, Dim d, int64_t idx)
{
    const sparse::SparsityMask &mask = layer.mask;
    TileHalves h;
    if (sp == Operand::Weights) {
        if (d == Dim::K) {
            // One K-slice per PE, halved along C — the axis the
            // half-tile balancer cuts (Figure 9).
            const int64_t split = mask.C / 2;
            if (mask.C <= 1) {
                const double w = static_cast<double>(
                    mask.tileNnz(idx, idx + 1, 0, mask.C));
                h.first = w / 2.0;
                h.second = w / 2.0;
                return h;
            }
            h.first = static_cast<double>(
                mask.tileNnz(idx, idx + 1, 0, split));
            h.second = static_cast<double>(
                mask.tileNnz(idx, idx + 1, split, mask.C));
            return h;
        }
        if (d == Dim::C) {
            const int64_t split = mask.K / 2;
            if (mask.K <= 1) {
                const double w = static_cast<double>(
                    mask.tileNnz(0, mask.K, idx, idx + 1));
                h.first = w / 2.0;
                h.second = w / 2.0;
                return h;
            }
            h.first = static_cast<double>(
                mask.tileNnz(0, split, idx, idx + 1));
            h.second = static_cast<double>(
                mask.tileNnz(split, mask.K, idx, idx + 1));
            return h;
        }
        PANIC("weights sliced along a non-weight dim");
    }
    if (d == Dim::N) {
        // Measured per-sample halves (already split along C by the
        // telemetry scan); fall back to an even split of the sample
        // density, then to the scalar mean.
        const double sample =
            wrapped(layer.iacts.perSample, idx, layer.iacts.mean);
        if (!layer.iacts.perSampleHalf.empty()) {
            h.first = wrapped(layer.iacts.perSampleHalf, idx * 2,
                              sample / 2.0);
            h.second = wrapped(layer.iacts.perSampleHalf, idx * 2 + 1,
                               sample / 2.0);
            return h;
        }
        h.first = sample / 2.0;
        h.second = sample / 2.0;
        return h;
    }
    if (d == Dim::C) {
        const double chan =
            wrapped(layer.iacts.perChannel, idx, layer.iacts.mean);
        h.first = chan / 2.0;
        h.second = chan / 2.0;
        return h;
    }
    PANIC("iacts sliced along an unsupported dim");
}

double
measuredPairWork(const LayerTrace &layer, Operand sp, Dim d0, int64_t i0,
                 Dim d1, int64_t i1)
{
    if (sp == Operand::Weights) {
        // Only the C,K pairing can index weights in both dims.
        const int64_t k = d0 == Dim::K ? i0 : i1;
        const int64_t c = d0 == Dim::K ? i1 : i0;
        return static_cast<double>(layer.mask.blockNnz(k, c));
    }
    // Activation pairings: ratio-combine the measured marginals. C and
    // N index their per-slot vectors directly; P and Q map the output
    // location onto the measured *input-space* spatial marginals
    // through the layer stride (clamped to the measured extent).
    double work = 1.0;
    bool any = false;
    for (const auto &di : {std::make_pair(d0, i0), std::make_pair(d1, i1)}) {
        if (di.first == Dim::N) {
            work *= wrapped(layer.iacts.perSample, di.second,
                            layer.iacts.mean);
            any = true;
        } else if (di.first == Dim::C) {
            work *= wrapped(layer.iacts.perChannel, di.second,
                            layer.iacts.mean);
            any = true;
        } else if (di.first == Dim::P || di.first == Dim::Q) {
            const std::vector<double> &m = di.first == Dim::P
                                               ? layer.iacts.perRow
                                               : layer.iacts.perCol;
            if (!m.empty()) {
                const int64_t last =
                    static_cast<int64_t>(m.size()) - 1;
                const int64_t at =
                    std::min(di.second * layer.shape.stride, last);
                work *= m[static_cast<size_t>(at)];
                any = true;
            }
        }
    }
    if (!any)
        return layer.iacts.mean;
    const double mean = std::max(layer.iacts.mean, 1e-9);
    return clampd(work / mean, 0.0, 1.0);
}

std::vector<std::vector<TileHalves>>
measuredLayerWaves(const LayerTrace &layer, Phase phase,
                   MappingKind mapping, const ArrayConfig &cfg,
                   int64_t batch)
{
    const LayerShape &shape = layer.shape;
    const auto dims = spatialDims(mapping);
    const int64_t a0 = cfg.rows;
    const int64_t a1 = cfg.cols;
    const int64_t ext0 = dimExtent(shape, dims[0], batch);
    const int64_t ext1 = dimExtent(shape, dims[1], batch);
    const Operand sp = sparseOperand(phase);
    const bool dep0 = dependsOn(sp, dims[0]);
    const bool dep1 = dependsOn(sp, dims[1]);

    std::vector<std::vector<TileHalves>> waves;
    const int64_t blocks0 = ceilDiv(ext0, a0);
    const int64_t blocks1 = ceilDiv(ext1, a1);

    if (!dep0 && !dep1) {
        // The sparse operand is broadcast: every PE of every wave
        // carries the same work by construction.
        waves.assign(static_cast<size_t>(blocks0 * blocks1),
                     {TileHalves{0.5, 0.5}});
        return waves;
    }

    if (dep0 && dep1 && sp == Operand::Weights) {
        // Weight-stationary C,K tiling: each PE holds an RF-bounded
        // chunk of kernels along the second spatial dim — the exact
        // geometry of the modelled waves (weightChunkWaves is shared
        // with CostModel) — and its work is the summed live count of
        // the chunk. Halves split evenly: half-tile balancing is never
        // admissible on two sparse axes, so only the total is ever
        // consumed.
        for (const auto &chunk_tiles :
             weightChunkWaves(cfg, shape, ext0, ext1)) {
            std::vector<TileHalves> tiles;
            tiles.reserve(chunk_tiles.size());
            for (const ChunkTileRef &t : chunk_tiles) {
                double w = 0.0;
                for (int64_t s = 0; s < t.chunkCount; ++s) {
                    w += measuredPairWork(layer, sp, dims[0], t.index0,
                                          dims[1], t.chunkBase + s);
                }
                tiles.push_back(TileHalves{w / 2.0, w / 2.0});
            }
            waves.push_back(std::move(tiles));
        }
        return waves;
    }

    if (dep0 != dep1) {
        // Sparse along exactly one axis: one tile per index on that
        // axis, replicated (identically) across every block of the
        // dense axis.
        const Dim d = dep0 ? dims[0] : dims[1];
        const int64_t a = dep0 ? a0 : a1;
        const int64_t ext = dep0 ? ext0 : ext1;
        const int64_t dense_blocks = dep0 ? blocks1 : blocks0;
        for (int64_t b = 0; b < ext; b += a) {
            const int64_t count = std::min(a, ext - b);
            std::vector<TileHalves> tiles;
            tiles.reserve(static_cast<size_t>(count));
            for (int64_t i = 0; i < count; ++i)
                tiles.push_back(measuredSliceWork(layer, sp, d, b + i));
            for (int64_t r = 0; r < dense_blocks; ++r)
                waves.push_back(tiles);
        }
        return waves;
    }

    // Sparse along both axes with an activation operand (e.g. the C,N
    // or P,Q pairings in the weight-update phase): per-PE work from
    // the combined measured marginals; no half measurement exists at
    // this granularity, so halves split evenly (half-tile balancing is
    // not admissible on two sparse axes anyway).
    for (int64_t b0 = 0; b0 < ext0; b0 += a0) {
        const int64_t n0 = std::min(a0, ext0 - b0);
        for (int64_t b1 = 0; b1 < ext1; b1 += a1) {
            const int64_t n1 = std::min(a1, ext1 - b1);
            std::vector<TileHalves> tiles;
            tiles.reserve(static_cast<size_t>(n0 * n1));
            for (int64_t i = 0; i < n0; ++i) {
                for (int64_t j = 0; j < n1; ++j) {
                    const double w = measuredPairWork(
                        layer, sp, dims[0], b0 + i, dims[1], b1 + j);
                    tiles.push_back(TileHalves{w / 2.0, w / 2.0});
                }
            }
            waves.push_back(std::move(tiles));
        }
    }
    return waves;
}

namespace {

/** Invoke `fn` on every wave's tile set of an epoch in one phase. */
template <typename Fn>
void
forEachMeasuredWave(const EpochTrace &epoch, Phase phase,
                    MappingKind mapping, const ArrayConfig &cfg, Fn &&fn)
{
    PROCRUSTES_ASSERT(epoch.batchSize > 0, "epoch has no batch size");
    for (const LayerTrace &l : epoch.layers) {
        const auto waves =
            measuredLayerWaves(l, phase, mapping, cfg, epoch.batchSize);
        for (const auto &tiles : waves)
            fn(tiles);
    }
}

} // namespace

std::vector<double>
collectMeasuredOverheads(const EpochTrace &epoch, Phase phase,
                         MappingKind mapping, const ArrayConfig &cfg,
                         BalanceMode balance)
{
    const bool cheap_ok = supportsCheapBalancing(phase, mapping);
    std::vector<double> overheads;
    forEachMeasuredWave(epoch, phase, mapping, cfg,
                        [&](const std::vector<TileHalves> &tiles) {
                            overheads.push_back(
                                waveOverhead(tiles, balance, cheap_ok));
                        });
    return overheads;
}

EpochImbalance
measuredEpochImbalance(const EpochTrace &epoch, MappingKind mapping,
                       const ArrayConfig &cfg, BalanceMode balance,
                       int bins, double bin_width)
{
    std::vector<double> balanced;
    std::vector<double> unbalanced;
    // Forward and Backward tile identically (both are sparse in
    // Operand::Weights — sparseOperand — so waves and the cheap-
    // balancing gate match), so the mask is tiled once and each
    // overhead counted twice to keep the pooled phase weighting.
    for (Phase phase : {Phase::Forward, Phase::WeightUpdate}) {
        const bool cheap_ok = supportsCheapBalancing(phase, mapping);
        const int copies = phase == Phase::Forward ? 2 : 1;
        forEachMeasuredWave(
            epoch, phase, mapping, cfg,
            [&](const std::vector<TileHalves> &tiles) {
                const double b = waveOverhead(tiles, balance, cheap_ok);
                const double u =
                    waveOverhead(tiles, BalanceMode::None, cheap_ok);
                for (int r = 0; r < copies; ++r) {
                    balanced.push_back(b);
                    unbalanced.push_back(u);
                }
            });
    }
    EpochImbalance out;
    out.balanced = buildHistogram(balanced, bins, bin_width);
    out.unbalanced = buildHistogram(unbalanced, bins, bin_width);
    return out;
}

} // namespace arch
} // namespace procrustes
