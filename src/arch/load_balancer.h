/**
 * @file
 * The Procrustes half-tile load balancer (Section IV-C, Figure 9).
 *
 * Work tiles are cut in half along the sparse dimension; because
 * sparsity is uneven, the two halves carry different work. All halves
 * of one full-PE-array working set are sorted by work and matched from
 * opposite ends — the lightest half with the heaviest, the second
 * lightest with the second heaviest, and so on — so every recombined
 * tile lands close to the average. With the minibatch-spatial dataflow
 * (K,N or C,N) the exchange happens along a single array axis, so the
 * interconnect is untouched (Figure 12).
 */

#ifndef PROCRUSTES_ARCH_LOAD_BALANCER_H_
#define PROCRUSTES_ARCH_LOAD_BALANCER_H_

#include <cstdint>
#include <vector>

namespace procrustes {
namespace arch {

/** Work carried by the two halves of one tile. */
struct TileHalves
{
    double first = 0.0;
    double second = 0.0;

    double total() const { return first + second; }
};

/**
 * Rebalance a working set of tiles by half-tile pairing.
 *
 * @param tiles per-slot half works (one entry per PE slot).
 * @return per-slot work after pairing; same size as the input,
 *         sorted by construction from heaviest pair to lightest.
 */
std::vector<double> rebalanceHalfTiles(const std::vector<TileHalves> &tiles);

/** Maximum per-slot work after rebalancing (wave latency). */
double rebalancedMax(const std::vector<TileHalves> &tiles);

/** Maximum per-slot work without rebalancing. */
double unbalancedMax(const std::vector<TileHalves> &tiles);

/** Mean per-slot work — the perfectly balanced wave latency. */
double meanWork(const std::vector<TileHalves> &tiles);

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_LOAD_BALANCER_H_
