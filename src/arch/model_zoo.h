/**
 * @file
 * Layer geometries of the five CNNs the paper evaluates (Table II):
 * VGG-S, WRN-28-10, DenseNet (growth 24, 3 blocks x 10 layers) on
 * CIFAR-10, and ResNet18, MobileNet v2 on ImageNet.
 *
 * The zoo provides exact per-layer operation-space dimensions for the
 * performance model, together with the paper's reference numbers
 * (sparsity factors, accuracies, epoch counts) used by the Table II
 * bench. Mask generation at a network's target sparsity introduces
 * mild layer-level density variation plus kernel-level lognormal
 * structure, standing in for masks extracted from PyTorch runs
 * (DESIGN.md §4).
 */

#ifndef PROCRUSTES_ARCH_MODEL_ZOO_H_
#define PROCRUSTES_ARCH_MODEL_ZOO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "arch/layer_shape.h"
#include "arch/sparsity_profile.h"
#include "sparse/mask.h"

namespace procrustes {
namespace arch {

/** A network as seen by the performance model. */
struct NetworkModel
{
    std::string name;
    std::string dataset;
    std::vector<LayerShape> layers;

    /** Mean input-activation density per layer (1.0 for raw images). */
    std::vector<double> iactDensity;

    /** @name Paper reference values (Table II). */
    /**@{*/
    double paperSparsity = 1.0;   //!< weight compression factor
    int paperEpochs = 0;
    double paperDenseAccuracy = 0.0;
    double paperPrunedAccuracy = 0.0;
    /**@}*/

    /** Total weights across all layers. */
    int64_t denseWeights() const;

    /** Total MACs per input sample. */
    int64_t denseMacsPerSample() const;
};

/** VGG-S: the 9.2x-reduced VGG-16 (~15M weights) on CIFAR-10. */
NetworkModel buildVggS();

/** WRN-28-10 (~36M weights) on CIFAR-10. */
NetworkModel buildWrn2810();

/** DenseNet, growth 24, 3 blocks x 10 layers (~2.7M) on CIFAR-10. */
NetworkModel buildDenseNetS();

/** ResNet18 (~11.7M weights) on ImageNet. */
NetworkModel buildResNet18();

/** MobileNet v2 (~3.5M weights) on ImageNet. */
NetworkModel buildMobileNetV2();

/** All five evaluation networks, in the paper's Table II order. */
std::vector<NetworkModel> allModels();

/**
 * Generate per-layer weight masks at the network's overall sparsity
 * factor: layer densities vary lognormally (sigma ~0.4, renormalized
 * so the weighted mean hits 1/sparsity exactly) and kernels inside a
 * layer vary with the given lognormal sigma.
 */
std::vector<sparse::SparsityMask>
generateMasks(const NetworkModel &model, double sparsity, uint64_t seed,
              double kernel_sigma = 0.3);

/** Bundle masks and activation densities into cost-model profiles. */
std::vector<LayerSparsityProfile>
buildProfiles(const NetworkModel &model,
              const std::vector<sparse::SparsityMask> &masks,
              double iact_sigma = 0.1);

/** Dense profiles (weight density 1) for the baseline accelerator. */
std::vector<LayerSparsityProfile>
buildDenseProfiles(const NetworkModel &model);

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_MODEL_ZOO_H_
