#include "arch/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace procrustes {
namespace arch {

int64_t
weightTileChunk(const ArrayConfig &cfg, const LayerShape &layer,
                int64_t ext, int64_t array_dim)
{
    const int64_t rf_weight_words = (cfg.rfBytesPerPe / 4) * 3 / 4;
    const int64_t by_rf =
        std::max<int64_t>(1, rf_weight_words / (layer.R * layer.S));
    const int64_t by_need = ceilDiv(ext, array_dim);
    return std::min(by_rf, by_need);
}

std::vector<std::vector<ChunkTileRef>>
weightChunkWaves(const ArrayConfig &cfg, const LayerShape &layer,
                 int64_t ext0, int64_t ext1)
{
    const int64_t a0 = cfg.rows;
    const int64_t a1 = cfg.cols;
    const int64_t g = weightTileChunk(cfg, layer, ext1, a1);
    const int64_t stride1 = a1 * g;

    std::vector<std::vector<ChunkTileRef>> waves;
    for (int64_t b0 = 0; b0 < ext0; b0 += a0) {
        const int64_t n0 = std::min(a0, ext0 - b0);
        for (int64_t b1 = 0; b1 < ext1; b1 += stride1) {
            std::vector<ChunkTileRef> tiles;
            for (int64_t i = 0; i < n0; ++i) {
                for (int64_t j = 0; j < a1; ++j) {
                    const int64_t base = b1 + j * g;
                    if (base >= ext1)
                        break;
                    tiles.push_back(ChunkTileRef{
                        b0 + i, base, std::min(g, ext1 - base)});
                }
            }
            if (!tiles.empty())
                waves.push_back(std::move(tiles));
        }
    }
    return waves;
}

PhaseCost &
PhaseCost::operator+=(const PhaseCost &o)
{
    cycles += o.cycles;
    computeCycles += o.computeCycles;
    dramCycles += o.dramCycles;
    interconnectCycles += o.interconnectCycles;
    macs += o.macs;
    macEnergyJ += o.macEnergyJ;
    rfEnergyJ += o.rfEnergyJ;
    glbEnergyJ += o.glbEnergyJ;
    dramEnergyJ += o.dramEnergyJ;
    return *this;
}

double
CostModel::effectiveDensity(Phase phase,
                            const LayerSparsityProfile &profile) const
{
    if (!opts_.sparse)
        return 1.0;
    return sparseOperand(phase) == Operand::Weights
               ? profile.weightDensity()
               : profile.iactDensity();
}

double
CostModel::sliceDensity(const LayerSparsityProfile &profile, Operand op,
                        Dim d, int64_t idx) const
{
    if (op == Operand::Weights) {
        if (d == Dim::K)
            return profile.kDensity(idx);
        if (d == Dim::C)
            return profile.cDensity(idx);
        PANIC("weights sliced along a non-weight dim");
    }
    if (d == Dim::N)
        return profile.iactSampleDensity(idx);
    if (d == Dim::C)
        return profile.iactChannelDensity(idx);
    PANIC("iacts sliced along an unsupported dim");
}

TileHalves
CostModel::sliceHalves(const LayerSparsityProfile &profile, Operand op,
                       Dim d, int64_t idx) const
{
    TileHalves h;
    if (op == Operand::Weights) {
        if (d == Dim::K) {
            h.first = profile.kHalfDensity(idx, 0);
            h.second = profile.kHalfDensity(idx, 1);
        } else if (d == Dim::C) {
            h.first = profile.cHalfDensity(idx, 0);
            h.second = profile.cHalfDensity(idx, 1);
        } else {
            PANIC("weights sliced along a non-weight dim");
        }
        return h;
    }
    if (d == Dim::N) {
        h.first = profile.iactSampleHalfDensity(idx, 0);
        h.second = profile.iactSampleHalfDensity(idx, 1);
    } else if (d == Dim::C) {
        h.first = profile.iactChannelHalfDensity(idx, 0);
        h.second = profile.iactChannelHalfDensity(idx, 1);
    } else {
        PANIC("iacts sliced along an unsupported dim");
    }
    return h;
}

double
CostModel::pairDensity(const LayerSparsityProfile &profile, Operand op,
                       Dim d0, int64_t i0, Dim d1, int64_t i1) const
{
    if (op == Operand::Weights) {
        // Only the C,K pairing can index weights in both dims.
        const int64_t k = d0 == Dim::K ? i0 : i1;
        const int64_t c = d0 == Dim::K ? i1 : i0;
        return profile.kernelDensity(k, c);
    }
    if ((d0 == Dim::P && d1 == Dim::Q) || (d0 == Dim::Q && d1 == Dim::P)) {
        // Keep (p, q) order: the measured spatial marginals are not
        // symmetric under index swap.
        const int64_t p = d0 == Dim::P ? i0 : i1;
        const int64_t q = d0 == Dim::P ? i1 : i0;
        return profile.iactSpatialDensity(p, q);
    }
    // C,N pairing: ratio-combine the marginal densities so the mean
    // stays near the layer's mean activation density.
    const double dens0 = sliceDensity(profile, op, d0, i0);
    const double dens1 = sliceDensity(profile, op, d1, i1);
    const double mean_density = profile.iactDensity();
    return clampd(dens0 * dens1 / std::max(mean_density, 1e-9), 0.01,
                  1.0);
}

std::vector<WaveStats>
CostModel::waveStats(const LayerShape &layer, Phase phase,
                     MappingKind mapping,
                     const LayerSparsityProfile &profile,
                     int64_t batch) const
{
    const auto dims = spatialDims(mapping);
    const int64_t a0 = cfg_.rows;
    const int64_t a1 = cfg_.cols;
    const int64_t ext0 = dimExtent(layer, dims[0], batch);
    const int64_t ext1 = dimExtent(layer, dims[1], batch);
    const double dense_macs =
        static_cast<double>(batch) *
        static_cast<double>(layer.macsPerSample());
    const double per_index =
        dense_macs / static_cast<double>(ext0 * ext1);

    const Operand sp = sparseOperand(phase);
    const bool dep0 = dependsOn(sp, dims[0]);
    const bool dep1 = dependsOn(sp, dims[1]);
    const double global_density = effectiveDensity(phase, profile);
    const bool model_structure = opts_.sparse && !opts_.ideal;
    const bool cheap_ok = supportsCheapBalancing(phase, mapping);

    if (model_structure && dep0 && dep1 && sp == Operand::Weights)
        return chunkedWeightWaves(layer, phase, mapping, profile, batch);

    std::vector<WaveStats> waves;
    waves.reserve(static_cast<size_t>(ceilDiv(ext0, a0) *
                                      ceilDiv(ext1, a1)));

    for (int64_t b0 = 0; b0 < ext0; b0 += a0) {
        const int64_t n0 = std::min(a0, ext0 - b0);
        for (int64_t b1 = 0; b1 < ext1; b1 += a1) {
            const int64_t n1 = std::min(a1, ext1 - b1);
            WaveStats ws;

            if (!model_structure || (!dep0 && !dep1)) {
                // Dense, ideal, or a broadcast sparse operand: every
                // active PE carries the same work.
                ws.maxWork = per_index * global_density;
                ws.meanWork = ws.maxWork;
            } else if (dep0 != dep1) {
                // Sparse along exactly one axis: one tile per index on
                // that axis, replicated across the other axis.
                const Dim d = dep0 ? dims[0] : dims[1];
                const int64_t base = dep0 ? b0 : b1;
                const int64_t count = dep0 ? n0 : n1;
                std::vector<TileHalves> tiles;
                tiles.reserve(static_cast<size_t>(count));
                double sum = 0.0;
                for (int64_t i = 0; i < count; ++i) {
                    TileHalves h =
                        sliceHalves(profile, sp, d, base + i);
                    h.first *= per_index;
                    h.second *= per_index;
                    sum += h.total();
                    tiles.push_back(h);
                }
                ws.meanWork = sum / static_cast<double>(count);
                if (opts_.balance == BalanceMode::FullChip) {
                    ws.maxWork = ws.meanWork;
                } else if (opts_.balance == BalanceMode::HalfTile &&
                           cheap_ok) {
                    ws.maxWork = rebalancedMax(tiles);
                } else {
                    ws.maxWork = unbalancedMax(tiles);
                }
            } else {
                // Sparse along both axes (e.g. weight-sparse C,K):
                // per-PE work follows the kernel densities; half-tile
                // pairing cannot run on the simple interconnect here
                // (Figure 10), so only chip-wide balancing helps.
                double worst = 0.0;
                double sum = 0.0;
                for (int64_t i = 0; i < n0; ++i) {
                    for (int64_t j = 0; j < n1; ++j) {
                        const double dens = pairDensity(
                            profile, sp, dims[0], b0 + i, dims[1],
                            b1 + j);
                        const double work = per_index * dens;
                        worst = std::max(worst, work);
                        sum += work;
                    }
                }
                ws.meanWork = sum / static_cast<double>(n0 * n1);
                ws.maxWork = opts_.balance == BalanceMode::FullChip
                                 ? ws.meanWork
                                 : worst;
            }
            waves.push_back(ws);
        }
    }
    return waves;
}

std::vector<WaveStats>
CostModel::chunkedWeightWaves(const LayerShape &layer, Phase phase,
                              MappingKind mapping,
                              const LayerSparsityProfile &profile,
                              int64_t batch) const
{
    // Weight-stationary tiling (C,K-style mappings): each PE holds a
    // chunk of kernels along the second spatial dim, bounded by its
    // register file, and streams activations over it. Per-PE work is
    // the summed density of its chunk — coarser granularity than a
    // single kernel, which is what keeps the Figure 5 overheads in
    // the tens of percent rather than multiples.
    (void)phase;   // all phases tile weights identically here
    const auto dims = spatialDims(mapping);
    const int64_t ext0 = dimExtent(layer, dims[0], batch);
    const int64_t ext1 = dimExtent(layer, dims[1], batch);
    const double dense_macs =
        static_cast<double>(batch) *
        static_cast<double>(layer.macsPerSample());
    const double per_index =
        dense_macs / static_cast<double>(ext0 * ext1);

    std::vector<WaveStats> waves;
    for (const auto &tiles : weightChunkWaves(cfg_, layer, ext0, ext1)) {
        WaveStats ws;
        double worst = 0.0;
        double sum = 0.0;
        for (const ChunkTileRef &t : tiles) {
            double work = 0.0;
            for (int64_t s = 0; s < t.chunkCount; ++s) {
                work += per_index *
                        pairDensity(profile, Operand::Weights, dims[0],
                                    t.index0, dims[1], t.chunkBase + s);
            }
            worst = std::max(worst, work);
            sum += work;
        }
        ws.meanWork = sum / static_cast<double>(tiles.size());
        ws.maxWork = opts_.balance == BalanceMode::FullChip ? ws.meanWork
                                                            : worst;
        waves.push_back(ws);
    }
    return waves;
}

double
CostModel::computeLatency(const LayerShape &layer, Phase phase,
                          MappingKind mapping,
                          const LayerSparsityProfile &profile,
                          int64_t batch) const
{
    if (opts_.ideal) {
        // Figure 1 idealization: every PE always busy, all sparsity
        // converted to time.
        const double dense_macs =
            static_cast<double>(batch) *
            static_cast<double>(layer.macsPerSample());
        return dense_macs * effectiveDensity(phase, profile) /
               static_cast<double>(cfg_.pes());
    }
    double cycles = 0.0;
    for (const WaveStats &ws :
         waveStats(layer, phase, mapping, profile, batch))
        cycles += ws.maxWork;
    return cycles;
}

double
CostModel::measuredWeightWords(const MeasuredLayerStats &measured) const
{
    if (!opts_.sparse)
        return measured.denseWeightBytes >= 0.0
                   ? measured.denseWeightBytes / 4.0
                   : -1.0;
    // Ideal mode assumes a zero-overhead format; the measured bytes
    // include the real CSB mask/pointer overheads, so the modelled
    // (overhead-free) estimate stands.
    if (opts_.ideal)
        return -1.0;
    return measured.csbWeightBytes >= 0.0
               ? measured.csbWeightBytes / 4.0
               : -1.0;
}

double
CostModel::storedWords(const LayerShape &layer, Phase phase, Operand op,
                       const LayerSparsityProfile &profile, int64_t batch,
                       const MeasuredLayerStats &measured) const
{
    const double vol = static_cast<double>(
        operandVolume(layer, op, batch));
    const bool compressed =
        opts_.sparse && op == sparseOperand(phase) &&
        op != outputOperand(phase);
    if (op == Operand::Weights) {
        // Measured weight image (trace-driven mode): the byte count
        // the trainer actually encoded replaces the density-derived
        // estimate, compressed or dense as this configuration streams
        // it (measuredWeightWords declines in ideal mode).
        const double words = measuredWeightWords(measured);
        if (words >= 0.0)
            return words;
    }
    if (!compressed)
        return vol;
    const double density = op == Operand::Weights
                               ? profile.weightDensity()
                               : profile.iactDensity();
    double words = vol * density;
    if (!opts_.ideal) {
        // CSB overheads: one mask bit per dense element plus one
        // 32-bit pointer per block (kernels for weights, 64-element
        // regions for activations).
        words += vol / 32.0;
        const double blocks =
            op == Operand::Weights
                ? static_cast<double>(layer.K * layer.effectiveC())
                : vol / 64.0;
        words += blocks;
    }
    return words;
}

double
CostModel::glbAccesses(const LayerShape &layer, Phase phase,
                       MappingKind mapping,
                       const LayerSparsityProfile &profile, int64_t batch,
                       const MeasuredLayerStats &measured) const
{
    const auto dims = spatialDims(mapping);
    const Operand out = outputOperand(phase);
    double spatial_traffic = 0.0;
    double once_traffic = 0.0;     // resident-operand blocking bound
    double smallest_input = 1e300;

    for (Operand op : kAllOperands) {
        // Refetch: once per wave-block along every spatial dim the
        // operand does not depend on. Sharing within a wave (multicast
        // or in-network reduction) is counted once — the spatial-reuse
        // benefit of the single-dimension flows.
        double refetch = 1.0;
        for (int axis = 0; axis < 2; ++axis) {
            if (!dependsOn(op, dims[axis])) {
                const int64_t ext =
                    dimExtent(layer, dims[axis], batch);
                const int64_t a =
                    axis == 0 ? cfg_.rows : cfg_.cols;
                refetch *= static_cast<double>(ceilDiv(ext, a));
            }
        }
        if (op == out) {
            // Outputs are written per visit and re-read for
            // accumulation on every visit after the first. Partial
            // sums are dense regardless of operand sparsity.
            const double vol = static_cast<double>(
                operandVolume(layer, op, batch));
            spatial_traffic += vol * (2.0 * refetch - 1.0);
            once_traffic += vol;
        } else {
            const double words =
                storedWords(layer, phase, op, profile, batch, measured);
            spatial_traffic += words * refetch;
            once_traffic += words;
            smallest_input = std::min(smallest_input, words);
        }
    }

    // GLB-level temporal blocking: when the smaller input operand
    // (e.g. the compressed weights of a 1x1 layer) fits in half the
    // GLB, the schedule can hold it resident and stream everything
    // else exactly once — the optimization Timeloop's mapping search
    // would find. Use whichever schedule moves less data.
    if (smallest_input * 4.0 <=
        static_cast<double>(cfg_.glbBytes) / 2.0) {
        return std::min(spatial_traffic, once_traffic);
    }
    return spatial_traffic;
}

double
CostModel::dramWords(const LayerShape &layer, Phase phase,
                     const LayerSparsityProfile &profile, int64_t batch,
                     const MeasuredLayerStats &measured) const
{
    const double w_dense = static_cast<double>(
        operandVolume(layer, Operand::Weights, batch));
    const double x_dense = static_cast<double>(
        operandVolume(layer, Operand::Iacts, batch));
    const double y_dense = static_cast<double>(
        operandVolume(layer, Operand::Oacts, batch));

    // Compressed views (CSB) when sparsity is exploited. The measured
    // weight image — the byte count of the trainer's real encode —
    // overrides the density-derived estimate when the trace supplies
    // it (trace-driven mode).
    const double mask_over = opts_.ideal ? 0.0 : 1.0 / 32.0;
    const double w_measured = measuredWeightWords(measured);
    const double w_stored =
        w_measured >= 0.0
            ? w_measured
            : (opts_.sparse ? w_dense * profile.weightDensity() +
                                  w_dense * mask_over
                            : w_dense);
    const double x_comp =
        x_dense * profile.iactDensity() + x_dense * mask_over;

    switch (phase) {
      case Phase::Forward:
        // Read weights and dense inputs; write dense outputs for the
        // next layer plus (sparse training) the compressed copy of
        // this layer's inputs kept for the weight-update phase
        // (Section IV-A, Gist-style dual representation).
        return w_stored + x_dense + y_dense +
               (opts_.sparse ? x_comp : 0.0);
      case Phase::Backward:
        // Read weights and the dense incoming gradient; write the
        // dense outgoing gradient.
        return w_stored + y_dense + x_dense;
      case Phase::WeightUpdate:
        // Read the stored inputs and the dense gradient; write weight
        // gradients — with sparse training the QE unit discards all
        // but the tracked set on the way to DRAM (Section V).
        return (opts_.sparse ? x_comp : x_dense) + y_dense + w_stored;
    }
    PANIC("unknown phase");
}

PhaseCost
CostModel::evaluatePhase(const LayerShape &layer, Phase phase,
                         MappingKind mapping,
                         const LayerSparsityProfile &profile,
                         int64_t batch,
                         const MeasuredLayerStats &measured) const
{
    PROCRUSTES_ASSERT(batch > 0, "batch must be positive");
    PhaseCost cost;

    const double dense_macs =
        static_cast<double>(batch) *
        static_cast<double>(layer.macsPerSample());
    cost.macs = measured.macs >= 0.0
                    ? measured.macs
                    : dense_macs * effectiveDensity(phase, profile);

    cost.computeCycles =
        computeLatency(layer, phase, mapping, profile, batch);
    const double dwords =
        dramWords(layer, phase, profile, batch, measured);
    cost.dramCycles = dwords / cfg_.dramWordsPerCycle();
    cost.cycles = opts_.dramBound
                      ? std::max(cost.computeCycles, cost.dramCycles)
                      : cost.computeCycles;
    // Refill mirror of the cycle simulator's DRAM front end: the same
    // words at an explicit bandwidth, double-buffered against compute
    // so only the excess extends the phase.
    if (opts_.dramRefillWordsPerCycle > 0.0)
        cost.cycles = std::max(cost.cycles,
                               dwords / opts_.dramRefillWordsPerCycle);
    // Shard-interconnect bound: the allreduce of this layer's measured
    // gradient-exchange bytes streams at interconnectWordsPerCycle,
    // overlapped with the weight-update compute window (the exchange
    // pipelines behind dW production); only the excess extends the
    // phase. Words are 32-bit, matching the DRAM interface accounting.
    if (phase == Phase::WeightUpdate &&
        opts_.interconnectWordsPerCycle > 0.0 &&
        measured.exchangeBytes >= 0.0) {
        cost.interconnectCycles = (measured.exchangeBytes / 4.0) /
                                  opts_.interconnectWordsPerCycle;
        cost.cycles = std::max(cost.cycles, cost.interconnectCycles);
    }

    cost.macEnergyJ = cost.macs * cfg_.macPj * 1e-12;
    cost.rfEnergyJ =
        cost.macs * cfg_.rfAccessesPerMac * cfg_.rfAccessPj * 1e-12;
    cost.glbEnergyJ =
        glbAccesses(layer, phase, mapping, profile, batch, measured) *
        cfg_.glbAccessPj * 1e-12;
    cost.dramEnergyJ = dwords * cfg_.dramAccessPj * 1e-12;
    return cost;
}

} // namespace arch
} // namespace procrustes
