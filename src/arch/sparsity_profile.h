/**
 * @file
 * Per-layer sparsity description consumed by the cost model.
 *
 * The latency model needs more than a global density: load imbalance is
 * driven by how non-zeros distribute across work tiles (Figure 5), so
 * the profile carries per-kernel non-zero counts from a SparsityMask
 * and derives slice densities along any spatialized dimension,
 * including the half-tile splits the load balancer pairs up.
 *
 * Activation sparsity (exploited in the weight-update phase) has no
 * stored mask; per-sample / per-spatial variation is modelled with
 * deterministic hash-derived jitter around the layer's mean density —
 * unless the profile was built through measured(), in which case the
 * per-sample / per-sample-half / per-channel densities come from a
 * real training step (the workload-trace pipeline) and the jitter is
 * disabled entirely.
 */

#ifndef PROCRUSTES_ARCH_SPARSITY_PROFILE_H_
#define PROCRUSTES_ARCH_SPARSITY_PROFILE_H_

#include <cstdint>
#include <vector>

#include "arch/layer_shape.h"
#include "arch/phase.h"
#include "sparse/mask.h"

namespace procrustes {
namespace arch {

/**
 * Measured input-activation statistics of one layer, as accumulated by
 * the workload-trace pipeline from real training steps. Vectors may be
 * empty (fall back to `mean`); indices beyond a vector's length wrap,
 * so a profile measured at batch B still answers queries at other
 * batch sizes.
 */
struct MeasuredIactStats
{
    double mean = 1.0;                    //!< layer-mean density
    std::vector<double> perSample;        //!< [batch]
    /** [batch * 2], halves split along C; halves of sample n sum to
        perSample[n]. */
    std::vector<double> perSampleHalf;
    std::vector<double> perChannel;       //!< [C]
    /** Spatial marginals in *input* coordinates, rank-4 layers only
        (empty for fc): density of input row / column across the other
        axes. Output-location queries map through the layer stride
        (min(idx * stride, extent - 1)). */
    std::vector<double> perRow;           //!< [H]
    std::vector<double> perCol;           //!< [W]
};

/** Sparsity facts the cost model needs about one layer. */
class LayerSparsityProfile
{
  public:
    /** Dense profile (weight and activation density 1.0). */
    LayerSparsityProfile() = default;

    /**
     * Build from a weight mask plus a mean input-activation density.
     * @param iact_sigma relative jitter of per-sample / per-location
     *        activation density (drives wu-phase imbalance).
     */
    LayerSparsityProfile(const sparse::SparsityMask &mask,
                         double iact_density, double iact_sigma = 0.1,
                         uint64_t seed = 0x5eed);

    /** Profile with uniform weight density but no mask structure. */
    static LayerSparsityProfile uniform(double weight_density,
                                        double iact_density);

    /**
     * Trace-driven profile: a real weight mask plus *measured*
     * activation densities. No synthetic jitter — every per-sample /
     * per-channel / spatial query answers from the measurements (or
     * the measured mean where no finer-grained data exists).
     * @param stride layer stride, used to map output locations onto
     *        the input-space spatial marginals.
     */
    static LayerSparsityProfile measured(const sparse::SparsityMask &mask,
                                         const MeasuredIactStats &iacts,
                                         int64_t stride = 1);

    /** True when activation densities are measured, not modelled. */
    bool isMeasured() const { return measured_; }

    /** Global weight non-zero fraction. */
    double weightDensity() const { return weightDensity_; }

    /** Mean input-activation non-zero fraction. */
    double iactDensity() const { return iactDensity_; }

    /** True when per-kernel structure is available. */
    bool hasMask() const { return kernelElems_ > 0; }

    /** Density of the K-slice k (all C, R, S). */
    double kDensity(int64_t k) const;

    /** Density of half `h` (0/1, split along C) of K-slice k. */
    double kHalfDensity(int64_t k, int h) const;

    /** Density of the C-slice c (all K, R, S). */
    double cDensity(int64_t c) const;

    /** Density of half `h` (0/1, split along K) of C-slice c. */
    double cHalfDensity(int64_t c, int h) const;

    /** Density of kernel (k, c). */
    double kernelDensity(int64_t k, int64_t c) const;

    /** Input-activation density of sample n (deterministic jitter). */
    double iactSampleDensity(int64_t n) const;

    /** Half-split (along C) of sample n's activation density. */
    double iactSampleHalfDensity(int64_t n, int h) const;

    /** Input-activation density of channel c. */
    double iactChannelDensity(int64_t c) const;

    /** Half-split (along K... i.e. jitter) of channel c's density. */
    double iactChannelHalfDensity(int64_t c, int h) const;

    /** Input-activation density at output location (p, q). */
    double iactSpatialDensity(int64_t p, int64_t q) const;

    /** Mask geometry (K extent). */
    int64_t maskK() const { return maskK_; }

    /** Mask geometry (C extent). */
    int64_t maskC() const { return maskC_; }

  private:
    double jitter(uint64_t a, uint64_t b) const;

    double weightDensity_ = 1.0;
    double iactDensity_ = 1.0;
    double iactSigma_ = 0.0;
    uint64_t seed_ = 0;
    bool measured_ = false;
    std::vector<double> measSample_;      //!< measured per-sample
    std::vector<double> measSampleHalf_;  //!< measured [n*2+h]
    std::vector<double> measChannel_;     //!< measured per-channel
    std::vector<double> measRow_;         //!< measured per input row
    std::vector<double> measCol_;         //!< measured per input col
    int64_t measStride_ = 1;              //!< output -> input mapping
    int64_t maskK_ = 0;
    int64_t maskC_ = 0;
    int64_t kernelElems_ = 0;
    std::vector<int32_t> kernelNnz_;     //!< [K*C]
    std::vector<int64_t> kNnz_;          //!< per K-slice
    std::vector<int64_t> kHalfNnz_;      //!< [K*2], split along C
    std::vector<int64_t> cNnz_;          //!< per C-slice
    std::vector<int64_t> cHalfNnz_;      //!< [C*2], split along K
};

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_SPARSITY_PROFILE_H_
