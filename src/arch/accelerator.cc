#include "arch/accelerator.h"

#include "common/logging.h"

namespace procrustes {
namespace arch {

PhaseCost
NetworkCost::total() const
{
    PhaseCost t;
    t += fw;
    t += bw;
    t += wu;
    return t;
}

NetworkCost
Accelerator::evaluate(const NetworkModel &net,
                      const std::vector<LayerSparsityProfile> &profiles,
                      int64_t batch) const
{
    PROCRUSTES_ASSERT(profiles.size() == net.layers.size(),
                      "profile count mismatch");
    NetworkCost cost;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        cost.fw += model_.evaluatePhase(net.layers[i], Phase::Forward,
                                        mapping_, profiles[i], batch);
        cost.bw += model_.evaluatePhase(net.layers[i], Phase::Backward,
                                        mapping_, profiles[i], batch);
        cost.wu += model_.evaluatePhase(net.layers[i],
                                        Phase::WeightUpdate, mapping_,
                                        profiles[i], batch);
    }
    return cost;
}

NetworkCost
Accelerator::evaluateLayer(const LayerShape &layer,
                           const LayerSparsityProfile &profile,
                           int64_t batch) const
{
    NetworkCost cost;
    cost.fw += model_.evaluatePhase(layer, Phase::Forward, mapping_,
                                    profile, batch);
    cost.bw += model_.evaluatePhase(layer, Phase::Backward, mapping_,
                                    profile, batch);
    cost.wu += model_.evaluatePhase(layer, Phase::WeightUpdate, mapping_,
                                    profile, batch);
    return cost;
}

Accelerator
Accelerator::procrustes(const ArrayConfig &cfg)
{
    CostOptions opts;
    opts.sparse = true;
    opts.balance = BalanceMode::HalfTile;
    return {cfg, opts, MappingKind::KN};
}

Accelerator
Accelerator::denseBaseline(const ArrayConfig &cfg)
{
    CostOptions opts;
    opts.sparse = false;
    opts.balance = BalanceMode::None;
    return {cfg, opts, MappingKind::KN};
}

Accelerator
Accelerator::idealSparse(const ArrayConfig &cfg)
{
    CostOptions opts;
    opts.sparse = true;
    opts.ideal = true;
    opts.balance = BalanceMode::FullChip;
    return {cfg, opts, MappingKind::KN};
}

} // namespace arch
} // namespace procrustes
