#include "arch/accelerator.h"

#include <algorithm>
#include <initializer_list>

#include "common/logging.h"

namespace procrustes {
namespace arch {

PhaseCost
NetworkCost::total() const
{
    PhaseCost t;
    t += fw;
    t += bw;
    t += wu;
    return t;
}

NetworkCost
Accelerator::evaluate(const NetworkModel &net,
                      const std::vector<LayerSparsityProfile> &profiles,
                      int64_t batch) const
{
    PROCRUSTES_ASSERT(profiles.size() == net.layers.size(),
                      "profile count mismatch");
    NetworkCost cost;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        cost.fw += model_.evaluatePhase(net.layers[i], Phase::Forward,
                                        mapping_, profiles[i], batch);
        cost.bw += model_.evaluatePhase(net.layers[i], Phase::Backward,
                                        mapping_, profiles[i], batch);
        cost.wu += model_.evaluatePhase(net.layers[i],
                                        Phase::WeightUpdate, mapping_,
                                        profiles[i], batch);
    }
    return cost;
}

NetworkCost
Accelerator::evaluateLayer(const LayerShape &layer,
                           const LayerSparsityProfile &profile,
                           int64_t batch) const
{
    NetworkCost cost;
    cost.fw += model_.evaluatePhase(layer, Phase::Forward, mapping_,
                                    profile, batch);
    cost.bw += model_.evaluatePhase(layer, Phase::Backward, mapping_,
                                    profile, batch);
    cost.wu += model_.evaluatePhase(layer, Phase::WeightUpdate, mapping_,
                                    profile, batch);
    return cost;
}

NetworkCost
Accelerator::evaluateTrace(const WorkloadTrace &trace, size_t epoch_idx,
                           EpochImbalance *imbalance,
                           sim::TraceSimResult *cycle_sim,
                           const sim::SimConfig &sim_cfg) const
{
    const EpochTrace &e = trace.epoch(epoch_idx);
    PROCRUSTES_ASSERT(e.batchSize > 0, "trace has no batch size");
    const auto profiles = trace.profiles(epoch_idx);
    const NetworkModel net = trace.networkModel(epoch_idx);

    NetworkCost cost;
    double analytic_ref = 0.0;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        const LayerTrace &l = e.layers[i];
        // Measured executed-MAC counts stand in for the density
        // estimate only where they describe what this machine would
        // execute: a sparsity-exploiting accelerator on a layer whose
        // counts came from the zero-skipping CSB executors (Conv2d
        // and Linear under KernelBackend::kSparse). The dense
        // baseline executes the full operation space, and layers
        // trained on a dense backend report honest *dense* counts, so
        // both keep the modelled estimate.
        const bool use_measured =
            model_.options().sparse && l.sparseExecuted;
        // The weight image's measured byte counts apply regardless of
        // which backend executed: they describe what *this machine*
        // would store and stream for the run's real mask (dense
        // backends still record a telemetry-only encode). The cost
        // model picks the compressed or dense figure to match its own
        // configuration.
        MeasuredLayerStats fw, bw, wu;
        if (l.csbWeightBytes > 0) {
            fw.csbWeightBytes = static_cast<double>(l.csbWeightBytes);
            bw.csbWeightBytes = fw.csbWeightBytes;
            wu.csbWeightBytes = fw.csbWeightBytes;
        }
        if (l.denseWeightBytes > 0) {
            fw.denseWeightBytes =
                static_cast<double>(l.denseWeightBytes);
            bw.denseWeightBytes = fw.denseWeightBytes;
            wu.denseWeightBytes = fw.denseWeightBytes;
        }
        if (use_measured) {
            fw.macs = l.fwMacsPerStep();
            bw.macs = l.bwDataMacsPerStep();
            wu.macs = l.bwWeightMacsPerStep();
        }
        // Gradient-exchange traffic (scale-out runs only): the trace
        // sums wire bytes over the epoch, the model prices one step.
        // A sparsity-exploiting machine ships the mask-live packed
        // image; the dense baseline ships the dense twin.
        if (l.steps > 0) {
            const int64_t epoch_bytes =
                model_.options().sparse ? l.exchangeCompressedBytes
                                        : l.exchangeDenseBytes;
            wu.exchangeBytes = static_cast<double>(epoch_bytes) /
                               static_cast<double>(l.steps);
        }
        const PhaseCost pc_fw = model_.evaluatePhase(
            net.layers[i], Phase::Forward, mapping_, profiles[i],
            e.batchSize, fw);
        const PhaseCost pc_bw = model_.evaluatePhase(
            net.layers[i], Phase::Backward, mapping_, profiles[i],
            e.batchSize, bw);
        const PhaseCost pc_wu = model_.evaluatePhase(
            net.layers[i], Phase::WeightUpdate, mapping_, profiles[i],
            e.batchSize, wu);
        cost.fw += pc_fw;
        cost.bw += pc_bw;
        cost.wu += pc_wu;
        // Refill-aware analytic reference for the cycle-sim ratio:
        // when the co-run SimConfig charges DRAM->GLB refill, bound
        // each phase below by the same words at the same rate
        // (overlap-aware, matching CostOptions::dramRefillWordsPerCycle
        // semantics); with refill off this is exactly computeCycles.
        for (const PhaseCost &pc : {pc_fw, pc_bw, pc_wu}) {
            double ref = pc.computeCycles;
            if (sim_cfg.dramWordsPerCycle > 0.0) {
                const double dwords =
                    pc.dramCycles * model_.config().dramWordsPerCycle();
                ref = std::max(ref,
                               dwords / sim_cfg.dramWordsPerCycle);
            }
            analytic_ref += ref;
        }
    }
    if (imbalance) {
        *imbalance = measuredEpochImbalance(
            e, mapping_, model_.config(), model_.options().balance);
    }
    if (cycle_sim) {
        *cycle_sim = sim::simulateTraceEpoch(e, mapping_, model_.config(),
                                             sim_cfg,
                                             model_.options().balance);
        cycle_sim->analyticComputeCycles = cost.total().computeCycles;
        cycle_sim->analyticRefCycles = analytic_ref;
        cycle_sim->analyticCycleRatio =
            cycle_sim->analyticRefCycles > 0.0
                ? static_cast<double>(cycle_sim->total.cycles) /
                      cycle_sim->analyticRefCycles
                : -1.0;
    }
    return cost;
}

Accelerator
Accelerator::procrustes(const ArrayConfig &cfg)
{
    CostOptions opts;
    opts.sparse = true;
    opts.balance = BalanceMode::HalfTile;
    return {cfg, opts, MappingKind::KN};
}

Accelerator
Accelerator::denseBaseline(const ArrayConfig &cfg)
{
    CostOptions opts;
    opts.sparse = false;
    opts.balance = BalanceMode::None;
    return {cfg, opts, MappingKind::KN};
}

Accelerator
Accelerator::idealSparse(const ArrayConfig &cfg)
{
    CostOptions opts;
    opts.sparse = true;
    opts.ideal = true;
    opts.balance = BalanceMode::FullChip;
    return {cfg, opts, MappingKind::KN};
}

} // namespace arch
} // namespace procrustes
