#include "arch/imbalance.h"

#include <algorithm>

#include "common/logging.h"

namespace procrustes {
namespace arch {

double
ImbalanceHistogram::fractionAbove(double threshold) const
{
    double total = 0.0;
    for (size_t i = 0; i < fraction.size(); ++i) {
        const double bin_lo = static_cast<double>(i) * binWidth;
        if (bin_lo >= threshold)
            total += fraction[i];
    }
    return total;
}

std::vector<double>
collectOverheads(const NetworkModel &model,
                 const std::vector<LayerSparsityProfile> &profiles,
                 Phase phase, MappingKind mapping, int64_t batch,
                 const ArrayConfig &cfg, BalanceMode balance)
{
    PROCRUSTES_ASSERT(profiles.size() == model.layers.size(),
                      "profile count mismatch");
    CostOptions opts;
    opts.sparse = true;
    opts.balance = balance;
    const CostModel cm(cfg, opts);

    std::vector<double> overheads;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const auto waves = cm.waveStats(model.layers[i], phase, mapping,
                                        profiles[i], batch);
        for (const WaveStats &ws : waves)
            overheads.push_back(ws.overhead());
    }
    return overheads;
}

double
waveOverhead(const std::vector<TileHalves> &tiles, BalanceMode balance,
             bool cheap_ok)
{
    if (tiles.empty())
        return 0.0;
    const double mean = meanWork(tiles);
    if (mean <= 0.0)
        return 0.0;
    double worst;
    if (balance == BalanceMode::FullChip)
        worst = mean;
    else if (balance == BalanceMode::HalfTile && cheap_ok)
        worst = rebalancedMax(tiles);
    else
        worst = unbalancedMax(tiles);
    return worst / mean - 1.0;
}

ImbalanceHistogram
buildHistogram(const std::vector<double> &overheads, int bins,
               double bin_width)
{
    PROCRUSTES_ASSERT(bins > 0 && bin_width > 0.0, "bad histogram spec");
    ImbalanceHistogram h;
    h.binWidth = bin_width;
    h.fraction.assign(static_cast<size_t>(bins), 0.0);
    if (overheads.empty())
        return h;

    double sum = 0.0;
    for (double o : overheads) {
        sum += o;
        h.maxOverhead = std::max(h.maxOverhead, o);
        auto bin = static_cast<size_t>(o / bin_width);
        bin = std::min(bin, static_cast<size_t>(bins - 1));
        h.fraction[bin] += 1.0;
    }
    for (double &f : h.fraction)
        f /= static_cast<double>(overheads.size());
    h.meanOverhead = sum / static_cast<double>(overheads.size());
    return h;
}

} // namespace arch
} // namespace procrustes
