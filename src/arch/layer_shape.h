/**
 * @file
 * Layer geometry for the accelerator performance model.
 *
 * A layer is described by the seven dimensions of the paper's operation
 * space (Algorithm 1): minibatch N (supplied at evaluation time), output
 * channels K, input channels C, filter extents R and S, and output
 * spatial extents P and Q. Fully-connected layers are the degenerate
 * case R = S = P = Q = 1; depthwise convolutions (MobileNet v2) connect
 * each output channel to a single input channel.
 */

#ifndef PROCRUSTES_ARCH_LAYER_SHAPE_H_
#define PROCRUSTES_ARCH_LAYER_SHAPE_H_

#include <cstdint>
#include <string>

namespace procrustes {
namespace arch {

/** Structural class of a layer. */
enum class LayerType
{
    Conv,            //!< standard convolution
    DepthwiseConv,   //!< one filter per channel (groups == C)
    FullyConnected,  //!< matrix multiply
};

/** Geometry of one layer of the operation space. */
struct LayerShape
{
    std::string name;
    LayerType type = LayerType::Conv;
    int64_t K = 0;       //!< output channels (fc: output features)
    int64_t C = 0;       //!< input channels (fc: input features)
    int64_t R = 1;       //!< filter height
    int64_t S = 1;       //!< filter width
    int64_t P = 1;       //!< output height (fc: 1)
    int64_t Q = 1;       //!< output width (fc: 1)
    int64_t stride = 1;

    /** Dense multiply-accumulates per input sample. */
    int64_t macsPerSample() const;

    /** Number of weights. */
    int64_t weightCount() const;

    /** Input activation height (approximate inverse of the conv map). */
    int64_t inH() const { return (P - 1) * stride + R; }

    /** Input activation width. */
    int64_t inW() const { return (Q - 1) * stride + S; }

    /** Input activation element count per sample. */
    int64_t iactsPerSample() const;

    /** Output activation element count per sample. */
    int64_t oactsPerSample() const { return K * P * Q; }

    /**
     * Effective input-channel extent per filter: 1 for depthwise
     * convolutions, C otherwise. This is the "C" that appears in the
     * MAC loop nest.
     */
    int64_t effectiveC() const
    {
        return type == LayerType::DepthwiseConv ? 1 : C;
    }
};

/** Convenience constructors. */
LayerShape convLayer(const std::string &name, int64_t c, int64_t k,
                     int64_t kernel, int64_t in_hw, int64_t stride = 1,
                     int64_t pad = -1);
LayerShape depthwiseLayer(const std::string &name, int64_t channels,
                          int64_t kernel, int64_t in_hw,
                          int64_t stride = 1);
LayerShape fcLayer(const std::string &name, int64_t in_features,
                   int64_t out_features);

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_LAYER_SHAPE_H_
