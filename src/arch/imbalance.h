/**
 * @file
 * Load-imbalance histogram machinery (Figures 5 and 13).
 *
 * The paper characterizes imbalance as the execution-time overhead of
 * each full-PE-array working set: how much longer the slowest PE runs
 * than a perfectly balanced distribution of the same work. Figure 5
 * histograms these overheads for the unbalanced weight-stationary C,K
 * mapping; Figure 13 repeats the exercise after half-tile balancing
 * under the minibatch-spatial dataflow.
 */

#ifndef PROCRUSTES_ARCH_IMBALANCE_H_
#define PROCRUSTES_ARCH_IMBALANCE_H_

#include <vector>

#include "arch/cost_model.h"
#include "arch/model_zoo.h"

namespace procrustes {
namespace arch {

/** A binned overhead distribution over working sets. */
struct ImbalanceHistogram
{
    double binWidth = 0.0;
    std::vector<double> fraction;   //!< per-bin fraction of working sets
    double meanOverhead = 0.0;
    double maxOverhead = 0.0;

    /** Fraction of working sets with overhead above `threshold`. */
    double fractionAbove(double threshold) const;
};

/**
 * Collect per-wave overheads for every layer of a network in one phase
 * under one mapping/balancing configuration. Waves whose workload is
 * uniform by construction report zero overhead. Tile work comes from
 * the profiles — synthetic jitter when they were built synthetically,
 * measured statistics when they came from a WorkloadTrace; the
 * mask-direct replay in arch/trace_imbalance.h skips the profile
 * abstraction entirely.
 */
std::vector<double>
collectOverheads(const NetworkModel &model,
                 const std::vector<LayerSparsityProfile> &profiles,
                 Phase phase, MappingKind mapping, int64_t batch,
                 const ArrayConfig &cfg, BalanceMode balance);

/**
 * Execution overhead of one working set of half-split tiles under a
 * balancing policy: slowest slot over the perfectly balanced latency,
 * minus one. `cheap_ok` gates the half-tile pairing exactly as the
 * cost model does (supportsCheapBalancing): a mapping that cannot
 * rebalance on the simple interconnect falls back to unbalanced
 * execution. Empty or zero-work working sets report zero overhead.
 */
double waveOverhead(const std::vector<TileHalves> &tiles,
                    BalanceMode balance, bool cheap_ok);

/** Bin overheads into a histogram with `bins` bins of `bin_width`. */
ImbalanceHistogram buildHistogram(const std::vector<double> &overheads,
                                  int bins, double bin_width);

} // namespace arch
} // namespace procrustes

#endif // PROCRUSTES_ARCH_IMBALANCE_H_
