#include "arch/model_zoo.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/rng.h"

namespace procrustes {
namespace arch {

namespace {

/**
 * Deterministic mean activation density for a hidden layer: batch-norm
 * + ReLU stacks empirically leave 40%-60% non-zeros; the exact value
 * per layer is irrelevant, the variation keeps the wu-phase model
 * honest.
 */
double
hiddenIactDensity(uint64_t seed, size_t layer_index)
{
    const uint64_t h = splitmix64(seed ^ (layer_index * 0x9e3779b9ULL));
    const double u =
        static_cast<double>(h >> 40) / static_cast<double>(1 << 24);
    return 0.40 + 0.20 * u;
}

/** Append a layer and its input-activation density. */
void
push(NetworkModel &m, const LayerShape &l, double iact_density)
{
    m.layers.push_back(l);
    m.iactDensity.push_back(iact_density);
}

/** Append with the deterministic hidden-layer density. */
void
pushHidden(NetworkModel &m, const LayerShape &l)
{
    push(m, l, hiddenIactDensity(0xac7, m.layers.size()));
}

} // namespace

int64_t
NetworkModel::denseWeights() const
{
    int64_t total = 0;
    for (const LayerShape &l : layers)
        total += l.weightCount();
    return total;
}

int64_t
NetworkModel::denseMacsPerSample() const
{
    int64_t total = 0;
    for (const LayerShape &l : layers)
        total += l.macsPerSample();
    return total;
}

NetworkModel
buildVggS()
{
    NetworkModel m;
    m.name = "VGG-S";
    m.dataset = "CIFAR-10";
    m.paperSparsity = 5.2;
    m.paperEpochs = 236;
    m.paperDenseAccuracy = 0.930;
    m.paperPrunedAccuracy = 0.931;

    push(m, convLayer("conv1_1", 3, 64, 3, 32), 1.0);
    pushHidden(m, convLayer("conv1_2", 64, 64, 3, 32));
    pushHidden(m, convLayer("conv2_1", 64, 128, 3, 16));
    pushHidden(m, convLayer("conv2_2", 128, 128, 3, 16));
    pushHidden(m, convLayer("conv3_1", 128, 256, 3, 8));
    pushHidden(m, convLayer("conv3_2", 256, 256, 3, 8));
    pushHidden(m, convLayer("conv3_3", 256, 256, 3, 8));
    pushHidden(m, convLayer("conv4_1", 256, 512, 3, 4));
    pushHidden(m, convLayer("conv4_2", 512, 512, 3, 4));
    pushHidden(m, convLayer("conv4_3", 512, 512, 3, 4));
    pushHidden(m, convLayer("conv5_1", 512, 512, 3, 2));
    pushHidden(m, convLayer("conv5_2", 512, 512, 3, 2));
    pushHidden(m, convLayer("conv5_3", 512, 512, 3, 2));
    pushHidden(m, fcLayer("fc1", 512, 512));
    pushHidden(m, fcLayer("fc2", 512, 10));
    return m;
}

NetworkModel
buildWrn2810()
{
    NetworkModel m;
    m.name = "WRN-28-10";
    m.dataset = "CIFAR-10";
    m.paperSparsity = 4.3;
    m.paperEpochs = 462;
    m.paperDenseAccuracy = 0.960;
    m.paperPrunedAccuracy = 0.961;

    push(m, convLayer("conv1", 3, 16, 3, 32), 1.0);
    const int64_t widths[3] = {160, 320, 640};
    const int64_t sizes[3] = {32, 16, 8};
    int64_t in_ch = 16;
    for (int g = 0; g < 3; ++g) {
        const int64_t w = widths[g];
        const int64_t hw = sizes[g];
        for (int b = 0; b < 4; ++b) {
            const std::string base =
                "g" + std::to_string(g + 1) + "b" + std::to_string(b + 1);
            const int64_t stride = (g > 0 && b == 0) ? 2 : 1;
            const int64_t in_hw = (g > 0 && b == 0) ? hw * 2 : hw;
            pushHidden(m, convLayer(base + "_conv1", in_ch, w, 3, in_hw,
                                    stride));
            pushHidden(m, convLayer(base + "_conv2", w, w, 3, hw));
            if (b == 0) {
                pushHidden(m, convLayer(base + "_sc", in_ch, w, 1, in_hw,
                                        stride, 0));
            }
            in_ch = w;
        }
    }
    pushHidden(m, fcLayer("fc", 640, 10));
    return m;
}

NetworkModel
buildDenseNetS()
{
    NetworkModel m;
    m.name = "DenseNet";
    m.dataset = "CIFAR-10";
    m.paperSparsity = 3.9;
    m.paperEpochs = 340;
    m.paperDenseAccuracy = 0.942;
    m.paperPrunedAccuracy = 0.937;

    constexpr int64_t growth = 24;
    push(m, convLayer("conv0", 3, growth, 3, 32), 1.0);
    int64_t channels = growth;
    const int64_t sizes[3] = {32, 16, 8};
    for (int blk = 0; blk < 3; ++blk) {
        for (int l = 0; l < 10; ++l) {
            pushHidden(m, convLayer("b" + std::to_string(blk + 1) +
                                        "_l" + std::to_string(l + 1),
                                    channels, growth, 3, sizes[blk]));
            channels += growth;
        }
        if (blk < 2) {
            pushHidden(m, convLayer("trans" + std::to_string(blk + 1),
                                    channels, channels, 1, sizes[blk],
                                    1, 0));
        }
    }
    pushHidden(m, fcLayer("fc", channels, 10));
    return m;
}

NetworkModel
buildResNet18()
{
    NetworkModel m;
    m.name = "ResNet18";
    m.dataset = "ImageNet";
    m.paperSparsity = 11.7;
    m.paperEpochs = 81;
    m.paperDenseAccuracy = 0.6917;
    m.paperPrunedAccuracy = 0.6931;

    push(m, convLayer("conv1", 3, 64, 7, 224, 2, 3), 1.0);
    const int64_t widths[4] = {64, 128, 256, 512};
    const int64_t sizes[4] = {56, 28, 14, 7};
    int64_t in_ch = 64;
    for (int g = 0; g < 4; ++g) {
        const int64_t w = widths[g];
        const int64_t hw = sizes[g];
        for (int b = 0; b < 2; ++b) {
            const std::string base =
                "g" + std::to_string(g + 1) + "b" + std::to_string(b + 1);
            const int64_t stride = (g > 0 && b == 0) ? 2 : 1;
            const int64_t in_hw = (g > 0 && b == 0) ? hw * 2 : hw;
            pushHidden(m, convLayer(base + "_conv1", in_ch, w, 3, in_hw,
                                    stride));
            pushHidden(m, convLayer(base + "_conv2", w, w, 3, hw));
            if (g > 0 && b == 0) {
                pushHidden(m, convLayer(base + "_sc", in_ch, w, 1, in_hw,
                                        stride, 0));
            }
            in_ch = w;
        }
    }
    pushHidden(m, fcLayer("fc", 512, 1000));
    return m;
}

NetworkModel
buildMobileNetV2()
{
    NetworkModel m;
    m.name = "MobileNetV2";
    m.dataset = "ImageNet";
    m.paperSparsity = 10.0;
    m.paperEpochs = 131;
    m.paperDenseAccuracy = 0.7098;
    m.paperPrunedAccuracy = 0.7113;

    push(m, convLayer("conv0", 3, 32, 3, 224, 2), 1.0);

    // Inverted-residual settings (expansion t, channels c, repeats n,
    // stride s) from the MobileNet v2 paper.
    struct Block { int64_t t, c, n, s; };
    const Block blocks[] = {
        {1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
    };
    int64_t in_ch = 32;
    int64_t hw = 112;
    int bi = 0;
    for (const Block &blk : blocks) {
        for (int64_t r = 0; r < blk.n; ++r) {
            const std::string base = "ir" + std::to_string(++bi);
            const int64_t stride = r == 0 ? blk.s : 1;
            const int64_t expanded = in_ch * blk.t;
            if (blk.t != 1) {
                pushHidden(m, convLayer(base + "_exp", in_ch, expanded,
                                        1, hw, 1, 0));
            }
            const int64_t out_hw = stride == 2 ? hw / 2 : hw;
            pushHidden(m, depthwiseLayer(base + "_dw", expanded, 3, hw,
                                         stride));
            pushHidden(m, convLayer(base + "_proj", expanded, blk.c, 1,
                                    out_hw, 1, 0));
            in_ch = blk.c;
            hw = out_hw;
        }
    }
    pushHidden(m, convLayer("conv_last", 320, 1280, 1, 7, 1, 0));
    pushHidden(m, fcLayer("fc", 1280, 1000));
    return m;
}

std::vector<NetworkModel>
allModels()
{
    return {buildDenseNetS(), buildWrn2810(), buildVggS(),
            buildMobileNetV2(), buildResNet18()};
}

std::vector<sparse::SparsityMask>
generateMasks(const NetworkModel &model, double sparsity, uint64_t seed,
              double kernel_sigma)
{
    PROCRUSTES_ASSERT(sparsity > 1.0, "sparsity factor must exceed 1x");
    const double global_density = 1.0 / sparsity;

    // Layer-level variation: lognormal factors renormalized so the
    // weight-weighted mean density lands exactly on 1/sparsity.
    Xorshift128Plus rng(seed);
    std::vector<double> factor(model.layers.size());
    double weighted = 0.0;
    int64_t total_weights = 0;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        factor[i] = std::exp(0.4 * rng.nextGaussian());
        const int64_t wc = model.layers[i].weightCount();
        weighted += factor[i] * static_cast<double>(wc);
        total_weights += wc;
    }
    const double scale =
        global_density * static_cast<double>(total_weights) / weighted;

    std::vector<sparse::SparsityMask> masks;
    masks.reserve(model.layers.size());
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const LayerShape &l = model.layers[i];
        sparse::SyntheticMaskConfig cfg;
        cfg.targetDensity = clampd(factor[i] * scale, 0.02, 1.0);
        cfg.kernelSigma = kernel_sigma;
        cfg.seed = splitmix64(seed ^ (i * 0x51ed2701ULL));
        masks.push_back(sparse::makeSyntheticMask(
            l.K, l.effectiveC(), l.R, l.S, cfg));
    }
    return masks;
}

std::vector<LayerSparsityProfile>
buildProfiles(const NetworkModel &model,
              const std::vector<sparse::SparsityMask> &masks,
              double iact_sigma)
{
    PROCRUSTES_ASSERT(masks.size() == model.layers.size(),
                      "mask count mismatch");
    std::vector<LayerSparsityProfile> profiles;
    profiles.reserve(masks.size());
    for (size_t i = 0; i < masks.size(); ++i) {
        profiles.emplace_back(masks[i], model.iactDensity[i], iact_sigma,
                              splitmix64(0xbeef ^ i));
    }
    return profiles;
}

std::vector<LayerSparsityProfile>
buildDenseProfiles(const NetworkModel &model)
{
    std::vector<LayerSparsityProfile> profiles;
    profiles.reserve(model.layers.size());
    for (size_t i = 0; i < model.layers.size(); ++i) {
        profiles.push_back(LayerSparsityProfile::uniform(
            1.0, model.iactDensity[i]));
    }
    return profiles;
}

} // namespace arch
} // namespace procrustes
