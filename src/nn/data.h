/**
 * @file
 * Synthetic classification datasets.
 *
 * The paper evaluates accuracy on CIFAR-10 and ImageNet; those datasets
 * (and the GPU-days to train on them) are unavailable here, so the
 * accuracy experiments substitute deterministic synthetic tasks that a
 * small CNN/MLP can learn to high accuracy in a few epochs. The
 * substitution preserves what the experiments test — *relative*
 * accuracy between dense SGD and the Procrustes training scheme on the
 * same task (see DESIGN.md §4).
 */

#ifndef PROCRUSTES_NN_DATA_H_
#define PROCRUSTES_NN_DATA_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace procrustes {
namespace nn {

/** A labelled dataset: images in NCHW order plus integer labels. */
struct Dataset
{
    Tensor images;            //!< [num, C, H, W]
    std::vector<int> labels;  //!< size num, in [0, numClasses)
    int numClasses = 0;

    int64_t size() const { return images.shape()[0]; }

    /** Copy one sample batch into a contiguous tensor. */
    Tensor batch(const std::vector<int64_t> &indices) const;

    /** Labels for the same index list. */
    std::vector<int> batchLabels(const std::vector<int64_t> &indices) const;
};

/** Parameters for the Gaussian-template image task. */
struct BlobImageConfig
{
    int numClasses = 10;
    int64_t samplesPerClass = 64;
    int64_t channels = 3;
    int64_t height = 12;
    int64_t width = 12;
    float noiseStd = 0.45f;   //!< additive noise on unit-norm templates

    /**
     * Seed for the class templates — the *task definition*. Train and
     * validation splits must share it.
     */
    uint64_t seed = 1;

    /** Seed for the per-sample noise — vary this between splits. */
    uint64_t sampleSeed = 1;
};

/**
 * Gaussian-template image classification: each class is a fixed random
 * template image; samples are template + N(0, noiseStd^2) noise. At the
 * default noise level the Bayes error is near zero but the task still
 * requires real feature learning from a random init.
 */
Dataset makeBlobImages(const BlobImageConfig &cfg);

/** Parameters for the two-dimensional spiral task. */
struct SpiralConfig
{
    int numClasses = 3;
    int64_t samplesPerClass = 200;
    float noiseStd = 0.2f;   //!< angular noise (radians)
    uint64_t seed = 1;
};

/**
 * Classic interleaved-spirals task rendered as [N, 2, 1, 1] "images";
 * non-linearly separable, exercises fc-layer training.
 */
Dataset makeSpirals(const SpiralConfig &cfg);

/** Deterministically shuffled index order for one epoch. */
std::vector<int64_t> epochOrder(int64_t n, uint64_t seed, int64_t epoch);

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_DATA_H_
