#include "nn/conv2d.h"

#include <utility>

#include "common/thread_pool.h"
#include "kernels/conv_kernels.h"
#include "sparse/sparse_conv.h"

namespace procrustes {
namespace nn {

Conv2d::Conv2d(const Conv2dConfig &cfg, const std::string &layer_name)
    : cfg_(cfg),
      name_(layer_name),
      backend_(kernels::defaultKernelBackend())
{
    PROCRUSTES_ASSERT(cfg.inChannels > 0 && cfg.outChannels > 0,
                      "conv channels must be positive");
    PROCRUSTES_ASSERT(cfg.kernel > 0 && cfg.stride > 0 && cfg.pad >= 0,
                      "bad conv geometry");
    weight_.init(Shape{cfg.outChannels, cfg.inChannels, cfg.kernel,
                       cfg.kernel},
                 name_ + ".weight", /*can_prune=*/true);
    if (cfg.bias) {
        bias_.init(Shape{cfg.outChannels}, name_ + ".bias",
                   /*can_prune=*/false);
    }
}

std::vector<Param *>
Conv2d::params()
{
    std::vector<Param *> out{&weight_};
    if (cfg_.bias)
        out.push_back(&bias_);
    return out;
}

Tensor
Conv2d::forward(const Tensor &x, bool)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 4, "conv input must be NCHW");
    PROCRUSTES_ASSERT(xs[1] == cfg_.inChannels, "conv channel mismatch");
    // Guard before outExtent's division: a negative numerator truncates
    // toward zero, so the p > 0 checks downstream would not catch it.
    PROCRUSTES_ASSERT(xs[2] + 2 * cfg_.pad >= cfg_.kernel &&
                          xs[3] + 2 * cfg_.pad >= cfg_.kernel,
                      "kernel larger than padded input");
    cachedInput_ = x;   // COW alias: no activation copy happens here
    lastOutH_ = outExtent(xs[2]);
    lastOutW_ = outExtent(xs[3]);
    backwardSeen_ = false;
    Tensor y;
    if (backend_ == kernels::KernelBackend::kGemm) {
        const kernels::ConvGeom g = kernels::convGeomFromTensors(
            x, weight_.value.shape(), cfg_.stride, cfg_.pad);
        y = kernels::convForwardGemm(
            x, weight_.value, cfg_.bias ? &bias_.value : nullptr, g);
    } else if (backend_ == kernels::KernelBackend::kSparse) {
        y = forwardSparse(x);
    } else {
        y = forwardNaive(x);
    }
    cachedOutput_ = y;   // COW alias for lazy density telemetry
    return y;
}

Tensor
Conv2d::backward(const Tensor &dy)
{
    PROCRUSTES_ASSERT(cachedInput_.shape().rank() == 4,
                      "backward before forward");
    backwardSeen_ = true;
    if (backend_ == kernels::KernelBackend::kGemm) {
        const kernels::ConvGeom g = kernels::convGeomFromTensors(
            cachedInput_, weight_.value.shape(), cfg_.stride, cfg_.pad);
        return kernels::convBackwardGemm(
            cachedInput_, weight_.value, dy, g, &weight_.grad,
            cfg_.bias ? &bias_.grad : nullptr);
    }
    if (backend_ == kernels::KernelBackend::kSparse)
        return backwardSparse(dy);
    return backwardNaive(dy);
}

bool
Conv2d::stepReport(LayerStepReport *out) const
{
    if (cachedInput_.shape().rank() != 4)
        return false;
    const Shape &xs = cachedInput_.shape();
    out->layerName = name_;
    out->kind = LayerStepReport::Kind::Conv;
    out->batch = xs[0];
    out->K = cfg_.outChannels;
    out->C = cfg_.inChannels;
    out->R = cfg_.kernel;
    out->S = cfg_.kernel;
    out->P = lastOutH_;
    out->Q = lastOutW_;
    out->stride = cfg_.stride;

    measureInputDensities(cachedInput_, out);
    out->outputDensity =
        cachedOutput_.numel() ? 1.0 - cachedOutput_.zeroFraction() : 1.0;

    out->hasMask = true;
    out->mask = sparse::SparsityMask::fromTensor(weight_.value);

    // Compressed footprint of the live weights (the CSB image the
    // accelerator would stream). Always encoded fresh — the report is
    // sampled after the optimizer update that closed the step, so the
    // bytes must describe the same post-update weights as the mask
    // above, not the forward-time cachedCsb_ (a prune event in the
    // update would make the two disagree). stepReport is telemetry-
    // only O(numel) work, so the extra encode is acceptable.
    out->hasWeightBytes = true;
    out->csbWeightBytes =
        sparse::CsbTensor::encodeConvFilters(weight_.value,
                                             storagePrecision_)
            .totalBytes();
    out->denseWeightBytes =
        sparse::CsbTensor::denseBytes(weight_.value.shape());

    out->hasMacs = backwardSeen_;
    if (!backwardSeen_)
        return true;
    if (backend_ == kernels::KernelBackend::kSparse && csbValid_) {
        // The executors' own tallies: weight-skip in fw, plus dy-zero /
        // activation-zero skipping in the two backward phases.
        out->sparseExecuted = true;
        out->fwMacs = lastFwMacs_;
        out->bwDataMacs = lastBwDataMacs_;
        out->bwWeightMacs = lastBwWeightMacs_;
    } else {
        // Dense backends execute the full operation space, padding
        // zeros included, in every phase.
        const int64_t dense = xs[0] * cfg_.outChannels * cfg_.inChannels *
                              cfg_.kernel * cfg_.kernel * lastOutH_ *
                              lastOutW_;
        out->fwMacs = dense;
        out->bwDataMacs = dense;
        out->bwWeightMacs = dense;
    }
    return true;
}

Tensor
Conv2d::forwardSparse(const Tensor &x)
{
    // Encode once per step: the weights cannot change between this
    // forward and the matching backward, so the backward passes reuse
    // the same compressed blocks (as the accelerator streams one CSB
    // image of the weights through all three phases). The packed tap
    // geometry additionally survives *across* steps: while the mask
    // epoch and input geometry are unchanged, only the values differ,
    // and the executors re-read those from the CsbTensor each call.
    const Shape &xs = x.shape();
    sparse::CsbTensor fresh = sparse::CsbTensor::encodeConvFilters(
        weight_.value, storagePrecision_);
    const bool mask_same =
        csbValid_ && fresh.sameMaskAs(cachedCsb_) &&
        cachedPack_.matches(xs[2], xs[3], cfg_.stride, cfg_.pad);
    cachedCsb_ = std::move(fresh);
    if (!mask_same) {
        cachedPack_ = kernels::packConvTaps(cachedCsb_, xs[2], xs[3],
                                            cfg_.stride, cfg_.pad);
    }
    csbValid_ = true;
    // Under the bf16 tier the activations are stored rounded: compute
    // reads the image a 2-byte buffer would reproduce, and the cached
    // input (the weight-update operand) is that same image.
    if (storagePrecision_ == Precision::kBf16)
        cachedInput_ = bf16RoundedCopy(x);
    Tensor y = sparse::sparseConvForward(cachedInput_, cachedCsb_,
                                         cfg_.stride, cfg_.pad,
                                         &lastFwMacs_, &cachedPack_);
    if (cfg_.bias) {
        const Shape &ys = y.shape();
        const int64_t n = ys[0];
        const int64_t k = ys[1];
        const int64_t pq = ys[2] * ys[3];
        const float *pb = std::as_const(bias_.value).data();
        float *py = y.data();
        for (int64_t in = 0; in < n; ++in) {
            for (int64_t ok = 0; ok < k; ++ok) {
                const float b = pb[ok];
                float *row = py + (in * k + ok) * pq;
                for (int64_t j = 0; j < pq; ++j)
                    row[j] += b;
            }
        }
    }
    return y;
}

Tensor
Conv2d::backwardSparse(const Tensor &dy)
{
    PROCRUSTES_ASSERT(csbValid_, "sparse backward before sparse forward");
    Tensor dx = sparse::sparseConvBackwardData(
        dy, cachedCsb_, cachedInput_.shape(), cfg_.stride, cfg_.pad,
        &lastBwDataMacs_, &cachedPack_);
    // Weight-update pass through the same CSB blocks: only mask-live
    // positions accumulate gradient, pruned weights stay frozen.
    sparse::sparseConvBackwardWeights(cachedInput_, dy, cachedCsb_,
                                      cfg_.stride, cfg_.pad,
                                      &weight_.grad, &lastBwWeightMacs_,
                                      &cachedPack_);
    if (cfg_.bias) {
        const Shape &dys = dy.shape();
        const int64_t n = dys[0];
        const int64_t k = dys[1];
        const int64_t pq = dys[2] * dys[3];
        const float *pdy = dy.data();
        float *pdb = bias_.grad.data();
        for (int64_t ok = 0; ok < k; ++ok) {
            float acc = 0.0f;
            for (int64_t in = 0; in < n; ++in) {
                const float *row = pdy + (in * k + ok) * pq;
                for (int64_t j = 0; j < pq; ++j)
                    acc += row[j];
            }
            pdb[ok] += acc;
        }
    }
    return dx;
}

Tensor
Conv2d::forwardNaive(const Tensor &x)
{
    const Shape &xs = x.shape();
    const int64_t n = xs[0];
    const int64_t c = xs[1];
    const int64_t h = xs[2];
    const int64_t w = xs[3];
    const int64_t k = cfg_.outChannels;
    const int64_t r = cfg_.kernel;
    const int64_t p = outExtent(h);
    const int64_t q = outExtent(w);
    PROCRUSTES_ASSERT(p > 0 && q > 0, "conv output would be empty");

    Tensor y(Shape{n, k, p, q});

    const float *px = x.data();
    const float *pw = std::as_const(weight_.value).data();
    const float *pb =
        cfg_.bias ? std::as_const(bias_.value).data() : nullptr;
    float *py = y.data();

    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ok = 0; ok < k; ++ok) {
            const float b = pb ? pb[ok] : 0.0f;
            for (int64_t op = 0; op < p; ++op) {
                for (int64_t oq = 0; oq < q; ++oq) {
                    float acc = b;
                    for (int64_t ic = 0; ic < c; ++ic) {
                        for (int64_t ir = 0; ir < r; ++ir) {
                            const int64_t ih =
                                op * cfg_.stride + ir - cfg_.pad;
                            if (ih < 0 || ih >= h)
                                continue;
                            const float *xrow =
                                px + ((in * c + ic) * h + ih) * w;
                            const float *wrow =
                                pw + ((ok * c + ic) * r + ir) * r;
                            for (int64_t is = 0; is < r; ++is) {
                                const int64_t iw =
                                    oq * cfg_.stride + is - cfg_.pad;
                                if (iw < 0 || iw >= w)
                                    continue;
                                acc += xrow[iw] * wrow[is];
                            }
                        }
                    }
                    py[((in * k + ok) * p + op) * q + oq] = acc;
                }
            }
        }
    }
    return y;
}

Tensor
Conv2d::backwardNaive(const Tensor &dy)
{
    const Shape &xs = cachedInput_.shape();
    const int64_t n = xs[0];
    const int64_t c = xs[1];
    const int64_t h = xs[2];
    const int64_t w = xs[3];
    const int64_t k = cfg_.outChannels;
    const int64_t r = cfg_.kernel;
    const int64_t p = outExtent(h);
    const int64_t q = outExtent(w);
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, k, p, q}),
                      "dy shape mismatch in conv backward");

    Tensor dx(xs);
    // Const reads: a non-const data() would detach the COW alias and
    // deep-copy the cached activation batch.
    const float *px = std::as_const(cachedInput_).data();
    const float *pw = std::as_const(weight_.value).data();
    const float *pdy = dy.data();
    float *pdx = dx.data();
    float *pdw = weight_.grad.data();
    float *pdb = cfg_.bias ? bias_.grad.data() : nullptr;

    // Weight update pass: dW[k,c,r,s] += sum_{n,p,q} dy[n,k,p,q] *
    // x[n,c,p*stride+r-pad,q*stride+s-pad]; and backward pass:
    // dx[n,c,ih,iw] += sum dy[n,k,p,q] * w[k,c,r,s]. Both share the
    // same traversal, so fuse them.
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ok = 0; ok < k; ++ok) {
            for (int64_t op = 0; op < p; ++op) {
                for (int64_t oq = 0; oq < q; ++oq) {
                    const float g =
                        pdy[((in * k + ok) * p + op) * q + oq];
                    if (g == 0.0f)
                        continue;
                    for (int64_t ic = 0; ic < c; ++ic) {
                        for (int64_t ir = 0; ir < r; ++ir) {
                            const int64_t ih =
                                op * cfg_.stride + ir - cfg_.pad;
                            if (ih < 0 || ih >= h)
                                continue;
                            const float *xrow =
                                px + ((in * c + ic) * h + ih) * w;
                            float *dxrow =
                                pdx + ((in * c + ic) * h + ih) * w;
                            const int64_t wbase =
                                ((ok * c + ic) * r + ir) * r;
                            for (int64_t is = 0; is < r; ++is) {
                                const int64_t iw =
                                    oq * cfg_.stride + is - cfg_.pad;
                                if (iw < 0 || iw >= w)
                                    continue;
                                pdw[wbase + is] += g * xrow[iw];
                                dxrow[iw] += g * pw[wbase + is];
                            }
                        }
                    }
                    if (pdb)
                        pdb[ok] += g;
                }
            }
        }
    }
    return dx;
}

} // namespace nn
} // namespace procrustes
