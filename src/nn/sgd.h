/**
 * @file
 * Optimizer interface and the plain-SGD baseline.
 *
 * The dense-SGD optimizer is the paper's accuracy baseline (the
 * "baseline (SGD)" curves in Figures 15 and 16); the Dropback family in
 * src/sparse/ implements the same interface.
 */

#ifndef PROCRUSTES_NN_SGD_H_
#define PROCRUSTES_NN_SGD_H_

#include <vector>

#include "nn/layer.h"

namespace procrustes {
namespace nn {

/** Base class for weight-update rules. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Apply one update step using the gradients in params. */
    virtual void step(const std::vector<Param *> &params) = 0;

    /** Steps taken so far. */
    int64_t iteration() const { return iteration_; }

    /**
     * @name Optimizer-state checkpoint contract.
     *
     * An optimizer carries trajectory state beyond the weights it
     * updates (step counter, momentum velocity, pruning masks). The
     * job-service checkpoint captures it here as raw bit images so a
     * restored optimizer continues bitwise-identically. stateKind()
     * tags the payload so a snapshot taken with one update rule cannot
     * be silently fed to another; checkpointComplete() lets the
     * checkpoint layer WARN when an optimizer has not opted into the
     * contract (its payload would restore the step counter only).
     */
    /**@{*/
    virtual const char *stateKind() const { return "optimizer_base"; }

    virtual bool checkpointComplete() const { return false; }

    virtual void
    serializeState(ByteWriter &w) const
    {
        w.writeI64(iteration_);
    }

    virtual void
    restoreState(ByteReader &r)
    {
        iteration_ = r.readI64();
    }
    /**@}*/

  protected:
    int64_t iteration_ = 0;
};

/** Classic SGD with optional momentum. */
class Sgd : public Optimizer
{
  public:
    /** lr: learning rate; momentum: 0 disables the velocity buffer. */
    explicit Sgd(float lr, float momentum = 0.0f);

    void step(const std::vector<Param *> &params) override;

    const char *stateKind() const override { return "sgd"; }
    bool checkpointComplete() const override { return true; }
    void serializeState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

    float learningRate() const { return lr_; }
    void setLearningRate(float lr) { lr_ = lr; }

  private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;   //!< lazily sized to params
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_SGD_H_
