/**
 * @file
 * Optimizer interface and the plain-SGD baseline.
 *
 * The dense-SGD optimizer is the paper's accuracy baseline (the
 * "baseline (SGD)" curves in Figures 15 and 16); the Dropback family in
 * src/sparse/ implements the same interface.
 */

#ifndef PROCRUSTES_NN_SGD_H_
#define PROCRUSTES_NN_SGD_H_

#include <vector>

#include "nn/layer.h"

namespace procrustes {
namespace nn {

/** Base class for weight-update rules. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Apply one update step using the gradients in params. */
    virtual void step(const std::vector<Param *> &params) = 0;

    /** Steps taken so far. */
    int64_t iteration() const { return iteration_; }

  protected:
    int64_t iteration_ = 0;
};

/** Classic SGD with optional momentum. */
class Sgd : public Optimizer
{
  public:
    /** lr: learning rate; momentum: 0 disables the velocity buffer. */
    explicit Sgd(float lr, float momentum = 0.0f);

    void step(const std::vector<Param *> &params) override;

    float learningRate() const { return lr_; }
    void setLearningRate(float lr) { lr_ = lr; }

  private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;   //!< lazily sized to params
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_SGD_H_
