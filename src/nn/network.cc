#include "nn/network.h"

#include <cmath>

#include "common/rng.h"

namespace procrustes {
namespace nn {

Tensor
Network::forward(const Tensor &x, bool training)
{
    Tensor cur = x;
    for (auto &layer : layers_)
        cur = layer->forward(cur, training);
    return cur;
}

Tensor
Network::backward(const Tensor &dy)
{
    Tensor cur = dy;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

std::vector<Param *>
Network::params()
{
    std::vector<Param *> out;
    for (auto &layer : layers_) {
        for (Param *p : layer->params())
            out.push_back(p);
    }
    return out;
}

void
Network::zeroGrad()
{
    for (Param *p : params())
        p->grad.zero();
}

int64_t
Network::paramCount()
{
    int64_t n = 0;
    for (Param *p : params())
        n += p->value.numel();
    return n;
}

int64_t
Network::prunableParamCount()
{
    int64_t n = 0;
    for (Param *p : params()) {
        if (p->prunable)
            n += p->value.numel();
    }
    return n;
}

void
kaimingInit(Network &net, Xorshift128Plus &rng)
{
    for (Param *p : net.params()) {
        if (!p->prunable)
            continue;
        const Shape &s = p->value.shape();
        // fan_in: C*R*S for conv [K,C,R,S]; in_features for fc
        // [out, in].
        int64_t fan_in = 1;
        for (int i = 1; i < s.rank(); ++i)
            fan_in *= s[i];
        const float std =
            std::sqrt(2.0f / static_cast<float>(fan_in));
        p->value.fillGaussian(rng, std);
    }
}

} // namespace nn
} // namespace procrustes
