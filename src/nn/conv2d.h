/**
 * @file
 * 2-D convolution layer with full manual backprop (NCHW / KCRS).
 *
 * This is the workhorse of all three training phases in Figure 2 of the
 * paper: forward() is the fw pass (x * W -> y), and backward() computes
 * both the bw pass (dy * rot180(W) -> dx) and the weight-update pass
 * (x * dy -> dW) — exactly the three convolutions the accelerator's
 * dataflows must serve.
 *
 * Three interchangeable compute backends implement the layer: the
 * original direct loop nest (KernelBackend::kNaive, the semantic
 * reference), the im2col + tiled-GEMM path in src/kernels/
 * (KernelBackend::kGemm, the fast default), and the CSB zero-skipping
 * executors in src/sparse/ (KernelBackend::kSparse). Under kSparse the
 * layer re-encodes its weights into CSB form each forward and all
 * three training convolutions consume the compressed blocks — the
 * weight gradient accumulates only into mask-live positions, so pruned
 * weights receive no updates (the accelerator's semantics). Liveness
 * follows the CSB encode rule — a weight is live iff its value is
 * non-zero at encode time — so the training pipeline prunes by zeroing
 * weights, and a weight that lands on exactly 0.0 stays frozen unless
 * something outside the layer rewrites it (as Dropback's
 * accumulated-gradient tracking does for reactivation). Parity
 * between the backends is asserted by tests/test_kernels.cc and
 * tests/test_sparse_conv.cc.
 */

#ifndef PROCRUSTES_NN_CONV2D_H_
#define PROCRUSTES_NN_CONV2D_H_

#include <string>
#include <vector>

#include "kernels/backend.h"
#include "kernels/sparse_microkernels.h"
#include "nn/layer.h"
#include "sparse/csb.h"

namespace procrustes {
namespace nn {

/** Configuration for a Conv2d layer. */
struct Conv2dConfig
{
    int64_t inChannels = 0;
    int64_t outChannels = 0;
    int64_t kernel = 3;     //!< square kernel (R = S = kernel)
    int64_t stride = 1;
    int64_t pad = 0;
    bool bias = true;
};

/** 2-D convolution layer with selectable compute backend. */
class Conv2d : public Layer
{
  public:
    /** Construct with config; weights are Kaiming-initialized later. */
    Conv2d(const Conv2dConfig &cfg, const std::string &layer_name);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<Param *> params() override;
    std::string name() const override { return name_; }

    /**
     * Telemetry for the last forward/backward step: geometry, live
     * weight mask, measured input/output activation densities, and the
     * MACs the active backend executed — the CSB executors' skip-aware
     * counts under kSparse, the dense loop-nest counts otherwise.
     * Valid once a forward+backward pair has run.
     */
    bool stepReport(LayerStepReport *out) const override;

    /** Weight parameter (shape [K, C, R, S]). */
    Param &weight() { return weight_; }

    /** Bias parameter (shape [K]); only valid when cfg.bias. */
    Param &bias() { return bias_; }

    const Conv2dConfig &config() const { return cfg_; }

    /** Compute backend this layer dispatches to. */
    kernels::KernelBackend backend() const { return backend_; }
    void setBackend(kernels::KernelBackend b) { backend_ = b; }

    /**
     * Storage tier modelled for weights and activations under kSparse
     * (defaults to PROCRUSTES_STORAGE_PRECISION). Under kBf16 the
     * weights are rounded through bf16 at encode time and the cached
     * input is the bf16-rounded image — compute stays fp32 — and the
     * telemetry's CSB byte counts price 2-byte values.
     */
    Precision storagePrecision() const { return storagePrecision_; }
    void setStoragePrecision(Precision p) { storagePrecision_ = p; }

    /** Output spatial extent for an input extent (shared with tests). */
    int64_t
    outExtent(int64_t in) const
    {
        return (in + 2 * cfg_.pad - cfg_.kernel) / cfg_.stride + 1;
    }

  private:
    Tensor forwardNaive(const Tensor &x);
    Tensor backwardNaive(const Tensor &dy);
    Tensor forwardSparse(const Tensor &x);
    Tensor backwardSparse(const Tensor &dy);

    Conv2dConfig cfg_;
    std::string name_;
    Param weight_;
    Param bias_;
    kernels::KernelBackend backend_;
    Tensor cachedInput_;   //!< saved for the weight-update convolution
                           //!< (a COW alias, not a deep copy)
    Tensor cachedOutput_;  //!< COW alias for lazy density telemetry
    sparse::CsbTensor cachedCsb_;  //!< kSparse: weights encoded at
                                   //!< forward, reused by backward
    kernels::ConvTapPack cachedPack_;  //!< packed tap geometry, reused
                                       //!< across steps while the mask
                                       //!< epoch + input geometry hold
    bool csbValid_ = false;
    Precision storagePrecision_ = defaultStoragePrecision();

    /** @name Step telemetry captured by forward/backward. */
    /**@{*/
    int64_t lastOutH_ = 0, lastOutW_ = 0;
    int64_t lastFwMacs_ = 0;        //!< kSparse: executed, weight-skip
    int64_t lastBwDataMacs_ = 0;    //!< kSparse: executed, dy-skip aware
    int64_t lastBwWeightMacs_ = 0;  //!< kSparse: executed, x-skip aware
    bool backwardSeen_ = false;
    /**@}*/
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_CONV2D_H_
