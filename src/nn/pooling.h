/**
 * @file
 * Pooling and reshaping layers (max pool, global average pool, flatten).
 */

#ifndef PROCRUSTES_NN_POOLING_H_
#define PROCRUSTES_NN_POOLING_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace procrustes {
namespace nn {

/** Non-overlapping square max pooling (kernel == stride). */
class MaxPool2d : public Layer
{
  public:
    MaxPool2d(int64_t kernel, const std::string &layer_name);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &dy) override;
    std::string name() const override { return name_; }

  private:
    int64_t kernel_;
    std::string name_;
    Shape inputShape_;
    std::vector<int64_t> argmax_;   //!< flat input index per output elem
};

/** Global average pooling: NCHW -> [N, C]. */
class GlobalAvgPool : public Layer
{
  public:
    explicit GlobalAvgPool(const std::string &layer_name)
        : name_(layer_name)
    {}

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &dy) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    Shape inputShape_;
};

/** Flatten NCHW -> [N, C*H*W]. */
class Flatten : public Layer
{
  public:
    explicit Flatten(const std::string &layer_name) : name_(layer_name) {}

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &dy) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    Shape inputShape_;
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_POOLING_H_
