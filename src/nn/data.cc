#include "nn/data.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace procrustes {
namespace nn {

Tensor
Dataset::batch(const std::vector<int64_t> &indices) const
{
    const Shape &s = images.shape();
    PROCRUSTES_ASSERT(s.rank() == 4,
                      "Dataset::batch expects rank-4 [N, C, H, W] images");
    const int64_t c = s[1];
    const int64_t h = s[2];
    const int64_t w = s[3];
    const int64_t stride = c * h * w;
    Tensor out(Shape{static_cast<int64_t>(indices.size()), c, h, w});
    float *po = out.data();
    const float *pi = images.data();
    for (size_t bi = 0; bi < indices.size(); ++bi) {
        const int64_t idx = indices[bi];
        PROCRUSTES_ASSERT(idx >= 0 && idx < size(),
                          "batch index out of range");
        std::copy(pi + idx * stride, pi + (idx + 1) * stride,
                  po + static_cast<int64_t>(bi) * stride);
    }
    return out;
}

std::vector<int>
Dataset::batchLabels(const std::vector<int64_t> &indices) const
{
    std::vector<int> out;
    out.reserve(indices.size());
    for (int64_t idx : indices)
        out.push_back(labels[static_cast<size_t>(idx)]);
    return out;
}

Dataset
makeBlobImages(const BlobImageConfig &cfg)
{
    Xorshift128Plus rng(cfg.seed);
    const int64_t total =
        static_cast<int64_t>(cfg.numClasses) * cfg.samplesPerClass;

    Dataset ds;
    ds.numClasses = cfg.numClasses;
    ds.images = Tensor(Shape{total, cfg.channels, cfg.height, cfg.width});
    ds.labels.resize(static_cast<size_t>(total));

    const int64_t plane = cfg.channels * cfg.height * cfg.width;
    std::vector<float> templates(
        static_cast<size_t>(cfg.numClasses * plane));
    for (auto &t : templates)
        t = static_cast<float>(rng.nextGaussian());
    // Normalize each class template to unit RMS so noiseStd directly
    // controls the signal-to-noise ratio.
    for (int cl = 0; cl < cfg.numClasses; ++cl) {
        float *t = templates.data() + static_cast<int64_t>(cl) * plane;
        double ss = 0.0;
        for (int64_t i = 0; i < plane; ++i)
            ss += t[i] * t[i];
        const float inv_rms = static_cast<float>(
            1.0 / std::sqrt(ss / static_cast<double>(plane)));
        for (int64_t i = 0; i < plane; ++i)
            t[i] *= inv_rms;
    }

    Xorshift128Plus noise_rng(
        splitmix64(cfg.seed) ^ splitmix64(cfg.sampleSeed + 0x5a5a));
    float *img = ds.images.data();
    int64_t si = 0;
    for (int cl = 0; cl < cfg.numClasses; ++cl) {
        const float *t = templates.data() +
                         static_cast<int64_t>(cl) * plane;
        for (int64_t k = 0; k < cfg.samplesPerClass; ++k, ++si) {
            float *dst = img + si * plane;
            for (int64_t i = 0; i < plane; ++i) {
                dst[i] = t[i] +
                         cfg.noiseStd *
                             static_cast<float>(
                                 noise_rng.nextGaussian());
            }
            ds.labels[static_cast<size_t>(si)] = cl;
        }
    }
    return ds;
}

Dataset
makeSpirals(const SpiralConfig &cfg)
{
    Xorshift128Plus rng(cfg.seed);
    const int64_t total =
        static_cast<int64_t>(cfg.numClasses) * cfg.samplesPerClass;

    Dataset ds;
    ds.numClasses = cfg.numClasses;
    ds.images = Tensor(Shape{total, 2, 1, 1});
    ds.labels.resize(static_cast<size_t>(total));

    // Classic interleaved-arcs construction: each class sweeps a
    // 4-radian arc with radius growing 0 -> 1 and Gaussian *angular*
    // noise, which keeps the task non-linear but learnable by a small
    // MLP within a couple of thousand SGD steps.
    float *img = ds.images.data();
    int64_t si = 0;
    for (int cl = 0; cl < cfg.numClasses; ++cl) {
        for (int64_t k = 0; k < cfg.samplesPerClass; ++k, ++si) {
            const double t =
                static_cast<double>(k) /
                static_cast<double>(cfg.samplesPerClass);
            const double radius = t;
            const double angle = 4.0 * (static_cast<double>(cl) + t) +
                                 cfg.noiseStd * rng.nextGaussian();
            img[si * 2 + 0] =
                static_cast<float>(radius * std::sin(angle));
            img[si * 2 + 1] =
                static_cast<float>(radius * std::cos(angle));
            ds.labels[static_cast<size_t>(si)] = cl;
        }
    }
    return ds;
}

std::vector<int64_t>
epochOrder(int64_t n, uint64_t seed, int64_t epoch)
{
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    Xorshift128Plus rng(splitmix64(seed) ^
                        splitmix64(static_cast<uint64_t>(epoch) + 17));
    for (int64_t i = n - 1; i > 0; --i) {
        const auto j = static_cast<int64_t>(
            rng.nextBounded(static_cast<uint64_t>(i + 1)));
        std::swap(order[static_cast<size_t>(i)],
                  order[static_cast<size_t>(j)]);
    }
    return order;
}

} // namespace nn
} // namespace procrustes
