/**
 * @file
 * Sequential network container and weight-initialization helpers.
 */

#ifndef PROCRUSTES_NN_NETWORK_H_
#define PROCRUSTES_NN_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace procrustes {

class Xorshift128Plus;

namespace nn {

/** A simple sequential stack of layers. */
class Network
{
  public:
    Network() = default;

    /** Append a layer (takes ownership) and return a typed handle. */
    template <typename L, typename... Args>
    L *
    add(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L *raw = layer.get();
        layers_.push_back(std::move(layer));
        return raw;
    }

    /** Run all layers in order. */
    Tensor forward(const Tensor &x, bool training);

    /** Back-propagate through all layers in reverse order. */
    Tensor backward(const Tensor &dy);

    /** All trainable parameters, in layer order. */
    std::vector<Param *> params();

    /** Zero every parameter gradient. */
    void zeroGrad();

    /** Total number of trainable scalars. */
    int64_t paramCount();

    /** Number of scalars in prunable parameters only. */
    int64_t prunableParamCount();

    /** Number of layers. */
    size_t size() const { return layers_.size(); }

    /** Access a layer by position. */
    Layer *layer(size_t i) { return layers_.at(i).get(); }

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * Kaiming-normal initialization (He et al., ICCV 2015) for every
 * prunable parameter: std = sqrt(2 / fan_in). This is one of the two
 * initialization formulae the WR unit's integer scaling supports
 * (Section V of the paper). Biases and batch-norm parameters are left
 * at their constructor defaults.
 */
void kaimingInit(Network &net, Xorshift128Plus &rng);

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_NETWORK_H_
