/**
 * @file
 * Layer and parameter abstractions for the mini training framework.
 *
 * The framework exists because Procrustes is a *training* accelerator:
 * reproducing the paper's algorithmic claims (initial-weight decay and
 * streaming quantile estimation do not hurt accuracy; Dropback-style
 * sparse-from-scratch training converges like dense SGD) requires
 * actually running forward, backward, and weight-update passes — the
 * same three phases the hardware model accounts for.
 */

#ifndef PROCRUSTES_NN_LAYER_H_
#define PROCRUSTES_NN_LAYER_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace procrustes {
namespace nn {

/**
 * A trainable parameter: value plus gradient accumulated by backward().
 *
 * `prunable` marks tensors subject to Dropback pruning (convolution and
 * fully-connected weights); biases and batch-norm affine parameters are
 * never pruned, matching standard sparse-training practice.
 */
struct Param
{
    Tensor value;       //!< current parameter values
    Tensor grad;        //!< dL/dparam, filled by backward()
    std::string name;   //!< diagnostic label, e.g. "conv1.weight"
    bool prunable = true;

    /** Allocate value and grad with the given shape. */
    void
    init(const Shape &shape, const std::string &param_name, bool can_prune)
    {
        value = Tensor(shape);
        grad = Tensor(shape);
        name = param_name;
        prunable = can_prune;
    }
};

/**
 * Base class for all layers.
 *
 * Layers cache whatever they need from forward() to implement
 * backward(); a backward() call must be preceded by a forward() call on
 * the same input batch. backward() returns dL/dx and accumulates
 * parameter gradients into Param::grad (callers zero grads between
 * iterations via Network::zeroGrad()).
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Run the layer on a batch; `training` selects batch-norm mode. */
    virtual Tensor forward(const Tensor &x, bool training) = 0;

    /** Back-propagate dL/dy, returning dL/dx. */
    virtual Tensor backward(const Tensor &dy) = 0;

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param *> params() { return {}; }

    /** Diagnostic layer name. */
    virtual std::string name() const = 0;
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_LAYER_H_
