/**
 * @file
 * Layer and parameter abstractions for the mini training framework.
 *
 * The framework exists because Procrustes is a *training* accelerator:
 * reproducing the paper's algorithmic claims (initial-weight decay and
 * streaming quantile estimation do not hurt accuracy; Dropback-style
 * sparse-from-scratch training converges like dense SGD) requires
 * actually running forward, backward, and weight-update passes — the
 * same three phases the hardware model accounts for.
 */

#ifndef PROCRUSTES_NN_LAYER_H_
#define PROCRUSTES_NN_LAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "sparse/mask.h"
#include "tensor/tensor.h"

namespace procrustes {
namespace nn {

/**
 * What one layer measured during its most recent forward + backward
 * step — the telemetry record the workload-trace pipeline aggregates
 * (arch/workload_trace.h) so the accelerator cost model can run from
 * *measured* sparsity facts instead of synthetic ones.
 *
 * MAC counts are what the layer's backend actually executed: the CSB
 * sparse executors report their zero-skipped counts (weight mask in
 * all three phases, plus dy-zeros in bw-data and activation zeros in
 * bw-weight), while dense backends report the dense loop-nest counts.
 * Densities are non-zero fractions measured on the live tensors of the
 * step; the mask is the layer's live weight mask sampled at report
 * time (i.e. after the optimizer update that closed the step).
 */
struct LayerStepReport
{
    /** Structural class of the reporting layer. */
    enum class Kind
    {
        Conv,         //!< Conv2d: full 7-D operation-space geometry
        Linear,       //!< fully connected (R = S = P = Q = 1)
        Activation,   //!< ReLU-style; carries output density only
        Other,        //!< stateless / untracked layers
    };

    std::string layerName;
    Kind kind = Kind::Other;

    /** @name Operation-space geometry (Conv / Linear only). */
    /**@{*/
    int64_t batch = 0;
    int64_t K = 0;        //!< output channels / features
    int64_t C = 0;        //!< input channels / features
    int64_t R = 1, S = 1; //!< filter extents
    int64_t P = 1, Q = 1; //!< output spatial extents
    int64_t stride = 1;
    /**@}*/

    /** @name Executed per-phase MACs (valid when hasMacs). */
    /**@{*/
    bool hasMacs = false;
    /** True when the counts came from the zero-skipping CSB executors
        (Conv2d or Linear on KernelBackend::kSparse); false means a
        dense backend executed the full operation space. Trace
        consumers must not treat dense counts as what a sparse
        accelerator would do. */
    bool sparseExecuted = false;
    int64_t fwMacs = 0;
    int64_t bwDataMacs = 0;
    int64_t bwWeightMacs = 0;
    /**@}*/

    /** @name Weight storage footprint (valid when hasWeightBytes). */
    /**@{*/
    bool hasWeightBytes = false;
    /** CsbTensor::totalBytes of the live weights — packed values +
        mask bits + block pointers, the compressed image the
        accelerator streams. Measured from the step's real CSB encode
        under kSparse; computed from a telemetry-only encode on dense
        backends. */
    int64_t csbWeightBytes = 0;
    int64_t denseWeightBytes = 0;   //!< 4 bytes per dense position
    /**@}*/

    /** @name Live weight mask snapshot (valid when hasMask). */
    /**@{*/
    bool hasMask = false;
    /** The epoch-final snapshot of this mask (WorkloadTrace keeps the
        last one per epoch) is what the measured-mask load-balance
        replay (arch/trace_imbalance.h) tiles into per-PE work — it
        must be the exact live pattern, not an approximation. */
    sparse::SparsityMask mask;
    /**@}*/

    /** @name Cross-shard gradient-exchange traffic (valid when
        hasExchange; filled by the scale-out shard engine, never by the
        layer itself). */
    /**@{*/
    bool hasExchange = false;
    /** Wire bytes this step's allreduce actually moved for this
        layer's parameters: mask-live packed fp32 values, no indices
        (every replica shares the mask). */
    int64_t exchangeCompressedBytes = 0;
    /** Dense twin: same message count, numel values per message. */
    int64_t exchangeDenseBytes = 0;
    /**@}*/

    /** @name Measured activation densities (non-zero fractions). */
    /**@{*/
    double inputDensity = 1.0;    //!< forward-input mean density
    double outputDensity = 1.0;   //!< forward-output mean density
    std::vector<double> inputChannelDensity;     //!< [C]
    std::vector<double> inputSampleDensity;      //!< [batch]
    /** Per-sample halves split along C, [batch * 2]; the two halves of
        sample n sum to inputSampleDensity[n]. */
    std::vector<double> inputSampleHalfDensity;
    /** Spatial marginals of the forward input, rank-4 layers only
        (empty otherwise): density of input row h across all (n, c, w)
        and of input column w across all (n, c, h). Consumers map an
        output location to min(idx * stride, extent - 1). */
    std::vector<double> inputRowDensity;     //!< [H]
    std::vector<double> inputColDensity;     //!< [W]
    /**@}*/
};

/**
 * A trainable parameter: value plus gradient accumulated by backward().
 *
 * `prunable` marks tensors subject to Dropback pruning (convolution and
 * fully-connected weights); biases and batch-norm affine parameters are
 * never pruned, matching standard sparse-training practice.
 */
struct Param
{
    Tensor value;       //!< current parameter values
    Tensor grad;        //!< dL/dparam, filled by backward()
    std::string name;   //!< diagnostic label, e.g. "conv1.weight"
    bool prunable = true;

    /** Allocate value and grad with the given shape. */
    void
    init(const Shape &shape, const std::string &param_name, bool can_prune)
    {
        value = Tensor(shape);
        grad = Tensor(shape);
        name = param_name;
        prunable = can_prune;
    }
};

/**
 * Base class for all layers.
 *
 * Layers cache whatever they need from forward() to implement
 * backward(); a backward() call must be preceded by a forward() call on
 * the same input batch. backward() returns dL/dx and accumulates
 * parameter gradients into Param::grad (callers zero grads between
 * iterations via Network::zeroGrad()).
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Run the layer on a batch; `training` selects batch-norm mode. */
    virtual Tensor forward(const Tensor &x, bool training) = 0;

    /** Back-propagate dL/dy, returning dL/dx. */
    virtual Tensor backward(const Tensor &dy) = 0;

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param *> params() { return {}; }

    /** Diagnostic layer name. */
    virtual std::string name() const = 0;

    /**
     * Fill `out` with telemetry about the most recent forward/backward
     * step. Returns false (and leaves `out` untouched) for layers with
     * nothing to report — the default. Implementations may do O(numel)
     * work (density scans, mask extraction), so callers should only
     * ask when an observer is actually attached.
     */
    virtual bool
    stepReport(LayerStepReport *out) const
    {
        (void)out;
        return false;
    }

    /**
     * @name Layer-state checkpoint contract.
     *
     * Some training state lives outside params(): batch-norm running
     * statistics are the canonical case. A checkpoint built from the
     * param list alone silently loses it, so every layer serializes
     * its non-parameter state here (raw bit images via ByteWriter, so
     * restore is bitwise-exact). Per-step caches (saved activations,
     * CSB encodes, tap packs) are deliberately NOT state: checkpoints
     * are taken between optimizer steps, where the next forward()
     * rebuilds them deterministically. Stateless layers inherit the
     * empty default.
     */
    /**@{*/
    virtual void
    serializeState(ByteWriter &w) const
    {
        (void)w;
    }

    virtual void
    restoreState(ByteReader &r)
    {
        (void)r;
    }
    /**@}*/
};

/**
 * Shared density scan for layers whose forward input is [N, C, ...]:
 * fills the report's mean / per-channel / per-sample / per-sample-half
 * (split along C) input densities from the zero pattern of `x`.
 */
void measureInputDensities(const Tensor &x, LayerStepReport *out);

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_LAYER_H_
