#include "nn/linear.h"

namespace procrustes {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features,
               const std::string &layer_name, bool with_bias)
    : inFeatures_(in_features),
      outFeatures_(out_features),
      hasBias_(with_bias),
      name_(layer_name)
{
    PROCRUSTES_ASSERT(in_features > 0 && out_features > 0,
                      "linear features must be positive");
    weight_.init(Shape{out_features, in_features}, name_ + ".weight",
                 /*can_prune=*/true);
    if (hasBias_) {
        bias_.init(Shape{out_features}, name_ + ".bias",
                   /*can_prune=*/false);
    }
}

std::vector<Param *>
Linear::params()
{
    std::vector<Param *> out{&weight_};
    if (hasBias_)
        out.push_back(&bias_);
    return out;
}

Tensor
Linear::forward(const Tensor &x, bool)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 2 && xs[1] == inFeatures_,
                      "linear input must be [N, in_features]");
    const int64_t n = xs[0];
    cachedInput_ = x;

    Tensor y(Shape{n, outFeatures_});
    const float *px = x.data();
    const float *pw = weight_.value.data();
    float *py = y.data();
    for (int64_t in = 0; in < n; ++in) {
        const float *xr = px + in * inFeatures_;
        for (int64_t o = 0; o < outFeatures_; ++o) {
            const float *wr = pw + o * inFeatures_;
            float acc = hasBias_ ? bias_.value.data()[o] : 0.0f;
            for (int64_t i = 0; i < inFeatures_; ++i)
                acc += xr[i] * wr[i];
            py[in * outFeatures_ + o] = acc;
        }
    }
    return y;
}

Tensor
Linear::backward(const Tensor &dy)
{
    const Shape &xs = cachedInput_.shape();
    PROCRUSTES_ASSERT(xs.rank() == 2, "backward before forward");
    const int64_t n = xs[0];
    PROCRUSTES_ASSERT(dy.shape() == Shape({n, outFeatures_}),
                      "dy shape mismatch in linear backward");

    Tensor dx(xs);
    const float *px = cachedInput_.data();
    const float *pw = weight_.value.data();
    const float *pdy = dy.data();
    float *pdx = dx.data();
    float *pdw = weight_.grad.data();

    for (int64_t in = 0; in < n; ++in) {
        const float *xr = px + in * inFeatures_;
        float *dxr = pdx + in * inFeatures_;
        for (int64_t o = 0; o < outFeatures_; ++o) {
            const float g = pdy[in * outFeatures_ + o];
            if (g == 0.0f)
                continue;
            const float *wr = pw + o * inFeatures_;
            float *dwr = pdw + o * inFeatures_;
            for (int64_t i = 0; i < inFeatures_; ++i) {
                dwr[i] += g * xr[i];
                dxr[i] += g * wr[i];
            }
            if (hasBias_)
                bias_.grad.data()[o] += g;
        }
    }
    return dx;
}

} // namespace nn
} // namespace procrustes
