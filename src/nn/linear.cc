#include "nn/linear.h"

#include <utility>
#include <vector>

#include "kernels/gemm.h"
#include "sparse/sparse_linear.h"

namespace procrustes {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features,
               const std::string &layer_name, bool with_bias)
    : inFeatures_(in_features),
      outFeatures_(out_features),
      hasBias_(with_bias),
      name_(layer_name),
      backend_(kernels::defaultKernelBackend())
{
    PROCRUSTES_ASSERT(in_features > 0 && out_features > 0,
                      "linear features must be positive");
    weight_.init(Shape{out_features, in_features}, name_ + ".weight",
                 /*can_prune=*/true);
    if (hasBias_) {
        bias_.init(Shape{out_features}, name_ + ".bias",
                   /*can_prune=*/false);
    }
}

std::vector<Param *>
Linear::params()
{
    std::vector<Param *> out{&weight_};
    if (hasBias_)
        out.push_back(&bias_);
    return out;
}

Tensor
Linear::forward(const Tensor &x, bool)
{
    const Shape &xs = x.shape();
    PROCRUSTES_ASSERT(xs.rank() == 2 && xs[1] == inFeatures_,
                      "linear input must be [N, in_features]");
    cachedInput_ = x;
    backwardSeen_ = false;
    Tensor y;
    if (backend_ == kernels::KernelBackend::kNaive)
        y = forwardNaive(x);
    else if (backend_ == kernels::KernelBackend::kSparse)
        y = forwardSparse(x);
    else
        y = forwardGemm(x);
    cachedOutput_ = y;   // COW alias for lazy density telemetry
    return y;
}

Tensor
Linear::backward(const Tensor &dy)
{
    const Shape &xs = cachedInput_.shape();
    PROCRUSTES_ASSERT(xs.rank() == 2, "backward before forward");
    PROCRUSTES_ASSERT(dy.shape() == Shape({xs[0], outFeatures_}),
                      "dy shape mismatch in linear backward");
    backwardSeen_ = true;
    if (backend_ == kernels::KernelBackend::kNaive)
        return backwardNaive(dy);
    if (backend_ == kernels::KernelBackend::kSparse)
        return backwardSparse(dy);
    return backwardGemm(dy);
}

bool
Linear::stepReport(LayerStepReport *out) const
{
    if (cachedInput_.shape().rank() != 2)
        return false;
    const int64_t n = cachedInput_.shape()[0];
    out->layerName = name_;
    out->kind = LayerStepReport::Kind::Linear;
    out->batch = n;
    out->K = outFeatures_;
    out->C = inFeatures_;

    measureInputDensities(cachedInput_, out);
    out->outputDensity =
        cachedOutput_.numel() ? 1.0 - cachedOutput_.zeroFraction() : 1.0;

    out->hasMask = true;
    out->mask = sparse::SparsityMask::fromTensor(weight_.value);

    // Compressed footprint of the live weights (the CSB image the
    // accelerator would stream). Always encoded fresh — the report is
    // sampled after the optimizer update that closed the step, so the
    // bytes must describe the same post-update weights as the mask
    // above, not the forward-time cachedCsb_ (a prune event in the
    // update would make the two disagree). stepReport is telemetry-
    // only O(numel) work, so the extra encode is acceptable.
    out->hasWeightBytes = true;
    out->csbWeightBytes =
        sparse::CsbTensor::encodeMatrix(weight_.value, kCsbBlockSide,
                                        storagePrecision_)
            .totalBytes();
    out->denseWeightBytes =
        sparse::CsbTensor::denseBytes(weight_.value.shape());

    out->hasMacs = backwardSeen_;
    if (!backwardSeen_)
        return true;
    if (backend_ == kernels::KernelBackend::kSparse && csbValid_) {
        // The fc executors' own tallies: weight-skip in fw, plus
        // dy-zero / activation-zero skipping in the backward phases.
        out->sparseExecuted = true;
        out->fwMacs = lastFwMacs_;
        out->bwDataMacs = lastBwDataMacs_;
        out->bwWeightMacs = lastBwWeightMacs_;
    } else {
        // Dense backends run the full [N, out, in] contraction in all
        // three phases.
        const int64_t dense = n * outFeatures_ * inFeatures_;
        out->fwMacs = dense;
        out->bwDataMacs = dense;
        out->bwWeightMacs = dense;
    }
    return true;
}

Tensor
Linear::forwardSparse(const Tensor &x)
{
    // Encode once per step: the weights cannot change between this
    // forward and the matching backward, so the backward passes reuse
    // the same compressed blocks (as the accelerator streams one CSB
    // image of the weights through all three phases). The tap views'
    // geometry (indices, offsets, permutation, weight-update aux) only
    // depends on the mask, so while the mask epoch holds across steps
    // only the packed values are refreshed — an O(nnz) copy instead of
    // the O(O*I) block walk.
    sparse::CsbTensor fresh = sparse::CsbTensor::encodeMatrix(
        weight_.value, kCsbBlockSide, storagePrecision_);
    const bool mask_same = csbValid_ && fresh.sameMaskAs(cachedCsb_);
    cachedCsb_ = std::move(fresh);
    if (mask_same)
        sparse::refreshFcTapValues(cachedCsb_, &cachedTaps_);
    else
        cachedTaps_ = sparse::gatherFcTapViews(cachedCsb_);
    csbValid_ = true;
    if (storagePrecision_ == Precision::kBf16)
        cachedInput_ = bf16RoundedCopy(x);
    Tensor y = sparse::sparseLinearForward(cachedInput_, cachedCsb_,
                                           &lastFwMacs_, &cachedTaps_);
    if (hasBias_)
        addBias(&y);
    return y;
}

Tensor
Linear::backwardSparse(const Tensor &dy)
{
    PROCRUSTES_ASSERT(csbValid_, "sparse backward before sparse forward");
    Tensor dx = sparse::sparseLinearBackwardData(
        dy, cachedCsb_, &lastBwDataMacs_, &cachedTaps_);
    // Weight-update pass through the same CSB blocks: only mask-live
    // positions accumulate gradient, pruned weights stay frozen.
    sparse::sparseLinearBackwardWeights(cachedInput_, dy, cachedCsb_,
                                        &weight_.grad,
                                        &lastBwWeightMacs_,
                                        &cachedTaps_);
    if (hasBias_)
        accumulateBiasGrad(dy);
    return dx;
}

void
Linear::addBias(Tensor *y) const
{
    const int64_t n = y->shape()[0];
    const float *pb = std::as_const(bias_.value).data();
    float *py = y->data();
    for (int64_t in = 0; in < n; ++in) {
        float *row = py + in * outFeatures_;
        for (int64_t o = 0; o < outFeatures_; ++o)
            row[o] += pb[o];
    }
}

void
Linear::accumulateBiasGrad(const Tensor &dy)
{
    const int64_t n = dy.shape()[0];
    const float *pdy = dy.data();
    float *pdb = bias_.grad.data();
    for (int64_t o = 0; o < outFeatures_; ++o) {
        float acc = 0.0f;
        for (int64_t in = 0; in < n; ++in)
            acc += pdy[in * outFeatures_ + o];
        pdb[o] += acc;
    }
}

Tensor
Linear::forwardGemm(const Tensor &x)
{
    const int64_t n = x.shape()[0];
    Tensor y(Shape{n, outFeatures_});

    // y = x * W^T: materialize W^T once so the GEMM streams unit-stride
    // (member scratch avoids a per-batch allocation; const reads avoid
    // COW detaches).
    wtScratch_.resize(static_cast<size_t>(inFeatures_ * outFeatures_));
    kernels::transpose(std::as_const(weight_.value).data(), outFeatures_,
                       inFeatures_, wtScratch_.data());
    kernels::gemm(n, outFeatures_, inFeatures_, x.data(),
                  wtScratch_.data(), y.data(), /*accumulate=*/false);

    if (hasBias_)
        addBias(&y);
    return y;
}

Tensor
Linear::backwardGemm(const Tensor &dy)
{
    const int64_t n = cachedInput_.shape()[0];
    Tensor dx(cachedInput_.shape());

    // dx = dy * W (both already in the right layout).
    kernels::gemm(n, inFeatures_, outFeatures_, dy.data(),
                  std::as_const(weight_.value).data(), dx.data(),
                  /*accumulate=*/false);

    // dW += dy^T * x. The cached input is read through a const view so
    // the COW alias never detaches into a deep copy here.
    dytScratch_.resize(static_cast<size_t>(n * outFeatures_));
    kernels::transpose(dy.data(), n, outFeatures_, dytScratch_.data());
    kernels::gemm(outFeatures_, inFeatures_, n, dytScratch_.data(),
                  std::as_const(cachedInput_).data(),
                  weight_.grad.data(), /*accumulate=*/true);

    if (hasBias_)
        accumulateBiasGrad(dy);
    return dx;
}

Tensor
Linear::forwardNaive(const Tensor &x)
{
    const int64_t n = x.shape()[0];
    Tensor y(Shape{n, outFeatures_});
    const float *px = x.data();
    const float *pw = std::as_const(weight_.value).data();
    const float *pb =
        hasBias_ ? std::as_const(bias_.value).data() : nullptr;
    float *py = y.data();
    for (int64_t in = 0; in < n; ++in) {
        const float *xr = px + in * inFeatures_;
        for (int64_t o = 0; o < outFeatures_; ++o) {
            const float *wr = pw + o * inFeatures_;
            float acc = pb ? pb[o] : 0.0f;
            for (int64_t i = 0; i < inFeatures_; ++i)
                acc += xr[i] * wr[i];
            py[in * outFeatures_ + o] = acc;
        }
    }
    return y;
}

Tensor
Linear::backwardNaive(const Tensor &dy)
{
    const Shape &xs = cachedInput_.shape();
    const int64_t n = xs[0];

    Tensor dx(xs);
    const float *px = std::as_const(cachedInput_).data();
    const float *pw = std::as_const(weight_.value).data();
    const float *pdy = dy.data();
    float *pdx = dx.data();
    float *pdw = weight_.grad.data();
    float *pdb = hasBias_ ? bias_.grad.data() : nullptr;

    for (int64_t in = 0; in < n; ++in) {
        const float *xr = px + in * inFeatures_;
        float *dxr = pdx + in * inFeatures_;
        for (int64_t o = 0; o < outFeatures_; ++o) {
            const float g = pdy[in * outFeatures_ + o];
            if (g == 0.0f)
                continue;
            const float *wr = pw + o * inFeatures_;
            float *dwr = pdw + o * inFeatures_;
            for (int64_t i = 0; i < inFeatures_; ++i) {
                dwr[i] += g * xr[i];
                dxr[i] += g * wr[i];
            }
            if (pdb)
                pdb[o] += g;
        }
    }
    return dx;
}

} // namespace nn
} // namespace procrustes
