/**
 * @file
 * Fully-connected (fc) layer with manual backprop.
 *
 * In the paper's terms (Section II-A), fc layers use matrix multiply in
 * the forward pass and the transposed weight matrix W^T in the backward
 * pass — the access-pattern pair the CSB weight format must serve.
 */

#ifndef PROCRUSTES_NN_LINEAR_H_
#define PROCRUSTES_NN_LINEAR_H_

#include <string>
#include <vector>

#include "kernels/backend.h"
#include "nn/layer.h"
#include "sparse/csb.h"
#include "sparse/sparse_linear.h"

namespace procrustes {
namespace nn {

/**
 * Dense affine layer: y = x W^T + b, weights shaped [out, in].
 *
 * Three interchangeable compute backends implement the layer: the
 * direct loop nest (KernelBackend::kNaive, the semantic reference),
 * the transposed-GEMM path (KernelBackend::kGemm, the fast default),
 * and the CSB zero-skipping fc executors in src/sparse/sparse_linear.h
 * (KernelBackend::kSparse). Under kSparse the layer encodes its weight
 * matrix into square CSB blocks once per step (at forward) and all
 * three training passes consume the compressed blocks: the forward
 * walks live weights only, the backward-data pass traverses the same
 * blocks transposed while fetching (no W^T re-encode), and the
 * weight-gradient pass accumulates only into mask-live positions — so
 * pruned fc weights receive no updates, the accelerator's semantics.
 * Liveness follows the CSB encode rule (a weight is live iff non-zero
 * at encode time), matching Conv2d's kSparse behaviour.
 */
class Linear : public Layer
{
  public:
    /** Square CSB block side used when encoding fc weights (kSparse). */
    static constexpr int64_t kCsbBlockSide = 8;

    /** Construct with given fan-in/fan-out; init happens externally. */
    Linear(int64_t in_features, int64_t out_features,
           const std::string &layer_name, bool with_bias = true);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<Param *> params() override;
    std::string name() const override { return name_; }

    /**
     * Telemetry for the last step. Under kSparse the MAC counts are
     * the fc executors' own measured tallies (weight mask skipped in
     * all three phases, zero dy operands skipped in backward-data,
     * zero input activations skipped in backward-weight) and
     * sparseExecuted is set; dense backends report the full
     * [N, out, in] contraction per phase.
     */
    bool stepReport(LayerStepReport *out) const override;

    Param &weight() { return weight_; }
    Param &bias() { return bias_; }

    int64_t inFeatures() const { return inFeatures_; }
    int64_t outFeatures() const { return outFeatures_; }

    /** Compute backend this layer dispatches to. */
    kernels::KernelBackend backend() const { return backend_; }
    void setBackend(kernels::KernelBackend b) { backend_ = b; }

    /**
     * Storage tier modelled for weights and activations under kSparse
     * (defaults to PROCRUSTES_STORAGE_PRECISION). Under kBf16 the
     * weights are rounded through bf16 at encode time and the cached
     * input is the bf16-rounded batch — compute stays fp32 — and the
     * telemetry's CSB byte counts price 2-byte values.
     */
    Precision storagePrecision() const { return storagePrecision_; }
    void setStoragePrecision(Precision p) { storagePrecision_ = p; }

  private:
    Tensor forwardNaive(const Tensor &x);
    Tensor backwardNaive(const Tensor &dy);
    Tensor forwardGemm(const Tensor &x);
    Tensor backwardGemm(const Tensor &dy);
    Tensor forwardSparse(const Tensor &x);
    Tensor backwardSparse(const Tensor &dy);

    /** Add the bias row to every sample (shared by gemm / sparse). */
    void addBias(Tensor *y) const;

    /** Accumulate db += column sums of dy (shared by gemm / sparse). */
    void accumulateBiasGrad(const Tensor &dy);

    int64_t inFeatures_;
    int64_t outFeatures_;
    bool hasBias_;
    std::string name_;
    Param weight_;
    Param bias_;
    kernels::KernelBackend backend_;
    Tensor cachedInput_;   //!< COW alias of the forward input
    Tensor cachedOutput_;  //!< COW alias for lazy density telemetry
    sparse::CsbTensor cachedCsb_;  //!< kSparse: weights encoded at
                                   //!< forward, reused by backward
    sparse::FcTapViews cachedTaps_;   //!< both traversal views of
                                      //!< cachedCsb_; geometry is
                                      //!< reused across steps while the
                                      //!< mask epoch holds (values are
                                      //!< refreshed in O(nnz))
    bool csbValid_ = false;
    Precision storagePrecision_ = defaultStoragePrecision();
    bool backwardSeen_ = false;
    std::vector<float> wtScratch_;    //!< W^T staging, reused per call
    std::vector<float> dytScratch_;   //!< dy^T staging, reused per call

    /** @name Step telemetry captured by forward/backward (kSparse). */
    /**@{*/
    int64_t lastFwMacs_ = 0;        //!< executed, weight-skip
    int64_t lastBwDataMacs_ = 0;    //!< executed, dy-skip aware
    int64_t lastBwWeightMacs_ = 0;  //!< executed, x-skip aware
    /**@}*/
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_LINEAR_H_
