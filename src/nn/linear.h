/**
 * @file
 * Fully-connected (fc) layer with manual backprop.
 *
 * In the paper's terms (Section II-A), fc layers use matrix multiply in
 * the forward pass and the transposed weight matrix W^T in the backward
 * pass — the access-pattern pair the CSB weight format must serve.
 */

#ifndef PROCRUSTES_NN_LINEAR_H_
#define PROCRUSTES_NN_LINEAR_H_

#include <string>
#include <vector>

#include "kernels/backend.h"
#include "nn/layer.h"

namespace procrustes {
namespace nn {

/**
 * Dense affine layer: y = x W^T + b, weights shaped [out, in].
 *
 * Backend note: Linear has no CSB zero-skipping executor, so selecting
 * KernelBackend::kSparse silently remaps to the gemm path — the layer
 * computes densely, pruned weights still receive gradient, and its
 * LayerStepReport reports the *dense* per-phase MAC counts (what was
 * actually executed), never a sparsity-discounted number. Cost-model
 * consumers that want the accelerator's would-be sparse fc cost must
 * derive it from the report's weight mask, not from these MACs.
 */
class Linear : public Layer
{
  public:
    /** Construct with given fan-in/fan-out; init happens externally. */
    Linear(int64_t in_features, int64_t out_features,
           const std::string &layer_name, bool with_bias = true);

    Tensor forward(const Tensor &x, bool training) override;
    Tensor backward(const Tensor &dy) override;
    std::vector<Param *> params() override;
    std::string name() const override { return name_; }

    /**
     * Telemetry for the last step. MACs are honest dense counts for
     * every backend (see the class note: kSparse remaps to gemm, so
     * nothing is ever skipped here); the mask and measured densities
     * still describe the real tensors.
     */
    bool stepReport(LayerStepReport *out) const override;

    Param &weight() { return weight_; }
    Param &bias() { return bias_; }

    int64_t inFeatures() const { return inFeatures_; }
    int64_t outFeatures() const { return outFeatures_; }

    /** Compute backend this layer dispatches to. */
    kernels::KernelBackend backend() const { return backend_; }
    void setBackend(kernels::KernelBackend b) { backend_ = b; }

  private:
    Tensor forwardNaive(const Tensor &x);
    Tensor backwardNaive(const Tensor &dy);
    Tensor forwardGemm(const Tensor &x);
    Tensor backwardGemm(const Tensor &dy);

    int64_t inFeatures_;
    int64_t outFeatures_;
    bool hasBias_;
    std::string name_;
    Param weight_;
    Param bias_;
    kernels::KernelBackend backend_;
    Tensor cachedInput_;   //!< COW alias of the forward input
    Tensor cachedOutput_;  //!< COW alias for lazy density telemetry
    bool backwardSeen_ = false;
    std::vector<float> wtScratch_;    //!< W^T staging, reused per call
    std::vector<float> dytScratch_;   //!< dy^T staging, reused per call
};

} // namespace nn
} // namespace procrustes

#endif // PROCRUSTES_NN_LINEAR_H_
